package orchestra

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/store/storetest"
)

// The scale matrix: the chaos matrix grown to real confederation sizes.
// Where chaos_test.go proves each fault regime at 4 peers through the
// System wrapper, this harness drives 16- and 32-peer confederations
// peer-by-peer so that membership itself can change mid-run: peers depart
// (their fabric node crashes, their decisions stay behind in the store),
// new peers join, and departed peers rejoin by rebuilding their engine
// from the store's snapshot + tail (store.RebuildPeer) rather than from
// any local state. Every cell runs its exact drive schedule twice — once
// fault-free, once under the fault regime — and the final fingerprints
// (instances, accepts, rejects, defers per peer) must be bit-identical.
//
// The same workload split as the 4-peer matrix applies: contended rounds
// only under fully-retryable faults (loss, dup, jitter, slow store), the
// conflict-free per-peer keyspaces wherever whole rounds are deliberately
// lost (churn, partitions, store crash) and caught up later.
//
// One protocol subtlety shapes the partition cell: publishes and begins
// are idempotency-keyed per *client call* — retries inside one call
// dedupe, but a re-issued call mints a fresh key. A cell must therefore
// never let an operation land server-side while the whole call fails and
// is later re-driven. A request-direction cut is safe to drive through
// (nothing lands); a reply-direction cut is driven reconcile-only, whose
// begin is harmless to re-issue.

const scaleStoreAddr = "scale-store"

// scaleRoster names n peers w00..w<n-1>.
func scaleRoster(n int) []PeerID {
	ids := make([]PeerID, n)
	for i := range ids {
		ids[i] = PeerID(fmt.Sprintf("w%02d", i))
	}
	return ids
}

// scaleTrust builds the strict-priority total order every peer applies to
// every origin in the full eventual roster (including not-yet-joined
// peers), so contended decisions are deterministic and joiners are
// rankable from the moment they appear.
func scaleTrust(roster []PeerID) Trust {
	prio := make(map[PeerID]int, len(roster))
	for i, id := range roster {
		prio[id] = len(roster) - i
	}
	return storetest.TrustOrigins(prio)
}

type scaleHarness struct {
	t      *testing.T
	schema *Schema
	net    *simnet.Network
	node   *simnet.Node // the store's fabric endpoint
	cs     *central.Store
	dir    string
	trust  Trust

	ids   []PeerID // roster in join order; departed peers keep their slot
	nodes map[PeerID]*simnet.Node
	peers map[PeerID]*store.Peer // nil entry = currently departed

	universe []TxnID
}

func scalePeerAddr(id PeerID) string { return "w-" + string(id) }

// newScaleHarness builds the fabric, the snapshotting central store behind
// a remote server on a simnet node, and one retrying remote client per
// initial peer, each on its own fabric node.
func newScaleHarness(t *testing.T, seed int64, durable bool, initial []PeerID, trust Trust) *scaleHarness {
	t.Helper()
	h := &scaleHarness{
		t:      t,
		schema: MustSchema(NewRelation("F", 2, "organism", "protein", "function")),
		net:    simnet.NewVirtual(time.Microsecond),
		trust:  trust,
		nodes:  make(map[PeerID]*simnet.Node),
		peers:  make(map[PeerID]*store.Peer),
	}
	h.net.Seed(seed)
	if durable {
		h.dir = t.TempDir()
	}
	h.cs = h.openStore()
	h.node = h.net.Node(scaleStoreAddr, remote.NewServer(h.cs, h.schema).Handler())
	for _, id := range initial {
		h.join(id)
	}
	t.Cleanup(func() { h.cs.Close() })
	return h
}

// openStore opens the central store with automatic snapshots (the rejoin
// bootstrap path needs them) but without compaction: a mid-run joiner
// reconciles from epoch 0, and bootstrap-from-snapshot after compaction is
// an open roadmap item — with compaction on, the joiner's visible history
// would start at a horizon whose position depends on nondeterministic
// epoch allocation order. The 4-peer matrix keeps covering compaction.
func (h *scaleHarness) openStore() *central.Store {
	cs, err := central.Open(h.schema, h.dir, central.WithSnapshotEvery(8))
	if err != nil {
		h.t.Fatal(err)
	}
	return cs
}

// clientFor builds a fresh retrying remote client on the peer's fabric
// node (creating the node on first use).
func (h *scaleHarness) clientFor(id PeerID) store.Store {
	n, ok := h.nodes[id]
	if !ok {
		n = h.net.Node(scalePeerAddr(id), nil)
		h.nodes[id] = n
	}
	return remote.NewClientOn(n, scaleStoreAddr,
		remote.WithRetryPolicy(chaosRetryPolicy()),
		remote.WithWatchPoll(time.Millisecond))
}

// join registers a brand-new peer and appends it to the roster. Used both
// for the initial roster and for mid-run joiners (in which case it runs in
// the baseline and the faulty run alike: joining is schedule, not fault).
func (h *scaleHarness) join(id PeerID) *store.Peer {
	h.t.Helper()
	p, err := store.NewPeer(context.Background(), id, h.schema, h.trust, h.clientFor(id))
	if err != nil {
		h.t.Fatalf("join %s: %v", id, err)
	}
	h.ids = append(h.ids, id)
	h.peers[id] = p
	return p
}

// depart crashes the peer's fabric node and drops its in-memory peer: its
// engine — the client soft state — is gone, while its decisions stay in
// the store. Departing peers must leave clean (everything published);
// unpublished local edits are soft state the rejoin cannot resurrect, and
// a cell that lost them would diverge from its baseline by construction.
func (h *scaleHarness) depart(id PeerID) {
	h.t.Helper()
	if n := h.peers[id].PendingCount(); n != 0 {
		h.t.Fatalf("depart %s: %d unpublished edits", id, n)
	}
	h.net.Crash(scalePeerAddr(id))
	h.peers[id] = nil
}

// rejoin restarts the peer's fabric node and rebuilds its engine from the
// update store alone — snapshot + tail when a snapshot covers it, full
// replay otherwise. The rebuilt peer continues where the departed one
// stopped; the differential against the never-departed baseline peer is
// exactly the §5.2 soft-state guarantee at scale.
func (h *scaleHarness) rejoin(id PeerID) {
	h.t.Helper()
	h.net.Restart(scalePeerAddr(id))
	p, err := store.RebuildPeer(context.Background(), id, h.schema, h.trust, h.clientFor(id))
	if err != nil {
		h.t.Fatalf("rejoin %s: %v", id, err)
	}
	h.peers[id] = p
}

func (h *scaleHarness) edit(id PeerID, u Update) {
	h.t.Helper()
	p := h.peers[id]
	if p == nil {
		h.t.Fatalf("edit at departed peer %s", id)
	}
	x, err := p.Edit(u)
	if err != nil {
		h.t.Fatalf("edit at %s: %v", id, err)
	}
	h.universe = append(h.universe, x.ID)
}

// conflictFreeEdits: every live peer not in skip writes the round's key in
// its own keyspace.
func (h *scaleHarness) conflictFreeEdits(round int, skip map[PeerID]bool) {
	for _, id := range h.ids {
		if skip[id] || h.peers[id] == nil {
			continue
		}
		h.edit(id, Insert("F",
			Strs("zone-"+string(id), fmt.Sprintf("k%d", round), fmt.Sprintf("v%d", round)), id))
	}
}

// contendedEdits: a rotating half of the roster each write their own value
// for the round's shared key; consumers accept the highest-priority writer.
func (h *scaleHarness) contendedEdits(round int) {
	for i, id := range h.ids {
		if i%2 != round%2 || h.peers[id] == nil {
			continue
		}
		h.edit(id, Insert("F",
			Strs("shared", fmt.Sprintf("k%d", round), "val-"+string(id)), id))
	}
}

// scaleRound drives one barrier round concurrently: every live peer not in
// skip publishes, then every live peer not in skip (or pubOnly-skipped)
// reconciles. Peers in tolerate may fail transiently — their pending state
// survives for a later round — anyone else's failure is fatal.
type scaleRound struct {
	skip     map[PeerID]bool // not driven at all this round
	pubSkip  map[PeerID]bool // reconcile-only: publish not attempted
	tolerate map[PeerID]bool // transient errors allowed
}

func (h *scaleHarness) round(o scaleRound) {
	h.t.Helper()
	ctx := context.Background()
	h.forEach(o.tolerate, func(id PeerID, p *store.Peer) error {
		if o.skip[id] || o.pubSkip[id] {
			return nil
		}
		_, err := p.Publish(ctx)
		return err
	})
	h.forEach(o.tolerate, func(id PeerID, p *store.Peer) error {
		if o.skip[id] {
			return nil
		}
		_, err := p.Reconcile(ctx)
		return err
	})
}

// forEach fans fn out over every live peer concurrently and joins.
func (h *scaleHarness) forEach(tolerate map[PeerID]bool, fn func(PeerID, *store.Peer) error) {
	h.t.Helper()
	errs := make([]error, len(h.ids))
	var wg sync.WaitGroup
	for i, id := range h.ids {
		p := h.peers[id]
		if p == nil {
			continue
		}
		wg.Add(1)
		go func(i int, id PeerID, p *store.Peer) {
			defer wg.Done()
			errs[i] = fn(id, p)
		}(i, id, p)
	}
	wg.Wait()
	for i, id := range h.ids {
		switch {
		case errs[i] == nil:
		case tolerate[id] && store.IsTransient(errs[i]):
		default:
			h.t.Fatalf("peer %s: %v", id, errs[i])
		}
	}
}

// quiesce clears every fault, heals every link, and runs fault-free
// catch-up rounds: one to let stragglers publish leftovers and reconcile
// to the frontier, the rest to prove a fixpoint.
func (h *scaleHarness) quiesce(rounds int) {
	h.t.Helper()
	h.net.SetFaults(simnet.Faults{})
	h.net.SetProcessingCost(0)
	for _, id := range h.ids {
		h.net.HealOneWay(scalePeerAddr(id), scaleStoreAddr)
		h.net.HealOneWay(scaleStoreAddr, scalePeerAddr(id))
	}
	for i := 0; i < rounds; i++ {
		h.round(scaleRound{})
	}
}

// fingerprint captures every peer's complete observable outcome over the
// universe, in roster order.
func (h *scaleHarness) fingerprint() map[PeerID]peerState {
	h.t.Helper()
	out := make(map[PeerID]peerState, len(h.ids))
	for _, id := range h.ids {
		p := h.peers[id]
		if p == nil {
			h.t.Fatalf("fingerprint: peer %s still departed", id)
		}
		var st peerState
		for _, tu := range p.Instance().Tuples("F") {
			st.Tuples = append(st.Tuples, tu.Encode())
		}
		sort.Strings(st.Tuples)
		for _, xid := range h.universe {
			if p.Engine().Applied(xid) {
				st.Applied = append(st.Applied, xid.String())
			}
			if p.Engine().Rejected(xid) {
				st.Rejected = append(st.Rejected, xid.String())
			}
		}
		for _, xid := range p.Engine().DeferredIDs() {
			st.Deferred = append(st.Deferred, xid.String())
		}
		sort.Strings(st.Deferred)
		out[id] = st
	}
	return out
}

// runScaleCell executes the cell's drive schedule twice — fault-free and
// faulty — quiesces both, and asserts bit-identical fingerprints peer by
// peer. post runs against the faulty harness for cell-specific assertions
// (fault counters, rebuild evidence).
func runScaleCell(t *testing.T, seed int64, durable bool, initial []PeerID, trust Trust,
	cell func(h *scaleHarness, faulty bool), post func(h *scaleHarness)) {
	t.Helper()
	base := newScaleHarness(t, 0, durable, initial, trust)
	cell(base, false)
	base.quiesce(2)
	want := base.fingerprint()

	h := newScaleHarness(t, seed, durable, initial, trust)
	cell(h, true)
	h.quiesce(2)
	got := h.fingerprint()

	if len(got) != len(want) {
		t.Fatalf("rosters diverged: %d peers faulty vs %d baseline", len(got), len(want))
	}
	for _, id := range h.ids {
		if !reflect.DeepEqual(got[id], want[id]) {
			t.Errorf("%s diverged from fault-free baseline:\n got %+v\nwant %+v", id, got[id], want[id])
		}
	}
	if post != nil {
		post(h)
	}
}

const scaleRounds = 6

// TestScaleMatrixCombinedFaults: 16 peers fighting over shared keys while
// every link loses, duplicates, and jitters. Retries absorb every fault,
// so each contended round completes exactly like the baseline's —
// including every conflict decision across the 16-deep priority order.
func TestScaleMatrixCombinedFaults(t *testing.T) {
	roster := scaleRoster(16)
	cell := func(h *scaleHarness, faulty bool) {
		if faulty {
			h.net.SetFaults(simnet.Faults{Loss: 0.05, Dup: 0.10, Jitter: 200 * time.Microsecond})
		}
		for r := 0; r < scaleRounds; r++ {
			h.contendedEdits(r)
			h.round(scaleRound{})
		}
	}
	runScaleCell(t, 42, false, roster, scaleTrust(roster), cell, func(h *scaleHarness) {
		fs := h.net.FaultStats()
		if fs.Lost()+fs.Duplicates() == 0 {
			t.Error("cell injected no faults — the run proved nothing")
		}
		if h.cs.Metrics().Snapshot().DedupHits == 0 {
			t.Error("no idempotency dedup hits despite duplicate deliveries")
		}
	})
}

// TestScaleMatrixChurn: membership churns mid-run in a 16-peer
// confederation — three peers depart clean after round 1 (fabric nodes
// crash, decisions stay behind), two brand-new peers join at round 2, and
// the departed three rejoin before round 4 by rebuilding their engines
// from the store's snapshot + tail. The baseline runs the identical
// schedule with the departed peers merely idle, so the differential pins
// rebuild-and-catch-up ≡ never-left.
func TestScaleMatrixChurn(t *testing.T) {
	roster := scaleRoster(16)
	joiners := []PeerID{"j0", "j1"}
	trust := scaleTrust(append(append([]PeerID{}, roster...), joiners...))
	victims := []PeerID{roster[3], roster[8], roster[13]}
	away := map[PeerID]bool{victims[0]: true, victims[1]: true, victims[2]: true}

	cell := func(h *scaleHarness, faulty bool) {
		for r := 0; r < scaleRounds; r++ {
			switch r {
			case 2:
				if faulty {
					for _, v := range victims {
						h.depart(v)
					}
				}
				for _, j := range joiners {
					h.join(j)
				}
			case 4:
				if faulty {
					for _, v := range victims {
						h.rejoin(v)
					}
				}
			}
			gone := map[PeerID]bool{}
			if r >= 2 && r < 4 {
				gone = away
			}
			h.conflictFreeEdits(r, gone)
			h.round(scaleRound{skip: gone})
		}
	}
	runScaleCell(t, 77, false, roster, trust, cell, func(h *scaleHarness) {
		// The rebuild must have gone through the bounded snapshot path:
		// with WithSnapshotEvery(8) and ~13 publishes per round, snapshots
		// cover the victims long before round 4.
		if h.cs.Metrics().Snapshot().Snapshots == 0 {
			t.Error("no snapshots taken — rejoin exercised full replay, not bootstrap")
		}
	})
}

// TestScaleMatrixAsymmetricPartition: two one-way cuts with different
// directions, healing mid-run. reqVictim loses the request direction
// (peer→store): it is driven throughout, every operation fails transiently
// without ever landing, and its pending edits pile up and ship after the
// heal. repVictim loses the reply direction (store→peer): its begins land
// but the replies die, so it is driven reconcile-only — the begin is safe
// to re-issue — and resumes editing after the heal.
func TestScaleMatrixAsymmetricPartition(t *testing.T) {
	roster := scaleRoster(16)
	reqVictim, repVictim := roster[5], roster[10]

	cell := func(h *scaleHarness, faulty bool) {
		for r := 0; r < scaleRounds; r++ {
			if faulty {
				switch r {
				case 1:
					h.net.PartitionOneWay(scalePeerAddr(reqVictim), scaleStoreAddr)
					h.net.PartitionOneWay(scaleStoreAddr, scalePeerAddr(repVictim))
				case 4:
					h.net.HealOneWay(scalePeerAddr(reqVictim), scaleStoreAddr)
					h.net.HealOneWay(scaleStoreAddr, scalePeerAddr(repVictim))
				}
			}
			cut := r >= 1 && r < 4
			skipEdits := map[PeerID]bool{}
			o := scaleRound{}
			if cut {
				// repVictim makes no edits and publishes nothing while its
				// replies are dark; reqVictim keeps editing — the edits pend
				// locally until the heal. Both may fail transiently.
				skipEdits[repVictim] = true
				o.pubSkip = map[PeerID]bool{repVictim: true}
				o.tolerate = map[PeerID]bool{reqVictim: true, repVictim: true}
			}
			h.conflictFreeEdits(r, skipEdits)
			h.round(o)
		}
	}
	runScaleCell(t, 7, false, roster, scaleTrust(roster), cell, func(h *scaleHarness) {
		if h.net.FaultStats().PartitionDrops() == 0 {
			t.Error("partition never dropped a call")
		}
	})
}

// TestScaleMatrixStoreCrashRebuild: the store crashes mid-run under a
// 16-peer confederation, the degraded round fails transiently for
// everyone, and the store rebuilds from its directory (snapshot + WAL
// tail, idempotency table included). One peer is then also rebuilt
// client-side against the recovered store — churn and store crash
// composed — before the confederation converges.
func TestScaleMatrixStoreCrashRebuild(t *testing.T) {
	roster := scaleRoster(16)
	rebuilt := roster[6]

	cell := func(h *scaleHarness, faulty bool) {
		all := make(map[PeerID]bool, len(roster))
		for _, id := range roster {
			all[id] = true
		}
		for r := 0; r < scaleRounds; r++ {
			h.conflictFreeEdits(r, nil)
			if r == 2 && faulty {
				h.net.Crash(scaleStoreAddr)
				if err := h.cs.Close(); err != nil {
					t.Fatalf("close crashed store: %v", err)
				}
				h.round(scaleRound{tolerate: all}) // degraded: nothing lands
				h.cs = h.openStore()
				h.node.Handle(remote.NewServer(h.cs, h.schema).Handler())
				h.net.Restart(scaleStoreAddr)
			}
			h.round(scaleRound{})
			if r == 2 && faulty {
				// The round above published everything, so the peer is clean:
				// rebuild it from the store that itself just came back — churn
				// and store crash composed must behave like neither happened.
				h.depart(rebuilt)
				h.rejoin(rebuilt)
			}
		}
	}
	runScaleCell(t, 13, true, roster, scaleTrust(roster), cell, func(h *scaleHarness) {
		if h.net.FaultStats().CrashDrops() == 0 {
			t.Error("crash never dropped a call")
		}
	})
}

// TestScaleMatrixSlowStore: the store becomes slow — every request pays a
// processing cost on top of jittered links — under the contended workload.
// Latency must shift only the clock, never a decision: the cell is
// bit-identical to the instant baseline.
func TestScaleMatrixSlowStore(t *testing.T) {
	roster := scaleRoster(16)
	cell := func(h *scaleHarness, faulty bool) {
		if faulty {
			h.net.SetProcessingCost(300 * time.Microsecond)
			h.net.SetFaults(simnet.Faults{Jitter: 500 * time.Microsecond})
		}
		for r := 0; r < scaleRounds; r++ {
			h.contendedEdits(r)
			h.round(scaleRound{})
		}
	}
	runScaleCell(t, 23, false, roster, scaleTrust(roster), cell, func(h *scaleHarness) {
		if h.net.FaultStats().Jitter() == 0 {
			t.Error("no jitter was injected — the run proved nothing")
		}
	})
}

// TestScaleMatrixHostile32: the headline cell — a 32-peer confederation on
// a network that is simultaneously lossy, duplicating, jittered, and slow,
// while three peers churn out and rebuild back in. Everything the other
// cells prove separately, composed, at double the roster.
func TestScaleMatrixHostile32(t *testing.T) {
	roster := scaleRoster(32)
	victims := []PeerID{roster[7], roster[19], roster[29]}
	away := map[PeerID]bool{victims[0]: true, victims[1]: true, victims[2]: true}

	cell := func(h *scaleHarness, faulty bool) {
		if faulty {
			h.net.SetProcessingCost(100 * time.Microsecond)
			h.net.SetFaults(simnet.Faults{Loss: 0.03, Dup: 0.05, Jitter: 200 * time.Microsecond})
		}
		for r := 0; r < scaleRounds; r++ {
			switch r {
			case 2:
				if faulty {
					for _, v := range victims {
						h.depart(v)
					}
				}
			case 4:
				if faulty {
					for _, v := range victims {
						h.rejoin(v)
					}
				}
			}
			gone := map[PeerID]bool{}
			if r >= 2 && r < 4 {
				gone = away
			}
			h.conflictFreeEdits(r, gone)
			h.round(scaleRound{skip: gone})
		}
	}
	runScaleCell(t, 4242, false, roster, scaleTrust(roster), cell, func(h *scaleHarness) {
		fs := h.net.FaultStats()
		if fs.Lost()+fs.Duplicates() == 0 {
			t.Error("cell injected no faults — the run proved nothing")
		}
	})
}
