package orchestra

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links are not used in this repo's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks README.md and docs/ and verifies that every
// relative link target exists — the `make linkcheck` gate CI runs, so a
// renamed or forgotten document (say, a recovery doc a PR promises) fails
// the build instead of rotting quietly. External URLs are not fetched:
// the check must work offline and never flake on someone else's server.
func TestMarkdownLinks(t *testing.T) {
	var files []string
	files = append(files, "README.md")
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 2 {
		t.Fatalf("suspiciously few markdown files: %v", files)
	}
	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not checked offline
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links found; the check is not checking anything")
	}
}
