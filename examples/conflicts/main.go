// Command conflicts walks through deferral and user-driven conflict
// resolution: two curators publish contradictory values for the same key, a
// third participant trusting both equally must defer; dirty-value
// protection then defers a later dependent update, and the user finally
// resolves the conflict group, which cascades to everything deferred
// behind it.
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

func main() {
	ctx := context.Background()
	schema := orchestra.MustSchema(
		orchestra.NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := orchestra.NewSystem(schema)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice, _ := sys.AddPeer("alice", orchestra.TrustAll(1))
	bob, _ := sys.AddPeer("bob", orchestra.TrustAll(1))
	carol, _ := sys.AddPeer("carol", orchestra.TrustAll(1))
	dave, _ := sys.AddPeer("dave", orchestra.TrustAll(1))

	// Alice and Bob disagree about rat/prot1.
	alice.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "immune response"), "alice"))
	alice.PublishAndReconcile(ctx)
	bob.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "cell metabolism"), "bob"))
	bob.PublishAndReconcile(ctx)

	// Carol trusts both equally: the conflict defers.
	res, err := carol.PublishAndReconcile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol deferred %v\n", res.Deferred)
	for _, g := range carol.Engine().ConflictGroups() {
		fmt.Printf("conflict group: %v\n", g)
	}

	// Dave imports Bob's version and extends it; Carol must defer Dave's
	// dependent revision too (its key is dirty).
	dave.PublishAndReconcile(ctx) // dave also defers alice vs bob — pick bob's.
	gd := dave.Engine().ConflictGroups()[0]
	winner := optionOf(gd, "cell metabolism")
	if _, err := dave.Resolve(ctx, gd.Conflict, winner); err != nil {
		log.Fatal(err)
	}
	dave.Edit(orchestra.Modify("F",
		orchestra.Strs("rat", "prot1", "cell metabolism"),
		orchestra.Strs("rat", "prot1", "cell metabolism (curated)"), "dave"))
	dave.PublishAndReconcile(ctx)

	res, err = carol.PublishAndReconcile(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol's dirty-key deferral of dave's revision: deferred=%v\n", res.Deferred)

	// Carol's user resolves in favour of Dave's curated refinement: the
	// winning option carries its antecedent (Bob's insert), so accepting it
	// applies the whole chain, while Alice's version is rejected.
	gc := carol.Engine().ConflictGroups()[0]
	fmt.Printf("carol resolves: %v\n", gc)
	res, err = carol.Resolve(ctx, gc.Conflict, optionOf(gc, "curated"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after resolution: accepted=%v rejected=%v\n", res.Accepted, res.Rejected)

	fmt.Println("\nfinal instances:")
	for _, p := range sys.Peers() {
		fmt.Printf("  %-6s:", p.ID())
		for _, t := range p.Instance().Tuples("F") {
			fmt.Printf(" %v", t)
		}
		fmt.Println()
	}
	fmt.Printf("state ratio: %.3f\n", orchestra.StateRatio(sys.Instances(), "F"))
}

// optionOf returns the index of the conflict-group option whose effect
// mentions the given function value.
func optionOf(g *orchestra.ConflictGroup, fn string) int {
	for i, o := range g.Options {
		if contains(o.Effect, fn) {
			return i
		}
	}
	return 0
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
