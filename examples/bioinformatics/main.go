// Command bioinformatics simulates the paper's motivating scenario: a
// confederation of curated protein databases exchanging updates under the
// SWISS-PROT-style synthetic workload of §6 — Zipf-distributed function
// curation over Function(organism, protein, function) with a secondary
// cross-reference table — and reports the sharing quality (state ratio)
// and deferred-conflict load after several publish/reconcile rounds.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"orchestra"
)

func main() {
	peers := flag.Int("peers", 10, "number of participants")
	rounds := flag.Int("rounds", 5, "publish/reconcile rounds per participant")
	txns := flag.Int("txns", 4, "transactions per participant per round")
	txnSize := flag.Int("txnsize", 2, "primary updates per transaction")
	keyspace := flag.Int("keyspace", 300, "number of distinct protein keys")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	ctx := context.Background()
	schema := orchestra.WorkloadSchema()
	sys, err := orchestra.NewSystem(schema)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	type member struct {
		peer *orchestra.Peer
		gen  *orchestra.WorkloadGenerator
	}
	members := make([]member, *peers)
	for i := range members {
		id := orchestra.PeerID(fmt.Sprintf("curator%02d", i))
		p, err := sys.AddPeer(id, orchestra.TrustAll(1))
		if err != nil {
			log.Fatal(err)
		}
		members[i] = member{
			peer: p,
			gen: orchestra.NewWorkload(orchestra.WorkloadConfig{
				Seed:     *seed + int64(i),
				TxnSize:  *txnSize,
				KeySpace: *keyspace,
			}),
		}
	}

	for round := 1; round <= *rounds; round++ {
		for _, m := range members {
			for t := 0; t < *txns; t++ {
				ups := m.gen.NextUpdates(m.peer.Instance(), m.peer.ID())
				if len(ups) == 0 {
					continue
				}
				if _, err := m.peer.Edit(ups...); err != nil {
					continue // skip rare self-collisions in the stream
				}
			}
			if _, err := m.peer.PublishAndReconcile(ctx); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("round %d: state ratio %.3f\n", round,
			orchestra.StateRatio(sys.Instances(), "Function"))
	}

	// A final catch-up pass.
	if _, err := sys.ReconcileAll(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-curator summary:")
	var totalDeferred int
	for _, m := range members {
		d := len(m.peer.Engine().DeferredIDs())
		totalDeferred += d
		fmt.Printf("  %-10s functions=%-4d xrefs=%-4d deferred=%-3d store=%v local=%v\n",
			m.peer.ID(), m.peer.Instance().Len("Function"), m.peer.Instance().Len("XRef"),
			d, m.peer.StoreTime().Round(1e5), m.peer.LocalTime().Round(1e5))
	}
	fmt.Printf("\nfinal state ratio (Function): %.3f\n",
		orchestra.StateRatio(sys.Instances(), "Function"))
	fmt.Printf("deferred transactions across the confederation: %d\n", totalDeferred)

	// Show one unresolved controversy, if any.
	for _, m := range members {
		if gs := m.peer.Engine().ConflictGroups(); len(gs) > 0 {
			fmt.Printf("\nexample controversy at %s:\n  %v\n", m.peer.ID(), gs[0])
			break
		}
	}
}
