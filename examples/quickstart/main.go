// Command quickstart is the smallest complete Orchestra program: three
// bioinformatics warehouses share protein-function data under the trust
// topology of the paper's Figure 1, reproduce the four epochs of Figure 2,
// and print each participant's resulting instance.
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

func main() {
	ctx := context.Background()

	// F(organism, protein, function) with key (organism, protein).
	schema := orchestra.MustSchema(
		orchestra.NewRelation("F", 2, "organism", "protein", "function"))

	sys, err := orchestra.NewSystem(schema)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Figure 1: p1 trusts p2 and p3 equally; p2 prefers p1 over p3; p3
	// accepts only p2.
	p1, err := sys.AddPeer("p1", orchestra.TrustOrigins(map[orchestra.PeerID]int{"p2": 1, "p3": 1}))
	if err != nil {
		log.Fatal(err)
	}
	p2, err := sys.AddPeer("p2", orchestra.TrustOrigins(map[orchestra.PeerID]int{"p1": 2, "p3": 1}))
	if err != nil {
		log.Fatal(err)
	}
	p3, err := sys.AddPeer("p3", orchestra.TrustOrigins(map[orchestra.PeerID]int{"p2": 1}))
	if err != nil {
		log.Fatal(err)
	}

	// Epoch 1: p3 inserts a function for rat/prot1 and then revises it.
	must(p3.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "cell-metab"), "p3")))
	must(p3.Edit(orchestra.Modify("F",
		orchestra.Strs("rat", "prot1", "cell-metab"),
		orchestra.Strs("rat", "prot1", "immune"), "p3")))
	mustRes(p3.PublishAndReconcile(ctx))

	// Epoch 2: p2 publishes its own view of rat/prot1 plus a mouse entry;
	// it rejects p3's conflicting chain in favour of its own version.
	must(p2.Edit(orchestra.Insert("F", orchestra.Strs("mouse", "prot2", "immune"), "p2")))
	must(p2.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "cell-resp"), "p2")))
	mustRes(p2.PublishAndReconcile(ctx))

	// Epoch 3: p3 reconciles again, importing the mouse tuple.
	mustRes(p3.PublishAndReconcile(ctx))

	// Epoch 4: p1 reconciles; the three rat versions tie at priority 1 and
	// are deferred for the user.
	res := mustRes(p1.PublishAndReconcile(ctx))

	for _, p := range sys.Peers() {
		fmt.Printf("%s's instance:\n", p.ID())
		for _, t := range p.Instance().Tuples("F") {
			fmt.Printf("  %v\n", t)
		}
	}
	fmt.Printf("\np1 deferred %v; conflict groups:\n", res.Deferred)
	for _, g := range p1.Engine().ConflictGroups() {
		fmt.Printf("  %v\n", g)
	}
	fmt.Printf("\nstate ratio: %.3f\n", orchestra.StateRatio(sys.Instances(), "F"))
}

func must(x *orchestra.Transaction, err error) *orchestra.Transaction {
	if err != nil {
		log.Fatal(err)
	}
	return x
}

func mustRes(r *orchestra.Result, err error) *orchestra.Result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}
