// Command distributed runs a confederation over the DHT-based update store
// (§5.2.2): every participant joins the Pastry-style overlay as a storage
// node, publishing follows the epoch-allocator/epoch-controller protocol of
// Figure 6, and reconciliation chases antecedent chains across transaction
// controllers as in Figure 7. The example prints the message and latency
// cost that makes the distributed store's store-time dominate (Figure 10).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"orchestra"
)

func main() {
	peers := flag.Int("peers", 8, "number of participants (overlay nodes)")
	rounds := flag.Int("rounds", 3, "publish/reconcile rounds")
	latency := flag.Duration("latency", 500*time.Microsecond, "per-message network latency")
	flag.Parse()

	ctx := context.Background()
	schema := orchestra.WorkloadSchema()
	sys, err := orchestra.NewSystem(schema, orchestra.WithDistributedStore(*latency))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	type member struct {
		peer *orchestra.Peer
		gen  *orchestra.WorkloadGenerator
	}
	members := make([]member, *peers)
	for i := range members {
		id := orchestra.PeerID(fmt.Sprintf("site%02d", i))
		p, err := sys.AddPeer(id, orchestra.TrustAll(1))
		if err != nil {
			log.Fatal(err)
		}
		members[i] = member{
			peer: p,
			gen: orchestra.NewWorkload(orchestra.WorkloadConfig{
				Seed: int64(i + 1), TxnSize: 2, KeySpace: 200,
			}),
		}
	}

	for round := 1; round <= *rounds; round++ {
		msgs0 := sys.Messages()
		lat0 := sys.NetworkLatency()
		for _, m := range members {
			for t := 0; t < 3; t++ {
				ups := m.gen.NextUpdates(m.peer.Instance(), m.peer.ID())
				if len(ups) == 0 {
					continue
				}
				if _, err := m.peer.Edit(ups...); err != nil {
					continue
				}
			}
			if _, err := m.peer.PublishAndReconcile(ctx); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("round %d: %6d messages, %8v network latency, state ratio %.3f\n",
			round, sys.Messages()-msgs0, (sys.NetworkLatency() - lat0).Round(time.Millisecond),
			orchestra.StateRatio(sys.Instances(), "Function"))
	}

	if _, err := sys.ReconcileAll(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotals: %d messages, %v simulated network latency\n",
		sys.Messages(), sys.NetworkLatency().Round(time.Millisecond))
	fmt.Printf("final state ratio: %.3f\n", orchestra.StateRatio(sys.Instances(), "Function"))
	for _, m := range members {
		fmt.Printf("  %-8s store=%v local=%v\n", m.peer.ID(),
			m.peer.StoreTime().Round(time.Millisecond), m.peer.LocalTime().Round(time.Millisecond))
	}
	fmt.Println("\n(store time excludes simulated latency, which is charged virtually;")
	fmt.Println(" add the per-peer share of the network latency above for wall-clock cost)")
}
