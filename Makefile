GO ?= go

.PHONY: build vet test race verify fmt-check bench bench-smoke bench-json chaos-smoke gateway-smoke multigroup-smoke trust-smoke fuzz-smoke linkcheck clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: build + vet + full test suite under the race
# detector (the serial-vs-parallel differential tests rely on -race to catch
# worker-pool data races).
verify: build vet race

# fmt-check fails (listing the offenders) if any file is not gofmt-clean;
# CI runs this as its lint step.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs every Go benchmark with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke runs every benchmark for exactly one iteration — no timing
# value, but it executes every bench body, so harness rot (benchmarks that
# no longer compile or crash) is caught on every PR without CI paying for a
# real measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json regenerates BENCH_core.json, the machine-readable core
# reconciliation perf baseline future PRs compare against.
bench-json:
	$(GO) run ./cmd/orchestra-bench -json BENCH_core.json

# chaos-smoke runs both fault-injection convergence matrices — the 4-peer
# cells (loss, dup, jitter, partition, store crash + snapshot rebuild, and
# the streaming cells that cut the watch stream mid-flight) and the
# 16/32-peer scale matrix (churn, asymmetric partitions, store crash
# composed with client rebuild, slow store — see docs/FAULTS.md) — and the
# fabric/retry unit layer under the race detector. make verify covers
# these too; this target runs them by name so a chaos regression is
# unmissable in CI.
chaos-smoke:
	$(GO) test -race -count=1 -run '^TestChaosMatrix|^TestScaleMatrix' .
	$(GO) test -race -count=1 -run '^TestFault|^TestOneWayPartition|^TestCrashRestart|^TestLinkFaults|^TestRetry' ./internal/simnet ./internal/rpc

# gateway-smoke runs the gateway contract suite under the race detector
# (auth, per-group rate limits, backpressure shedding, idempotent retry
# after a 429, long-poll + SSE watch, pool round-robin — see
# docs/GATEWAY.md), then the closed-loop driver: concurrent keyed clients
# saturating a tiny gate, with the exactly-once audit required to find
# every operation despite the shedding.
gateway-smoke:
	$(GO) test -race -count=1 ./internal/gateway
	$(GO) run ./cmd/orchestra-bench -gateway -clients 8 -rounds 10

# multigroup-smoke runs the multi-group contract gates under the race
# detector (see docs/MULTIGROUP.md): the cross-tenant differential (every
# fleet-hosted group bit-identical to a standalone run, across fleet sizes
# and drive modes), the tenant-isolation suite with the torn multi-tenant
# WAL crash cell, and the placement/rebalance drain proofs. make verify
# covers these too; running them by name makes a tenancy regression
# unmissable in CI.
multigroup-smoke:
	$(GO) test -race -count=1 -run '^TestFleet' .
	$(GO) test -race -count=1 -run '^TestTenant' ./internal/store/central

# trust-smoke runs the trust-layer contract gates under the race detector
# (see docs/TRUST.md): the compiled-vs-interpreted differentials (whole-
# system reconciliation transcripts across every topology, plus the
# 1k-peer effective-policy sweep with its mid-stream blast-radius
# assertions), the policy/graph unit layer, the recompile-counter and
# restart-persistence cells, and a short parser fuzz budget. make verify
# covers the tests too; running them by name makes a trust regression
# unmissable in CI.
trust-smoke:
	$(GO) test -race -count=1 -run '^TestTrustTopologyDifferential$$|^TestTrustScale|^TestTrustTopologyGenerator$$' .
	$(GO) test -race -count=1 ./internal/trust
	$(GO) test -race -count=1 -run '^TestTrust' ./internal/store/central
	$(GO) test -race -count=1 -run '^TestRefreshTrust|^TestPriorityCache|^TestSetTrustInvalidatesCache$$' ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzTrustParse$$' -fuzztime 10s ./internal/trust

# fuzz-smoke gives every native fuzz target a short budget on top of its
# checked-in seed corpus (testdata/fuzz): enough to catch decoder panics
# and corpus rot on every PR without CI paying for a real fuzzing campaign.
# go's -fuzz runs one target per invocation, so each gets its own line.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodePublishedTxns$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSnapshot$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime 10s ./internal/wal
	$(GO) test -run '^$$' -fuzz '^FuzzNamespaceCodec$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzNamespacePrefixFree$$' -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz '^FuzzTrustParse$$' -fuzztime 10s ./internal/trust

# linkcheck verifies every relative markdown link in README.md and docs/
# resolves to an existing file (offline; external URLs are not fetched).
# make verify covers it too — this target just runs it by name for CI.
linkcheck:
	$(GO) test -run '^TestMarkdownLinks$$' .

clean:
	$(GO) clean ./...
