GO ?= go

.PHONY: build vet test race verify bench bench-json clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the tier-1 gate: build + vet + full test suite under the race
# detector (the serial-vs-parallel differential tests rely on -race to catch
# worker-pool data races).
verify: build vet race

# bench runs every Go benchmark with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-json regenerates BENCH_core.json, the machine-readable core
# reconciliation perf baseline future PRs compare against.
bench-json:
	$(GO) run ./cmd/orchestra-bench -json BENCH_core.json

clean:
	$(GO) clean ./...
