package orchestra

import (
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/trust"
	"orchestra/internal/workload"
)

// scaleTopology builds a resolved trust graph for a 1k-peer topology the
// way live harnesses do: direct policies first (each registration affects
// only itself), then the full delegating policies in descending index
// order (delegation targets re-register after their delegators, keeping
// registration cost near-linear until the final hub flip).
func scaleTopology(t *testing.T, kind workload.TopologyKind, n int) (*workload.TrustTopology, *trust.Graph) {
	t.Helper()
	tt, err := workload.NewTrustTopology(workload.TopologyConfig{Kind: kind, Peers: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := trust.NewGraph(nil)
	for i := 0; i < n; i++ {
		g.Set(tt.PeerID(i), trust.MustParse(tt.DirectPolicy(i)))
	}
	for i := n - 1; i >= 0; i-- {
		g.Set(tt.PeerID(i), trust.MustParse(tt.Policy(i)))
	}
	return tt, g
}

// assertCompiledMatchesInterpreted compares, for each sampled participant,
// the compiled effective policy against a freshly parsed interpreted copy
// of its own textual rendering, over updates from a spread of origins.
// This is the pure trust-level differential: no reconciliation, just
// priorities, at confederation scale.
func assertCompiledMatchesInterpreted(t *testing.T, tt *workload.TrustTopology, g *trust.Graph, samples, origins []int) {
	t.Helper()
	orgIDs := make([]core.PeerID, 0, len(origins)+1)
	for _, o := range origins {
		orgIDs = append(orgIDs, tt.PeerID(o))
	}
	orgIDs = append(orgIDs, "ghost")
	for _, i := range samples {
		id := tt.PeerID(i)
		eff, ok := g.Effective(id).(*trust.Policy)
		if !ok {
			t.Fatalf("effective trust of %s is not textual: %T", id, g.Effective(id))
		}
		interp := trust.MustParse(eff.String()).WithInterpreted()
		for _, origin := range orgIDs {
			u := core.Insert("F", core.Strs("org", "prot", "fn"), origin)
			if c, iv := eff.Priority(u), interp.Priority(u); c != iv {
				t.Errorf("%s/%s: priority(origin=%s) compiled=%d interpreted=%d",
					tt.Kind(), id, origin, c, iv)
			}
		}
	}
}

// TestTrustScaleDifferential: at 1000 peers per topology, every sampled
// participant's compiled effective decision program is bit-identical to
// the interpreter over its own textual rendering — and a mid-stream
// mapping change re-resolves only the participants whose closure reaches
// the changed peer, with the differential still holding afterwards.
func TestTrustScaleDifferential(t *testing.T) {
	const n = 1000
	samples := []int{0, 1, n / 2, n - 2, n - 1}
	for s := 7; s < n; s += 97 {
		samples = append(samples, s)
	}
	origins := append([]int(nil), samples...)

	for _, kind := range workload.Topologies {
		t.Run(string(kind), func(t *testing.T) {
			tt, g := scaleTopology(t, kind, n)
			if got := len(g.Members()); got != n {
				t.Fatalf("graph members = %d, want %d", got, n)
			}
			assertCompiledMatchesInterpreted(t, tt, g, samples, origins)

			// Mid-stream change, bounded blast radius: the incremental
			// contract says only reverse-reachable participants recompile.
			switch kind {
			case workload.Chain:
				// The chain's head has no delegators: exactly one recompile.
				if affected := g.Set(tt.PeerID(0), trust.MustParse(tt.Policy(0))); len(affected) != 1 {
					t.Errorf("chain head change affected %d participants, want 1", len(affected))
				}
			case workload.Clique:
				// Cliques are disjoint: a member change stays inside its
				// clique (default size 8), orders below the membership.
				if affected := g.Set(tt.PeerID(n-1), trust.MustParse(tt.Policy(n-1))); len(affected) > 8 {
					t.Errorf("clique change affected %d participants, want <= 8", len(affected))
				}
			case workload.DAG:
				// Edges point to higher indices only, so a mid-graph change
				// can reach at most the peers at or below its index.
				if affected := g.Set(tt.PeerID(n/2), trust.MustParse(tt.Policy(n/2))); len(affected) > n/2+1 {
					t.Errorf("dag change affected %d participants, want <= %d", len(affected), n/2+1)
				}
			case workload.Star:
				// Everyone reaches a leaf through the hub: the full fan-in is
				// the correct answer here, so assert the semantics, not a cap.
				if affected := g.Set(tt.PeerID(n-1), trust.MustParse(tt.Policy(n-1))); len(affected) != n {
					t.Errorf("star leaf change affected %d participants, want %d", len(affected), n)
				}
			}
			assertCompiledMatchesInterpreted(t, tt, g, samples, origins)
		})
	}
}

// TestTrustTopologyGenerator pins the generator's determinism and shape
// invariants: same seed, same topology; policies parse; edge counts are
// linear in the membership (the bounded-clique guarantee).
func TestTrustTopologyGenerator(t *testing.T) {
	for _, kind := range workload.Topologies {
		a, err := workload.NewTrustTopology(workload.TopologyConfig{Kind: kind, Peers: 64, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.NewTrustTopology(workload.TopologyConfig{Kind: kind, Peers: 64, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < a.Len(); i++ {
			if a.Policy(i) != b.Policy(i) {
				t.Fatalf("%s: seed-identical topologies diverge at peer %d", kind, i)
			}
			if _, err := trust.Parse(a.Policy(i)); err != nil {
				t.Fatalf("%s: generated policy does not parse: %v\n%s", kind, err, a.Policy(i))
			}
			if ds := trust.MustParse(a.DirectPolicy(i)).Delegations(); len(ds) != 0 {
				t.Fatalf("%s: direct policy carries delegations", kind)
			}
		}
		if a.Edges() == 0 {
			t.Fatalf("%s: no delegation edges", kind)
		}
		if max := 64 * 8; a.Edges() > max {
			t.Fatalf("%s: %d edges exceeds linear bound %d", kind, a.Edges(), max)
		}
		c, err := workload.NewTrustTopology(workload.TopologyConfig{Kind: kind, Peers: 64, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := 0; i < a.Len() && same; i++ {
			same = a.Policy(i) == c.Policy(i)
		}
		if same {
			t.Errorf("%s: different seeds produced identical topologies", kind)
		}
	}
	if _, err := workload.ParseTopology("star"); err != nil {
		t.Error(err)
	}
	if _, err := workload.ParseTopology("mesh"); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := workload.NewTrustTopology(workload.TopologyConfig{Kind: workload.Star, Peers: 1}); err == nil {
		t.Error("single-peer topology accepted")
	}
}
