package orchestra

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"orchestra/internal/core"
	"orchestra/internal/dht"
	"orchestra/internal/reldb"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
)

// Multi-group scale-out: a Fleet routes many Groups (tenants) across a
// set of central store nodes by consistent hashing. Each node is one
// shared database (central.Node); co-located groups keep their rows in
// disjoint namespaced tables, so the storage engine's per-table locking
// runs them fully parallel while their commits batch through the shared
// WAL — group commit across tenants. Fleet membership changes rebalance
// explicitly: consistent hashing moves only the groups whose owner
// changed, and each move drains the group's in-flight store operations
// before copying its rows to the new node.

// GroupPeer declares one member of a group. Trust must be textual
// (*TrustPolicy): a group's peers are re-derived from durable state when
// the group migrates between nodes, and only textual policies persist.
type GroupPeer struct {
	ID    PeerID
	Trust *TrustPolicy
}

// GroupSpec declares one group: the unit of placement. A group is a full
// confederation — schema, peers, trust — whose store traffic the fleet
// routes to the node that currently owns it. SystemOptions extend the
// fleet-wide WithGroupSystemOptions for this group only (e.g. a per-group
// stream observer).
type GroupSpec struct {
	ID            string
	Schema        *Schema
	Peers         []GroupPeer
	SystemOptions []SystemOption
}

// Group is one tenant of a fleet: a System whose peers all talk to the
// fleet-routed store. The System API (ReconcileAll, RunStreaming, Peers,
// Instances) works unchanged; migrations are invisible to it apart from
// the drain pause.
type Group struct {
	id     string
	schema *Schema
	sys    *System
	routed *routedStore
}

// ID returns the group's identifier.
func (g *Group) ID() string { return g.id }

// System returns the group's confederation handle.
func (g *Group) System() *System { return g.sys }

// MigrationEvent records one group move, for observability and the
// rebalance tests: ActiveAtMove is the routed store's in-flight operation
// gauge sampled after the migration acquired exclusive ownership — the
// drain proof, always 0.
type MigrationEvent struct {
	Group        string
	From, To     string
	ActiveAtMove int64
}

// FleetOption configures NewFleet.
type FleetOption func(*fleetConfig)

type fleetConfig struct {
	dirFor    func(storeName string) string
	vnodes    int
	sysOpts   []SystemOption
	storeOpts []central.Option
}

// WithStoreDirs makes each node durable: dirFor maps a store name to its
// database directory ("" keeps that node in memory). In-memory nodes have
// no WAL, so the cross-tenant group-commit economy only shows on durable
// ones.
func WithStoreDirs(dirFor func(storeName string) string) FleetOption {
	return func(c *fleetConfig) { c.dirFor = dirFor }
}

// WithVirtualNodes sets the placement ring's virtual-node count per store
// (default dht.DefaultVirtualNodes).
func WithVirtualNodes(n int) FleetOption {
	return func(c *fleetConfig) { c.vnodes = n }
}

// WithGroupSystemOptions appends System options to every group's
// confederation (e.g. WithReconcileFanOut, WithStreamPoll). Store-owning
// options are meaningless here — a group's peers always talk to the
// fleet-routed store.
func WithGroupSystemOptions(opts ...SystemOption) FleetOption {
	return func(c *fleetConfig) { c.sysOpts = append(c.sysOpts, opts...) }
}

// WithGroupStoreOptions appends central store options applied to every
// node and tenant (e.g. central.WithSerialCommit, central.WithTableShards).
func WithGroupStoreOptions(opts ...central.Option) FleetOption {
	return func(c *fleetConfig) { c.storeOpts = append(c.storeOpts, opts...) }
}

// Fleet routes groups across central store nodes with consistent hashing.
// All methods are safe for concurrent use; group store traffic proceeds
// concurrently with everything except a migration of that same group.
type Fleet struct {
	cfg fleetConfig

	mu         sync.Mutex
	nodes      map[string]*central.Node
	placement  *dht.Placement
	groups     map[string]*Group
	owner      map[string]string // group → store name
	migrations []MigrationEvent
	closed     bool
}

// NewFleet builds an empty fleet; add stores before groups.
func NewFleet(opts ...FleetOption) *Fleet {
	var cfg fleetConfig
	for _, o := range opts {
		o(&cfg)
	}
	return &Fleet{
		cfg:       cfg,
		nodes:     make(map[string]*central.Node),
		placement: dht.NewPlacement(cfg.vnodes),
		groups:    make(map[string]*Group),
		owner:     make(map[string]string),
	}
}

// AddStore opens a node under the given name, joins it to the placement
// ring, and rebalances: consistent hashing guarantees only groups now
// owned by the new node move.
func (f *Fleet) AddStore(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("orchestra: fleet is closed")
	}
	dir := ""
	if f.cfg.dirFor != nil {
		dir = f.cfg.dirFor(name)
	}
	node, err := central.OpenNode(dir, f.cfg.storeOpts...)
	if err != nil {
		return err
	}
	if err := f.placement.AddMember(name); err != nil {
		node.Close()
		return err
	}
	f.nodes[name] = node
	return f.rebalanceLocked()
}

// RemoveStore drains the node's groups to their new owners, removes it
// from the ring, and closes it. The last store cannot be removed while
// groups exist.
func (f *Fleet) RemoveStore(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	node, ok := f.nodes[name]
	if !ok {
		return fmt.Errorf("orchestra: fleet has no store %q", name)
	}
	if f.placement.Size() == 1 && len(f.groups) > 0 {
		return fmt.Errorf("orchestra: cannot remove last store %q while %d groups exist", name, len(f.groups))
	}
	if err := f.placement.RemoveMember(name); err != nil {
		return err
	}
	if err := f.rebalanceLocked(); err != nil {
		// Some groups may already have moved to owners computed from the
		// shrunken ring. Rejoin, then rebalance against the restored ring
		// so owner[] converges back to Place() instead of staying diverged
		// until the next membership change.
		f.placement.AddMember(name)
		if rerr := f.rebalanceLocked(); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return err
	}
	delete(f.nodes, name)
	return node.Close()
}

// Stores returns the fleet's store names, sorted.
func (f *Fleet) Stores() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.placement.Members()
}

// AddGroup places the group on its ring owner, opens its tenant store
// there, and builds its confederation: every declared peer is registered
// with its trust policy.
func (f *Fleet) AddGroup(spec GroupSpec) (*Group, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("orchestra: group ID must be non-empty")
	}
	if spec.Schema == nil {
		return nil, fmt.Errorf("orchestra: group %q: schema is required", spec.ID)
	}
	for _, p := range spec.Peers {
		if p.Trust == nil {
			return nil, fmt.Errorf("orchestra: group %q peer %s: textual trust policy is required", spec.ID, p.ID)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("orchestra: fleet is closed")
	}
	if f.placement.Size() == 0 {
		return nil, fmt.Errorf("orchestra: group %q: fleet has no stores", spec.ID)
	}
	if _, dup := f.groups[spec.ID]; dup {
		return nil, fmt.Errorf("orchestra: group %q already exists", spec.ID)
	}
	owner := f.placement.Place(spec.ID)
	st, err := f.nodes[owner].OpenGroup(spec.ID, spec.Schema)
	if err != nil {
		return nil, err
	}
	routed := &routedStore{st: st}
	sysOpts := append([]SystemOption{
		WithPeerStores(func(core.PeerID) (store.Store, error) { return routed, nil }),
	}, f.cfg.sysOpts...)
	sysOpts = append(sysOpts, spec.SystemOptions...)
	sys, err := NewSystem(spec.Schema, sysOpts...)
	if err != nil {
		f.nodes[owner].CloseGroup(spec.ID)
		return nil, err
	}
	g := &Group{id: spec.ID, schema: spec.Schema, sys: sys, routed: routed}
	for _, p := range spec.Peers {
		if _, err := sys.AddPeer(p.ID, p.Trust); err != nil {
			f.nodes[owner].CloseGroup(spec.ID)
			return nil, fmt.Errorf("orchestra: group %q peer %s: %w", spec.ID, p.ID, err)
		}
	}
	f.groups[spec.ID] = g
	f.owner[spec.ID] = owner
	return g, nil
}

// Group returns a group's handle.
func (f *Fleet) Group(id string) (*Group, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	g, ok := f.groups[id]
	return g, ok
}

// Groups returns every group, sorted by ID.
func (f *Fleet) Groups() []*Group {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]string, 0, len(f.groups))
	for id := range f.groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Group, len(ids))
	for i, id := range ids {
		out[i] = f.groups[id]
	}
	return out
}

// StoreFor returns the name of the node currently hosting the group.
func (f *Fleet) StoreFor(group string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name, ok := f.owner[group]
	return name, ok
}

// Node exposes a store node (its shared database's commit/flush counters
// are the cross-tenant batching headline).
func (f *Fleet) Node(name string) (*central.Node, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	return n, ok
}

// Migrations returns every group move the fleet has performed, in order.
func (f *Fleet) Migrations() []MigrationEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]MigrationEvent(nil), f.migrations...)
}

// Close closes every node (and with them every tenant store). Group
// systems own no stores of their own.
func (f *Fleet) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	var first error
	for _, n := range f.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.nodes = map[string]*central.Node{}
	return first
}

// rebalanceLocked moves every group whose ring owner changed. Groups are
// processed in sorted order so the migration sequence is deterministic.
func (f *Fleet) rebalanceLocked() error {
	ids := make([]string, 0, len(f.groups))
	for id := range f.groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		want := f.placement.Place(id)
		if want == f.owner[id] {
			continue
		}
		if err := f.migrateLocked(f.groups[id], f.owner[id], want); err != nil {
			return fmt.Errorf("orchestra: migrate group %q: %w", id, err)
		}
	}
	return nil
}

// migrateLocked moves one group between nodes. It takes the routed
// store's write gate, which blocks new store operations and waits for
// every in-flight one to finish — reconciliations in progress complete
// their current store call; their cross-call state (reconciliation
// records, decisions) is durable and moves with the rows. It then closes
// the tenant (watch subscriptions close; streaming consumers resubscribe
// through the gate and block until the move finishes), copies the
// namespaced tables and the epoch sequence to the target node, drops the
// source tables, and reopens the tenant on the target — recovery rebuilds
// its caches from the copied rows exactly as after a restart.
func (f *Fleet) migrateLocked(g *Group, fromName, toName string) error {
	from, to := f.nodes[fromName], f.nodes[toName]
	g.routed.mu.Lock()
	defer g.routed.mu.Unlock()
	drained := g.routed.active.Load()

	if err := from.CloseGroup(g.id); err != nil {
		return err
	}
	// reopen restores the tenant on the source after a failed move. A
	// reopen failure is joined into the migration error: the routed store
	// would otherwise silently keep pointing at the closed tenant.
	reopen := func(cause error) error {
		st, err := from.OpenGroup(g.id, g.schema)
		if err != nil {
			return errors.Join(cause, fmt.Errorf("orchestra: reopen group %q on %s after failed migration: %w", g.id, fromName, err))
		}
		g.routed.st = st
		return cause
	}
	if err := copyGroupData(from.DB(), to.DB(), g.id); err != nil {
		return reopen(err)
	}
	st, err := to.OpenGroup(g.id, g.schema)
	if err != nil {
		return reopen(err)
	}
	if err := from.DetachGroup(g.id); err != nil {
		// The copy committed on the target; drop it again or the leftover
		// tables would shadow the (still live) source copy on a later move.
		to.CloseGroup(g.id)
		if derr := to.DetachGroup(g.id); derr != nil {
			err = errors.Join(err, derr)
		}
		return reopen(err)
	}
	g.routed.st = st
	f.owner[g.id] = toName
	f.migrations = append(f.migrations, MigrationEvent{
		Group: g.id, From: fromName, To: toName, ActiveAtMove: drained,
	})
	return nil
}

// copyGroupData copies one group's namespaced tables and epoch sequence
// between databases. The source read and the target write are each one
// storage transaction, so the copy is a consistent snapshot and lands
// atomically. Prefix selection is sound because the namespace grammar
// (store.GroupTablePrefix) is prefix-free across groups. Tables already
// present on the target under the group's namespace — leftovers of an
// earlier migration attempt that copied but failed to detach — are
// replaced, so a retried move converges instead of failing on a duplicate
// create.
func copyGroupData(src, dst *reldb.DB, group string) error {
	ns := store.GroupTablePrefix(group)
	var names []string
	for _, t := range src.TableNames() {
		if strings.HasPrefix(t, ns) {
			names = append(names, t)
		}
	}
	sort.Strings(names)
	type tableCopy struct {
		def  reldb.TableDef
		rows []reldb.Row
	}
	copies := make([]tableCopy, 0, len(names))
	var seq int64
	err := src.View(func(tx *reldb.Tx) error {
		for _, name := range names {
			def, ok := src.TableDef(name)
			if !ok {
				return fmt.Errorf("orchestra: table %s vanished during copy", name)
			}
			tc := tableCopy{def: def}
			if err := tx.Scan(name, func(r reldb.Row) bool {
				tc.rows = append(tc.rows, append(reldb.Row(nil), r...))
				return true
			}); err != nil {
				return err
			}
			copies = append(copies, tc)
		}
		seq = tx.CurrentSeq(ns + "epoch")
		return nil
	})
	if err != nil {
		return err
	}
	// Drop leftovers first, in their own transaction — reldb does not
	// support re-creating a dropped name within one transaction. A crash
	// between the two commits leaves the target clean, as if the copy had
	// never started.
	var leftovers []string
	for _, t := range dst.TableNames() {
		if strings.HasPrefix(t, ns) {
			leftovers = append(leftovers, t)
		}
	}
	if len(leftovers) > 0 {
		sort.Strings(leftovers)
		if err := dst.Update(func(tx *reldb.Tx) error {
			for _, t := range leftovers {
				if err := tx.DropTable(t); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return dst.Update(func(tx *reldb.Tx) error {
		for _, tc := range copies {
			if err := tx.CreateTable(tc.def); err != nil {
				return err
			}
			for _, r := range tc.rows {
				if err := tx.Insert(tc.def.Name, r); err != nil {
					return err
				}
			}
		}
		// The epoch sequence is monotone: advance the target's (possibly
		// stale, from an earlier visit) sequence forward to the source's
		// value, never backward.
		if delta := seq - tx.CurrentSeq(ns+"epoch"); delta > 0 {
			if _, err := tx.AdvanceSeq(ns+"epoch", delta); err != nil {
				return err
			}
		}
		return nil
	})
}

// routedStore is the indirection a group's peers talk through: every
// store call runs under a read lock on the migration gate and bumps the
// in-flight gauge, so a migration (write lock) both blocks new calls and
// waits out in-flight ones. Watch subscriptions hand out channels bound
// to the current tenant store; a migration closes them, and the streaming
// layer's resubscribe-on-close path re-enters through the gate and picks
// up the new location.
type routedStore struct {
	mu     sync.RWMutex
	st     store.Store
	active atomic.Int64
}

func (rs *routedStore) enter() store.Store {
	rs.mu.RLock()
	rs.active.Add(1)
	return rs.st
}

func (rs *routedStore) exit() {
	rs.active.Add(-1)
	rs.mu.RUnlock()
}

func (rs *routedStore) RegisterPeer(ctx context.Context, peer core.PeerID, t core.Trust) error {
	st := rs.enter()
	defer rs.exit()
	return st.RegisterPeer(ctx, peer, t)
}

func (rs *routedStore) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	st := rs.enter()
	defer rs.exit()
	return st.Publish(ctx, peer, txns)
}

func (rs *routedStore) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	st := rs.enter()
	defer rs.exit()
	return st.BeginReconciliation(ctx, peer)
}

func (rs *routedStore) RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	st := rs.enter()
	defer rs.exit()
	return st.RecordDecisions(ctx, peer, recno, accepted, rejected)
}

func (rs *routedStore) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	st := rs.enter()
	defer rs.exit()
	return st.RecordDecisionsBatch(ctx, batches)
}

func (rs *routedStore) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	st := rs.enter()
	defer rs.exit()
	return st.CurrentRecno(ctx, peer)
}

// WatchFrom subscribes against the current tenant store. The channel is
// bound to that location: a migration closes it, and resubscribing (which
// the streaming layer does on close) routes to the new one.
func (rs *routedStore) WatchFrom(ctx context.Context, from core.Epoch) (<-chan store.WatchEvent, error) {
	st := rs.enter()
	defer rs.exit()
	w, ok := st.(store.Watcher)
	if !ok {
		return nil, fmt.Errorf("orchestra: routed store target %T cannot watch", st)
	}
	return w.WatchFrom(ctx, from)
}

func (rs *routedStore) Snapshot(ctx context.Context) (core.Epoch, error) {
	st := rs.enter()
	defer rs.exit()
	sn, ok := st.(store.Snapshotter)
	if !ok {
		return 0, fmt.Errorf("orchestra: routed store target %T cannot snapshot", st)
	}
	return sn.Snapshot(ctx)
}

func (rs *routedStore) CompactBefore(ctx context.Context, e core.Epoch) error {
	st := rs.enter()
	defer rs.exit()
	sn, ok := st.(store.Snapshotter)
	if !ok {
		return fmt.Errorf("orchestra: routed store target %T cannot compact", st)
	}
	return sn.CompactBefore(ctx, e)
}

func (rs *routedStore) LatestSnapshot(ctx context.Context) (*store.Snapshot, error) {
	st := rs.enter()
	defer rs.exit()
	sr, ok := st.(store.SnapshotReplayer)
	if !ok {
		return nil, fmt.Errorf("orchestra: routed store target %T retains no snapshots", st)
	}
	return sr.LatestSnapshot(ctx)
}

func (rs *routedStore) ReplayFrom(ctx context.Context, peer core.PeerID, from core.Epoch, afterSeq int64) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	st := rs.enter()
	defer rs.exit()
	sr, ok := st.(store.SnapshotReplayer)
	if !ok {
		return nil, nil, fmt.Errorf("orchestra: routed store target %T cannot replay a tail", st)
	}
	return sr.ReplayFrom(ctx, peer, from, afterSeq)
}

func (rs *routedStore) ReplayFor(ctx context.Context, peer core.PeerID) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	st := rs.enter()
	defer rs.exit()
	rp, ok := st.(store.Replayer)
	if !ok {
		return nil, nil, fmt.Errorf("orchestra: routed store target %T cannot replay", st)
	}
	return rp.ReplayFor(ctx, peer)
}

func (rs *routedStore) CanWatch(ctx context.Context) bool {
	st := rs.enter()
	defer rs.exit()
	return store.CanWatch(ctx, st)
}

func (rs *routedStore) CanSnapshot(ctx context.Context) bool {
	st := rs.enter()
	defer rs.exit()
	return store.CanSnapshot(ctx, st)
}

func (rs *routedStore) CanReplay(ctx context.Context) bool {
	st := rs.enter()
	defer rs.exit()
	return store.CanReplay(ctx, st)
}

func (rs *routedStore) CanDedupe(ctx context.Context) bool {
	st := rs.enter()
	defer rs.exit()
	return store.CanDedupe(ctx, st)
}

func (rs *routedStore) CanMultiGroup(ctx context.Context) bool {
	st := rs.enter()
	defer rs.exit()
	return store.CanMultiGroup(ctx, st)
}

// Compile-time checks: the routed store must pass for a full-capability
// store everywhere a group's peers look.
var (
	_ store.Store            = (*routedStore)(nil)
	_ store.Watcher          = (*routedStore)(nil)
	_ store.Snapshotter      = (*routedStore)(nil)
	_ store.SnapshotReplayer = (*routedStore)(nil)
	_ store.Replayer         = (*routedStore)(nil)
)
