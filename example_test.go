package orchestra_test

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

// Example reproduces the paper's core behaviour in miniature: two curators
// disagree, a third participant defers the conflict, and its user resolves
// it.
func Example() {
	ctx := context.Background()
	schema := orchestra.MustSchema(
		orchestra.NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := orchestra.NewSystem(schema)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	alice, _ := sys.AddPeer("alice", orchestra.TrustAll(1))
	bob, _ := sys.AddPeer("bob", orchestra.TrustAll(1))
	carol, _ := sys.AddPeer("carol", orchestra.TrustAll(1))

	alice.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "immune"), "alice"))
	alice.PublishAndReconcile(ctx)
	bob.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "metabolism"), "bob"))
	bob.PublishAndReconcile(ctx)

	res, _ := carol.PublishAndReconcile(ctx)
	fmt.Printf("carol deferred %d conflicting transactions\n", len(res.Deferred))

	g := carol.Engine().ConflictGroups()[0]
	for i, o := range g.Options {
		fmt.Printf("option %d: %s\n", i, o.Effect)
	}
	carol.Resolve(ctx, g.Conflict, 0)
	tuple, _ := carol.Instance().Lookup("F", orchestra.Strs("rat", "prot1"))
	fmt.Printf("carol accepted: %v\n", tuple)

	// Output:
	// carol deferred 2 conflicting transactions
	// option 0: +F(rat, prot1, immune; alice)
	// option 1: +F(rat, prot1, metabolism; bob)
	// carol accepted: (rat, prot1, immune)
}

// ExampleParseTrustPolicy shows the acceptance-rule language: priorities
// over predicates on an update's origin, relation, operation, and
// attribute values.
func ExampleParseTrustPolicy() {
	schema := orchestra.MustSchema(
		orchestra.NewRelation("F", 2, "organism", "protein", "function"))
	policy, err := orchestra.ParseTrustPolicy(`
# SWISS-PROT-style authority ranking:
priority 3 when origin = 'swissprot'
priority 2 when origin = 'genbank' and attr('organism') = 'human'
priority 1 when op = 'insert'
`)
	if err != nil {
		log.Fatal(err)
	}
	policy.WithSchema(schema)

	u := orchestra.Insert("F", orchestra.Strs("human", "P01308", "hormone activity"), "genbank")
	fmt.Println(policy.Priority(u))
	u = orchestra.Delete("F", orchestra.Strs("rat", "P99999", "unknown"), "anonymous")
	fmt.Println(policy.Priority(u))
	// Output:
	// 2
	// 0
}

// ExampleStateRatio computes the paper's §6 sharing-quality metric.
func ExampleStateRatio() {
	ctx := context.Background()
	schema := orchestra.MustSchema(orchestra.NewRelation("F", 1, "k", "v"))
	sys, _ := orchestra.NewSystem(schema)
	defer sys.Close()
	a, _ := sys.AddPeer("a", orchestra.TrustAll(1))
	b, _ := sys.AddPeer("b", orchestra.TrustAll(1))

	a.Edit(orchestra.Insert("F", orchestra.Strs("shared", "same"), "a"))
	a.PublishAndReconcile(ctx)
	b.PublishAndReconcile(ctx) // b imports: both agree on "shared"
	b.Edit(orchestra.Insert("F", orchestra.Strs("solo", "mine"), "b"))
	b.PublishAndReconcile(ctx) // only b has "solo"

	fmt.Printf("%.1f\n", orchestra.StateRatio(sys.Instances(), "F"))
	// Output:
	// 1.5
}
