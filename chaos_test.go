package orchestra

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/store/storetest"
)

// The chaos matrix: a confederation of peers talking to a central store
// through the fault-injecting simnet fabric and the retrying remote client,
// one cell per fault regime — message loss, duplicate delivery, latency
// jitter, one-way partition with heal, and a store crash with
// snapshot-based rebuild mid-round. Every cell must converge bit-identical
// (instances, accepts, rejects, defers per peer) to a fault-free
// differential baseline running the same workload.
//
// Two workloads: the contended one has rotating writer sets fighting over
// shared keys under strict-priority trust, and runs only under fault
// regimes where retries guarantee every round completes (loss, dup,
// jitter) — round grouping then matches the baseline exactly. The
// conflict-free one gives each peer its own keyspace, making the final
// state independent of which round a delayed publish lands in; partition
// and crash cells use it, because there entire rounds are deliberately
// lost and caught up later.

const chaosStoreAddr = "chaos-store"

var chaosPeerIDs = []PeerID{"pa", "pb", "pc", "pd"}

// chaosTrust is the strict-priority trust everyone applies to everyone:
// total order, no ties, so contended decisions are deterministic.
func chaosTrust() Trust {
	return storetest.TrustOrigins(map[PeerID]int{"pa": 4, "pb": 3, "pc": 2, "pd": 1})
}

type chaosHarness struct {
	t      *testing.T
	schema *Schema
	net    *simnet.Network
	node   *simnet.Node // the store's fabric endpoint
	cs     *central.Store
	dir    string
	sys    *System

	// Streaming cells: per-stream reconciliation frontiers reported by the
	// stream observer, read by streamQuiesce to detect convergence.
	obsMu    sync.Mutex
	frontier map[PeerID]Epoch

	universe []TxnID // every transaction the workload created
}

// chaosRetryPolicy keeps retries aggressive and fast: the simnet fabric
// fails immediately (no real timeouts), so attempts are cheap and a deep
// attempt budget rides out 10% loss without ever losing a round.
func chaosRetryPolicy() rpc.RetryPolicy {
	return rpc.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   100 * time.Microsecond,
		MaxDelay:    2 * time.Millisecond,
		Seed:        1,
	}
}

// newChaosHarness builds the fabric, the store behind a remote server
// mounted on a simnet node, and a system whose peers each own a retrying
// remote client on their own fabric node. durable stores live in a temp
// dir with automatic snapshots, so the crash cell can rebuild from
// snapshot + WAL tail.
func newChaosHarness(t *testing.T, seed int64, durable bool) *chaosHarness {
	t.Helper()
	h := &chaosHarness{
		t:      t,
		schema: MustSchema(NewRelation("F", 2, "organism", "protein", "function")),
		net:    simnet.NewVirtual(time.Microsecond),
	}
	h.net.Seed(seed)
	h.frontier = make(map[PeerID]Epoch)
	if durable {
		h.dir = t.TempDir()
	}
	h.cs = h.openStore()
	h.node = h.net.Node(chaosStoreAddr, remote.NewServer(h.cs, h.schema).Handler())

	sys, err := NewSystem(h.schema, WithPeerStores(func(id PeerID) (store.Store, error) {
		n := h.net.Node("peer-"+string(id), nil)
		return remote.NewClientOn(n, chaosStoreAddr,
			remote.WithRetryPolicy(chaosRetryPolicy()),
			remote.WithWatchPoll(time.Millisecond)), nil
	}), WithReconcileFanOut(len(chaosPeerIDs)),
		// Streaming cells only: a retry cadence matched to simnet speed, and
		// an observer tracking each stream's frontier. Inert for round cells.
		WithStreamRetry(200*time.Microsecond, 5*time.Millisecond),
		WithStreamObserver(func(r StreamResult) {
			h.obsMu.Lock()
			if r.To > h.frontier[r.Peer] {
				h.frontier[r.Peer] = r.To
			}
			h.obsMu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	h.sys = sys
	for _, id := range chaosPeerIDs {
		if _, err := sys.AddPeer(id, chaosTrust()); err != nil {
			t.Fatalf("add %s: %v", id, err)
		}
	}
	t.Cleanup(func() { h.cs.Close() })
	return h
}

func (h *chaosHarness) openStore() *central.Store {
	cs, err := central.Open(h.schema, h.dir,
		central.WithSnapshotEvery(3), central.WithCompactKeep(2))
	if err != nil {
		h.t.Fatal(err)
	}
	return cs
}

// crashStore kills the store's fabric node and closes the backend;
// restartStore rebuilds the store from its directory (snapshot + tail),
// mounts a fresh server on the same node, and rejoins the fabric.
func (h *chaosHarness) crashStore() {
	h.net.Crash(chaosStoreAddr)
	if err := h.cs.Close(); err != nil {
		h.t.Fatalf("close crashed store: %v", err)
	}
}

func (h *chaosHarness) restartStore() {
	h.cs = h.openStore()
	h.node.Handle(remote.NewServer(h.cs, h.schema).Handler())
	h.net.Restart(chaosStoreAddr)
}

// edit applies one local update at the peer and records the transaction in
// the universe.
func (h *chaosHarness) edit(id PeerID, u Update) {
	h.t.Helper()
	p, _ := h.sys.Peer(id)
	x, err := p.Edit(u)
	if err != nil {
		h.t.Fatalf("edit at %s: %v", id, err)
	}
	h.universe = append(h.universe, x.ID)
}

// contendedEdits: a rotating half of the peers each write their own value
// for the round's shared key; consumers accept the highest-priority writer
// and reject the rest.
func (h *chaosHarness) contendedEdits(round int) {
	for i, id := range chaosPeerIDs {
		if i%2 != round%2 {
			continue
		}
		h.edit(id, Insert("F",
			Strs("shared", fmt.Sprintf("k%d", round), "val-"+string(id)), id))
	}
}

// conflictFreeEdits: every peer writes the round's key in its own keyspace;
// the converged state is the union regardless of round grouping.
func (h *chaosHarness) conflictFreeEdits(round int) {
	for _, id := range chaosPeerIDs {
		h.edit(id, Insert("F",
			Strs("zone-"+string(id), fmt.Sprintf("k%d", round), fmt.Sprintf("v%d", round)), id))
	}
}

// peerState is one peer's complete observable outcome.
type peerState struct {
	Tuples   []string
	Applied  []string
	Rejected []string
	Deferred []string
}

// fingerprint captures every peer's state over the universe, in a
// deterministic, comparable form.
func (h *chaosHarness) fingerprint() map[PeerID]peerState {
	out := make(map[PeerID]peerState, len(chaosPeerIDs))
	for _, id := range chaosPeerIDs {
		p, _ := h.sys.Peer(id)
		var st peerState
		for _, tu := range p.Instance().Tuples("F") {
			st.Tuples = append(st.Tuples, tu.Encode())
		}
		sort.Strings(st.Tuples)
		for _, xid := range h.universe {
			if p.Engine().Applied(xid) {
				st.Applied = append(st.Applied, xid.String())
			}
			if p.Engine().Rejected(xid) {
				st.Rejected = append(st.Rejected, xid.String())
			}
		}
		for _, xid := range p.Engine().DeferredIDs() {
			st.Deferred = append(st.Deferred, xid.String())
		}
		sort.Strings(st.Deferred)
		out[id] = st
	}
	return out
}

// quiesce runs fault-free catch-up rounds (no new edits): one round lets
// every straggler publish leftovers and reconcile to the frontier, the
// second proves a fixpoint was reached.
func (h *chaosHarness) quiesce(rounds int) {
	h.t.Helper()
	h.net.SetFaults(simnet.Faults{})
	for _, id := range chaosPeerIDs {
		h.net.HealOneWay("peer-"+string(id), chaosStoreAddr)
		h.net.HealOneWay(chaosStoreAddr, "peer-"+string(id))
	}
	for i := 0; i < rounds; i++ {
		if _, err := h.sys.ReconcileAll(context.Background()); err != nil {
			h.t.Fatalf("quiesce round %d: %v", i, err)
		}
	}
}

// startStreaming launches System.RunStreaming against the harness and
// returns a stop function that cancels the streams and joins the run.
func (h *chaosHarness) startStreaming() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- h.sys.RunStreaming(ctx) }()
	return func() {
		cancel()
		if err := <-done; err != nil {
			h.t.Errorf("RunStreaming: %v", err)
		}
	}
}

// publishAll ships every peer's pending edits while the streams run,
// tolerating transient faults: a failed publish leaves the batch pending
// and a later call ships it. Returns the highest epoch allocated so far.
func (h *chaosHarness) publishAll(max Epoch) Epoch {
	h.t.Helper()
	for _, id := range chaosPeerIDs {
		p, _ := h.sys.Peer(id)
		e, err := p.Publish(context.Background())
		if err != nil {
			if store.IsTransient(err) {
				continue // the pending batch survives for a later call
			}
			h.t.Fatalf("publish at %s: %v", id, err)
		}
		if e > max {
			max = e
		}
	}
	return max
}

// streamQuiesce is the streaming analogue of quiesce: heal the fabric, ship
// any publishes a fault left pending, and wait until every stream's
// frontier covers the last allocated epoch — at which point each peer has
// reconciled and flushed decisions for every published transaction.
func (h *chaosHarness) streamQuiesce(target Epoch) {
	h.t.Helper()
	h.net.SetFaults(simnet.Faults{})
	for _, id := range chaosPeerIDs {
		h.net.HealOneWay("peer-"+string(id), chaosStoreAddr)
		h.net.HealOneWay(chaosStoreAddr, "peer-"+string(id))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		target = h.publishAll(target)
		caughtUp := true
		for _, id := range chaosPeerIDs {
			p, _ := h.sys.Peer(id)
			h.obsMu.Lock()
			front := h.frontier[id]
			h.obsMu.Unlock()
			if p.PendingCount() > 0 || front < target {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			return
		}
		if time.Now().After(deadline) {
			h.obsMu.Lock()
			defer h.obsMu.Unlock()
			h.t.Fatalf("streams never converged: target epoch %d, frontiers %v", target, h.frontier)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// chaosBaseline runs the workload on a fault-free harness and returns its
// fingerprint.
func chaosBaseline(t *testing.T, rounds int, contended bool) map[PeerID]peerState {
	t.Helper()
	h := newChaosHarness(t, 0, false)
	for r := 0; r < rounds; r++ {
		if contended {
			h.contendedEdits(r)
		} else {
			h.conflictFreeEdits(r)
		}
		if _, err := h.sys.ReconcileAll(context.Background()); err != nil {
			t.Fatalf("baseline round %d: %v", r, err)
		}
	}
	h.quiesce(2)
	return h.fingerprint()
}

// diffFingerprints asserts bit-identical convergence against the baseline.
func diffFingerprints(t *testing.T, got, want map[PeerID]peerState) {
	t.Helper()
	for _, id := range chaosPeerIDs {
		if !reflect.DeepEqual(got[id], want[id]) {
			t.Errorf("%s diverged from fault-free baseline:\n got %+v\nwant %+v", id, got[id], want[id])
		}
	}
}

const chaosRounds = 5

// TestChaosMatrixCompletedRounds: loss, duplication, and jitter cells over
// the contended workload. Retries absorb every fault, so each round
// completes exactly like the baseline's — including the conflict decisions.
func TestChaosMatrixCompletedRounds(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, true)
	cells := []struct {
		name   string
		faults simnet.Faults
	}{
		{"loss1", simnet.Faults{Loss: 0.01}},
		{"loss10", simnet.Faults{Loss: 0.10}},
		{"dup", simnet.Faults{Dup: 0.25}},
		{"jitter", simnet.Faults{Jitter: 500 * time.Microsecond}},
		{"lossdupjitter", simnet.Faults{Loss: 0.05, Dup: 0.10, Jitter: 200 * time.Microsecond}},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			h := newChaosHarness(t, 42, false)
			h.net.SetFaults(cell.faults)
			for r := 0; r < chaosRounds; r++ {
				h.contendedEdits(r)
				if _, err := h.sys.ReconcileAll(context.Background()); err != nil {
					t.Fatalf("round %d did not complete under %+v: %v", r, cell.faults, err)
				}
			}
			h.quiesce(2)
			diffFingerprints(t, h.fingerprint(), baseline)

			fs := h.net.FaultStats()
			if fs.Lost()+fs.Duplicates()+int64(fs.Jitter()) == 0 {
				t.Error("cell injected no faults — the run proved nothing")
			}
			if cell.faults.Dup > 0 || cell.faults.Loss > 0 {
				if h.cs.Metrics().Snapshot().DedupHits == 0 {
					t.Error("no idempotency dedup hits despite duplicate deliveries")
				}
			}
		})
	}
}

// TestChaosMatrixPartition: a one-way partition cuts one peer off from the
// store for two rounds. The round degrades gracefully — the cut-off peer
// reports a *PeerError while the others complete — and after healing the
// peer catches up to the fault-free baseline.
func TestChaosMatrixPartition(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, false)
	h := newChaosHarness(t, 7, false)
	const victim = PeerID("pc")
	for r := 0; r < chaosRounds; r++ {
		if r == 1 {
			h.net.PartitionOneWay("peer-"+string(victim), chaosStoreAddr)
		}
		if r == 3 {
			h.net.HealOneWay("peer-"+string(victim), chaosStoreAddr)
		}
		h.conflictFreeEdits(r)
		_, err := h.sys.ReconcileAll(context.Background())
		if r == 1 || r == 2 {
			var pe *PeerError
			if !errors.As(err, &pe) {
				t.Fatalf("round %d: want *PeerError for the partitioned peer, got %v", r, err)
			}
			if pe.Peer != victim {
				t.Errorf("round %d: PeerError for %s, want %s", r, pe.Peer, victim)
			}
			if !store.IsTransient(pe.Err) {
				t.Errorf("round %d: partition error should classify transient: %v", r, pe.Err)
			}
		} else if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	h.quiesce(2)
	diffFingerprints(t, h.fingerprint(), baseline)
	if h.net.FaultStats().PartitionDrops() == 0 {
		t.Error("partition never dropped a call")
	}
}

// TestChaosMatrixStoreCrash: the store node crashes mid-round (after edits,
// before the round runs), the round degrades to per-peer errors, then the
// store is rebuilt from its directory — snapshot plus WAL tail, idempotency
// table included — and the confederation converges to the fault-free
// baseline.
func TestChaosMatrixStoreCrash(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, false)
	h := newChaosHarness(t, 13, true)
	for r := 0; r < chaosRounds; r++ {
		h.conflictFreeEdits(r)
		if r == 2 {
			h.crashStore()
			_, err := h.sys.ReconcileAll(context.Background())
			if err == nil {
				t.Fatal("round against a crashed store succeeded")
			}
			var pe *PeerError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PeerError from the crashed round, got %v", err)
			}
			h.restartStore()
			// The same round retries after the restart and must complete:
			// the peers' pending edits were never consumed.
		}
		if _, err := h.sys.ReconcileAll(context.Background()); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	h.quiesce(2)
	diffFingerprints(t, h.fingerprint(), baseline)
	if h.net.FaultStats().CrashDrops() == 0 {
		t.Error("crash never dropped a call")
	}
}

// TestChaosMatrixLossAcrossRestart: message loss while the store also
// crashes and rebuilds — retried deliveries spanning the restart must
// dedupe against the durably reloaded idempotency table rather than
// double-apply.
func TestChaosMatrixLossAcrossRestart(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, false)
	h := newChaosHarness(t, 99, true)
	h.net.SetFaults(simnet.Faults{Loss: 0.05})
	for r := 0; r < chaosRounds; r++ {
		h.conflictFreeEdits(r)
		if r == 3 {
			h.crashStore()
			_, _ = h.sys.ReconcileAll(context.Background()) // degraded round
			h.restartStore()
		}
		if _, err := h.sys.ReconcileAll(context.Background()); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	h.quiesce(2)
	diffFingerprints(t, h.fingerprint(), baseline)
}

// The streaming cells run the same fault regimes against RunStreaming: the
// peers consume stable epochs through the watch long-poll while the fabric
// drops, cuts, or crashes under them, and every cell must still converge
// bit-identical to the fault-free ROUND-BASED baseline. The workload is the
// conflict-free one: a streaming run windows epochs differently than rounds
// do, and (as with the polling fallback) only conflict-free final states
// are window-insensitive.
//
// Cursor-resume is what these cells actually exercise: a lost or partitioned
// long-poll closes the client-side subscription channel, and ReconcileStream
// re-subscribes from the frontier of its last completed step — so a window
// can neither be skipped (the next BeginReconciliation starts at the stored
// frontier) nor double-applied (decisions are idempotency-keyed).

// TestChaosMatrixStreamingLoss: message loss on the watch stream at 1% and
// 10%. Polls that die mid-flight break the subscription; the stream resumes
// from its cursor and the confederation converges.
func TestChaosMatrixStreamingLoss(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, false)
	for _, cell := range []struct {
		name string
		loss float64
	}{
		{"loss1", 0.01},
		{"loss10", 0.10},
	} {
		t.Run(cell.name, func(t *testing.T) {
			h := newChaosHarness(t, 42, false)
			stop := h.startStreaming()
			h.net.SetFaults(simnet.Faults{Loss: cell.loss})
			var last Epoch
			for r := 0; r < chaosRounds; r++ {
				h.conflictFreeEdits(r)
				last = h.publishAll(last)
			}
			// The rounds can finish in milliseconds — too few deliveries for
			// a low loss rate to bite. The long-polls keep flowing, so hold
			// the fault regime open until at least one of them is dropped.
			for deadline := time.Now().Add(10 * time.Second); h.net.FaultStats().Lost() == 0 &&
				time.Now().Before(deadline); {
				time.Sleep(time.Millisecond)
			}
			h.streamQuiesce(last)
			stop()
			diffFingerprints(t, h.fingerprint(), baseline)
			if h.net.FaultStats().Lost() == 0 {
				t.Error("cell injected no faults — the run proved nothing")
			}
		})
	}
}

// TestChaosMatrixStreamingPartition: a one-way partition cuts one peer's
// watch stream (and publishes) mid-stream for two rounds. Its stream spins
// on resume attempts until the heal, then catches up from its cursor.
func TestChaosMatrixStreamingPartition(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, false)
	h := newChaosHarness(t, 7, false)
	const victim = PeerID("pc")
	stop := h.startStreaming()
	var last Epoch
	for r := 0; r < chaosRounds; r++ {
		if r == 1 {
			h.net.PartitionOneWay("peer-"+string(victim), chaosStoreAddr)
		}
		if r == 3 {
			h.net.HealOneWay("peer-"+string(victim), chaosStoreAddr)
		}
		h.conflictFreeEdits(r)
		last = h.publishAll(last)
	}
	h.streamQuiesce(last)
	stop()
	diffFingerprints(t, h.fingerprint(), baseline)
	if h.net.FaultStats().PartitionDrops() == 0 {
		t.Error("partition never dropped a call")
	}
}

// TestChaosMatrixStreamingStoreCrash: the store crashes and rebuilds from
// snapshot + WAL tail while every peer has an attached subscription. The
// dead store fails the long-polls (subscriptions close, resume attempts
// back off), publishes made during the outage stay pending, and after the
// restart the streams resume from their cursors against the rebuilt store.
func TestChaosMatrixStreamingStoreCrash(t *testing.T) {
	baseline := chaosBaseline(t, chaosRounds, false)
	h := newChaosHarness(t, 13, true)
	stop := h.startStreaming()
	var last Epoch
	for r := 0; r < chaosRounds; r++ {
		h.conflictFreeEdits(r)
		if r == 2 {
			h.crashStore()
			last = h.publishAll(last) // degraded: publishes fail transiently
			h.restartStore()
		}
		last = h.publishAll(last)
	}
	h.streamQuiesce(last)
	stop()
	diffFingerprints(t, h.fingerprint(), baseline)
	if h.net.FaultStats().CrashDrops() == 0 {
		t.Error("crash never dropped a call")
	}
}
