// Package orchestra is a collaborative data sharing system (CDSS): a
// confederation of autonomous participants who each control their own
// database instance of a shared schema, publish their updates as
// transactions, and selectively import ("reconcile") others' updates
// according to per-participant trust policies — tolerating disagreement
// rather than forcing a single globally consistent instance.
//
// It reproduces Taylor & Ives, "Reconciling while Tolerating Disagreement
// in Collaborative Data Sharing" (SIGMOD 2006), the reconciliation engine
// of the Orchestra system: transaction-level trust priorities, antecedent
// chains with transitive acceptance, delta flattening ("least
// interaction"), deferral of unresolvable conflicts with dirty-value
// protection, user-driven conflict resolution, and two update stores — a
// centralized store over an embedded relational engine and a distributed
// store over a Pastry-style DHT.
//
// # Quick start
//
//	schema := orchestra.MustSchema(orchestra.NewRelation("F", 2, "organism", "protein", "function"))
//	sys, _ := orchestra.NewSystem(schema)
//	alice, _ := sys.AddPeer("alice", orchestra.TrustAll(1))
//	bob, _ := sys.AddPeer("bob", orchestra.TrustOrigins(map[orchestra.PeerID]int{"alice": 2}))
//
//	alice.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "immune"), "alice"))
//	alice.PublishAndReconcile(ctx) // publish alice's edits
//	bob.PublishAndReconcile(ctx)   // bob imports what he trusts
//
// Each peer ends with its own internally consistent instance; conflicting
// updates of equal priority are deferred into conflict groups that the
// user resolves with Peer.Resolve.
//
// # Reconciliation pipeline
//
// Reconciliation is executed as a concurrent, allocation-lean pipeline.
// Inside a single engine, the embarrassingly parallel stages of Figure 4 —
// per-candidate extension flattening + CheckState, and the FindConflicts
// pair checks — fan out over a bounded worker pool, while the
// order-sensitive decision/apply loop stays sequential, so decisions are
// bit-identical at every worker count; WithParallelism(1) is the serial
// escape hatch (the default bound is GOMAXPROCS). Across engines,
// System.ReconcileAll publishes every peer and then reconciles every peer
// concurrently (engines are single-owner, stores are safe for concurrent
// use), bounded by WithReconcileFanOut — the bound changes concurrency,
// never semantics; WithInterleavedReconcile restores the historical
// strictly sequential registration-order pass. System.Pipeline exposes
// aggregated stage latencies, work counters, and the fan-out busy gauge.
// The hot path avoids re-encoding tuples (encodings are cached per update
// at validation time) and recycles flattening scratch state through a
// sync.Pool.
package orchestra

import (
	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/store"
	"orchestra/internal/trust"
	"orchestra/internal/workload"
)

// Core data model.
type (
	// Value is a typed attribute value (string, int, float, bool, or NULL).
	Value = core.Value
	// Tuple is an ordered list of values conforming to a relation.
	Tuple = core.Tuple
	// Relation describes one relation: attributes, key, constraints.
	Relation = core.Relation
	// AttrDef declares one attribute of a relation.
	AttrDef = core.AttrDef
	// ForeignKey declares a referential constraint.
	ForeignKey = core.ForeignKey
	// Schema is the set of relations shared by all participants.
	Schema = core.Schema
	// PeerID identifies a participant.
	PeerID = core.PeerID
	// Update is one tuple-level change annotated with its origin.
	Update = core.Update
	// Op is the update operation kind (insert, delete, modify).
	Op = core.Op
	// Transaction is an atomic group of updates X_{i:j}.
	Transaction = core.Transaction
	// TxnID identifies a transaction: originator and local sequence.
	TxnID = core.TxnID
	// Epoch is the publication epoch counter.
	Epoch = core.Epoch
	// Instance is a participant's materialized database instance.
	Instance = core.Instance
	// Engine is the client-centric reconciliation engine.
	Engine = core.Engine
	// EngineOption configures an Engine (e.g. WithParallelism).
	EngineOption = core.EngineOption
	// ReconcileStats counts the work done by one reconciliation, including
	// per-stage pipeline latencies.
	ReconcileStats = core.ReconcileStats
	// Pipeline aggregates reconciliation-pipeline counters across peers.
	Pipeline = metrics.Pipeline
	// PipelineSnapshot is a point-in-time copy of pipeline counters.
	PipelineSnapshot = metrics.PipelineSnapshot
	// Trust evaluates a participant's acceptance rules.
	Trust = core.Trust
	// Decision is a reconciliation outcome (accept, reject, defer).
	Decision = core.Decision
	// Result reports one reconciliation's decisions and statistics.
	Result = core.Result
	// Conflict identifies a conflict by type, relation and value.
	Conflict = core.Conflict
	// ConflictGroup is a group of conflicts over one value, with options.
	ConflictGroup = core.ConflictGroup
	// Option is one resolvable choice within a conflict group.
	Option = core.Option
	// Peer couples an engine with an update store.
	Peer = store.Peer
	// Store is the update store interface of the paper's §5.2.
	Store = store.Store
	// PublishedTxn is a transaction plus its antecedent set as shipped to
	// the update store.
	PublishedTxn = store.PublishedTxn
	// Watcher is the optional store capability of subscribing to newly
	// stable epochs (Store implementations may also be WatchProbers).
	Watcher = store.Watcher
	// WatchEvent is one window of newly stable epochs delivered to a watch
	// subscription.
	WatchEvent = store.WatchEvent
	// StreamOptions tunes Peer.ReconcileStream / System.RunStreaming.
	StreamOptions = store.StreamOptions
	// StreamResult reports one completed streaming reconcile step.
	StreamResult = store.StreamResult
	// TrustPolicy is a compiled set of acceptance rules in the textual
	// predicate language (see ParseTrustPolicy).
	TrustPolicy = trust.Policy
	// WorkloadGenerator produces the paper's SWISS-PROT-style synthetic
	// curation workload.
	WorkloadGenerator = workload.Generator
	// WorkloadConfig parameterizes a workload generator.
	WorkloadConfig = workload.Config
)

// Update operations.
const (
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
	OpModify = core.OpModify
)

// Decisions.
const (
	DecisionNone   = core.DecisionNone
	DecisionAccept = core.DecisionAccept
	DecisionReject = core.DecisionReject
	DecisionDefer  = core.DecisionDefer
)

// Value constructors.
var (
	// S builds a string value.
	S = core.S
	// I builds an integer value.
	I = core.I
	// F builds a float value.
	F = core.F
	// B builds a boolean value.
	B = core.B
	// Null builds the NULL value.
	Null = core.Null
	// T builds a tuple from values.
	T = core.T
	// Strs builds a tuple of string values.
	Strs = core.Strs
)

// Schema constructors.
var (
	// NewRelation builds a string-typed relation whose key is its first
	// nkey attributes.
	NewRelation = core.NewRelation
	// NewSchema validates and assembles a schema.
	NewSchema = core.NewSchema
	// MustSchema is NewSchema that panics on error.
	MustSchema = core.MustSchema
)

// Update constructors.
var (
	// Insert builds +rel(t; origin).
	Insert = core.Insert
	// Delete builds −rel(t; origin).
	Delete = core.Delete
	// Modify builds rel(old→new; origin).
	Modify = core.Modify
)

// Engine construction and tuning.
var (
	// NewEngine builds a standalone reconciliation engine (System.AddPeer
	// constructs one implicitly per peer).
	NewEngine = core.NewEngine
	// WithParallelism bounds the engine's worker pool for the parallel
	// reconciliation stages; 1 forces fully serial execution.
	WithParallelism = core.WithParallelism
)

// Trust policy constructors.
var (
	// TrustAll assigns one priority to every update.
	TrustAll = core.TrustAll
	// TrustOrigins maps originating peers to priorities.
	TrustOrigins = core.TrustOrigins
	// ParseTrustPolicy compiles a textual policy: one rule per line,
	// "priority <n> when <predicate>", with predicates over origin, rel,
	// op, attr('name') and newattr('name').
	ParseTrustPolicy = trust.Parse
	// NewTrustPolicy returns an empty textual policy for incremental
	// construction.
	NewTrustPolicy = trust.NewPolicy
)

// Workload and metrics.
var (
	// NewWorkload returns a SWISS-PROT-style generator (§6 of the paper).
	NewWorkload = workload.New
	// WorkloadSchema returns the workload's Function/XRef schema.
	WorkloadSchema = workload.Schema
	// StateRatio computes the paper's sharing-quality metric over
	// instances: the average number of distinct per-key states.
	StateRatio = metrics.StateRatio
	// CanWatch reports whether a store supports watch subscriptions,
	// consulting its capability probe when it has one.
	CanWatch = store.CanWatch
)
