package orchestra

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
)

// The streaming-vs-round differential. Both modes run the identical
// workload and must produce bit-identical decision transcripts and engine
// state. The workload is built so window boundaries are forced to agree:
//
//   - A round-based warm-up round (phase 0) runs in both modes and plants
//     an equal-priority conflict, so one peer holds deferred transactions
//     and dirty keys when streaming begins.
//   - Every later round has exactly ONE publisher, so a round is exactly
//     one epoch and a streaming window can never split or merge a round's
//     conflicting candidates relative to the round-based pass. The driver
//     waits for every peer's stream frontier to pass the round's epoch
//     before publishing the next (the same barrier ReconcileAll provides).
//
// Within that frame the rounds still exercise every decision kind:
// conflicting re-inserts of an applied key (rejects at every importer),
// edits touching the warm-up's dirty key (defers), rejected-antecedent
// chains, and plain disjoint inserts (accepts).

// streamRound is one single-publisher round: each update becomes its own
// transaction, all published in one epoch.
type streamRound struct {
	pub   PeerID
	edits []Update
}

func streamingRounds() []streamRound {
	return []streamRound{
		// pa claims key K; pc (which does not trust pa) never imports it.
		{"pa", []Update{
			Insert("F", Strs("org", "K", "ka"), "pa"),
			Insert("F", Strs("org", "A1", "v"), "pa"),
		}},
		// pc re-inserts K with a different value: every peer that applied
		// pa's version rejects it (instance-incompatible), while C2 in the
		// same epoch is accepted — both decisions in one window.
		{"pc", []Update{
			Insert("F", Strs("org", "K", "kc"), "pc"),
			Insert("F", Strs("org", "C2", "v"), "pc"),
		}},
		// pc revises the warm-up tuple it imported from pb: pd holds TIE as
		// a dirty key and must defer; pa rejected pb's original, so the
		// chain is rejected there; pb accepts the revision.
		{"pc", []Update{
			Modify("F", Strs("org", "TIE", "vb"), Strs("org", "TIE", "vx"), "pc"),
		}},
		{"pb", []Update{Insert("F", Strs("org", "B4", "v"), "pb")}},
		{"pd", []Update{Insert("F", Strs("org", "D5", "v"), "pd")}},
	}
}

var streamPeerOrder = []PeerID{"pa", "pb", "pc", "pd"}

func addStreamPeers(t *testing.T, sys *System) map[PeerID]*Peer {
	t.Helper()
	trust := map[PeerID]map[PeerID]int{
		"pa": {"pb": 1, "pc": 1, "pd": 1},
		"pb": {"pa": 2, "pc": 1, "pd": 1},
		"pc": {"pb": 1, "pd": 1}, // pa untrusted: enables the conflicting K re-insert
		"pd": {"pa": 1, "pb": 1, "pc": 1},
	}
	out := make(map[PeerID]*Peer, len(streamPeerOrder))
	for _, id := range streamPeerOrder {
		p, err := sys.AddPeer(id, TrustOrigins(trust[id]))
		if err != nil {
			t.Fatal(err)
		}
		out[id] = p
	}
	return out
}

// streamScenarioResult is everything the differential compares: per-peer
// ordered non-empty decision windows, final instances, and the engine's
// applied/rejected/deferred sets over the published universe.
type streamScenarioResult struct {
	Outcomes  map[PeerID][]roundOutcome
	Instances map[PeerID][]string
	Applied   map[PeerID][]string
	Rejected  map[PeerID][]string
	Deferred  map[PeerID][]string
}

func recordOutcome(outcomes map[PeerID][]roundOutcome, id PeerID, res *Result) {
	if res == nil || len(res.Accepted)+len(res.Rejected)+len(res.Deferred) == 0 {
		return
	}
	outcomes[id] = append(outcomes[id], roundOutcome{
		Accepted: sortedIDs(res.Accepted),
		Rejected: sortedIDs(res.Rejected),
		Deferred: sortedIDs(res.Deferred),
	})
}

func streamFingerprint(peers map[PeerID]*Peer, universe []TxnID, outcomes map[PeerID][]roundOutcome) streamScenarioResult {
	out := streamScenarioResult{
		Outcomes:  outcomes,
		Instances: make(map[PeerID][]string),
		Applied:   make(map[PeerID][]string),
		Rejected:  make(map[PeerID][]string),
		Deferred:  make(map[PeerID][]string),
	}
	ids := sortedIDs(universe)
	for id, p := range peers {
		var enc []string
		for _, tuple := range p.Instance().Tuples("F") {
			enc = append(enc, tuple.Encode())
		}
		sort.Strings(enc)
		out.Instances[id] = enc
		for _, x := range ids {
			if p.Engine().Applied(x) {
				out.Applied[id] = append(out.Applied[id], fmt.Sprint(x))
			}
			if p.Engine().Rejected(x) {
				out.Rejected[id] = append(out.Rejected[id], fmt.Sprint(x))
			}
		}
		for _, x := range sortedIDs(p.Engine().DeferredIDs()) {
			out.Deferred[id] = append(out.Deferred[id], fmt.Sprint(x))
		}
	}
	return out
}

func streamSchema() *Schema {
	return MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
}

// phase0 plants the warm-up conflict and runs one round-based round: pa and
// pb publish equal-priority values for TIE, so pd defers both (dirty key)
// while pa and pb each reject the other's.
func phase0(t *testing.T, ctx context.Context, sys *System, peers map[PeerID]*Peer,
	edit func(*Peer, Update) *Transaction, outcomes map[PeerID][]roundOutcome) {
	t.Helper()
	edit(peers["pa"], Insert("F", Strs("org", "TIE", "va"), "pa"))
	edit(peers["pb"], Insert("F", Strs("org", "TIE", "vb"), "pb"))
	results, err := sys.ReconcileAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range streamPeerOrder {
		recordOutcome(outcomes, id, results[id])
	}
	if got := peers["pd"].Engine().DeferredIDs(); len(got) != 2 {
		t.Fatalf("warm-up did not defer at pd: %v", got)
	}
}

// runRoundScenario is the reference: after the warm-up, an alignment
// reconcile (the analogue of the streams' catch-up step, which re-reports
// carried deferrals), then one publish + all-peers-reconcile pass per
// single-publisher round.
func runRoundScenario(t *testing.T, storeOpts ...central.Option) streamScenarioResult {
	t.Helper()
	ctx := context.Background()
	cs, err := central.Open(streamSchema(), "", storeOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	sys, err := NewSystem(streamSchema(), WithPeerStores(func(core.PeerID) (store.Store, error) { return cs, nil }))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	peers := addStreamPeers(t, sys)

	var universe []TxnID
	outcomes := make(map[PeerID][]roundOutcome)
	edit := func(p *Peer, u Update) *Transaction {
		x, err := p.Edit(u)
		if err != nil {
			t.Fatalf("edit at %s: %v", p.ID(), err)
		}
		universe = append(universe, x.ID)
		return x
	}
	phase0(t, ctx, sys, peers, edit, outcomes)
	for _, id := range streamPeerOrder {
		res, err := peers[id].Reconcile(ctx)
		if err != nil {
			t.Fatal(err)
		}
		recordOutcome(outcomes, id, res)
	}
	for _, r := range streamingRounds() {
		for _, u := range r.edits {
			edit(peers[r.pub], u)
		}
		if _, err := peers[r.pub].Publish(ctx); err != nil {
			t.Fatal(err)
		}
		for _, id := range streamPeerOrder {
			res, err := peers[id].Reconcile(ctx)
			if err != nil {
				t.Fatal(err)
			}
			recordOutcome(outcomes, id, res)
		}
	}
	return streamFingerprint(peers, universe, outcomes)
}

// waitStream polls cond (under mu) until it holds or the deadline passes.
func waitStream(t *testing.T, mu *sync.Mutex, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		ok := cond()
		mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams never reached: %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// runStreamingScenario drives the same workload with RunStreaming: the
// driver only edits and publishes; reconciliation and decision flushing
// happen on the per-peer streams, with the round barrier expressed as
// "every stream frontier has passed this round's epoch".
func runStreamingScenario(t *testing.T, hideWatch bool, storeOpts ...central.Option) (streamScenarioResult, PipelineSnapshot) {
	t.Helper()
	ctx := context.Background()
	cs, err := central.Open(streamSchema(), "", storeOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	var mu sync.Mutex
	outcomes := make(map[PeerID][]roundOutcome)
	steps := make(map[PeerID]int)
	frontier := make(map[PeerID]Epoch)
	obs := func(r StreamResult) {
		mu.Lock()
		defer mu.Unlock()
		steps[r.Peer]++
		if r.To > frontier[r.Peer] {
			frontier[r.Peer] = r.To
		}
		recordOutcome(outcomes, r.Peer, r.Result)
	}
	factory := func(core.PeerID) (store.Store, error) {
		if hideWatch {
			return unwatchable{cs}, nil
		}
		return cs, nil
	}
	sys, err := NewSystem(streamSchema(),
		WithPeerStores(factory),
		WithStreamObserver(obs),
		WithStreamPoll(2*time.Millisecond),
		WithStreamRetry(time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	peers := addStreamPeers(t, sys)

	var universe []TxnID
	edit := func(p *Peer, u Update) *Transaction {
		x, err := p.Edit(u)
		if err != nil {
			t.Fatalf("edit at %s: %v", p.ID(), err)
		}
		universe = append(universe, x.ID)
		return x
	}
	mu.Lock()
	phase0(t, ctx, sys, peers, edit, outcomes)
	mu.Unlock()

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- sys.RunStreaming(sctx) }()

	// Catch-up barrier: every stream has run its first step (which, at pd,
	// re-reports the carried deferrals — matching the reference's
	// alignment reconcile) before the first streamed publish.
	waitStream(t, &mu, "catch-up step on every peer", func() bool {
		for _, id := range streamPeerOrder {
			if steps[id] < 1 {
				return false
			}
		}
		return true
	})

	for i, r := range streamingRounds() {
		for _, u := range r.edits {
			edit(peers[r.pub], u)
		}
		epoch, err := peers[r.pub].Publish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		waitStream(t, &mu, fmt.Sprintf("round %d frontier %d", i, epoch), func() bool {
			for _, id := range streamPeerOrder {
				if frontier[id] < epoch {
					return false
				}
			}
			return true
		})
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("RunStreaming: %v", err)
	}
	// Streams are joined: engines are quiescent and safe to fingerprint.
	return streamFingerprint(peers, universe, outcomes), sys.Pipeline().Snapshot()
}

// unwatchable hides every optional capability of the wrapped store, so the
// streaming loop must take the polling fallback.
type unwatchable struct{ store.Store }

func diffStreamResults(t *testing.T, got, want streamScenarioResult, withTranscripts bool) {
	t.Helper()
	if withTranscripts && !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
		t.Errorf("decision transcripts diverge:\n got %+v\nwant %+v", got.Outcomes, want.Outcomes)
	}
	if !reflect.DeepEqual(got.Instances, want.Instances) {
		t.Errorf("instances diverge:\n got %+v\nwant %+v", got.Instances, want.Instances)
	}
	if !reflect.DeepEqual(got.Applied, want.Applied) {
		t.Errorf("applied sets diverge:\n got %+v\nwant %+v", got.Applied, want.Applied)
	}
	if !reflect.DeepEqual(got.Rejected, want.Rejected) {
		t.Errorf("rejected sets diverge:\n got %+v\nwant %+v", got.Rejected, want.Rejected)
	}
	if !reflect.DeepEqual(got.Deferred, want.Deferred) {
		t.Errorf("deferred sets diverge:\n got %+v\nwant %+v", got.Deferred, want.Deferred)
	}
}

// TestStreamingDifferential: the tentpole correctness gate. The streaming
// reconcile loop must be bit-identical to the round-based pass — same
// per-peer decision windows, same final instances, same engine decision
// sets — across table shards × group-commit × compaction. Run with -race
// (the tier-1 gate does): the streaming runs overlap publishes, watch
// delivery, reconciliation, and decision flushes across goroutines.
func TestStreamingDifferential(t *testing.T) {
	ref := runRoundScenario(t)

	// The scenario must exercise every decision kind, or the comparison
	// proves nothing.
	var accepts, rejects, defers int
	for _, rounds := range ref.Outcomes {
		for _, o := range rounds {
			accepts += len(o.Accepted)
			rejects += len(o.Rejected)
			defers += len(o.Deferred)
		}
	}
	if accepts == 0 || rejects == 0 || defers == 0 {
		t.Fatalf("vacuous scenario: accepts=%d rejects=%d defers=%d", accepts, rejects, defers)
	}

	for _, shards := range []int{1, 4, 8} {
		for _, group := range []bool{true, false} {
			for _, compact := range []bool{true, false} {
				name := fmt.Sprintf("shards=%d/groupcommit=%v/compaction=%v", shards, group, compact)
				t.Run(name, func(t *testing.T) {
					opts := []central.Option{central.WithTableShards(shards)}
					if group {
						opts = append(opts, central.WithGroupCommit(0))
					} else {
						opts = append(opts, central.WithSerialCommit())
					}
					if compact {
						opts = append(opts, central.WithSnapshotEvery(2), central.WithCompactKeep(1))
					}
					got, pstats := runStreamingScenario(t, false, opts...)
					diffStreamResults(t, got, ref, true)
					// The lag counters are live on the streaming path.
					if pstats.StreamPublishStable == 0 {
						t.Error("no publish-to-stable latencies observed")
					}
					if pstats.StreamStableDecide == 0 {
						t.Error("no stable-to-decision latencies observed")
					}
				})
			}
		}
	}
}

// TestStreamingPollingFallback: against a store without watch support the
// loop degrades to polling and must converge to the identical final state.
// The per-window transcript is exempt here by design — a polling step runs
// on a timer, so carried deferrals are re-reported once per tick rather
// than once per round; windows differ, final state may not.
func TestStreamingPollingFallback(t *testing.T) {
	ref := runRoundScenario(t)
	got, _ := runStreamingScenario(t, true)
	diffStreamResults(t, got, ref, false)
}
