package orchestra

import (
	"context"
	"fmt"
	"testing"
)

func fleetPolicy(t *testing.T) *TrustPolicy {
	t.Helper()
	p, err := ParseTrustPolicy("priority 1 when true")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Basic fleet lifecycle: groups land on ring owners, reconcile through
// the routed store, and their data stays per-group.
func TestFleetBasic(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 1, "k", "v"))
	fleet := NewFleet()
	defer fleet.Close()
	for _, s := range []string{"s0", "s1"} {
		if err := fleet.AddStore(s); err != nil {
			t.Fatal(err)
		}
	}
	policy := fleetPolicy(t)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("group-%d", i)
		g, err := fleet.AddGroup(GroupSpec{
			ID:     id,
			Schema: schema,
			Peers: []GroupPeer{
				{ID: "alice", Trust: policy},
				{ID: "bob", Trust: policy},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		owner, ok := fleet.StoreFor(id)
		if !ok || owner == "" {
			t.Fatalf("group %s has no owner", id)
		}
		alice, _ := g.System().Peer("alice")
		if _, err := alice.Edit(Insert("F", Strs("k-"+id, "v-"+id), "alice")); err != nil {
			t.Fatal(err)
		}
		if _, err := g.System().ReconcileAll(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := g.System().ReconcileAll(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Every group's bob imported exactly his group's row.
	for _, g := range fleet.Groups() {
		bob, _ := g.System().Peer("bob")
		inst := bob.Instance()
		tuples := inst.Tuples("F")
		if len(tuples) != 1 {
			t.Fatalf("group %s: bob has %d F rows, want 1", g.ID(), len(tuples))
		}
		if got := tuples[0][0].String(); got != "k-"+g.ID() {
			t.Fatalf("group %s: bob imported %q", g.ID(), got)
		}
	}
	if len(fleet.Groups()) != 4 {
		t.Fatalf("fleet has %d groups, want 4", len(fleet.Groups()))
	}
}

// Scheduler rounds over more groups than the concurrency bound: all
// groups converge.
func TestSchedulerRounds(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 1, "k", "v"))
	fleet := NewFleet()
	defer fleet.Close()
	if err := fleet.AddStore("s0"); err != nil {
		t.Fatal(err)
	}
	policy := fleetPolicy(t)
	const groups = 7
	for i := 0; i < groups; i++ {
		id := fmt.Sprintf("g%d", i)
		g, err := fleet.AddGroup(GroupSpec{
			ID:     id,
			Schema: schema,
			Peers:  []GroupPeer{{ID: "a", Trust: policy}, {ID: "b", Trust: policy}},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := g.System().Peer("a")
		if _, err := a.Edit(Insert("F", Strs("k"+id, "v"), "a")); err != nil {
			t.Fatal(err)
		}
	}
	sched := NewScheduler(fleet.Groups(), WithGroupLimit(2))
	if err := sched.RunRounds(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for _, g := range fleet.Groups() {
		b, _ := g.System().Peer("b")
		if n := len(b.Instance().Tuples("F")); n != 1 {
			t.Fatalf("group %s: b has %d rows after scheduled rounds, want 1", g.ID(), n)
		}
	}
}
