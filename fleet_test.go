package orchestra

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/store/central"
)

func fleetPolicy(t *testing.T) *TrustPolicy {
	t.Helper()
	p, err := ParseTrustPolicy("priority 1 when true")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Basic fleet lifecycle: groups land on ring owners, reconcile through
// the routed store, and their data stays per-group.
func TestFleetBasic(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 1, "k", "v"))
	fleet := NewFleet()
	defer fleet.Close()
	for _, s := range []string{"s0", "s1"} {
		if err := fleet.AddStore(s); err != nil {
			t.Fatal(err)
		}
	}
	policy := fleetPolicy(t)
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("group-%d", i)
		g, err := fleet.AddGroup(GroupSpec{
			ID:     id,
			Schema: schema,
			Peers: []GroupPeer{
				{ID: "alice", Trust: policy},
				{ID: "bob", Trust: policy},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		owner, ok := fleet.StoreFor(id)
		if !ok || owner == "" {
			t.Fatalf("group %s has no owner", id)
		}
		alice, _ := g.System().Peer("alice")
		if _, err := alice.Edit(Insert("F", Strs("k-"+id, "v-"+id), "alice")); err != nil {
			t.Fatal(err)
		}
		if _, err := g.System().ReconcileAll(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := g.System().ReconcileAll(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Every group's bob imported exactly his group's row.
	for _, g := range fleet.Groups() {
		bob, _ := g.System().Peer("bob")
		inst := bob.Instance()
		tuples := inst.Tuples("F")
		if len(tuples) != 1 {
			t.Fatalf("group %s: bob has %d F rows, want 1", g.ID(), len(tuples))
		}
		if got := tuples[0][0].String(); got != "k-"+g.ID() {
			t.Fatalf("group %s: bob imported %q", g.ID(), got)
		}
	}
	if len(fleet.Groups()) != 4 {
		t.Fatalf("fleet has %d groups, want 4", len(fleet.Groups()))
	}
}

// Scheduler rounds over more groups than the concurrency bound: all
// groups converge.
// TestFleetCopyGroupSiblingPrefix: the migration copy must select exactly
// the group's own tables. "team" and "team-1" overlapped under the old
// single-'_' namespace terminator ('-' encodes as "_2d"), so migrating
// "team" also carried — and then detached — the sibling tenant. And a
// re-copy onto a target that kept tables from an earlier failed attempt
// must replace them rather than fail on a duplicate create, or the group
// can never migrate to that node again.
func TestFleetCopyGroupSiblingPrefix(t *testing.T) {
	schema := MustSchema(NewRelation("F", 1, "k", "v"))
	src, err := central.OpenNode("")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := central.OpenNode("")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for _, g := range []string{"team", "team-1"} {
		if _, err := src.OpenGroup(g, schema); err != nil {
			t.Fatal(err)
		}
		if err := src.CloseGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := copyGroupData(src.DB(), dst.DB(), "team"); err != nil {
		t.Fatal(err)
	}
	if got := dst.StoredGroups(); len(got) != 1 || got[0] != "team" {
		t.Fatalf("target stores %v after copying %q, want exactly [team]", got, "team")
	}
	if err := copyGroupData(src.DB(), dst.DB(), "team"); err != nil {
		t.Fatalf("re-copy onto leftover target tables: %v", err)
	}
	if got := src.StoredGroups(); len(got) != 2 {
		t.Fatalf("source stores %v, want both groups intact", got)
	}
}

func TestSchedulerRounds(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 1, "k", "v"))
	fleet := NewFleet()
	defer fleet.Close()
	if err := fleet.AddStore("s0"); err != nil {
		t.Fatal(err)
	}
	policy := fleetPolicy(t)
	const groups = 7
	for i := 0; i < groups; i++ {
		id := fmt.Sprintf("g%d", i)
		g, err := fleet.AddGroup(GroupSpec{
			ID:     id,
			Schema: schema,
			Peers:  []GroupPeer{{ID: "a", Trust: policy}, {ID: "b", Trust: policy}},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := g.System().Peer("a")
		if _, err := a.Edit(Insert("F", Strs("k"+id, "v"), "a")); err != nil {
			t.Fatal(err)
		}
	}
	sched := NewScheduler(fleet.Groups(), WithGroupLimit(2))
	if err := sched.RunRounds(ctx, 2); err != nil {
		t.Fatal(err)
	}
	for _, g := range fleet.Groups() {
		b, _ := g.System().Peer("b")
		if n := len(b.Instance().Tuples("F")); n != 1 {
			t.Fatalf("group %s: b has %d rows after scheduled rounds, want 1", g.ID(), n)
		}
	}
}
