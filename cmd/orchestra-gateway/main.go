// Command orchestra-gateway fronts an orchestra-store with the
// production-shaped HTTP/JSON serving surface: the full store capability
// set (publish, begin/decide, watch via long-poll or SSE, snapshot and
// replay) behind bearer-token auth, per-group token-bucket rate limits, a
// backend connection pool, and queue-depth backpressure that sheds load
// with Retry-After instead of collapsing. Routes and semantics are
// documented in docs/GATEWAY.md.
//
// Usage:
//
//	orchestra-store -listen :7400 -schema protein &
//	orchestra-gateway -listen :8080 -store 127.0.0.1:7400 -pool 4 \
//	    -rate 500 -burst 100 -max-inflight 128 -token s3cret
//
// With -memory the gateway hosts an in-process store instead — a
// self-contained single-binary deployment for demos and smoke tests.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/gateway"
	"orchestra/internal/metrics"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP address to serve on")
	storeAddr := flag.String("store", "", "TCP address of the orchestra-store backend")
	memory := flag.Bool("memory", false, "host an in-process in-memory store instead of -store")
	schemaName := flag.String("schema", "protein", "built-in schema: protein|swissprot")
	pool := flag.Int("pool", 4, "backend connection pool size")
	token := flag.String("token", "", "bearer token required on every request (empty = no auth)")
	rate := flag.Float64("rate", 0, "per-group rate limit in requests/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "rate-limit burst size (default: rate)")
	maxInFlight := flag.Int("max-inflight", 128, "max concurrently served requests")
	maxQueue := flag.Int("max-queue", 0, "max queued requests before shedding (default 2x max-inflight)")
	queueWait := flag.Duration("queue-wait", 100*time.Millisecond, "max time a request queues before being shed")
	watchWait := flag.Duration("watch-wait", 10*time.Second, "long-poll watch wait cap")
	flag.Parse()

	schema, err := builtinSchema(*schemaName)
	if err != nil {
		log.Fatal(err)
	}

	var backend store.Store
	switch {
	case *memory:
		cs := central.MustOpenMemory(schema)
		defer cs.Close()
		backend = cs
	case *storeAddr != "":
		clients := make([]store.Store, *pool)
		for i := range clients {
			clients[i] = remote.NewClient(fmt.Sprintf("gateway-%d", i), *storeAddr)
		}
		backend = gateway.NewPool(clients...)
	default:
		log.Fatal("orchestra-gateway: need -store ADDR or -memory")
	}

	counters := &metrics.GatewayCounters{}
	opts := gateway.Options{
		Rate:        *rate,
		Burst:       *burst,
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
		WatchWait:   *watchWait,
		Counters:    counters,
	}
	if *token != "" {
		want := "Bearer " + *token
		opts.Auth = func(r *http.Request) error {
			if r.Header.Get("Authorization") != want {
				return fmt.Errorf("bad or missing bearer token")
			}
			return nil
		}
	}

	gw := gateway.New(backend, schema, opts)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		log.Printf("orchestra-gateway: serving schema %q on %s (backend=%s, pool=%d, rate=%.0f/s, inflight=%d)",
			*schemaName, *listen, backendName(*memory, *storeAddr), *pool, *rate, *maxInFlight)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("orchestra-gateway: shutting down; %s", counters.Snapshot())
	srv.Close()
}

func backendName(memory bool, addr string) string {
	if memory {
		return "in-memory"
	}
	return addr
}

// builtinSchema resolves the named schema.
func builtinSchema(name string) (*core.Schema, error) {
	switch name {
	case "protein":
		return core.NewSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	case "swissprot":
		return workload.Schema(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (want protein|swissprot)", name)
	}
}
