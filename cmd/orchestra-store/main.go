// Command orchestra-store hosts the centralized update store (§5.2.1) as a
// TCP server so that orchestra-peer processes can form a confederation
// across machines. The store is durable: epochs, transactions, decisions,
// and the retained engine-state snapshot survive restarts via the embedded
// relational engine's WAL.
//
// With -snapshot-every the store periodically snapshots its global engine
// state at a stable-epoch boundary, which bounds peer catch-up (a crashed
// or new-machine peer rebuilds from the snapshot plus the log tail, in two
// round trips); adding -compact-keep then reclaims the publish log behind
// the snapshot, subject to the safety invariants of docs/RECOVERY.md.
//
// Usage:
//
//	orchestra-store -listen :7400 -dir /var/lib/orchestra -schema swissprot \
//	    -snapshot-every 64 -compact-keep 128
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"orchestra/internal/core"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7400", "address to listen on")
	dir := flag.String("dir", "", "durability directory (empty = in-memory)")
	schemaName := flag.String("schema", "protein", "built-in schema: protein|swissprot")
	shards := flag.Int("shards", 0, "epoch-shard count of the epochs/txns/decisions tables for a fresh directory (0 = default 8; existing directories keep the count recorded in their meta table, and a conflicting explicit count is refused)")
	snapEvery := flag.Int("snapshot-every", 0, "take an engine-state snapshot every N stable epochs (0 = only on demand); snapshots bound peer catch-up to the post-snapshot tail")
	compactKeep := flag.Int("compact-keep", -1, "after each automatic snapshot, compact the publish log keeping N epochs below the allowed horizon (-1 = never compact; requires -snapshot-every)")
	flag.Parse()

	schema, err := builtinSchema(*schemaName)
	if err != nil {
		log.Fatal(err)
	}
	var opts []central.Option
	if *shards > 0 {
		opts = append(opts, central.WithTableShards(*shards))
	}
	if *snapEvery > 0 {
		opts = append(opts, central.WithSnapshotEvery(*snapEvery))
	}
	if *compactKeep >= 0 {
		if *snapEvery <= 0 {
			log.Fatal("orchestra-store: -compact-keep requires -snapshot-every (compaction needs a retained snapshot)")
		}
		opts = append(opts, central.WithCompactKeep(*compactKeep))
	}
	backend, err := central.Open(schema, *dir, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()

	srv := remote.NewServer(backend, schema)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("orchestra-store: serving schema %q on %s (dir=%q, shards=%d, snapshot-every=%d, compact-keep=%d)",
		*schemaName, addr, *dir, backend.TableShards(), *snapEvery, *compactKeep)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("orchestra-store: shutting down")
	if *dir != "" {
		if err := backend.Checkpoint(); err != nil {
			log.Printf("checkpoint: %v", err)
		}
	}
}

// builtinSchema resolves the named schema.
func builtinSchema(name string) (*core.Schema, error) {
	switch name {
	case "protein":
		return core.NewSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	case "swissprot":
		return workload.Schema(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (want protein|swissprot)", name)
	}
}
