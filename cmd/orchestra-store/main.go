// Command orchestra-store hosts the centralized update store (§5.2.1) as a
// TCP server so that orchestra-peer processes can form a confederation
// across machines. The store is durable: epochs, transactions, and
// decisions survive restarts via the embedded relational engine's WAL.
//
// Usage:
//
//	orchestra-store -listen :7400 -dir /var/lib/orchestra -schema swissprot
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"orchestra/internal/core"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7400", "address to listen on")
	dir := flag.String("dir", "", "durability directory (empty = in-memory)")
	schemaName := flag.String("schema", "protein", "built-in schema: protein|swissprot")
	shards := flag.Int("shards", 0, "epoch-shard count for a fresh directory (0 = default; existing directories keep the count they were created with)")
	flag.Parse()

	schema, err := builtinSchema(*schemaName)
	if err != nil {
		log.Fatal(err)
	}
	var opts []central.Option
	if *shards > 0 {
		opts = append(opts, central.WithTableShards(*shards))
	}
	backend, err := central.Open(schema, *dir, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer backend.Close()

	srv := remote.NewServer(backend, schema)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("orchestra-store: serving schema %q on %s (dir=%q, shards=%d)", *schemaName, addr, *dir, backend.TableShards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("orchestra-store: shutting down")
	if *dir != "" {
		if err := backend.Checkpoint(); err != nil {
			log.Printf("checkpoint: %v", err)
		}
	}
}

// builtinSchema resolves the named schema.
func builtinSchema(name string) (*core.Schema, error) {
	switch name {
	case "protein":
		return core.NewSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	case "swissprot":
		return workload.Schema(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (want protein|swissprot)", name)
	}
}
