// Command orchestra-demo narrates the paper's running example (Figures 1
// and 2) epoch by epoch: three bioinformatics warehouses with asymmetric
// trust publish and reconcile protein-function updates, ending with p1
// deferring the three-way rat/prot1 controversy — which the demo then
// resolves each possible way, showing the resulting instances.
package main

import (
	"context"
	"fmt"
	"log"

	"orchestra"
)

func main() {
	fmt.Println("Orchestra CDSS — the SIGMOD 2006 running example (Figures 1-2)")
	fmt.Println()
	fmt.Println("Participants: p1 trusts {p2:1, p3:1}; p2 trusts {p1:2, p3:1}; p3 trusts {p2:1}")
	fmt.Println("Relation: F(organism, protein, function), key (organism, protein)")
	fmt.Println()

	for _, choice := range []string{"immune", "cell-resp", "cell-metab", "reject all"} {
		fmt.Printf("=== run with p1's user choosing %q ===\n", choice)
		run(choice)
		fmt.Println()
	}
}

func run(choice string) {
	ctx := context.Background()
	schema := orchestra.MustSchema(
		orchestra.NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := orchestra.NewSystem(schema)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	p1, _ := sys.AddPeer("p1", orchestra.TrustOrigins(map[orchestra.PeerID]int{"p2": 1, "p3": 1}))
	p2, _ := sys.AddPeer("p2", orchestra.TrustOrigins(map[orchestra.PeerID]int{"p1": 2, "p3": 1}))
	p3, _ := sys.AddPeer("p3", orchestra.TrustOrigins(map[orchestra.PeerID]int{"p2": 1}))

	// Epoch 1.
	p3.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "cell-metab"), "p3"))
	p3.Edit(orchestra.Modify("F",
		orchestra.Strs("rat", "prot1", "cell-metab"),
		orchestra.Strs("rat", "prot1", "immune"), "p3"))
	p3.PublishAndReconcile(ctx)
	show(1, "p3", p3)

	// Epoch 2.
	p2.Edit(orchestra.Insert("F", orchestra.Strs("mouse", "prot2", "immune"), "p2"))
	p2.Edit(orchestra.Insert("F", orchestra.Strs("rat", "prot1", "cell-resp"), "p2"))
	res, _ := p2.PublishAndReconcile(ctx)
	fmt.Printf("  epoch 2: p2 rejected %v (conflicts with its own state)\n", res.Rejected)
	show(2, "p2", p2)

	// Epoch 3.
	res, _ = p3.PublishAndReconcile(ctx)
	fmt.Printf("  epoch 3: p3 accepted %v, rejected %v\n", res.Accepted, res.Rejected)
	show(3, "p3", p3)

	// Epoch 4.
	res, _ = p1.PublishAndReconcile(ctx)
	fmt.Printf("  epoch 4: p1 accepted %v, deferred %v\n", res.Accepted, res.Deferred)
	show(4, "p1", p1)

	groups := p1.Engine().ConflictGroups()
	if len(groups) != 1 {
		log.Fatalf("expected one conflict group, got %v", groups)
	}
	g := groups[0]
	fmt.Printf("  conflict at p1: %v\n", g.Conflict)
	for i, o := range g.Options {
		fmt.Printf("    option %d: %s (txns %v)\n", i, o.Effect, o.Txns)
	}

	winner := -1
	if choice != "reject all" {
		for i, o := range g.Options {
			if contains(o.Effect, choice) {
				winner = i
			}
		}
	}
	res, err = p1.Resolve(ctx, g.Conflict, winner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  resolution: accepted %v, rejected %v\n", res.Accepted, res.Rejected)
	show(0, "p1 (final)", p1)
}

func show(epoch int, label string, p *orchestra.Peer) {
	if epoch > 0 {
		fmt.Printf("  I(%s)|%d:", label, epoch)
	} else {
		fmt.Printf("  I(%s):", label)
	}
	for _, t := range p.Instance().Tuples("F") {
		fmt.Printf(" %v", t)
	}
	fmt.Println()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
