package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/gateway"
	"orchestra/internal/metrics"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
)

// gatewayBenchEntry is one cell of the gateway throughput suite: C
// closed-loop clients hammer the HTTP serving surface with keyed publishes
// through a deliberately small backpressure gate, retrying every 429/503
// with the same Idempotency-Key until it lands. The gate sheds load, the
// clients retry, and the store's idempotency layer guarantees each keyed
// operation applies exactly once — DroppedKeyed counts the operations the
// audit could not find afterwards and must be zero.
type gatewayBenchEntry struct {
	Name         string  `json:"name"`
	Clients      int     `json:"clients"`
	OpsPerClient int     `json:"ops_per_client"`
	Ops          int64   `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	MeanNs       float64 `json:"mean_ns"`
	P99Ns        float64 `json:"p99_ns"`
	Shed         int64   `json:"shed"`
	RateLimited  int64   `json:"rate_limited"`
	Retries      int64   `json:"retries"`
	DroppedKeyed int64   `json:"dropped_keyed"`
	DedupHits    int64   `json:"dedup_hits"`
}

// runGatewaySuite measures the gateway end to end: an in-process central
// store behind the full HTTP surface, squeezed through a 4-slot gate over
// a ~1ms backend so the shedding path is on the hot path, not a corner
// case.
func runGatewaySuite(report *coreBenchReport) error {
	for _, clients := range []int{4, 16} {
		e, err := runGatewayCell(clients, 40)
		if err != nil {
			return err
		}
		report.GatewayThroughput = append(report.GatewayThroughput, e)
		fmt.Printf("%-40s %12.0f ops/s %8d shed %8d retries %6d dedup (dropped=%d)\n",
			e.Name, e.OpsPerSec, e.Shed, e.Retries, e.DedupHits, e.DroppedKeyed)
	}
	return nil
}

// slowPublishStore gives the backend a realistic publish service time. An
// in-memory store answers in tens of microseconds — no closed-loop client
// fleet can saturate a gate in front of that, and the shedding path would
// go unmeasured. A production store pays disk and network I/O per publish;
// the injected latency stands in for it so the gate actually fills.
type slowPublishStore struct {
	store.Store
	delay time.Duration
}

func (s *slowPublishStore) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	timer := time.NewTimer(s.delay)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return s.Store.Publish(ctx, peer, txns)
}

// runGatewayCell drives clients×opsPerClient keyed publishes through a
// gateway whose backend takes ~1ms per publish behind a 4-slot gate —
// capacity ~4k ops/s, which a closed-loop fleet of 16 exceeds, so the
// queue fills and the gate sheds. Every shed or failed call is retried
// with the SAME key; afterwards a reader peer audits the store and counts
// exactly-once delivery.
func runGatewayCell(clients, opsPerClient int) (gatewayBenchEntry, error) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	cs := central.MustOpenMemory(schema)
	defer cs.Close()
	counters := &metrics.GatewayCounters{}
	gw := gateway.New(&slowPublishStore{Store: cs, delay: time.Millisecond}, schema, gateway.Options{
		MaxInFlight: 4,
		MaxQueue:    4,
		QueueWait:   2 * time.Millisecond,
		Counters:    counters,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return gatewayBenchEntry{}, err
	}
	srv := &http.Server{Handler: gw}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients + 1}}
	post := func(path, key string, body any) (int, []byte, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		req, err := http.NewRequest("POST", url+path, bytes.NewReader(b))
		if err != nil {
			return 0, nil, err
		}
		if key != "" {
			req.Header.Set(gateway.IdempotencyKeyHeader, key)
		}
		resp, err := hc.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw, nil
	}

	// Registration rides through the same shedding gate, so retry it too.
	registerRetried := func(peer string) error {
		for attempt := 0; ; attempt++ {
			code, _, err := post("/v1/peers", "", map[string]string{
				"peer": peer, "policy": "priority 1 when true",
			})
			if err == nil && code == http.StatusOK {
				return nil
			}
			if err == nil && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
				return fmt.Errorf("register %s: status %d", peer, code)
			}
			if attempt > 200 {
				return fmt.Errorf("register %s: still refused after %d attempts", peer, attempt)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < clients; i++ {
		if err := registerRetried(fmt.Sprintf("c%d", i)); err != nil {
			return gatewayBenchEntry{}, err
		}
	}
	if err := registerRetried("auditor"); err != nil {
		return gatewayBenchEntry{}, err
	}

	// The closed loop. Retry-After on this surface is whole seconds (the
	// HTTP delta-seconds form); a closed-loop bench honors the *signal* but
	// compresses the wait to keep the measurement about throughput, not
	// sleeping.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		retries  int64
		driveErr error
	)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peer := fmt.Sprintf("c%d", i)
			myLats := make([]time.Duration, 0, opsPerClient)
			var myRetries int64
			for op := 0; op < opsPerClient; op++ {
				key := fmt.Sprintf("%s/publish/%d", peer, op)
				body := map[string]any{
					"peer": peer,
					"txns": []map[string]any{{
						"seq": op + 1,
						"updates": []map[string]any{{
							"op": "insert", "rel": "F",
							"tuple": []string{"org-" + peer, fmt.Sprintf("p%d", op), "fn"},
						}},
					}},
				}
				opStart := time.Now()
				backoff := 500 * time.Microsecond
				for {
					code, _, err := post("/v1/publish", key, body)
					if err == nil && code == http.StatusOK {
						break
					}
					if err == nil && code != http.StatusTooManyRequests && code != http.StatusServiceUnavailable {
						mu.Lock()
						if driveErr == nil {
							driveErr = fmt.Errorf("%s op %d: status %d", peer, op, code)
						}
						mu.Unlock()
						return
					}
					myRetries++
					time.Sleep(backoff)
					if backoff < 4*time.Millisecond {
						backoff *= 2
					}
				}
				myLats = append(myLats, time.Since(opStart))
			}
			mu.Lock()
			lats = append(lats, myLats...)
			retries += myRetries
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if driveErr != nil {
		return gatewayBenchEntry{}, driveErr
	}

	// Exactly-once audit: the auditor's first reconciliation surfaces every
	// transaction published by anyone else — one candidate per keyed op, no
	// more, no less.
	code, raw, err := post("/v1/reconcile/begin", "", map[string]string{"peer": "auditor"})
	if err != nil || code != http.StatusOK {
		return gatewayBenchEntry{}, fmt.Errorf("audit begin: status %d err %v", code, err)
	}
	var audit struct {
		Candidates []json.RawMessage `json:"candidates"`
	}
	if err := json.Unmarshal(raw, &audit); err != nil {
		return gatewayBenchEntry{}, err
	}
	total := int64(clients * opsPerClient)
	dropped := total - int64(len(audit.Candidates))

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	var mean, p99 float64
	if len(lats) > 0 {
		mean = float64(sum.Nanoseconds()) / float64(len(lats))
		p99 = float64(lats[len(lats)*99/100].Nanoseconds())
	}
	snap := counters.Snapshot()
	e := gatewayBenchEntry{
		Name:         fmt.Sprintf("GatewayClosedLoop/clients=%d", clients),
		Clients:      clients,
		OpsPerClient: opsPerClient,
		Ops:          total,
		OpsPerSec:    float64(total) / elapsed.Seconds(),
		MeanNs:       mean,
		P99Ns:        p99,
		Shed:         snap.Shed,
		RateLimited:  snap.RateLimited,
		Retries:      retries,
		DroppedKeyed: dropped,
		DedupHits:    cs.Metrics().Snapshot().DedupHits,
	}
	if dropped != 0 {
		return e, fmt.Errorf("gateway cell clients=%d: %d keyed operations dropped", clients, dropped)
	}
	return e, nil
}

// runGatewayDriver is the standalone `-gateway -clients N` mode: one cell,
// human-readable.
func runGatewayDriver(clients, opsPerClient int) error {
	e, err := runGatewayCell(clients, opsPerClient)
	if err != nil {
		return err
	}
	fmt.Printf("gateway closed loop: clients=%d ops/client=%d\n", e.Clients, e.OpsPerClient)
	fmt.Printf("  throughput:     %.0f ops/s\n", e.OpsPerSec)
	fmt.Printf("  mean latency:   %s\n", time.Duration(e.MeanNs))
	fmt.Printf("  p99 latency:    %s\n", time.Duration(e.P99Ns))
	fmt.Printf("  shed:           %d\n", e.Shed)
	fmt.Printf("  client retries: %d\n", e.Retries)
	fmt.Printf("  dedup hits:     %d\n", e.DedupHits)
	fmt.Printf("  dropped keyed:  %d\n", e.DroppedKeyed)
	return nil
}
