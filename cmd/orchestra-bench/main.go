// Command orchestra-bench regenerates the paper's evaluation figures
// (§6, Figures 8-12): it sweeps the experiment parameters, runs repeated
// trials of the SWISS-PROT-style workload over the chosen update stores,
// and prints each figure as a table of means with 95% confidence intervals.
//
// Usage:
//
//	orchestra-bench -fig all            # every figure, full trials
//	orchestra-bench -fig 10 -quick      # one figure, reduced trials
//	orchestra-bench -cell -peers 25 -store distributed -ri 20
//	orchestra-bench -chaos -loss 0.05 -dup 0.1   # fault-injected round cost
//	orchestra-bench -json BENCH_core.json   # core perf suite, machine readable
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"orchestra"
	"orchestra/internal/core"
	"orchestra/internal/exp"
	"orchestra/internal/metrics"
	"orchestra/internal/reldb"
	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/trust"
	"orchestra/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 8|9|10|11|12|all")
	quick := flag.Bool("quick", false, "reduced trials/rounds for a fast pass")
	seed := flag.Int64("seed", 1, "base random seed")
	cell := flag.Bool("cell", false, "run a single custom experiment cell instead of a figure")
	peers := flag.Int("peers", 10, "[cell|trust-topology] number of participants")
	txnSize := flag.Int("txnsize", 1, "[cell] updates per transaction")
	ri := flag.Int("ri", 4, "[cell] transactions between reconciliations")
	rounds := flag.Int("rounds", 5, "[cell] publish/reconcile rounds per peer")
	trials := flag.Int("trials", 5, "[cell] trials")
	storeKind := flag.String("store", "central", "[cell] central|distributed")
	chaos := flag.Bool("chaos", false, "run a fault-injected reconciliation cell over the simulated fabric instead of a figure")
	loss := flag.Float64("loss", 0, "[chaos] per-message loss probability, 0..1")
	dup := flag.Float64("dup", 0, "[chaos] per-message duplication probability, 0..1")
	jitter := flag.Duration("jitter", 0, "[chaos] max extra per-message latency")
	jsonOut := flag.String("json", "", "run the core reconciliation perf suite and write machine-readable results to this file (e.g. BENCH_core.json)")
	trustTopo := flag.String("trust-topology", "", "run one trust-at-scale cell over this delegation topology (star|chain|clique|dag) with -peers participants")
	gw := flag.Bool("gateway", false, "run the closed-loop gateway driver: -clients keyed publishers against the HTTP surface, -rounds ops each")
	clients := flag.Int("clients", 16, "[gateway] concurrent closed-loop clients")
	flag.Parse()

	if *gw {
		if err := runGatewayDriver(*clients, *rounds); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *trustTopo != "" {
		kind, err := workload.ParseTopology(*trustTopo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		e, err := runTrustEvalCell(kind, *peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trust cell: topology=%s peers=%d edges=%d\n", e.Topology, e.Peers, e.Edges)
		fmt.Printf("  compiled ns/decision:    %.1f\n", e.CompiledNsPerDecision)
		fmt.Printf("  interpreted ns/decision: %.1f\n", e.InterpretedNsPerDecision)
		fmt.Printf("  speedup:                 %.1fx\n", e.Speedup)
		fmt.Printf("  recompile latency:       %.0f ns (%d participants re-resolved)\n",
			e.RecompileNs, e.RecompiledPeers)
		return
	}

	if *jsonOut != "" {
		if err := runCoreSuite(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		e, err := runChaosCell(simnet.Faults{Loss: *loss, Dup: *dup, Jitter: *jitter}, *peers, *rounds, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chaos cell: peers=%d rounds=%d loss=%.2f dup=%.2f jitter=%s\n",
			*peers, *rounds, *loss, *dup, *jitter)
		fmt.Printf("  ns/round:          %.0f\n", e.NsPerRound)
		fmt.Printf("  attempts/call:     %.3f\n", e.AttemptsPerCall)
		fmt.Printf("  retries:           %d\n", e.Retries)
		fmt.Printf("  store dedup hits:  %d\n", e.DedupHits)
		return
	}

	if *cell {
		runCell(*peers, *txnSize, *ri, *rounds, *trials, *storeKind, *seed)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = exp.FigureIDs()
	}
	opts := exp.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		runner, ok := exp.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v\n", id, exp.FigureIDs())
			os.Exit(2)
		}
		start := time.Now()
		figure, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		figure.Fprint(os.Stdout)
		fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func runCell(peers, txnSize, ri, rounds, trials int, storeKind string, seed int64) {
	kind := exp.Central
	if storeKind == "distributed" || storeKind == "dht" {
		kind = exp.DHT
	}
	res, err := exp.Run(exp.Config{
		Peers:         peers,
		TxnSize:       txnSize,
		ReconInterval: ri,
		Rounds:        rounds,
		Trials:        trials,
		Store:         kind,
		Seed:          seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cell: peers=%d txnsize=%d ri=%d rounds=%d store=%s trials=%d\n",
		peers, txnSize, ri, rounds, kind, trials)
	fmt.Printf("  state ratio:          %s\n", res.StateRatio)
	fmt.Printf("  store time (total s): %s\n", res.TotalStore)
	fmt.Printf("  local time (total s): %s\n", res.TotalLocal)
	fmt.Printf("  store time (/recon):  %s\n", res.PerReconStore)
	fmt.Printf("  local time (/recon):  %s\n", res.PerReconLocal)
	fmt.Printf("  messages:             %s\n", res.Messages)
	fmt.Printf("  deferred per peer:    %s\n", res.Deferred)
}

// coreBenchEntry is one measured cell of the core perf suite.
type coreBenchEntry struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Txns        int     `json:"txns"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// publishBenchEntry is one cell of the concurrent-publish suite: P
// publishers racing batches into the sharded central store.
type publishBenchEntry struct {
	Name             string  `json:"name"`
	Publishers       int     `json:"publishers"`
	TxnsPerPublisher int     `json:"txns_per_publisher"`
	NsPerTxn         float64 `json:"ns_per_txn"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
}

// decisionBatchStats records the round-trip economy of the batched
// decision-recording path over a ReconcileAll workload: RoundTrips is what
// the store actually served, UnbatchedTrips what per-peer RecordDecisions
// would have cost for the same decisions.
type decisionBatchStats struct {
	Peers          int   `json:"peers"`
	Rounds         int   `json:"rounds"`
	RoundTrips     int64 `json:"round_trips"`
	UnbatchedTrips int64 `json:"unbatched_round_trips"`
	Decisions      int64 `json:"decisions"`
	BatchPeak      int64 `json:"batch_peak"`
}

// groupCommitBenchEntry is one cell of the reldb group-commit suite: C
// concurrent committers into a durable database, with the WAL group-commit
// path on or off.
type groupCommitBenchEntry struct {
	Name            string  `json:"name"`
	Committers      int     `json:"committers"`
	GroupCommit     bool    `json:"group_commit"`
	SyncOnCommit    bool    `json:"sync_on_commit"`
	NsPerCommit     float64 `json:"ns_per_commit"`
	CommitsPerFlush float64 `json:"commits_per_flush"` // 0 with group commit off
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// publishOverlapEntry is one cell of the sharded-vs-unsharded publish
// sweep: P publishers racing durable batches into a central store laid out
// with S epoch-shards (WithTableShards). Shards = 1 is the historical
// single-table layout, where every publish commit write-locks the same
// tables; with S > 1 publishes to different epochs commit against disjoint
// tables and overlap. ShardContention counts same-shard publish overlaps
// (the serialization sharding is meant to remove), TableWaits the reldb
// table-lock waits underneath.
type publishOverlapEntry struct {
	Name            string  `json:"name"`
	TableShards     int     `json:"table_shards"`
	Publishers      int     `json:"publishers"`
	NsPerTxn        float64 `json:"ns_per_txn"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	ShardContention int64   `json:"shard_contention"`
	TableWaits      int64   `json:"table_waits"`
}

// epochAllocBenchEntry is one cell of the epoch-allocator suite: durable
// concurrent publishes at a given allocator block size (block 1 = one
// durable sequence commit per publish, the historical behaviour).
type epochAllocBenchEntry struct {
	Name            string  `json:"name"`
	BlockSize       int     `json:"block_size"`
	Publishers      int     `json:"publishers"`
	NsPerTxn        float64 `json:"ns_per_txn"`
	DBCommitsPerPub float64 `json:"db_commits_per_publish"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// snapshotRebuildEntry is one cell of the peer-recovery sweep: rebuilding
// one consumer peer from the store after a history of HistoryEpochs
// single-transaction epochs, by full log replay versus by snapshot + tail
// (the snapshot taken TailEpochs epochs before the end). Full replay grows
// with the history; the snapshot path should track the tail length only.
type snapshotRebuildEntry struct {
	Name          string  `json:"name"`
	HistoryEpochs int     `json:"history_epochs"`
	TailEpochs    int     `json:"tail_epochs"`
	Mode          string  `json:"mode"` // full_replay | snapshot_tail
	NsPerRebuild  float64 `json:"ns_per_rebuild"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// chaosOverheadEntry is one cell of the fault-injection sweep: full
// ReconcileAll rounds through retrying remote clients over the simulated
// fabric at a given message-loss rate. The fault-free cell is the
// baseline; the lossy cells price the retry/idempotency machinery —
// attempts per call is the direct measure of the retry traffic, dedup
// hits the duplicate deliveries the store absorbed.
type chaosOverheadEntry struct {
	Name            string  `json:"name"`
	LossRate        float64 `json:"loss_rate"`
	Peers           int     `json:"peers"`
	Rounds          int     `json:"rounds"`
	NsPerRound      float64 `json:"ns_per_round"`
	AttemptsPerCall float64 `json:"attempts_per_call"`
	Retries         int64   `json:"retries"`
	DedupHits       int64   `json:"dedup_hits"`
}

// streamLatencyEntry is one cell of the streaming-latency suite:
// publish-to-decision latency quantiles under a sustained conflict-free
// publish load, with decisions driven either by the streaming reconcile
// loop (System.RunStreaming consuming the store's watch subscription) or by
// round-based ReconcileAll barriers every few publishes. An epoch counts as
// decided when every peer's reconciliation frontier has passed it.
type streamLatencyEntry struct {
	Name      string  `json:"name"`
	Mode      string  `json:"mode"` // streaming | round_based
	Peers     int     `json:"peers"`
	Publishes int     `json:"publishes"`
	P50Ns     float64 `json:"p50_ns"`
	P99Ns     float64 `json:"p99_ns"`
}

// multiGroupBenchEntry is one cell of the multi-group scale-out suite: G
// tenant groups, each a small confederation, driven through one Fleet of
// durable store nodes by the group Scheduler. Aggregate published-txn
// throughput is the headline; commits-per-flush measures the shared WAL
// batching commits across tenants (co-located groups' commits riding one
// flush — the multi-tenant economy a per-group database cannot have).
type multiGroupBenchEntry struct {
	Name            string  `json:"name"`
	Stores          int     `json:"stores"`
	Groups          int     `json:"groups"`
	PeersPerGroup   int     `json:"peers_per_group"`
	Rounds          int     `json:"rounds"`
	Txns            int64   `json:"txns"`
	TxnsPerSec      float64 `json:"txns_per_sec"`
	NsPerRound      float64 `json:"ns_per_round"`
	CommitsPerFlush float64 `json:"commits_per_flush"`
}

// trustEvalEntry is one cell of the trust-at-scale suite: a generated
// delegation topology resolved through the trust graph, with per-decision
// cost measured on sampled participants' effective policies — once through
// the compiled decision program, once through the AST interpreter over the
// same textual rendering — plus the latency of a mid-stream mapping change
// (graph re-resolution of every affected participant). Speedup is
// interpreted/compiled; the compiled path is expected to hold a >= 2x
// advantage at 1k peers (origin-dispatch vs a linear rule scan).
type trustEvalEntry struct {
	Name                     string  `json:"name"`
	Topology                 string  `json:"topology"`
	Peers                    int     `json:"peers"`
	Edges                    int     `json:"edges"`
	CompiledNsPerDecision    float64 `json:"compiled_ns_per_decision"`
	InterpretedNsPerDecision float64 `json:"interpreted_ns_per_decision"`
	Speedup                  float64 `json:"speedup"`
	RecompileNs              float64 `json:"recompile_ns"`
	RecompiledPeers          int     `json:"recompiled_peers"`
}

// coreBenchReport is the BENCH_core.json schema; future PRs compare their
// runs against the committed serial baseline to track the perf trajectory.
// See docs/BENCHMARKING.md.
type coreBenchReport struct {
	GoVersion         string                  `json:"go_version"`
	GOMAXPROCS        int                     `json:"gomaxprocs"`
	Workload          string                  `json:"workload"`
	Entries           []coreBenchEntry        `json:"entries"`
	ConcurrentPublish []publishBenchEntry     `json:"concurrent_publish"`
	DecisionBatching  decisionBatchStats      `json:"decision_batching"`
	ReldbGroupCommit  []groupCommitBenchEntry `json:"reldb_group_commit"`
	EpochAllocator    []epochAllocBenchEntry  `json:"epoch_allocator"`
	PublishOverlap    []publishOverlapEntry   `json:"publish_overlap"`
	SnapshotRebuild   []snapshotRebuildEntry  `json:"snapshot_rebuild"`
	ChaosOverhead     []chaosOverheadEntry    `json:"chaos_overhead"`
	StreamLatency     []streamLatencyEntry    `json:"stream_latency"`
	MultiGroup        []multiGroupBenchEntry  `json:"multi_group"`
	TrustEval         []trustEvalEntry        `json:"trust_eval"`
	GatewayThroughput []gatewayBenchEntry     `json:"gateway_throughput"`
}

// runCoreSuite measures Engine.Reconcile on the shared contended workload
// (workload.ContendedCandidates — the same batch BenchmarkEngineReconcile
// measures) across worker counts and writes the results as JSON.
func runCoreSuite(path string) error {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	report := coreBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "contended single-insert batch; every two transactions share a key",
	}
	var benchErr error
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{100, 500} {
			workers, n := workers, n
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng := core.NewEngine("q", schema, core.TrustAll(1), core.WithParallelism(workers))
					cands, err := workload.ContendedCandidates(schema, "F", n)
					if err != nil {
						benchErr = err
						b.Skip(err)
					}
					b.StartTimer()
					if _, err := eng.Reconcile(cands); err != nil {
						benchErr = err
						b.Skip(err)
					}
				}
			})
			if benchErr != nil {
				return benchErr
			}
			e := coreBenchEntry{
				Name:        fmt.Sprintf("EngineReconcile/workers=%d/txns=%d", workers, n),
				Workers:     workers,
				Txns:        n,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			report.Entries = append(report.Entries, e)
			fmt.Printf("%-40s %12.0f ns/op %10d allocs/op %12d B/op\n",
				e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		}
	}
	if err := runPublishSuite(&report); err != nil {
		return err
	}
	if err := runDecisionBatchSuite(&report); err != nil {
		return err
	}
	if err := runGroupCommitSuite(&report); err != nil {
		return err
	}
	if err := runEpochAllocatorSuite(&report); err != nil {
		return err
	}
	if err := runPublishOverlapSuite(&report); err != nil {
		return err
	}
	if err := runSnapshotRebuildSuite(&report); err != nil {
		return err
	}
	if err := runChaosOverheadSuite(&report); err != nil {
		return err
	}
	if err := runStreamLatencySuite(&report); err != nil {
		return err
	}
	if err := runMultiGroupSuite(&report); err != nil {
		return err
	}
	if err := runTrustEvalSuite(&report); err != nil {
		return err
	}
	if err := runGatewaySuite(&report); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runPublishSuite measures concurrent-publish throughput on the sharded
// central store: P publishers each racing one batch per op.
func runPublishSuite(report *coreBenchReport) error {
	const perBatch = 4
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	ctx := context.Background()
	var benchErr error
	for _, pubs := range []int{1, 2, 4, 8} {
		pubs := pubs
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := central.MustOpenMemory(schema)
			defer s.Close()
			engines := make([]*core.Engine, pubs)
			for p := 0; p < pubs; p++ {
				id := core.PeerID(fmt.Sprintf("pub%d", p))
				engines[p] = core.NewEngine(id, schema, core.TrustAll(1))
				if err := s.RegisterPeer(ctx, id, core.TrustAll(1)); err != nil {
					benchErr = err
					b.Skip(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batches := make([][]store.PublishedTxn, pubs)
				for p, eng := range engines {
					for k := 0; k < perBatch; k++ {
						x, err := eng.NewLocalTransaction(core.Insert("F",
							core.Strs(fmt.Sprintf("org%d", p), fmt.Sprintf("prot-%d-%d", i, k), "fn"),
							eng.Peer()))
						if err != nil {
							benchErr = err
							b.Skip(err)
						}
						batches[p] = append(batches[p], store.PublishedTxn{
							Txn: x, Antecedents: eng.LocalAntecedents(x.ID),
						})
					}
				}
				errs := make([]error, pubs)
				b.StartTimer()
				done := make(chan struct{}, pubs)
				for p := 0; p < pubs; p++ {
					go func(p int) {
						_, errs[p] = s.Publish(ctx, engines[p].Peer(), batches[p])
						done <- struct{}{}
					}(p)
				}
				for p := 0; p < pubs; p++ {
					<-done
				}
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						benchErr = err
						b.Skip(err)
					}
				}
				b.StartTimer()
			}
		})
		if benchErr != nil {
			return benchErr
		}
		e := publishBenchEntry{
			Name:             fmt.Sprintf("CentralConcurrentPublish/publishers=%d", pubs),
			Publishers:       pubs,
			TxnsPerPublisher: perBatch,
			NsPerTxn:         float64(r.T.Nanoseconds()) / float64(r.N*pubs*perBatch),
			AllocsPerOp:      r.AllocsPerOp(),
			BytesPerOp:       r.AllocedBytesPerOp(),
		}
		report.ConcurrentPublish = append(report.ConcurrentPublish, e)
		fmt.Printf("%-40s %12.0f ns/txn %10d allocs/op %12d B/op\n",
			e.Name, e.NsPerTxn, e.AllocsPerOp, e.BytesPerOp)
	}
	return nil
}

// runGroupCommitSuite measures durable reldb commit throughput with C
// concurrent committers (each owning its own table, so the engine's
// per-table locks never serialize them) with the WAL group-commit path off
// and on; commits-per-flush is the batching the group path achieved. The
// sync cells are where group commit earns its keep: one fsync-equivalent
// per flush instead of per commit (on a single-core box the non-sync
// cells rarely overlap in the commit window, so their flushes stay near
// size 1 — expected, not a regression).
func runGroupCommitSuite(report *coreBenchReport) error {
	var benchErr error
	type cell struct {
		committers  int
		group, sync bool
	}
	cells := []cell{
		{1, false, false}, {4, false, false}, {4, true, false},
		{4, false, true}, {4, true, true},
	}
	for _, c := range cells {
		group, sync, committers := c.group, c.sync, c.committers
		{
			var flushStats float64
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				dir, err := os.MkdirTemp("", "orchestra-gc-bench")
				if err != nil {
					benchErr = err
					b.Skip(err)
				}
				defer os.RemoveAll(dir)
				db, err := reldb.Open(reldb.Options{Dir: dir, GroupCommit: group, SyncOnCommit: sync})
				if err != nil {
					benchErr = err
					b.Skip(err)
				}
				defer db.Close()
				err = db.Update(func(tx *reldb.Tx) error {
					for c := 0; c < committers; c++ {
						if err := tx.CreateTable(reldb.TableDef{
							Name: fmt.Sprintf("t%d", c),
							Cols: []reldb.ColDef{{Name: "id", Type: reldb.ColInt}, {Name: "v", Type: reldb.ColInt}},
							Key:  []int{0},
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					benchErr = err
					b.Skip(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					done := make(chan error, committers)
					for c := 0; c < committers; c++ {
						go func(c int) {
							done <- db.Update(func(tx *reldb.Tx) error {
								return tx.Upsert(fmt.Sprintf("t%d", c), reldb.Row{reldb.Int(int64(i)), reldb.Int(int64(c))})
							})
						}(c)
					}
					for c := 0; c < committers; c++ {
						if err := <-done; err != nil {
							benchErr = err
							b.Skip(err)
						}
					}
				}
				b.StopTimer()
				snap := db.Metrics().Snapshot()
				if snap.GroupFlushes > 0 {
					flushStats = float64(snap.GroupedCommits) / float64(snap.GroupFlushes)
				}
			})
			if benchErr != nil {
				return benchErr
			}
			e := groupCommitBenchEntry{
				Name:            fmt.Sprintf("ReldbCommit/committers=%d/group=%v/sync=%v", committers, group, sync),
				Committers:      committers,
				GroupCommit:     group,
				SyncOnCommit:    sync,
				NsPerCommit:     float64(r.T.Nanoseconds()) / float64(r.N*committers),
				CommitsPerFlush: flushStats,
				AllocsPerOp:     r.AllocsPerOp(),
			}
			report.ReldbGroupCommit = append(report.ReldbGroupCommit, e)
			fmt.Printf("%-50s %12.0f ns/commit %7.2f commits/flush %10d allocs/op\n",
				e.Name, e.NsPerCommit, e.CommitsPerFlush, e.AllocsPerOp)
		}
	}
	return nil
}

// runEpochAllocatorSuite measures durable concurrent publishes across
// allocator block sizes: the durable sequence commit amortizes across the
// block, visible as db-commits-per-publish falling below 2 toward 1.
func runEpochAllocatorSuite(report *coreBenchReport) error {
	const pubs = 4
	const perBatch = 4
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	ctx := context.Background()
	var benchErr error
	for _, block := range []int{1, 8, 64} {
		block := block
		var commitsPerPub float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			dir, err := os.MkdirTemp("", "orchestra-alloc-bench")
			if err != nil {
				benchErr = err
				b.Skip(err)
			}
			defer os.RemoveAll(dir)
			s, err := central.Open(schema, dir, central.WithEpochBlock(block))
			if err != nil {
				benchErr = err
				b.Skip(err)
			}
			defer s.Close()
			engines := make([]*core.Engine, pubs)
			for p := 0; p < pubs; p++ {
				id := core.PeerID(fmt.Sprintf("pub%d", p))
				engines[p] = core.NewEngine(id, schema, core.TrustAll(1))
				if err := s.RegisterPeer(ctx, id, core.TrustAll(1)); err != nil {
					benchErr = err
					b.Skip(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batches := make([][]store.PublishedTxn, pubs)
				for p, eng := range engines {
					for k := 0; k < perBatch; k++ {
						x, err := eng.NewLocalTransaction(core.Insert("F",
							core.Strs(fmt.Sprintf("org%d", p), fmt.Sprintf("prot-%d-%d", i, k), "fn"),
							eng.Peer()))
						if err != nil {
							benchErr = err
							b.Skip(err)
						}
						batches[p] = append(batches[p], store.PublishedTxn{
							Txn: x, Antecedents: eng.LocalAntecedents(x.ID),
						})
					}
				}
				errs := make([]error, pubs)
				b.StartTimer()
				done := make(chan struct{}, pubs)
				for p := 0; p < pubs; p++ {
					go func(p int) {
						_, errs[p] = s.Publish(ctx, engines[p].Peer(), batches[p])
						done <- struct{}{}
					}(p)
				}
				for p := 0; p < pubs; p++ {
					<-done
				}
				b.StopTimer()
				for _, err := range errs {
					if err != nil {
						benchErr = err
						b.Skip(err)
					}
				}
				b.StartTimer()
			}
			b.StopTimer()
			snap := s.DBMetrics().Snapshot()
			pubsTotal := s.Metrics().Snapshot().Publishes
			if pubsTotal > 0 {
				commitsPerPub = float64(snap.Commits) / float64(pubsTotal)
			}
		})
		if benchErr != nil {
			return benchErr
		}
		e := epochAllocBenchEntry{
			Name:            fmt.Sprintf("EpochAllocator/block=%d/publishers=%d", block, pubs),
			BlockSize:       block,
			Publishers:      pubs,
			NsPerTxn:        float64(r.T.Nanoseconds()) / float64(r.N*pubs*perBatch),
			DBCommitsPerPub: commitsPerPub,
			AllocsPerOp:     r.AllocsPerOp(),
		}
		report.EpochAllocator = append(report.EpochAllocator, e)
		fmt.Printf("%-40s %12.0f ns/txn %7.2f db-commits/publish %10d allocs/op\n",
			e.Name, e.NsPerTxn, e.DBCommitsPerPub, e.AllocsPerOp)
	}
	return nil
}

// runPublishOverlapSuite measures durable multi-publisher publish
// throughput on the epoch-sharded layout against the single-table layout
// on the same box. Multi-core hardware is where the sharded cells pull
// ahead (disjoint-table commits overlap and share WAL group flushes); on a
// single core the sweep mostly shows the contention counters moving to the
// right shards — report the numbers either way.
func runPublishOverlapSuite(report *coreBenchReport) error {
	const perBatch = 4
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	ctx := context.Background()
	var benchErr error
	for _, shards := range []int{1, 8} {
		for _, pubs := range []int{1, 2, 4, 8} {
			shards, pubs := shards, pubs
			var shardContention, tableWaits int64
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				dir, err := os.MkdirTemp("", "orchestra-overlap-bench")
				if err != nil {
					benchErr = err
					b.Skip(err)
				}
				defer os.RemoveAll(dir)
				s, err := central.Open(schema, dir, central.WithTableShards(shards))
				if err != nil {
					benchErr = err
					b.Skip(err)
				}
				defer s.Close()
				engines := make([]*core.Engine, pubs)
				for p := 0; p < pubs; p++ {
					id := core.PeerID(fmt.Sprintf("pub%d", p))
					engines[p] = core.NewEngine(id, schema, core.TrustAll(1))
					if err := s.RegisterPeer(ctx, id, core.TrustAll(1)); err != nil {
						benchErr = err
						b.Skip(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					batches := make([][]store.PublishedTxn, pubs)
					for p, eng := range engines {
						for k := 0; k < perBatch; k++ {
							x, err := eng.NewLocalTransaction(core.Insert("F",
								core.Strs(fmt.Sprintf("org%d", p), fmt.Sprintf("prot-%d-%d", i, k), "fn"),
								eng.Peer()))
							if err != nil {
								benchErr = err
								b.Skip(err)
							}
							batches[p] = append(batches[p], store.PublishedTxn{
								Txn: x, Antecedents: eng.LocalAntecedents(x.ID),
							})
						}
					}
					errs := make([]error, pubs)
					b.StartTimer()
					done := make(chan struct{}, pubs)
					for p := 0; p < pubs; p++ {
						go func(p int) {
							_, errs[p] = s.Publish(ctx, engines[p].Peer(), batches[p])
							done <- struct{}{}
						}(p)
					}
					for p := 0; p < pubs; p++ {
						<-done
					}
					b.StopTimer()
					for _, err := range errs {
						if err != nil {
							benchErr = err
							b.Skip(err)
						}
					}
					b.StartTimer()
				}
				b.StopTimer()
				shardContention = s.Metrics().Snapshot().ShardContentionTotal()
				tableWaits = s.DBMetrics().Snapshot().TableWaits
			})
			if benchErr != nil {
				return benchErr
			}
			e := publishOverlapEntry{
				Name:            fmt.Sprintf("PublishOverlap/shards=%d/publishers=%d", shards, pubs),
				TableShards:     shards,
				Publishers:      pubs,
				NsPerTxn:        float64(r.T.Nanoseconds()) / float64(r.N*pubs*perBatch),
				AllocsPerOp:     r.AllocsPerOp(),
				ShardContention: shardContention,
				TableWaits:      tableWaits,
			}
			report.PublishOverlap = append(report.PublishOverlap, e)
			fmt.Printf("%-45s %12.0f ns/txn %8d shard-waits %8d table-waits %10d allocs/op\n",
				e.Name, e.NsPerTxn, e.ShardContention, e.TableWaits, e.AllocsPerOp)
		}
	}
	return nil
}

// runSnapshotRebuildSuite measures peer recovery cost against history
// length: a consumer peer is rebuilt from an in-memory central store after
// H single-transaction epochs, once by full log replay and once via the
// retained snapshot (taken tailEpochs before the end) plus the tail. The
// workload is revision-heavy — modify chains cycling over a small fixed
// key set, the long-lived-store shape the paper's state ratio describes —
// so the instance stays small while the log grows: full replay is
// O(history), the snapshot path O(instance + tail) and should stay flat as
// H grows. (An insert-only unique-key workload has instance ≈ log and the
// two paths converge; snapshots bound catch-up, they don't compress
// live state.)
func runSnapshotRebuildSuite(report *coreBenchReport) error {
	const (
		tailEpochs = 8
		hotKeys    = 16
	)
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	ctx := context.Background()
	for _, history := range []int{64, 256} {
		s := central.MustOpenMemory(schema)
		pub := core.NewEngine("pub", schema, core.TrustAll(1))
		if err := s.RegisterPeer(ctx, "pub", core.TrustAll(1)); err != nil {
			return err
		}
		if err := s.RegisterPeer(ctx, "q", core.TrustAll(1)); err != nil {
			return err
		}
		consume := func() error {
			rec, err := s.BeginReconciliation(ctx, "q")
			if err != nil {
				return err
			}
			var accepted []core.TxnID
			for _, c := range rec.Candidates {
				accepted = append(accepted, c.Txn.ID)
			}
			return s.RecordDecisions(ctx, "q", rec.Recno, accepted, nil)
		}
		revs := make([]int, hotKeys)
		for e := 0; e < history; e++ {
			k := e % hotKeys
			prot := fmt.Sprintf("prot-%d", k)
			var u core.Update
			if revs[k] == 0 {
				u = core.Insert("F", core.Strs("org", prot, "rev-0"), "pub")
			} else {
				u = core.Modify("F",
					core.Strs("org", prot, fmt.Sprintf("rev-%d", revs[k]-1)),
					core.Strs("org", prot, fmt.Sprintf("rev-%d", revs[k])), "pub")
			}
			revs[k]++
			x, err := pub.NewLocalTransaction(u)
			if err != nil {
				return err
			}
			if _, err := s.Publish(ctx, "pub",
				[]store.PublishedTxn{{Txn: x, Antecedents: pub.LocalAntecedents(x.ID)}}); err != nil {
				return err
			}
			if e%8 == 7 {
				if err := consume(); err != nil {
					return err
				}
			}
			if e == history-tailEpochs-1 {
				if err := consume(); err != nil {
					return err
				}
				if _, err := s.Snapshot(ctx); err != nil {
					return err
				}
			}
		}
		if err := consume(); err != nil {
			return err
		}
		for _, mode := range []string{"full_replay", "snapshot_tail"} {
			mode := mode
			var benchErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					if mode == "full_replay" {
						_, err = store.FullReplayRebuild(ctx, "q", schema, core.TrustAll(1), s)
					} else {
						_, err = store.RebuildPeer(ctx, "q", schema, core.TrustAll(1), s)
					}
					if err != nil {
						benchErr = err
						b.Skip(err)
					}
				}
			})
			if benchErr != nil {
				return benchErr
			}
			e := snapshotRebuildEntry{
				Name:          fmt.Sprintf("SnapshotRebuild/history=%d/mode=%s", history, mode),
				HistoryEpochs: history,
				TailEpochs:    tailEpochs,
				Mode:          mode,
				NsPerRebuild:  float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp:   r.AllocsPerOp(),
			}
			report.SnapshotRebuild = append(report.SnapshotRebuild, e)
			fmt.Printf("%-45s %12.0f ns/rebuild %10d allocs/op\n", e.Name, e.NsPerRebuild, e.AllocsPerOp)
		}
		s.Close()
	}
	return nil
}

// runChaosCell runs one fault-injected reconciliation cell: a confederation
// of peers over the simulated fabric, each talking to an in-memory central
// store through a retrying remote client, with the given faults on every
// link. Rounds of conflict-free edits keep retry exhaustion impossible in
// expectation at the swept rates, so the measured cost is the retry and
// dedup machinery, not failed rounds.
func runChaosCell(faults simnet.Faults, peers, rounds int, seed int64) (chaosOverheadEntry, error) {
	ctx := context.Background()
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	net := simnet.NewVirtual(time.Microsecond)
	net.Seed(seed)
	cs := central.MustOpenMemory(schema)
	defer cs.Close()
	net.Node("store", remote.NewServer(cs, schema).Handler())
	var rc metrics.RetryCounters
	sys, err := orchestra.NewSystem(schema, orchestra.WithPeerStores(func(id core.PeerID) (store.Store, error) {
		n := net.Node("peer-"+string(id), nil)
		return remote.NewClientOn(n, "store", remote.WithRetryPolicy(rpc.RetryPolicy{
			MaxAttempts: 10,
			BaseDelay:   100 * time.Microsecond,
			MaxDelay:    2 * time.Millisecond,
			Seed:        seed,
			Counters:    &rc,
		})), nil
	}), orchestra.WithReconcileFanOut(peers))
	if err != nil {
		return chaosOverheadEntry{}, err
	}
	// Remote clients carry trust textually; parse the policy once.
	pol, err := trust.Parse("priority 1 when true")
	if err != nil {
		return chaosOverheadEntry{}, err
	}
	ps := make([]*orchestra.Peer, peers)
	for i := range ps {
		ps[i], err = sys.AddPeer(core.PeerID(fmt.Sprintf("p%d", i)), pol)
		if err != nil {
			return chaosOverheadEntry{}, err
		}
	}
	net.SetFaults(faults)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i, p := range ps {
			if _, err := p.Edit(core.Insert("F",
				core.Strs(fmt.Sprintf("org%d", i), fmt.Sprintf("prot-%d", r), "fn"), p.ID())); err != nil {
				return chaosOverheadEntry{}, err
			}
		}
		if _, err := sys.ReconcileAll(ctx); err != nil {
			return chaosOverheadEntry{}, fmt.Errorf("round %d at loss=%.2f: %w", r, faults.Loss, err)
		}
	}
	elapsed := time.Since(start)
	snap := rc.Snapshot()
	var attemptsPerCall float64
	if snap.Calls > 0 {
		attemptsPerCall = float64(snap.Attempts) / float64(snap.Calls)
	}
	return chaosOverheadEntry{
		Name:            fmt.Sprintf("ChaosOverhead/loss=%g", faults.Loss),
		LossRate:        faults.Loss,
		Peers:           peers,
		Rounds:          rounds,
		NsPerRound:      float64(elapsed.Nanoseconds()) / float64(rounds),
		AttemptsPerCall: attemptsPerCall,
		Retries:         snap.Retries,
		DedupHits:       cs.Metrics().Snapshot().DedupHits,
	}, nil
}

// runChaosOverheadSuite sweeps message loss over the fault-injected cell:
// 0% is the fault-free baseline, 1% and 5% price the retry machinery under
// realistic and heavy loss.
func runChaosOverheadSuite(report *coreBenchReport) error {
	const (
		peers  = 4
		rounds = 20
	)
	for _, loss := range []float64{0, 0.01, 0.05} {
		e, err := runChaosCell(simnet.Faults{Loss: loss}, peers, rounds, 1)
		if err != nil {
			return err
		}
		report.ChaosOverhead = append(report.ChaosOverhead, e)
		fmt.Printf("%-40s %12.0f ns/round %8.3f attempts/call %8d dedup hits\n",
			e.Name, e.NsPerRound, e.AttemptsPerCall, e.DedupHits)
	}
	return nil
}

// runStreamLatencySuite measures publish-to-decision latency under a
// sustained publish load, once with the streaming reconcile loop and once
// with round-based barriers: the streaming cells should show decisions
// landing at watch-notification latency instead of waiting for the next
// ReconcileAll round.
func runStreamLatencySuite(report *coreBenchReport) error {
	const (
		peers     = 4
		publishes = 200
		ri        = 4 // round_based: a ReconcileAll barrier every ri publishes
		pace      = 500 * time.Microsecond
	)
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for _, mode := range []string{"streaming", "round_based"} {
		lats, err := measureStreamLatency(mode, schema, peers, publishes, ri, pace)
		if err != nil {
			return err
		}
		e := streamLatencyEntry{
			Name:      "StreamLatency/mode=" + mode,
			Mode:      mode,
			Peers:     peers,
			Publishes: publishes,
			P50Ns:     quantileNs(lats, 0.50),
			P99Ns:     quantileNs(lats, 0.99),
		}
		report.StreamLatency = append(report.StreamLatency, e)
		fmt.Printf("%-40s %12.0f p50 ns %12.0f p99 ns\n", e.Name, e.P50Ns, e.P99Ns)
	}
	return nil
}

// measureStreamLatency runs the sustained conflict-free publish load in one
// mode and returns the per-epoch publish-to-decision latencies. Under
// streaming the decision point is observed from the stream results (the
// first moment every peer's frontier has passed the epoch); under rounds it
// is the completion of the ReconcileAll barrier that covered the epoch.
func measureStreamLatency(mode string, schema *core.Schema, peers, publishes, ri int, pace time.Duration) ([]time.Duration, error) {
	ctx := context.Background()
	var (
		mu       sync.Mutex
		frontier = map[core.PeerID]core.Epoch{}
		pubAt    = map[core.Epoch]time.Time{}
		decided  = map[core.Epoch]time.Time{}
	)
	// sweep marks every published epoch at or below the minimum frontier as
	// decided now. Callers hold mu.
	sweep := func(now time.Time) {
		if len(frontier) < peers {
			return
		}
		min := core.Epoch(0)
		first := true
		for _, f := range frontier {
			if first || f < min {
				min, first = f, false
			}
		}
		for e := range pubAt {
			if _, ok := decided[e]; !ok && e <= min {
				decided[e] = now
			}
		}
	}
	sys, err := orchestra.NewSystem(schema,
		orchestra.WithStreamObserver(func(r orchestra.StreamResult) {
			mu.Lock()
			if r.To > frontier[r.Peer] {
				frontier[r.Peer] = r.To
			} else if _, ok := frontier[r.Peer]; !ok {
				frontier[r.Peer] = r.To
			}
			sweep(time.Now())
			mu.Unlock()
		}))
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	ps := make([]*orchestra.Peer, peers)
	for i := range ps {
		ps[i], err = sys.AddPeer(core.PeerID(fmt.Sprintf("p%d", i)), core.TrustAll(1))
		if err != nil {
			return nil, err
		}
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan error, 1)
	if mode == "streaming" {
		go func() { done <- sys.RunStreaming(sctx) }()
	}
	// decideAll stamps every still-undecided epoch: the round-based decision
	// point after a barrier.
	decideAll := func() {
		now := time.Now()
		mu.Lock()
		for e := range pubAt {
			if _, ok := decided[e]; !ok {
				decided[e] = now
			}
		}
		mu.Unlock()
	}
	for i := 0; i < publishes; i++ {
		p := ps[i%peers]
		if _, err := p.Edit(core.Insert("F",
			core.Strs("org-"+string(p.ID()), fmt.Sprintf("prot-%d", i), "fn"), p.ID())); err != nil {
			return nil, err
		}
		t0 := time.Now()
		e, err := p.Publish(ctx)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		pubAt[e] = t0
		mu.Unlock()
		if mode == "round_based" && i%ri == ri-1 {
			if _, err := sys.ReconcileAll(ctx); err != nil {
				return nil, err
			}
			decideAll()
		}
		time.Sleep(pace)
	}
	if mode == "round_based" {
		if _, err := sys.ReconcileAll(ctx); err != nil {
			return nil, err
		}
		decideAll()
	} else {
		deadline := time.Now().Add(30 * time.Second)
		for {
			mu.Lock()
			sweep(time.Now())
			n := len(decided)
			mu.Unlock()
			if n == publishes {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("stream latency cell: only %d/%d epochs decided", n, publishes)
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
		if err := <-done; err != nil {
			return nil, err
		}
	}
	mu.Lock()
	defer mu.Unlock()
	lats := make([]time.Duration, 0, len(pubAt))
	for e, t0 := range pubAt {
		lats = append(lats, decided[e].Sub(t0))
	}
	return lats, nil
}

// quantileNs returns the nearest-rank q-quantile of the sample, in
// nanoseconds.
func quantileNs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	return float64(s[idx])
}

// runDecisionBatchSuite drives ReconcileAll rounds over a full System and
// reports the batched decision-recording round-trip economy from the
// central store's own counters.
func runDecisionBatchSuite(report *coreBenchReport) error {
	const (
		peers  = 8
		rounds = 3
	)
	ctx := context.Background()
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := orchestra.NewSystem(schema, orchestra.WithReconcileFanOut(peers))
	if err != nil {
		return err
	}
	defer sys.Close()
	ps := make([]*orchestra.Peer, peers)
	for i := 0; i < peers; i++ {
		id := core.PeerID(fmt.Sprintf("p%d", i))
		ps[i], err = sys.AddPeer(id, core.TrustAll(1))
		if err != nil {
			return err
		}
	}
	for r := 0; r < rounds; r++ {
		for i, p := range ps {
			if _, err := p.Edit(core.Insert("F",
				core.Strs("org", fmt.Sprintf("prot-%d-%d", r, i), "fn"), p.ID())); err != nil {
				return err
			}
		}
		if _, err := sys.ReconcileAll(ctx); err != nil {
			return err
		}
	}
	snap := sys.CentralStore().Metrics().Snapshot()
	report.DecisionBatching = decisionBatchStats{
		Peers:          peers,
		Rounds:         rounds,
		RoundTrips:     snap.DecisionRoundTrips,
		UnbatchedTrips: snap.DecisionPeers,
		Decisions:      snap.Decisions,
		BatchPeak:      snap.BatchPeak,
	}
	fmt.Printf("%-40s %12d trips (unbatched would be %d) %10d decisions %6d peak\n",
		"DecisionBatching/ReconcileAll", snap.DecisionRoundTrips, snap.DecisionPeers,
		snap.Decisions, snap.BatchPeak)
	return nil
}

// trustEvalTopology builds and resolves one generated delegation topology:
// direct policies first, then the full delegating policies in descending
// index order (delegation targets re-register after their delegators, so
// registration cost stays near-linear until the final hub flip).
func trustEvalTopology(kind workload.TopologyKind, peers int) (*workload.TrustTopology, *trust.Graph, error) {
	tt, err := workload.NewTrustTopology(workload.TopologyConfig{Kind: kind, Peers: peers, Seed: 7})
	if err != nil {
		return nil, nil, err
	}
	g := trust.NewGraph(nil)
	for i := 0; i < peers; i++ {
		g.Set(tt.PeerID(i), trust.MustParse(tt.DirectPolicy(i)))
	}
	for i := peers - 1; i >= 0; i-- {
		g.Set(tt.PeerID(i), trust.MustParse(tt.Policy(i)))
	}
	return tt, g, nil
}

// runTrustEvalCell measures one topology cell: compiled vs interpreted
// ns/decision over sampled participants' effective policies, and the
// re-resolution latency of a mid-stream mapping change.
func runTrustEvalCell(kind workload.TopologyKind, peers int) (*trustEvalEntry, error) {
	tt, g, err := trustEvalTopology(kind, peers)
	if err != nil {
		return nil, err
	}
	// Sample a spread of participants and origins; every sampled policy is
	// evaluated against every origin per benchmark op.
	var samples []int
	for s := 0; s < peers; s += peers/7 + 1 {
		samples = append(samples, s)
	}
	samples = append(samples, peers-1)
	var origins []core.PeerID
	for s := 1; s < peers; s += peers/11 + 1 {
		origins = append(origins, tt.PeerID(s))
	}
	origins = append(origins, "ghost")
	updates := make([]core.Update, len(origins))
	for i, o := range origins {
		updates[i] = core.Insert("F", core.Strs("org", "prot", "fn"), o)
	}
	compiled := make([]core.Trust, len(samples))
	interpreted := make([]core.Trust, len(samples))
	for i, s := range samples {
		eff, ok := g.Effective(tt.PeerID(s)).(*trust.Policy)
		if !ok {
			return nil, fmt.Errorf("trust_eval: %s effective policy is not textual", tt.PeerID(s))
		}
		compiled[i] = eff
		interpreted[i] = trust.MustParse(eff.String()).WithInterpreted()
	}
	measure := func(pols []core.Trust) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range pols {
					for _, u := range updates {
						_ = p.Priority(u)
					}
				}
			}
		})
		return float64(r.T.Nanoseconds()) / float64(r.N*len(pols)*len(updates))
	}
	compiledNs := measure(compiled)
	interpretedNs := measure(interpreted)

	// Mid-stream mapping change: re-register a mid-graph peer and time the
	// affected-set re-resolution (the store's RegisterPeer critical path).
	changed := tt.PeerID(peers / 2)
	pol := trust.MustParse(tt.Policy(peers / 2))
	start := time.Now()
	affected := g.Set(changed, pol)
	recompileNs := float64(time.Since(start).Nanoseconds())

	e := &trustEvalEntry{
		Name:                     fmt.Sprintf("TrustEval/topology=%s/peers=%d", kind, peers),
		Topology:                 string(kind),
		Peers:                    peers,
		Edges:                    tt.Edges(),
		CompiledNsPerDecision:    compiledNs,
		InterpretedNsPerDecision: interpretedNs,
		RecompileNs:              recompileNs,
		RecompiledPeers:          len(affected),
	}
	if compiledNs > 0 {
		e.Speedup = interpretedNs / compiledNs
	}
	return e, nil
}

// runTrustEvalSuite sweeps every delegation topology at 1k peers.
func runTrustEvalSuite(report *coreBenchReport) error {
	const peers = 1000
	for _, kind := range workload.Topologies {
		e, err := runTrustEvalCell(kind, peers)
		if err != nil {
			return err
		}
		report.TrustEval = append(report.TrustEval, *e)
		fmt.Printf("%-45s %10.1f compiled ns %10.1f interpreted ns %7.1fx %10.0f recompile ns (%d peers)\n",
			e.Name, e.CompiledNsPerDecision, e.InterpretedNsPerDecision, e.Speedup,
			e.RecompileNs, e.RecompiledPeers)
	}
	return nil
}

// runMultiGroupSuite measures the multi-group scale-out path end to end:
// a durable Fleet of store nodes hosts G tenant groups (ring-placed,
// co-located groups sharing one database and WAL per node), and the group
// Scheduler drives barrier rounds with bounded concurrency. Each round
// every peer of every group edits one fresh tuple, then the scheduler runs
// every group's publish/reconcile. The headline is aggregate published
// txns/sec across all tenants; commits-per-flush shows the shared WAL's
// group commit batching co-located tenants' commits into single syncs.
func runMultiGroupSuite(report *coreBenchReport) error {
	cells := []struct {
		stores, groups, peers, rounds int
	}{
		{1, 10, 2, 3},
		{1, 10, 8, 3},
		{2, 100, 2, 3},
		{2, 1000, 2, 2},
	}
	for _, c := range cells {
		e, err := runMultiGroupCell(c.stores, c.groups, c.peers, c.rounds)
		if err != nil {
			return err
		}
		report.MultiGroup = append(report.MultiGroup, *e)
		fmt.Printf("%-40s %12.0f txns/s %10.2f commits/flush\n", e.Name, e.TxnsPerSec, e.CommitsPerFlush)
	}
	return nil
}

func runMultiGroupCell(stores, groups, peers, rounds int) (*multiGroupBenchEntry, error) {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "orchestra-multigroup-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// Disk-backed nodes with a short gathering window: in-memory nodes have
	// no WAL, and without a window a lightly loaded flusher would batch only
	// opportunistically — the window makes co-located tenants' commits ride
	// shared flushes deterministically.
	f := orchestra.NewFleet(
		orchestra.WithStoreDirs(func(name string) string { return filepath.Join(dir, name) }),
		orchestra.WithGroupStoreOptions(central.WithGroupCommit(200*time.Microsecond)),
	)
	defer f.Close()
	for i := 0; i < stores; i++ {
		if err := f.AddStore(fmt.Sprintf("s%d", i)); err != nil {
			return nil, err
		}
	}
	pol, err := trust.Parse("priority 1 when true")
	if err != nil {
		return nil, err
	}
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for g := 0; g < groups; g++ {
		spec := orchestra.GroupSpec{ID: fmt.Sprintf("g%d", g), Schema: schema}
		for p := 0; p < peers; p++ {
			spec.Peers = append(spec.Peers, orchestra.GroupPeer{
				ID: core.PeerID(fmt.Sprintf("p%d", p)), Trust: pol,
			})
		}
		if _, err := f.AddGroup(spec); err != nil {
			return nil, err
		}
	}

	sched := orchestra.NewScheduler(f.Groups(),
		orchestra.WithGroupLimit(4*runtime.GOMAXPROCS(0)))
	var txns int64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, g := range f.Groups() {
			for pi, p := range g.System().Peers() {
				u := core.Insert("F",
					core.Strs(g.ID(), fmt.Sprintf("p%d-r%d", pi, r), "fn"), p.ID())
				if _, err := p.Edit(u); err != nil {
					return nil, err
				}
				txns++
			}
		}
		if err := sched.RunRound(ctx); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)

	var grouped, flushes int64
	for _, name := range f.Stores() {
		if n, ok := f.Node(name); ok {
			snap := n.Metrics().Snapshot()
			grouped += snap.GroupedCommits
			flushes += snap.GroupFlushes
		}
	}
	cpf := 0.0
	if flushes > 0 {
		cpf = float64(grouped) / float64(flushes)
	}
	e := &multiGroupBenchEntry{
		Name: fmt.Sprintf("MultiGroup/stores=%d/groups=%d/peers=%d",
			stores, groups, peers),
		Stores:          stores,
		Groups:          groups,
		PeersPerGroup:   peers,
		Rounds:          rounds,
		Txns:            txns,
		TxnsPerSec:      float64(txns) / elapsed.Seconds(),
		NsPerRound:      float64(elapsed.Nanoseconds()) / float64(rounds),
		CommitsPerFlush: cpf,
	}
	return e, f.Close()
}
