// Command orchestra-bench regenerates the paper's evaluation figures
// (§6, Figures 8-12): it sweeps the experiment parameters, runs repeated
// trials of the SWISS-PROT-style workload over the chosen update stores,
// and prints each figure as a table of means with 95% confidence intervals.
//
// Usage:
//
//	orchestra-bench -fig all            # every figure, full trials
//	orchestra-bench -fig 10 -quick      # one figure, reduced trials
//	orchestra-bench -cell -peers 25 -store distributed -ri 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"orchestra/internal/exp"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 8|9|10|11|12|all")
	quick := flag.Bool("quick", false, "reduced trials/rounds for a fast pass")
	seed := flag.Int64("seed", 1, "base random seed")
	cell := flag.Bool("cell", false, "run a single custom experiment cell instead of a figure")
	peers := flag.Int("peers", 10, "[cell] number of participants")
	txnSize := flag.Int("txnsize", 1, "[cell] updates per transaction")
	ri := flag.Int("ri", 4, "[cell] transactions between reconciliations")
	rounds := flag.Int("rounds", 5, "[cell] publish/reconcile rounds per peer")
	trials := flag.Int("trials", 5, "[cell] trials")
	storeKind := flag.String("store", "central", "[cell] central|distributed")
	flag.Parse()

	if *cell {
		runCell(*peers, *txnSize, *ri, *rounds, *trials, *storeKind, *seed)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = exp.FigureIDs()
	}
	opts := exp.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		runner, ok := exp.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v\n", id, exp.FigureIDs())
			os.Exit(2)
		}
		start := time.Now()
		figure, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		figure.Fprint(os.Stdout)
		fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func runCell(peers, txnSize, ri, rounds, trials int, storeKind string, seed int64) {
	kind := exp.Central
	if storeKind == "distributed" || storeKind == "dht" {
		kind = exp.DHT
	}
	res, err := exp.Run(exp.Config{
		Peers:         peers,
		TxnSize:       txnSize,
		ReconInterval: ri,
		Rounds:        rounds,
		Trials:        trials,
		Store:         kind,
		Seed:          seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cell: peers=%d txnsize=%d ri=%d rounds=%d store=%s trials=%d\n",
		peers, txnSize, ri, rounds, kind, trials)
	fmt.Printf("  state ratio:          %s\n", res.StateRatio)
	fmt.Printf("  store time (total s): %s\n", res.TotalStore)
	fmt.Printf("  local time (total s): %s\n", res.TotalLocal)
	fmt.Printf("  store time (/recon):  %s\n", res.PerReconStore)
	fmt.Printf("  local time (/recon):  %s\n", res.PerReconLocal)
	fmt.Printf("  messages:             %s\n", res.Messages)
	fmt.Printf("  deferred per peer:    %s\n", res.Deferred)
}
