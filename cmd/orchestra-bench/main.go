// Command orchestra-bench regenerates the paper's evaluation figures
// (§6, Figures 8-12): it sweeps the experiment parameters, runs repeated
// trials of the SWISS-PROT-style workload over the chosen update stores,
// and prints each figure as a table of means with 95% confidence intervals.
//
// Usage:
//
//	orchestra-bench -fig all            # every figure, full trials
//	orchestra-bench -fig 10 -quick      # one figure, reduced trials
//	orchestra-bench -cell -peers 25 -store distributed -ri 20
//	orchestra-bench -json BENCH_core.json   # core perf suite, machine readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/exp"
	"orchestra/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 8|9|10|11|12|all")
	quick := flag.Bool("quick", false, "reduced trials/rounds for a fast pass")
	seed := flag.Int64("seed", 1, "base random seed")
	cell := flag.Bool("cell", false, "run a single custom experiment cell instead of a figure")
	peers := flag.Int("peers", 10, "[cell] number of participants")
	txnSize := flag.Int("txnsize", 1, "[cell] updates per transaction")
	ri := flag.Int("ri", 4, "[cell] transactions between reconciliations")
	rounds := flag.Int("rounds", 5, "[cell] publish/reconcile rounds per peer")
	trials := flag.Int("trials", 5, "[cell] trials")
	storeKind := flag.String("store", "central", "[cell] central|distributed")
	jsonOut := flag.String("json", "", "run the core reconciliation perf suite and write machine-readable results to this file (e.g. BENCH_core.json)")
	flag.Parse()

	if *jsonOut != "" {
		if err := runCoreSuite(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cell {
		runCell(*peers, *txnSize, *ri, *rounds, *trials, *storeKind, *seed)
		return
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = exp.FigureIDs()
	}
	opts := exp.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		runner, ok := exp.Figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v\n", id, exp.FigureIDs())
			os.Exit(2)
		}
		start := time.Now()
		figure, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", id, err)
			os.Exit(1)
		}
		figure.Fprint(os.Stdout)
		fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func runCell(peers, txnSize, ri, rounds, trials int, storeKind string, seed int64) {
	kind := exp.Central
	if storeKind == "distributed" || storeKind == "dht" {
		kind = exp.DHT
	}
	res, err := exp.Run(exp.Config{
		Peers:         peers,
		TxnSize:       txnSize,
		ReconInterval: ri,
		Rounds:        rounds,
		Trials:        trials,
		Store:         kind,
		Seed:          seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cell: peers=%d txnsize=%d ri=%d rounds=%d store=%s trials=%d\n",
		peers, txnSize, ri, rounds, kind, trials)
	fmt.Printf("  state ratio:          %s\n", res.StateRatio)
	fmt.Printf("  store time (total s): %s\n", res.TotalStore)
	fmt.Printf("  local time (total s): %s\n", res.TotalLocal)
	fmt.Printf("  store time (/recon):  %s\n", res.PerReconStore)
	fmt.Printf("  local time (/recon):  %s\n", res.PerReconLocal)
	fmt.Printf("  messages:             %s\n", res.Messages)
	fmt.Printf("  deferred per peer:    %s\n", res.Deferred)
}

// coreBenchEntry is one measured cell of the core perf suite.
type coreBenchEntry struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Txns        int     `json:"txns"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// coreBenchReport is the BENCH_core.json schema; future PRs compare their
// runs against the committed serial baseline to track the perf trajectory.
type coreBenchReport struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Workload   string           `json:"workload"`
	Entries    []coreBenchEntry `json:"entries"`
}

// runCoreSuite measures Engine.Reconcile on the shared contended workload
// (workload.ContendedCandidates — the same batch BenchmarkEngineReconcile
// measures) across worker counts and writes the results as JSON.
func runCoreSuite(path string) error {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	report := coreBenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "contended single-insert batch; every two transactions share a key",
	}
	var benchErr error
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{100, 500} {
			workers, n := workers, n
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng := core.NewEngine("q", schema, core.TrustAll(1), core.WithParallelism(workers))
					cands, err := workload.ContendedCandidates(schema, "F", n)
					if err != nil {
						benchErr = err
						b.Skip(err)
					}
					b.StartTimer()
					if _, err := eng.Reconcile(cands); err != nil {
						benchErr = err
						b.Skip(err)
					}
				}
			})
			if benchErr != nil {
				return benchErr
			}
			e := coreBenchEntry{
				Name:        fmt.Sprintf("EngineReconcile/workers=%d/txns=%d", workers, n),
				Workers:     workers,
				Txns:        n,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			}
			report.Entries = append(report.Entries, e)
			fmt.Printf("%-40s %12.0f ns/op %10d allocs/op %12d B/op\n",
				e.Name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
