package main

import (
	"context"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/remote"
	"orchestra/internal/trust"
)

// newTestPeer wires a peer to an in-process TCP store server, as the
// binary would.
func newTestPeer(t *testing.T, id string) (*store.Peer, *core.Schema) {
	t.Helper()
	schema, err := builtinSchema("protein")
	if err != nil {
		t.Fatal(err)
	}
	backend := central.MustOpenMemory(schema)
	srv := remote.NewServer(backend, schema)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		backend.Close()
	})
	policy := trust.NewPolicy().MustAdd(1, "true").WithSchema(schema)
	p, err := store.NewPeer(context.Background(), core.PeerID(id), schema, policy, remote.NewClient(id, addr))
	if err != nil {
		t.Fatal(err)
	}
	return p, schema
}

func run(t *testing.T, p *store.Peer, schema *core.Schema, line string) error {
	t.Helper()
	return dispatch(context.Background(), p, schema, strings.Fields(line))
}

func TestDispatchEditPublishShow(t *testing.T) {
	p, schema := newTestPeer(t, "p1")
	if err := run(t, p, schema, "insert F rat prot1 immune"); err != nil {
		t.Fatal(err)
	}
	if p.PendingCount() != 1 {
		t.Fatalf("pending = %d", p.PendingCount())
	}
	if err := run(t, p, schema, "publish"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "reconcile"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "show"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "show F"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "status"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "modify F 3 rat prot1 immune rat prot1 metab"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "sync"); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Instance().Lookup("F", core.Strs("rat", "prot1"))
	if !ok || got[2].Str() != "metab" {
		t.Fatalf("instance after modify: %v %v", got, ok)
	}
	if err := run(t, p, schema, "delete F rat prot1 metab"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "sync"); err != nil {
		t.Fatal(err)
	}
	if p.Instance().Len("F") != 0 {
		t.Fatal("delete did not apply")
	}
}

func TestDispatchConflictsAndResolve(t *testing.T) {
	p, schema := newTestPeer(t, "q")
	// Create a conflict by a second peer on the same backend? The test
	// peer is alone, so simulate a local-only path: conflicts with no
	// groups prints cleanly.
	if err := run(t, p, schema, "conflicts"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "resolve 0 0"); err == nil {
		t.Error("resolve with no groups should error")
	}
}

func TestDispatchErrors(t *testing.T) {
	p, schema := newTestPeer(t, "p1")
	bad := []string{
		"insert F",
		"modify F",
		"modify F x a b c",
		"modify F 3 rat prot1",
		"bogus",
		"resolve",
		"resolve a b",
	}
	for _, line := range bad {
		if err := run(t, p, schema, line); err == nil {
			t.Errorf("%q should error", line)
		}
	}
	if err := run(t, p, schema, "quit"); err != errQuit {
		t.Errorf("quit: %v", err)
	}
	// A local-instance violation surfaces as an error.
	if err := run(t, p, schema, "insert F rat prot1 a"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, p, schema, "insert F rat prot1 b"); err == nil {
		t.Error("conflicting local insert should error")
	}
}

func TestBuiltinSchemas(t *testing.T) {
	if _, err := builtinSchema("protein"); err != nil {
		t.Error(err)
	}
	if s, err := builtinSchema("swissprot"); err != nil || s.Len() != 2 {
		t.Errorf("swissprot: %v %v", s, err)
	}
	if _, err := builtinSchema("nope"); err == nil {
		t.Error("unknown schema accepted")
	}
}
