// Command orchestra-peer runs one CDSS participant against an
// orchestra-store server. It reads commands from stdin (one per line) and
// is equally usable interactively or scripted:
//
//	insert <rel> <v1> <v2> ...          insert a tuple
//	delete <rel> <v1> <v2> ...          delete a tuple (full value)
//	modify <rel> <n> <old...> <new...>  replace a tuple (n = arity)
//	publish                             publish pending local transactions
//	reconcile                           import newly published transactions
//	sync                                publish + reconcile
//	show [rel]                          print the local instance
//	conflicts                           list deferred conflict groups
//	resolve <group#> <option#|-1>       resolve a conflict group
//	status                              peer status line
//	quit
//
// Example:
//
//	orchestra-peer -id p1 -store 127.0.0.1:7400 -policy policy.txt
//
// where policy.txt holds acceptance rules such as
//
//	priority 2 when origin = 'p2'
//	priority 1 when origin in ('p3', 'p4')
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"orchestra/internal/core"
	"orchestra/internal/store"
	"orchestra/internal/store/remote"
	"orchestra/internal/trust"
	"orchestra/internal/workload"
)

func main() {
	id := flag.String("id", "", "participant ID (required)")
	storeAddr := flag.String("store", "127.0.0.1:7400", "orchestra-store address")
	policyPath := flag.String("policy", "", "acceptance-rule file (default: trust everyone at priority 1)")
	schemaName := flag.String("schema", "protein", "built-in schema: protein|swissprot (must match the store)")
	flag.Parse()
	if *id == "" {
		log.Fatal("orchestra-peer: -id is required")
	}

	schema, err := builtinSchema(*schemaName)
	if err != nil {
		log.Fatal(err)
	}
	policy := trust.NewPolicy().MustAdd(1, "true")
	if *policyPath != "" {
		text, err := os.ReadFile(*policyPath)
		if err != nil {
			log.Fatal(err)
		}
		policy, err = trust.Parse(string(text))
		if err != nil {
			log.Fatal(err)
		}
	}
	policy.WithSchema(schema)

	ctx := context.Background()
	client := remote.NewClient(*id, *storeAddr)
	peer, err := store.NewPeer(ctx, core.PeerID(*id), schema, policy, client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orchestra-peer %s connected to %s (schema %s)\n", *id, *storeAddr, *schemaName)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s> ", *id)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if err := dispatch(ctx, peer, schema, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Printf("error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func dispatch(ctx context.Context, peer *store.Peer, schema *core.Schema, fields []string) error {
	switch fields[0] {
	case "quit", "exit":
		return errQuit
	case "insert", "delete":
		if len(fields) < 3 {
			return fmt.Errorf("usage: %s <rel> <values...>", fields[0])
		}
		rel := fields[1]
		t := core.Strs(fields[2:]...)
		var u core.Update
		if fields[0] == "insert" {
			u = core.Insert(rel, t, peer.ID())
		} else {
			u = core.Delete(rel, t, peer.ID())
		}
		x, err := peer.Edit(u)
		if err != nil {
			return err
		}
		fmt.Printf("staged %s\n", x)
		return nil
	case "modify":
		if len(fields) < 4 {
			return fmt.Errorf("usage: modify <rel> <arity> <old values...> <new values...>")
		}
		rel := fields[1]
		n, err := strconv.Atoi(fields[2])
		if err != nil || len(fields) != 3+2*n {
			return fmt.Errorf("usage: modify <rel> <arity> <old...> <new...> (2×arity values)")
		}
		old := core.Strs(fields[3 : 3+n]...)
		new := core.Strs(fields[3+n:]...)
		x, err := peer.Edit(core.Modify(rel, old, new, peer.ID()))
		if err != nil {
			return err
		}
		fmt.Printf("staged %s\n", x)
		return nil
	case "publish":
		epoch, err := peer.Publish(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("published at epoch %d\n", epoch)
		return nil
	case "reconcile", "sync":
		if fields[0] == "sync" {
			if _, err := peer.Publish(ctx); err != nil {
				return err
			}
		}
		res, err := peer.Reconcile(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("recno %d: accepted %v, rejected %v, deferred %v\n",
			res.Recno, res.Accepted, res.Rejected, res.Deferred)
		return nil
	case "show":
		rels := schema.Names()
		if len(fields) > 1 {
			rels = fields[1:]
		}
		for _, rel := range rels {
			fmt.Printf("%s (%d tuples):\n", rel, peer.Instance().Len(rel))
			for _, t := range peer.Instance().Tuples(rel) {
				fmt.Printf("  %v\n", t)
			}
		}
		return nil
	case "conflicts":
		groups := peer.Engine().ConflictGroups()
		if len(groups) == 0 {
			fmt.Println("no outstanding conflicts")
			return nil
		}
		for i, g := range groups {
			fmt.Printf("[%d] %v\n", i, g.Conflict)
			for j, o := range g.Options {
				fmt.Printf("    option %d: %s (txns %v)\n", j, o.Effect, o.Txns)
			}
		}
		return nil
	case "resolve":
		if len(fields) != 3 {
			return fmt.Errorf("usage: resolve <group#> <option#|-1>")
		}
		gi, err1 := strconv.Atoi(fields[1])
		oi, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("usage: resolve <group#> <option#|-1>")
		}
		groups := peer.Engine().ConflictGroups()
		if gi < 0 || gi >= len(groups) {
			return fmt.Errorf("no conflict group %d", gi)
		}
		res, err := peer.Resolve(ctx, groups[gi].Conflict, oi)
		if err != nil {
			return err
		}
		fmt.Printf("resolved: accepted %v, rejected %v, still deferred %v\n",
			res.Accepted, res.Rejected, res.Deferred)
		return nil
	case "status":
		fmt.Printf("peer %s: pending=%d deferred=%d store=%v local=%v\n",
			peer.ID(), peer.PendingCount(), len(peer.Engine().DeferredIDs()),
			peer.StoreTime().Round(1e6), peer.LocalTime().Round(1e6))
		return nil
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

func builtinSchema(name string) (*core.Schema, error) {
	switch name {
	case "protein":
		return core.NewSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	case "swissprot":
		return workload.Schema(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (want protein|swissprot)", name)
	}
}
