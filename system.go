package orchestra

import (
	"context"
	"fmt"
	"sort"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/dhtstore"
)

// System wires a confederation of peers to an update store. It is a
// convenience for embedding; peers can equally be constructed directly
// against any Store implementation.
type System struct {
	schema  *Schema
	cs      *central.Store
	cluster *dhtstore.Cluster
	net     *simnet.Network
	peers   map[PeerID]*Peer
	order   []PeerID
}

// SystemOption configures NewSystem.
type SystemOption func(*systemConfig)

type systemConfig struct {
	dir         string
	distributed bool
	latency     time.Duration
}

// WithStoreDir makes the central store durable in the given directory.
func WithStoreDir(dir string) SystemOption {
	return func(c *systemConfig) { c.dir = dir }
}

// WithDistributedStore uses the DHT-based update store with the given
// per-message latency (the paper's 500µs if zero). Each added peer joins
// the overlay as a storage node.
func WithDistributedStore(latency time.Duration) SystemOption {
	return func(c *systemConfig) {
		c.distributed = true
		c.latency = latency
	}
}

// NewSystem builds a system over the schema. By default it uses an
// in-memory central store.
func NewSystem(schema *Schema, opts ...SystemOption) (*System, error) {
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	sys := &System{schema: schema, peers: make(map[PeerID]*Peer)}
	if cfg.distributed {
		lat := cfg.latency
		if lat <= 0 {
			lat = simnet.DefaultLatency
		}
		sys.net = simnet.NewVirtual(lat)
		sys.cluster = dhtstore.NewCluster(sys.net)
		return sys, nil
	}
	cs, err := central.Open(schema, cfg.dir)
	if err != nil {
		return nil, err
	}
	sys.cs = cs
	return sys, nil
}

// Schema returns the shared schema.
func (s *System) Schema() *Schema { return s.schema }

// AddPeer registers a participant with its trust policy and returns its
// handle.
func (s *System) AddPeer(id PeerID, t Trust) (*Peer, error) {
	if _, dup := s.peers[id]; dup {
		return nil, fmt.Errorf("orchestra: peer %s already exists", id)
	}
	var st store.Store
	if s.cluster != nil {
		cl, err := s.cluster.AddNode("node-" + string(id))
		if err != nil {
			return nil, err
		}
		st = cl
	} else {
		st = s.cs
	}
	p, err := store.NewPeer(context.Background(), id, s.schema, t, st)
	if err != nil {
		return nil, err
	}
	s.peers[id] = p
	s.order = append(s.order, id)
	return p, nil
}

// Peer returns a participant's handle.
func (s *System) Peer(id PeerID) (*Peer, bool) {
	p, ok := s.peers[id]
	return p, ok
}

// Peers returns the participants in registration order.
func (s *System) Peers() []*Peer {
	out := make([]*Peer, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.peers[id])
	}
	return out
}

// Instances returns all participants' instances (for StateRatio).
func (s *System) Instances() []*Instance {
	out := make([]*Instance, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.peers[id].Instance())
	}
	return out
}

// ReconcileAll publishes and reconciles every peer once, in registration
// order, and returns each peer's result.
func (s *System) ReconcileAll(ctx context.Context) (map[PeerID]*Result, error) {
	out := make(map[PeerID]*Result, len(s.order))
	for _, id := range s.order {
		res, err := s.peers[id].PublishAndReconcile(ctx)
		if err != nil {
			return out, fmt.Errorf("orchestra: reconcile %s: %w", id, err)
		}
		out[id] = res
	}
	return out, nil
}

// Messages returns the DHT fabric traffic (0 for the central store).
func (s *System) Messages() int64 {
	if s.net == nil {
		return 0
	}
	return s.net.Stats().Messages()
}

// NetworkLatency returns the total simulated network latency charged so
// far (0 for the central store).
func (s *System) NetworkLatency() time.Duration {
	if s.net == nil {
		return 0
	}
	return s.net.VirtualLatency()
}

// Close releases the store.
func (s *System) Close() error {
	if s.cs != nil {
		return s.cs.Close()
	}
	return nil
}

// DeferredAcross summarizes, for diagnostics, how many transactions remain
// deferred at each peer.
func (s *System) DeferredAcross() map[PeerID]int {
	out := make(map[PeerID]int, len(s.peers))
	for id, p := range s.peers {
		out[id] = len(p.Engine().DeferredIDs())
	}
	return out
}

// SortedPeerIDs returns the registered peer IDs, sorted.
func (s *System) SortedPeerIDs() []PeerID {
	out := append([]PeerID(nil), s.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ensure the facade type aliases stay wired (compile-time checks).
var (
	_ Trust = core.TrustAll(1)
	_ Store = (*central.Store)(nil)
)
