package orchestra

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/dhtstore"
)

// System wires a confederation of peers to an update store. It is a
// convenience for embedding; peers can equally be constructed directly
// against any Store implementation.
type System struct {
	schema      *Schema
	cs          *central.Store
	cluster     *dhtstore.Cluster
	net         *simnet.Network
	peers       map[PeerID]*Peer
	order       []PeerID
	fanout      int
	interleaved bool
	unbatched   bool
	storeFor    func(core.PeerID) (store.Store, error)
	pstats      metrics.Pipeline

	streamPoll      time.Duration
	streamRetryBase time.Duration
	streamRetryMax  time.Duration
	streamObs       func(store.StreamResult)
}

// SystemOption configures NewSystem.
type SystemOption func(*systemConfig)

type systemConfig struct {
	dir         string
	distributed bool
	latency     time.Duration
	fanout      int
	interleaved bool
	unbatched   bool
	storeFor    func(core.PeerID) (store.Store, error)

	streamPoll      time.Duration
	streamRetryBase time.Duration
	streamRetryMax  time.Duration
	streamObs       func(store.StreamResult)
}

// WithStoreDir makes the central store durable in the given directory.
func WithStoreDir(dir string) SystemOption {
	return func(c *systemConfig) { c.dir = dir }
}

// WithDistributedStore uses the DHT-based update store with the given
// per-message latency (the paper's 500µs if zero). Each added peer joins
// the overlay as a storage node.
func WithDistributedStore(latency time.Duration) SystemOption {
	return func(c *systemConfig) {
		c.distributed = true
		c.latency = latency
	}
}

// WithReconcileFanOut bounds the number of peers ReconcileAll drives
// concurrently. n <= 0 (the default) uses runtime.GOMAXPROCS(0). The bound
// affects concurrency only, never semantics: every fan-out (including 1)
// runs the same publish-barrier round, so results do not depend on the
// host's core count.
func WithReconcileFanOut(n int) SystemOption {
	return func(c *systemConfig) { c.fanout = n }
}

// WithInterleavedReconcile restores the historical strictly sequential
// ReconcileAll pass: each peer publishes and reconciles in registration
// order, so a peer only sees the same-round publications of peers
// registered before it. Useful for reproducing the paper's per-peer
// reconciliation cadence; implies a fan-out of 1.
func WithInterleavedReconcile() SystemOption {
	return func(c *systemConfig) { c.interleaved = true }
}

// WithUnbatchedDecisions restores per-peer decision recording: each
// reconciliation issues its own RecordDecisions store call instead of the
// wave-pooled RecordDecisionsBatch flush. Decisions are identical either
// way (the differential tests assert it); the option exists as the
// historical baseline and for stores where batching is undesirable.
func WithUnbatchedDecisions() SystemOption {
	return func(c *systemConfig) { c.unbatched = true }
}

// WithPeerStores routes every peer's store traffic through its own client
// from the factory instead of a store the system owns — e.g. a remote
// client over TCP or a fault-injecting simnet, each with its own retry
// policy. The system then opens no store of its own (CentralStore returns
// nil) and the factory's target outlives Close.
func WithPeerStores(factory func(core.PeerID) (store.Store, error)) SystemOption {
	return func(c *systemConfig) { c.storeFor = factory }
}

// WithStreamPoll sets the reconcile cadence RunStreaming uses against
// stores without watch support (default 50ms). Watching stores ignore it:
// they block on the subscription instead of polling.
func WithStreamPoll(d time.Duration) SystemOption {
	return func(c *systemConfig) { c.streamPoll = d }
}

// WithStreamRetry bounds the exponential backoff RunStreaming applies to
// transiently failing streaming steps and broken subscriptions (defaults
// 2ms base, 100ms cap).
func WithStreamRetry(base, max time.Duration) SystemOption {
	return func(c *systemConfig) { c.streamRetryBase, c.streamRetryMax = base, max }
}

// WithStreamObserver registers a callback RunStreaming invokes after every
// streaming step whose decisions are recorded. It is called from the
// per-peer stream goroutines — possibly concurrently for different peers.
func WithStreamObserver(fn func(store.StreamResult)) SystemOption {
	return func(c *systemConfig) { c.streamObs = fn }
}

// NewSystem builds a system over the schema. By default it uses an
// in-memory central store.
func NewSystem(schema *Schema, opts ...SystemOption) (*System, error) {
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	sys := &System{
		schema:      schema,
		peers:       make(map[PeerID]*Peer),
		fanout:      cfg.fanout,
		interleaved: cfg.interleaved,
		unbatched:   cfg.unbatched,
		storeFor:    cfg.storeFor,

		streamPoll:      cfg.streamPoll,
		streamRetryBase: cfg.streamRetryBase,
		streamRetryMax:  cfg.streamRetryMax,
		streamObs:       cfg.streamObs,
	}
	if cfg.storeFor != nil {
		return sys, nil
	}
	if cfg.distributed {
		lat := cfg.latency
		if lat <= 0 {
			lat = simnet.DefaultLatency
		}
		sys.net = simnet.NewVirtual(lat)
		sys.cluster = dhtstore.NewCluster(sys.net)
		return sys, nil
	}
	cs, err := central.Open(schema, cfg.dir)
	if err != nil {
		return nil, err
	}
	sys.cs = cs
	return sys, nil
}

// Schema returns the shared schema.
func (s *System) Schema() *Schema { return s.schema }

// AddPeer registers a participant with its trust policy and returns its
// handle.
func (s *System) AddPeer(id PeerID, t Trust) (*Peer, error) {
	if _, dup := s.peers[id]; dup {
		return nil, fmt.Errorf("orchestra: peer %s already exists", id)
	}
	var st store.Store
	switch {
	case s.storeFor != nil:
		cl, err := s.storeFor(id)
		if err != nil {
			return nil, err
		}
		st = cl
	case s.cluster != nil:
		cl, err := s.cluster.AddNode("node-" + string(id))
		if err != nil {
			return nil, err
		}
		st = cl
	default:
		st = s.cs
	}
	p, err := store.NewPeer(context.Background(), id, s.schema, t, st)
	if err != nil {
		return nil, err
	}
	s.peers[id] = p
	s.order = append(s.order, id)
	return p, nil
}

// Peer returns a participant's handle.
func (s *System) Peer(id PeerID) (*Peer, bool) {
	p, ok := s.peers[id]
	return p, ok
}

// Peers returns the participants in registration order.
func (s *System) Peers() []*Peer {
	out := make([]*Peer, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.peers[id])
	}
	return out
}

// Instances returns all participants' instances (for StateRatio).
func (s *System) Instances() []*Instance {
	out := make([]*Instance, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.peers[id].Instance())
	}
	return out
}

// PeerError reports one peer's failure within a ReconcileAll round. The
// joined error ReconcileAll returns is made of these, so callers can pick
// out which peers missed the round (errors.As / a type switch over
// errors.Join's tree) and know the rest of the confederation proceeded.
type PeerError struct {
	Peer PeerID
	Op   string // "publish", "reconcile", or "record"
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("orchestra: %s %s: %v", e.Op, e.Peer, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// ReconcileAll runs one publish/reconcile round for every peer and returns
// each peer's result.
//
// The round is split into two barriers: first every peer publishes its
// pending transactions, then every peer reconciles — each on its own
// goroutine, bounded by the fan-out (default GOMAXPROCS; see
// WithReconcileFanOut). Engines are single-owner, so peers are independent;
// the update stores are safe for concurrent use. The split makes every
// same-round publication visible to every reconciler regardless of the
// fan-out, so results do not depend on the host's core count.
//
// The reconcile pass runs in waves of fan-out size: each wave's peers
// reconcile concurrently with decision recording deferred, then the whole
// wave's accept/reject outcomes are flushed to the store in a single
// RecordDecisionsBatch round trip. Batching changes round trips only,
// never results — one peer's recorded decisions are invisible to another
// peer's reconciliation, so flush timing cannot alter candidates. The
// per-peer recording pass is available via WithUnbatchedDecisions, and the
// historical interleaved registration-order pass (publish+reconcile per
// peer, earlier peers invisible to none) via WithInterleavedReconcile.
//
// The round degrades gracefully under store failures: a peer whose publish
// or reconcile fails is reported in the returned error as a *PeerError and
// sits the rest of the round out — its pending work is untouched, so it
// simply catches up on a later round — while every other peer completes
// normally. The map carries the results of the peers that succeeded; the
// returned error joins every per-peer failure. (The interleaved pass keeps
// its historical stop-at-first-error behavior.)
func (s *System) ReconcileAll(ctx context.Context) (map[PeerID]*Result, error) {
	fan := s.fanout
	if fan <= 0 {
		fan = runtime.GOMAXPROCS(0)
	}
	out := make(map[PeerID]*Result, len(s.order))
	if s.interleaved {
		for _, id := range s.order {
			done := s.pstats.WorkerStart()
			res, err := s.peers[id].PublishAndReconcile(ctx)
			done()
			if err != nil {
				return out, fmt.Errorf("orchestra: reconcile %s: %w", id, err)
			}
			s.pstats.Observe(res)
			out[id] = res
		}
		return out, nil
	}

	// Publish barrier: everyone's pending transactions reach the store
	// before anyone reconciles. A failed publisher does not sink the round:
	// its error is recorded and it skips the reconcile pass (publishing and
	// reconciling later), while the rest of the confederation proceeds.
	recErrs := make([]error, len(s.order))
	s.forEachPeer(fan, func(i int) {
		if _, err := s.peers[s.order[i]].Publish(ctx); err != nil {
			recErrs[i] = &PeerError{Peer: s.order[i], Op: "publish", Err: err}
		}
	})

	// Reconcile fan-out (skipping peers already failed in the barrier).
	results := make([]*Result, len(s.order))
	if s.unbatched {
		s.forEachPeer(fan, func(i int) {
			if recErrs[i] != nil {
				return
			}
			done := s.pstats.WorkerStart()
			defer done()
			res, err := s.peers[s.order[i]].Reconcile(ctx)
			if err != nil {
				recErrs[i] = &PeerError{Peer: s.order[i], Op: "reconcile", Err: err}
				return
			}
			s.pstats.Observe(res)
			results[i] = res
		})
	} else {
		s.reconcileWaves(ctx, fan, results, recErrs)
	}
	for i, res := range results {
		if res != nil {
			out[s.order[i]] = res
		}
	}
	return out, errors.Join(recErrs...)
}

// reconcileWaves drives the batched reconcile pass: waves of at most fan
// peers reconcile concurrently with recording deferred, then each wave's
// decisions flush in one RecordDecisionsBatch round trip.
func (s *System) reconcileWaves(ctx context.Context, fan int, results []*Result, recErrs []error) {
	n := len(s.order)
	batches := make([]store.DecisionBatch, n)
	for lo := 0; lo < n; lo += fan {
		hi := lo + fan
		if hi > n {
			hi = n
		}
		var wg sync.WaitGroup
		for i := lo; i < hi; i++ {
			if recErrs[i] != nil {
				continue // failed its publish; sits the round out
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				done := s.pstats.WorkerStart()
				defer done()
				res, batch, err := s.peers[s.order[i]].ReconcileBuffered(ctx)
				if err != nil {
					recErrs[i] = &PeerError{Peer: s.order[i], Op: "reconcile", Err: err}
					return
				}
				results[i] = res
				batches[i] = batch
			}(i)
		}
		wg.Wait()

		// Flush the wave: one store round trip for every peer that has
		// decisions to record. Empty outcomes have nothing to persist.
		flush := make([]store.DecisionBatch, 0, hi-lo)
		decisions := 0
		for i := lo; i < hi; i++ {
			if results[i] == nil || batches[i].Empty() {
				continue
			}
			flush = append(flush, batches[i])
			decisions += len(batches[i].Accepted) + len(batches[i].Rejected)
		}
		if len(flush) > 0 {
			if err := s.peers[flush[0].Peer].Store().RecordDecisionsBatch(ctx, flush); err != nil {
				// Only the peers whose decisions were in the failed flush
				// lose their results; empty-outcome peers completed fine.
				for i := lo; i < hi; i++ {
					if results[i] != nil && recErrs[i] == nil && !batches[i].Empty() {
						recErrs[i] = &PeerError{Peer: s.order[i], Op: "record", Err: err}
						results[i] = nil
					}
				}
			} else {
				s.pstats.ObserveDecisionFlush(len(flush), decisions)
			}
		}
		for i := lo; i < hi; i++ {
			if results[i] != nil {
				s.pstats.Observe(results[i])
			}
		}
	}
}

// RunStreaming runs the incremental reconcile loop for every peer until
// ctx is done, replacing the round barrier of ReconcileAll: each peer
// subscribes to newly stable epochs via its store's watch capability
// (Store.WatchFrom, degrading to polling where the store cannot watch) and
// reconciles each stable window as it arrives, overlapping publish,
// reconcile, and decision flush across the confederation. Publishing is
// the application's job — Edit and Publish stay usable concurrently while
// the streams run.
//
// RunStreaming blocks until every peer's stream has stopped. Cancelling
// ctx is the normal shutdown and yields a nil error; a peer whose stream
// dies on a permanent (non-transient, non-cancellation) failure is
// reported in the joined error as a *PeerError with Op "stream", and the
// other peers keep streaming until ctx ends.
//
// Results are delivered through the observer (WithStreamObserver) and the
// Pipeline counters, which gain publish-to-stable and stable-to-decision
// lag alongside the usual per-stage stats.
func (s *System) RunStreaming(ctx context.Context) error {
	errs := make([]error, len(s.order))
	var wg sync.WaitGroup
	for i, id := range s.order {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			err := p.ReconcileStream(ctx, store.StreamOptions{
				Poll:      s.streamPoll,
				RetryBase: s.streamRetryBase,
				RetryMax:  s.streamRetryMax,
				Metrics:   &s.pstats,
				OnResult:  s.streamObs,
			})
			if err != nil && ctx.Err() == nil {
				errs[i] = &PeerError{Peer: p.ID(), Op: "stream", Err: err}
			}
		}(i, s.peers[id])
	}
	wg.Wait()
	return errors.Join(errs...)
}

// forEachPeer runs fn(i) for every peer index on at most fan goroutines.
func (s *System) forEachPeer(fan int, fn func(i int)) {
	n := len(s.order)
	if fan > n {
		fan = n
	}
	if fan <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	sem := make(chan struct{}, fan)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// Pipeline exposes the aggregated reconciliation-pipeline counters (stage
// latencies, work counts, the fan-out busy gauge, and the decision-flush
// batching stats) collected by ReconcileAll.
func (s *System) Pipeline() *metrics.Pipeline { return &s.pstats }

// CentralStore returns the backing central store (nil for a distributed
// system); it exposes the store's sharding/batching counters to embedders
// and the bench harness.
func (s *System) CentralStore() *central.Store { return s.cs }

// Messages returns the DHT fabric traffic (0 for the central store).
func (s *System) Messages() int64 {
	if s.net == nil {
		return 0
	}
	return s.net.Stats().Messages()
}

// NetworkLatency returns the total simulated network latency charged so
// far (0 for the central store).
func (s *System) NetworkLatency() time.Duration {
	if s.net == nil {
		return 0
	}
	return s.net.VirtualLatency()
}

// Close releases the store.
func (s *System) Close() error {
	if s.cs != nil {
		return s.cs.Close()
	}
	return nil
}

// DeferredAcross summarizes, for diagnostics, how many transactions remain
// deferred at each peer.
func (s *System) DeferredAcross() map[PeerID]int {
	out := make(map[PeerID]int, len(s.peers))
	for id, p := range s.peers {
		out[id] = len(p.Engine().DeferredIDs())
	}
	return out
}

// SortedPeerIDs returns the registered peer IDs, sorted.
func (s *System) SortedPeerIDs() []PeerID {
	out := append([]PeerID(nil), s.order...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ensure the facade type aliases stay wired (compile-time checks).
var (
	_ Trust = core.TrustAll(1)
	_ Store = (*central.Store)(nil)
)
