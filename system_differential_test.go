package orchestra

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// roundOutcome captures everything decision-shaped a round produced for one
// peer, in a canonical (sorted) form.
type roundOutcome struct {
	Accepted []TxnID
	Rejected []TxnID
	Deferred []TxnID
}

func sortedIDs(ids []TxnID) []TxnID {
	out := append([]TxnID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// runDifferentialScenario drives a contended multi-round confederation and
// returns every peer's per-round decisions plus final instance encodings.
// The workload mixes clean imports, priority-decided conflicts, and ties
// (deferrals), so all three decision kinds are exercised.
func runDifferentialScenario(t *testing.T, opts ...SystemOption) (map[string][]roundOutcome, map[PeerID][]string) {
	t.Helper()
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := NewSystem(schema, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const n = 6
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		id := PeerID(fmt.Sprintf("p%d", i))
		// Asymmetric trust with ties: origins in the same residue class get
		// equal priority, so same-key edits from them defer.
		trust := make(map[PeerID]int, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				trust[PeerID(fmt.Sprintf("p%d", j))] = j%3 + 1
			}
		}
		peers[i], err = sys.AddPeer(id, TrustOrigins(trust))
		if err != nil {
			t.Fatal(err)
		}
	}

	outcomes := make(map[string][]roundOutcome)
	instances := make(map[PeerID][]string)
	for round := 0; round < 3; round++ {
		for i, p := range peers {
			// Keys are unique per round (so a later insert never collides
			// with an imported tuple) but shared across peers within a
			// round: on even rounds peers i and i+4 collide (different
			// trust priorities → accept/reject), on odd rounds i and i+3
			// collide (equal priorities → ties, deferred).
			mod := 4 - round%2
			key := fmt.Sprintf("prot%d-r%d", i%mod, round)
			val := fmt.Sprintf("v-%d-%d", i, round)
			if _, err := p.Edit(Insert("F", Strs("org", key, val), p.ID())); err != nil {
				t.Fatal(err)
			}
		}
		results, err := sys.ReconcileAll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for id, res := range results {
			outcomes[string(id)] = append(outcomes[string(id)], roundOutcome{
				Accepted: sortedIDs(res.Accepted),
				Rejected: sortedIDs(res.Rejected),
				Deferred: sortedIDs(res.Deferred),
			})
		}
	}
	for _, p := range peers {
		var enc []string
		for _, tuple := range p.Instance().Tuples("F") {
			enc = append(enc, tuple.Encode())
		}
		sort.Strings(enc)
		instances[p.ID()] = enc
	}
	return outcomes, instances
}

// TestReconcileAllDifferential: the sharded store + batched decision
// recording produce bit-identical accept/reject/defer decisions and final
// instances versus the per-peer sequential recording path, at every
// fan-out width. Run with -race (the tier-1 gate does) so the concurrent
// configurations also serve as a data-race probe.
func TestReconcileAllDifferential(t *testing.T) {
	refOutcomes, refInstances := runDifferentialScenario(t,
		WithReconcileFanOut(1), WithUnbatchedDecisions())

	// The scenario must exercise every decision kind, or the comparison
	// proves nothing.
	var accepts, rejects, defers int
	for _, rounds := range refOutcomes {
		for _, o := range rounds {
			accepts += len(o.Accepted)
			rejects += len(o.Rejected)
			defers += len(o.Deferred)
		}
	}
	if accepts == 0 || rejects == 0 || defers == 0 {
		t.Fatalf("vacuous scenario: accepts=%d rejects=%d defers=%d", accepts, rejects, defers)
	}

	for _, fan := range []int{1, 2, 4, 8} {
		for _, batched := range []bool{true, false} {
			name := fmt.Sprintf("fanout=%d/batched=%v", fan, batched)
			t.Run(name, func(t *testing.T) {
				opts := []SystemOption{WithReconcileFanOut(fan)}
				if !batched {
					opts = append(opts, WithUnbatchedDecisions())
				}
				outcomes, instances := runDifferentialScenario(t, opts...)
				if !reflect.DeepEqual(outcomes, refOutcomes) {
					t.Errorf("decisions diverge from sequential baseline:\n got %+v\nwant %+v",
						outcomes, refOutcomes)
				}
				if !reflect.DeepEqual(instances, refInstances) {
					t.Errorf("instances diverge from sequential baseline:\n got %+v\nwant %+v",
						instances, refInstances)
				}
			})
		}
	}
}

// TestReconcileAllBatchedFlushCounters: the batched pass reports its
// round-trip economy through the pipeline counters, and the central store
// agrees.
func TestReconcileAllBatchedFlushCounters(t *testing.T) {
	ctx := context.Background()
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := NewSystem(schema, WithReconcileFanOut(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const n = 5
	for i := 0; i < n; i++ {
		id := PeerID(fmt.Sprintf("p%d", i))
		p, err := sys.AddPeer(id, TrustAll(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Edit(Insert("F", Strs("org", fmt.Sprintf("prot%d", i), "v"), id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.ReconcileAll(ctx); err != nil {
		t.Fatal(err)
	}
	snap := sys.Pipeline().Snapshot()
	if snap.DecisionFlushes != 1 {
		t.Errorf("flushes = %d, want 1 (one wave)", snap.DecisionFlushes)
	}
	// Every peer accepts the n-1 others' transactions.
	if want := int64(n * (n - 1)); snap.DecisionsFlushed != want {
		t.Errorf("decisions flushed = %d, want %d", snap.DecisionsFlushed, want)
	}
	if snap.FlushPeak != n {
		t.Errorf("flush peak = %d, want %d", snap.FlushPeak, n)
	}
	cs := sys.CentralStore()
	if cs == nil {
		t.Fatal("central system should expose its store")
	}
	ss := cs.Metrics().Snapshot()
	if ss.DecisionRoundTrips != 1 || ss.DecisionPeers != int64(n) {
		t.Errorf("store counters: %+v", ss)
	}
	if ss.Publishes != int64(n) {
		t.Errorf("store counted %d publishes, want %d", ss.Publishes, n)
	}
}
