package orchestra

// Benchmarks regenerating the paper's evaluation (one per figure; see
// DESIGN.md §4 for the experiment index), plus ablation benchmarks for the
// design choices the implementation makes: hash-based vs naive conflict
// detection, delta flattening vs raw footprints, and per-store publish and
// reconcile costs. cmd/orchestra-bench runs the full multi-trial sweeps
// with confidence intervals; these testing.B entry points exercise the same
// code paths per iteration and report the headline metric of each figure
// via b.ReportMetric.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/exp"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/dhtstore"
	"orchestra/internal/workload"
)

// runCell runs one experiment trial per benchmark iteration and reports
// the figure's metrics.
func runCell(b *testing.B, cfg exp.Config) {
	b.Helper()
	cfg.Trials = 1
	var ratio, storeS, localS float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.StateRatio.Mean
		storeS = res.TotalStore.Mean
		localS = res.TotalLocal.Mean
	}
	b.ReportMetric(ratio, "state-ratio")
	b.ReportMetric(storeS, "store-s/peer")
	b.ReportMetric(localS, "local-s/peer")
}

// BenchmarkFig08TransactionSize: state ratio vs transaction size with the
// number of updates between reconciliations held constant (Figure 8).
func BenchmarkFig08TransactionSize(b *testing.B) {
	const updatesPerInterval = 20
	for _, size := range []int{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			runCell(b, exp.Config{
				Peers:         10,
				TxnSize:       size,
				ReconInterval: max(1, updatesPerInterval/size),
				Rounds:        3,
			})
		})
	}
}

// BenchmarkFig09ReconInterval: state ratio vs reconciliation interval
// (Figure 9).
func BenchmarkFig09ReconInterval(b *testing.B) {
	for _, ri := range []int{1, 4, 10, 20} {
		b.Run(fmt.Sprintf("ri=%d", ri), func(b *testing.B) {
			runCell(b, exp.Config{Peers: 10, TxnSize: 1, ReconInterval: ri, Rounds: 3})
		})
	}
}

// BenchmarkFig10ReconIntervalTime: total reconciliation time per
// participant for RI × store kind (Figure 10); the store-s/peer and
// local-s/peer metrics carry the stacked-bar breakdown.
func BenchmarkFig10ReconIntervalTime(b *testing.B) {
	for _, ri := range []int{4, 20, 50} {
		for _, kind := range []exp.StoreKind{exp.Central, exp.DHT} {
			b.Run(fmt.Sprintf("ri=%d/store=%s", ri, kind), func(b *testing.B) {
				rounds := max(1, 40/ri)
				runCell(b, exp.Config{
					Peers: 10, TxnSize: 1, ReconInterval: ri,
					Rounds: rounds, Store: kind,
				})
			})
		}
	}
}

// BenchmarkFig11Participants: state ratio vs confederation size
// (Figure 11).
func BenchmarkFig11Participants(b *testing.B) {
	for _, n := range []int{5, 10, 25, 50} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			runCell(b, exp.Config{Peers: n, TxnSize: 1, ReconInterval: 4, Rounds: 3})
		})
	}
}

// BenchmarkFig12ParticipantsTime: average time per reconciliation for
// confederation size × store kind (Figure 12).
func BenchmarkFig12ParticipantsTime(b *testing.B) {
	for _, n := range []int{10, 25, 50} {
		for _, kind := range []exp.StoreKind{exp.Central, exp.DHT} {
			b.Run(fmt.Sprintf("peers=%d/store=%s", n, kind), func(b *testing.B) {
				runCell(b, exp.Config{
					Peers: n, TxnSize: 1, ReconInterval: 4,
					Rounds: 2, Store: kind,
				})
			})
		}
	}
}

// benchUpdateSets builds two flattened update sets with controlled overlap
// for the conflict-detection ablation.
func benchUpdateSets(n int) (a, b []core.Update) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		org := workload.Organisms[r.Intn(len(workload.Organisms))]
		prot := fmt.Sprintf("P%05d", r.Intn(n*2))
		a = append(a, core.Insert("F", core.Strs(org, prot, "fa"), "a"))
		prot = fmt.Sprintf("P%05d", r.Intn(n*2))
		b = append(b, core.Insert("F", core.Strs(org, prot, "fb"), "b"))
	}
	return a, b
}

// BenchmarkAblationConflictDetection compares the hash-based conflict
// detector (§5.1's O(t²+tua) bound depends on it) against the naive
// quadratic reference.
func BenchmarkAblationConflictDetection(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for _, n := range []int{10, 100, 1000} {
		ua, ub := benchUpdateSets(n)
		b.Run(fmt.Sprintf("hash/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SetsConflict(schema, ua, ub)
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SetsConflictNaive(schema, ua, ub)
			}
		})
	}
}

// BenchmarkAblationFlatten measures delta composition ("least interaction")
// against applying the raw footprint, for chains of increasing length.
func BenchmarkAblationFlatten(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for _, chainLen := range []int{2, 8, 32} {
		var seq []core.Update
		seq = append(seq, core.Insert("F", core.Strs("rat", "p1", "v0"), "x"))
		for i := 1; i < chainLen; i++ {
			seq = append(seq, core.Modify("F",
				core.Strs("rat", "p1", fmt.Sprintf("v%d", i-1)),
				core.Strs("rat", "p1", fmt.Sprintf("v%d", i)), "x"))
		}
		b.Run(fmt.Sprintf("flatten/chain=%d", chainLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Flatten(schema, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("raw-apply/chain=%d", chainLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst := core.NewInstance(schema)
				if err := inst.ApplyAll(seq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// contendedCandidates wraps workload.ContendedCandidates — the shared
// contended reconciliation workload also measured by orchestra-bench -json.
func contendedCandidates(b *testing.B, schema *core.Schema, n int) []*core.Candidate {
	b.Helper()
	cands, err := workload.ContendedCandidates(schema, "F", n)
	if err != nil {
		b.Fatal(err)
	}
	return cands
}

// BenchmarkEngineReconcile measures the pure reconciliation algorithm:
// one peer importing n single-insert transactions, half of them mutually
// conflicting, at the default parallelism (GOMAXPROCS).
func BenchmarkEngineReconcile(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for _, n := range []int{10, 100, 500} {
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := core.NewEngine("q", schema, core.TrustAll(1))
				cands := contendedCandidates(b, schema, n)
				b.StartTimer()
				if _, err := eng.Reconcile(cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationParallelism sweeps the engine's worker bound over the
// contended reconciliation workload: workers=1 is the serial escape hatch,
// higher counts exercise the bounded pool of internal/core/parallel.go.
// allocs/op tracks the allocation hygiene of the flatten/conflict path.
func BenchmarkAblationParallelism(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{100, 500} {
			b.Run(fmt.Sprintf("workers=%d/txns=%d", workers, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					eng := core.NewEngine("q", schema, core.TrustAll(1), core.WithParallelism(workers))
					cands := contendedCandidates(b, schema, n)
					b.StartTimer()
					if _, err := eng.Reconcile(cands); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCentralPublish measures the centralized store's publish path
// (epoch allocation, WAL-backed transaction insertion, decision recording).
func BenchmarkCentralPublish(b *testing.B) {
	schema := workload.Schema()
	ctx := context.Background()
	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			cs := central.MustOpenMemory(schema)
			defer cs.Close()
			if err := cs.RegisterPeer(ctx, "p", core.TrustAll(1)); err != nil {
				b.Fatal(err)
			}
			seq := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txns := make([]store.PublishedTxn, batch)
				for j := range txns {
					txns[j] = store.PublishedTxn{Txn: core.NewTransaction(
						core.TxnID{Origin: "p", Seq: seq},
						core.Insert("Function", core.Strs("org", fmt.Sprintf("P%d", seq), "fn"), "p"))}
					seq++
				}
				if _, err := cs.Publish(ctx, "p", txns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAppendOnlyVsGeneral compares the §4.1 append-only
// baseline against the general engine on an identical insert-only batch:
// the price of supporting deletions, replacements, and antecedent chains.
func BenchmarkAblationAppendOnlyVsGeneral(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	mkBatch := func(n int) []*core.Transaction {
		out := make([]*core.Transaction, n)
		for j := 0; j < n; j++ {
			key := j / 2 // every two transactions contend
			out[j] = core.NewTransaction(core.TxnID{Origin: core.PeerID(fmt.Sprintf("p%d", j)), Seq: 0},
				core.Insert("F", core.Strs("org", fmt.Sprintf("p%d", key), fmt.Sprintf("f%d", j)), "x"))
		}
		return out
	}
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("append-only/txns=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := core.NewAppendOnlyEngine("q", schema, core.TrustAll(1))
				batch := mkBatch(n)
				b.StartTimer()
				eng.ReconcileEpoch(batch)
			}
		})
		b.Run(fmt.Sprintf("general/txns=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng := core.NewEngine("q", schema, core.TrustAll(1))
				cands := contendedCandidates(b, schema, n)
				b.StartTimer()
				if _, err := eng.Reconcile(cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNetworkCentric compares client-centric and
// network-centric reconciliation over the DHT store (the Figure 3
// trade-off): per-iteration message counts are reported as metrics.
func BenchmarkAblationNetworkCentric(b *testing.B) {
	schema := workload.Schema()
	ctx := context.Background()
	for _, mode := range []string{"client-centric", "network-centric"} {
		b.Run(mode, func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net := simnet.NewVirtual(simnet.DefaultLatency)
				cluster := dhtstore.NewCluster(net)
				newClient := func(id core.PeerID) store.Store {
					var cl store.Store
					var err error
					if mode == "network-centric" {
						cl, err = cluster.AddNetworkCentricNode("node-" + string(id))
					} else {
						cl, err = cluster.AddNode("node-" + string(id))
					}
					if err != nil {
						b.Fatal(err)
					}
					return cl
				}
				pa, err := store.NewPeer(ctx, "pa", schema, core.TrustAll(1), newClient("pa"))
				if err != nil {
					b.Fatal(err)
				}
				pb, err := store.NewPeer(ctx, "pb", schema, core.TrustAll(1), newClient("pb"))
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.New(workload.Config{Seed: int64(i), TxnSize: 2, KeySpace: 100})
				for r := 0; r < 3; r++ {
					for k := 0; k < 5; k++ {
						ups := gen.NextUpdates(pa.Instance(), "pa")
						if len(ups) == 0 {
							continue
						}
						if _, err := pa.Edit(ups...); err != nil {
							continue
						}
					}
					if _, err := pa.PublishAndReconcile(ctx); err != nil {
						b.Fatal(err)
					}
				}
				net.Stats().Reset()
				b.StartTimer()
				if _, err := pb.PublishAndReconcile(ctx); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				msgs = float64(net.Stats().Messages())
				b.StartTimer()
			}
			b.ReportMetric(msgs, "messages")
		})
	}
}

// BenchmarkStateRatio measures the metric computation itself across
// confederation sizes.
func BenchmarkStateRatio(b *testing.B) {
	schema := core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
	for _, n := range []int{10, 50} {
		instances := make([]*core.Instance, n)
		r := rand.New(rand.NewSource(3))
		for i := range instances {
			instances[i] = core.NewInstance(schema)
			for k := 0; k < 200; k++ {
				if r.Intn(2) == 0 {
					_ = instances[i].Apply(core.Insert("F",
						core.Strs("org", fmt.Sprintf("P%d", k), fmt.Sprintf("f%d", r.Intn(3))), "x"))
				}
			}
		}
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				StateRatio(instances, "F")
			}
		})
	}
}

// BenchmarkStreamLatency drives a sustained conflict-free publish load
// through the streaming reconcile loop and measures time until every peer's
// frontier covers the last publish. cmd/orchestra-bench -json runs the full
// streaming-vs-round-based latency comparison (the stream_latency section of
// BENCH_core.json); this entry point keeps the streaming path itself under
// make bench-smoke.
func BenchmarkStreamLatency(b *testing.B) {
	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	const peers = 4
	const publishes = 32
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var (
			mu       sync.Mutex
			frontier = map[PeerID]Epoch{}
		)
		sys, err := NewSystem(schema, WithStreamObserver(func(r StreamResult) {
			mu.Lock()
			if r.To > frontier[r.Peer] {
				frontier[r.Peer] = r.To
			}
			mu.Unlock()
		}))
		if err != nil {
			b.Fatal(err)
		}
		ps := make([]*Peer, peers)
		for p := range ps {
			if ps[p], err = sys.AddPeer(PeerID(fmt.Sprintf("p%d", p)), core.TrustAll(1)); err != nil {
				b.Fatal(err)
			}
		}
		sctx, cancel := context.WithCancel(ctx)
		done := make(chan error, 1)
		b.StartTimer()
		go func() { done <- sys.RunStreaming(sctx) }()
		var last Epoch
		for k := 0; k < publishes; k++ {
			p := ps[k%peers]
			if _, err := p.Edit(Insert("F",
				Strs("org-"+string(p.ID()), fmt.Sprintf("prot-%d", k), "fn"), p.ID())); err != nil {
				b.Fatal(err)
			}
			if last, err = p.Publish(ctx); err != nil {
				b.Fatal(err)
			}
		}
		for {
			mu.Lock()
			caught := len(frontier) == peers
			for _, f := range frontier {
				caught = caught && f >= last
			}
			mu.Unlock()
			if caught {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		cancel()
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		sys.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(publishes), "publishes/op")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
