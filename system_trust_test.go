package orchestra

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"orchestra/internal/trust"
	"orchestra/internal/workload"
)

// runTrustTopologyScenario drives a small confederation whose trust comes
// from a generated delegation topology: every peer registers its direct
// (delegation-free) policy first, then upgrades to the full delegating
// policy via SetTrust — descending index order, so delegation targets are
// registered before their delegators re-register. After the first round
// one peer's policy changes mid-stream, exercising the incremental
// re-evaluation path under live deferred candidates. With interpreted set,
// every registered policy evaluates through the AST interpreter instead of
// the compiled decision program — the store's candidate pricing resolves
// effective policies from what was registered, so the flag flips the
// evaluator for the whole system.
func runTrustTopologyScenario(t *testing.T, kind workload.TopologyKind, interpreted bool) (map[string][]roundOutcome, map[PeerID][]string) {
	t.Helper()
	ctx := context.Background()
	const n = 8
	tt, err := workload.NewTrustTopology(workload.TopologyConfig{
		Kind: kind, Peers: n, Seed: 11, CliqueSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol := func(text string) *trust.Policy {
		p := trust.MustParse(text)
		if interpreted {
			p.WithInterpreted()
		}
		return p
	}

	schema := MustSchema(NewRelation("F", 2, "organism", "protein", "function"))
	sys, err := NewSystem(schema)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i], err = sys.AddPeer(tt.PeerID(i), pol(tt.DirectPolicy(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := n - 1; i >= 0; i-- {
		if _, err := peers[i].SetTrust(ctx, pol(tt.Policy(i))); err != nil {
			t.Fatalf("set full policy for %s: %v", tt.PeerID(i), err)
		}
	}

	outcomes := make(map[string][]roundOutcome)
	instances := make(map[PeerID][]string)
	for round := 0; round < 3; round++ {
		for i, p := range peers {
			// Same contention pattern as the decision-path differential:
			// round-unique keys shared across peers, colliding under both
			// unequal priorities (accept/reject) and ties (defer).
			mod := 4 - round%2
			key := fmt.Sprintf("prot%d-r%d", i%mod, round)
			val := fmt.Sprintf("v-%d-%d", i, round)
			if _, err := p.Edit(Insert("F", Strs("org", key, val), p.ID())); err != nil {
				t.Fatal(err)
			}
		}
		results, err := sys.ReconcileAll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for id, res := range results {
			outcomes[string(id)] = append(outcomes[string(id)], roundOutcome{
				Accepted: sortedIDs(res.Accepted),
				Rejected: sortedIDs(res.Rejected),
				Deferred: sortedIDs(res.Deferred),
			})
		}
		if round == 0 {
			// Mid-stream mapping change: peer 1 starts vouching for peer 4
			// directly, on top of its topology policy. The store recompiles
			// the affected participants; peer 1's engine re-prices its
			// deferred candidates without replaying history.
			upgraded := tt.Policy(1) + fmt.Sprintf("priority 3 when origin = '%s'\n", tt.PeerID(4))
			if _, err := peers[1].SetTrust(ctx, pol(upgraded)); err != nil {
				t.Fatalf("mid-stream SetTrust: %v", err)
			}
		}
	}
	for _, p := range peers {
		var enc []string
		for _, tuple := range p.Instance().Tuples("F") {
			enc = append(enc, tuple.Encode())
		}
		sort.Strings(enc)
		instances[p.ID()] = enc
	}
	return outcomes, instances
}

// TestTrustTopologyDifferential: across every delegation topology, the
// compiled decision programs and the AST interpreter produce bit-identical
// reconciliation transcripts — per-round accept/reject/defer decisions and
// final instances — including across a mid-stream trust change. Run with
// -race (the tier-1 gate does), this also probes the compiled program's
// concurrent evaluation under ReconcileAll's fan-out.
func TestTrustTopologyDifferential(t *testing.T) {
	var accepts, rejects, defers, foreign int
	for _, kind := range workload.Topologies {
		t.Run(string(kind), func(t *testing.T) {
			refOutcomes, refInstances := runTrustTopologyScenario(t, kind, false)
			outcomes, instances := runTrustTopologyScenario(t, kind, true)
			if !reflect.DeepEqual(outcomes, refOutcomes) {
				t.Errorf("interpreted decisions diverge from compiled:\n got %+v\nwant %+v",
					outcomes, refOutcomes)
			}
			if !reflect.DeepEqual(instances, refInstances) {
				t.Errorf("interpreted instances diverge from compiled:\n got %+v\nwant %+v",
					instances, refInstances)
			}
			for peer, rounds := range refOutcomes {
				for _, o := range rounds {
					accepts += len(o.Accepted)
					rejects += len(o.Rejected)
					defers += len(o.Deferred)
					for _, id := range o.Accepted {
						if string(id.Origin) != peer {
							foreign++
						}
					}
				}
			}
		})
	}
	// The scenarios must exercise every decision kind — and acceptance of
	// foreign-origin transactions, which only delegation can grant (direct
	// policies vouch for the peer's own origin alone).
	if accepts == 0 || rejects == 0 || defers == 0 || foreign == 0 {
		t.Fatalf("vacuous differential: accepts=%d rejects=%d defers=%d foreign-accepts=%d",
			accepts, rejects, defers, foreign)
	}
}
