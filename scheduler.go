package orchestra

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Scheduler drives many groups' reconciliation with bounded global
// concurrency and per-group fairness. Two modes mirror the two System
// drive paths: RunRound/RunRounds runs barrier rounds (each group one
// ReconcileAll), and RunStreaming multiplexes the groups' streaming
// reconcile loops. In both, at most Limit groups are active at once, and
// a rotating start index guarantees no group is persistently served last
// when the fleet is larger than the bound.
type Scheduler struct {
	groups []*Group
	limit  int
	slice  time.Duration

	mu   sync.Mutex
	next int // rotating fairness offset
}

// SchedulerOption configures NewScheduler.
type SchedulerOption func(*Scheduler)

// WithGroupLimit bounds how many groups the scheduler drives at once
// (default GOMAXPROCS).
func WithGroupLimit(n int) SchedulerOption {
	return func(s *Scheduler) {
		if n > 0 {
			s.limit = n
		}
	}
}

// WithStreamSlice sets how long each group streams per turn when the
// group count exceeds the limit and streaming must time-multiplex
// (default 50ms). Shorter slices rotate attention faster at the cost of
// more subscription churn; slicing never loses work — a group's
// reconciliation cursor is durable in its store, so the next turn resumes
// exactly where the last stopped.
func WithStreamSlice(d time.Duration) SchedulerOption {
	return func(s *Scheduler) {
		if d > 0 {
			s.slice = d
		}
	}
}

// NewScheduler builds a scheduler over the given groups (usually
// fleet.Groups()).
func NewScheduler(groups []*Group, opts ...SchedulerOption) *Scheduler {
	s := &Scheduler{
		groups: append([]*Group(nil), groups...),
		limit:  runtime.GOMAXPROCS(0),
		slice:  50 * time.Millisecond,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// GroupError reports one group's failure within a scheduler pass; the
// joined error a pass returns is made of these.
type GroupError struct {
	Group string
	Err   error
}

func (e *GroupError) Error() string {
	return fmt.Sprintf("orchestra: group %s: %v", e.Group, e.Err)
}

func (e *GroupError) Unwrap() error { return e.Err }

// rotate returns the group visit order for one pass: a rotating start
// index, so over successive passes every group takes every queue
// position.
func (s *Scheduler) rotate() []*Group {
	s.mu.Lock()
	start := s.next
	if len(s.groups) > 0 {
		s.next = (s.next + 1) % len(s.groups)
	}
	s.mu.Unlock()
	out := make([]*Group, 0, len(s.groups))
	out = append(out, s.groups[start:]...)
	out = append(out, s.groups[:start]...)
	return out
}

// RunRound runs one reconciliation round: every group's ReconcileAll, at
// most Limit groups concurrently, in rotated order. A group whose round
// fails is reported in the joined error as a *GroupError; the other
// groups complete normally.
func (s *Scheduler) RunRound(ctx context.Context) error {
	order := s.rotate()
	errs := make([]error, len(order))
	sem := make(chan struct{}, s.limit)
	var wg sync.WaitGroup
	for i, g := range order {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, g *Group) {
			defer func() { <-sem; wg.Done() }()
			if _, err := g.sys.ReconcileAll(ctx); err != nil {
				errs[i] = &GroupError{Group: g.id, Err: err}
			}
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunRounds runs n rounds, stopping at the first round with failures (the
// per-group errors join into the return) or when ctx ends.
func (s *Scheduler) RunRounds(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.RunRound(ctx); err != nil {
			return err
		}
	}
	return nil
}

// RunStreaming drives every group's streaming reconcile loop until ctx
// ends. With Limit ≥ group count, all groups stream continuously. With
// more groups than the bound, Limit workers time-multiplex: each worker
// repeatedly takes the next group in rotation and streams it for one
// slice (WithStreamSlice). Slicing preserves correctness — a group's
// publish/reconcile cursor lives in its store, so every slice resumes
// from the durable frontier — and the rotation bounds how long any group
// waits between slices.
//
// Cancelling ctx is the normal shutdown and yields a nil error; permanent
// per-group stream failures are joined into the return as *GroupErrors,
// and their groups sit out the rest of the run while others continue.
func (s *Scheduler) RunStreaming(ctx context.Context) error {
	if len(s.groups) == 0 {
		<-ctx.Done()
		return nil
	}
	if s.limit >= len(s.groups) {
		errs := make([]error, len(s.groups))
		var wg sync.WaitGroup
		for i, g := range s.groups {
			wg.Add(1)
			go func(i int, g *Group) {
				defer wg.Done()
				if err := g.sys.RunStreaming(ctx); err != nil && ctx.Err() == nil {
					errs[i] = &GroupError{Group: g.id, Err: err}
				}
			}(i, g)
		}
		wg.Wait()
		return errors.Join(errs...)
	}

	// Time-multiplexed: limit workers, shared rotation cursor, one slice
	// per turn. A group that failed permanently is skipped thereafter, and
	// a group a worker currently holds is skipped too — without that, a
	// turn that returns before its slice (a group with zero peers returns
	// immediately) lets the cursor wrap and hand the same group to a
	// second worker, driving duplicate per-peer streams concurrently.
	var (
		mu     sync.Mutex
		cursor int
		busy   = make([]bool, len(s.groups))
		failed = make([]bool, len(s.groups))
		errs   = make([]error, len(s.groups))
	)
	// take claims the next group that is neither failed nor held by
	// another worker; alive reports whether any unfailed group remains
	// (busy or not), so workers can tell "wait" from "all groups failed".
	take := func() (i int, g *Group, alive bool) {
		mu.Lock()
		defer mu.Unlock()
		for tries := 0; tries < len(s.groups); tries++ {
			i := cursor
			cursor = (cursor + 1) % len(s.groups)
			if failed[i] {
				continue
			}
			alive = true
			if busy[i] {
				continue
			}
			busy[i] = true
			return i, s.groups[i], true
		}
		return -1, nil, alive
	}
	release := func(i int) {
		mu.Lock()
		busy[i] = false
		mu.Unlock()
	}
	idle := func(d time.Duration) { // ctx-aware sleep
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-t.C:
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < s.limit; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i, g, alive := take()
				if g == nil {
					if !alive {
						return // every group failed
					}
					idle(s.slice) // all live groups held by other workers
					continue
				}
				start := time.Now()
				sctx, cancel := context.WithTimeout(ctx, s.slice)
				err := g.sys.RunStreaming(sctx)
				cancel()
				if err != nil && ctx.Err() == nil {
					mu.Lock()
					failed[i] = true
					errs[i] = &GroupError{Group: g.id, Err: err}
					mu.Unlock()
				}
				release(i)
				// A turn is one slice of attention whether or not the group
				// used it: sleeping out an early return keeps a fleet of
				// empty groups from hot-spinning the rotation.
				if rest := s.slice - time.Since(start); err == nil && rest > 0 {
					idle(rest)
				}
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
