package dht

import (
	"fmt"
	"sort"
	"sync"

	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
)

// Ring manages overlay membership and builds each node's routing state from
// the full membership (see the package comment for why membership is
// centrally managed in this reproduction).
type Ring struct {
	net *simnet.Network

	mu     sync.RWMutex
	byAddr map[string]*Node
	sorted []*Node // by ID
}

// NewRing returns an empty overlay on the fabric.
func NewRing(net *simnet.Network) *Ring {
	return &Ring{net: net, byAddr: make(map[string]*Node)}
}

// Join adds a node at addr with the application handler and rebuilds
// routing state. It returns the node.
func (r *Ring) Join(addr string, app rpc.Handler) (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byAddr[addr]; dup {
		return nil, fmt.Errorf("dht: node %s already joined", addr)
	}
	n := newNode(r.net, addr, app)
	r.byAddr[addr] = n
	r.sorted = append(r.sorted, n)
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].id.Less(r.sorted[j].id) })
	r.rebuildLocked()
	return n, nil
}

// Leave removes a node and rebuilds routing state.
func (r *Ring) Leave(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.byAddr[addr]
	if !ok {
		return
	}
	delete(r.byAddr, addr)
	for i, c := range r.sorted {
		if c == n {
			r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
			break
		}
	}
	r.net.Remove(addr)
	r.rebuildLocked()
}

// Len returns the membership size.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sorted)
}

// Node returns the member at addr.
func (r *Ring) Node(addr string) (*Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.byAddr[addr]
	return n, ok
}

// Nodes returns the members sorted by ID.
func (r *Ring) Nodes() []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Node, len(r.sorted))
	copy(out, r.sorted)
	return out
}

// Owner returns the authoritative owner (successor) of a key; the reference
// against which routing is verified.
func (r *Ring) Owner(key ID) *Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.sorted) == 0 {
		return nil
	}
	i := sort.Search(len(r.sorted), func(i int) bool { return !r.sorted[i].id.Less(key) })
	if i == len(r.sorted) {
		i = 0 // wrap: successor of the largest key is the smallest node
	}
	return r.sorted[i]
}

// OwnerOfString is Owner for a string key.
func (r *Ring) OwnerOfString(key string) *Node { return r.Owner(Key(key)) }

// rebuildLocked recomputes every node's leaf set and routing table.
func (r *Ring) rebuildLocked() {
	n := len(r.sorted)
	if n == 0 {
		return
	}
	for i, node := range r.sorted {
		// Leaf set: LeafSetSize neighbours on each side (the whole ring if
		// small), excluding self.
		var leaf []Entry
		if n-1 <= 2*LeafSetSize {
			for j, other := range r.sorted {
				if j != i {
					leaf = append(leaf, Entry{ID: other.id, Addr: other.addr})
				}
			}
		} else {
			for d := 1; d <= LeafSetSize; d++ {
				pred := r.sorted[((i-d)%n+n)%n]
				succ := r.sorted[(i+d)%n]
				leaf = append(leaf, Entry{ID: pred.id, Addr: pred.addr}, Entry{ID: succ.id, Addr: succ.addr})
			}
		}
		// Routing table: for each (shared prefix length, digit) cell, the
		// member with that prefix relationship nearest the slot's ideal,
		// preferring the closest by ring distance from the node.
		var table [IDDigits][16]*Entry
		for _, other := range r.sorted {
			if other == node {
				continue
			}
			p := SharedPrefix(node.id, other.id)
			if p >= IDDigits {
				continue
			}
			d := other.id.Digit(p)
			cur := table[p][d]
			if cur == nil || distance(node.id, other.id).Less(distance(node.id, cur.ID)) {
				table[p][d] = &Entry{ID: other.id, Addr: other.addr}
			}
		}
		node.setState(leaf, table)
	}
}
