package dht

import (
	"fmt"
	"testing"
)

func groupIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("group-%04d", i)
	}
	return out
}

// Placement must be a pure function of the membership set: insertion order
// cannot matter, and re-running the mapping gives the same answer.
func TestPlacementDeterministic(t *testing.T) {
	groups := groupIDs(500)
	a := NewPlacement(0)
	b := NewPlacement(0)
	for _, m := range []string{"s0", "s1", "s2", "s3"} {
		if err := a.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []string{"s3", "s1", "s0", "s2"} { // different order
		if err := b.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range groups {
		if am, bm := a.Place(g), b.Place(g); am != bm {
			t.Fatalf("placement depends on insertion order: %s → %s vs %s", g, am, bm)
		}
		if first, again := a.Place(g), a.Place(g); first != again {
			t.Fatalf("placement not stable: %s → %s then %s", g, first, again)
		}
	}
	if err := a.AddMember("s0"); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if err := a.RemoveMember("ghost"); err == nil {
		t.Fatal("removing unknown member accepted")
	}
}

// Every member must own a reasonable share of groups (virtual nodes smooth
// the split), and all groups must land on actual members.
func TestPlacementDistribution(t *testing.T) {
	groups := groupIDs(2000)
	p := NewPlacement(0)
	members := []string{"s0", "s1", "s2", "s3", "s4"}
	for _, m := range members {
		if err := p.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[string]int)
	for _, g := range groups {
		counts[p.Place(g)]++
	}
	mean := len(groups) / len(members)
	for _, m := range members {
		if counts[m] == 0 {
			t.Fatalf("member %s owns no groups", m)
		}
		if counts[m] > 3*mean {
			t.Fatalf("member %s owns %d of %d groups (mean %d): distribution too skewed", m, counts[m], len(groups), mean)
		}
	}
}

// Consistent hashing's defining property: growing the fleet only moves
// groups onto the new member (nothing shuffles between survivors), and
// shrinking only moves the removed member's groups.
func TestPlacementMinimalMovement(t *testing.T) {
	groups := groupIDs(2000)
	p := NewPlacement(0)
	for _, m := range []string{"s0", "s1", "s2", "s3"} {
		if err := p.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	before := make(map[string]string, len(groups))
	for _, g := range groups {
		before[g] = p.Place(g)
	}

	// Grow: every moved group must have moved TO the new member.
	if err := p.AddMember("s4"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, g := range groups {
		after := p.Place(g)
		if after != before[g] {
			moved++
			if after != "s4" {
				t.Fatalf("grow moved %s from %s to %s (not the new member)", g, before[g], after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("grow moved nothing: new member owns no groups")
	}
	if moved > len(groups)/2 {
		t.Fatalf("grow moved %d of %d groups: far more than the 1/5 share", moved, len(groups))
	}

	// Shrink back: only s4's groups move, and the mapping returns exactly
	// to the 4-member assignment.
	if err := p.RemoveMember("s4"); err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if got := p.Place(g); got != before[g] {
			t.Fatalf("shrink did not restore %s: %s, want %s", g, got, before[g])
		}
	}
}
