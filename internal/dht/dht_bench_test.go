package dht

import (
	"context"
	"fmt"
	"testing"

	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
)

func benchRing(b *testing.B, n int) *Ring {
	b.Helper()
	net := simnet.NewVirtual(0) // no latency: measure routing work itself
	ring := NewRing(net)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("peer%03d", i)
		app := newKVApp(addr)
		if _, err := ring.Join(addr, app); err != nil {
			b.Fatal(err)
		}
	}
	return ring
}

func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{10, 50} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			ring := benchRing(b, n)
			nodes := ring.Nodes()
			ctx := context.Background()
			body := rpc.MustEncode(kvArgs{K: "k", V: "v"})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := fmt.Sprintf("key-%d", i)
				if _, err := nodes[i%n].RouteString(ctx, k, "kv.put", body); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOwnerLookup(b *testing.B) {
	ring := benchRing(b, 50)
	keys := make([]ID, 1024)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("key-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.Owner(keys[i%len(keys)])
	}
}

func BenchmarkJoinRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := simnet.NewVirtual(0)
		ring := NewRing(net)
		b.StartTimer()
		for j := 0; j < 25; j++ {
			addr := fmt.Sprintf("peer%03d", j)
			if _, err := ring.Join(addr, newKVApp(addr)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
