package dht

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
)

// kvApp is a toy keyed store used to exercise routing: each node stores the
// entries it owns.
type kvApp struct {
	mu   sync.Mutex
	addr string
	data map[string]string
}

func newKVApp(addr string) *kvApp { return &kvApp{addr: addr, data: make(map[string]string)} }

type kvArgs struct{ K, V string }

func (a *kvApp) ServeRPC(_ context.Context, req rpc.Request) ([]byte, error) {
	var args kvArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch req.Method {
	case "kv.put":
		a.data[args.K] = args.V
		return rpc.Encode(a.addr)
	case "kv.get":
		return rpc.Encode(a.data[args.K])
	default:
		return nil, fmt.Errorf("kv: unknown method %s", req.Method)
	}
}

func buildRing(t *testing.T, n int) (*Ring, []*kvApp) {
	t.Helper()
	net := simnet.NewVirtual(simnet.DefaultLatency)
	ring := NewRing(net)
	apps := make([]*kvApp, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("peer%02d", i)
		apps[i] = newKVApp(addr)
		if _, err := ring.Join(addr, apps[i]); err != nil {
			t.Fatal(err)
		}
	}
	return ring, apps
}

func TestIDBasics(t *testing.T) {
	a, b := Key("alpha"), Key("beta")
	if a == b {
		t.Fatal("distinct keys hash equal")
	}
	if a.Less(b) == b.Less(a) {
		t.Error("Less must order distinct IDs")
	}
	if a.String() == "" || len(a.String()) != 40 {
		t.Errorf("String = %q", a.String())
	}
	// Digit coverage.
	var id ID
	id[0] = 0xAB
	if id.Digit(0) != 0xA || id.Digit(1) != 0xB {
		t.Errorf("digits = %x %x", id.Digit(0), id.Digit(1))
	}
	if SharedPrefix(a, a) != IDDigits {
		t.Error("SharedPrefix with self")
	}
	if p := SharedPrefix(a, b); p < 0 || p >= IDDigits {
		t.Errorf("SharedPrefix = %d", p)
	}
}

func TestDistance(t *testing.T) {
	var zero, one, max ID
	one[IDBytes-1] = 1
	for i := range max {
		max[i] = 0xff
	}
	if d := distance(zero, one); d != one {
		t.Errorf("distance(0,1) = %s", d)
	}
	// Wrap: distance from 1 to 0 is 2^160-1.
	if d := distance(one, zero); d != max {
		t.Errorf("distance(1,0) = %s", d)
	}
	if d := distance(one, one); d != zero {
		t.Errorf("distance(x,x) = %s", d)
	}
}

func TestOwnerSuccessorRule(t *testing.T) {
	ring, _ := buildRing(t, 16)
	nodes := ring.Nodes()
	for i := 1; i < len(nodes); i++ {
		if !nodes[i-1].ID().Less(nodes[i].ID()) {
			t.Fatal("nodes not sorted")
		}
	}
	// Brute-force check against the definition for many keys.
	for i := 0; i < 200; i++ {
		key := Key(fmt.Sprintf("key-%d", i))
		owner := ring.Owner(key)
		var best *Node
		bestD := ID{}
		for _, n := range nodes {
			d := distance(key, n.ID())
			if best == nil || d.Less(bestD) {
				best, bestD = n, d
			}
		}
		if owner != best {
			t.Fatalf("key %d: Owner=%s brute=%s", i, owner.Addr(), best.Addr())
		}
	}
}

func TestRoutingReachesOwner(t *testing.T) {
	ring, _ := buildRing(t, 32)
	nodes := ring.Nodes()
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		start := nodes[i%len(nodes)]
		got, err := start.RouteString(ctx, key, "kv.put", rpc.MustEncode(kvArgs{K: key, V: "v"}))
		if err != nil {
			t.Fatalf("route %s: %v", key, err)
		}
		var deliveredAt string
		if err := rpc.Decode(got, &deliveredAt); err != nil {
			t.Fatal(err)
		}
		if want := ring.OwnerOfString(key).Addr(); deliveredAt != want {
			t.Fatalf("key %s delivered at %s, owner %s", key, deliveredAt, want)
		}
	}
}

func TestPutGetAcrossRing(t *testing.T) {
	ring, _ := buildRing(t, 20)
	nodes := ring.Nodes()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		if _, err := nodes[i%20].RouteString(ctx, k, "kv.put", rpc.MustEncode(kvArgs{K: k, V: v})); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k, want := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		resp, err := nodes[(i+7)%20].RouteString(ctx, k, "kv.get", rpc.MustEncode(kvArgs{K: k}))
		if err != nil {
			t.Fatal(err)
		}
		var got string
		rpc.Decode(resp, &got)
		if got != want {
			t.Fatalf("get %s = %q, want %q", k, got, want)
		}
	}
}

func TestHopCountsReasonable(t *testing.T) {
	ring, _ := buildRing(t, 50)
	nodes := ring.Nodes()
	ctx := context.Background()
	var totalForwards int64
	const msgs = 200
	for i := 0; i < msgs; i++ {
		k := fmt.Sprintf("hops-%d", i)
		if _, err := nodes[i%50].RouteString(ctx, k, "kv.put", rpc.MustEncode(kvArgs{K: k, V: ""})); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		totalForwards += n.Forwarded()
	}
	avg := float64(totalForwards) / msgs
	// With 50 nodes, leaf sets of 16 and a prefix table, greedy routing
	// should average well under 3 forwards.
	if avg > 3 {
		t.Errorf("average forwards per message = %.2f", avg)
	}
	var delivered int64
	for _, n := range nodes {
		delivered += n.Delivered()
	}
	if delivered != msgs {
		t.Errorf("delivered = %d, want %d", delivered, msgs)
	}
}

func TestSingleNodeRingOwnsEverything(t *testing.T) {
	ring, apps := buildRing(t, 1)
	node := ring.Nodes()[0]
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("solo-%d", i)
		if _, err := node.RouteString(ctx, k, "kv.put", rpc.MustEncode(kvArgs{K: k, V: "v"})); err != nil {
			t.Fatal(err)
		}
	}
	if len(apps[0].data) != 10 {
		t.Errorf("solo node stored %d keys", len(apps[0].data))
	}
	if node.Forwarded() != 0 {
		t.Errorf("solo node forwarded %d", node.Forwarded())
	}
}

func TestJoinErrorsAndLeave(t *testing.T) {
	ring, _ := buildRing(t, 4)
	if _, err := ring.Join("peer00", newKVApp("peer00")); err == nil {
		t.Error("duplicate join accepted")
	}
	if ring.Len() != 4 {
		t.Errorf("Len = %d", ring.Len())
	}
	if _, ok := ring.Node("peer01"); !ok {
		t.Error("Node lookup failed")
	}
	ring.Leave("peer01")
	if ring.Len() != 3 {
		t.Errorf("Len after leave = %d", ring.Len())
	}
	if _, ok := ring.Node("peer01"); ok {
		t.Error("left node still present")
	}
	ring.Leave("ghost") // no-op
	// Routing still works after a departure.
	nodes := ring.Nodes()
	if _, err := nodes[0].RouteString(context.Background(), "post-leave", "kv.put",
		rpc.MustEncode(kvArgs{K: "post-leave", V: "v"})); err != nil {
		t.Errorf("route after leave: %v", err)
	}
}

func TestDirectCall(t *testing.T) {
	ring, _ := buildRing(t, 5)
	nodes := ring.Nodes()
	resp, err := nodes[0].Call(context.Background(), nodes[3].Addr(), "kv.put",
		rpc.MustEncode(kvArgs{K: "direct", V: "v"}))
	if err != nil {
		t.Fatal(err)
	}
	var at string
	rpc.Decode(resp, &at)
	if at != nodes[3].Addr() {
		t.Errorf("direct call delivered at %s", at)
	}
}

func TestEmptyRingOwner(t *testing.T) {
	ring := NewRing(simnet.NewVirtual(0))
	if ring.Owner(Key("x")) != nil {
		t.Error("empty ring should have no owner")
	}
}
