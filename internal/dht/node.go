package dht

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"orchestra/internal/rpc"
	"orchestra/internal/simnet"
)

// LeafSetSize is the number of neighbours kept on each side of a node.
const LeafSetSize = 8

// routeMethod is the overlay's forwarding RPC method.
const routeMethod = "dht.route"

// maxHops bounds forwarding against routing-state bugs.
const maxHops = 128

// Entry identifies a remote node.
type Entry struct {
	ID   ID
	Addr string
}

// envelope is the routed message.
type envelope struct {
	Key    ID
	Method string
	Body   []byte
	Origin string
	Hops   int
}

// Node is one overlay participant. Its application handler is invoked for
// messages whose key it owns; other messages are forwarded greedily to the
// known node closest (by successor distance) to the key.
type Node struct {
	id   ID
	addr string
	sim  *simnet.Node
	app  rpc.Handler

	mu    sync.RWMutex
	leaf  []Entry // nearest neighbours on both sides, sorted by ID
	table [IDDigits][16]*Entry

	hopsForwarded atomic.Int64
	delivered     atomic.Int64
}

// newNode registers the node on the fabric.
func newNode(net *simnet.Network, addr string, app rpc.Handler) *Node {
	n := &Node{id: NodeID(addr), addr: addr, app: app}
	mux := rpc.NewMux()
	mux.Handle(routeMethod, n.handleRoute)
	n.sim = net.Node(addr, mux)
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() ID { return n.id }

// Addr returns the node's fabric address.
func (n *Node) Addr() string { return n.addr }

// Delivered returns how many messages this node delivered as owner.
func (n *Node) Delivered() int64 { return n.delivered.Load() }

// Forwarded returns how many messages this node forwarded.
func (n *Node) Forwarded() int64 { return n.hopsForwarded.Load() }

// setState installs the routing state computed by the Ring builder.
func (n *Node) setState(leaf []Entry, table [IDDigits][16]*Entry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.leaf = leaf
	n.table = table
}

// nextHop returns the known node closest to owning key, or nil if this node
// is the closest known (and therefore the owner, given exact leaf sets).
func (n *Node) nextHop(key ID) *Entry {
	n.mu.RLock()
	defer n.mu.RUnlock()
	best := (*Entry)(nil)
	bestDist := distance(key, n.id)
	consider := func(e *Entry) {
		if e == nil {
			return
		}
		d := distance(key, e.ID)
		if d.Less(bestDist) {
			best, bestDist = e, d
		}
	}
	for i := range n.leaf {
		consider(&n.leaf[i])
	}
	// Prefix-table entries provide the long hops; the row to inspect is
	// the one matching the shared prefix with the key, but considering all
	// rows is equally correct and the tables are small.
	row := SharedPrefix(n.id, key)
	if row < IDDigits {
		for c := 0; c < 16; c++ {
			consider(n.table[row][c])
		}
	}
	return best
}

// handleRoute is the overlay forwarding handler.
func (n *Node) handleRoute(ctx context.Context, req rpc.Request) ([]byte, error) {
	var env envelope
	if err := rpc.Decode(req.Body, &env); err != nil {
		return nil, err
	}
	return n.route(ctx, env)
}

// route delivers or forwards the envelope.
func (n *Node) route(ctx context.Context, env envelope) ([]byte, error) {
	if env.Hops > maxHops {
		return nil, fmt.Errorf("dht: routing loop for key %s", env.Key)
	}
	next := n.nextHop(env.Key)
	if next == nil {
		n.delivered.Add(1)
		return n.app.ServeRPC(ctx, rpc.Request{From: env.Origin, Method: env.Method, Body: env.Body})
	}
	n.hopsForwarded.Add(1)
	env.Hops++
	body, err := rpc.Encode(&env)
	if err != nil {
		return nil, err
	}
	return n.sim.Call(ctx, next.Addr, routeMethod, body)
}

// Route sends a message keyed by key to its owner, starting at this node,
// and returns the owner's application response.
func (n *Node) Route(ctx context.Context, key ID, method string, body []byte) ([]byte, error) {
	return n.route(ctx, envelope{Key: key, Method: method, Body: body, Origin: n.addr})
}

// RouteString is Route with a string key.
func (n *Node) RouteString(ctx context.Context, key, method string, body []byte) ([]byte, error) {
	return n.Route(ctx, Key(key), method, body)
}

// Call performs a direct (non-routed) call to another node's application
// handler — used when the caller already knows the responsible node, e.g.
// a transaction controller replying with antecedent locations.
func (n *Node) Call(ctx context.Context, to, method string, body []byte) ([]byte, error) {
	env := envelope{Key: NodeID(to), Method: method, Body: body, Origin: n.addr}
	b, err := rpc.Encode(&env)
	if err != nil {
		return nil, err
	}
	return n.sim.Call(ctx, to, routeMethod, b)
}
