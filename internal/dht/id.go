// Package dht implements a Pastry-style structured overlay: 160-bit SHA-1
// identifiers, per-node leaf sets and prefix routing tables, and greedy
// key-based routing to the key's owner (its successor on the identifier
// ring). It stands in for FreePastry, which the paper's distributed update
// store is built on (§5.2.2).
//
// Membership is managed by a Ring builder with global knowledge: the paper
// explicitly assumes successful message delivery and defers fault tolerance
// to future work, so nodes join through the builder and tables are rebuilt
// from the full membership rather than by gossip. Message-level behaviour —
// hop-by-hop forwarding with per-message latency and traffic accounting —
// is preserved, which is what the evaluation measures.
package dht

import (
	"crypto/sha1"
	"encoding/hex"
)

// IDBytes is the identifier width in bytes (160 bits, as in Pastry).
const IDBytes = 20

// IDDigits is the number of hexadecimal digits in an ID; routing tables
// have one row per digit.
const IDDigits = 2 * IDBytes

// ID is a 160-bit identifier for nodes and keys.
type ID [IDBytes]byte

// Key hashes an application key string to its identifier.
func Key(s string) ID { return sha1.Sum([]byte(s)) }

// NodeID hashes a node address to its identifier.
func NodeID(addr string) ID { return sha1.Sum([]byte("node:" + addr)) }

// String renders the ID as hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Less orders IDs numerically (big-endian).
func (id ID) Less(other ID) bool {
	for i := 0; i < IDBytes; i++ {
		if id[i] != other[i] {
			return id[i] < other[i]
		}
	}
	return false
}

// Digit returns the i-th hexadecimal digit (0 = most significant).
func (id ID) Digit(i int) int {
	b := id[i/2]
	if i%2 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0f)
}

// SharedPrefix returns the number of leading hexadecimal digits the two IDs
// share.
func SharedPrefix(a, b ID) int {
	for i := 0; i < IDDigits; i++ {
		if a.Digit(i) != b.Digit(i) {
			return i
		}
	}
	return IDDigits
}

// distance returns (to - from) mod 2^160: the clockwise walk from `from` to
// `to` on the identifier ring. The owner of a key k is the node minimizing
// distance(k, node) — k's successor.
func distance(from, to ID) ID {
	var out ID
	borrow := 0
	for i := IDBytes - 1; i >= 0; i-- {
		d := int(to[i]) - int(from[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}
