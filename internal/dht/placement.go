package dht

import (
	"fmt"
	"sort"
)

// This file promotes the overlay's consistent-hash ring from routing
// experiment to placement layer: a Placement maps group identifiers to
// fleet members (store nodes) with no networking attached. It reuses the
// ring's ownership rule — a key belongs to its successor on the 160-bit
// identifier circle — and adds virtual nodes so small fleets still spread
// load evenly.
//
// Determinism is the contract: the same member set always produces the
// same group → member mapping, regardless of the order members were added,
// so every process that knows the membership agrees on placement without
// coordination. Minimal movement is the consistent-hash guarantee: adding
// a member only claims keys from its ring neighbours, removing one only
// reassigns the keys it owned.

// DefaultVirtualNodes is the number of ring points each member projects.
// More points smooth the load distribution at the cost of a larger sorted
// ring; 64 keeps the worst member within a small factor of the mean for
// fleets of a few to a few hundred stores.
const DefaultVirtualNodes = 64

// Placement is a consistent-hash map from group IDs to member names. It is
// not safe for concurrent mutation; guard it with the fleet's lock.
type Placement struct {
	vnodes  int
	members map[string]bool
	// points is the sorted ring: every member's virtual-node IDs.
	points []placePoint
}

type placePoint struct {
	id     ID
	member string
}

// NewPlacement returns an empty placement ring. vnodes <= 0 uses
// DefaultVirtualNodes.
func NewPlacement(vnodes int) *Placement {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Placement{vnodes: vnodes, members: make(map[string]bool)}
}

// AddMember projects the member's virtual nodes onto the ring. Adding an
// existing member is an error — membership changes must be explicit, since
// each one triggers a rebalance.
func (p *Placement) AddMember(name string) error {
	if name == "" {
		return fmt.Errorf("dht: empty placement member name")
	}
	if p.members[name] {
		return fmt.Errorf("dht: placement member %s already present", name)
	}
	p.members[name] = true
	for v := 0; v < p.vnodes; v++ {
		p.points = append(p.points, placePoint{
			id:     Key(fmt.Sprintf("placement:%s#%d", name, v)),
			member: name,
		})
	}
	p.sortPoints()
	return nil
}

// RemoveMember withdraws the member's virtual nodes; its keys fall to their
// ring successors.
func (p *Placement) RemoveMember(name string) error {
	if !p.members[name] {
		return fmt.Errorf("dht: placement member %s not present", name)
	}
	delete(p.members, name)
	kept := p.points[:0]
	for _, pt := range p.points {
		if pt.member != name {
			kept = append(kept, pt)
		}
	}
	p.points = kept
	return nil
}

// sortPoints restores ring order; ties (two members hashing to one point,
// astronomically unlikely) break by member name so the mapping stays
// deterministic regardless of insertion order.
func (p *Placement) sortPoints() {
	sort.Slice(p.points, func(i, j int) bool {
		if p.points[i].id != p.points[j].id {
			return p.points[i].id.Less(p.points[j].id)
		}
		return p.points[i].member < p.points[j].member
	})
}

// Members returns the current membership, sorted.
func (p *Placement) Members() []string {
	out := make([]string, 0, len(p.members))
	for m := range p.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of members.
func (p *Placement) Size() int { return len(p.members) }

// Place returns the member owning the group: the successor of the group's
// key on the ring (wrapping past the highest point to the lowest). It
// panics on an empty ring — a fleet always has at least one store.
func (p *Placement) Place(group string) string {
	if len(p.points) == 0 {
		panic("dht: placement ring has no members")
	}
	k := Key("group:" + group)
	i := sort.Search(len(p.points), func(i int) bool { return !p.points[i].id.Less(k) })
	if i == len(p.points) {
		i = 0
	}
	return p.points[i].member
}
