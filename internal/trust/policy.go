package trust

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"orchestra/internal/core"
)

// Rule is one acceptance rule (θ, v): a compiled predicate and the integer
// priority assigned to updates satisfying it.
type Rule struct {
	Priority  int
	Predicate string
	expr      expr
}

// Delegation is one trust delegation: "trust whatever Peer accepts, at
// priority capped at Cap". Delegations are inert on a standalone Policy —
// resolving them needs the other participants' policies, which is the
// Graph's job (graph.go); stores resolve registered policies through a
// Graph automatically.
type Delegation struct {
	Peer core.PeerID
	Cap  int
}

// Policy is a participant's ordered set of acceptance rules plus its trust
// delegations. It implements core.Trust: the priority of an update is the
// maximum priority among matching rules, or 0 (untrusted) if none match.
// The zero Policy trusts nothing.
//
// Rules are compiled into a flat decision program (program.go) lazily on
// first evaluation and recompiled after mutation; WithInterpreted keeps
// the AST-walking interpreter as an escape hatch. A compiled Policy is
// safe for concurrent evaluation, but mutation (Add, AddDelegation,
// WithSchema) must not race with evaluation. Policies must not be copied
// after first use.
type Policy struct {
	rules  []Rule
	delegs []Delegation
	schema *core.Schema
	// dyn carries delegated non-textual trust sources; only resolved
	// policies built by Graph.Effective have them.
	dyn []dynSource
	// interpret disables the compiled program (WithInterpreted).
	interpret bool
	// prog caches the compiled program; nil after any mutation. Racing
	// recompiles are harmless: compilation is deterministic.
	prog atomic.Pointer[program]
}

// NewPolicy returns an empty policy. Bind a schema with WithSchema to
// resolve attribute names in predicates.
func NewPolicy() *Policy { return &Policy{} }

// WithSchema returns the policy with the schema used for attr('name')
// resolution. The receiver is returned for chaining.
func (p *Policy) WithSchema(s *core.Schema) *Policy {
	p.schema = s
	p.prog.Store(nil)
	return p
}

// Schema returns the schema bound by WithSchema, nil if none.
func (p *Policy) Schema() *core.Schema { return p.schema }

// WithInterpreted returns the policy evaluating through the AST
// interpreter instead of the compiled decision program — the escape hatch
// (and the reference implementation the compiled-vs-interpreted
// differential tests compare against).
func (p *Policy) WithInterpreted() *Policy {
	p.interpret = true
	return p
}

// Interpreted reports whether the policy evaluates through the
// interpreter.
func (p *Policy) Interpreted() bool { return p.interpret }

// Add compiles and appends a rule. Priorities must be positive: priority 0
// is the implicit "untrusted" default. A rule identical to one already
// present (same priority, same predicate text) is dropped: duplicates
// cannot change the max-of-matching semantics and would only inflate
// every evaluation.
func (p *Policy) Add(priority int, predicate string) error {
	if priority <= 0 {
		return fmt.Errorf("trust: rule priority must be positive, got %d", priority)
	}
	e, err := compile(predicate)
	if err != nil {
		return err
	}
	for i := range p.rules {
		if p.rules[i].Priority == priority && p.rules[i].Predicate == predicate {
			return nil
		}
	}
	p.rules = append(p.rules, Rule{Priority: priority, Predicate: predicate, expr: e})
	p.prog.Store(nil)
	return nil
}

// MustAdd is Add that panics on error, for literals in tests and examples.
func (p *Policy) MustAdd(priority int, predicate string) *Policy {
	if err := p.Add(priority, predicate); err != nil {
		panic(err)
	}
	return p
}

// AddDelegation appends a delegation. The cap must be positive; a second
// delegation to the same peer keeps the higher cap (a wider delegation
// subsumes a narrower one).
func (p *Policy) AddDelegation(peer core.PeerID, cap int) error {
	if cap <= 0 {
		return fmt.Errorf("trust: delegation priority must be positive, got %d", cap)
	}
	if peer == "" {
		return fmt.Errorf("trust: delegation needs a peer name")
	}
	for i := range p.delegs {
		if p.delegs[i].Peer == peer {
			if cap > p.delegs[i].Cap {
				p.delegs[i].Cap = cap
			}
			return nil
		}
	}
	p.delegs = append(p.delegs, Delegation{Peer: peer, Cap: cap})
	return nil
}

// MustDelegate is AddDelegation that panics on error.
func (p *Policy) MustDelegate(peer core.PeerID, cap int) *Policy {
	if err := p.AddDelegation(peer, cap); err != nil {
		panic(err)
	}
	return p
}

// Rules returns a copy of the rules, for display.
func (p *Policy) Rules() []Rule {
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// Delegations returns a copy of the delegations.
func (p *Policy) Delegations() []Delegation {
	out := make([]Delegation, len(p.delegs))
	copy(out, p.delegs)
	return out
}

// Len returns the number of rules.
func (p *Policy) Len() int { return len(p.rules) }

// compiled returns the policy's decision program, compiling on first use.
func (p *Policy) compiled() *program {
	if pr := p.prog.Load(); pr != nil {
		return pr
	}
	pr := compileProgram(p.rules, p.dyn, p.schema)
	p.prog.Store(pr)
	return pr
}

// Priority implements core.Trust. Delegations are not evaluated here —
// see Delegation and Graph.
func (p *Policy) Priority(u core.Update) int {
	if p.interpret {
		return p.interpretPriority(u)
	}
	return p.compiled().priority(u)
}

// interpretPriority is the reference evaluator: walk every rule's AST.
func (p *Policy) interpretPriority(u core.Update) int {
	best := 0
	ctx := &evalCtx{u: u, schema: p.schema}
	for i := range p.rules {
		r := &p.rules[i]
		if r.Priority <= best {
			continue
		}
		if r.expr.eval(ctx).truthy() {
			best = r.Priority
		}
	}
	for i := range p.dyn {
		d := &p.dyn[i]
		if d.cap <= best {
			continue
		}
		if v := d.t.Priority(u); v > 0 {
			if v > d.cap {
				v = d.cap
			}
			if v > best {
				best = v
			}
		}
	}
	return best
}

// OriginOnly implements core.OriginTrust: it reports whether every
// decision depends only on the update's origin, the validity condition
// for the engine- and store-side author-set priority caches. The analysis
// runs on the compiled program regardless of evaluation mode — caching
// memoizes identical results either way.
func (p *Policy) OriginOnly() bool { return p.compiled().originOnly }

// String renders the policy in the textual rule format accepted by Parse:
// rules first, then delegations.
func (p *Policy) String() string {
	var b strings.Builder
	for _, r := range p.rules {
		fmt.Fprintf(&b, "priority %d when %s\n", r.Priority, r.Predicate)
	}
	for _, d := range p.delegs {
		fmt.Fprintf(&b, "delegate '%s' priority %d\n", strings.ReplaceAll(string(d.Peer), "'", "''"), d.Cap)
	}
	return b.String()
}

// Parse reads a policy in textual form: one rule or delegation per line,
//
//	priority <n> when <predicate>
//	delegate <peer> priority <n>
//
// The delegated peer may be a bare identifier or a quoted string (a
// doubled single quote escapes a quote). Blank lines and lines starting
// with '#' or '--' are ignored.
func Parse(text string) (*Policy, error) {
	p := NewPolicy()
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		if rest, ok := cutKeyword(line, "delegate"); ok {
			if err := parseDelegation(p, rest); err != nil {
				return nil, fmt.Errorf("trust: line %d: %w", lineno, err)
			}
			continue
		}
		rest, ok := cutKeyword(line, "priority")
		if !ok {
			return nil, fmt.Errorf("trust: line %d: expected 'priority <n> when <predicate>' or 'delegate <peer> priority <n>'", lineno)
		}
		rest = strings.TrimSpace(rest)
		sp := strings.IndexFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' })
		if sp < 0 {
			return nil, fmt.Errorf("trust: line %d: missing predicate", lineno)
		}
		n, err := strconv.Atoi(rest[:sp])
		if err != nil {
			return nil, fmt.Errorf("trust: line %d: bad priority %q", lineno, rest[:sp])
		}
		pred, ok := cutKeyword(strings.TrimSpace(rest[sp:]), "when")
		if !ok {
			return nil, fmt.Errorf("trust: line %d: expected 'when' after priority", lineno)
		}
		if err := p.Add(n, strings.TrimSpace(pred)); err != nil {
			return nil, fmt.Errorf("trust: line %d: %w", lineno, err)
		}
	}
	return p, sc.Err()
}

// parseDelegation parses the remainder of a `delegate <peer> priority <n>`
// line (everything after the keyword).
func parseDelegation(p *Policy, rest string) error {
	lx := &lexer{src: strings.TrimSpace(rest)}
	peerTok, err := lx.next()
	if err != nil {
		return err
	}
	var peer core.PeerID
	switch peerTok.kind {
	case tokString, tokIdent:
		peer = core.PeerID(peerTok.text)
	default:
		return fmt.Errorf("delegate needs a peer name, found %s", peerTok.kind)
	}
	kw, err := lx.next()
	if err != nil {
		return err
	}
	if kw.kind != tokIdent || lower(kw.text) != "priority" {
		return fmt.Errorf("expected 'priority <n>' after the delegated peer")
	}
	numTok, err := lx.next()
	if err != nil {
		return err
	}
	if numTok.kind != tokNumber {
		return fmt.Errorf("expected a delegation priority, found %s %q", numTok.kind, numTok.text)
	}
	n, err := strconv.Atoi(numTok.text)
	if err != nil {
		return fmt.Errorf("bad delegation priority %q", numTok.text)
	}
	if trailing, err := lx.next(); err != nil {
		return err
	} else if trailing.kind != tokEOF {
		return fmt.Errorf("unexpected trailing input %q", trailing.text)
	}
	return p.AddDelegation(peer, n)
}

// MustParse is Parse that panics on error.
func MustParse(text string) *Policy {
	p, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return p
}

// cutKeyword strips a leading case-insensitive keyword followed by a word
// boundary, returning the remainder.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return "", false
	}
	rest := s[len(kw):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return "", false
	}
	return rest, true
}
