package trust

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"orchestra/internal/core"
)

// Rule is one acceptance rule (θ, v): a compiled predicate and the integer
// priority assigned to updates satisfying it.
type Rule struct {
	Priority  int
	Predicate string
	expr      expr
}

// Policy is a participant's ordered set of acceptance rules. It implements
// core.Trust: the priority of an update is the maximum priority among
// matching rules, or 0 (untrusted) if none match. The zero Policy trusts
// nothing.
type Policy struct {
	rules  []Rule
	schema *core.Schema
}

// NewPolicy returns an empty policy. Bind a schema with WithSchema to
// resolve attribute names in predicates.
func NewPolicy() *Policy { return &Policy{} }

// WithSchema returns the policy with the schema used for attr('name')
// resolution. The receiver is returned for chaining.
func (p *Policy) WithSchema(s *core.Schema) *Policy {
	p.schema = s
	return p
}

// Add compiles and appends a rule. Priorities must be positive: priority 0
// is the implicit "untrusted" default.
func (p *Policy) Add(priority int, predicate string) error {
	if priority <= 0 {
		return fmt.Errorf("trust: rule priority must be positive, got %d", priority)
	}
	e, err := compile(predicate)
	if err != nil {
		return err
	}
	p.rules = append(p.rules, Rule{Priority: priority, Predicate: predicate, expr: e})
	return nil
}

// MustAdd is Add that panics on error, for literals in tests and examples.
func (p *Policy) MustAdd(priority int, predicate string) *Policy {
	if err := p.Add(priority, predicate); err != nil {
		panic(err)
	}
	return p
}

// Rules returns a copy of the rules, for display.
func (p *Policy) Rules() []Rule {
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// Len returns the number of rules.
func (p *Policy) Len() int { return len(p.rules) }

// Priority implements core.Trust.
func (p *Policy) Priority(u core.Update) int {
	best := 0
	ctx := &evalCtx{u: u, schema: p.schema}
	for i := range p.rules {
		r := &p.rules[i]
		if r.Priority <= best {
			continue
		}
		if r.expr.eval(ctx).truthy() {
			best = r.Priority
		}
	}
	return best
}

// String renders the policy in the textual rule format accepted by Parse.
func (p *Policy) String() string {
	var b strings.Builder
	for _, r := range p.rules {
		fmt.Fprintf(&b, "priority %d when %s\n", r.Priority, r.Predicate)
	}
	return b.String()
}

// Parse reads a policy in textual form: one rule per line,
//
//	priority <n> when <predicate>
//
// Blank lines and lines starting with '#' or '--' are ignored.
func Parse(text string) (*Policy, error) {
	p := NewPolicy()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		rest, ok := cutKeyword(line, "priority")
		if !ok {
			return nil, fmt.Errorf("trust: line %d: expected 'priority <n> when <predicate>'", lineno)
		}
		rest = strings.TrimSpace(rest)
		sp := strings.IndexFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' })
		if sp < 0 {
			return nil, fmt.Errorf("trust: line %d: missing predicate", lineno)
		}
		n, err := strconv.Atoi(rest[:sp])
		if err != nil {
			return nil, fmt.Errorf("trust: line %d: bad priority %q", lineno, rest[:sp])
		}
		pred, ok := cutKeyword(strings.TrimSpace(rest[sp:]), "when")
		if !ok {
			return nil, fmt.Errorf("trust: line %d: expected 'when' after priority", lineno)
		}
		if err := p.Add(n, strings.TrimSpace(pred)); err != nil {
			return nil, fmt.Errorf("trust: line %d: %w", lineno, err)
		}
	}
	return p, sc.Err()
}

// MustParse is Parse that panics on error.
func MustParse(text string) *Policy {
	p, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return p
}

// cutKeyword strips a leading case-insensitive keyword followed by a word
// boundary, returning the remainder.
func cutKeyword(s, kw string) (string, bool) {
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return "", false
	}
	rest := s[len(kw):]
	if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
		return "", false
	}
	return rest, true
}
