package trust

import (
	"sync"

	"orchestra/internal/core"
)

// program is the compiled form of a policy's rule list: a flat decision
// program evaluated without touching the AST. Compilation (compile.go)
// performs the classic lowering passes —
//
//   - origin dispatch: rules of the shape `origin = 'x'` or
//     `origin in (...)` collapse into a single map lookup;
//   - constant folding: leaf-free subtrees are evaluated at compile time,
//     always-true rules become a constant floor, never-true rules vanish;
//   - priority scheduling: the surviving general rules are sorted by
//     priority descending, so evaluation stops at the first match (the
//     first match IS the maximum) and skips the tail once the running
//     best dominates it;
//   - leaf hoisting: every distinct update access (origin, rel, op,
//     attr(...)) is value-numbered into a shared leaf table and extracted
//     at most once per update, however many rules mention it;
//   - attribute resolution: attr('name') lookups are resolved against the
//     bound schema once at compile time into a relation→index table,
//     replacing the per-eval Relation()/AttrIndex walk.
//
// A program is immutable after compilation and safe for concurrent use;
// per-evaluation scratch comes from a sync.Pool.
type program struct {
	// constPrio is the floor priority from always-true rules (0 if none).
	constPrio int
	// originPrio dispatches origin-only equality/in rules: the maximum
	// rule priority per origin.
	originPrio map[core.PeerID]int
	// rules are the remaining general rules, sorted by priority descending.
	rules []compiledRule
	// dyn are delegated non-textual trust sources, each contributing
	// min(cap, source priority) when the source trusts the update; sorted
	// by cap descending so a dominated tail is skipped.
	dyn []dynSource
	// leaves is the shared value-numbered leaf table.
	leaves []leaf
	// lits, inSets, patterns are the constant tables referenced by opcode
	// operands.
	lits     []val
	inSets   [][]val
	patterns []string

	// originOnly reports that every decision depends only on u.Origin —
	// the validity condition for core's author-set priority cache.
	originOnly bool
	// maxStack is the deepest operand stack any rule needs.
	maxStack int

	pool sync.Pool // *scratch
}

// compiledRule is one general rule: a postfix instruction sequence over
// the program's leaf and constant tables.
type compiledRule struct {
	prio int
	code []instr
}

// dynSource is a delegated trust source that could not be inlined as
// rules (a non-textual core.Trust): it contributes min(cap, priority).
type dynSource struct {
	t   core.Trust
	cap int
}

type opcode uint8

const (
	opLeaf opcode = iota // push leaves[a]
	opLit                // push lits[a]
	opEq                 // pop b, a; push a = b
	opNe                 // pop b, a; push a != b
	opLt                 // pop b, a; push a < b
	opLe                 // pop b, a; push a <= b
	opGt                 // pop b, a; push a > b
	opGe                 // pop b, a; push a >= b
	opIn                 // pop a; push a in inSets[n]
	opLike               // pop a; push a like patterns[n]
	opNot                // pop a; push not a
	opAnd                // pop b, a; push a and b
	opOr                 // pop b, a; push a or b
)

type instr struct {
	op opcode
	a  int32
}

// leafKind selects which part of the update a leaf extracts.
type leafKind uint8

const (
	leafOrigin leafKind = iota
	leafRel
	leafOp
	leafAttr
)

// leaf is one hoisted update access. Attribute leaves carry the
// compile-time resolved relation→index table (nil when no schema was
// bound, matching the interpreter's null result).
type leaf struct {
	kind    leafKind
	replace bool // newattr
	byName  bool
	name    string
	idx     int
	relIdx  map[string]int
}

// eval extracts the leaf's value from the update. Semantics mirror the
// AST nodes (fieldExpr, attrExpr) exactly: the differential tests assert
// bit-identical priorities against the interpreter.
func (lf *leaf) eval(u core.Update) val {
	switch lf.kind {
	case leafOrigin:
		return strVal(string(u.Origin))
	case leafRel:
		return strVal(u.Rel)
	case leafOp:
		switch u.Op {
		case core.OpInsert:
			return strVal("insert")
		case core.OpDelete:
			return strVal("delete")
		case core.OpModify:
			return strVal("modify")
		}
		return nullVal
	default:
		t := u.Tuple
		if lf.replace && u.New != nil {
			t = u.New
		}
		idx := lf.idx
		if lf.byName {
			i, ok := lf.relIdx[u.Rel]
			if !ok {
				return nullVal
			}
			idx = i
		}
		if idx < 0 || idx >= len(t) {
			return nullVal
		}
		return coreValueToVal(t[idx])
	}
}

// scratch is the reusable per-evaluation state: the operand stack and the
// leaf value cache. Leaf slots are invalidated by generation counter
// instead of clearing.
type scratch struct {
	stack    []val
	leafVals []val
	leafGen  []uint32
	gen      uint32
}

func (pr *program) getScratch() *scratch {
	sc, _ := pr.pool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{
			stack:    make([]val, 0, pr.maxStack),
			leafVals: make([]val, len(pr.leaves)),
			leafGen:  make([]uint32, len(pr.leaves)),
		}
	}
	sc.gen++
	if sc.gen == 0 { // wrapped: stale gens could collide, reset
		for i := range sc.leafGen {
			sc.leafGen[i] = 0
		}
		sc.gen = 1
	}
	return sc
}

// priority evaluates the program against one update: the compiled
// equivalent of the interpreter's max-of-matching-rules walk.
func (pr *program) priority(u core.Update) int {
	best := pr.constPrio
	if len(pr.originPrio) > 0 {
		if p, ok := pr.originPrio[u.Origin]; ok && p > best {
			best = p
		}
	}
	if len(pr.rules) > 0 && pr.rules[0].prio > best {
		sc := pr.getScratch()
		for i := range pr.rules {
			r := &pr.rules[i]
			if r.prio <= best {
				break // sorted descending: nothing below can raise best
			}
			if pr.evalRule(r, sc, u) {
				best = r.prio // first match is the max of the remainder
				break
			}
		}
		pr.pool.Put(sc)
	}
	for i := range pr.dyn {
		d := &pr.dyn[i]
		if d.cap <= best {
			break // sorted descending: min(cap, ·) cannot raise best
		}
		if p := d.t.Priority(u); p > 0 {
			if p > d.cap {
				p = d.cap
			}
			if p > best {
				best = p
			}
		}
	}
	return best
}

// evalRule runs one rule's postfix code. The language is pure, so eager
// evaluation of and/or is observably identical to the interpreter's
// short-circuit.
func (pr *program) evalRule(r *compiledRule, sc *scratch, u core.Update) bool {
	st := sc.stack[:0]
	for _, in := range r.code {
		switch in.op {
		case opLeaf:
			li := in.a
			if sc.leafGen[li] != sc.gen {
				sc.leafVals[li] = pr.leaves[li].eval(u)
				sc.leafGen[li] = sc.gen
			}
			st = append(st, sc.leafVals[li])
		case opLit:
			st = append(st, pr.lits[in.a])
		case opNot:
			st[len(st)-1] = boolVal(!st[len(st)-1].truthy())
		case opIn:
			v := st[len(st)-1]
			res := falseVal
			for _, o := range pr.inSets[in.a] {
				if equalVal(v, o) {
					res = trueVal
					break
				}
			}
			st[len(st)-1] = res
		case opLike:
			v := st[len(st)-1]
			st[len(st)-1] = boolVal(v.kind == 's' && likeMatch(pr.patterns[in.a], v.s))
		case opAnd:
			b := st[len(st)-2].truthy() && st[len(st)-1].truthy()
			st = st[:len(st)-1]
			st[len(st)-1] = boolVal(b)
		case opOr:
			b := st[len(st)-2].truthy() || st[len(st)-1].truthy()
			st = st[:len(st)-1]
			st[len(st)-1] = boolVal(b)
		default: // comparisons
			lv, rv := st[len(st)-2], st[len(st)-1]
			st = st[:len(st)-1]
			var b bool
			switch in.op {
			case opEq:
				b = equalVal(lv, rv)
			case opNe:
				b = !equalVal(lv, rv)
			default:
				if cmp, ok := compareVal(lv, rv); ok {
					switch in.op {
					case opLt:
						b = cmp < 0
					case opLe:
						b = cmp <= 0
					case opGt:
						b = cmp > 0
					case opGe:
						b = cmp >= 0
					}
				}
			}
			st[len(st)-1] = boolVal(b)
		}
	}
	res := st[len(st)-1].truthy()
	sc.stack = st[:0]
	return res
}
