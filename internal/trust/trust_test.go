package trust

import (
	"strings"
	"testing"

	"orchestra/internal/core"
)

func schema(t *testing.T) *core.Schema {
	t.Helper()
	return core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
}

func ins(origin, org, prot, fn string) core.Update {
	return core.Insert("F", core.Strs(org, prot, fn), core.PeerID(origin))
}

func TestPolicyOriginEquality(t *testing.T) {
	p := NewPolicy()
	if err := p.Add(2, "origin = 'p1'"); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(1, "origin = 'p2'"); err != nil {
		t.Fatal(err)
	}
	if got := p.Priority(ins("p1", "rat", "x", "y")); got != 2 {
		t.Errorf("p1 priority = %d", got)
	}
	if got := p.Priority(ins("p2", "rat", "x", "y")); got != 1 {
		t.Errorf("p2 priority = %d", got)
	}
	if got := p.Priority(ins("p9", "rat", "x", "y")); got != 0 {
		t.Errorf("unlisted priority = %d", got)
	}
	if p.Len() != 2 || len(p.Rules()) != 2 {
		t.Error("rule accounting broken")
	}
}

func TestPolicyMaxWins(t *testing.T) {
	p := NewPolicy()
	p.MustAdd(1, "true")
	p.MustAdd(5, "origin = 'vip'")
	if got := p.Priority(ins("vip", "a", "b", "c")); got != 5 {
		t.Errorf("priority = %d, want max 5", got)
	}
	if got := p.Priority(ins("anon", "a", "b", "c")); got != 1 {
		t.Errorf("priority = %d, want 1", got)
	}
}

func TestPolicyAttrByNameAndIndex(t *testing.T) {
	p := NewPolicy().WithSchema(schema(t))
	p.MustAdd(3, "attr('organism') = 'rat' and attr('function') like 'immune%'")
	p.MustAdd(1, "attr(0) = 'mouse'")
	if got := p.Priority(ins("x", "rat", "p1", "immune-response")); got != 3 {
		t.Errorf("rat immune priority = %d", got)
	}
	if got := p.Priority(ins("x", "rat", "p1", "metabolism")); got != 0 {
		t.Errorf("rat other priority = %d", got)
	}
	if got := p.Priority(ins("x", "mouse", "p1", "metabolism")); got != 1 {
		t.Errorf("mouse priority = %d", got)
	}
}

func TestPolicyAttrNameWithoutSchema(t *testing.T) {
	p := NewPolicy() // no schema bound
	p.MustAdd(1, "attr('organism') = 'rat'")
	if got := p.Priority(ins("x", "rat", "p1", "f")); got != 0 {
		t.Errorf("priority without schema = %d, want 0 (name unresolvable)", got)
	}
}

func TestPolicyOpAndNewattr(t *testing.T) {
	p := NewPolicy().WithSchema(schema(t))
	p.MustAdd(2, "op = 'modify' and newattr('function') = 'immune'")
	p.MustAdd(1, "op in ('insert', 'delete')")
	mod := core.Modify("F", core.Strs("rat", "p1", "old"), core.Strs("rat", "p1", "immune"), "x")
	if got := p.Priority(mod); got != 2 {
		t.Errorf("modify priority = %d", got)
	}
	del := core.Delete("F", core.Strs("rat", "p1", "old"), "x")
	if got := p.Priority(del); got != 1 {
		t.Errorf("delete priority = %d", got)
	}
	// newattr on a non-modify falls back to the current tuple.
	p2 := NewPolicy().WithSchema(schema(t))
	p2.MustAdd(1, "newattr('function') = 'f'")
	if got := p2.Priority(ins("x", "rat", "p1", "f")); got != 1 {
		t.Errorf("newattr fallback priority = %d", got)
	}
}

func TestExpressionOperators(t *testing.T) {
	s := schema(t)
	u := ins("p1", "rat", "prot", "fn")
	cases := []struct {
		src  string
		want bool
	}{
		{"true", true},
		{"false", false},
		{"not false", true},
		{"not not true", true},
		{"true and true", true},
		{"true and false", false},
		{"false or true", true},
		{"false or false", false},
		{"(true or false) and true", true},
		{"origin = 'p1'", true},
		{"origin != 'p1'", false},
		{"origin <> 'p1'", false},
		{"rel = 'F'", true},
		{"relation = 'F'", true},
		{"op = 'insert'", true},
		{"operation = 'insert'", true},
		{"origin in ('a', 'p1', 'b')", true},
		{"origin in ('a', 'b')", false},
		{"attr('organism') = 'rat'", true},
		{"attr(1) = 'prot'", true},
		{"attr(99) = 'x'", false},
		{"attr('nope') = 'x'", false},
		{"attr('organism') < 'sat'", true},
		{"attr('organism') <= 'rat'", true},
		{"attr('organism') > 'aat'", true},
		{"attr('organism') >= 'rat'", true},
		{"1 < 2", true},
		{"2.5 >= 2.5", true},
		{"-1 < 0", true},
		{"1 = 1 and 2 = 2", true},
		{"'a' < 1", false}, // incomparable kinds
		{"origin like 'p%'", true},
		{"origin like '%1'", true},
		{"origin like 'p_'", true},
		{"origin like 'q%'", false},
		{"attr('function') like 'f%n'", true},
		{"null = null", true},
		{"attr(99) = null", true},
		{"1 like 'x'", false}, // like on non-string
	}
	for _, c := range cases {
		e, err := compile(c.src)
		if err != nil {
			t.Errorf("%q: compile error: %v", c.src, err)
			continue
		}
		got := e.eval(&evalCtx{u: u, schema: s}).truthy()
		if got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
		if e.String() == "" {
			t.Errorf("%q: empty String()", c.src)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a%c", "abbbc", true},
		{"a%c", "ac", true},
		{"a%c", "ab", false},
		{"%abc%", "xxabcyy", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%a%b%", "xaxbx", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"origin =",
		"= 'x'",
		"(true",
		"origin like 5",
		"origin in ()",
		"origin in ('a',)",
		"attr()",
		"attr('x'",
		"attr(1.5) = 'x'",
		"bogus = 'x'",
		"true extra",
		"origin ! 'x'",
		"'unterminated",
		"origin in 'x'",
		"origin @ 'x'",
	}
	for _, src := range bad {
		if _, err := compile(src); err == nil {
			t.Errorf("%q should fail to compile", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := compile("origin = ")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(se.Error(), "position") {
		t.Errorf("error message: %v", se)
	}
}

func TestParsePolicyText(t *testing.T) {
	p, err := Parse(`
# comment line
-- another comment
priority 2 when origin = 'p1'

priority 1 when origin in ('p2', 'p3')
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("rules = %d", p.Len())
	}
	if got := p.Priority(ins("p3", "a", "b", "c")); got != 1 {
		t.Errorf("p3 priority = %d", got)
	}
	// Round-trip through String.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if p2.Len() != 2 {
		t.Error("round-trip lost rules")
	}
}

func TestParsePolicyErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"priority",
		"priority x when true",
		"priority 2 true",
		"priority 2 when origin =",
		"priority 0 when true",
		"priority -1 when true",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should fail to parse", src)
		}
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic")
		}
	}()
	MustParse("garbage")
}

func TestPolicyImplementsCoreTrust(t *testing.T) {
	var _ core.Trust = NewPolicy()
}

func TestPriorityShortCircuit(t *testing.T) {
	// Rules with priority <= current best are skipped; ensure a
	// lower-priority matching rule after a higher one doesn't lower the
	// result.
	p := NewPolicy()
	p.MustAdd(5, "true")
	p.MustAdd(3, "true")
	if got := p.Priority(ins("x", "a", "b", "c")); got != 5 {
		t.Errorf("priority = %d", got)
	}
}
