// Package trust implements acceptance rules A(p_i) for CDSS participants:
// ordered sets of (predicate, priority) pairs where predicates range over an
// update's origin, relation, operation, and attribute values. Predicates are
// written in a small expression language:
//
//	priority 2 when origin = 'SWISS-PROT' and rel = 'Function'
//	priority 1 when origin in ('p2', 'p3')
//	priority 3 when op = 'insert' and attr('function') like 'immune%'
//	priority 1 when true
//
// A Policy implements core.Trust: the priority of an update is the maximum
// priority among the rules whose predicate it satisfies, or 0 if none match.
package trust

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a predicate expression.
type lexer struct {
	src string
	pos int
}

// SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("trust: %s at position %d in %q", e.Msg, e.Pos, e.Src)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNe, text: "!=", pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected '!'")
	case c == '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{kind: tokNe, text: "<>", pos: start}, nil
		}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				// '' is an escaped quote, SQL style.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
