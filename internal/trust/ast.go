package trust

import (
	"strconv"
	"strings"

	"orchestra/internal/core"
)

// val is the dynamic value domain of the predicate language: strings,
// numbers, booleans, and null (absent attribute).
type val struct {
	kind byte // 'n' null, 's' string, 'f' number, 'b' bool
	s    string
	f    float64
	b    bool
}

var (
	nullVal  = val{kind: 'n'}
	trueVal  = val{kind: 'b', b: true}
	falseVal = val{kind: 'b', b: false}
)

func strVal(s string) val  { return val{kind: 's', s: s} }
func numVal(f float64) val { return val{kind: 'f', f: f} }
func boolVal(b bool) val   { return map[bool]val{true: trueVal, false: falseVal}[b] }
func (v val) truthy() bool { return v.kind == 'b' && v.b }
func (v val) isNull() bool { return v.kind == 'n' }
func (v val) String() string {
	switch v.kind {
	case 's':
		return "'" + v.s + "'"
	case 'f':
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case 'b':
		return strconv.FormatBool(v.b)
	default:
		return "null"
	}
}

// equalVal compares for (in)equality; values of different kinds are unequal.
func equalVal(a, b val) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case 's':
		return a.s == b.s
	case 'f':
		return a.f == b.f
	case 'b':
		return a.b == b.b
	default:
		return true // null == null
	}
}

// compareVal orders two values; ok is false for incomparable kinds.
func compareVal(a, b val) (int, bool) {
	if a.kind != b.kind || a.kind == 'n' || a.kind == 'b' {
		return 0, false
	}
	switch a.kind {
	case 's':
		return strings.Compare(a.s, b.s), true
	case 'f':
		switch {
		case a.f < b.f:
			return -1, true
		case a.f > b.f:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// evalCtx carries the update under evaluation and the optional schema used
// to resolve attribute names.
type evalCtx struct {
	u      core.Update
	schema *core.Schema
}

// attr resolves an attribute of the update's "current" tuple (the inserted
// or deleted tuple, or the source of a modification); newAttr resolves
// against the replacement tuple of a modification (falling back to the
// current tuple for inserts/deletes).
func (c *evalCtx) attr(t core.Tuple, name string, idx int, byName bool) val {
	if byName {
		if c.schema == nil {
			return nullVal
		}
		rel, ok := c.schema.Relation(c.u.Rel)
		if !ok {
			return nullVal
		}
		idx = rel.AttrIndex(name)
	}
	if idx < 0 || idx >= len(t) {
		return nullVal
	}
	return coreValueToVal(t[idx])
}

func coreValueToVal(v core.Value) val {
	switch v.Kind() {
	case core.KindString:
		return strVal(v.Str())
	case core.KindInt:
		return numVal(float64(v.Int()))
	case core.KindFloat:
		return numVal(v.Float())
	case core.KindBool:
		return boolVal(v.Bool())
	default:
		return nullVal
	}
}

// expr is a compiled predicate expression node.
type expr interface {
	eval(c *evalCtx) val
	String() string
}

type litExpr struct{ v val }

func (e *litExpr) eval(*evalCtx) val { return e.v }
func (e *litExpr) String() string    { return e.v.String() }

// fieldKind selects a built-in field of the update.
type fieldKind uint8

const (
	fieldOrigin fieldKind = iota
	fieldRel
	fieldOp
)

type fieldExpr struct{ f fieldKind }

func (e *fieldExpr) eval(c *evalCtx) val {
	switch e.f {
	case fieldOrigin:
		return strVal(string(c.u.Origin))
	case fieldRel:
		return strVal(c.u.Rel)
	default:
		switch c.u.Op {
		case core.OpInsert:
			return strVal("insert")
		case core.OpDelete:
			return strVal("delete")
		case core.OpModify:
			return strVal("modify")
		}
		return nullVal
	}
}

func (e *fieldExpr) String() string {
	switch e.f {
	case fieldOrigin:
		return "origin"
	case fieldRel:
		return "rel"
	default:
		return "op"
	}
}

// attrExpr reads attr('name') / attr(i) of the current tuple, or
// newattr(...) of the replacement tuple.
type attrExpr struct {
	name    string
	idx     int
	byName  bool
	replace bool // newattr
}

func (e *attrExpr) eval(c *evalCtx) val {
	t := c.u.Tuple
	if e.replace && c.u.New != nil {
		t = c.u.New
	}
	return c.attr(t, e.name, e.idx, e.byName)
}

func (e *attrExpr) String() string {
	fn := "attr"
	if e.replace {
		fn = "newattr"
	}
	if e.byName {
		return fn + "('" + e.name + "')"
	}
	return fn + "(" + strconv.Itoa(e.idx) + ")"
}

type cmpExpr struct {
	op   tokenKind
	l, r expr
}

func (e *cmpExpr) eval(c *evalCtx) val {
	lv, rv := e.l.eval(c), e.r.eval(c)
	switch e.op {
	case tokEq:
		return boolVal(equalVal(lv, rv))
	case tokNe:
		return boolVal(!equalVal(lv, rv))
	}
	cmp, ok := compareVal(lv, rv)
	if !ok {
		return falseVal
	}
	switch e.op {
	case tokLt:
		return boolVal(cmp < 0)
	case tokLe:
		return boolVal(cmp <= 0)
	case tokGt:
		return boolVal(cmp > 0)
	case tokGe:
		return boolVal(cmp >= 0)
	}
	return falseVal
}

func (e *cmpExpr) String() string {
	op := map[tokenKind]string{tokEq: "=", tokNe: "!=", tokLt: "<", tokLe: "<=", tokGt: ">", tokGe: ">="}[e.op]
	return e.l.String() + " " + op + " " + e.r.String()
}

type inExpr struct {
	l    expr
	opts []val
}

func (e *inExpr) eval(c *evalCtx) val {
	lv := e.l.eval(c)
	for _, o := range e.opts {
		if equalVal(lv, o) {
			return trueVal
		}
	}
	return falseVal
}

func (e *inExpr) String() string {
	parts := make([]string, len(e.opts))
	for i, o := range e.opts {
		parts[i] = o.String()
	}
	return e.l.String() + " in (" + strings.Join(parts, ", ") + ")"
}

// likeExpr matches SQL LIKE patterns with % (any run) and _ (any one rune).
type likeExpr struct {
	l       expr
	pattern string
}

func (e *likeExpr) eval(c *evalCtx) val {
	lv := e.l.eval(c)
	if lv.kind != 's' {
		return falseVal
	}
	return boolVal(likeMatch(e.pattern, lv.s))
}

func (e *likeExpr) String() string { return e.l.String() + " like '" + e.pattern + "'" }

// likeMatch implements LIKE with memoized recursion over runes.
func likeMatch(pattern, s string) bool {
	p, str := []rune(pattern), []rune(s)
	// Iterative two-pointer with backtracking on the last '%'.
	pi, si := 0, 0
	star, starSi := -1, 0
	for si < len(str) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == str[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

type notExpr struct{ e expr }

func (e *notExpr) eval(c *evalCtx) val { return boolVal(!e.e.eval(c).truthy()) }
func (e *notExpr) String() string      { return "not " + e.e.String() }

type andExpr struct{ l, r expr }

func (e *andExpr) eval(c *evalCtx) val {
	if !e.l.eval(c).truthy() {
		return falseVal
	}
	return boolVal(e.r.eval(c).truthy())
}
func (e *andExpr) String() string { return "(" + e.l.String() + " and " + e.r.String() + ")" }

type orExpr struct{ l, r expr }

func (e *orExpr) eval(c *evalCtx) val {
	if e.l.eval(c).truthy() {
		return trueVal
	}
	return boolVal(e.r.eval(c).truthy())
}
func (e *orExpr) String() string { return "(" + e.l.String() + " or " + e.r.String() + ")" }
