package trust

import (
	"reflect"
	"testing"

	"orchestra/internal/core"
)

// TestGraphChainClosure: delegation caps compose as path bottlenecks down
// a chain — a --3--> b --2--> c gives a the closure {b:3, c:2}.
func TestGraphChainClosure(t *testing.T) {
	g := NewGraph(nil)
	g.Set("c", MustParse("priority 9 when origin = 'pz'"))
	g.Set("b", MustParse("priority 4 when origin = 'py'\ndelegate 'c' priority 2"))
	g.Set("a", MustParse("priority 5 when origin = 'px'\ndelegate 'b' priority 3"))

	want := map[core.PeerID]int{"b": 3, "c": 2}
	if got := g.Closure("a"); !reflect.DeepEqual(got, want) {
		t.Fatalf("closure(a) = %v, want %v", got, want)
	}
	eff := g.Effective("a")
	for origin, prio := range map[core.PeerID]int{"px": 5, "py": 3, "pz": 2, "pq": 0} {
		if got := eff.Priority(ins(string(origin), "r", "p", "f")); got != prio {
			t.Errorf("effective(a) priority(%s) = %d, want %d", origin, got, prio)
		}
	}
	// b's own closure is one hop: c capped at 2, uncapped own rules.
	effB := g.Effective("b")
	if got := effB.Priority(ins("py", "r", "p", "f")); got != 4 {
		t.Errorf("effective(b) priority(py) = %d, want 4", got)
	}
	if got := effB.Priority(ins("pz", "r", "p", "f")); got != 2 {
		t.Errorf("effective(b) priority(pz) = %d, want 2", got)
	}
}

// TestGraphWidestPath: with two routes to the same delegate, the closure
// keeps the maximum-bottleneck cap (Gatterbauer & Suciu), not the first
// or the sum.
func TestGraphWidestPath(t *testing.T) {
	g := NewGraph(nil)
	g.Set("d", MustParse("priority 9 when origin = 'pz'"))
	g.Set("b", MustParse("delegate 'd' priority 4"))
	g.Set("c", MustParse("delegate 'd' priority 9"))
	g.Set("a", MustParse("delegate 'b' priority 5\ndelegate 'c' priority 1"))

	// Via b: min(5,4)=4. Via c: min(1,9)=1. Widest: 4.
	want := map[core.PeerID]int{"b": 5, "c": 1, "d": 4}
	if got := g.Closure("a"); !reflect.DeepEqual(got, want) {
		t.Fatalf("closure(a) = %v, want %v", got, want)
	}
	if got := g.Effective("a").Priority(ins("pz", "r", "p", "f")); got != 4 {
		t.Errorf("effective(a) priority(pz) = %d, want 4", got)
	}
}

// TestGraphCycle: mutual delegation converges — caps never increase along
// a path, so a cycle cannot amplify trust, and resolution terminates.
func TestGraphCycle(t *testing.T) {
	g := NewGraph(nil)
	g.Set("a", MustParse("priority 5 when origin = 'pa'"))
	g.Set("b", MustParse("priority 4 when origin = 'pb'"))
	// Close the cycle by re-registering both with delegations.
	g.Set("a", MustParse("priority 5 when origin = 'pa'\ndelegate 'b' priority 3"))
	g.Set("b", MustParse("priority 4 when origin = 'pb'\ndelegate 'a' priority 2"))

	effA, effB := g.Effective("a"), g.Effective("b")
	// a sees b's rules capped at 3; the cycle back to a adds nothing new
	// (own rules are already uncapped).
	if got := effA.Priority(ins("pb", "r", "p", "f")); got != 3 {
		t.Errorf("effective(a) priority(pb) = %d, want 3", got)
	}
	if got := effA.Priority(ins("pa", "r", "p", "f")); got != 5 {
		t.Errorf("effective(a) priority(pa) = %d, want 5", got)
	}
	// b sees a's rules capped at 2.
	if got := effB.Priority(ins("pa", "r", "p", "f")); got != 2 {
		t.Errorf("effective(b) priority(pa) = %d, want 2", got)
	}
	if got := effB.Priority(ins("pb", "r", "p", "f")); got != 4 {
		t.Errorf("effective(b) priority(pb) = %d, want 4", got)
	}
}

// TestGraphIncrementalRecompile: changing one member re-resolves exactly
// the participants whose closure reaches it — nobody else.
func TestGraphIncrementalRecompile(t *testing.T) {
	g := NewGraph(nil)
	g.Set("c", MustParse("priority 1 when origin = 'pz'"))
	g.Set("b", MustParse("delegate 'c' priority 2"))
	g.Set("a", MustParse("delegate 'b' priority 3"))
	g.Set("d", MustParse("priority 1 when true")) // isolated

	before := map[core.PeerID]int{}
	for _, id := range g.Members() {
		g.Effective(id) // force initial resolution
		before[id] = g.Recompiles(id)
	}
	totalBefore := g.TotalRecompiles()

	affected := g.Set("c", MustParse("priority 8 when origin = 'pz'"))
	wantAffected := []core.PeerID{"a", "b", "c"}
	if !reflect.DeepEqual(affected, wantAffected) {
		t.Fatalf("affected = %v, want %v", affected, wantAffected)
	}
	for _, id := range wantAffected {
		if got := g.Recompiles(id); got != before[id]+1 {
			t.Errorf("recompiles(%s) = %d, want %d", id, got, before[id]+1)
		}
	}
	if got := g.Recompiles("d"); got != before["d"] {
		t.Errorf("isolated peer recompiled: %d -> %d", before["d"], got)
	}
	if got := g.TotalRecompiles(); got != totalBefore+len(wantAffected) {
		t.Errorf("total recompiles = %d, want %d", got, totalBefore+len(wantAffected))
	}
	// The re-resolution is live: a now sees pz at min(3, 2, 8) = 2.
	if got := g.Effective("a").Priority(ins("pz", "r", "p", "f")); got != 2 {
		t.Errorf("effective(a) priority(pz) = %d, want 2", got)
	}
}

// TestGraphNonTextualDelegate: a delegation to a member registered with an
// in-process predicate policy still works — the delegate becomes a dynamic
// source capped at the delegation priority.
func TestGraphNonTextualDelegate(t *testing.T) {
	g := NewGraph(nil)
	g.Set("fn", core.TrustAll(9))
	g.Set("a", MustParse("priority 1 when origin = 'pa'\ndelegate 'fn' priority 2"))

	eff := g.Effective("a")
	if got := eff.Priority(ins("anyone", "r", "p", "f")); got != 2 {
		t.Errorf("dynamic delegate priority = %d, want 2 (capped)", got)
	}
	if got := eff.Priority(ins("pa", "r", "p", "f")); got != 2 {
		t.Errorf("own-rule vs dyn max = %d, want 2", got)
	}
	// A non-textual member's own effective trust is itself, untouched.
	if g.Effective("fn").Priority(ins("x", "r", "p", "f")) != 9 {
		t.Error("non-textual member's effective trust altered")
	}
}

// TestGraphUnknownDelegate: delegations to members the graph has never
// seen contribute nothing (stores refuse them at registration; the graph
// itself is lenient so recovery can load rows in any order).
func TestGraphUnknownDelegate(t *testing.T) {
	g := NewGraph(nil)
	g.Set("a", MustParse("priority 2 when origin = 'pa'\ndelegate 'ghost' priority 5"))
	eff := g.Effective("a")
	if got := eff.Priority(ins("pa", "r", "p", "f")); got != 2 {
		t.Errorf("priority(pa) = %d", got)
	}
	if got := eff.Priority(ins("ghost", "r", "p", "f")); got != 0 {
		t.Errorf("unknown delegate leaked trust: %d", got)
	}
	// Registering the ghost later re-resolves a automatically.
	affected := g.Set("ghost", MustParse("priority 9 when origin = 'pg'"))
	if !reflect.DeepEqual(affected, []core.PeerID{"a", "ghost"}) {
		t.Fatalf("affected = %v", affected)
	}
	if got := g.Effective("a").Priority(ins("pg", "r", "p", "f")); got != 5 {
		t.Errorf("post-registration priority(pg) = %d, want 5", got)
	}
}

// TestGraphRemove: dropping a member strips its rules from every
// delegator's effective policy.
func TestGraphRemove(t *testing.T) {
	g := NewGraph(nil)
	g.Set("b", MustParse("priority 4 when origin = 'pb'"))
	g.Set("a", MustParse("priority 5 when origin = 'pa'\ndelegate 'b' priority 3"))
	if got := g.Effective("a").Priority(ins("pb", "r", "p", "f")); got != 3 {
		t.Fatalf("pre-remove priority(pb) = %d", got)
	}
	affected := g.Remove("b")
	if !reflect.DeepEqual(affected, []core.PeerID{"a"}) {
		t.Fatalf("affected = %v", affected)
	}
	if got := g.Effective("a").Priority(ins("pb", "r", "p", "f")); got != 0 {
		t.Errorf("post-remove priority(pb) = %d, want 0", got)
	}
	if g.Effective("b") != nil {
		t.Error("removed member still resolves")
	}
}

// TestDelegationRoundTrip: the textual form with delegations satisfies the
// Parse(String) fixpoint, including peers needing quote escapes.
func TestDelegationRoundTrip(t *testing.T) {
	texts := []string{
		"priority 2 when origin = 'a'\ndelegate 'b' priority 3\n",
		"delegate 'o''brien' priority 1\n",
		"priority 1 when true\ndelegate 'x' priority 2\ndelegate 'y' priority 7\n",
	}
	for _, text := range texts {
		p, err := Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		if got := p.String(); got != text {
			t.Errorf("String() = %q, want %q", got, text)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if q.String() != p.String() {
			t.Errorf("fixpoint broken: %q vs %q", q.String(), p.String())
		}
	}
}

// TestDelegationParseErrors: malformed delegate lines fail with line
// numbers, and delegation caps must be positive.
func TestDelegationParseErrors(t *testing.T) {
	for _, text := range []string{
		"delegate",
		"delegate 'x'",
		"delegate 'x' priority",
		"delegate 'x' priority zero",
		"delegate 'x' priority 0",
		"delegate 'x' priority -3",
		"delegate 'x' priority 2 trailing",
		"delegate priority 2", // "priority" swallowed as the peer name, then malformed
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
	p := NewPolicy()
	if err := p.AddDelegation("", 1); err == nil {
		t.Error("empty peer accepted")
	}
	if err := p.AddDelegation("x", 0); err == nil {
		t.Error("zero cap accepted")
	}
	// Duplicate delegations keep the wider cap.
	p.MustDelegate("x", 2).MustDelegate("x", 5).MustDelegate("x", 1)
	if ds := p.Delegations(); len(ds) != 1 || ds[0].Cap != 5 {
		t.Errorf("delegations = %v", ds)
	}
}
