package trust

import (
	"container/heap"
	"math"
	"sort"
	"sync"

	"orchestra/internal/core"
)

// Graph resolves trust delegations across a set of participants. Each
// member has its own trust (usually a textual *Policy, possibly carrying
// `delegate <peer> priority <n>` mappings); the graph computes every
// member's *effective* trust — its own rules plus, for every transitively
// reachable delegate, that delegate's direct rules capped at the
// bottleneck priority of the best delegation path (the priority-preserving
// transitive closure of Gatterbauer & Suciu: cap(B→D) is the maximum over
// paths of the minimum edge priority, so cycles are harmless — a cycle
// can never raise a cap). Effective policies are compiled at resolution
// time.
//
// Changing one member's trust (Set) re-resolves only the affected
// participants — those whose closure can reach the changed member —
// making a mid-stream mapping change O(affected), not O(members). The
// per-member recompile counters expose exactly that.
//
// A Graph is safe for concurrent use.
type Graph struct {
	mu         sync.RWMutex
	schema     *core.Schema
	members    map[core.PeerID]core.Trust
	resolved   map[core.PeerID]core.Trust
	recompiles map[core.PeerID]int
	total      int
}

// NewGraph returns an empty graph. The schema (may be nil) is bound to
// effective policies whose member policy has none, so attr('name') rules
// resolve.
func NewGraph(schema *core.Schema) *Graph {
	return &Graph{
		schema:     schema,
		members:    make(map[core.PeerID]core.Trust),
		resolved:   make(map[core.PeerID]core.Trust),
		recompiles: make(map[core.PeerID]int),
	}
}

// Set registers or replaces a member's trust and re-resolves every
// affected participant (the peers whose delegation closure contains the
// changed member, plus the member itself). It returns the affected set,
// sorted; each entry's effective trust was recompiled.
func (g *Graph) Set(peer core.PeerID, t core.Trust) []core.PeerID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[peer] = t
	affected := g.affectedLocked(peer)
	for _, a := range affected {
		g.resolved[a] = g.resolveLocked(a)
		g.recompiles[a]++
		g.total++
	}
	return affected
}

// Remove drops a member and re-resolves the participants that delegated
// (transitively) to it.
func (g *Graph) Remove(peer core.PeerID) []core.PeerID {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[peer]; !ok {
		return nil
	}
	affected := g.affectedLocked(peer)
	delete(g.members, peer)
	delete(g.resolved, peer)
	out := affected[:0]
	for _, a := range affected {
		if a == peer {
			continue
		}
		g.resolved[a] = g.resolveLocked(a)
		g.recompiles[a]++
		g.total++
		out = append(out, a)
	}
	return out
}

// Effective returns the member's resolved, compiled trust, or nil for an
// unknown member.
func (g *Graph) Effective(peer core.PeerID) core.Trust {
	g.mu.RLock()
	if t, ok := g.resolved[peer]; ok {
		g.mu.RUnlock()
		return t
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.resolved[peer]; ok {
		return t
	}
	if _, ok := g.members[peer]; !ok {
		return nil
	}
	t := g.resolveLocked(peer)
	g.resolved[peer] = t
	g.recompiles[peer]++
	g.total++
	return t
}

// Member returns the member's own (unresolved) trust, or nil.
func (g *Graph) Member(peer core.PeerID) core.Trust {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.members[peer]
}

// Members returns the member IDs, sorted.
func (g *Graph) Members() []core.PeerID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]core.PeerID, 0, len(g.members))
	for id := range g.members {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Closure returns the member's transitive delegation closure: for every
// reachable delegate, the bottleneck-maximal priority cap of the best
// path. The member itself is excluded (its own rules are uncapped).
func (g *Graph) Closure(peer core.PeerID) map[core.PeerID]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	caps := g.closureLocked(peer)
	out := make(map[core.PeerID]int, len(caps))
	for k, v := range caps {
		out[k] = v
	}
	return out
}

// Recompiles returns how many times the member's effective trust has been
// resolved (including its initial registration).
func (g *Graph) Recompiles(peer core.PeerID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.recompiles[peer]
}

// TotalRecompiles returns the total number of effective-trust resolutions
// across all members.
func (g *Graph) TotalRecompiles() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.total
}

// affectedLocked returns the members whose effective trust depends on the
// given peer: reverse reachability over delegation edges, including the
// peer itself, sorted.
func (g *Graph) affectedLocked(changed core.PeerID) []core.PeerID {
	rev := make(map[core.PeerID][]core.PeerID)
	for id, t := range g.members {
		if pol, ok := t.(*Policy); ok {
			for _, d := range pol.delegs {
				rev[d.Peer] = append(rev[d.Peer], id)
			}
		}
	}
	seen := map[core.PeerID]bool{changed: true}
	queue := []core.PeerID{changed}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, src := range rev[n] {
			if !seen[src] {
				seen[src] = true
				queue = append(queue, src)
			}
		}
	}
	out := make([]core.PeerID, 0, len(seen))
	for id := range seen {
		if _, ok := g.members[id]; ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// capItem / capHeap implement the max-heap for the widest-path search,
// tie-breaking on peer ID for determinism.
type capItem struct {
	peer core.PeerID
	cap  int
}

type capHeap []capItem

func (h capHeap) Len() int { return len(h) }
func (h capHeap) Less(i, j int) bool {
	if h[i].cap != h[j].cap {
		return h[i].cap > h[j].cap
	}
	return h[i].peer < h[j].peer
}
func (h capHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *capHeap) Push(x any)      { *h = append(*h, x.(capItem)) }
func (h *capHeap) Pop() any        { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *capHeap) push(it capItem) { heap.Push(h, it) }
func (h *capHeap) pop() capItem    { return heap.Pop(h).(capItem) }

// closureLocked runs the widest-path (maximum-bottleneck) search from one
// member over delegation edges: Dijkstra with a max-heap, where a path's
// width is the minimum delegation cap along it. Delegations to
// unregistered peers contribute nothing. Cycles are handled naturally —
// caps never increase along a path, so a node popped at its best width is
// final.
func (g *Graph) closureLocked(src core.PeerID) map[core.PeerID]int {
	pol, ok := g.members[src].(*Policy)
	if !ok || len(pol.delegs) == 0 {
		return nil
	}
	best := map[core.PeerID]int{src: math.MaxInt}
	h := &capHeap{{peer: src, cap: math.MaxInt}}
	for h.Len() > 0 {
		it := h.pop()
		if it.cap < best[it.peer] {
			continue // stale entry
		}
		p, ok := g.members[it.peer].(*Policy)
		if !ok {
			continue // non-textual members carry no delegations
		}
		for _, d := range p.delegs {
			if _, known := g.members[d.Peer]; !known {
				continue
			}
			w := d.Cap
			if it.cap < w {
				w = it.cap
			}
			if w > best[d.Peer] {
				best[d.Peer] = w
				h.push(capItem{peer: d.Peer, cap: w})
			}
		}
	}
	delete(best, src)
	return best
}

// resolveLocked builds and compiles the member's effective trust: its own
// rules uncapped, each closure member's direct rules capped at the
// closure width, and non-textual closure members as dynamic sources. The
// merge order (own rules, then closure members sorted by ID) and the
// duplicate-rule suppression are deterministic, so resolution is
// reproducible bit-for-bit.
func (g *Graph) resolveLocked(peer core.PeerID) core.Trust {
	own := g.members[peer]
	pol, ok := own.(*Policy)
	if !ok {
		return own
	}
	caps := g.closureLocked(peer)
	if len(caps) == 0 {
		pol.compiled() // compile at registration even without delegations
		return pol
	}
	eff := NewPolicy()
	eff.schema = pol.schema
	if eff.schema == nil {
		eff.schema = g.schema
	}
	eff.interpret = pol.interpret

	type ruleKey struct {
		prio int
		pred string
	}
	seen := make(map[ruleKey]bool)
	// bestPred tracks the highest priority a predicate appears at: a
	// lower-priority copy of the same predicate can never win the max
	// and is dropped.
	bestPred := make(map[string]int)
	addRule := func(prio int, r *Rule) {
		if prio <= 0 {
			return
		}
		k := ruleKey{prio: prio, pred: r.Predicate}
		if seen[k] || bestPred[r.Predicate] >= prio {
			return
		}
		seen[k] = true
		bestPred[r.Predicate] = prio
		eff.rules = append(eff.rules, Rule{Priority: prio, Predicate: r.Predicate, expr: r.expr})
	}
	for i := range pol.rules {
		addRule(pol.rules[i].Priority, &pol.rules[i])
	}
	order := make([]core.PeerID, 0, len(caps))
	for c := range caps {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, c := range order {
		w := caps[c]
		switch ct := g.members[c].(type) {
		case *Policy:
			for i := range ct.rules {
				prio := ct.rules[i].Priority
				if prio > w {
					prio = w
				}
				addRule(prio, &ct.rules[i])
			}
		case nil:
		default:
			eff.dyn = append(eff.dyn, dynSource{t: ct, cap: w})
		}
	}
	eff.compiled() // compile at resolution, not first decision
	return eff
}
