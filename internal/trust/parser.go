package trust

import "strconv"

// parser is a recursive-descent parser for the predicate language with the
// grammar (lowest precedence first):
//
//	expr    := and ('or' and)*
//	and     := unary ('and' unary)*
//	unary   := 'not' unary | primary
//	primary := '(' expr ')' | 'true' | 'false' | comparison
//	comparison := operand (cmpop operand | 'in' '(' literal,* ')' | 'like' string)?
//	operand := 'origin' | 'rel' | 'op' | attr | newattr | literal
//	attr    := ('attr' | 'newattr') '(' (string | number) ')'
type parser struct {
	lex *lexer
	tok token
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: &lexer{src: src}}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return p.lex.errorf(p.tok.pos, format, args...)
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errorf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

// isKeyword reports whether the current token is the given (lowercase)
// keyword identifier.
func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && lower(p.tok.text) == kw
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// parseExpr parses a full expression and requires EOF afterwards when
// topLevel is set.
func (p *parser) parseExpr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &orExpr{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &andExpr{l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.isKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notExpr{e: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	operand, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.kind == tokEq, p.tok.kind == tokNe, p.tok.kind == tokLt,
		p.tok.kind == tokLe, p.tok.kind == tokGt, p.tok.kind == tokGe:
		op := p.tok.kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &cmpExpr{op: op, l: operand, r: right}, nil
	case p.isKeyword("in"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var opts []val
		for {
			lit, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			opts = append(opts, lit)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &inExpr{l: operand, opts: opts}, nil
	case p.isKeyword("like"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errorf("like requires a string pattern")
		}
		pat := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &likeExpr{l: operand, pattern: pat}, nil
	default:
		// A bare operand is a boolean expression (true/false literal or a
		// field, which is truthy only if it is the boolean true).
		return operand, nil
	}
}

func (p *parser) parseOperand() (expr, error) {
	switch p.tok.kind {
	case tokString:
		e := &litExpr{v: strVal(p.tok.text)}
		return e, p.advance()
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		e := &litExpr{v: numVal(f)}
		return e, p.advance()
	case tokIdent:
		switch lower(p.tok.text) {
		case "true":
			return &litExpr{v: trueVal}, p.advance()
		case "false":
			return &litExpr{v: falseVal}, p.advance()
		case "null":
			return &litExpr{v: nullVal}, p.advance()
		case "origin":
			return &fieldExpr{f: fieldOrigin}, p.advance()
		case "rel", "relation":
			return &fieldExpr{f: fieldRel}, p.advance()
		case "op", "operation":
			return &fieldExpr{f: fieldOp}, p.advance()
		case "attr", "newattr":
			replace := lower(p.tok.text) == "newattr"
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			e := &attrExpr{replace: replace}
			switch p.tok.kind {
			case tokString:
				e.name, e.byName = p.tok.text, true
			case tokNumber:
				i, err := strconv.Atoi(p.tok.text)
				if err != nil {
					return nil, p.errorf("attribute index must be an integer")
				}
				e.idx = i
			default:
				return nil, p.errorf("attr() takes an attribute name or index")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return e, nil
		default:
			return nil, p.errorf("unknown identifier %q", p.tok.text)
		}
	default:
		return nil, p.errorf("expected an operand, found %s", p.tok.kind)
	}
}

func (p *parser) parseLiteral() (val, error) {
	switch p.tok.kind {
	case tokString:
		v := strVal(p.tok.text)
		return v, p.advance()
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return val{}, p.errorf("bad number %q", p.tok.text)
		}
		return numVal(f), p.advance()
	case tokIdent:
		switch lower(p.tok.text) {
		case "true":
			return trueVal, p.advance()
		case "false":
			return falseVal, p.advance()
		case "null":
			return nullVal, p.advance()
		}
	}
	return val{}, p.errorf("expected a literal, found %s %q", p.tok.kind, p.tok.text)
}

// compile parses a complete predicate expression.
func compile(src string) (expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return e, nil
}
