package trust

import (
	"sort"

	"orchestra/internal/core"
)

// leafKey identifies a leaf for value numbering: two syntactically equal
// update accesses share one leaf slot and one extraction per update.
type leafKey struct {
	kind    leafKind
	replace bool
	byName  bool
	name    string
	idx     int
}

// progBuilder accumulates the shared tables while rules are lowered.
type progBuilder struct {
	pr      *program
	schema  *core.Schema
	leafIdx map[leafKey]int32
	litIdx  map[val]int32
}

// compileProgram lowers a rule list (plus delegated dynamic sources) into
// a program. The result is independent of rule order up to priority ties
// and always decision-equivalent to interpreting the rules: the
// differential tests pin this.
func compileProgram(rules []Rule, dyn []dynSource, schema *core.Schema) *program {
	b := &progBuilder{
		pr:      &program{},
		schema:  schema,
		leafIdx: make(map[leafKey]int32),
		litIdx:  make(map[val]int32),
	}
	pr := b.pr
	for i := range rules {
		r := &rules[i]
		if v, ok := foldConst(r.expr); ok {
			// Leaf-free predicate: decided now. True floors every
			// evaluation at the rule's priority; false never fires.
			if v.truthy() && r.Priority > pr.constPrio {
				pr.constPrio = r.Priority
			}
			continue
		}
		if origins, ok := originDispatch(r.expr); ok {
			// origin = 'x' / origin in (...): one map lookup at eval.
			if pr.originPrio == nil {
				pr.originPrio = make(map[core.PeerID]int)
			}
			for _, o := range origins {
				if r.Priority > pr.originPrio[o] {
					pr.originPrio[o] = r.Priority
				}
			}
			continue
		}
		pr.rules = append(pr.rules, compiledRule{prio: r.Priority, code: b.lower(r.expr, nil)})
	}
	sort.SliceStable(pr.rules, func(i, j int) bool { return pr.rules[i].prio > pr.rules[j].prio })
	pr.dyn = append([]dynSource(nil), dyn...)
	sort.SliceStable(pr.dyn, func(i, j int) bool { return pr.dyn[i].cap > pr.dyn[j].cap })

	for i := range pr.rules {
		if d := stackDepth(pr.rules[i].code); d > pr.maxStack {
			pr.maxStack = d
		}
	}
	pr.originOnly = analyzeOriginOnly(pr)
	return pr
}

// analyzeOriginOnly reports whether every decision the program makes
// depends only on u.Origin. The dispatch table and constant floor are
// origin-only by construction; general rules qualify when their only
// leaves are origin reads, dynamic sources when they declare it.
func analyzeOriginOnly(pr *program) bool {
	for _, r := range pr.rules {
		for _, in := range r.code {
			if in.op == opLeaf && pr.leaves[in.a].kind != leafOrigin {
				return false
			}
		}
	}
	for _, d := range pr.dyn {
		if ot, ok := d.t.(core.OriginTrust); !ok || !ot.OriginOnly() {
			return false
		}
	}
	return true
}

// foldConst evaluates a leaf-free subtree at compile time. The language
// is pure, so evaluating against an empty context is exact.
func foldConst(e expr) (val, bool) {
	if hasLeaves(e) {
		return val{}, false
	}
	return e.eval(&evalCtx{}), true
}

func hasLeaves(e expr) bool {
	switch n := e.(type) {
	case *litExpr:
		return false
	case *fieldExpr, *attrExpr:
		return true
	case *cmpExpr:
		return hasLeaves(n.l) || hasLeaves(n.r)
	case *inExpr:
		return hasLeaves(n.l)
	case *likeExpr:
		return hasLeaves(n.l)
	case *notExpr:
		return hasLeaves(n.e)
	case *andExpr:
		return hasLeaves(n.l) || hasLeaves(n.r)
	case *orExpr:
		return hasLeaves(n.l) || hasLeaves(n.r)
	}
	return true // unknown node: treat as dynamic
}

// originDispatch recognizes predicates decidable from the origin alone
// with equality semantics: `origin = '<peer>'` (either side) and
// `origin in (...)`. Non-string members can never equal the (string)
// origin and are dropped; a rule with no string members never fires.
func originDispatch(e expr) ([]core.PeerID, bool) {
	switch n := e.(type) {
	case *cmpExpr:
		if n.op != tokEq {
			return nil, false
		}
		var lit *litExpr
		if f, ok := n.l.(*fieldExpr); ok && f.f == fieldOrigin {
			lit, _ = n.r.(*litExpr)
		} else if f, ok := n.r.(*fieldExpr); ok && f.f == fieldOrigin {
			lit, _ = n.l.(*litExpr)
		}
		if lit == nil || lit.v.kind != 's' {
			return nil, false
		}
		return []core.PeerID{core.PeerID(lit.v.s)}, true
	case *inExpr:
		f, ok := n.l.(*fieldExpr)
		if !ok || f.f != fieldOrigin {
			return nil, false
		}
		out := []core.PeerID{}
		for _, o := range n.opts {
			if o.kind == 's' {
				out = append(out, core.PeerID(o.s))
			}
		}
		return out, true
	}
	return nil, false
}

// lower emits postfix code for a subtree, folding leaf-free subtrees
// into literals.
func (b *progBuilder) lower(e expr, code []instr) []instr {
	if v, ok := foldConst(e); ok {
		return append(code, instr{op: opLit, a: b.lit(v)})
	}
	switch n := e.(type) {
	case *fieldExpr:
		k := leafKey{kind: leafOrigin}
		switch n.f {
		case fieldRel:
			k.kind = leafRel
		case fieldOp:
			k.kind = leafOp
		}
		return append(code, instr{op: opLeaf, a: b.leaf(k)})
	case *attrExpr:
		k := leafKey{kind: leafAttr, replace: n.replace, byName: n.byName, name: n.name, idx: n.idx}
		return append(code, instr{op: opLeaf, a: b.leaf(k)})
	case *cmpExpr:
		code = b.lower(n.l, code)
		code = b.lower(n.r, code)
		op := map[tokenKind]opcode{tokEq: opEq, tokNe: opNe, tokLt: opLt, tokLe: opLe, tokGt: opGt, tokGe: opGe}[n.op]
		return append(code, instr{op: op})
	case *inExpr:
		code = b.lower(n.l, code)
		b.pr.inSets = append(b.pr.inSets, n.opts)
		return append(code, instr{op: opIn, a: int32(len(b.pr.inSets) - 1)})
	case *likeExpr:
		code = b.lower(n.l, code)
		b.pr.patterns = append(b.pr.patterns, n.pattern)
		return append(code, instr{op: opLike, a: int32(len(b.pr.patterns) - 1)})
	case *notExpr:
		code = b.lower(n.e, code)
		return append(code, instr{op: opNot})
	case *andExpr:
		code = b.lower(n.l, code)
		code = b.lower(n.r, code)
		return append(code, instr{op: opAnd})
	case *orExpr:
		code = b.lower(n.l, code)
		code = b.lower(n.r, code)
		return append(code, instr{op: opOr})
	}
	// Unknown node (cannot happen for parser output): evaluate via the
	// interpreter per update by falling back to a never-true literal is
	// wrong, so panic loudly in development.
	panic("trust: unknown expression node in compiler")
}

func (b *progBuilder) leaf(k leafKey) int32 {
	if i, ok := b.leafIdx[k]; ok {
		return i
	}
	lf := leaf{kind: k.kind, replace: k.replace, byName: k.byName, name: k.name, idx: k.idx}
	if k.byName && b.schema != nil {
		// Resolve attr('name') once per relation at compile time; the
		// per-eval cost becomes one map lookup.
		lf.relIdx = make(map[string]int)
		for _, rn := range b.schema.Names() {
			if rel, ok := b.schema.Relation(rn); ok {
				lf.relIdx[rn] = rel.AttrIndex(k.name)
			}
		}
	}
	i := int32(len(b.pr.leaves))
	b.pr.leaves = append(b.pr.leaves, lf)
	b.leafIdx[k] = i
	return i
}

func (b *progBuilder) lit(v val) int32 {
	if i, ok := b.litIdx[v]; ok {
		return i
	}
	i := int32(len(b.pr.lits))
	b.pr.lits = append(b.pr.lits, v)
	b.litIdx[v] = i
	return i
}

// stackDepth simulates the operand stack to size the scratch slice.
func stackDepth(code []instr) int {
	depth, max := 0, 0
	for _, in := range code {
		switch in.op {
		case opLeaf, opLit:
			depth++
		case opNot, opIn, opLike:
			// pop 1 push 1
		default:
			depth--
		}
		if depth > max {
			max = depth
		}
	}
	return max
}
