package trust

import (
	"fmt"
	"testing"

	"orchestra/internal/core"
)

// differentialUpdates is a spread of updates exercising every leaf the
// predicate language can read: origins, operations, relations, attribute
// values (old and new side), and tuples of different shapes.
func differentialUpdates() []core.Update {
	var out []core.Update
	for _, origin := range []core.PeerID{"p1", "p2", "vip", "anon", ""} {
		out = append(out,
			core.Insert("F", core.Strs("rat", "prot1", "immune-response"), origin),
			core.Insert("F", core.Strs("mouse", "prot2", "metabolism"), origin),
			core.Delete("F", core.Strs("rat", "prot1", "immune-response"), origin),
			core.Modify("F", core.Strs("rat", "prot1", "immune-response"),
				core.Strs("rat", "prot1", "cell-metab"), origin),
			core.Insert("G", core.Strs("x"), origin),
		)
	}
	return out
}

// policyCorpus is the set of policy texts the compiled-vs-interpreted
// differential sweeps: origin dispatch, IN sets, constant folding,
// attribute predicates by name and index, operation and relation tests,
// boolean structure, and delegation-free duplicates.
var policyCorpus = []string{
	"priority 2 when origin = 'p1'\npriority 1 when origin = 'p2'",
	"priority 3 when origin in ('p1', 'p2', 'vip')",
	"priority 2 when true",
	"priority 5 when 1 = 2\npriority 1 when true",
	"priority 4 when 1 < 2 and 'x' = 'x'",
	"priority 3 when attr('organism') = 'rat' and attr('function') like 'immune%'",
	"priority 2 when attr(0) = 'mouse'",
	"priority 2 when op = 'ins'\npriority 3 when op = 'del'",
	"priority 2 when rel = 'F' and origin <> 'anon'",
	"priority 3 when not (origin = 'anon' or origin = '')",
	"priority 7 when origin = 'vip' and attr('protein') = 'prot1'\npriority 1 when true",
	"priority 2 when newattr('function') = 'cell-metab'",
	"priority 2 when attr('organism') in ('rat', 'dog')",
	"priority 9 when origin = 'vip'\npriority 9 when origin = 'vip'", // duplicate, deduped
	"priority 3 when origin = 'p1'\npriority 2 when origin = 'p1'",   // same origin, two tiers
}

// TestCompiledMatchesInterpreted is the policy-level differential: for
// every corpus policy and every update, the compiled decision program and
// the AST interpreter must return bit-identical priorities — with and
// without a schema bound.
func TestCompiledMatchesInterpreted(t *testing.T) {
	s := schema(t)
	updates := differentialUpdates()
	for i, text := range policyCorpus {
		for _, bind := range []*core.Schema{nil, s} {
			comp := MustParse(text)
			interp := MustParse(text).WithInterpreted()
			if bind != nil {
				comp.WithSchema(bind)
				interp.WithSchema(bind)
			}
			for j, u := range updates {
				if c, iv := comp.Priority(u), interp.Priority(u); c != iv {
					t.Errorf("policy %d update %d (schema=%v): compiled=%d interpreted=%d\n%s",
						i, j, bind != nil, c, iv, text)
				}
			}
		}
	}
}

// TestOriginDispatch: pure origin-equality and origin-IN rules compile
// into the dispatch map, leaving no general rules to scan per decision.
func TestOriginDispatch(t *testing.T) {
	p := MustParse("priority 3 when origin = 'a'\npriority 2 when origin in ('b', 'c')")
	prog := p.compiled()
	if len(prog.rules) != 0 {
		t.Fatalf("origin rules left %d general rules", len(prog.rules))
	}
	want := map[core.PeerID]int{"a": 3, "b": 2, "c": 2}
	for id, prio := range want {
		if got := prog.originPrio[id]; got != prio {
			t.Errorf("dispatch[%s] = %d, want %d", id, got, prio)
		}
	}
	if got := p.Priority(ins("z", "r", "p", "f")); got != 0 {
		t.Errorf("unlisted origin priority = %d", got)
	}
}

// TestConstantFolding: leaf-free predicates fold at compile time — an
// always-true rule becomes the program's constant floor, an always-false
// rule vanishes.
func TestConstantFolding(t *testing.T) {
	p := MustParse("priority 2 when 1 < 2 and 'x' = 'x'\npriority 9 when 1 = 2")
	prog := p.compiled()
	if prog.constPrio != 2 {
		t.Errorf("constPrio = %d, want 2", prog.constPrio)
	}
	if len(prog.rules) != 0 || len(prog.originPrio) != 0 {
		t.Errorf("folded policy kept rules: %d general, %d origin", len(prog.rules), len(prog.originPrio))
	}
	if got := p.Priority(ins("anyone", "a", "b", "c")); got != 2 {
		t.Errorf("priority = %d, want 2", got)
	}
}

// TestCompiledRuleOrdering: general rules are sorted by priority
// descending so evaluation can stop at the first match — the first match
// IS the max.
func TestCompiledRuleOrdering(t *testing.T) {
	p := MustParse(
		"priority 1 when attr(0) = 'a'\npriority 5 when attr(0) = 'b'\npriority 3 when attr(0) = 'c'")
	prog := p.compiled()
	if len(prog.rules) != 3 {
		t.Fatalf("rules = %d", len(prog.rules))
	}
	for i := 1; i < len(prog.rules); i++ {
		if prog.rules[i-1].prio < prog.rules[i].prio {
			t.Fatalf("rules not sorted desc: %d then %d", prog.rules[i-1].prio, prog.rules[i].prio)
		}
	}
}

// TestPolicyAddDedup pins the duplicate-rule suppression: an identical
// (priority, predicate) pair registers once, while the same predicate at a
// different priority stays a distinct rule.
func TestPolicyAddDedup(t *testing.T) {
	p := NewPolicy()
	p.MustAdd(2, "origin = 'a'")
	if err := p.Add(2, "origin = 'a'"); err != nil {
		t.Fatalf("duplicate add errored: %v", err)
	}
	if p.Len() != 1 {
		t.Fatalf("duplicate rule registered: %d rules", p.Len())
	}
	p.MustAdd(3, "origin = 'a'") // different priority: a real second rule
	if p.Len() != 2 {
		t.Fatalf("distinct-priority rule deduped: %d rules", p.Len())
	}
	if got := p.Priority(ins("a", "x", "y", "z")); got != 3 {
		t.Errorf("priority = %d, want 3", got)
	}
	// Parse dedupes too: the textual form round-trips to the deduped set.
	q := MustParse("priority 9 when origin = 'vip'\npriority 9 when origin = 'vip'")
	if q.Len() != 1 {
		t.Errorf("Parse kept duplicate rule: %d rules", q.Len())
	}
}

// TestOriginOnlyAnalysis: the compiled program reports whether every
// decision reads only the update's origin — the validity condition for the
// author-set priority caches.
func TestOriginOnlyAnalysis(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"priority 2 when origin = 'a'", true},
		{"priority 2 when origin in ('a', 'b')", true},
		{"priority 2 when true", true},
		{"priority 2 when origin = 'a'\npriority 1 when attr(0) = 'x'", false},
		{"priority 2 when op = 'ins'", false},
		{"priority 2 when rel = 'F'", false},
		{"priority 2 when origin = 'a' and attr('organism') = 'rat'", false},
	}
	for _, c := range cases {
		p := MustParse(c.text).WithSchema(schema(t))
		if got := p.OriginOnly(); got != c.want {
			t.Errorf("OriginOnly(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestInterpretedEscapeHatch: WithInterpreted switches the evaluator and
// reports it, without changing any decision.
func TestInterpretedEscapeHatch(t *testing.T) {
	p := MustParse("priority 2 when origin = 'a'").WithInterpreted()
	if !p.Interpreted() {
		t.Fatal("Interpreted() = false after WithInterpreted")
	}
	if got := p.Priority(ins("a", "x", "y", "z")); got != 2 {
		t.Errorf("interpreted priority = %d", got)
	}
	if MustParse("priority 1 when true").Interpreted() {
		t.Error("default policy reports interpreted")
	}
}

// TestCompiledConcurrentEval: a compiled policy serves concurrent
// evaluations (each goroutine gets its own scratch from the pool); run
// with -race this pins the safety claim.
func TestCompiledConcurrentEval(t *testing.T) {
	p := MustParse("priority 3 when attr('organism') = 'rat' and origin in ('a', 'b')\npriority 1 when true").
		WithSchema(schema(t))
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 200; i++ {
				u := ins(fmt.Sprintf("%c", 'a'+g%3), "rat", "p", "f")
				if got := p.Priority(u); got == 0 {
					t.Errorf("concurrent eval returned 0")
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
