package trust

import (
	"testing"
)

// FuzzTrustParse: the textual policy format must never panic on arbitrary
// input, and every accepted policy must satisfy the Parse(p.String())
// fixpoint — the rendered form re-parses to an identical rendering, so the
// persisted `trust` table rows always round-trip across recovery.
func FuzzTrustParse(f *testing.F) {
	seeds := []string{
		"",
		"priority 1 when true",
		"priority 2 when origin = 'p1'\npriority 1 when origin = 'p2'",
		"priority 3 when origin in ('a', 'b', 'c')",
		"priority 4 when attr('organism') = 'rat' and attr('function') like 'immune%'",
		"priority 2 when op = 'ins' and rel = 'F'",
		"priority 5 when not (attr(0) = 'x' or newattr(1) <> 'y')",
		"delegate 'pd' priority 3",
		"priority 2 when origin = 'a'\ndelegate 'b' priority 3\ndelegate 'o''brien' priority 1",
		"# comment\n-- also comment\n\npriority 1 when 1 < 2",
		"priority -1 when true",
		"priority 1 when",
		"delegate priority 2",
		"delegate 'x' priority 0",
		"priority 9999999999999999999999 when true",
		"priority 1 when origin = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Parse(text)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		rendered := p.String()
		q, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered policy failed to re-parse: %v\nrendered: %q\ninput: %q", err, rendered, text)
		}
		if again := q.String(); again != rendered {
			t.Fatalf("Parse(String) not a fixpoint:\nfirst:  %q\nsecond: %q\ninput: %q", rendered, again, text)
		}
		// An accepted policy must also evaluate without panicking, in both
		// modes (compilation runs on first use).
		u := ins("pa", "rat", "prot1", "immune")
		if c, i := p.Priority(u), q.WithInterpreted().Priority(u); c != i {
			t.Fatalf("compiled=%d interpreted=%d for %q", c, i, rendered)
		}
	})
}
