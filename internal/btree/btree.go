// Package btree implements an in-memory B-tree with ordered iteration,
// generic over key and value types. It backs the tables and indexes of the
// reldb relational engine used by the central update store.
//
// The tree is not safe for concurrent use; reldb serializes access.
package btree

import "sort"

// degree is the minimum number of children of an internal node (except the
// root); nodes hold between degree-1 and 2*degree-1 items.
const degree = 16

// maxItems is the maximum number of items per node.
const maxItems = 2*degree - 1

// Tree is a B-tree mapping K to V under the given ordering.
type Tree[K, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
}

type item[K, V any] struct {
	key K
	val V
}

type node[K, V any] struct {
	items    []item[K, V]
	children []*node[K, V] // nil for leaves
}

// New returns an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less}
}

// Len returns the number of items.
func (t *Tree[K, V]) Len() int { return t.size }

// search finds the position of key in n.items: the index and whether it is
// an exact match.
func (t *Tree[K, V]) search(n *node[K, V], key K) (int, bool) {
	i := sort.Search(len(n.items), func(i int) bool { return !t.less(n.items[i].key, key) })
	if i < len(n.items) && !t.less(key, n.items[i].key) {
		return i, true
	}
	return i, false
}

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	var zero V
	n := t.root
	for n != nil {
		i, eq := t.search(n, key)
		if eq {
			return n.items[i].val, true
		}
		if n.children == nil {
			return zero, false
		}
		n = n.children[i]
	}
	return zero, false
}

// Has reports whether key is present.
func (t *Tree[K, V]) Has(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Put stores val under key, replacing any existing value. It reports
// whether a previous value was replaced.
func (t *Tree[K, V]) Put(key K, val V) bool {
	if t.root == nil {
		t.root = &node[K, V]{items: []item[K, V]{{key: key, val: val}}}
		t.size = 1
		return false
	}
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node[K, V]{children: []*node[K, V]{old}}
		t.splitChild(t.root, 0)
	}
	replaced := t.insertNonFull(t.root, key, val)
	if !replaced {
		t.size++
	}
	return replaced
}

// splitChild splits the full child i of n around its median item.
func (t *Tree[K, V]) splitChild(n *node[K, V], i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	midItem := child.items[mid]

	right := &node[K, V]{items: append([]item[K, V](nil), child.items[mid+1:]...)}
	if child.children != nil {
		right.children = append([]*node[K, V](nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, item[K, V]{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = midItem
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (t *Tree[K, V]) insertNonFull(n *node[K, V], key K, val V) bool {
	for {
		i, eq := t.search(n, key)
		if eq {
			n.items[i].val = val
			return true
		}
		if n.children == nil {
			n.items = append(n.items, item[K, V]{})
			copy(n.items[i+1:], n.items[i:])
			n.items[i] = item[K, V]{key: key, val: val}
			return false
		}
		if len(n.children[i].items) == maxItems {
			t.splitChild(n, i)
			if !t.less(key, n.items[i].key) && !t.less(n.items[i].key, key) {
				n.items[i].val = val
				return true
			}
			if t.less(n.items[i].key, key) {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key and reports whether it was present.
func (t *Tree[K, V]) Delete(key K) bool {
	if t.root == nil {
		return false
	}
	deleted := t.delete(t.root, key)
	if len(t.root.items) == 0 {
		if t.root.children == nil {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[K, V]) delete(n *node[K, V], key K) bool {
	i, eq := t.search(n, key)
	if n.children == nil {
		if !eq {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if eq {
		// Replace with predecessor from the left subtree, then delete the
		// predecessor from it.
		child := n.children[i]
		if len(child.items) >= degree {
			pred := t.max(child)
			n.items[i] = pred
			return t.delete(t.prepareChild(n, i), pred.key)
		}
		right := n.children[i+1]
		if len(right.items) >= degree {
			succ := t.min(right)
			n.items[i] = succ
			return t.delete(t.prepareChild(n, i+1), succ.key)
		}
		// Merge children around the deleted item.
		t.mergeChildren(n, i)
		return t.delete(child, key)
	}
	return t.delete(t.prepareChild(n, i), key)
}

// prepareChild ensures n.children[i] has at least degree items before
// descending, borrowing from siblings or merging.
func (t *Tree[K, V]) prepareChild(n *node[K, V], i int) *node[K, V] {
	child := n.children[i]
	if len(child.items) >= degree {
		return child
	}
	// Borrow from the left sibling.
	if i > 0 && len(n.children[i-1].items) >= degree {
		left := n.children[i-1]
		child.items = append(child.items, item[K, V]{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if child.children != nil {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return child
	}
	// Borrow from the right sibling.
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if child.children != nil {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return child
	}
	// Merge with a sibling.
	if i > 0 {
		t.mergeChildren(n, i-1)
		return n.children[i-1]
	}
	t.mergeChildren(n, i)
	return n.children[i]
}

// mergeChildren merges children i and i+1 around item i.
func (t *Tree[K, V]) mergeChildren(n *node[K, V], i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	if left.children != nil {
		left.children = append(left.children, right.children...)
	}
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (t *Tree[K, V]) min(n *node[K, V]) item[K, V] {
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0]
}

func (t *Tree[K, V]) max(n *node[K, V]) item[K, V] {
	for n.children != nil {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil || t.size == 0 {
		var k K
		var v V
		return k, v, false
	}
	it := t.min(t.root)
	return it.key, it.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil || t.size == 0 {
		var k K
		var v V
		return k, v, false
	}
	it := t.max(t.root)
	return it.key, it.val, true
}

// Ascend visits all items in ascending key order until fn returns false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[K, V]) ascend(n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	for i, it := range n.items {
		if n.children != nil && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(it.key, it.val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendRange visits items with ge <= key < lt in ascending order until fn
// returns false.
func (t *Tree[K, V]) AscendRange(ge, lt K, fn func(key K, val V) bool) {
	t.ascendRange(t.root, ge, lt, fn)
}

func (t *Tree[K, V]) ascendRange(n *node[K, V], ge, lt K, fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	i := sort.Search(len(n.items), func(i int) bool { return !t.less(n.items[i].key, ge) })
	for ; i < len(n.items); i++ {
		if n.children != nil && !t.ascendRange(n.children[i], ge, lt, fn) {
			return false
		}
		if !t.less(n.items[i].key, lt) {
			return false
		}
		if !fn(n.items[i].key, n.items[i].val) {
			return false
		}
	}
	if n.children != nil {
		return t.ascendRange(n.children[len(n.children)-1], ge, lt, fn)
	}
	return true
}

// Clear removes all items.
func (t *Tree[K, V]) Clear() {
	t.root = nil
	t.size = 0
}
