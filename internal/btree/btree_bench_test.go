package btree

import (
	"math/rand"
	"testing"
)

func BenchmarkPutSequential(b *testing.B) {
	tr := intTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(i, "v")
	}
}

func BenchmarkPutRandom(b *testing.B) {
	tr := intTree()
	r := rand.New(rand.NewSource(1))
	keys := make([]int, b.N)
	for i := range keys {
		keys[i] = r.Int()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], "v")
	}
}

func BenchmarkGet(b *testing.B) {
	tr := intTree()
	const n = 100_000
	for i := 0; i < n; i++ {
		tr.Put(i, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(i % n)
	}
}

func BenchmarkDelete(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Put(i, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Delete(i)
	}
}

func BenchmarkAscendRange(b *testing.B) {
	tr := intTree()
	const n = 100_000
	for i := 0; i < n; i++ {
		tr.Put(i, "v")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.AscendRange(n/2, n/2+100, func(int, string) bool {
			count++
			return true
		})
	}
}
