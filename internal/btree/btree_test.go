package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, string] {
	return New[int, string](func(a, b int) bool { return a < b })
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Len() != 0 {
		t.Error("empty tree should have Len 0")
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty tree")
	}
	if tr.Delete(1) {
		t.Error("Delete on empty tree")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree")
	}
	tr.Ascend(func(int, string) bool { t.Error("Ascend visited something"); return true })
}

func TestPutGetDelete(t *testing.T) {
	tr := intTree()
	if tr.Put(1, "a") {
		t.Error("first Put should not replace")
	}
	if !tr.Put(1, "b") {
		t.Error("second Put should replace")
	}
	if v, ok := tr.Get(1); !ok || v != "b" {
		t.Errorf("Get = %q %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Delete(1) || tr.Delete(1) {
		t.Error("Delete semantics broken")
	}
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

func TestLargeSequential(t *testing.T) {
	tr := intTree()
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Put(i, "v")
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		if !tr.Has(i) {
			t.Fatalf("missing key %d", i)
		}
	}
	k, _, _ := tr.Min()
	if k != 0 {
		t.Errorf("Min = %d", k)
	}
	k, _, _ = tr.Max()
	if k != n-1 {
		t.Errorf("Max = %d", k)
	}
	// Delete every other key.
	for i := 0; i < n; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		if tr.Has(i) != (i%2 == 1) {
			t.Fatalf("key %d presence wrong", i)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(1)).Perm(1000)
	for _, k := range perm {
		tr.Put(k, "")
	}
	prev := -1
	count := 0
	tr.Ascend(func(k int, _ string) bool {
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != 1000 {
		t.Errorf("visited %d", count)
	}
	// Early stop.
	count = 0
	tr.Ascend(func(k int, _ string) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Put(i*2, "") // even keys 0..198
	}
	var got []int
	tr.AscendRange(10, 30, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int{10, 12, 14, 16, 18, 20, 22, 24, 26, 28}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Range starting between keys.
	got = got[:0]
	tr.AscendRange(11, 15, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 12 || got[1] != 14 {
		t.Fatalf("got %v", got)
	}
	// Empty range.
	got = got[:0]
	tr.AscendRange(15, 15, func(k int, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 0 {
		t.Fatalf("empty range got %v", got)
	}
	// Early stop in range.
	n := 0
	tr.AscendRange(0, 1000, func(k int, _ string) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop in range visited %d", n)
	}
}

func TestClear(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Put(i, "")
	}
	tr.Clear()
	if tr.Len() != 0 || tr.Has(5) {
		t.Error("Clear did not empty the tree")
	}
	tr.Put(1, "x")
	if tr.Len() != 1 {
		t.Error("tree unusable after Clear")
	}
}

// TestAgainstReference drives random operations against a map+sort oracle.
func TestAgainstReference(t *testing.T) {
	tr := intTree()
	ref := map[int]string{}
	r := rand.New(rand.NewSource(99))
	const ops = 50_000
	for i := 0; i < ops; i++ {
		k := r.Intn(2000)
		switch r.Intn(3) {
		case 0:
			v := string(rune('a' + r.Intn(26)))
			gotReplaced := tr.Put(k, v)
			_, wantReplaced := ref[k]
			if gotReplaced != wantReplaced {
				t.Fatalf("op %d: Put(%d) replaced=%v want %v", i, k, gotReplaced, wantReplaced)
			}
			ref[k] = v
		case 1:
			got := tr.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v want %v", i, k, got, want)
			}
			delete(ref, k)
		default:
			got, gotOK := tr.Get(k)
			want, wantOK := ref[k]
			if gotOK != wantOK || got != want {
				t.Fatalf("op %d: Get(%d) = %q/%v want %q/%v", i, k, got, gotOK, want, wantOK)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != ref %d", i, tr.Len(), len(ref))
		}
	}
	// Final full-order check.
	keys := make([]int, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	i := 0
	tr.Ascend(func(k int, v string) bool {
		if i >= len(keys) || k != keys[i] || v != ref[k] {
			t.Fatalf("iteration mismatch at %d: %d/%q", i, k, v)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("iterated %d of %d", i, len(keys))
	}
}

// TestQuickInsertDelete: after inserting a set and deleting a subset, the
// remaining membership is exact.
func TestQuickInsertDelete(t *testing.T) {
	prop := func(ins []uint16, del []uint16) bool {
		tr := intTree()
		present := map[int]bool{}
		for _, k := range ins {
			tr.Put(int(k), "")
			present[int(k)] = true
		}
		for _, k := range del {
			got := tr.Delete(int(k))
			if got != present[int(k)] {
				return false
			}
			delete(present, int(k))
		}
		if tr.Len() != len(present) {
			return false
		}
		for k := range present {
			if !tr.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New[string, int](func(a, b string) bool { return a < b })
	words := []string{"mouse", "rat", "dog", "cat", "zebra", "ant"}
	for i, w := range words {
		tr.Put(w, i)
	}
	k, _, _ := tr.Min()
	if k != "ant" {
		t.Errorf("Min = %q", k)
	}
	k, _, _ = tr.Max()
	if k != "zebra" {
		t.Errorf("Max = %q", k)
	}
}
