// Package workload generates the synthetic bioinformatics workload of §6:
// it mimics the process of updating a curated database like SWISS-PROT.
// Each transaction is a series of insertions or replacements over the
// Function relation, with update values chosen according to a heavy-tailed
// Zipfian distribution (s = 1.5) over a catalogue of protein functions.
// When a new key is inserted, a secondary table of database
// cross-references receives on average 7.3 tuples referencing the new key.
//
// Cross-reference accessions are derived deterministically from the key, so
// concurrent curators creating the same entry insert identical references
// (identical operations do not conflict); their Function values, drawn
// independently, do conflict — which is the contention the experiments
// measure.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"orchestra/internal/core"
)

// ZipfS is the Zipfian characteristic exponent from §6.
const ZipfS = 1.5

// DefaultXRefMean is the average number of cross-reference tuples per new
// primary key from §6.
const DefaultXRefMean = 7.3

// Config parameterizes a generator.
type Config struct {
	// Seed makes the stream deterministic.
	Seed int64
	// TxnSize is the number of primary-table updates per transaction.
	TxnSize int
	// KeySpace is the number of distinct (organism, protein) keys edits
	// range over; contention grows as it shrinks.
	KeySpace int
	// XRefMean overrides DefaultXRefMean when positive.
	XRefMean float64
	// InsertOnly disables replacements (for append-only baselines).
	InsertOnly bool
}

// Generator produces update streams against peers' instances.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// Schema returns the workload schema: Function(organism, protein, function)
// with key (organism, protein), and XRef(organism, protein, db, accession)
// with key (organism, protein, db) and a foreign key into Function.
func Schema() *core.Schema {
	fn := core.NewRelation("Function", 2, "organism", "protein", "function")
	xref := core.NewRelation("XRef", 3, "organism", "protein", "db", "accession")
	xref.ForeignKeys = []core.ForeignKey{{Attrs: []int{0, 1}, RefRel: "Function"}}
	return core.MustSchema(fn, xref)
}

// New returns a generator.
func New(cfg Config) *Generator {
	if cfg.TxnSize <= 0 {
		cfg.TxnSize = 1
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 500
	}
	if cfg.XRefMean <= 0 {
		cfg.XRefMean = DefaultXRefMean
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, ZipfS, 1, uint64(len(Functions)-1)),
	}
}

// key returns the i-th (organism, protein) key of the key space.
func (g *Generator) key(i int) (organism, protein string) {
	return Organisms[i%len(Organisms)], fmt.Sprintf("P%05d", i)
}

// function draws a Zipf-distributed protein function.
func (g *Generator) function() string {
	return Functions[g.zipf.Uint64()]
}

// NextUpdates produces one transaction's worth of updates for a peer:
// TxnSize primary-table insertions or replacements against the peer's
// current instance, plus cross-reference insertions for newly created keys.
// The updates are internally consistent (each primary key touched once).
func (g *Generator) NextUpdates(inst *core.Instance, peer core.PeerID) []core.Update {
	var out []core.Update
	used := map[int]bool{}
	for len(used) < g.cfg.TxnSize && len(used) < g.cfg.KeySpace {
		ki := g.rng.Intn(g.cfg.KeySpace)
		if used[ki] {
			continue
		}
		used[ki] = true
		org, prot := g.key(ki)
		keyT := core.Strs(org, prot)
		cur, exists := inst.Lookup("Function", keyT)
		if exists && !g.cfg.InsertOnly {
			// Replacement: curate the function value to a new draw.
			next := g.function()
			if cur[2].Str() == next {
				// Re-draw once; if the heavy tail insists, bump to the
				// lexicographically adjacent term so the update is a real
				// replacement.
				next = g.function()
				if cur[2].Str() == next {
					next = Functions[(indexOfFunction(next)+1)%len(Functions)]
				}
			}
			out = append(out, core.Modify("Function", cur, core.Strs(org, prot, next), peer))
			continue
		}
		if exists {
			continue // InsertOnly and key taken: skip
		}
		out = append(out, core.Insert("Function", core.Strs(org, prot, g.function()), peer))
		out = append(out, g.xrefs(org, prot, peer)...)
	}
	return out
}

// xrefs builds the deterministic cross-reference insertions for a new key.
func (g *Generator) xrefs(org, prot string, peer core.PeerID) []core.Update {
	var out []core.Update
	p := g.cfg.XRefMean / float64(len(XRefDBs))
	n := 0
	for _, db := range XRefDBs {
		// Deterministic per-(key, db) membership so every peer generates
		// the same reference set for a key.
		if stableFloat(org+"/"+prot+"/"+db) < p {
			out = append(out, core.Insert("XRef",
				core.Strs(org, prot, db, accession(org, prot, db)), peer))
			n++
		}
	}
	if n == 0 {
		db := XRefDBs[stableHash(org+prot)%uint32(len(XRefDBs))]
		out = append(out, core.Insert("XRef",
			core.Strs(org, prot, db, accession(org, prot, db)), peer))
	}
	return out
}

// accession derives a stable accession string for a (key, db) pair.
func accession(org, prot, db string) string {
	return fmt.Sprintf("%s-%08x", db[:2], stableHash(org+"|"+prot+"|"+db))
}

func stableHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// stableFloat maps a string to [0, 1) deterministically.
func stableFloat(s string) float64 {
	return float64(stableHash(s)) / float64(1<<32)
}

func indexOfFunction(name string) int {
	for i, f := range Functions {
		if f == name {
			return i
		}
	}
	return 0
}
