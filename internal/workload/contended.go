package workload

import (
	"fmt"

	"orchestra/internal/core"
)

// ContendedCandidates builds the standard core-reconciliation benchmark
// batch: n single-insert transactions from n distinct peers where every two
// transactions share a key, so half the batch mutually conflicts. It is the
// single source of truth for the workload measured by both
// BenchmarkEngineReconcile / BenchmarkAblationParallelism and the
// BENCH_core.json suite of cmd/orchestra-bench, keeping their numbers
// comparable across PRs. The schema must contain the relation named by rel
// with at least three string attributes and a two-attribute key (e.g.
// F(organism, protein, function)).
func ContendedCandidates(schema *core.Schema, rel string, n int) ([]*core.Candidate, error) {
	graph := core.NewAntecedentGraph(schema)
	cands := make([]*core.Candidate, 0, n)
	for j := 0; j < n; j++ {
		key := j / 2 // every two transactions share a key
		x := core.NewTransaction(core.TxnID{Origin: core.PeerID(fmt.Sprintf("p%d", j)), Seq: 0},
			core.Insert(rel, core.Strs("org", fmt.Sprintf("p%d", key), fmt.Sprintf("f%d", j)), "x"))
		if err := graph.Add(x); err != nil {
			return nil, err
		}
		ext, err := graph.Extension(x.ID, nil)
		if err != nil {
			return nil, err
		}
		cands = append(cands, &core.Candidate{Txn: x, Priority: 1, Ext: ext})
	}
	return cands, nil
}
