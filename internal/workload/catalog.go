package workload

// Catalogue data for the SWISS-PROT-style synthetic workload: organisms,
// protein function terms (sampled Zipfian, s = 1.5, per §6), and the
// cross-reference databases used for the secondary table.

// Organisms is a sample of species mnemonics in SWISS-PROT style.
var Organisms = []string{
	"human", "mouse", "rat", "bovin", "yeast", "ecoli", "drome", "caeel",
	"arath", "danre", "xenla", "chick", "pig", "rabit", "sheep", "canfa",
	"felca", "horse", "gorgo", "pantr", "macmu", "soybn", "maize", "orysa",
	"schpo", "candida", "neucr", "dicdi", "plaf7", "tryb2", "leima", "bacsu",
	"mycge", "mycpn", "helpy", "haein", "syny3", "aquae", "themar", "deira",
}

// Functions is a sample of protein function descriptions; update values are
// drawn from it with a heavy-tailed Zipfian distribution so a few functions
// dominate, as in curated protein databases.
var Functions = []string{
	"atp binding", "dna binding", "rna binding", "zinc ion binding",
	"metal ion binding", "protein kinase activity", "hydrolase activity",
	"transferase activity", "oxidoreductase activity", "ligase activity",
	"isomerase activity", "lyase activity", "gtp binding",
	"calcium ion binding", "actin binding", "structural molecule activity",
	"electron transport", "proton transport", "ion transport",
	"signal transduction", "cell adhesion", "cell cycle regulation",
	"apoptosis regulation", "immune response", "inflammatory response",
	"transcription regulation", "translation regulation", "dna repair",
	"dna replication", "protein folding", "protein transport",
	"proteolysis", "ubiquitin conjugation", "glycolysis",
	"gluconeogenesis", "tricarboxylic acid cycle", "fatty acid biosynthesis",
	"fatty acid oxidation", "amino acid biosynthesis", "nucleotide biosynthesis",
	"cell wall biogenesis", "lipid metabolism", "carbohydrate metabolism",
	"cell-metab", "cell-resp", "immune", "photosynthesis",
	"nitrogen fixation", "chemotaxis", "flagellar motility",
	"sporulation", "quorum sensing", "antibiotic resistance",
	"heat shock response", "oxidative stress response", "osmotic regulation",
	"circadian rhythm", "neurotransmitter secretion", "synaptic transmission",
	"muscle contraction", "blood coagulation", "complement activation",
	"antigen presentation", "cytokine activity", "growth factor activity",
	"hormone activity", "receptor activity", "ion channel activity",
	"transporter activity", "motor activity", "chaperone activity",
	"antioxidant activity", "peroxidase activity", "catalase activity",
	"superoxide dismutase activity", "protease inhibitor activity",
	"nuclease activity", "helicase activity", "topoisomerase activity",
	"polymerase activity", "phosphatase activity", "sulfotransferase activity",
	"methyltransferase activity", "acetyltransferase activity",
	"glycosyltransferase activity", "carboxylase activity",
	"decarboxylase activity", "dehydrogenase activity", "reductase activity",
	"synthase activity", "cyclase activity", "esterase activity",
	"lipase activity", "amylase activity", "cellulase activity",
	"chitinase activity", "lysozyme activity", "toxin activity",
	"storage protein", "structural constituent of ribosome",
	"extracellular matrix constituent", "viral capsid assembly",
}

// XRefDBs is a sample of cross-reference database names; each new primary
// key gains references into a random subset averaging XRefMean entries.
var XRefDBs = []string{
	"EMBL", "GenBank", "PIR", "PDB", "RefSeq", "UniGene",
	"InterPro", "Pfam", "PROSITE", "PRINTS", "KEGG", "GO",
	"OMIM", "FlyBase", "MGI", "SGD",
}
