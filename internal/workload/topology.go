package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"orchestra/internal/core"
)

// TopologyKind names a delegation-graph shape for the trust-at-scale
// workload: who delegates to whom, with what priority caps.
type TopologyKind string

const (
	// Star: one hub delegating to every leaf, every leaf delegating back
	// to the hub — the curated-database shape (one SWISS-PROT-style
	// authority, many downstream consumers).
	Star TopologyKind = "star"
	// Chain: peer i delegates to peer i+1; trust attenuates hop by hop
	// through the path-bottleneck caps.
	Chain TopologyKind = "chain"
	// Clique: disjoint cliques of bounded size, all-pairs delegation
	// within each — collaborating subcommunities. Bounding the clique
	// size keeps the edge count linear in the peer count.
	Clique TopologyKind = "clique"
	// DAG: each peer delegates to a few random higher-numbered peers —
	// the general acyclic web of Gatterbauer & Suciu-style referrals.
	DAG TopologyKind = "dag"
)

// Topologies lists every kind, in the order benchmarks sweep them.
var Topologies = []TopologyKind{Star, Chain, Clique, DAG}

// ParseTopology maps a flag string to its kind.
func ParseTopology(s string) (TopologyKind, error) {
	for _, k := range Topologies {
		if s == string(k) {
			return k, nil
		}
	}
	return "", fmt.Errorf("workload: unknown trust topology %q (want star|chain|clique|dag)", s)
}

// TopologyConfig parameterizes a TrustTopology.
type TopologyConfig struct {
	Kind  TopologyKind
	Peers int
	// Seed makes every cap and edge deterministic.
	Seed int64
	// CliqueSize bounds clique membership (default 8); irrelevant for the
	// other kinds.
	CliqueSize int
	// DAGOutDegree bounds the random out-degree (default 3); irrelevant
	// for the other kinds.
	DAGOutDegree int
}

// trustEdge is one delegation: to the target peer index, capped.
type trustEdge struct {
	to  int
	cap int
}

// TrustTopology is a generated confederation-scale trust configuration:
// per peer, a direct textual policy (its own acceptance rules) and a set
// of delegation edges. The textual forms are what stores persist and what
// the trust graph resolves; the generator itself never evaluates anything.
type TrustTopology struct {
	kind  TopologyKind
	peers []core.PeerID
	prio  []int         // each peer's self-rule priority
	edges [][]trustEdge // delegations, by delegator index
}

// NewTrustTopology generates the topology. Every peer vouches for its own
// origin at a small deterministic priority; the delegation edges then
// spread that vouching through the graph under path-bottleneck caps.
func NewTrustTopology(cfg TopologyConfig) (*TrustTopology, error) {
	if cfg.Peers < 2 {
		return nil, fmt.Errorf("workload: trust topology needs >= 2 peers, got %d", cfg.Peers)
	}
	if cfg.CliqueSize <= 1 {
		cfg.CliqueSize = 8
	}
	if cfg.DAGOutDegree <= 0 {
		cfg.DAGOutDegree = 3
	}
	n := cfg.Peers
	tt := &TrustTopology{
		kind:  cfg.Kind,
		peers: make([]core.PeerID, n),
		prio:  make([]int, n),
		edges: make([][]trustEdge, n),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < n; i++ {
		tt.peers[i] = core.PeerID(fmt.Sprintf("p%04d", i))
		tt.prio[i] = 1 + rng.Intn(3)
	}
	switch cfg.Kind {
	case Star:
		for i := 1; i < n; i++ {
			tt.edges[0] = append(tt.edges[0], trustEdge{to: i, cap: 1 + rng.Intn(3)})
			tt.edges[i] = append(tt.edges[i], trustEdge{to: 0, cap: 1 + rng.Intn(2)})
		}
	case Chain:
		for i := 0; i < n-1; i++ {
			tt.edges[i] = append(tt.edges[i], trustEdge{to: i + 1, cap: 1 + rng.Intn(4)})
		}
	case Clique:
		for lo := 0; lo < n; lo += cfg.CliqueSize {
			hi := lo + cfg.CliqueSize
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				for j := lo; j < hi; j++ {
					if i != j {
						tt.edges[i] = append(tt.edges[i], trustEdge{to: j, cap: 1 + rng.Intn(3)})
					}
				}
			}
		}
	case DAG:
		for i := 0; i < n-1; i++ {
			out := 1 + rng.Intn(cfg.DAGOutDegree)
			seen := map[int]bool{}
			for k := 0; k < out; k++ {
				to := i + 1 + rng.Intn(n-i-1)
				if seen[to] {
					continue
				}
				seen[to] = true
				tt.edges[i] = append(tt.edges[i], trustEdge{to: to, cap: 1 + rng.Intn(4)})
			}
		}
	default:
		return nil, fmt.Errorf("workload: unknown trust topology kind %q", cfg.Kind)
	}
	return tt, nil
}

// Kind returns the topology's shape.
func (t *TrustTopology) Kind() TopologyKind { return t.kind }

// Len returns the number of peers.
func (t *TrustTopology) Len() int { return len(t.peers) }

// PeerID returns the i-th peer's ID.
func (t *TrustTopology) PeerID(i int) core.PeerID { return t.peers[i] }

// PeerIDs returns every peer ID in index order.
func (t *TrustTopology) PeerIDs() []core.PeerID {
	return append([]core.PeerID(nil), t.peers...)
}

// Edges returns the total delegation count across the topology.
func (t *TrustTopology) Edges() int {
	total := 0
	for _, es := range t.edges {
		total += len(es)
	}
	return total
}

// DirectPolicy renders peer i's delegation-free textual policy: its own
// acceptance rules only. Harnesses register these first (stores refuse
// delegations to peers they have never seen), then upgrade each peer to
// Policy via SetTrust.
func (t *TrustTopology) DirectPolicy(i int) string {
	return fmt.Sprintf("priority %d when origin = '%s'\n", t.prio[i], t.peers[i])
}

// Policy renders peer i's full textual policy: the direct rules plus the
// topology's delegation edges.
func (t *TrustTopology) Policy(i int) string {
	var b strings.Builder
	b.WriteString(t.DirectPolicy(i))
	for _, e := range t.edges[i] {
		fmt.Fprintf(&b, "delegate '%s' priority %d\n", t.peers[e.to], e.cap)
	}
	return b.String()
}
