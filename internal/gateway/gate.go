package gateway

import (
	"net/http"
	"sync/atomic"
	"time"
)

// gate is the queue-depth backpressure valve: at most slots requests run
// concurrently, at most maxQueue more wait (each for at most queueWait),
// and everything beyond that is shed immediately. Shedding with a
// Retry-After instead of queueing unboundedly is what keeps an overloaded
// gateway answering instead of collapsing — latency stays bounded by
// queueWait and memory by slots+maxQueue.
type gate struct {
	slots     chan struct{}
	queued    atomic.Int64
	maxQueue  int64
	queueWait time.Duration
}

func newGate(slots, maxQueue int, queueWait time.Duration) *gate {
	if slots <= 0 {
		return nil
	}
	g := &gate{
		slots:     make(chan struct{}, slots),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
	}
	for i := 0; i < slots; i++ {
		g.slots <- struct{}{}
	}
	return g
}

// enter tries to claim a slot, waiting in the bounded queue if none is
// free. It returns a release func on admission, or false if the request
// must be shed. A nil gate admits everything.
func (g *gate) enter(r *http.Request) (func(), bool) {
	if g == nil {
		return func() {}, true
	}
	select {
	case <-g.slots:
		return g.release, true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return nil, false
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.queueWait)
	defer timer.Stop()
	select {
	case <-g.slots:
		return g.release, true
	case <-timer.C:
		return nil, false
	case <-r.Context().Done():
		return nil, false
	}
}

func (g *gate) release() { g.slots <- struct{}{} }

// retryAfter estimates how long a shed client should back off: one queue
// wait is the horizon at which today's queue has drained or been shed.
func (g *gate) retryAfter() time.Duration {
	if g == nil || g.queueWait <= 0 {
		return time.Second
	}
	return g.queueWait
}
