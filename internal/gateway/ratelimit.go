package gateway

import (
	"sync"
	"time"
)

// limiter is a per-group token-bucket rate limiter. Each group (tenant)
// refills at rate tokens/second up to burst; a request costs one token.
// Groups the gateway has never seen start with a full bucket, so bursts up
// to the bucket size pass untouched and only sustained overload is shaped.
// When a request is bounced, the limiter reports how long until the bucket
// holds a whole token again — the Retry-After hint.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter builds a limiter; rate <= 0 disables limiting (allow always).
func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &limiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from the group's bucket if it holds one. A nil
// limiter always allows. On refusal it returns the wait until the next
// whole token.
func (l *limiter) allow(group string, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[group]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[group] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}
