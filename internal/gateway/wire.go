package gateway

import (
	"fmt"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// The gateway's JSON wire format. It deliberately mirrors the paper's
// vocabulary (transactions of tuple-level updates, antecedents, epochs,
// reconciliations) rather than the Go structs: clients are external and
// the JSON shape is a public contract. Tuples cross the wire as string
// vectors — every built-in schema is string-valued; non-string values
// render through their canonical textual form.

// WireTxnID is a transaction identifier X_{origin:seq}.
type WireTxnID struct {
	Origin string `json:"origin"`
	Seq    uint64 `json:"seq"`
}

func (w WireTxnID) id() core.TxnID {
	return core.TxnID{Origin: core.PeerID(w.Origin), Seq: w.Seq}
}

func wireID(id core.TxnID) WireTxnID {
	return WireTxnID{Origin: string(id.Origin), Seq: id.Seq}
}

// WireUpdate is one tuple-level change: op is "insert", "delete", or
// "modify"; new is the replacement tuple for "modify" only.
type WireUpdate struct {
	Op    string   `json:"op"`
	Rel   string   `json:"rel"`
	Tuple []string `json:"tuple"`
	New   []string `json:"new,omitempty"`
}

// WireTxn is a transaction. On publish the client supplies seq and
// updates (antecedents optional); epoch and order appear only in
// responses, assigned by the store.
type WireTxn struct {
	Seq         uint64       `json:"seq"`
	Updates     []WireUpdate `json:"updates"`
	Antecedents []WireTxnID  `json:"antecedents,omitempty"`
	Epoch       int64        `json:"epoch,omitempty"`
	Order       uint64       `json:"order,omitempty"`
}

// WireCandidate is one reconciliation candidate: the transaction, the
// peer's priority for it, and its antecedent extension in application
// order.
type WireCandidate struct {
	Txn      WireTxn   `json:"txn"`
	Priority int       `json:"priority"`
	Ext      []WireTxn `json:"ext,omitempty"`
}

func wireTuple(t core.Tuple) []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t))
	for i, v := range t {
		if v.Kind() == core.KindString {
			out[i] = v.Str()
		} else {
			out[i] = v.String()
		}
	}
	return out
}

func coreTuple(ss []string) core.Tuple {
	if ss == nil {
		return nil
	}
	return core.Strs(ss...)
}

func wireUpdate(u core.Update) WireUpdate {
	w := WireUpdate{Rel: u.Rel, Tuple: wireTuple(u.Tuple), New: wireTuple(u.New)}
	switch u.Op {
	case core.OpInsert:
		w.Op = "insert"
	case core.OpDelete:
		w.Op = "delete"
	case core.OpModify:
		w.Op = "modify"
	}
	return w
}

func (w WireUpdate) update(origin core.PeerID) (core.Update, error) {
	switch w.Op {
	case "insert":
		return core.Insert(w.Rel, coreTuple(w.Tuple), origin), nil
	case "delete":
		return core.Delete(w.Rel, coreTuple(w.Tuple), origin), nil
	case "modify":
		return core.Modify(w.Rel, coreTuple(w.Tuple), coreTuple(w.New), origin), nil
	default:
		return core.Update{}, fmt.Errorf("unknown op %q (want insert|delete|modify)", w.Op)
	}
}

func wireTxn(x *core.Transaction, antecedents []core.TxnID) WireTxn {
	w := WireTxn{
		Seq:     x.ID.Seq,
		Updates: make([]WireUpdate, len(x.Updates)),
		Epoch:   int64(x.Epoch),
		Order:   x.Order,
	}
	for i, u := range x.Updates {
		w.Updates[i] = wireUpdate(u)
	}
	for _, a := range antecedents {
		w.Antecedents = append(w.Antecedents, wireID(a))
	}
	return w
}

// publishedTxn converts one client-shaped transaction into the store's
// form, forcing every update's origin to the publishing peer and
// validating against the schema.
func (w WireTxn) publishedTxn(peer core.PeerID, schema *core.Schema) (store.PublishedTxn, error) {
	ups := make([]core.Update, len(w.Updates))
	for i, wu := range w.Updates {
		u, err := wu.update(peer)
		if err != nil {
			return store.PublishedTxn{}, fmt.Errorf("txn %d update %d: %w", w.Seq, i, err)
		}
		ups[i] = u
	}
	x := core.NewTransaction(core.TxnID{Origin: peer, Seq: w.Seq}, ups...)
	if err := x.Validate(schema); err != nil {
		return store.PublishedTxn{}, err
	}
	pt := store.PublishedTxn{Txn: x}
	for _, a := range w.Antecedents {
		pt.Antecedents = append(pt.Antecedents, a.id())
	}
	return pt, nil
}

func wireIDs(ids []WireTxnID) []core.TxnID {
	if ids == nil {
		return nil
	}
	out := make([]core.TxnID, len(ids))
	for i, w := range ids {
		out[i] = w.id()
	}
	return out
}

func wirePublished(pts []store.PublishedTxn) []WireTxn {
	out := make([]WireTxn, len(pts))
	for i, pt := range pts {
		out[i] = wireTxn(pt.Txn, pt.Antecedents)
	}
	return out
}
