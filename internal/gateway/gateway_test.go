package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
)

// The gateway contract suite: the serving surface must speak the full
// store capability set over JSON, reject unauthenticated requests, bounce
// sustained per-group overload with 429 + Retry-After, shed load with
// 503 + Retry-After instead of queueing unboundedly, and let a client that
// retries a keyed publish — after a 429, a shed, or a lost response —
// dedupe exactly once through the store's idempotency layer.

func testSchema() *core.Schema {
	return core.MustSchema(core.NewRelation("F", 2, "organism", "protein", "function"))
}

// newTestGateway mounts a gateway over a fresh in-memory central store on
// an httptest server.
func newTestGateway(t *testing.T, opts Options) (*httptest.Server, *central.Store, *metrics.GatewayCounters) {
	t.Helper()
	schema := testSchema()
	cs := central.MustOpenMemory(schema)
	if opts.Counters == nil {
		opts.Counters = &metrics.GatewayCounters{}
	}
	srv := httptest.NewServer(New(cs, schema, opts))
	t.Cleanup(func() {
		srv.Close()
		cs.Close()
	})
	return srv, cs, opts.Counters
}

// call performs one JSON request and decodes the response body.
func call(t *testing.T, method, url string, body any, hdr map[string]string) (int, map[string]json.RawMessage, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]json.RawMessage{}
	if len(raw) > 0 && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, out, resp.Header
}

func intField(t *testing.T, m map[string]json.RawMessage, key string) int64 {
	t.Helper()
	var n int64
	if err := json.Unmarshal(m[key], &n); err != nil {
		t.Fatalf("field %q: %v (have %v)", key, err, m)
	}
	return n
}

func register(t *testing.T, url, peer string) {
	t.Helper()
	code, _, _ := call(t, "POST", url+"/v1/peers",
		map[string]string{"peer": peer, "policy": "priority 1 when true"}, nil)
	if code != http.StatusOK {
		t.Fatalf("register %s: status %d", peer, code)
	}
}

func publishOne(t *testing.T, url, peer string, seq uint64, fn string, hdr map[string]string) (int, map[string]json.RawMessage, http.Header) {
	t.Helper()
	return call(t, "POST", url+"/v1/publish", map[string]any{
		"peer": peer,
		"txns": []map[string]any{{
			"seq": seq,
			"updates": []map[string]any{{
				"op": "insert", "rel": "F", "tuple": []string{"rat", fmt.Sprintf("p%d", seq), fn},
			}},
		}},
	}, hdr)
}

// TestGatewayEndToEnd drives the whole §5.2 protocol through the JSON
// surface: register, publish, begin, decide, recno, watch, snapshot,
// replay, capabilities.
func TestGatewayEndToEnd(t *testing.T) {
	srv, cs, _ := newTestGateway(t, Options{})
	url := srv.URL

	register(t, url, "alice")
	register(t, url, "bob")

	code, body, _ := publishOne(t, url, "alice", 1, "immune", nil)
	if code != http.StatusOK || intField(t, body, "epoch") != 1 {
		t.Fatalf("publish: status %d body %v", code, body)
	}

	// bob reconciles: begin surfaces alice's txn as a candidate, decide
	// accepts it.
	code, body, _ = call(t, "POST", url+"/v1/reconcile/begin", map[string]string{"peer": "bob"}, nil)
	if code != http.StatusOK {
		t.Fatalf("begin: status %d", code)
	}
	var cands []WireCandidate
	if err := json.Unmarshal(body["candidates"], &cands); err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Txn.Seq != 1 || len(cands[0].Txn.Updates) != 1 {
		t.Fatalf("candidates: %+v", cands)
	}
	if got := cands[0].Txn.Updates[0].Tuple; got[0] != "rat" || got[2] != "immune" {
		t.Fatalf("candidate tuple: %v", got)
	}
	recno := intField(t, body, "recno")
	code, _, _ = call(t, "POST", url+"/v1/reconcile/decide", map[string]any{
		"peer": "bob", "recno": recno,
		"accepted": []map[string]any{{"origin": "alice", "seq": 1}},
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("decide: status %d", code)
	}
	code, body, _ = call(t, "GET", url+"/v1/recno?peer=bob", nil, nil)
	if code != http.StatusOK || intField(t, body, "recno") != recno {
		t.Fatalf("recno: status %d body %v", code, body)
	}

	// Long-poll watch from 0 sees the published epoch.
	code, body, _ = call(t, "GET", url+"/v1/watch?from=0&wait_ms=2000", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("watch: status %d", code)
	}
	var events []watchEventJSON
	if err := json.Unmarshal(body["events"], &events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].From != 0 || len(events[0].Txns) != 1 {
		t.Fatalf("watch events: %+v", events)
	}
	if intField(t, body, "cursor") < 1 {
		t.Fatalf("watch cursor: %v", body)
	}

	// Snapshot + tail replay and full replay.
	code, body, _ = call(t, "POST", url+"/v1/snapshot", nil, nil)
	if code != http.StatusOK || intField(t, body, "epoch") != 1 {
		t.Fatalf("snapshot: status %d body %v", code, body)
	}
	code, body, _ = call(t, "GET", url+"/v1/snapshot/latest", nil, nil)
	if code != http.StatusOK || string(body["found"]) != "true" {
		t.Fatalf("snapshot/latest: status %d body %v", code, body)
	}
	code, body, _ = call(t, "GET", url+"/v1/replay?peer=bob", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("replay: status %d", code)
	}
	var txns []WireTxn
	if err := json.Unmarshal(body["txns"], &txns); err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0].Epoch != 1 {
		t.Fatalf("replay txns: %+v", txns)
	}

	code, body, _ = call(t, "GET", url+"/v1/capabilities", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("capabilities: status %d", code)
	}
	for _, cap := range []string{"replay", "snapshot", "watch", "dedupe"} {
		if string(body[cap]) != "true" {
			t.Errorf("capability %s: %v", cap, string(body[cap]))
		}
	}

	// The store agrees with everything the JSON surface reported.
	if n, err := cs.CurrentRecno(context.Background(), "bob"); err != nil || int64(n) != recno {
		t.Errorf("store recno: %d %v", n, err)
	}
}

// TestGatewayErrorMapping pins the HTTP vocabulary: malformed requests are
// 400, unknown peers 404.
func TestGatewayErrorMapping(t *testing.T) {
	srv, _, _ := newTestGateway(t, Options{})
	url := srv.URL

	if code, _, _ := call(t, "GET", url+"/v1/recno?peer=nobody", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown peer: status %d, want 404", code)
	}
	code, _, _ := call(t, "POST", url+"/v1/peers", map[string]string{"peer": "x", "policy": "garbage"}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("bad policy: status %d, want 400", code)
	}
	register(t, url, "alice")
	code, _, _ = call(t, "POST", url+"/v1/publish", map[string]any{
		"peer": "alice",
		"txns": []map[string]any{{"seq": 1, "updates": []map[string]any{{"op": "levitate", "rel": "F", "tuple": []string{"a", "b", "c"}}}}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", code)
	}
}

// TestGatewayAuthRejection: the pluggable hook sees every gated request;
// a rejection is 401 before any store work, and the ops surface stays
// reachable without credentials.
func TestGatewayAuthRejection(t *testing.T) {
	srv, _, counters := newTestGateway(t, Options{
		Auth: func(r *http.Request) error {
			if r.Header.Get("Authorization") != "Bearer s3cret" {
				return fmt.Errorf("bad token")
			}
			return nil
		},
	})
	url := srv.URL

	if code, _, _ := call(t, "POST", url+"/v1/peers",
		map[string]string{"peer": "alice", "policy": "priority 1 when true"}, nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated register: status %d, want 401", code)
	}
	if got := counters.Snapshot().AuthDenied; got != 1 {
		t.Errorf("AuthDenied = %d, want 1", got)
	}
	code, _, _ := call(t, "POST", url+"/v1/peers",
		map[string]string{"peer": "alice", "policy": "priority 1 when true"},
		map[string]string{"Authorization": "Bearer s3cret"})
	if code != http.StatusOK {
		t.Fatalf("authenticated register: status %d", code)
	}
	// healthz needs no credentials: load balancers probe it.
	if code, _, _ := call(t, "GET", url+"/v1/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}
}

// TestGatewayRateLimit: a group that exhausts its bucket gets 429 with a
// Retry-After hint; other groups' buckets are untouched.
func TestGatewayRateLimit(t *testing.T) {
	srv, _, counters := newTestGateway(t, Options{Rate: 2, Burst: 3})
	url := srv.URL
	register(t, url, "alice") // spends one default-group token

	g1 := map[string]string{GroupHeader: "tenant-1"}
	for i := 0; i < 3; i++ {
		if code, _, _ := call(t, "GET", url+"/v1/capabilities", nil, g1); code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}
	code, _, hdr := call(t, "GET", url+"/v1/capabilities", nil, g1)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: status %d, want 429", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if got := counters.Snapshot().RateLimited; got != 1 {
		t.Errorf("RateLimited = %d, want 1", got)
	}
	// tenant-2 still has a full bucket.
	if code, _, _ := call(t, "GET", url+"/v1/capabilities", nil, map[string]string{GroupHeader: "tenant-2"}); code != http.StatusOK {
		t.Errorf("other group caught the limit: status %d", code)
	}
}

// blockingStore wraps a store so the test can hold publishes open and
// saturate the gateway's in-flight slots deterministically.
type blockingStore struct {
	store.Store
	gate chan struct{}
}

func (s *blockingStore) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	select {
	case <-s.gate:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return s.Store.Publish(ctx, peer, txns)
}

// TestGatewayBackpressureShedding: with every slot and queue position
// full, further requests are shed immediately with 503 + Retry-After —
// and the gateway keeps answering its ops surface instead of collapsing.
func TestGatewayBackpressureShedding(t *testing.T) {
	schema := testSchema()
	cs := central.MustOpenMemory(schema)
	defer cs.Close()
	bs := &blockingStore{Store: cs, gate: make(chan struct{})}
	counters := &metrics.GatewayCounters{}
	srv := httptest.NewServer(New(bs, schema, Options{
		MaxInFlight: 1,
		MaxQueue:    1,
		QueueWait:   2 * time.Second, // queued request outlives the test body
		Counters:    counters,
	}))
	defer srv.Close()
	url := srv.URL
	register(t, url, "alice")

	// Saturate: one publish occupies the slot, one queues, the rest must
	// shed. The first two block until the gate opens.
	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := publishOne(t, url, "alice", uint64(i+1), "fn", nil)
			codes <- code
		}(i)
	}
	// Wait until both are inside (slot + queue), then probe.
	deadline := time.Now().Add(2 * time.Second)
	for counters.InFlight() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let the second request reach the queue

	shedCode, _, hdr := publishOne(t, url, "alice", 99, "fn", nil)
	if shedCode != http.StatusServiceUnavailable {
		t.Errorf("saturated request: status %d, want 503", shedCode)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", hdr.Get("Retry-After"))
	}
	if code, _, _ := call(t, "GET", url+"/v1/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz under saturation: status %d", code)
	}

	close(bs.gate) // drain
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted publish: status %d", code)
		}
	}
	snap := counters.Snapshot()
	if snap.Shed == 0 {
		t.Error("no sheds recorded despite saturation")
	}
	if snap.InFlightPeak != 1 {
		t.Errorf("InFlightPeak = %d, want 1 (the gate admitted too much)", snap.InFlightPeak)
	}
}

// TestGatewayIdempotentRetry: the satellite contract — a keyed publish
// that is rate-limited and then retried dedupes exactly once. The first
// attempt lands; the immediate retry bounces off the empty bucket with
// 429 + Retry-After; the client honors the hint and retries with the SAME
// Idempotency-Key; the store answers from its dedup state: same epoch,
// one transaction, no double-publish.
func TestGatewayIdempotentRetry(t *testing.T) {
	srv, cs, _ := newTestGateway(t, Options{Rate: 2, Burst: 1})
	url := srv.URL
	register(t, url, "alice") // drains the default group's only burst token

	key := map[string]string{GroupHeader: "t", IdempotencyKeyHeader: "client-42/publish/1"}
	code, body, _ := publishOne(t, url, "alice", 1, "immune", key)
	if code != http.StatusOK {
		t.Fatalf("first keyed publish: status %d", code)
	}
	epoch := intField(t, body, "epoch")

	code, _, hdr := publishOne(t, url, "alice", 1, "immune", key)
	if code != http.StatusTooManyRequests {
		t.Fatalf("immediate retry: status %d, want 429", code)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q", hdr.Get("Retry-After"))
	}
	time.Sleep(time.Duration(ra) * time.Second)

	code, body, _ = publishOne(t, url, "alice", 1, "immune", key)
	if code != http.StatusOK {
		t.Fatalf("post-backoff retry: status %d", code)
	}
	if got := intField(t, body, "epoch"); got != epoch {
		t.Errorf("retry epoch = %d, want the original %d", got, epoch)
	}
	if hits := cs.Metrics().Snapshot().DedupHits; hits != 1 {
		t.Errorf("DedupHits = %d, want exactly 1", hits)
	}
	// Exactly one transaction exists: the retried publish did not
	// double-apply.
	rec, err := cs.BeginReconciliation(context.Background(), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if rec.ToEpoch != core.Epoch(epoch) {
		t.Errorf("store frontier = %d, want %d (no extra epoch)", rec.ToEpoch, epoch)
	}
}

// TestGatewaySSE: the event-stream flavor of watch pushes frontier
// advances as they happen.
func TestGatewaySSE(t *testing.T) {
	srv, _, _ := newTestGateway(t, Options{})
	url := srv.URL
	register(t, url, "alice")

	req, err := http.NewRequest("GET", url+"/v1/watch?from=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	if code, _, _ := publishOne(t, url, "alice", 1, "immune", nil); code != http.StatusOK {
		t.Fatalf("publish: status %d", code)
	}

	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no SSE data line (scan err %v)", sc.Err())
	}
	var ev watchEventJSON
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.To < 1 || len(ev.Txns) != 1 {
		t.Fatalf("SSE event: %+v", ev)
	}
}

// countingStore counts calls so the pool's distribution is observable.
type countingStore struct {
	store.Store
	calls int64
	mu    sync.Mutex
}

func (s *countingStore) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return s.Store.CurrentRecno(ctx, peer)
}

// TestPoolRoundRobin: the connection pool spreads calls across its lanes.
func TestPoolRoundRobin(t *testing.T) {
	schema := testSchema()
	cs := central.MustOpenMemory(schema)
	defer cs.Close()
	if err := cs.RegisterPeer(context.Background(), "a", core.TrustAll(1)); err != nil {
		t.Fatal(err)
	}
	lanes := []*countingStore{{Store: cs}, {Store: cs}, {Store: cs}}
	p := NewPool(lanes[0], lanes[1], lanes[2])
	for i := 0; i < 9; i++ {
		if _, err := p.CurrentRecno(context.Background(), "a"); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range lanes {
		if l.calls != 3 {
			t.Errorf("lane %d served %d calls, want 3", i, l.calls)
		}
	}
}
