package gateway

import (
	"context"
	"sync/atomic"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// Pool fans store operations out over a fixed set of interchangeable
// clients round-robin — the gateway's backend connection pool. A single
// TCP client serializes every in-flight call over one connection; a pool
// of N clients gives the gateway N concurrent lanes to the same
// orchestra-store without any coordination, because the update-store
// protocol is already safe for concurrent callers. Capability questions go
// to the first client (the lanes are interchangeable by construction);
// watch subscriptions stick to the lane that opened them.
type Pool struct {
	stores []store.Store
	next   atomic.Uint64
}

// NewPool builds a pool over the given clients; it panics on an empty set
// (a programming error).
func NewPool(stores ...store.Store) *Pool {
	if len(stores) == 0 {
		panic("gateway: empty store pool")
	}
	return &Pool{stores: stores}
}

func (p *Pool) pick() store.Store {
	return p.stores[p.next.Add(1)%uint64(len(p.stores))]
}

// Store interface, delegated round-robin.

func (p *Pool) RegisterPeer(ctx context.Context, peer core.PeerID, t core.Trust) error {
	return p.pick().RegisterPeer(ctx, peer, t)
}

func (p *Pool) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	return p.pick().Publish(ctx, peer, txns)
}

func (p *Pool) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	return p.pick().BeginReconciliation(ctx, peer)
}

func (p *Pool) RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	return p.pick().RecordDecisions(ctx, peer, recno, accepted, rejected)
}

func (p *Pool) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	return p.pick().RecordDecisionsBatch(ctx, batches)
}

func (p *Pool) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	return p.pick().CurrentRecno(ctx, peer)
}

// Optional capabilities, present whenever the underlying clients carry
// them (the remote client always does; whether they work is the probes'
// answer).

func (p *Pool) CanReplay(ctx context.Context) bool { return store.CanReplay(ctx, p.stores[0]) }

func (p *Pool) ReplayFor(ctx context.Context, peer core.PeerID) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	if rp, ok := p.pick().(store.Replayer); ok {
		return rp.ReplayFor(ctx, peer)
	}
	return nil, nil, errNoCapability("replay")
}

func (p *Pool) CanSnapshot(ctx context.Context) bool { return store.CanSnapshot(ctx, p.stores[0]) }

func (p *Pool) Snapshot(ctx context.Context) (core.Epoch, error) {
	if sn, ok := p.pick().(store.Snapshotter); ok {
		return sn.Snapshot(ctx)
	}
	return 0, errNoCapability("snapshot")
}

func (p *Pool) CompactBefore(ctx context.Context, e core.Epoch) error {
	if sn, ok := p.pick().(store.Snapshotter); ok {
		return sn.CompactBefore(ctx, e)
	}
	return errNoCapability("snapshot")
}

func (p *Pool) LatestSnapshot(ctx context.Context) (*store.Snapshot, error) {
	if sr, ok := p.pick().(store.SnapshotReplayer); ok {
		return sr.LatestSnapshot(ctx)
	}
	return nil, errNoCapability("snapshot")
}

func (p *Pool) ReplayFrom(ctx context.Context, peer core.PeerID, from core.Epoch, afterSeq int64) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	if sr, ok := p.pick().(store.SnapshotReplayer); ok {
		return sr.ReplayFrom(ctx, peer, from, afterSeq)
	}
	return nil, nil, errNoCapability("snapshot")
}

func (p *Pool) CanWatch(ctx context.Context) bool { return store.CanWatch(ctx, p.stores[0]) }

func (p *Pool) WatchFrom(ctx context.Context, from core.Epoch) (<-chan store.WatchEvent, error) {
	if w, ok := p.pick().(store.Watcher); ok {
		return w.WatchFrom(ctx, from)
	}
	return nil, errNoCapability("watch")
}

func (p *Pool) CanDedupe(ctx context.Context) bool { return store.CanDedupe(ctx, p.stores[0]) }

type errNoCapability string

func (e errNoCapability) Error() string {
	return "gateway: backend does not support " + string(e)
}
