// Package gateway fronts an update store with a production-shaped HTTP/JSON
// serving surface: the full store capability set (publish, begin/decide,
// watch via long-poll or SSE, snapshot and replay) behind a pluggable auth
// hook, per-group token-bucket rate limits, and queue-depth backpressure
// that sheds load with Retry-After instead of collapsing. The gateway is an
// http.Handler; cmd/orchestra-gateway mounts it over a pool of TCP clients
// to an orchestra-store, and tests mount it directly over a central store.
//
// Request flow: healthz and metrics bypass every gate; everything else
// passes auth → per-group rate limit → backpressure gate → handler. The
// protective responses are distinguishable by status: 401 (auth), 429 with
// Retry-After (rate limit), 503 with Retry-After (shed). Mutating routes
// accept an Idempotency-Key header that rides to the store's idempotency
// layer, so a client that retries a 429/503/timeout cannot double-publish.
//
// The route/JSON contract is documented in docs/GATEWAY.md.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

// GroupHeader selects the tenant group a request belongs to; the rate
// limiter buckets by its value (empty = the default group), and a
// multi-group gateway routes to the group's store.
const GroupHeader = "X-Orchestra-Group"

// IdempotencyKeyHeader carries the client-minted key for safe retries of
// mutating calls.
const IdempotencyKeyHeader = "Idempotency-Key"

// AuthFunc authenticates a request before any work happens; a non-nil
// error rejects it with 401. The hook sees the raw request, so bearer
// tokens, mTLS peer certs, or signed URLs all fit behind it.
type AuthFunc func(r *http.Request) error

// Options configures a Gateway. The zero value serves a single store with
// no auth, no rate limit, and a 64-slot backpressure gate.
type Options struct {
	// Auth rejects requests before they consume resources. nil = allow.
	Auth AuthFunc

	// Rate is the per-group token refill rate in requests/second; 0
	// disables rate limiting. Burst is the bucket size (default: Rate,
	// at least 1).
	Rate  float64
	Burst int

	// MaxInFlight bounds concurrently served requests (default 64;
	// negative disables the gate). MaxQueue bounds how many more may wait
	// (default 2×MaxInFlight), each for at most QueueWait (default
	// 100ms); beyond that, requests are shed with 503 + Retry-After.
	MaxInFlight int
	MaxQueue    int
	QueueWait   time.Duration

	// WatchWait caps a long-poll watch round trip (default 10s).
	WatchWait time.Duration

	// Stores resolves a group name to its store for multi-group serving.
	// nil = every group is served by the gateway's single store.
	Stores func(group string) (store.Store, error)

	// Counters receives the gateway's health signals; nil = uninstrumented.
	Counters *metrics.GatewayCounters
}

// Gateway is the HTTP serving surface over an update store.
type Gateway struct {
	st      store.Store
	schema  *core.Schema
	opts    Options
	lim     *limiter
	gate    *gate
	mux     *http.ServeMux
	watchW  time.Duration
	started time.Time
}

// New builds a gateway over st (the default group's store).
func New(st store.Store, schema *core.Schema, opts Options) *Gateway {
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 64
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 2 * opts.MaxInFlight
	}
	if opts.QueueWait == 0 {
		opts.QueueWait = 100 * time.Millisecond
	}
	g := &Gateway{
		st:      st,
		schema:  schema,
		opts:    opts,
		lim:     newLimiter(opts.Rate, opts.Burst),
		gate:    newGate(opts.MaxInFlight, opts.MaxQueue, opts.QueueWait),
		mux:     http.NewServeMux(),
		watchW:  opts.WatchWait,
		started: time.Now(),
	}
	if g.watchW <= 0 {
		g.watchW = 10 * time.Second
	}
	g.routes()
	return g
}

func (g *Gateway) routes() {
	// The ops surface: ungated, so health checks and scrapes keep working
	// while the serving surface sheds.
	g.mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /v1/metrics", g.handleMetrics)

	g.handle("POST /v1/peers", "peers", g.handleRegister)
	g.handle("POST /v1/publish", "publish", g.handlePublish)
	g.handle("POST /v1/reconcile/begin", "begin", g.handleBegin)
	g.handle("POST /v1/reconcile/decide", "decide", g.handleDecide)
	g.handle("POST /v1/reconcile/decide-batch", "decide-batch", g.handleDecideBatch)
	g.handle("GET /v1/recno", "recno", g.handleRecno)
	g.handle("GET /v1/capabilities", "capabilities", g.handleCapabilities)
	g.handle("GET /v1/watch", "watch", g.handleWatch)
	g.handle("POST /v1/snapshot", "snapshot", g.handleSnapshot)
	g.handle("GET /v1/snapshot/latest", "snapshot-latest", g.handleSnapshotLatest)
	g.handle("GET /v1/replay", "replay", g.handleReplay)
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// handle wires one gated route: auth, rate limit, backpressure, counters,
// then the handler.
func (g *Gateway) handle(pattern, route string, h func(http.ResponseWriter, *http.Request) error) {
	c := g.opts.Counters
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if g.opts.Auth != nil {
			if err := g.opts.Auth(r); err != nil {
				c.ObserveAuthDenied()
				http.Error(w, fmt.Sprintf("unauthorized: %v", err), http.StatusUnauthorized)
				return
			}
		}
		if ok, wait := g.lim.allow(r.Header.Get(GroupHeader), time.Now()); !ok {
			c.ObserveRateLimited()
			setRetryAfter(w, wait)
			http.Error(w, "rate limit exceeded for group", http.StatusTooManyRequests)
			return
		}
		release, ok := g.gate.enter(r)
		if !ok {
			c.ObserveShed()
			setRetryAfter(w, g.gate.retryAfter())
			http.Error(w, "overloaded: request shed", http.StatusServiceUnavailable)
			return
		}
		defer release()
		c.ObserveStart()
		start := time.Now()
		err := h(w, r)
		c.ObserveEnd(route, time.Since(start), err != nil)
		if err != nil {
			g.writeErr(w, err)
		}
	})
}

// setRetryAfter writes the Retry-After hint in whole seconds (the HTTP
// delta-seconds form), at least 1.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// storeFor resolves the request's group to its backing store.
func (g *Gateway) storeFor(r *http.Request) (store.Store, error) {
	group := r.Header.Get(GroupHeader)
	if g.opts.Stores == nil || group == "" {
		return g.st, nil
	}
	return g.opts.Stores(group)
}

// writeErr maps a store error to the HTTP vocabulary: transient faults are
// 503 (safe to retry, with a hint), unknown peers 404, bad requests 400.
func (g *Gateway) writeErr(w http.ResponseWriter, err error) {
	var br badRequest
	switch {
	case errors.As(err, &br):
		http.Error(w, br.Error(), http.StatusBadRequest)
	case errors.Is(err, store.ErrUnknownPeer):
		http.Error(w, err.Error(), http.StatusNotFound)
	case store.IsTransient(err):
		setRetryAfter(w, time.Second)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// badRequest marks client-caused errors (malformed JSON, unknown ops,
// schema violations) for the 400 mapping.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

func decode[T any](r *http.Request, v *T) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return badRequest{fmt.Errorf("decode request: %w", err)}
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// opCtx attaches the client's idempotency key, if any, to the operation's
// context so the store's dedup layer sees it.
func opCtx(r *http.Request) context.Context {
	if k := r.Header.Get(IdempotencyKeyHeader); k != "" {
		return store.WithIdempotencyKey(r.Context(), store.IdempotencyKey(k))
	}
	return r.Context()
}

// --- Handlers ---

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "uptime_ms": time.Since(g.started).Milliseconds()})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, g.opts.Counters.Snapshot())
}

type registerReq struct {
	Peer   string `json:"peer"`
	Policy string `json:"policy"`
}

func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) error {
	var req registerReq
	if err := decode(r, &req); err != nil {
		return err
	}
	if req.Peer == "" {
		return badRequest{errors.New("missing peer")}
	}
	pol, err := trust.Parse(req.Policy)
	if err != nil {
		return badRequest{fmt.Errorf("policy: %w", err)}
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	if err := st.RegisterPeer(opCtx(r), core.PeerID(req.Peer), pol); err != nil {
		return err
	}
	return writeJSON(w, map[string]any{"ok": true})
}

type publishReq struct {
	Peer string    `json:"peer"`
	Txns []WireTxn `json:"txns"`
}

func (g *Gateway) handlePublish(w http.ResponseWriter, r *http.Request) error {
	var req publishReq
	if err := decode(r, &req); err != nil {
		return err
	}
	peer := core.PeerID(req.Peer)
	pts := make([]store.PublishedTxn, len(req.Txns))
	for i, wt := range req.Txns {
		pt, err := wt.publishedTxn(peer, g.schema)
		if err != nil {
			return badRequest{err}
		}
		pts[i] = pt
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	epoch, err := st.Publish(opCtx(r), peer, pts)
	if err != nil {
		return err
	}
	return writeJSON(w, map[string]any{"epoch": epoch})
}

type beginResp struct {
	Recno      int             `json:"recno"`
	FromEpoch  int64           `json:"from_epoch"`
	ToEpoch    int64           `json:"to_epoch"`
	Candidates []WireCandidate `json:"candidates"`
}

func (g *Gateway) handleBegin(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		Peer string `json:"peer"`
	}
	if err := decode(r, &req); err != nil {
		return err
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	rec, err := st.BeginReconciliation(opCtx(r), core.PeerID(req.Peer))
	if err != nil {
		return err
	}
	resp := beginResp{
		Recno:      rec.Recno,
		FromEpoch:  int64(rec.FromEpoch),
		ToEpoch:    int64(rec.ToEpoch),
		Candidates: make([]WireCandidate, len(rec.Candidates)),
	}
	for i, c := range rec.Candidates {
		wc := WireCandidate{Txn: wireTxn(c.Txn, nil), Priority: c.Priority}
		for _, ext := range c.Ext {
			wc.Ext = append(wc.Ext, wireTxn(ext, nil))
		}
		resp.Candidates[i] = wc
	}
	return writeJSON(w, resp)
}

type decideReq struct {
	Peer     string      `json:"peer"`
	Recno    int         `json:"recno"`
	Accepted []WireTxnID `json:"accepted"`
	Rejected []WireTxnID `json:"rejected"`
}

func (g *Gateway) handleDecide(w http.ResponseWriter, r *http.Request) error {
	var req decideReq
	if err := decode(r, &req); err != nil {
		return err
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	if err := st.RecordDecisions(opCtx(r), core.PeerID(req.Peer), req.Recno,
		wireIDs(req.Accepted), wireIDs(req.Rejected)); err != nil {
		return err
	}
	return writeJSON(w, map[string]any{"ok": true})
}

func (g *Gateway) handleDecideBatch(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		Batches []decideReq `json:"batches"`
	}
	if err := decode(r, &req); err != nil {
		return err
	}
	batches := make([]store.DecisionBatch, len(req.Batches))
	for i, b := range req.Batches {
		batches[i] = store.DecisionBatch{
			Peer:     core.PeerID(b.Peer),
			Recno:    b.Recno,
			Accepted: wireIDs(b.Accepted),
			Rejected: wireIDs(b.Rejected),
		}
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	if err := st.RecordDecisionsBatch(opCtx(r), batches); err != nil {
		return err
	}
	return writeJSON(w, map[string]any{"ok": true})
}

func (g *Gateway) handleRecno(w http.ResponseWriter, r *http.Request) error {
	peer := r.URL.Query().Get("peer")
	if peer == "" {
		return badRequest{errors.New("missing peer parameter")}
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	n, err := st.CurrentRecno(r.Context(), core.PeerID(peer))
	if err != nil {
		return err
	}
	return writeJSON(w, map[string]any{"recno": n})
}

func (g *Gateway) handleCapabilities(w http.ResponseWriter, r *http.Request) error {
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	ctx := r.Context()
	return writeJSON(w, map[string]bool{
		"replay":   store.CanReplay(ctx, st),
		"snapshot": store.CanSnapshot(ctx, st),
		"watch":    store.CanWatch(ctx, st),
		"dedupe":   store.CanDedupe(ctx, st),
	})
}

func (g *Gateway) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	sn, ok := st.(store.Snapshotter)
	if !ok || !store.CanSnapshot(r.Context(), st) {
		return badRequest{errors.New("backend does not support snapshots")}
	}
	epoch, err := sn.Snapshot(opCtx(r))
	if err != nil {
		return err
	}
	return writeJSON(w, map[string]any{"epoch": epoch})
}

func (g *Gateway) handleSnapshotLatest(w http.ResponseWriter, r *http.Request) error {
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	sr, ok := st.(store.SnapshotReplayer)
	if !ok || !store.CanSnapshot(r.Context(), st) {
		return badRequest{errors.New("backend does not support snapshots")}
	}
	snap, err := sr.LatestSnapshot(r.Context())
	if err != nil {
		return err
	}
	if snap == nil {
		return writeJSON(w, map[string]any{"found": false})
	}
	return writeJSON(w, map[string]any{
		"found":   true,
		"epoch":   snap.Epoch,
		"peers":   len(snap.Peers),
		"residue": len(snap.Residue),
	})
}

// handleReplay serves peer reconstruction: without from/after_seq it is the
// full-history ReplayFor; with them, the post-snapshot tail ReplayFrom.
func (g *Gateway) handleReplay(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	peer := core.PeerID(q.Get("peer"))
	if peer == "" {
		return badRequest{errors.New("missing peer parameter")}
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	var (
		txns      []store.PublishedTxn
		decisions map[core.TxnID]core.RestoredDecision
	)
	if q.Get("from") != "" {
		from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
		afterSeq, err2 := strconv.ParseInt(q.Get("after_seq"), 10, 64)
		if err1 != nil || (q.Get("after_seq") != "" && err2 != nil) {
			return badRequest{errors.New("bad from/after_seq parameters")}
		}
		sr, ok := st.(store.SnapshotReplayer)
		if !ok {
			return badRequest{errors.New("backend does not support tail replay")}
		}
		txns, decisions, err = sr.ReplayFrom(r.Context(), peer, core.Epoch(from), afterSeq)
	} else {
		rp, ok := st.(store.Replayer)
		if !ok || !store.CanReplay(r.Context(), st) {
			return badRequest{errors.New("backend does not support replay")}
		}
		txns, decisions, err = rp.ReplayFor(r.Context(), peer)
	}
	if err != nil {
		return err
	}
	type wireDecision struct {
		ID       WireTxnID `json:"id"`
		Accepted bool      `json:"accepted"`
		Seq      int64     `json:"seq"`
	}
	resp := struct {
		Txns      []WireTxn      `json:"txns"`
		Decisions []wireDecision `json:"decisions"`
	}{Txns: wirePublished(txns)}
	for id, d := range decisions {
		resp.Decisions = append(resp.Decisions, wireDecision{ID: wireID(id), Accepted: d.Decision == core.DecisionAccept, Seq: d.Seq})
	}
	return writeJSON(w, resp)
}

// watchResp is one long-poll answer: the contiguous events since `from`
// (possibly none, on timeout) and the cursor to resume from.
type watchResp struct {
	Events []watchEventJSON `json:"events"`
	Cursor int64            `json:"cursor"`
}

type watchEventJSON struct {
	From int64     `json:"from"`
	To   int64     `json:"to"`
	Txns []WireTxn `json:"txns"`
}

// handleWatch serves stable-frontier subscriptions two ways. Default: a
// bounded long-poll — wait up to wait_ms (capped by the gateway's
// WatchWait) for events after `from`, drain whatever is ready, return it
// with the resume cursor. With Accept: text/event-stream: a server-sent
// event stream that pushes events until the client disconnects or the
// subscription breaks (the client resumes from its cursor).
func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	var from int64
	if s := q.Get("from"); s != "" {
		var err error
		if from, err = strconv.ParseInt(s, 10, 64); err != nil {
			return badRequest{errors.New("bad from parameter")}
		}
	}
	st, err := g.storeFor(r)
	if err != nil {
		return err
	}
	wt, ok := st.(store.Watcher)
	if !ok || !store.CanWatch(r.Context(), st) {
		return badRequest{errors.New("backend does not support watch")}
	}
	if r.Header.Get("Accept") == "text/event-stream" {
		return g.watchSSE(w, r, wt, core.Epoch(from))
	}
	wait := g.watchW
	if s := q.Get("wait_ms"); s != "" {
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil || ms < 0 {
			return badRequest{errors.New("bad wait_ms parameter")}
		}
		if d := time.Duration(ms) * time.Millisecond; d < wait {
			wait = d
		}
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch, err := wt.WatchFrom(ctx, core.Epoch(from))
	if err != nil {
		return err
	}
	resp := watchResp{Events: []watchEventJSON{}, Cursor: from}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case ev, ok := <-ch:
		if ok {
			resp.Events = append(resp.Events, toWatchJSON(ev))
			resp.Cursor = int64(ev.To)
			// Drain whatever else is already buffered, without blocking.
			for {
				select {
				case ev, ok := <-ch:
					if !ok {
						return writeJSON(w, resp)
					}
					resp.Events = append(resp.Events, toWatchJSON(ev))
					resp.Cursor = int64(ev.To)
				default:
					return writeJSON(w, resp)
				}
			}
		}
	case <-timer.C:
	case <-r.Context().Done():
	}
	return writeJSON(w, resp)
}

func (g *Gateway) watchSSE(w http.ResponseWriter, r *http.Request, wt store.Watcher, from core.Epoch) error {
	fl, ok := w.(http.Flusher)
	if !ok {
		return errors.New("response writer cannot stream")
	}
	ch, err := wt.WatchFrom(r.Context(), from)
	if err != nil {
		return err
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return nil // subscription broke; the client resumes from its cursor
			}
			if _, err := fmt.Fprintf(w, "event: frontier\ndata: "); err != nil {
				return nil
			}
			if err := enc.Encode(toWatchJSON(ev)); err != nil {
				return nil
			}
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				return nil
			}
			fl.Flush()
		case <-r.Context().Done():
			return nil
		}
	}
}

func toWatchJSON(ev store.WatchEvent) watchEventJSON {
	return watchEventJSON{
		From: int64(ev.From),
		To:   int64(ev.To),
		Txns: wirePublished(ev.Txns),
	}
}
