package core

import "fmt"

// Decision is the outcome assigned to a transaction by a reconciliation.
type Decision uint8

const (
	// DecisionNone means the transaction has not been considered (or is
	// untrusted and therefore never considered as a root).
	DecisionNone Decision = iota
	// DecisionAccept means the transaction's update extension was applied.
	DecisionAccept
	// DecisionReject means the transaction will never be applied; any
	// transaction whose extension contains it is rejected too.
	DecisionReject
	// DecisionDefer means the transaction awaits user conflict resolution;
	// the keys it touches are dirty.
	DecisionDefer
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case DecisionNone:
		return "none"
	case DecisionAccept:
		return "accept"
	case DecisionReject:
		return "reject"
	case DecisionDefer:
		return "defer"
	default:
		return fmt.Sprintf("decision(%d)", uint8(d))
	}
}

// Candidate is one relevant transaction delivered to a reconciling peer by
// the update store: the transaction, the peer's priority for it, and its
// transaction extension (root plus unapplied antecedents, in publication
// order) as of fetch time.
type Candidate struct {
	Txn      *Transaction
	Priority int
	Ext      []*Transaction
}

// Result reports the outcome of one ReconcileUpdates run.
type Result struct {
	Recno int
	// Accepted lists every transaction applied during the run, including
	// antecedents applied as part of an accepted root's extension.
	Accepted []TxnID
	// Rejected lists roots rejected during the run.
	Rejected []TxnID
	// Deferred lists roots left deferred after the run.
	Deferred []TxnID
	// Groups are the conflict groups recorded for the deferred roots.
	Groups []*ConflictGroup
	// Stats capture work counters for benchmarks.
	Stats ReconcileStats
}

// ReconcileStats counts the work done by one reconciliation.
type ReconcileStats struct {
	Candidates      int // relevant trusted transactions considered
	ExtensionTxns   int // total transactions across all extensions
	FlattenedOps    int // total updates across all flattened extensions
	ConflictPairs   int // candidate pairs examined for conflicts
	ConflictsFound  int // conflicting, non-subsuming pairs
	AppliedUpdates  int // updates applied to the instance
	DirtyKeys       int // dirty keys after the run
	DeferredCarried int // previously deferred roots reconsidered

	// Pipeline instrumentation. Workers is the bound used for the parallel
	// stages this run; the *Nanos fields are wall-clock stage latencies.
	// These fields vary run to run and are excluded from the differential
	// serial-vs-parallel comparison (see StripTiming).
	Workers        int   // worker bound for the parallel stages
	CheckNanos     int64 // flatten extensions + CheckState (lines 5-8)
	ConflictNanos  int64 // FindConflicts pair checks (line 9)
	GroupNanos     int64 // DoGroup passes (lines 10-12)
	ApplyNanos     int64 // decision recording + apply loop (lines 13-19)
	SoftStateNanos int64 // UpdateSoftState (lines 20-21)
}

// StripTiming returns a copy of the stats with the nondeterministic
// instrumentation fields zeroed; the remaining counters are identical for
// serial and parallel runs over the same inputs.
func (s ReconcileStats) StripTiming() ReconcileStats {
	s.Workers = 0
	s.CheckNanos, s.ConflictNanos, s.GroupNanos, s.ApplyNanos, s.SoftStateNanos = 0, 0, 0, 0, 0
	return s
}
