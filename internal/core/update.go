package core

import "fmt"

// PeerID identifies a participant in the CDSS.
type PeerID string

// Op is the kind of a single tuple-level update.
type Op uint8

// The three update operations from the paper: insert +R(ā;i), delete
// −R(ā;i), and modify (replacement) R(ā→ā′;i).
const (
	OpInsert Op = iota + 1
	OpDelete
	OpModify
)

// String returns the paper's notation sigil for the op.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "+"
	case OpDelete:
		return "-"
	case OpModify:
		return "~"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Update is one tuple-level change annotated with the identity of its
// originating participant. For OpInsert and OpDelete, Tuple holds the
// inserted/deleted tuple and New is nil. For OpModify, Tuple holds the
// antecedent value ā and New holds the replacement ā′.
type Update struct {
	Op     Op
	Rel    string
	Tuple  Tuple
	New    Tuple // only for OpModify
	Origin PeerID

	// enc caches the canonical encodings the reconciliation hot path needs
	// (full tuple encodings and key projections under the shared schema Σ).
	// It is populated once — at transaction validation or when Flatten emits
	// the update — and shared by copies of the update; it is never mutated
	// afterwards, so concurrent readers are safe. A nil enc means "compute
	// on demand". The cache is ignored by Equal, String, and gob encoding.
	enc *updateEnc
}

// updateEnc is the per-update encoding cache; see Update.enc.
type updateEnc struct {
	tuple string // Tuple.Encode()
	newt  string // New.Encode() ("" when New is nil)
	keyT  string // rel.KeyEnc(Tuple)
	keyN  string // rel.KeyEnc(New) ("" when New is nil)
}

// cacheEnc populates the encoding cache. rel must be the relation the update
// targets under the shared schema. It is idempotent and must not race with
// readers; callers populate it from a single goroutine before the update
// reaches the parallel pipeline stages.
func (u *Update) cacheEnc(rel *Relation) {
	if u.enc != nil {
		return
	}
	e := &updateEnc{tuple: u.Tuple.Encode(), keyT: rel.KeyEnc(u.Tuple)}
	if u.New != nil {
		e.newt = u.New.Encode()
		e.keyN = rel.KeyEnc(u.New)
	}
	u.enc = e
}

// tupleEnc returns Tuple's canonical encoding, cached when available.
func (u *Update) tupleEnc() string {
	if u.enc != nil {
		return u.enc.tuple
	}
	return u.Tuple.Encode()
}

// newEnc returns New's canonical encoding ("" for nil), cached when
// available.
func (u *Update) newEnc() string {
	if u.enc != nil {
		return u.enc.newt
	}
	return u.New.Encode()
}

// keyEncTuple returns rel.KeyEnc(Tuple), cached when available.
func (u *Update) keyEncTuple(rel *Relation) string {
	if u.enc != nil {
		return u.enc.keyT
	}
	return rel.KeyEnc(u.Tuple)
}

// keyEncNew returns rel.KeyEnc(New), cached when available.
func (u *Update) keyEncNew(rel *Relation) string {
	if u.enc != nil {
		return u.enc.keyN
	}
	return rel.KeyEnc(u.New)
}

// Insert builds +rel(t; origin).
func Insert(rel string, t Tuple, origin PeerID) Update {
	return Update{Op: OpInsert, Rel: rel, Tuple: t, Origin: origin}
}

// Delete builds −rel(t; origin).
func Delete(rel string, t Tuple, origin PeerID) Update {
	return Update{Op: OpDelete, Rel: rel, Tuple: t, Origin: origin}
}

// Modify builds rel(old→new; origin).
func Modify(rel string, old, new Tuple, origin PeerID) Update {
	return Update{Op: OpModify, Rel: rel, Tuple: old, New: new, Origin: origin}
}

// Validate checks the update's tuples against the relation definition.
func (u Update) Validate(s *Schema) error {
	r, ok := s.Relation(u.Rel)
	if !ok {
		return fmt.Errorf("core: update over unknown relation %s", u.Rel)
	}
	switch u.Op {
	case OpInsert, OpDelete:
		if u.New != nil {
			return fmt.Errorf("core: %v update must not carry a replacement tuple", u.Op)
		}
		return r.Validate(u.Tuple)
	case OpModify:
		if err := r.Validate(u.Tuple); err != nil {
			return err
		}
		return r.Validate(u.New)
	default:
		return fmt.Errorf("core: unknown update op %d", u.Op)
	}
}

// Equal reports whether two updates are identical operations (same op,
// relation and tuples); origin is ignored, matching the paper's treatment of
// duplicate updates as non-conflicting.
func (u Update) Equal(v Update) bool {
	return u.Op == v.Op && u.Rel == v.Rel && u.Tuple.Equal(v.Tuple) &&
		((u.New == nil) == (v.New == nil)) && u.New.Equal(v.New)
}

// Produces returns the tuple value this update creates in the instance, or
// nil: the inserted tuple for OpInsert, the replacement for OpModify.
func (u Update) Produces() Tuple {
	switch u.Op {
	case OpInsert:
		return u.Tuple
	case OpModify:
		return u.New
	}
	return nil
}

// Consumes returns the antecedent tuple value this update reads/destroys, or
// nil: the deleted tuple for OpDelete, the source for OpModify.
func (u Update) Consumes() Tuple {
	switch u.Op {
	case OpDelete:
		return u.Tuple
	case OpModify:
		return u.Tuple
	}
	return nil
}

// String renders the update in the paper's notation, e.g.
// "+F(rat, prot1, cell-metab; p3)".
func (u Update) String() string {
	switch u.Op {
	case OpInsert:
		return fmt.Sprintf("+%s%s; %s)", u.Rel, trimParen(u.Tuple.String()), u.Origin)
	case OpDelete:
		return fmt.Sprintf("-%s%s; %s)", u.Rel, trimParen(u.Tuple.String()), u.Origin)
	case OpModify:
		return fmt.Sprintf("%s(%s -> %s; %s)", u.Rel, inner(u.Tuple.String()), inner(u.New.String()), u.Origin)
	default:
		return fmt.Sprintf("?%s%s", u.Rel, u.Tuple)
	}
}

// trimParen converts "(a, b)" to "(a, b" + "; origin)" composition helper.
func trimParen(s string) string {
	if len(s) >= 1 && s[len(s)-1] == ')' {
		return s[:len(s)-1]
	}
	return s
}

func inner(s string) string {
	if len(s) >= 2 && s[0] == '(' && s[len(s)-1] == ')' {
		return s[1 : len(s)-1]
	}
	return s
}
