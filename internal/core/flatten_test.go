package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func flatSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(NewRelation("F", 2, "org", "prot", "fn"))
}

func mustFlat(t *testing.T, s *Schema, us ...Update) []Update {
	t.Helper()
	out, err := Flatten(s, us)
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	return out
}

func TestFlattenInsertModifyChain(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Insert("F", Strs("rat", "p1", "a"), "x"),
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x"),
		Modify("F", Strs("rat", "p1", "b"), Strs("rat", "p1", "c"), "x"),
	)
	if len(got) != 1 || got[0].Op != OpInsert || !got[0].Tuple.Equal(Strs("rat", "p1", "c")) {
		t.Fatalf("got %v, want single +F(rat,p1,c)", got)
	}
}

func TestFlattenModifyChainCollapses(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x"),
		Modify("F", Strs("rat", "p1", "b"), Strs("rat", "p1", "c"), "x"),
	)
	if len(got) != 1 || got[0].Op != OpModify ||
		!got[0].Tuple.Equal(Strs("rat", "p1", "a")) || !got[0].New.Equal(Strs("rat", "p1", "c")) {
		t.Fatalf("got %v, want F(a->c)", got)
	}
}

func TestFlattenInsertDeleteVanishes(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Insert("F", Strs("rat", "p1", "a"), "x"),
		Delete("F", Strs("rat", "p1", "a"), "x"),
	)
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestFlattenInsertModifyDelete(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Insert("F", Strs("rat", "p1", "a"), "x"),
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x"),
		Delete("F", Strs("rat", "p1", "b"), "x"),
	)
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestFlattenModifyDeleteBecomesDelete(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x"),
		Delete("F", Strs("rat", "p1", "b"), "x"),
	)
	if len(got) != 1 || got[0].Op != OpDelete || !got[0].Tuple.Equal(Strs("rat", "p1", "a")) {
		t.Fatalf("got %v, want -F(rat,p1,a)", got)
	}
}

func TestFlattenDeleteInsertSameKeyBecomesModify(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Delete("F", Strs("rat", "p1", "a"), "x"),
		Insert("F", Strs("rat", "p1", "b"), "x"),
	)
	if len(got) != 1 || got[0].Op != OpModify ||
		!got[0].Tuple.Equal(Strs("rat", "p1", "a")) || !got[0].New.Equal(Strs("rat", "p1", "b")) {
		t.Fatalf("got %v, want F(a->b)", got)
	}
}

func TestFlattenDeleteInsertSameValueVanishes(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Delete("F", Strs("rat", "p1", "a"), "x"),
		Insert("F", Strs("rat", "p1", "a"), "x"),
	)
	if len(got) != 0 {
		t.Fatalf("got %v, want empty (chain returns to source)", got)
	}
}

func TestFlattenModifyBackToSourceVanishes(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x"),
		Modify("F", Strs("rat", "p1", "b"), Strs("rat", "p1", "a"), "x"),
	)
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestFlattenPaperExample(t *testing.T) {
	// §4.2: [X3:2, X3:3] = [+F(mouse,prot2,cell-resp),
	// F((mouse,prot2,cell-resp)→(mouse,prot3,cell-resp))] minimizes to
	// {+F(mouse,prot3,cell-resp)} (the paper text has a typo; the
	// replacement changes prot2→prot3, so the flattened insert carries the
	// final tuple).
	s := flatSchema(t)
	got := mustFlat(t, s,
		Insert("F", Strs("mouse", "prot2", "cell-resp"), "p3"),
		Modify("F", Strs("mouse", "prot2", "cell-resp"), Strs("mouse", "prot3", "cell-resp"), "p3"),
	)
	if len(got) != 1 || got[0].Op != OpInsert || !got[0].Tuple.Equal(Strs("mouse", "prot3", "cell-resp")) {
		t.Fatalf("got %v", got)
	}
}

func TestFlattenIndependentChains(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Insert("F", Strs("rat", "p1", "a"), "x"),
		Insert("F", Strs("mouse", "p2", "b"), "x"),
		Modify("F", Strs("mouse", "p2", "b"), Strs("mouse", "p2", "c"), "x"),
		Delete("F", Strs("dog", "p3", "d"), "x"),
	)
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 independent updates", got)
	}
}

func TestFlattenIdempotentOps(t *testing.T) {
	s := flatSchema(t)
	got := mustFlat(t, s,
		Insert("F", Strs("rat", "p1", "a"), "x"),
		Insert("F", Strs("rat", "p1", "a"), "y"),
	)
	if len(got) != 1 {
		t.Fatalf("duplicate insert not collapsed: %v", got)
	}
	got = mustFlat(t, s,
		Delete("F", Strs("rat", "p1", "a"), "x"),
		Delete("F", Strs("rat", "p1", "a"), "y"),
	)
	if len(got) != 1 {
		t.Fatalf("duplicate delete not collapsed: %v", got)
	}
	got = mustFlat(t, s,
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "a"), "x"),
	)
	if len(got) != 0 {
		t.Fatalf("identity modify not dropped: %v", got)
	}
}

func TestFlattenErrors(t *testing.T) {
	s := flatSchema(t)
	if _, err := Flatten(s, []Update{Insert("Z", Strs("a", "b", "c"), "x")}); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := Flatten(s, []Update{{Op: Op(9), Rel: "F", Tuple: Strs("a", "b", "c")}}); err == nil {
		t.Error("unknown op should fail")
	}
	// Two live chains colliding on the same value.
	_, err := Flatten(s, []Update{
		Insert("F", Strs("rat", "p1", "a"), "x"),
		Modify("F", Strs("rat", "p2", "b"), Strs("rat", "p1", "a"), "x"),
	})
	if err == nil {
		t.Error("live-value collision should fail")
	}
}

func TestMustFlattenPanics(t *testing.T) {
	s := flatSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustFlatten should panic on malformed input")
		}
	}()
	MustFlatten(s, []Update{Insert("Z", Strs("a", "b", "c"), "x")})
}

// genUpdateSeq produces a random well-formed update sequence against a
// scratch instance, so that the sequence is applicable from the base state.
func genUpdateSeq(r *rand.Rand, s *Schema, base *Instance, n int) []Update {
	inst := base.Clone()
	var seq []Update
	orgs := []string{"rat", "mouse", "dog", "cat"}
	fns := []string{"a", "b", "c", "d", "e"}
	for len(seq) < n {
		org := orgs[r.Intn(len(orgs))]
		prot := []string{"p0", "p1", "p2"}[r.Intn(3)]
		fn := fns[r.Intn(len(fns))]
		key := Strs(org, prot)
		cur, exists := inst.Lookup("F", key)
		var u Update
		switch {
		case !exists:
			u = Insert("F", Strs(org, prot, fn), "x")
		case r.Intn(3) == 0:
			u = Delete("F", cur, "x")
		default:
			u = Modify("F", cur, Strs(org, prot, fn), "x")
		}
		if inst.Apply(u) != nil {
			continue
		}
		seq = append(seq, u)
	}
	return seq
}

// TestFlattenEquivalence is the core flatten property: applying the
// flattened set to any instance where the original sequence applies yields
// the same final instance.
func TestFlattenEquivalence(t *testing.T) {
	s := flatSchema(t)
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		base := NewInstance(s)
		// Seed some tuples so deletes/modifies of pre-existing state occur.
		for i := 0; i < r.Intn(6); i++ {
			org := []string{"rat", "mouse", "dog", "cat"}[r.Intn(4)]
			prot := []string{"p0", "p1", "p2"}[r.Intn(3)]
			_ = base.Apply(Insert("F", Strs(org, prot, "seed"), "x"))
		}
		seq := genUpdateSeq(r, s, base, 1+r.Intn(12))

		direct := base.Clone()
		if err := direct.ApplyAll(seq); err != nil {
			t.Fatalf("trial %d: direct apply: %v", trial, err)
		}
		flat, err := Flatten(s, seq)
		if err != nil {
			t.Fatalf("trial %d: flatten: %v", trial, err)
		}
		viaFlat := base.Clone()
		if err := viaFlat.ApplyAll(flat); err != nil {
			t.Fatalf("trial %d: flattened apply: %v (seq=%v flat=%v)", trial, err, seq, flat)
		}
		if !direct.Equal(viaFlat) {
			t.Fatalf("trial %d: instances diverge\nseq:  %v\nflat: %v", trial, seq, flat)
		}
	}
}

// TestFlattenIdempotent checks Flatten(Flatten(s)) == Flatten(s).
func TestFlattenIdempotent(t *testing.T) {
	s := flatSchema(t)
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		base := NewInstance(s)
		seq := genUpdateSeq(r, s, base, 1+r.Intn(10))
		once, err := Flatten(s, seq)
		if err != nil {
			t.Fatal(err)
		}
		twice, err := Flatten(s, once)
		if err != nil {
			t.Fatalf("re-flatten failed: %v (once=%v)", err, once)
		}
		if len(once) != len(twice) {
			t.Fatalf("not idempotent: %v vs %v", once, twice)
		}
		for i := range once {
			if !once[i].Equal(twice[i]) {
				t.Fatalf("not idempotent at %d: %v vs %v", i, once, twice)
			}
		}
	}
}

// TestFlattenOutputDeterministic ensures sorted output regardless of
// insertion order of independent chains.
func TestFlattenOutputDeterministic(t *testing.T) {
	s := flatSchema(t)
	a := mustFlat(t, s,
		Insert("F", Strs("x", "p", "1"), "o"),
		Insert("F", Strs("a", "p", "1"), "o"),
	)
	b := mustFlat(t, s,
		Insert("F", Strs("a", "p", "1"), "o"),
		Insert("F", Strs("x", "p", "1"), "o"),
	)
	if len(a) != 2 || len(b) != 2 || !a[0].Equal(b[0]) || !a[1].Equal(b[1]) {
		t.Fatalf("non-deterministic output: %v vs %v", a, b)
	}
}

func TestFlattenQuickNeverPanics(t *testing.T) {
	s := flatSchema(t)
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		base := NewInstance(s)
		seq := genUpdateSeq(r, s, base, int(n%16)+1)
		_, err := Flatten(s, seq)
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
