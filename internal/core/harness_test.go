package core

import "testing"

// testLog is a minimal in-memory update store for engine tests: it keeps the
// global publication log (an AntecedentGraph) and each peer's high-water
// mark, and builds Candidates the way the real stores do.
type testLog struct {
	t       *testing.T
	schema  *Schema
	graph   *AntecedentGraph
	watermk map[PeerID]uint64
}

func newTestLog(t *testing.T, s *Schema) *testLog {
	return &testLog{t: t, schema: s, graph: NewAntecedentGraph(s), watermk: make(map[PeerID]uint64)}
}

// publish appends transactions to the global log.
func (l *testLog) publish(xs ...*Transaction) {
	for _, x := range xs {
		if err := l.graph.Add(x); err != nil {
			l.t.Fatalf("publish %s: %v", x.ID, err)
		}
	}
}

// candidates returns the fully trusted transactions published since the
// peer's last fetch, with extensions computed against the engine's applied
// set, and advances the watermark.
func (l *testLog) candidates(e *Engine) []*Candidate {
	from := l.watermk[e.Peer()]
	to := uint64(l.graph.Len())
	l.watermk[e.Peer()] = to
	var out []*Candidate
	for _, x := range l.graph.InOrder(from, to) {
		if x.ID.Origin == e.Peer() {
			continue
		}
		prio := TxnPriority(e.Trust(), x)
		if prio <= 0 {
			continue
		}
		ext, err := l.graph.Extension(x.ID, e.Applied)
		if err != nil {
			l.t.Fatalf("extension %s: %v", x.ID, err)
		}
		out = append(out, &Candidate{Txn: x, Priority: prio, Ext: ext})
	}
	return out
}

// reconcile publishes nothing and reconciles the peer against the log.
func (l *testLog) reconcile(e *Engine) *Result {
	res, err := e.Reconcile(l.candidates(e))
	if err != nil {
		l.t.Fatalf("reconcile %s: %v", e.Peer(), err)
	}
	return res
}

// mustLocal applies a local transaction or fails the test.
func mustLocal(t *testing.T, e *Engine, us ...Update) *Transaction {
	t.Helper()
	x, err := e.NewLocalTransaction(us...)
	if err != nil {
		t.Fatalf("local txn at %s: %v", e.Peer(), err)
	}
	return x
}

// proteinSchema returns the paper's F(organism, protein, function) relation
// with key (organism, protein).
func proteinSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(NewRelation("F", 2, "organism", "protein", "function"))
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	return s
}

// wantTuples asserts the instance contents of one relation.
func wantTuples(t *testing.T, in *Instance, rel string, want ...Tuple) {
	t.Helper()
	got := in.Tuples(rel)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d tuples %v, want %d %v", rel, len(got), got, len(want), want)
	}
	index := make(map[string]bool, len(want))
	for _, w := range want {
		index[w.Encode()] = true
	}
	for _, g := range got {
		if !index[g.Encode()] {
			t.Errorf("%s: unexpected tuple %v", rel, g)
		}
	}
}

// wantIDs asserts a []TxnID matches a set of expected IDs.
func wantIDs(t *testing.T, what string, got []TxnID, want ...TxnID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
	set := NewTxnSet(want...)
	for _, id := range got {
		if !set.Has(id) {
			t.Errorf("%s: unexpected %s (want %v)", what, id, want)
		}
	}
}

func xid(p PeerID, seq uint64) TxnID { return TxnID{Origin: p, Seq: seq} }
