package core

// Provenance tracking: each engine remembers, for every tuple value in its
// instance, the transaction that produced it. When the peer publishes a
// transaction, the producers of the values it consumes are its antecedent
// set (Definition 3) — computed locally by the publisher, which is how the
// distributed store's transaction controllers learn antecedents without any
// global state (§5.2.2).

// noteProducers walks the raw update footprint of the given transactions
// (in application order) and updates the engine's producer map: consumed
// values lose their producer entry, produced values gain one attributed to
// the transaction that wrote them.
func (e *Engine) noteProducers(xs []*Transaction) {
	for _, x := range xs {
		for _, u := range x.Updates {
			if c := u.Consumes(); c != nil {
				delete(e.producers, mkTupleKey(u.Rel, c))
			}
			if p := u.Produces(); p != nil {
				e.producers[mkTupleKey(u.Rel, p)] = x.ID
			}
		}
	}
}

// AntecedentIDs returns the direct antecedents ante(x) of a transaction as
// seen by this peer: for each tuple value x deletes or modifies, the
// transaction that produced that value in the peer's instance. It must be
// called before the transaction itself is recorded (NewLocalTransaction
// does this internally and exposes the result via PendingAntecedents).
func (e *Engine) antecedentIDs(x *Transaction) []TxnID {
	var out []TxnID
	seen := map[TxnID]bool{x.ID: true}
	// Values produced earlier within the same transaction chain to the
	// transaction itself, not to an external antecedent.
	local := map[tupleKey]bool{}
	for _, u := range x.Updates {
		if c := u.Consumes(); c != nil {
			k := mkTupleKey(u.Rel, c)
			if !local[k] {
				if p, ok := e.producers[k]; ok && !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
		if p := u.Produces(); p != nil {
			local[mkTupleKey(u.Rel, p)] = true
		}
	}
	return out
}

// ProducerOf returns the transaction that produced the given tuple value in
// this peer's instance, if known.
func (e *Engine) ProducerOf(rel string, t Tuple) (TxnID, bool) {
	id, ok := e.producers[mkTupleKey(rel, t)]
	return id, ok
}
