package core

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of attribute values conforming to some relation's
// schema. Tuples are treated as immutable by the reconciliation machinery;
// callers that retain tuples after handing them to the engine must not
// mutate them.
type Tuple []Value

// T builds a tuple from values; a small convenience for literals.
func T(vs ...Value) Tuple { return Tuple(vs) }

// Strs builds a tuple of string values; the common case in the paper's
// examples (e.g. (rat, prot1, cell-metab)).
func Strs(ss ...string) Tuple {
	t := make(Tuple, len(ss))
	for i, s := range ss {
		t[i] = S(s)
	}
	return t
}

// Equal reports whether two tuples have identical arity and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically by Value.Compare, shorter tuples
// first on ties.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	return len(t) - len(u)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	u := make(Tuple, len(t))
	copy(u, t)
	return u
}

// Project returns the sub-tuple selected by the given attribute indices.
// It panics if an index is out of range; schema validation happens earlier.
func (t Tuple) Project(idx []int) Tuple {
	u := make(Tuple, len(idx))
	for i, j := range idx {
		u[i] = t[j]
	}
	return u
}

// Encode returns a canonical injective encoding of the tuple, suitable for
// use as a map key. The empty tuple and nil encode identically.
func (t Tuple) Encode() string {
	if len(t) == 0 {
		return ""
	}
	var dst []byte
	for _, v := range t {
		dst = v.appendEncoded(dst)
	}
	return string(dst)
}

// DecodeTuple decodes a tuple produced by Encode. The arity is recovered
// from the encoding itself.
func DecodeTuple(enc string) (Tuple, error) {
	var t Tuple
	src := []byte(enc)
	for len(src) > 0 {
		v, rest, err := decodeValue(src)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
		src = rest
	}
	return t, nil
}

// String renders the tuple in the paper's (a, b, c) notation.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// tupleKey is a (relation, encoded tuple) pair used as a map key that
// identifies a concrete tuple value in a concrete relation.
type tupleKey struct {
	rel string
	enc string
}

func mkTupleKey(rel string, t Tuple) tupleKey { return tupleKey{rel: rel, enc: t.Encode()} }

func (k tupleKey) String() string {
	t, err := DecodeTuple(k.enc)
	if err != nil {
		return fmt.Sprintf("%s<bad:%q>", k.rel, k.enc)
	}
	return k.rel + t.String()
}
