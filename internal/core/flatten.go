package core

import (
	"fmt"
	"sort"
)

// flattenChain tracks one value chain during delta composition: the value it
// started from (nil if created by an insert within the sequence), the value
// it currently holds (nil once deleted), the relation it lives in, and the
// origin of its last writer.
type flattenChain struct {
	rel    string
	source Tuple
	cur    Tuple
	origin PeerID
	seq    int
}

// Flatten takes an ordered sequence of updates and produces a set of
// mutually independent updates with all dependency chains removed, in the
// style of Heraclitus delta composition ([12] in the paper, as used by [14]).
//
// Value chains are composed: an insert followed by modifications of the
// inserted value collapses to a single insert of the final value; a
// modification chain a→b→c collapses to a→c; an insert followed by a delete
// of the same chain vanishes; a delete of an existing value followed by an
// insert with the same key collapses to a modification; a chain that returns
// to its source value has no net effect.
//
// The schema is needed to compute key projections. The output is sorted
// deterministically (by relation, then tuple encoding). Flatten returns an
// error if the sequence is malformed, e.g. a modification would move a chain
// onto a value already held live by another chain.
func Flatten(s *Schema, updates []Update) ([]Update, error) {
	// live chains indexed by the encoding of their current value; dead
	// chains indexed by the key of their source value so a later insert
	// with the same key revives them as a modification.
	live := make(map[tupleKey]*flattenChain)
	deadByKey := make(map[tupleKey]*flattenChain)
	var all []*flattenChain

	newChain := func(c *flattenChain) *flattenChain {
		c.seq = len(all)
		all = append(all, c)
		return c
	}

	for i, u := range updates {
		rel, ok := s.Relation(u.Rel)
		if !ok {
			return nil, fmt.Errorf("core: flatten: update %d over unknown relation %s", i, u.Rel)
		}
		switch u.Op {
		case OpInsert:
			vk := mkTupleKey(u.Rel, u.Tuple)
			if _, exists := live[vk]; exists {
				continue // duplicate insert of the same value: idempotent
			}
			kk := tupleKey{rel: u.Rel, enc: rel.KeyEnc(u.Tuple)}
			if dc, ok := deadByKey[kk]; ok {
				// −t then +t′ with the same key: revive as source→t′.
				delete(deadByKey, kk)
				dc.cur = u.Tuple
				dc.origin = u.Origin
				live[vk] = dc
				continue
			}
			live[vk] = newChain(&flattenChain{rel: u.Rel, cur: u.Tuple, origin: u.Origin})
		case OpModify:
			srcK := mkTupleKey(u.Rel, u.Tuple)
			dstK := mkTupleKey(u.Rel, u.New)
			if srcK == dstK {
				continue // identity modification: no net effect
			}
			if _, exists := live[dstK]; exists {
				return nil, fmt.Errorf("core: flatten: update %d (%s) collides with a live value", i, u)
			}
			if c, ok := live[srcK]; ok {
				delete(live, srcK)
				c.cur = u.New
				c.origin = u.Origin
				live[dstK] = c
				continue
			}
			live[dstK] = newChain(&flattenChain{rel: u.Rel, source: u.Tuple, cur: u.New, origin: u.Origin})
		case OpDelete:
			vk := mkTupleKey(u.Rel, u.Tuple)
			if c, ok := live[vk]; ok {
				delete(live, vk)
				c.cur = nil
				c.origin = u.Origin
				if c.source == nil {
					continue // insert followed by delete: the chain vanishes
				}
				kk := tupleKey{rel: u.Rel, enc: rel.KeyEnc(c.source)}
				deadByKey[kk] = c
				continue
			}
			kk := tupleKey{rel: u.Rel, enc: rel.KeyEnc(u.Tuple)}
			if _, dup := deadByKey[kk]; dup {
				continue // repeated delete with the same source key: idempotent
			}
			deadByKey[kk] = newChain(&flattenChain{rel: u.Rel, source: u.Tuple, origin: u.Origin})
		default:
			return nil, fmt.Errorf("core: flatten: update %d has unknown op %d", i, u.Op)
		}
	}

	out := make([]Update, 0, len(all))
	for _, c := range all {
		switch {
		case c.source == nil && c.cur != nil:
			out = append(out, Update{Op: OpInsert, Rel: c.rel, Tuple: c.cur, Origin: c.origin})
		case c.source != nil && c.cur != nil:
			if c.source.Equal(c.cur) {
				continue // chain returned to its source: no net effect
			}
			out = append(out, Update{Op: OpModify, Rel: c.rel, Tuple: c.source, New: c.cur, Origin: c.origin})
		case c.source != nil && c.cur == nil:
			out = append(out, Update{Op: OpDelete, Rel: c.rel, Tuple: c.source, Origin: c.origin})
		}
	}
	sortUpdates(out)
	return out, nil
}

// MustFlatten is Flatten that panics on malformed input; used where the
// sequence is known to be well-formed (e.g. produced by the engine itself).
func MustFlatten(s *Schema, updates []Update) []Update {
	out, err := Flatten(s, updates)
	if err != nil {
		panic(err)
	}
	return out
}

// sortUpdates orders updates deterministically: by relation, tuple encoding,
// op, then replacement encoding.
func sortUpdates(us []Update) {
	sort.Slice(us, func(i, j int) bool {
		a, b := us[i], us[j]
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		ae, be := a.Tuple.Encode(), b.Tuple.Encode()
		if ae != be {
			return ae < be
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.New.Encode() < b.New.Encode()
	})
}
