package core

import (
	"fmt"
	"sort"
	"sync"
)

// flattenChain tracks one value chain during delta composition: the value it
// started from (nil if created by an insert within the sequence), the value
// it currently holds (nil once deleted), the relation it lives in, and the
// origin of its last writer. Encodings computed while maintaining the chain
// are carried along so the emitted updates arrive with their encoding caches
// already populated.
type flattenChain struct {
	rel    *Relation
	source Tuple
	cur    Tuple
	origin PeerID

	sourceEnc    string // source.Encode()
	sourceKeyEnc string // rel.KeyEnc(source)
	curEnc       string // cur.Encode()
}

// flattenScratch holds the per-call working state of Flatten. Instances are
// pooled: Flatten runs once per candidate per reconciliation (and again per
// conflicting pair), so its maps and chain arena are the dominant transient
// allocation of the pipeline.
type flattenScratch struct {
	live  map[tupleKey]*flattenChain
	dead  map[tupleKey]*flattenChain
	all   []*flattenChain
	arena []flattenChain
}

var flattenPool = sync.Pool{
	New: func() any {
		return &flattenScratch{
			live: make(map[tupleKey]*flattenChain),
			dead: make(map[tupleKey]*flattenChain),
		}
	},
}

// newChain allocates a chain from the arena. Pointers remain valid across
// arena growth (older chains stay in the previous backing array).
func (fs *flattenScratch) newChain(c flattenChain) *flattenChain {
	fs.arena = append(fs.arena, c)
	p := &fs.arena[len(fs.arena)-1]
	fs.all = append(fs.all, p)
	return p
}

// release clears the scratch and returns it to the pool. The arena is
// zeroed, not just truncated, so an idle pooled scratch does not pin the
// previous call's tuples and encodings.
func (fs *flattenScratch) release() {
	clear(fs.live)
	clear(fs.dead)
	clear(fs.all)
	fs.all = fs.all[:0]
	clear(fs.arena)
	fs.arena = fs.arena[:0]
	flattenPool.Put(fs)
}

// Flatten takes an ordered sequence of updates and produces a set of
// mutually independent updates with all dependency chains removed, in the
// style of Heraclitus delta composition ([12] in the paper, as used by [14]).
//
// Value chains are composed: an insert followed by modifications of the
// inserted value collapses to a single insert of the final value; a
// modification chain a→b→c collapses to a→c; an insert followed by a delete
// of the same chain vanishes; a delete of an existing value followed by an
// insert with the same key collapses to a modification; a chain that returns
// to its source value has no net effect.
//
// The schema is needed to compute key projections. The output is sorted
// deterministically (by relation, then tuple encoding) and carries populated
// encoding caches. Flatten returns an error if the sequence is malformed,
// e.g. a modification would move a chain onto a value already held live by
// another chain. It is safe for concurrent use.
func Flatten(s *Schema, updates []Update) ([]Update, error) {
	fs := flattenPool.Get().(*flattenScratch)
	defer fs.release()
	// live chains indexed by the encoding of their current value; dead
	// chains indexed by the key of their source value so a later insert
	// with the same key revives them as a modification.
	live, deadByKey := fs.live, fs.dead

	for i, u := range updates {
		rel, ok := s.Relation(u.Rel)
		if !ok {
			return nil, fmt.Errorf("core: flatten: update %d over unknown relation %s", i, u.Rel)
		}
		switch u.Op {
		case OpInsert:
			vk := tupleKey{rel: u.Rel, enc: u.tupleEnc()}
			if _, exists := live[vk]; exists {
				continue // duplicate insert of the same value: idempotent
			}
			kk := tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)}
			if dc, ok := deadByKey[kk]; ok {
				// −t then +t′ with the same key: revive as source→t′.
				delete(deadByKey, kk)
				dc.cur = u.Tuple
				dc.curEnc = vk.enc
				dc.origin = u.Origin
				live[vk] = dc
				continue
			}
			live[vk] = fs.newChain(flattenChain{rel: rel, cur: u.Tuple, curEnc: vk.enc, origin: u.Origin})
		case OpModify:
			srcK := tupleKey{rel: u.Rel, enc: u.tupleEnc()}
			dstK := tupleKey{rel: u.Rel, enc: u.newEnc()}
			if srcK == dstK {
				continue // identity modification: no net effect
			}
			if _, exists := live[dstK]; exists {
				return nil, fmt.Errorf("core: flatten: update %d (%s) collides with a live value", i, u)
			}
			if c, ok := live[srcK]; ok {
				delete(live, srcK)
				c.cur = u.New
				c.curEnc = dstK.enc
				c.origin = u.Origin
				live[dstK] = c
				continue
			}
			live[dstK] = fs.newChain(flattenChain{
				rel: rel, source: u.Tuple, cur: u.New, origin: u.Origin,
				sourceEnc: srcK.enc, sourceKeyEnc: u.keyEncTuple(rel), curEnc: dstK.enc,
			})
		case OpDelete:
			vk := tupleKey{rel: u.Rel, enc: u.tupleEnc()}
			if c, ok := live[vk]; ok {
				delete(live, vk)
				c.cur = nil
				c.curEnc = ""
				c.origin = u.Origin
				if c.source == nil {
					continue // insert followed by delete: the chain vanishes
				}
				kk := tupleKey{rel: u.Rel, enc: c.sourceKeyEnc}
				deadByKey[kk] = c
				continue
			}
			kk := tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)}
			if _, dup := deadByKey[kk]; dup {
				continue // repeated delete with the same source key: idempotent
			}
			deadByKey[kk] = fs.newChain(flattenChain{
				rel: rel, source: u.Tuple, origin: u.Origin,
				sourceEnc: vk.enc, sourceKeyEnc: kk.enc,
			})
		default:
			return nil, fmt.Errorf("core: flatten: update %d has unknown op %d", i, u.Op)
		}
	}

	out := make([]Update, 0, len(fs.all))
	for _, c := range fs.all {
		switch {
		case c.source == nil && c.cur != nil:
			out = append(out, Update{
				Op: OpInsert, Rel: c.rel.Name, Tuple: c.cur, Origin: c.origin,
				enc: &updateEnc{tuple: c.curEnc, keyT: c.rel.KeyEnc(c.cur)},
			})
		case c.source != nil && c.cur != nil:
			if c.source.Equal(c.cur) {
				continue // chain returned to its source: no net effect
			}
			out = append(out, Update{
				Op: OpModify, Rel: c.rel.Name, Tuple: c.source, New: c.cur, Origin: c.origin,
				enc: &updateEnc{
					tuple: c.sourceEnc, newt: c.curEnc,
					keyT: c.sourceKeyEnc, keyN: c.rel.KeyEnc(c.cur),
				},
			})
		case c.source != nil && c.cur == nil:
			out = append(out, Update{
				Op: OpDelete, Rel: c.rel.Name, Tuple: c.source, Origin: c.origin,
				enc: &updateEnc{tuple: c.sourceEnc, keyT: c.sourceKeyEnc},
			})
		}
	}
	sortUpdates(out)
	return out, nil
}

// MustFlatten is Flatten that panics on malformed input; used where the
// sequence is known to be well-formed (e.g. produced by the engine itself).
func MustFlatten(s *Schema, updates []Update) []Update {
	out, err := Flatten(s, updates)
	if err != nil {
		panic(err)
	}
	return out
}

// sortUpdates orders updates deterministically: by relation, tuple encoding,
// op, then replacement encoding. It uses the per-update encoding caches when
// present, so the comparator does not re-encode tuples on every comparison.
func sortUpdates(us []Update) {
	sort.Slice(us, func(i, j int) bool {
		a, b := &us[i], &us[j]
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		ae, be := a.tupleEnc(), b.tupleEnc()
		if ae != be {
			return ae < be
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.newEnc() < b.newEnc()
	})
}
