package core

import "testing"

func buildChain(t *testing.T, s *Schema) (*AntecedentGraph, []*Transaction) {
	t.Helper()
	g := NewAntecedentGraph(s)
	x0 := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "v0"), "a"))
	x1 := NewTransaction(xid("b", 0), Modify("F", Strs("rat", "p1", "v0"), Strs("rat", "p1", "v1"), "b"))
	x2 := NewTransaction(xid("c", 0), Modify("F", Strs("rat", "p1", "v1"), Strs("rat", "p1", "v2"), "c"))
	for _, x := range []*Transaction{x0, x1, x2} {
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	return g, []*Transaction{x0, x1, x2}
}

func TestUpdateExtensionFlattening(t *testing.T) {
	s := flatSchema(t)
	_, xs := buildChain(t, s)
	ue := NewUpdateExtension(s, xs[2].ID, xs, 1)
	if ue.Malformed() != nil {
		t.Fatal(ue.Malformed())
	}
	if len(ue.Operation) != 1 || ue.Operation[0].Op != OpInsert ||
		!ue.Operation[0].Tuple.Equal(Strs("rat", "p1", "v2")) {
		t.Fatalf("operation = %v", ue.Operation)
	}
	if ue.Priority != 1 || ue.Root != xs[2].ID || len(ue.IDs) != 3 {
		t.Errorf("fields: %+v", ue)
	}
}

func TestUpdateExtensionSubsumption(t *testing.T) {
	s := flatSchema(t)
	_, xs := buildChain(t, s)
	full := NewUpdateExtension(s, xs[2].ID, xs, 1)
	prefix := NewUpdateExtension(s, xs[1].ID, xs[:2], 1)
	other := NewUpdateExtension(s, xid("z", 0),
		[]*Transaction{NewTransaction(xid("z", 0), Insert("F", Strs("dog", "p9", "q"), "z"))}, 1)
	if !full.Subsumes(prefix) {
		t.Error("full should subsume prefix")
	}
	if prefix.Subsumes(full) {
		t.Error("prefix should not subsume full")
	}
	if full.Subsumes(other) || other.Subsumes(full) {
		t.Error("disjoint extensions should not subsume")
	}
	if !full.Subsumes(full) {
		t.Error("subsumption is reflexive")
	}
}

func TestUpdateExtensionConflictsExcludeShared(t *testing.T) {
	s := flatSchema(t)
	g := NewAntecedentGraph(s)
	root := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "v"), "a"))
	left := NewTransaction(xid("b", 0), Modify("F", Strs("rat", "p1", "v"), Strs("rat", "p1", "L"), "b"))
	right := NewTransaction(xid("c", 0), Modify("F", Strs("rat", "p1", "v"), Strs("rat", "p1", "R"), "c"))
	for _, x := range []*Transaction{root, left, right} {
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	ueL := NewUpdateExtension(s, left.ID, []*Transaction{root, left}, 1)
	ueR := NewUpdateExtension(s, right.ID, []*Transaction{root, right}, 1)
	cs := ueL.Conflicts(s, ueR)
	if len(cs) == 0 {
		t.Fatal("diverging branches should conflict")
	}
	// The conflict must be attributed to the diverging modifications (the
	// shared root is excluded), i.e. a modify-source conflict on value v.
	foundModSrc := false
	for _, c := range cs {
		if c.Type == ConflictModifySource {
			foundModSrc = true
		}
	}
	if !foundModSrc {
		t.Errorf("conflicts = %v, want modify-source on shared root's value", cs)
	}
	shared := ueL.SharedWith(ueR)
	if len(shared) != 1 || !shared.Has(root.ID) {
		t.Errorf("shared = %v", shared)
	}
}

func TestUpdateExtensionMalformed(t *testing.T) {
	s := flatSchema(t)
	// Two inserts landing on the same live value via modify: malformed.
	x := NewTransaction(xid("a", 0),
		Insert("F", Strs("rat", "p1", "v"), "a"),
		Insert("F", Strs("rat", "p2", "w"), "a"),
	)
	y := NewTransaction(xid("b", 0),
		Modify("F", Strs("rat", "p2", "w"), Strs("rat", "p1", "v"), "b"),
	)
	ue := NewUpdateExtension(s, y.ID, []*Transaction{x, y}, 1)
	if ue.Malformed() == nil {
		t.Error("colliding chain should be malformed")
	}
	// TouchedKeys falls back to the raw footprint.
	if len(ue.TouchedKeys(s)) == 0 {
		t.Error("malformed extension should still expose touched keys")
	}
}

func TestTouchedKeys(t *testing.T) {
	s := flatSchema(t)
	x := NewTransaction(xid("a", 0),
		Insert("F", Strs("rat", "p1", "v"), "a"),
		Modify("F", Strs("rat", "p1", "v"), Strs("rat", "p2", "v"), "a"),
	)
	ue := NewUpdateExtension(s, x.ID, []*Transaction{x}, 1)
	keys := ue.TouchedKeys(s)
	// Flattened to +F(rat,p2,v): touches key (rat,p2) only... but the
	// flatten keeps only the final insert, so one key.
	if len(keys) != 1 {
		t.Fatalf("touched keys = %v", keys)
	}
}
