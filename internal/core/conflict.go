package core

import "fmt"

// ConflictType classifies why two updates conflict, following §3 and §4 of
// the paper. Conflict groups are keyed by (type, value).
type ConflictType uint8

const (
	// ConflictKeyValue: two updates produce different tuple values for the
	// same key ("updates that change a single antecedent data value into two
	// different values", and writer/writer key-constraint violations).
	ConflictKeyValue ConflictType = iota + 1
	// ConflictDeleteWrite: one update deletes a tuple while the other
	// inserts or replaces a tuple with the same key ("updates that
	// simultaneously remove and replace a data value").
	ConflictDeleteWrite
	// ConflictModifySource: two replacement operations share the same source
	// tuple value but produce different replacements.
	ConflictModifySource
)

// String names the conflict type.
func (t ConflictType) String() string {
	switch t {
	case ConflictKeyValue:
		return "key-value"
	case ConflictDeleteWrite:
		return "delete-write"
	case ConflictModifySource:
		return "modify-source"
	default:
		return fmt.Sprintf("conflict(%d)", uint8(t))
	}
}

// Conflict identifies one conflict: its type, the relation, and the encoded
// key or source value the conflict is about. Conflicts with equal fields are
// the same conflict (and land in the same conflict group).
type Conflict struct {
	Type ConflictType
	Rel  string
	// Value is the encoded key (ConflictKeyValue, ConflictDeleteWrite) or
	// the encoded source tuple (ConflictModifySource).
	Value string
}

// String renders the conflict for diagnostics.
func (c Conflict) String() string {
	t, err := DecodeTuple(c.Value)
	if err != nil {
		return fmt.Sprintf("%s on %s<%q>", c.Type, c.Rel, c.Value)
	}
	return fmt.Sprintf("%s on %s%s", c.Type, c.Rel, t)
}

// UpdatesConflict reports whether two updates conflict under the paper's
// definition (§4), returning the conflicts found. Identical operations never
// conflict. Updates over different relations never conflict.
//
// The rules are:
//  1. both updates produce tuples with the same key but different values
//     (covers insert/insert from the paper's first bullet, and
//     insert-vs-replacement-target, which violates the key constraint);
//  2. one is a deletion and the other inserts or replaces a tuple with the
//     same key, or replaces the very tuple being deleted;
//  3. both are replacements with the same source tuple value but different
//     replacement values.
func UpdatesConflict(s *Schema, a, b Update) []Conflict {
	if a.Rel != b.Rel || a.Equal(b) {
		return nil
	}
	rel, ok := s.Relation(a.Rel)
	if !ok {
		return nil
	}
	var out []Conflict

	// Rule 3: same source, different replacement.
	if a.Op == OpModify && b.Op == OpModify && a.Tuple.Equal(b.Tuple) && !a.New.Equal(b.New) {
		out = append(out, Conflict{Type: ConflictModifySource, Rel: a.Rel, Value: a.tupleEnc()})
	}

	// Rule 1: both produce values for the same key with different contents.
	pa, pb := a.Produces(), b.Produces()
	if pa != nil && pb != nil {
		pka, pkb := a.producedKeyEnc(rel), b.producedKeyEnc(rel)
		if pka == pkb && !pa.Equal(pb) {
			out = append(out, Conflict{Type: ConflictKeyValue, Rel: a.Rel, Value: pka})
		}
	}

	// Rule 2: deletion vs insertion/replacement on the same key.
	if c, ok := deleteWriteConflict(rel, a, b); ok {
		out = append(out, c)
	} else if c, ok := deleteWriteConflict(rel, b, a); ok {
		out = append(out, c)
	}
	return out
}

// producedKeyEnc returns the key encoding of the tuple value the update
// produces; the caller has already checked Produces() != nil.
func (u *Update) producedKeyEnc(rel *Relation) string {
	if u.Op == OpModify {
		return u.keyEncNew(rel)
	}
	return u.keyEncTuple(rel)
}

// deleteWriteConflict checks rule 2 with d as the deletion candidate.
func deleteWriteConflict(rel *Relation, d, w Update) (Conflict, bool) {
	if d.Op != OpDelete {
		return Conflict{}, false
	}
	dk := d.keyEncTuple(rel)
	switch w.Op {
	case OpInsert:
		if w.keyEncTuple(rel) == dk {
			return Conflict{Type: ConflictDeleteWrite, Rel: d.Rel, Value: dk}, true
		}
	case OpModify:
		// The replacement consumes the deleted tuple, or produces a tuple
		// with the deleted key.
		if w.Tuple.Equal(d.Tuple) || w.keyEncNew(rel) == dk || w.keyEncTuple(rel) == dk {
			return Conflict{Type: ConflictDeleteWrite, Rel: d.Rel, Value: dk}, true
		}
	}
	return Conflict{}, false
}

// conflictIndex supports hash-based conflict detection between flattened
// update sets, as required for the O(t² + t·u·a) bound in §5.1: each update
// is indexed under a small number of derived keys, and probing an update
// touches only the buckets its own keys select.
type conflictIndex struct {
	s *Schema
	// byKey indexes updates by the key encodings of the tuples they produce
	// or delete.
	byKey map[tupleKey][]Update
	// bySource indexes replacements by their full source encoding.
	bySource map[tupleKey][]Update
}

func newConflictIndex(s *Schema, us []Update) *conflictIndex {
	ci := &conflictIndex{
		s:        s,
		byKey:    make(map[tupleKey][]Update),
		bySource: make(map[tupleKey][]Update),
	}
	for _, u := range us {
		ci.add(u)
	}
	return ci
}

func (ci *conflictIndex) add(u Update) {
	rel, ok := ci.s.Relation(u.Rel)
	if !ok {
		return
	}
	switch u.Op {
	case OpInsert, OpDelete:
		k := tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)}
		ci.byKey[k] = append(ci.byKey[k], u)
	case OpModify:
		kt := tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)}
		ci.byKey[kt] = append(ci.byKey[kt], u)
		if kn := (tupleKey{rel: u.Rel, enc: u.keyEncNew(rel)}); kn != kt {
			ci.byKey[kn] = append(ci.byKey[kn], u)
		}
		sk := tupleKey{rel: u.Rel, enc: u.tupleEnc()}
		ci.bySource[sk] = append(ci.bySource[sk], u)
	}
}

// probe returns all conflicts between u and the indexed updates.
func (ci *conflictIndex) probe(u Update) []Conflict {
	rel, ok := ci.s.Relation(u.Rel)
	if !ok {
		return nil
	}
	var cands []Update
	switch u.Op {
	case OpInsert, OpDelete:
		cands = append(cands, ci.byKey[tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)}]...)
	case OpModify:
		kt := tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)}
		cands = append(cands, ci.byKey[kt]...)
		if kn := (tupleKey{rel: u.Rel, enc: u.keyEncNew(rel)}); kn != kt {
			cands = append(cands, ci.byKey[kn]...)
		}
		cands = append(cands, ci.bySource[tupleKey{rel: u.Rel, enc: u.tupleEnc()}]...)
	}
	var out []Conflict
	dedup := map[Conflict]bool{}
	for _, v := range cands {
		for _, c := range UpdatesConflict(ci.s, u, v) {
			if !dedup[c] {
				dedup[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// SetsConflict returns the conflicts between two flattened update sets using
// hash-based detection. It is symmetric.
func SetsConflict(s *Schema, a, b []Update) []Conflict {
	if len(a) > len(b) {
		a, b = b, a
	}
	idx := newConflictIndex(s, b)
	var out []Conflict
	dedup := map[Conflict]bool{}
	for _, u := range a {
		for _, c := range idx.probe(u) {
			if !dedup[c] {
				dedup[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// SetsConflictNaive is the O(|a|·|b|) pairwise reference implementation,
// retained for property tests and the conflict-detection ablation benchmark.
func SetsConflictNaive(s *Schema, a, b []Update) []Conflict {
	var out []Conflict
	dedup := map[Conflict]bool{}
	for _, u := range a {
		for _, v := range b {
			for _, c := range UpdatesConflict(s, u, v) {
				if !dedup[c] {
					dedup[c] = true
					out = append(out, c)
				}
			}
		}
	}
	return out
}
