package core

import (
	"reflect"
	"testing"
)

// engineStateEqual compares the durable engine state the snapshot is meant
// to carry: instance, decided sets, provenance, and the local sequence.
func engineStateEqual(t *testing.T, what string, a, b *Engine) {
	t.Helper()
	if !a.Instance().Equal(b.Instance()) {
		t.Errorf("%s: instances differ", what)
	}
	if !reflect.DeepEqual(a.applied, b.applied) {
		t.Errorf("%s: applied sets differ: %v vs %v", what, a.applied.Sorted(), b.applied.Sorted())
	}
	if !reflect.DeepEqual(a.rejected, b.rejected) {
		t.Errorf("%s: rejected sets differ: %v vs %v", what, a.rejected.Sorted(), b.rejected.Sorted())
	}
	if !reflect.DeepEqual(a.producers, b.producers) {
		t.Errorf("%s: producer maps differ", what)
	}
	if a.nextSeq != b.nextSeq {
		t.Errorf("%s: nextSeq %d vs %d", what, a.nextSeq, b.nextSeq)
	}
}

// TestEngineSnapshotRoundTrip: exporting and re-importing an engine's
// snapshot reproduces the durable state exactly — including provenance, so
// the restored engine computes the same antecedents for new local edits.
func TestEngineSnapshotRoundTrip(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	pa := NewEngine("a", s, TrustAll(1))
	pq := NewEngine("q", s, TrustAll(1))

	xa0 := mustLocal(t, pa, Insert("F", Strs("rat", "p1", "v0"), "a"))
	xa1 := mustLocal(t, pa, Modify("F", Strs("rat", "p1", "v0"), Strs("rat", "p1", "v1"), "a"))
	log.publish(xa0, xa1)
	log.reconcile(pq)
	xq0 := mustLocal(t, pq, Insert("F", Strs("mouse", "p2", "w"), "q"))
	log.publish(xq0)

	snap := pq.ExportSnapshot()
	back, err := NewEngineFromSnapshot(s, TrustAll(1), snap)
	if err != nil {
		t.Fatal(err)
	}
	engineStateEqual(t, "round trip", pq, back)

	// The re-exported snapshot is canonical: byte-for-byte the same value.
	if !reflect.DeepEqual(snap, back.ExportSnapshot()) {
		t.Error("re-exported snapshot differs from the original")
	}

	// Provenance round-trips: a new local edit computes the same
	// antecedents on both engines, and the local sequence continues.
	for _, e := range []*Engine{pq, back} {
		x := mustLocal(t, e, Modify("F", Strs("rat", "p1", "v1"), Strs("rat", "p1", "v2"), "q"))
		if x.ID.Seq != xq0.ID.Seq+1 {
			t.Errorf("%p: next seq = %d, want %d", e, x.ID.Seq, xq0.ID.Seq+1)
		}
		if antes := e.LocalAntecedents(x.ID); len(antes) != 1 || antes[0] != xa1.ID {
			t.Errorf("antecedents after restore = %v, want [%s]", antes, xa1.ID)
		}
	}

	// An unknown relation in the snapshot is rejected.
	bad := *snap
	bad.Relations = append(bad.Relations, RelationSnapshot{Name: "nope", Tuples: []Tuple{Strs("x")}})
	if _, err := NewEngineFromSnapshot(s, TrustAll(1), &bad); err == nil {
		t.Error("snapshot with unknown relation accepted")
	}
}

// TestRestoreTailEquivalence: restoring from a snapshot of a log prefix and
// replaying only the tail must land on exactly the state a full replay
// produces — including a tail modify whose insert lives in the prefix, and
// a tail rejection.
func TestRestoreTailEquivalence(t *testing.T) {
	s := proteinSchema(t)
	x1 := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "v1"), "a"))
	x1.Order = 1
	x2 := NewTransaction(xid("me", 3), Insert("F", Strs("mouse", "p2", "w"), "me"))
	x2.Order = 2
	x3 := NewTransaction(xid("b", 0), Modify("F", Strs("rat", "p1", "v1"), Strs("rat", "p1", "v2"), "b"))
	x3.Order = 3
	x4 := NewTransaction(xid("c", 0), Insert("F", Strs("rat", "p1", "zz"), "c"))
	x4.Order = 4
	x5 := NewTransaction(xid("me", 4), Insert("F", Strs("dog", "p3", "q"), "me"))
	x5.Order = 5

	full := []LoggedTxn{{Txn: x1}, {Txn: x2}, {Txn: x3, Antecedents: []TxnID{x1.ID}}, {Txn: x4}, {Txn: x5}}
	decisions := map[TxnID]RestoredDecision{
		x1.ID: {Decision: DecisionAccept, Seq: 1},
		x2.ID: {Decision: DecisionAccept, Seq: 2},
		x3.ID: {Decision: DecisionAccept, Seq: 3},
		x4.ID: {Decision: DecisionReject, Seq: 4},
		x5.ID: {Decision: DecisionAccept, Seq: 5},
	}

	fullEng := NewEngine("me", s, TrustAll(1))
	if err := fullEng.Restore(full, decisions); err != nil {
		t.Fatal(err)
	}

	// Snapshot after seq 2 (x1, x2 folded in), tail = everything after.
	prefixEng := NewEngine("me", s, TrustAll(1))
	prefixDecs := map[TxnID]RestoredDecision{x1.ID: decisions[x1.ID], x2.ID: decisions[x2.ID]}
	if err := prefixEng.Restore(full[:2], prefixDecs); err != nil {
		t.Fatal(err)
	}
	tailEng, err := NewEngineFromSnapshot(s, TrustAll(1), prefixEng.ExportSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	tailDecs := map[TxnID]RestoredDecision{
		x3.ID: decisions[x3.ID], x4.ID: decisions[x4.ID], x5.ID: decisions[x5.ID],
	}
	// Overlapping log entries (the full log, not just the tail) must be
	// harmless: already-decided transactions are skipped.
	if err := tailEng.RestoreTail(full, tailDecs); err != nil {
		t.Fatal(err)
	}
	engineStateEqual(t, "snapshot+tail vs full replay", fullEng, tailEng)
	wantTuples(t, tailEng.Instance(), "F",
		Strs("rat", "p1", "v2"), Strs("mouse", "p2", "w"), Strs("dog", "p3", "q"))
	if !tailEng.Rejected(x4.ID) {
		t.Error("tail rejection lost")
	}

	// Both engines keep reconciling identically.
	for _, e := range []*Engine{fullEng, tailEng} {
		x := NewTransaction(xid("d", 0), Insert("F", Strs("cat", "p4", "n"), "d"))
		x.Order = 6
		res, err := e.Reconcile([]*Candidate{{Txn: x, Priority: 1, Ext: []*Transaction{x}}})
		if err != nil {
			t.Fatal(err)
		}
		wantIDs(t, "continued accepts", res.Accepted, x.ID)
	}
	engineStateEqual(t, "after continued reconcile", fullEng, tailEng)
}
