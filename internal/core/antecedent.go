package core

import (
	"fmt"
	"sort"
)

// AntecedentGraph maintains, over the global published sequence ∆, the
// antecedent relation of Definition 3: ante(X) contains any earlier
// transaction X′ that inserted, or modified a tuple into, a value that X
// directly deletes or modifies. It also records every published transaction
// and its global order, and therefore acts as the published-update log.
//
// Transactions must be added in publication order. The graph is the
// store-side structure from which update extensions are computed ("the
// determination of update extensions takes place inside the DBMS"; in the
// DHT store each transaction controller holds its transaction's antecedent
// set).
type AntecedentGraph struct {
	schema *Schema
	// producers maps a live tuple value to the transaction that produced it.
	producers map[tupleKey]TxnID
	ante      map[TxnID][]TxnID
	txns      map[TxnID]*Transaction
	order     []TxnID
	nextOrder uint64
}

// NewAntecedentGraph returns an empty graph over the schema.
func NewAntecedentGraph(s *Schema) *AntecedentGraph {
	return &AntecedentGraph{
		schema:    s,
		producers: make(map[tupleKey]TxnID),
		ante:      make(map[TxnID][]TxnID),
		txns:      make(map[TxnID]*Transaction),
	}
}

// Add appends a published transaction to the log, assigning its global
// order, and computes its direct antecedents. Adding the same transaction
// twice is an error; publication order must follow epoch order (enforced by
// the stores).
func (g *AntecedentGraph) Add(x *Transaction) error {
	if _, dup := g.txns[x.ID]; dup {
		return fmt.Errorf("core: transaction %s already published", x.ID)
	}
	x.Order = g.nextOrder
	g.nextOrder++
	g.txns[x.ID] = x
	g.order = append(g.order, x.ID)

	var antes []TxnID
	seen := map[TxnID]bool{}
	for _, u := range x.Updates {
		if c := u.Consumes(); c != nil {
			k := mkTupleKey(u.Rel, c)
			if p, ok := g.producers[k]; ok && p != x.ID && !seen[p] {
				seen[p] = true
				antes = append(antes, p)
			}
		}
		// Maintain the producer map as the log evolves, chaining
		// within-transaction sequences to the transaction itself.
		if c := u.Consumes(); c != nil {
			delete(g.producers, mkTupleKey(u.Rel, c))
		}
		if p := u.Produces(); p != nil {
			g.producers[mkTupleKey(u.Rel, p)] = x.ID
		}
	}
	if len(antes) > 0 {
		g.ante[x.ID] = antes
	}
	return nil
}

// Txn returns a published transaction by ID.
func (g *AntecedentGraph) Txn(id TxnID) (*Transaction, bool) {
	x, ok := g.txns[id]
	return x, ok
}

// Len returns the number of published transactions.
func (g *AntecedentGraph) Len() int { return len(g.order) }

// Antecedents returns the direct antecedents ante(X) of the transaction.
func (g *AntecedentGraph) Antecedents(id TxnID) []TxnID {
	return g.ante[id]
}

// InOrder returns the published transactions with Order in [from, to),
// in publication order.
func (g *AntecedentGraph) InOrder(from, to uint64) []*Transaction {
	var out []*Transaction
	for _, id := range g.order {
		x := g.txns[id]
		if x.Order >= from && x.Order < to {
			out = append(out, x)
		}
	}
	return out
}

// Extension computes the transaction extension te_i|e(X) of Definition 3:
// the transitive closure of X's antecedents, excluding transactions already
// accepted ("applied") by the reconciling participant, sorted by global
// publication order. X itself is always included (even if applied, which
// callers filter upstream).
func (g *AntecedentGraph) Extension(root TxnID, applied func(TxnID) bool) ([]*Transaction, error) {
	rx, ok := g.txns[root]
	if !ok {
		return nil, fmt.Errorf("core: extension of unpublished transaction %s", root)
	}
	visited := map[TxnID]bool{root: true}
	out := []*Transaction{rx}
	stack := append([]TxnID(nil), g.ante[root]...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[id] {
			continue
		}
		visited[id] = true
		if applied != nil && applied(id) {
			continue
		}
		x, ok := g.txns[id]
		if !ok {
			return nil, fmt.Errorf("core: antecedent %s of %s not in log", id, root)
		}
		out = append(out, x)
		stack = append(stack, g.ante[id]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out, nil
}

// ExtensionIDs is Extension returning the ID set, for subsumption checks.
func (g *AntecedentGraph) ExtensionIDs(root TxnID, applied func(TxnID) bool) (TxnSet, error) {
	xs, err := g.Extension(root, applied)
	if err != nil {
		return nil, err
	}
	set := make(TxnSet, len(xs))
	set.AddAll(xs)
	return set, nil
}
