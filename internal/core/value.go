// Package core implements the data model and reconciliation semantics of a
// collaborative data sharing system (CDSS) as defined by Taylor & Ives,
// "Reconciling while Tolerating Disagreement in Collaborative Data Sharing"
// (SIGMOD 2006).
//
// The package provides typed tuple values, relations and schemas, the three
// update operations (+R(ā;i), −R(ā;i), R(ā→ā′;i)), transactions, delta
// flattening, conflict detection, antecedent graphs, transaction extensions,
// per-peer database instances, and the client-centric reconciliation engine
// (ReconcileUpdates and its helpers) together with deferral, conflict groups,
// options, and user-driven conflict resolution.
//
// An Engine is single-owner: one goroutine drives Reconcile/Resolve at a
// time. Internally the embarrassingly parallel stages — per-candidate
// flattening + CheckState, the FindConflicts pair checks, and the
// soft-state pair scan — fan out over a bounded worker pool configured
// with WithParallelism; the order-sensitive decision loops stay
// sequential, so decisions are bit-identical at every worker count (see
// docs/ARCHITECTURE.md).
package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero Kind and represents the
// absence of a value (SQL NULL).
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single typed attribute value. Values are immutable and
// comparable with Equal and Compare; the zero Value is NULL.
type Value struct {
	kind Kind
	s    string
	n    uint64 // int64 bits, float64 bits, or bool (0/1)
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// S returns a string value.
func S(s string) Value { return Value{kind: KindString, s: s} }

// I returns an integer value.
func I(i int64) Value { return Value{kind: KindInt, n: uint64(i)} }

// F returns a floating-point value.
func F(f float64) Value { return Value{kind: KindFloat, n: math.Float64bits(f)} }

// B returns a boolean value.
func B(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, n: n}
}

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int returns the integer payload; it is only meaningful for KindInt.
func (v Value) Int() int64 { return int64(v.n) }

// Float returns the float payload; it is only meaningful for KindFloat.
func (v Value) Float() float64 { return math.Float64frombits(v.n) }

// Bool returns the boolean payload; it is only meaningful for KindBool.
func (v Value) Bool() bool { return v.n != 0 }

// Equal reports whether two values are identical (same kind and payload).
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders values: first by kind, then by payload. It returns a
// negative number, zero, or a positive number as v sorts before, equal to,
// or after w. The ordering is total and is used by indexes and for
// deterministic output, not for SQL comparison semantics.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		return int(v.kind) - int(w.kind)
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindInt:
		a, b := int64(v.n), int64(w.n)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	case KindFloat:
		a, b := math.Float64frombits(v.n), math.Float64frombits(w.n)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		case a == b:
			return 0
		}
		// NaNs sort after everything, equal to each other.
		an, bn := math.IsNaN(a), math.IsNaN(b)
		switch {
		case an && bn:
			return 0
		case an:
			return 1
		default:
			return -1
		}
	case KindBool:
		return int(v.n) - int(w.n)
	}
	return 0
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(int64(v.n), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.n), 'g', -1, 64)
	case KindBool:
		if v.n != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// appendEncoded appends a canonical, self-delimiting binary encoding of the
// value to dst. The encoding is injective: distinct values have distinct
// encodings, so encoded tuples can be used as map keys.
func (v Value) appendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindInt, KindFloat, KindBool:
		dst = binary.AppendUvarint(dst, v.n)
	}
	return dst
}

// GobEncode implements gob encoding for Value (its fields are unexported);
// the update stores serialize transactions with encoding/gob.
func (v Value) GobEncode() ([]byte, error) { return v.appendEncoded(nil), nil }

// GobDecode implements gob decoding for Value.
func (v *Value) GobDecode(data []byte) error {
	dec, rest, err := decodeValue(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("core: trailing bytes in Value encoding")
	}
	*v = dec
	return nil
}

// decodeValue decodes a value encoded by appendEncoded and returns the
// remaining bytes.
func decodeValue(src []byte) (Value, []byte, error) {
	if len(src) == 0 {
		return Value{}, nil, fmt.Errorf("core: decode value: empty input")
	}
	k := Kind(src[0])
	src = src[1:]
	switch k {
	case KindNull:
		return Value{}, src, nil
	case KindString:
		n, sz := binary.Uvarint(src)
		if sz <= 0 {
			return Value{}, nil, fmt.Errorf("core: decode value: bad string length")
		}
		src = src[sz:]
		if uint64(len(src)) < n {
			return Value{}, nil, fmt.Errorf("core: decode value: short string payload")
		}
		return S(string(src[:n])), src[n:], nil
	case KindInt, KindFloat, KindBool:
		n, sz := binary.Uvarint(src)
		if sz <= 0 {
			return Value{}, nil, fmt.Errorf("core: decode value: bad numeric payload")
		}
		return Value{kind: k, n: n}, src[sz:], nil
	default:
		return Value{}, nil, fmt.Errorf("core: decode value: unknown kind %d", k)
	}
}
