package core

import (
	"fmt"
	"sort"
	"time"
)

// Engine is the client-centric reconciliation engine for one participant.
// It owns the participant's materialized instance, its applied/rejected
// transaction sets, and the reconstructable soft state (deferred
// transactions, dirty values, conflict groups). The update store feeds it
// Candidates; the engine implements ReconcileUpdates of Figure 4 with the
// helper procedures of Figure 5.
//
// Engine is not safe for concurrent use; each participant drives its engine
// from a single goroutine (reconciliation is "done frequently but not in
// real time, by each specific participant"). Internally, Reconcile fans the
// independent per-candidate stages (extension flattening + CheckState, and
// FindConflicts pair checks) out over a bounded worker pool — see
// WithParallelism — while the order-sensitive decision and apply loops stay
// sequential, so decisions are bit-identical at every worker count.
type Engine struct {
	peer   PeerID
	schema *Schema
	trust  Trust
	// prio memoizes transaction priorities by author set under the current
	// trust policy; rebuilt whenever the policy changes.
	prio *PriorityCache
	inst *Instance

	applied  TxnSet
	rejected TxnSet

	// deferredCands carries deferred candidates across reconciliations so
	// ReconcileUpdates can reconsider them without re-fetching.
	deferredCands map[TxnID]*Candidate
	// dirty is the dirty value set: keys touched by deferred transactions.
	dirty map[tupleKey]bool
	// groups are the conflict groups recorded by the last reconciliation.
	groups map[Conflict]*ConflictGroup

	// ownSince accumulates the peer's own transactions applied locally
	// since the last reconciliation ("the delta for recno").
	ownSince []*Transaction

	// producers maps each tuple value in the instance to the transaction
	// that produced it (provenance; see provenance.go).
	producers map[tupleKey]TxnID
	// localAntes records the antecedent sets of the peer's own
	// transactions, computed at creation time for publishing.
	localAntes map[TxnID][]TxnID

	recno   int
	nextSeq uint64

	// par bounds the worker pool for the parallel reconciliation stages;
	// <= 0 means runtime.GOMAXPROCS(0). See WithParallelism.
	par int
}

// NewEngine returns an engine for the participant with an empty instance.
func NewEngine(peer PeerID, schema *Schema, trust Trust, opts ...EngineOption) *Engine {
	e := &Engine{
		peer:          peer,
		schema:        schema,
		trust:         trust,
		prio:          NewPriorityCache(trust),
		inst:          NewInstance(schema),
		applied:       make(TxnSet),
		rejected:      make(TxnSet),
		deferredCands: make(map[TxnID]*Candidate),
		dirty:         make(map[tupleKey]bool),
		groups:        make(map[Conflict]*ConflictGroup),
		producers:     make(map[tupleKey]TxnID),
		localAntes:    make(map[TxnID][]TxnID),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Peer returns the participant's ID.
func (e *Engine) Peer() PeerID { return e.peer }

// Schema returns the shared schema.
func (e *Engine) Schema() *Schema { return e.schema }

// Instance returns the participant's live instance. Callers must treat it
// as read-only.
func (e *Engine) Instance() *Instance { return e.inst }

// Trust returns the participant's trust policy.
func (e *Engine) Trust() Trust { return e.trust }

// SetTrust replaces the trust policy; it affects future reconciliations
// only ("once an update has been accepted ... it will not be rolled back").
// The author-set priority cache is invalidated: a cache outliving its
// policy would serve priorities from the old mappings.
func (e *Engine) SetTrust(t Trust) {
	e.trust = t
	e.prio = NewPriorityCache(t)
}

// TxnPriority computes pri_i(X) under the engine's current trust policy,
// served from the author-set priority cache when the policy is
// origin-only.
func (e *Engine) TxnPriority(x *Transaction) int { return e.prio.TxnPriority(x) }

// RefreshTrust replaces the trust policy mid-stream and re-prices the
// deferred candidates in place, without replaying history: each carried
// candidate's priority is recomputed from the new policy (through a fresh
// author-set cache) so the next reconciliation reconsiders it at its new
// priority. A candidate whose transaction becomes untrusted drops to
// priority 0 and falls out of the candidate set at the next run (its
// dirty marks clear with the normal soft-state rebuild). It returns the
// number of deferred candidates whose priority changed.
//
// When the peer's policy delegates trust, pass the *effective* (resolved)
// policy — the engine prices transactions exactly as given, it does not
// resolve delegation graphs.
func (e *Engine) RefreshTrust(t Trust) int {
	e.SetTrust(t)
	changed := 0
	for id, c := range e.deferredCands {
		p := e.prio.TxnPriority(c.Txn)
		if p == c.Priority {
			continue
		}
		// Candidates may be shared with the store layer; re-price a copy.
		cc := *c
		cc.Priority = p
		e.deferredCands[id] = &cc
		changed++
	}
	return changed
}

// Recno returns the engine's last reconciliation number.
func (e *Engine) Recno() int { return e.recno }

// Applied reports whether the peer has applied the transaction.
func (e *Engine) Applied(id TxnID) bool { return e.applied.Has(id) }

// Rejected reports whether the peer has rejected the transaction.
func (e *Engine) Rejected(id TxnID) bool { return e.rejected.Has(id) }

// DeferredIDs returns the currently deferred transactions, sorted.
func (e *Engine) DeferredIDs() []TxnID {
	out := make([]TxnID, 0, len(e.deferredCands))
	for id := range e.deferredCands {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// DirtyKeyCount returns the size of the dirty value set.
func (e *Engine) DirtyKeyCount() int { return len(e.dirty) }

// NewLocalTransaction builds, applies, and records a transaction of the
// peer's own edits. The updates must be compatible with the local instance
// — a participant's own instance is always internally consistent. The
// returned transaction carries the next local sequence number and is ready
// to be published.
func (e *Engine) NewLocalTransaction(updates ...Update) (*Transaction, error) {
	x := NewTransaction(TxnID{Origin: e.peer, Seq: e.nextSeq}, updates...)
	if err := x.Validate(e.schema); err != nil {
		return nil, err
	}
	if err := e.inst.CompatibleAll(x.Updates); err != nil {
		return nil, fmt.Errorf("core: local transaction %s: %w", x.ID, err)
	}
	e.localAntes[x.ID] = e.antecedentIDs(x)
	for _, u := range x.Updates {
		e.inst.applyUnchecked(u)
	}
	e.noteProducers([]*Transaction{x})
	e.nextSeq++
	e.applied.Add(x.ID)
	e.ownSince = append(e.ownSince, x)
	return x, nil
}

// LocalAntecedents returns the antecedent set computed when the peer's own
// transaction was created; the publisher ships it to the update store.
func (e *Engine) LocalAntecedents(id TxnID) []TxnID { return e.localAntes[id] }

// candidateState pairs a candidate with its per-reconciliation soft state.
type candidateState struct {
	cand     *Candidate
	upEx     *UpdateExtension
	decision Decision
	carried  bool // previously deferred, reconsidered this run
}

// Reconcile runs ReconcileUpdates (Figure 4) for the next reconciliation:
// fresh holds the newly relevant fully-trusted transactions fetched from the
// update store; previously deferred transactions are reconsidered
// automatically. It returns the decisions made and updates the instance,
// the applied/rejected sets, and the soft state.
func (e *Engine) Reconcile(fresh []*Candidate) (*Result, error) {
	e.recno++
	res := &Result{Recno: e.recno}

	// Line 1: the undecided fully trusted transactions: new arrivals plus
	// carried-over deferred ones.
	states := make(map[TxnID]*candidateState, len(fresh)+len(e.deferredCands))
	var order []*candidateState
	addCand := func(c *Candidate, carried bool) {
		if c.Priority <= 0 {
			return // untrusted: never a root
		}
		if e.applied.Has(c.Txn.ID) || e.rejected.Has(c.Txn.ID) {
			return // already decided
		}
		if _, dup := states[c.Txn.ID]; dup {
			return
		}
		st := &candidateState{cand: c, carried: carried}
		states[c.Txn.ID] = st
		order = append(order, st)
	}
	for id := range e.deferredCands {
		addCand(e.deferredCands[id], true)
		res.Stats.DeferredCarried++
	}
	for _, c := range fresh {
		addCand(c, false)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i].cand.Txn, order[j].cand.Txn
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.ID.Less(b.ID)
	})
	res.Stats.Candidates = len(order)

	// Warm the per-update encoding caches from this goroutine before any
	// parallel stage reads them: extensions share *Transaction pointers
	// across candidates, so the lazy population must not race. (Stores that
	// share transactions across peers warm them at ingestion; this pass is
	// then a cheap no-op that covers direct users of the engine API.)
	for _, st := range order {
		st.cand.Txn.PrecomputeEncodings(e.schema)
		for _, x := range st.cand.Ext {
			x.PrecomputeEncodings(e.schema)
		}
	}

	// The peer's own delta for this recno, used by CheckState line 7.
	ownDelta, err := Flatten(e.schema, UpdateFootprint(e.ownSince))
	if err != nil {
		// A peer's own applied transactions always flatten; failure here
		// indicates a bug upstream.
		return nil, fmt.Errorf("core: flatten own delta: %v", err)
	}

	// Lines 5-8: flattened update extensions + CheckState. Each candidate is
	// independent — it reads only the engine's (unmutated) decided sets,
	// dirty keys, and instance — so the stage fans out across the worker
	// pool; every worker writes only its own candidateState.
	workers := e.parallelism(len(order))
	res.Stats.Workers = workers
	start := time.Now()
	parallelFor(workers, len(order), func(i int) {
		st := order[i]
		ext := e.filterApplied(st.cand.Ext, st.cand.Txn)
		st.upEx = NewUpdateExtension(e.schema, st.cand.Txn.ID, ext, st.cand.Priority)
		st.decision = e.checkState(st.upEx, ownDelta, st.carried)
		// Warm the TouchedKeys memo inside the pool so the serial index
		// build below doesn't pay for it.
		st.upEx.TouchedKeys(e.schema)
	})
	for _, st := range order {
		res.Stats.ExtensionTxns += len(st.upEx.Source)
		res.Stats.FlattenedOps += len(st.upEx.Operation)
	}
	res.Stats.CheckNanos = time.Since(start).Nanoseconds()

	// Line 9: FindConflicts over the flattened extensions.
	start = time.Now()
	conflicts := e.findConflicts(order, &res.Stats)
	res.Stats.ConflictNanos = time.Since(start).Nanoseconds()

	// Lines 10-12: DoGroup per priority, in decreasing order. Sequential:
	// decisions at one priority feed the next.
	start = time.Now()
	prios := map[int]bool{}
	for _, st := range order {
		prios[st.upEx.Priority] = true
	}
	sortedPrios := make([]int, 0, len(prios))
	for p := range prios {
		sortedPrios = append(sortedPrios, p)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sortedPrios)))
	for _, p := range sortedPrios {
		e.doGroup(p, order, conflicts, states)
	}
	res.Stats.GroupNanos = time.Since(start).Nanoseconds()

	// Lines 13-19: record decisions and apply accepted extensions in global
	// order, recomputing each extension against the Used set.
	//
	// A transaction rejected standalone earlier in this run (e.g. its own
	// flattened chain is instance-incompatible) may still ride along as the
	// superseded prefix of an accepted chain — the §4.2 least-interaction
	// example. Applying the chain rescinds such same-run rejections so the
	// final decision sets stay disjoint; rejections from earlier
	// reconciliations are final (CheckState already rejected any dependent
	// root before it reached this loop).
	start = time.Now()
	used := make(TxnSet)
	runRejected := make(TxnSet)
	reject := func(id TxnID) {
		runRejected.Add(id)
		e.rejected.Add(id)
		delete(e.deferredCands, id)
	}
	for _, st := range order {
		switch st.decision {
		case DecisionAccept:
			ext := e.filterAppliedOrUsed(st.cand.Ext, st.cand.Txn, used)
			flat, ferr := Flatten(e.schema, UpdateFootprint(ext))
			if ferr != nil {
				st.decision = DecisionReject
				reject(st.cand.Txn.ID)
				continue
			}
			if cerr := e.inst.CompatibleAll(flat); cerr != nil {
				// Defensive: Proposition 1 says this cannot happen for
				// greedy processing; reject rather than corrupt the
				// instance if it ever does.
				st.decision = DecisionReject
				reject(st.cand.Txn.ID)
				continue
			}
			for _, u := range flat {
				e.inst.applyUnchecked(u)
			}
			e.noteProducers(ext)
			res.Stats.AppliedUpdates += len(flat)
			for _, x := range ext {
				used.Add(x.ID)
				e.applied.Add(x.ID)
				res.Accepted = append(res.Accepted, x.ID)
				delete(e.deferredCands, x.ID)
				if runRejected.Has(x.ID) {
					delete(runRejected, x.ID)
					delete(e.rejected, x.ID)
				}
			}
		case DecisionReject:
			reject(st.cand.Txn.ID)
		}
	}
	res.Rejected = runRejected.Sorted()
	res.Stats.ApplyNanos = time.Since(start).Nanoseconds()

	// Lines 20-21: UpdateSoftState for the deferred set. A transaction
	// that was applied as part of an accepted dependent's extension in
	// this very run (its conflicting intermediate state was superseded —
	// "least interaction") is no longer deferred.
	start = time.Now()
	var deferred []*candidateState
	for _, st := range order {
		id := st.cand.Txn.ID
		if st.decision == DecisionDefer && !e.applied.Has(id) && !e.rejected.Has(id) {
			deferred = append(deferred, st)
			res.Deferred = append(res.Deferred, id)
		}
	}
	e.updateSoftState(deferred, res)
	res.Stats.SoftStateNanos = time.Since(start).Nanoseconds()
	e.ownSince = nil
	return res, nil
}

// filterApplied returns the extension with already-applied transactions
// removed; the root is always kept.
func (e *Engine) filterApplied(ext []*Transaction, root *Transaction) []*Transaction {
	out := make([]*Transaction, 0, len(ext))
	rootSeen := false
	for _, x := range ext {
		if x.ID == root.ID {
			rootSeen = true
			out = append(out, x)
			continue
		}
		if !e.applied.Has(x.ID) {
			out = append(out, x)
		}
	}
	if !rootSeen {
		out = append(out, root)
		sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	}
	return out
}

func (e *Engine) filterAppliedOrUsed(ext []*Transaction, root *Transaction, used TxnSet) []*Transaction {
	out := make([]*Transaction, 0, len(ext))
	rootSeen := false
	for _, x := range ext {
		if x.ID == root.ID {
			rootSeen = true
			out = append(out, x)
			continue
		}
		if !e.applied.Has(x.ID) && !used.Has(x.ID) {
			out = append(out, x)
		}
	}
	if !rootSeen {
		out = append(out, root)
		sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	}
	return out
}

// checkState implements CheckState of Figure 5: it classifies one update
// extension against the dirty value set, the decided transactions, the
// materialized instance, and the peer's own delta for this reconciliation.
//
// Carried candidates — the previously deferred transactions being
// reconsidered by this run — skip the dirty-value and deferred-dependency
// checks: every deferred transaction is itself a candidate again, so their
// mutual conflicts are re-detected by FindConflicts/DoGroup, and blocking
// them on their own dirty marks would make deferral permanent.
func (e *Engine) checkState(upEx *UpdateExtension, ownDelta []Update, carried bool) Decision {
	if !carried {
		// Line 1: anything touching a dirty value is deferred so that a
		// previously deferred transaction can always be accepted later.
		if len(e.dirty) > 0 {
			for _, k := range upEx.TouchedKeys(e.schema) {
				if e.dirty[k] {
					return DecisionDefer
				}
			}
		}
		// Dependency on a deferred transaction defers (the dirty check
		// catches this in almost all cases; this is the explicit guarantee).
		for id := range upEx.IDs {
			if id == upEx.Root {
				continue
			}
			if _, isDeferred := e.deferredCands[id]; isDeferred {
				return DecisionDefer
			}
		}
	}
	// Line 3: an extension containing an already rejected transaction is
	// rejected.
	for id := range upEx.IDs {
		if e.rejected.Has(id) {
			return DecisionReject
		}
	}
	// A malformed (un-flattenable) extension can never be applied.
	if upEx.Malformed() != nil {
		return DecisionReject
	}
	// Line 5: incompatible with the instance at recno.
	if err := e.inst.CompatibleAll(upEx.Operation); err != nil {
		return DecisionReject
	}
	// Line 7: conflicts with the peer's own delta — the participant always
	// picks its own version first.
	if len(ownDelta) > 0 && len(SetsConflict(e.schema, upEx.Operation, ownDelta)) > 0 {
		return DecisionReject
	}
	return DecisionAccept
}

// packPair packs an ordered candidate-index pair (i < j) into one map key;
// candidate counts are far below 2³², so 32 bits per side suffice.
func packPair(i, j int) uint64 { return uint64(uint32(i))<<32 | uint64(uint32(j)) }

func unpackPair(p uint64) (i, j int) { return int(p >> 32), int(uint32(p)) }

// enumeratePairs returns the unique candidate pairs that share a touched
// key, packed via packPair, pruning with an inverted index from touched
// keys to candidates so only potentially conflicting pairs are emitted.
// The order is deterministic — ascending in i, and for fixed i following
// the candidate's TouchedKeys/posting-list order (NOT ascending j) — which
// is what keeps downstream results identical across runs; dedup uses a
// packed-uint64 set rather than a map[[2]int]bool.
func enumeratePairs(schema *Schema, states []*candidateState) []uint64 {
	byKey := make(map[tupleKey][]int32, len(states))
	for i, st := range states {
		for _, k := range st.upEx.TouchedKeys(schema) {
			byKey[k] = append(byKey[k], int32(i))
		}
	}
	pairSeen := make(map[uint64]struct{})
	var pairs []uint64
	for i, st := range states {
		for _, k := range st.upEx.TouchedKeys(schema) {
			for _, j32 := range byKey[k] {
				j := int(j32)
				if j <= i {
					continue
				}
				p := packPair(i, j)
				if _, dup := pairSeen[p]; dup {
					continue
				}
				pairSeen[p] = struct{}{}
				pairs = append(pairs, p)
			}
		}
	}
	return pairs
}

// findConflicts implements FindConflicts of Figure 5 over the candidates'
// flattened update extensions, skipping pairs where one extension subsumes
// the other. Pair enumeration runs serially and deterministically
// (enumeratePairs); the expensive per-pair conflict/subsumption checks fan
// out across the worker pool, each writing only its own slot of the
// verdict slice.
func (e *Engine) findConflicts(order []*candidateState, stats *ReconcileStats) map[TxnID][]*candidateState {
	conflicts := make(map[TxnID][]*candidateState)
	if len(order) < 2 {
		return conflicts
	}
	pairs := enumeratePairs(e.schema, order)
	stats.ConflictPairs += len(pairs)

	conflicting := make([]bool, len(pairs))
	parallelFor(e.parallelism(len(pairs)), len(pairs), func(pi int) {
		i, j := unpackPair(pairs[pi])
		si, sj := order[i], order[j]
		if len(si.upEx.Conflicts(e.schema, sj.upEx)) == 0 {
			return
		}
		if si.upEx.Subsumes(sj.upEx) || sj.upEx.Subsumes(si.upEx) {
			return
		}
		conflicting[pi] = true
	})

	for pi, hit := range conflicting {
		if !hit {
			continue
		}
		stats.ConflictsFound++
		i, j := unpackPair(pairs[pi])
		si, sj := order[i], order[j]
		conflicts[si.cand.Txn.ID] = append(conflicts[si.cand.Txn.ID], sj)
		conflicts[sj.cand.Txn.ID] = append(conflicts[sj.cand.Txn.ID], si)
	}
	return conflicts
}

// doGroup implements DoGroup of Figure 5 for one priority level: reject
// members that conflict with higher-priority accepted transactions, defer
// members that conflict with higher-priority deferred ones, then defer every
// conflicting pair within the group.
func (e *Engine) doGroup(prio int, order []*candidateState, conflicts map[TxnID][]*candidateState, states map[TxnID]*candidateState) {
	var grp []*candidateState
	for _, st := range order {
		if st.upEx.Priority == prio && st.decision != DecisionReject {
			grp = append(grp, st)
		}
	}
	// Lines 4-12: interactions with strictly higher priorities.
	kept := grp[:0]
	for _, st := range grp {
		rejected := false
		for _, c := range conflicts[st.cand.Txn.ID] {
			if c.upEx.Priority <= prio {
				continue
			}
			switch c.decision {
			case DecisionAccept:
				st.decision = DecisionReject
				rejected = true
			case DecisionDefer:
				st.decision = DecisionDefer
			}
			if rejected {
				break
			}
		}
		if !rejected {
			kept = append(kept, st)
		}
	}
	grp = kept
	// Lines 13-17: conflicts within the group defer both sides.
	for _, st := range grp {
		for _, c := range conflicts[st.cand.Txn.ID] {
			if c.upEx.Priority != prio || c.decision == DecisionReject {
				continue
			}
			if states[c.cand.Txn.ID] == nil {
				continue
			}
			st.decision = DecisionDefer
			c.decision = DecisionDefer
		}
	}
}
