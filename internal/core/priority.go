package core

import (
	"sort"
	"strings"
)

// Trust evaluates a participant's acceptance rules A(p_i): given an update,
// it returns the highest priority v among the rules (θ, v) whose predicate θ
// the update satisfies, or 0 if no rule with v > 0 matches (the update is
// untrusted). Implementations live in internal/trust; core depends only on
// this interface.
type Trust interface {
	// Priority returns the priority the participant assigns to the update,
	// 0 meaning untrusted.
	Priority(u Update) int
}

// OriginTrust is an optional refinement of Trust for policies whose
// priorities depend only on an update's origin (the arc labels of
// Figure 1, with no attribute or operation predicates). Origin-only
// policies admit transaction-level priority caching keyed by the author
// set — see PriorityCache.
type OriginTrust interface {
	Trust
	// OriginOnly reports that Priority reads nothing but u.Origin.
	OriginOnly() bool
}

// TrustFunc adapts a function to the Trust interface.
type TrustFunc func(u Update) int

// Priority implements Trust.
func (f TrustFunc) Priority(u Update) int { return f(u) }

// constTrust assigns one priority to every update.
type constTrust int

func (c constTrust) Priority(Update) int { return int(c) }
func (constTrust) OriginOnly() bool      { return true }

// TrustAll returns a policy that assigns the same priority to every update;
// the paper's experiments use TrustAll(1) at every peer.
func TrustAll(priority int) Trust { return constTrust(priority) }

// originsTrust maps origins to priorities.
type originsTrust map[PeerID]int

func (m originsTrust) Priority(u Update) int { return m[u.Origin] }
func (originsTrust) OriginOnly() bool        { return true }

// TrustOrigins returns a policy that maps each originating peer to a
// priority, 0 for unlisted peers — the arc labels of Figure 1.
func TrustOrigins(prio map[PeerID]int) Trust {
	cp := make(originsTrust, len(prio))
	for k, v := range prio {
		cp[k] = v
	}
	return cp
}

// TxnPriority computes pri_i(X) exactly as defined in §4:
//
//   - 0, if any update δ ∈ X is untrusted (no acceptance rule with v > 0
//     matches δ);
//   - max over all updates of the matched priority, otherwise.
func TxnPriority(t Trust, x *Transaction) int {
	max := 0
	for _, u := range x.Updates {
		v := t.Priority(u)
		if v <= 0 {
			return 0
		}
		if v > max {
			max = v
		}
	}
	return max
}

// PriorityCache memoizes TxnPriority by the transaction's author set (its
// distinct update origins). For an origin-only policy (OriginTrust),
// pri_i(X) is a pure function of that set — 0 if any origin is untrusted,
// the max origin priority otherwise — so transactions sharing authors
// share one evaluation instead of walking every update through the
// policy. For any other policy the cache transparently falls back to
// TxnPriority.
//
// The cache is deliberately tied to one Trust value: replacing the policy
// means building a new cache (Engine.SetTrust/RefreshTrust and the
// central store's registration path do exactly that), which is what keeps
// a mid-stream trust change from serving stale priorities. A
// PriorityCache is not safe for concurrent use; each owner (an engine
// goroutine, a store's per-peer shard) keeps its own.
type PriorityCache struct {
	t          Trust
	originOnly bool
	single     map[PeerID]int // single-author fast path
	multi      map[string]int // sorted distinct author sets
}

// NewPriorityCache returns a cache over the policy. A nil policy yields a
// nil cache (which TxnPriority treats as "no trust": every transaction
// untrusted).
func NewPriorityCache(t Trust) *PriorityCache {
	if t == nil {
		return nil
	}
	c := &PriorityCache{t: t}
	if ot, ok := t.(OriginTrust); ok && ot.OriginOnly() {
		c.originOnly = true
		c.single = make(map[PeerID]int)
	}
	return c
}

// Trust returns the policy the cache evaluates.
func (c *PriorityCache) Trust() Trust {
	if c == nil {
		return nil
	}
	return c.t
}

// TxnPriority returns pri_i(X), served from the author-set cache when the
// policy is origin-only.
func (c *PriorityCache) TxnPriority(x *Transaction) int {
	if c == nil {
		return 0
	}
	if !c.originOnly || len(x.Updates) == 0 {
		return TxnPriority(c.t, x)
	}
	first := x.Updates[0].Origin
	multi := false
	for i := 1; i < len(x.Updates); i++ {
		if x.Updates[i].Origin != first {
			multi = true
			break
		}
	}
	if !multi {
		if v, ok := c.single[first]; ok {
			return v
		}
		v := TxnPriority(c.t, x)
		c.single[first] = v
		return v
	}
	key := authorSetKey(x)
	if v, ok := c.multi[key]; ok {
		return v
	}
	v := TxnPriority(c.t, x)
	if c.multi == nil {
		c.multi = make(map[string]int)
	}
	c.multi[key] = v
	return v
}

// authorSetKey encodes the transaction's distinct origins, sorted. Only
// the set matters: per-update priorities are a function of origin, so
// multiplicity cannot change the min/max.
func authorSetKey(x *Transaction) string {
	origins := make([]string, 0, 4)
	for _, u := range x.Updates {
		s := string(u.Origin)
		dup := false
		for _, e := range origins {
			if e == s {
				dup = true
				break
			}
		}
		if !dup {
			origins = append(origins, s)
		}
	}
	sort.Strings(origins)
	return strings.Join(origins, "\x00")
}
