package core

// Trust evaluates a participant's acceptance rules A(p_i): given an update,
// it returns the highest priority v among the rules (θ, v) whose predicate θ
// the update satisfies, or 0 if no rule with v > 0 matches (the update is
// untrusted). Implementations live in internal/trust; core depends only on
// this interface.
type Trust interface {
	// Priority returns the priority the participant assigns to the update,
	// 0 meaning untrusted.
	Priority(u Update) int
}

// TrustFunc adapts a function to the Trust interface.
type TrustFunc func(u Update) int

// Priority implements Trust.
func (f TrustFunc) Priority(u Update) int { return f(u) }

// TrustAll returns a policy that assigns the same priority to every update;
// the paper's experiments use TrustAll(1) at every peer.
func TrustAll(priority int) Trust {
	return TrustFunc(func(Update) int { return priority })
}

// TrustOrigins returns a policy that maps each originating peer to a
// priority, 0 for unlisted peers — the arc labels of Figure 1.
func TrustOrigins(prio map[PeerID]int) Trust {
	cp := make(map[PeerID]int, len(prio))
	for k, v := range prio {
		cp[k] = v
	}
	return TrustFunc(func(u Update) int { return cp[u.Origin] })
}

// TxnPriority computes pri_i(X) exactly as defined in §4:
//
//   - 0, if any update δ ∈ X is untrusted (no acceptance rule with v > 0
//     matches δ);
//   - max over all updates of the matched priority, otherwise.
func TxnPriority(t Trust, x *Transaction) int {
	max := 0
	for _, u := range x.Updates {
		v := t.Priority(u)
		if v <= 0 {
			return 0
		}
		if v > max {
			max = v
		}
	}
	return max
}
