package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomCDSSRun drives a randomized multi-peer share/reconcile scenario
// through the test log and returns the engines for invariant checks.
func randomCDSSRun(t *testing.T, seed int64, peers, rounds, editsPerRound int) (*testLog, []*Engine) {
	t.Helper()
	s := proteinSchema(t)
	log := newTestLog(t, s)
	r := rand.New(rand.NewSource(seed))
	engines := make([]*Engine, peers)
	for i := range engines {
		engines[i] = NewEngine(PeerID(fmt.Sprintf("p%d", i)), s, TrustAll(1))
	}
	orgs := []string{"rat", "mouse", "dog"}
	fns := []string{"a", "b", "c", "d"}
	for round := 0; round < rounds; round++ {
		for _, e := range engines {
			for k := 0; k < editsPerRound; k++ {
				org := orgs[r.Intn(len(orgs))]
				prot := fmt.Sprintf("prot%d", r.Intn(6))
				fn := fns[r.Intn(len(fns))]
				key := Strs(org, prot)
				var u Update
				if cur, ok := e.Instance().Lookup("F", key); ok {
					switch r.Intn(4) {
					case 0:
						u = Delete("F", cur, e.Peer())
					default:
						if cur[2].Str() == fn {
							continue
						}
						u = Modify("F", cur, Strs(org, prot, fn), e.Peer())
					}
				} else {
					u = Insert("F", Strs(org, prot, fn), e.Peer())
				}
				x, err := e.NewLocalTransaction(u)
				if err != nil {
					continue // local conflict with a dirty shadow etc.
				}
				log.publish(x)
			}
			log.reconcile(e)
		}
	}
	return log, engines
}

// TestInvariantDecisionSetsDisjoint: applied, rejected, and deferred are
// pairwise disjoint at every peer after arbitrary runs.
func TestInvariantDecisionSetsDisjoint(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		_, engines := randomCDSSRun(t, seed, 4, 5, 3)
		for _, e := range engines {
			for _, id := range e.DeferredIDs() {
				if e.Applied(id) {
					t.Fatalf("seed %d: %s both deferred and applied at %s", seed, id, e.Peer())
				}
				if e.Rejected(id) {
					t.Fatalf("seed %d: %s both deferred and rejected at %s", seed, id, e.Peer())
				}
			}
			for id := range e.applied {
				if e.rejected.Has(id) {
					t.Fatalf("seed %d: %s both applied and rejected at %s", seed, id, e.Peer())
				}
			}
		}
	}
}

// TestInvariantReconcileIdempotent: idle reconciliations (nothing new
// published) may make progress on carried deferred transactions — their
// decisions are monotone — but must reach a fixpoint, after which another
// idle run changes nothing.
func TestInvariantReconcileIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		log, engines := randomCDSSRun(t, seed, 4, 4, 3)
		for _, e := range engines {
			// Drain to the fixpoint: decisions only grow, so this
			// terminates.
			for i := 0; ; i++ {
				res := log.reconcile(e)
				if len(res.Accepted) == 0 && len(res.Rejected) == 0 {
					break
				}
				if i > 50 {
					t.Fatalf("seed %d: no fixpoint after 50 idle reconciles at %s", seed, e.Peer())
				}
			}
			before := e.Instance().Clone()
			defBefore := NewTxnSet(e.DeferredIDs()...)
			res := log.reconcile(e)
			if len(res.Accepted) != 0 || len(res.Rejected) != 0 {
				t.Fatalf("seed %d: idle reconcile decided %+v at %s", seed, res, e.Peer())
			}
			if !e.Instance().Equal(before) {
				t.Fatalf("seed %d: idle reconcile changed %s's instance", seed, e.Peer())
			}
			defAfter := NewTxnSet(e.DeferredIDs()...)
			if len(defBefore) != len(defAfter) {
				t.Fatalf("seed %d: idle reconcile changed deferred set at %s: %v -> %v",
					seed, e.Peer(), defBefore.Sorted(), defAfter.Sorted())
			}
		}
	}
}

// TestInvariantInstanceConsistency: every engine's instance satisfies key
// uniqueness by construction; verify each tuple round-trips through its key
// and validates against the schema.
func TestInvariantInstanceConsistency(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		_, engines := randomCDSSRun(t, seed, 4, 5, 3)
		for _, e := range engines {
			s := e.Schema()
			rel := s.MustRelation("F")
			for _, tu := range e.Instance().Tuples("F") {
				if err := rel.Validate(tu); err != nil {
					t.Fatalf("seed %d: invalid tuple %v at %s: %v", seed, tu, e.Peer(), err)
				}
				got, ok := e.Instance().Lookup("F", rel.KeyOf(tu))
				if !ok || !got.Equal(tu) {
					t.Fatalf("seed %d: key index broken for %v at %s", seed, tu, e.Peer())
				}
			}
		}
	}
}

// TestProposition1: a trusted transaction with no directly conflicting,
// non-subsumed transaction of equal or higher priority is always accepted
// (when compatible with the instance and not behind dirty keys).
func TestProposition1(t *testing.T) {
	s := proteinSchema(t)
	for seed := int64(1); seed <= 20; seed++ {
		log := newTestLog(t, s)
		q := NewEngine("q", s, TrustAll(1))
		r := rand.New(rand.NewSource(seed))
		// Publish transactions with unique keys (never conflicting) mixed
		// with contended ones.
		var unique []TxnID
		for i := 0; i < 10; i++ {
			p := PeerID(fmt.Sprintf("u%d", i))
			e := NewEngine(p, s, TrustAll(1))
			var x *Transaction
			if r.Intn(2) == 0 {
				x = mustLocal(t, e, Insert("F", Strs("solo", fmt.Sprintf("prot%d", i), "v"), p))
				unique = append(unique, x.ID)
			} else {
				x = mustLocal(t, e, Insert("F", Strs("contended", "prot0", fmt.Sprintf("v%d", i)), p))
			}
			log.publish(x)
		}
		log.reconcile(q)
		for _, id := range unique {
			if !q.Applied(id) {
				t.Fatalf("seed %d: uncontended %s not accepted", seed, id)
			}
		}
	}
}

// TestConvergenceUnderResolution: if users resolve every conflict (always
// picking option 0) and peers keep reconciling, all deferred sets drain.
func TestConvergenceUnderResolution(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		log, engines := randomCDSSRun(t, seed, 4, 4, 3)
		for pass := 0; pass < 10; pass++ {
			pendingWork := false
			for _, e := range engines {
				log.reconcile(e)
				for len(e.ConflictGroups()) > 0 {
					pendingWork = true
					g := e.ConflictGroups()[0]
					if _, err := e.Resolve(g.Conflict, 0); err != nil {
						t.Fatalf("seed %d: resolve: %v", seed, err)
					}
				}
				if len(e.DeferredIDs()) > 0 {
					// Deferred without a group: blocked on upstream
					// conflicts that later passes resolve.
					pendingWork = true
				}
			}
			if !pendingWork {
				break
			}
		}
		for _, e := range engines {
			if n := len(e.ConflictGroups()); n != 0 {
				t.Errorf("seed %d: %s still has %d conflict groups", seed, e.Peer(), n)
			}
		}
	}
}
