package core

import (
	"fmt"
	"sort"
)

// AttrDef declares one attribute of a relation.
type AttrDef struct {
	Name string
	Kind Kind // expected kind; KindNull means any kind is accepted
	// NotNull forbids NULL values in this attribute.
	NotNull bool
}

// ForeignKey declares that a projection of this relation references the key
// of another relation. It is checked by Instance compatibility tests: an
// update is incompatible with an instance if applying it would leave a
// dangling reference or delete a referenced key.
type ForeignKey struct {
	// Attrs are the indices, in this relation, of the referencing columns.
	Attrs []int
	// RefRel is the name of the referenced relation; the referenced columns
	// are RefRel's key attributes, in order.
	RefRel string
}

// Relation describes one relation (table) in the shared schema Σ: its name,
// attributes, key, and integrity constraints.
type Relation struct {
	Name  string
	Attrs []AttrDef
	// Key lists the indices of the key attributes, e.g. (organism, protein)
	// for F(organism, protein, function) is []int{0, 1}.
	Key []int
	// ForeignKeys are optional referential constraints.
	ForeignKeys []ForeignKey
}

// NewRelation builds a relation with string-typed attributes whose names are
// attrs and whose key is the first nkey attributes. It is the convenient
// constructor for the paper's examples and workloads.
func NewRelation(name string, nkey int, attrs ...string) *Relation {
	r := &Relation{Name: name}
	for _, a := range attrs {
		r.Attrs = append(r.Attrs, AttrDef{Name: a, Kind: KindString, NotNull: true})
	}
	for i := 0; i < nkey; i++ {
		r.Key = append(r.Key, i)
	}
	return r
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// KeyOf projects a tuple onto the relation's key attributes.
func (r *Relation) KeyOf(t Tuple) Tuple { return t.Project(r.Key) }

// KeyEnc returns the canonical encoding of the tuple's key projection.
func (r *Relation) KeyEnc(t Tuple) string { return r.KeyOf(t).Encode() }

// Validate checks a tuple's arity, attribute kinds and NOT NULL constraints
// against the relation's definition.
func (r *Relation) Validate(t Tuple) error {
	if len(t) != len(r.Attrs) {
		return fmt.Errorf("core: relation %s: tuple arity %d, want %d", r.Name, len(t), len(r.Attrs))
	}
	for i, v := range t {
		a := r.Attrs[i]
		if v.IsNull() {
			if a.NotNull {
				return fmt.Errorf("core: relation %s: attribute %s is NOT NULL", r.Name, a.Name)
			}
			continue
		}
		if a.Kind != KindNull && v.Kind() != a.Kind {
			return fmt.Errorf("core: relation %s: attribute %s has kind %s, want %s",
				r.Name, a.Name, v.Kind(), a.Kind)
		}
	}
	return nil
}

// validateStructure checks the relation definition itself.
func (r *Relation) validateStructure() error {
	if r.Name == "" {
		return fmt.Errorf("core: relation with empty name")
	}
	if len(r.Attrs) == 0 {
		return fmt.Errorf("core: relation %s has no attributes", r.Name)
	}
	if len(r.Key) == 0 {
		return fmt.Errorf("core: relation %s has no key", r.Name)
	}
	seen := make(map[string]bool, len(r.Attrs))
	for _, a := range r.Attrs {
		if a.Name == "" {
			return fmt.Errorf("core: relation %s has an unnamed attribute", r.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("core: relation %s: duplicate attribute %s", r.Name, a.Name)
		}
		seen[a.Name] = true
	}
	for _, k := range r.Key {
		if k < 0 || k >= len(r.Attrs) {
			return fmt.Errorf("core: relation %s: key index %d out of range", r.Name, k)
		}
	}
	return nil
}

// AttrIndex returns the index of the named attribute, or -1.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Schema is the set of relations Σ shared by all participants.
type Schema struct {
	rels  map[string]*Relation
	order []string
}

// NewSchema builds a schema from relations, validating each definition and
// every foreign-key reference.
func NewSchema(rels ...*Relation) (*Schema, error) {
	s := &Schema{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if err := r.validateStructure(); err != nil {
			return nil, err
		}
		if _, dup := s.rels[r.Name]; dup {
			return nil, fmt.Errorf("core: duplicate relation %s", r.Name)
		}
		s.rels[r.Name] = r
		s.order = append(s.order, r.Name)
	}
	for _, r := range rels {
		for _, fk := range r.ForeignKeys {
			ref, ok := s.rels[fk.RefRel]
			if !ok {
				return nil, fmt.Errorf("core: relation %s: foreign key references unknown relation %s", r.Name, fk.RefRel)
			}
			if len(fk.Attrs) != len(ref.Key) {
				return nil, fmt.Errorf("core: relation %s: foreign key arity %d, referenced key arity %d",
					r.Name, len(fk.Attrs), len(ref.Key))
			}
			for _, a := range fk.Attrs {
				if a < 0 || a >= len(r.Attrs) {
					return nil, fmt.Errorf("core: relation %s: foreign key attribute index %d out of range", r.Name, a)
				}
			}
		}
	}
	sort.Strings(s.order)
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(rels ...*Relation) *Schema {
	s, err := NewSchema(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the named relation.
func (s *Schema) Relation(name string) (*Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// MustRelation returns the named relation or panics; for internal use where
// the name has already been validated.
func (s *Schema) MustRelation(name string) *Relation {
	r, ok := s.rels[name]
	if !ok {
		panic(fmt.Sprintf("core: unknown relation %s", name))
	}
	return r
}

// Names returns the relation names in sorted order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Len returns the number of relations.
func (s *Schema) Len() int { return len(s.rels) }

// referrers returns, for each relation name, the foreign keys (and their
// owning relations) that reference it. Used by Instance to maintain
// reverse reference counts.
func (s *Schema) referrers(name string) []fkRef {
	var out []fkRef
	for _, rn := range s.order {
		r := s.rels[rn]
		for i, fk := range r.ForeignKeys {
			if fk.RefRel == name {
				out = append(out, fkRef{rel: r, fkIdx: i})
			}
		}
	}
	return out
}

type fkRef struct {
	rel   *Relation
	fkIdx int
}
