package core

import "testing"

// TestFigure2 reproduces the paper's running example (Figure 2) verbatim:
// three participants sharing F(organism, protein, function) with the trust
// topology of Figure 1, reconciling over four epochs.
func TestFigure2(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)

	// Figure 1 trust topology.
	p1 := NewEngine("p1", s, TrustOrigins(map[PeerID]int{"p2": 1, "p3": 1}))
	p2 := NewEngine("p2", s, TrustOrigins(map[PeerID]int{"p1": 2, "p3": 1}))
	p3 := NewEngine("p3", s, TrustOrigins(map[PeerID]int{"p2": 1}))

	// Epoch 1: p3 inserts and revises, publishes and reconciles.
	x30 := mustLocal(t, p3, Insert("F", Strs("rat", "prot1", "cell-metab"), "p3"))
	x31 := mustLocal(t, p3, Modify("F", Strs("rat", "prot1", "cell-metab"), Strs("rat", "prot1", "immune"), "p3"))
	log.publish(x30, x31)
	res := log.reconcile(p3)
	if len(res.Accepted)+len(res.Rejected)+len(res.Deferred) != 0 {
		t.Fatalf("epoch 1: p3 should see no foreign transactions, got %+v", res)
	}
	wantTuples(t, p3.Instance(), "F", Strs("rat", "prot1", "immune"))

	// Epoch 2: p2 inserts two tuples, publishes and reconciles. It trusts
	// p3's updates but they conflict with its own local state, so both are
	// rejected.
	x20 := mustLocal(t, p2, Insert("F", Strs("mouse", "prot2", "immune"), "p2"))
	x21 := mustLocal(t, p2, Insert("F", Strs("rat", "prot1", "cell-resp"), "p2"))
	log.publish(x20, x21)
	res = log.reconcile(p2)
	wantIDs(t, "epoch 2 rejected", res.Rejected, x30.ID, x31.ID)
	wantIDs(t, "epoch 2 accepted", res.Accepted)
	wantTuples(t, p2.Instance(), "F",
		Strs("mouse", "prot2", "immune"),
		Strs("rat", "prot1", "cell-resp"))

	// Epoch 3: p3 reconciles again: accepts the mouse tuple, rejects the
	// rat tuple that is incompatible with its local state.
	res = log.reconcile(p3)
	wantIDs(t, "epoch 3 accepted", res.Accepted, x20.ID)
	wantIDs(t, "epoch 3 rejected", res.Rejected, x21.ID)
	wantTuples(t, p3.Instance(), "F",
		Strs("mouse", "prot2", "immune"),
		Strs("rat", "prot1", "immune"))

	// Epoch 4: p1 reconciles, trusting p2 and p3 equally: it accepts the
	// non-conflicting mouse update and defers all three rat transactions.
	res = log.reconcile(p1)
	wantIDs(t, "epoch 4 accepted", res.Accepted, x20.ID)
	wantIDs(t, "epoch 4 deferred", res.Deferred, x30.ID, x31.ID, x21.ID)
	wantIDs(t, "epoch 4 rejected", res.Rejected)
	wantTuples(t, p1.Instance(), "F", Strs("mouse", "prot2", "immune"))

	// The deferred transactions form one conflict group over key
	// (rat, prot1) with three options: cell-metab, immune, cell-resp.
	groups := p1.ConflictGroups()
	if len(groups) != 1 {
		t.Fatalf("epoch 4: got %d conflict groups (%v), want 1", len(groups), groups)
	}
	g := groups[0]
	if g.Conflict.Type != ConflictKeyValue || g.Conflict.Rel != "F" {
		t.Fatalf("conflict group: got %v", g.Conflict)
	}
	if len(g.Options) != 3 {
		t.Fatalf("conflict group options: got %v, want 3 options", g)
	}
	// The immune option must carry its antecedent X3:0.
	var immuneOpt *Option
	for _, o := range g.Options {
		for _, id := range o.Txns {
			if id == x31.ID {
				immuneOpt = o
			}
		}
	}
	if immuneOpt == nil {
		t.Fatalf("no option contains %s: %v", x31.ID, g)
	}
	wantIDs(t, "immune option txns", immuneOpt.Txns, x30.ID, x31.ID)
}

// TestFigure2ResolveImmune continues Figure 2: p1's user resolves the
// (rat, prot1) conflict in favour of p3's immune chain. The cell-resp
// transaction is rejected and the immune chain is applied.
func TestFigure2ResolveImmune(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p1 := NewEngine("p1", s, TrustOrigins(map[PeerID]int{"p2": 1, "p3": 1}))
	p2 := NewEngine("p2", s, TrustOrigins(map[PeerID]int{"p1": 2, "p3": 1}))
	p3 := NewEngine("p3", s, TrustOrigins(map[PeerID]int{"p2": 1}))

	x30 := mustLocal(t, p3, Insert("F", Strs("rat", "prot1", "cell-metab"), "p3"))
	x31 := mustLocal(t, p3, Modify("F", Strs("rat", "prot1", "cell-metab"), Strs("rat", "prot1", "immune"), "p3"))
	log.publish(x30, x31)
	log.reconcile(p3)
	x20 := mustLocal(t, p2, Insert("F", Strs("mouse", "prot2", "immune"), "p2"))
	x21 := mustLocal(t, p2, Insert("F", Strs("rat", "prot1", "cell-resp"), "p2"))
	log.publish(x20, x21)
	log.reconcile(p2)
	log.reconcile(p1)

	g := p1.ConflictGroups()[0]
	winner := -1
	for i, o := range g.Options {
		for _, id := range o.Txns {
			if id == x31.ID {
				winner = i
			}
		}
	}
	if winner < 0 {
		t.Fatalf("immune option not found in %v", g)
	}
	res, err := p1.Resolve(g.Conflict, winner)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	wantIDs(t, "post-resolve accepted", res.Accepted, x30.ID, x31.ID)
	wantTuples(t, p1.Instance(), "F",
		Strs("mouse", "prot2", "immune"),
		Strs("rat", "prot1", "immune"))
	if !p1.Rejected(x21.ID) {
		t.Errorf("x21 should be rejected after resolution")
	}
	if len(p1.ConflictGroups()) != 0 {
		t.Errorf("conflict groups should be empty after resolution: %v", p1.ConflictGroups())
	}
	if p1.DirtyKeyCount() != 0 {
		t.Errorf("dirty keys should be cleared, have %d", p1.DirtyKeyCount())
	}
}

// TestFigure2ResolveCellMetab picks the pre-revision option (+cell-metab,
// X3:0 alone): the revision X3:1 and the cell-resp insert are rejected, and
// only the original insert is applied.
func TestFigure2ResolveCellMetab(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p1 := NewEngine("p1", s, TrustOrigins(map[PeerID]int{"p2": 1, "p3": 1}))
	p2 := NewEngine("p2", s, TrustOrigins(map[PeerID]int{"p1": 2, "p3": 1}))
	p3 := NewEngine("p3", s, TrustOrigins(map[PeerID]int{"p2": 1}))

	x30 := mustLocal(t, p3, Insert("F", Strs("rat", "prot1", "cell-metab"), "p3"))
	x31 := mustLocal(t, p3, Modify("F", Strs("rat", "prot1", "cell-metab"), Strs("rat", "prot1", "immune"), "p3"))
	log.publish(x30, x31)
	log.reconcile(p3)
	x20 := mustLocal(t, p2, Insert("F", Strs("mouse", "prot2", "immune"), "p2"))
	x21 := mustLocal(t, p2, Insert("F", Strs("rat", "prot1", "cell-resp"), "p2"))
	log.publish(x20, x21)
	log.reconcile(p2)
	log.reconcile(p1)

	g := p1.ConflictGroups()[0]
	winner := -1
	for i, o := range g.Options {
		if len(o.Txns) == 1 && o.Txns[0] == x30.ID {
			winner = i
		}
	}
	if winner < 0 {
		t.Fatalf("cell-metab option not found in %v", g)
	}
	if _, err := p1.Resolve(g.Conflict, winner); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	wantTuples(t, p1.Instance(), "F",
		Strs("mouse", "prot2", "immune"),
		Strs("rat", "prot1", "cell-metab"))
	if !p1.Rejected(x31.ID) || !p1.Rejected(x21.ID) {
		t.Errorf("x31 and x21 should be rejected; rejected(x31)=%v rejected(x21)=%v",
			p1.Rejected(x31.ID), p1.Rejected(x21.ID))
	}
}

// TestFigure2RejectAll rejects every option: the key stays absent at p1 and
// all three transactions are rejected.
func TestFigure2RejectAll(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p1 := NewEngine("p1", s, TrustOrigins(map[PeerID]int{"p2": 1, "p3": 1}))
	p2 := NewEngine("p2", s, TrustOrigins(map[PeerID]int{"p1": 2, "p3": 1}))
	p3 := NewEngine("p3", s, TrustOrigins(map[PeerID]int{"p2": 1}))

	x30 := mustLocal(t, p3, Insert("F", Strs("rat", "prot1", "cell-metab"), "p3"))
	x31 := mustLocal(t, p3, Modify("F", Strs("rat", "prot1", "cell-metab"), Strs("rat", "prot1", "immune"), "p3"))
	log.publish(x30, x31)
	log.reconcile(p3)
	x20 := mustLocal(t, p2, Insert("F", Strs("mouse", "prot2", "immune"), "p2"))
	x21 := mustLocal(t, p2, Insert("F", Strs("rat", "prot1", "cell-resp"), "p2"))
	log.publish(x20, x21)
	log.reconcile(p2)
	log.reconcile(p1)

	g := p1.ConflictGroups()[0]
	if _, err := p1.Resolve(g.Conflict, -1); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	wantTuples(t, p1.Instance(), "F", Strs("mouse", "prot2", "immune"))
	for _, id := range []TxnID{x30.ID, x31.ID, x21.ID} {
		if !p1.Rejected(id) {
			t.Errorf("%s should be rejected", id)
		}
	}
}
