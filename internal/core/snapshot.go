package core

import (
	"fmt"
	"sort"
)

// EngineSnapshot is the serializable image of a participant's durable engine
// state: the materialized instance, the applied/rejected decision sets, the
// value-provenance map, and the local transaction sequence. It captures
// exactly the state core.Restore reconstructs from the update store's log —
// reconciliation soft state (deferred candidates, dirty values, conflict
// groups) is deliberately absent, because the store never records it and the
// next reconciliation rebuilds it (see docs/RECOVERY.md).
//
// A snapshot is canonical: relations, tuples, decision sets, and producers
// are sorted, so the same engine state always exports the same snapshot.
type EngineSnapshot struct {
	Peer    PeerID
	NextSeq uint64
	// Applied and Rejected are the decided transaction sets, sorted by ID.
	Applied  []TxnID
	Rejected []TxnID
	// Relations holds the instance contents, sorted by relation name;
	// relations with no tuples are omitted.
	Relations []RelationSnapshot
	// Producers is the provenance map: for each tuple value, the transaction
	// that produced it. Sorted by relation name, then tuple encoding.
	Producers []ProducerSnapshot
}

// RelationSnapshot is one relation's tuples, sorted by key encoding.
type RelationSnapshot struct {
	Name   string
	Tuples []Tuple
}

// ProducerSnapshot records that Txn produced the value Tuple in relation Rel.
type ProducerSnapshot struct {
	Rel   string
	Tuple Tuple
	Txn   TxnID
}

// ExportSnapshot captures the engine's durable state as a canonical
// EngineSnapshot. The engine is not modified; the exported tuples are shared
// (tuples are immutable by convention).
func (e *Engine) ExportSnapshot() *EngineSnapshot {
	snap := &EngineSnapshot{
		Peer:     e.peer,
		NextSeq:  e.nextSeq,
		Applied:  e.applied.Sorted(),
		Rejected: e.rejected.Sorted(),
	}
	names := e.schema.Names()
	sort.Strings(names)
	for _, name := range names {
		if e.inst.Len(name) == 0 {
			continue
		}
		snap.Relations = append(snap.Relations, RelationSnapshot{
			Name:   name,
			Tuples: e.inst.Tuples(name),
		})
	}
	type prodKey struct{ rel, enc string }
	keys := make([]prodKey, 0, len(e.producers))
	for k := range e.producers {
		keys = append(keys, prodKey{rel: k.rel, enc: k.enc})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rel != keys[j].rel {
			return keys[i].rel < keys[j].rel
		}
		return keys[i].enc < keys[j].enc
	})
	for _, k := range keys {
		t, err := DecodeTuple(k.enc)
		if err != nil {
			continue // producers only ever hold canonical encodings
		}
		snap.Producers = append(snap.Producers, ProducerSnapshot{
			Rel:   k.rel,
			Tuple: t,
			Txn:   e.producers[tupleKey{rel: k.rel, enc: k.enc}],
		})
	}
	return snap
}

// NewEngineFromSnapshot builds an engine whose durable state is restored
// from the snapshot: instance, applied/rejected sets, provenance, and local
// sequence come back exactly as exported. The caller supplies the trust
// policy (policies are not part of the snapshot, mirroring RebuildPeer's
// signature). Use Engine.RestoreTail afterwards to replay the update-store
// log suffix the snapshot does not cover.
func NewEngineFromSnapshot(schema *Schema, trust Trust, snap *EngineSnapshot, opts ...EngineOption) (*Engine, error) {
	e := NewEngine(snap.Peer, schema, trust, opts...)
	e.nextSeq = snap.NextSeq
	for _, id := range snap.Applied {
		e.applied.Add(id)
	}
	for _, id := range snap.Rejected {
		e.rejected.Add(id)
	}
	for _, rs := range snap.Relations {
		rel, ok := schema.Relation(rs.Name)
		if !ok {
			return nil, fmt.Errorf("core: snapshot relation %s not in schema", rs.Name)
		}
		for _, t := range rs.Tuples {
			if err := rel.Validate(t); err != nil {
				return nil, fmt.Errorf("core: snapshot tuple for %s: %w", rs.Name, err)
			}
			e.inst.put(rel, t, rel.KeyEnc(t))
		}
	}
	for _, p := range snap.Producers {
		if _, ok := schema.Relation(p.Rel); !ok {
			return nil, fmt.Errorf("core: snapshot producer relation %s not in schema", p.Rel)
		}
		e.producers[mkTupleKey(p.Rel, p.Tuple)] = p.Txn
	}
	return e, nil
}
