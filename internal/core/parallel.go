package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// EngineOption configures an Engine at construction time.
type EngineOption func(*Engine)

// WithParallelism bounds the engine's worker pool to n workers for the
// embarrassingly parallel reconciliation stages (per-candidate extension
// flattening + CheckState, and FindConflicts pair checks). n <= 0 restores
// the default, runtime.GOMAXPROCS(0). WithParallelism(1) runs every stage
// inline on the calling goroutine — the serial escape hatch used by the
// differential tests; decisions are identical at every worker count, only
// wall-clock changes.
func WithParallelism(n int) EngineOption {
	return func(e *Engine) { e.par = n }
}

// parallelism resolves the worker count for a stage of n independent items.
func (e *Engine) parallelism(n int) int {
	w := e.par
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (the caller's goroutine counts as one). Work is handed out in
// contiguous chunks via an atomic cursor, so idle workers steal the
// remainder of uneven stages. fn must not touch shared mutable state; a
// panic in any worker is re-raised on the calling goroutine.
//
// workers <= 1 (or n <= 1) degrades to a plain loop with no goroutines and
// no synchronization — the serial mode is not merely "parallel with one
// worker", it is the untouched sequential code path.
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	var (
		cursor   atomic.Int64
		panicked atomic.Pointer[panicBox]
		wg       sync.WaitGroup
	)
	body := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicBox{val: r})
			}
		}()
		for {
			hi := cursor.Add(int64(chunk))
			lo := hi - int64(chunk)
			if lo >= int64(n) {
				return
			}
			if hi > int64(n) {
				hi = int64(n)
			}
			for i := lo; i < hi; i++ {
				if panicked.Load() != nil {
					return
				}
				fn(int(i))
			}
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body()
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.val)
	}
}

// panicBox carries a recovered panic value across goroutines.
type panicBox struct{ val any }
