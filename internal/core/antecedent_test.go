package core

import "testing"

func TestAntecedentGraphBasics(t *testing.T) {
	s := flatSchema(t)
	g := NewAntecedentGraph(s)

	x0 := NewTransaction(xid("p1", 0), Insert("F", Strs("rat", "p1", "a"), "p1"))
	x1 := NewTransaction(xid("p2", 0), Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "p2"))
	x2 := NewTransaction(xid("p3", 0), Delete("F", Strs("rat", "p1", "b"), "p3"))
	for _, x := range []*Transaction{x0, x1, x2} {
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if x0.Order >= x1.Order || x1.Order >= x2.Order {
		t.Error("orders not increasing")
	}
	if got := g.Antecedents(x0.ID); len(got) != 0 {
		t.Errorf("x0 antecedents = %v", got)
	}
	if got := g.Antecedents(x1.ID); len(got) != 1 || got[0] != x0.ID {
		t.Errorf("x1 antecedents = %v", got)
	}
	if got := g.Antecedents(x2.ID); len(got) != 1 || got[0] != x1.ID {
		t.Errorf("x2 antecedents = %v", got)
	}
	if err := g.Add(x0); err == nil {
		t.Error("duplicate Add should fail")
	}
	if _, ok := g.Txn(x1.ID); !ok {
		t.Error("Txn lookup failed")
	}
	if _, ok := g.Txn(xid("zz", 9)); ok {
		t.Error("unknown Txn lookup should fail")
	}
}

func TestAntecedentIntraTxnChaining(t *testing.T) {
	// A transaction that inserts and immediately modifies its own tuple has
	// no external antecedent; the producer map must chain within the txn.
	s := flatSchema(t)
	g := NewAntecedentGraph(s)
	x := NewTransaction(xid("p3", 0),
		Insert("F", Strs("rat", "p1", "a"), "p3"),
		Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "p3"),
	)
	if err := g.Add(x); err != nil {
		t.Fatal(err)
	}
	if got := g.Antecedents(x.ID); len(got) != 0 {
		t.Errorf("self-chaining txn has antecedents %v", got)
	}
	// A follow-up consuming the final value depends on x.
	y := NewTransaction(xid("p2", 0), Modify("F", Strs("rat", "p1", "b"), Strs("rat", "p1", "c"), "p2"))
	if err := g.Add(y); err != nil {
		t.Fatal(err)
	}
	if got := g.Antecedents(y.ID); len(got) != 1 || got[0] != x.ID {
		t.Errorf("y antecedents = %v", got)
	}
	// A transaction consuming the *intermediate* value has no producer
	// (the value was superseded); it has no antecedent edge.
	z := NewTransaction(xid("p4", 0), Delete("F", Strs("rat", "p1", "a"), "p4"))
	if err := g.Add(z); err != nil {
		t.Fatal(err)
	}
	if got := g.Antecedents(z.ID); len(got) != 0 {
		t.Errorf("z antecedents = %v (intermediate values have no producer)", got)
	}
}

func TestExtensionTransitiveClosure(t *testing.T) {
	s := flatSchema(t)
	g := NewAntecedentGraph(s)
	x0 := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "v0"), "a"))
	x1 := NewTransaction(xid("b", 0), Modify("F", Strs("rat", "p1", "v0"), Strs("rat", "p1", "v1"), "b"))
	x2 := NewTransaction(xid("c", 0), Modify("F", Strs("rat", "p1", "v1"), Strs("rat", "p1", "v2"), "c"))
	for _, x := range []*Transaction{x0, x1, x2} {
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	ext, err := g.Extension(x2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 3 || ext[0].ID != x0.ID || ext[1].ID != x1.ID || ext[2].ID != x2.ID {
		t.Fatalf("extension = %v, want [x0 x1 x2] in order", ext)
	}

	// Excluding applied antecedents stops the closure at them.
	applied := NewTxnSet(x0.ID)
	ext, err = g.Extension(x2.ID, applied.Has)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 2 || ext[0].ID != x1.ID || ext[1].ID != x2.ID {
		t.Fatalf("extension minus applied = %v, want [x1 x2]", ext)
	}

	// A mid-chain applied transaction cuts off everything before it.
	applied = NewTxnSet(x1.ID)
	ext, err = g.Extension(x2.ID, applied.Has)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 1 || ext[0].ID != x2.ID {
		t.Fatalf("extension with applied mid-chain = %v, want [x2]", ext)
	}

	if _, err := g.Extension(xid("zz", 1), nil); err == nil {
		t.Error("extension of unpublished txn should fail")
	}

	ids, err := g.ExtensionIDs(x2.ID, nil)
	if err != nil || len(ids) != 3 {
		t.Errorf("ExtensionIDs = %v, %v", ids, err)
	}
}

func TestExtensionDiamond(t *testing.T) {
	// x3 consumes values from two branches that share a common root.
	s := MustSchema(NewRelation("F", 2, "org", "prot", "fn"))
	g := NewAntecedentGraph(s)
	root := NewTransaction(xid("a", 0),
		Insert("F", Strs("rat", "p1", "v"), "a"),
		Insert("F", Strs("rat", "p2", "w"), "a"))
	l := NewTransaction(xid("b", 0), Modify("F", Strs("rat", "p1", "v"), Strs("rat", "p1", "v2"), "b"))
	r := NewTransaction(xid("c", 0), Modify("F", Strs("rat", "p2", "w"), Strs("rat", "p2", "w2"), "c"))
	top := NewTransaction(xid("d", 0),
		Delete("F", Strs("rat", "p1", "v2"), "d"),
		Delete("F", Strs("rat", "p2", "w2"), "d"))
	for _, x := range []*Transaction{root, l, r, top} {
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	ext, err := g.Extension(top.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 4 {
		t.Fatalf("diamond extension = %v, want all 4 (root deduplicated)", ext)
	}
	for i := 1; i < len(ext); i++ {
		if ext[i-1].Order >= ext[i].Order {
			t.Fatal("extension not sorted by order")
		}
	}
}

func TestInOrderWindow(t *testing.T) {
	s := flatSchema(t)
	g := NewAntecedentGraph(s)
	var ids []TxnID
	for i := 0; i < 5; i++ {
		x := NewTransaction(xid("p", uint64(i)), Insert("F", Strs("o", string(rune('a'+i)), "v"), "p"))
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, x.ID)
	}
	got := g.InOrder(1, 4)
	if len(got) != 3 || got[0].ID != ids[1] || got[2].ID != ids[3] {
		t.Fatalf("InOrder(1,4) = %v", got)
	}
	if got := g.InOrder(5, 10); len(got) != 0 {
		t.Errorf("InOrder beyond end = %v", got)
	}
}
