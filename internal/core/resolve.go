package core

import "fmt"

// Resolve performs user-driven conflict resolution for one conflict group
// (§4.2, end): the user selects the winning option by index, or passes
// winner = -1 to reject every option. The transactions of the losing
// options are rejected; the winners (if any) remain deferred and are
// reconsidered — along with everything that was deferred behind them — by
// the ReconcileUpdates re-run that Resolve triggers.
//
// Resolve returns the result of the re-run. Transactions that still
// conflict in another group remain deferred.
func (e *Engine) Resolve(c Conflict, winner int) (*Result, error) {
	g, ok := e.groups[c]
	if !ok {
		return nil, fmt.Errorf("core: no conflict group for %s", c)
	}
	if winner < -1 || winner >= len(g.Options) {
		return nil, fmt.Errorf("core: conflict %s has %d options; winner %d out of range",
			c, len(g.Options), winner)
	}
	// The losers are the transactions of the losing options minus those of
	// the winning option: a transaction that underlies both (a shared
	// antecedent chain prefix) survives with the winner.
	keep := make(TxnSet)
	if winner >= 0 {
		for _, id := range g.Options[winner].Txns {
			keep.Add(id)
		}
	}
	var losers []TxnID
	for i, opt := range g.Options {
		if i == winner {
			continue
		}
		for _, id := range opt.Txns {
			if keep.Has(id) || e.rejected.Has(id) {
				continue
			}
			e.rejected.Add(id)
			delete(e.deferredCands, id)
			losers = append(losers, id)
		}
	}
	// Re-run reconciliation with no new candidates: previously deferred
	// transactions are reconsidered against the updated rejected set; those
	// whose conflicts are fully resolved are accepted or rejected, and the
	// soft state (dirty values, remaining groups) is rebuilt. The
	// explicitly rejected losers are part of the result so the update
	// store learns of them.
	res, err := e.Reconcile(nil)
	if err != nil {
		return nil, err
	}
	res.Rejected = append(losers, res.Rejected...)
	return res, nil
}

// ResolveAll applies a decision to every outstanding conflict group using
// the chooser callback (which returns the winning option index or -1) and
// runs a single reconciliation afterwards. It loops until no conflict
// groups remain or the chooser made no choice, returning the final result.
func (e *Engine) ResolveAll(choose func(g *ConflictGroup) int) (*Result, error) {
	var last *Result
	for {
		groups := e.ConflictGroups()
		if len(groups) == 0 {
			return last, nil
		}
		progressed := false
		for _, g := range groups {
			// Groups may disappear as earlier resolutions cascade.
			if _, still := e.groups[g.Conflict]; !still {
				continue
			}
			w := choose(g)
			res, err := e.Resolve(g.Conflict, w)
			if err != nil {
				return last, err
			}
			last = res
			progressed = true
		}
		if !progressed {
			return last, nil
		}
	}
}
