package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestAppendOnlyMatchesGeneralOnInsertOnly: on insert-only workloads the
// §4.1 baseline and the general engine agree about which transactions are
// applied, whenever the general engine faces no deferral (unique winners).
// With equal trust both defer/blocklist conflicting pairs, so the final
// instances agree on all uncontended keys.
func TestAppendOnlyMatchesGeneralOnInsertOnly(t *testing.T) {
	s := proteinSchema(t)
	for seed := int64(1); seed <= 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		var batch []*Transaction
		contended := map[string]bool{}
		seenKey := map[string]Tuple{}
		for i := 0; i < 30; i++ {
			org := []string{"rat", "mouse"}[r.Intn(2)]
			prot := fmt.Sprintf("prot%d", r.Intn(10))
			fn := fmt.Sprintf("f%d", r.Intn(3))
			tu := Strs(org, prot, fn)
			keyEnc := Strs(org, prot).Encode()
			if prev, ok := seenKey[keyEnc]; ok && !prev.Equal(tu) {
				contended[keyEnc] = true
			}
			seenKey[keyEnc] = tu
			batch = append(batch, NewTransaction(
				TxnID{Origin: PeerID(fmt.Sprintf("p%d", i)), Seq: 0},
				Insert("F", tu, "x")))
		}

		ao := NewAppendOnlyEngine("q", s, TrustAll(1))
		ao.ReconcileEpoch(batch)

		gen := NewEngine("q", s, TrustAll(1))
		graph := NewAntecedentGraph(s)
		var cands []*Candidate
		for _, x := range batch {
			if err := graph.Add(x); err != nil {
				t.Fatal(err)
			}
			ext, err := graph.Extension(x.ID, nil)
			if err != nil {
				t.Fatal(err)
			}
			cands = append(cands, &Candidate{Txn: x, Priority: 1, Ext: ext})
		}
		if _, err := gen.Reconcile(cands); err != nil {
			t.Fatal(err)
		}

		rel := s.MustRelation("F")
		for keyEnc, tu := range seenKey {
			if contended[keyEnc] {
				continue // both engines block/defer contended keys
			}
			key := rel.KeyOf(tu)
			aoVal, aoOK := ao.Instance().Lookup("F", key)
			gVal, gOK := gen.Instance().Lookup("F", key)
			if !aoOK || !gOK || !aoVal.Equal(gVal) {
				t.Fatalf("seed %d: engines disagree on uncontended key %v: ao=%v(%v) gen=%v(%v)",
					seed, key, aoVal, aoOK, gVal, gOK)
			}
		}
		// Contended keys never materialize in either engine.
		for keyEnc := range contended {
			key, _ := DecodeTuple(keyEnc)
			if _, ok := ao.Instance().Lookup("F", key); ok {
				t.Fatalf("seed %d: append-only applied contended key %v", seed, key)
			}
			if _, ok := gen.Instance().Lookup("F", key); ok {
				t.Fatalf("seed %d: general engine applied contended key %v", seed, key)
			}
		}
	}
}
