package core

import "testing"

// TestPriorityResolvesConflict: conflicting updates at different priorities
// resolve automatically in favour of the higher priority.
func TestPriorityResolvesConflict(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	// q trusts a at 2, b at 1.
	q := NewEngine("q", s, TrustOrigins(map[PeerID]int{"a": 2, "b": 1}))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "high"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "low"), "b"))
	log.publish(xa, xb)

	res := log.reconcile(q)
	wantIDs(t, "accepted", res.Accepted, xa.ID)
	wantIDs(t, "rejected", res.Rejected, xb.ID)
	wantIDs(t, "deferred", res.Deferred)
	wantTuples(t, q.Instance(), "F", Strs("rat", "p1", "high"))
}

// TestEqualPriorityDefers: equal-priority conflicts defer both sides and
// record a conflict group with two options.
func TestEqualPriorityDefers(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	log.publish(xa, xb)

	res := log.reconcile(q)
	wantIDs(t, "deferred", res.Deferred, xa.ID, xb.ID)
	if len(res.Groups) != 1 || len(res.Groups[0].Options) != 2 {
		t.Fatalf("groups = %v", res.Groups)
	}
	if q.DirtyKeyCount() == 0 {
		t.Error("deferred conflict should mark dirty keys")
	}
}

// TestDirtyValueDefersLaterTransactions: a new transaction touching a dirty
// key is deferred even without a direct conflict among the new arrivals.
func TestDirtyValueDefersLaterTransactions(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	log.publish(xa, xb)
	log.reconcile(q) // defers both

	// A later insert with the same key (and the same value as xa!) must be
	// deferred, not accepted, while the conflict is unresolved.
	c := NewEngine("c", s, TrustAll(1))
	xc := mustLocal(t, c, Insert("F", Strs("rat", "p1", "va"), "c"))
	log.publish(xc)
	res := log.reconcile(q)
	wantIDs(t, "deferred after dirty", res.Deferred, xa.ID, xb.ID, xc.ID)
	wantIDs(t, "accepted after dirty", res.Accepted)
}

// TestRejectionCascade: a transaction whose extension contains a rejected
// transaction is rejected.
func TestRejectionCascade(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	// q's own state claims (rat, p1) -> local.
	mustLocal(t, q, Insert("F", Strs("rat", "p1", "local"), "q"))

	// a inserts a conflicting tuple; b then modifies a's tuple.
	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "remote"), "a"))
	log.publish(xa)
	// b imports a's tuple first (so its modify makes sense at b).
	log.reconcile(b)
	xb := mustLocal(t, b, Modify("F", Strs("rat", "p1", "remote"), Strs("rat", "p1", "remote2"), "b"))
	log.publish(xb)

	// First reconciliation: xa incompatible with q's instance -> rejected;
	// xb's extension contains xa -> rejected (possibly in the same run).
	res := log.reconcile(q)
	wantIDs(t, "rejected", res.Rejected, xa.ID, xb.ID)
	wantTuples(t, q.Instance(), "F", Strs("rat", "p1", "local"))

	// And anything later that builds on the rejected chain is rejected too.
	c := NewEngine("c", s, TrustAll(1))
	log.reconcile(c)
	xc := mustLocal(t, c, Modify("F", Strs("rat", "p1", "remote2"), Strs("rat", "p1", "remote3"), "c"))
	log.publish(xc)
	res = log.reconcile(q)
	wantIDs(t, "cascade rejected", res.Rejected, xc.ID)
}

// TestTransitiveAcceptanceOfUntrustedAntecedents: p3 only trusts p2, but
// when p2 revises data that originated at p1, p3 transitively accepts the
// p1 portion (the §3.2 exception).
func TestTransitiveAcceptanceOfUntrustedAntecedents(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p1 := NewEngine("p1", s, TrustAll(1))
	p2 := NewEngine("p2", s, TrustAll(1))
	p3 := NewEngine("p3", s, TrustOrigins(map[PeerID]int{"p2": 1})) // does not trust p1

	x1 := mustLocal(t, p1, Insert("F", Strs("rat", "p1", "orig"), "p1"))
	log.publish(x1)
	log.reconcile(p2)
	x2 := mustLocal(t, p2, Modify("F", Strs("rat", "p1", "orig"), Strs("rat", "p1", "revised"), "p2"))
	log.publish(x2)

	res := log.reconcile(p3)
	// Both p1's insert (as antecedent) and p2's revision are applied.
	wantIDs(t, "accepted", res.Accepted, x1.ID, x2.ID)
	wantTuples(t, p3.Instance(), "F", Strs("rat", "p1", "revised"))

	// But p1's *other* unrelated transactions are not accepted.
	y1 := mustLocal(t, p1, Insert("F", Strs("mouse", "p2", "solo"), "p1"))
	log.publish(y1)
	res = log.reconcile(p3)
	wantIDs(t, "accepted unrelated", res.Accepted)
	if p3.Instance().Len("F") != 1 {
		t.Errorf("untrusted unrelated txn leaked into instance")
	}
}

// TestLeastInteraction: §3.1 — q makes a conflicting modification but
// revises it away before p imports; p must consider the sequence compatible.
func TestLeastInteraction(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p := NewEngine("p", s, TrustAll(1))
	q := NewEngine("q", s, TrustAll(1))

	// p's local state: (mouse, prot2) -> immune (like X2:0).
	mustLocal(t, p, Insert("F", Strs("mouse", "prot2", "immune"), "p"))

	// q inserts a conflicting tuple then revises it to a different key
	// (the paper's X3:2/X3:3 example).
	x32 := mustLocal(t, q, Insert("F", Strs("mouse", "prot2", "cell-resp"), "q"))
	x33 := mustLocal(t, q, Modify("F", Strs("mouse", "prot2", "cell-resp"), Strs("mouse", "prot3", "cell-resp"), "q"))
	log.publish(x32, x33)

	res := log.reconcile(p)
	// The flattened chain +F(mouse, prot3, cell-resp) does not conflict
	// with p's state: accepted.
	wantIDs(t, "accepted", res.Accepted, x32.ID, x33.ID)
	wantTuples(t, p.Instance(), "F",
		Strs("mouse", "prot2", "immune"),
		Strs("mouse", "prot3", "cell-resp"))
}

// TestOwnDeltaWins: the reconciling participant always picks its own version
// first, even when its own update is a deletion (which leaves nothing in the
// instance for the compatibility check to trip on).
func TestOwnDeltaWins(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p := NewEngine("p", s, TrustAll(1))
	q := NewEngine("q", s, TrustAll(1))

	// Shared history: q publishes a tuple, p imports it.
	xq := mustLocal(t, q, Insert("F", Strs("rat", "p1", "shared"), "q"))
	log.publish(xq)
	log.reconcile(p)
	wantTuples(t, p.Instance(), "F", Strs("rat", "p1", "shared"))

	// p deletes it locally; q replaces it concurrently.
	mustLocal(t, p, Delete("F", Strs("rat", "p1", "shared"), "p"))
	xq2 := mustLocal(t, q, Modify("F", Strs("rat", "p1", "shared"), Strs("rat", "p1", "replaced"), "q"))
	log.publish(xq2)

	res := log.reconcile(p)
	wantIDs(t, "rejected", res.Rejected, xq2.ID)
	if p.Instance().Len("F") != 0 {
		t.Errorf("p's deletion should win: %v", p.Instance().Tuples("F"))
	}
}

// TestMonotonicity: accepted updates are never rolled back by later
// reconciliations, even when contradicting updates arrive afterwards.
func TestMonotonicity(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	p := NewEngine("p", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "first"), "a"))
	log.publish(xa)
	log.reconcile(p)
	wantTuples(t, p.Instance(), "F", Strs("rat", "p1", "first"))

	// A conflicting insert arrives later: rejected, not rolled back, even
	// at a higher trust priority (priorities only arbitrate conflicts
	// between candidates of the same reconciliation).
	p.SetTrust(TrustOrigins(map[PeerID]int{"a": 1, "b": 5}))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "second"), "b"))
	log.publish(xb)
	res := log.reconcile(p)
	wantIDs(t, "rejected", res.Rejected, xb.ID)
	wantTuples(t, p.Instance(), "F", Strs("rat", "p1", "first"))
}

// TestHigherPriorityDeferredDefersLower: a lower-priority transaction that
// conflicts with a higher-priority *deferred* transaction is deferred, not
// rejected (DoGroup lines 8-9).
func TestHigherPriorityDeferredDefersLower(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustOrigins(map[PeerID]int{"a": 2, "b": 2, "c": 1}))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))
	c := NewEngine("c", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	xc := mustLocal(t, c, Insert("F", Strs("rat", "p1", "vc"), "c"))
	log.publish(xa, xb, xc)

	res := log.reconcile(q)
	// xa and xb (priority 2) conflict: both deferred. xc (priority 1)
	// conflicts with both deferred higher-priority txns: deferred.
	wantIDs(t, "deferred", res.Deferred, xa.ID, xb.ID, xc.ID)
	wantIDs(t, "rejected", res.Rejected)
}

// TestLowerPriorityRejectedAgainstAccepted: a lower-priority transaction
// conflicting with an accepted higher-priority one is rejected (DoGroup
// lines 6-7).
func TestLowerPriorityRejectedAgainstAccepted(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustOrigins(map[PeerID]int{"a": 2, "c": 1}))
	a := NewEngine("a", s, TrustAll(1))
	c := NewEngine("c", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xc := mustLocal(t, c, Insert("F", Strs("rat", "p1", "vc"), "c"))
	log.publish(xa, xc)

	res := log.reconcile(q)
	wantIDs(t, "accepted", res.Accepted, xa.ID)
	wantIDs(t, "rejected", res.Rejected, xc.ID)
	wantTuples(t, q.Instance(), "F", Strs("rat", "p1", "va"))
}

// TestUntrustedTransactionNeverConsidered: priority-0 transactions are not
// candidates and leave no trace.
func TestUntrustedTransactionNeverConsidered(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustOrigins(map[PeerID]int{"a": 1}))
	a := NewEngine("a", s, TrustAll(1))
	z := NewEngine("z", s, TrustAll(1))

	xz := mustLocal(t, z, Insert("F", Strs("rat", "p1", "untrusted"), "z"))
	xa := mustLocal(t, a, Insert("F", Strs("mouse", "p2", "trusted"), "a"))
	log.publish(xz, xa)

	res := log.reconcile(q)
	wantIDs(t, "accepted", res.Accepted, xa.ID)
	if q.Applied(xz.ID) || q.Rejected(xz.ID) {
		t.Error("untrusted txn should be undecided")
	}
	wantTuples(t, q.Instance(), "F", Strs("mouse", "p2", "trusted"))
}

// TestLocalTransactionValidation: incompatible local edits are refused.
func TestLocalTransactionValidation(t *testing.T) {
	s := proteinSchema(t)
	p := NewEngine("p", s, TrustAll(1))
	mustLocal(t, p, Insert("F", Strs("rat", "p1", "a"), "p"))
	if _, err := p.NewLocalTransaction(Insert("F", Strs("rat", "p1", "b"), "p")); err == nil {
		t.Error("conflicting local insert should fail")
	}
	if _, err := p.NewLocalTransaction(Insert("F", Strs("bad"), "p")); err == nil {
		t.Error("invalid tuple should fail")
	}
	if _, err := p.NewLocalTransaction(); err == nil {
		t.Error("empty transaction should fail")
	}
	// Sequence numbers increase.
	x1 := mustLocal(t, p, Insert("F", Strs("a", "b", "c"), "p"))
	x2 := mustLocal(t, p, Insert("F", Strs("d", "e", "f"), "p"))
	if x2.ID.Seq != x1.ID.Seq+1 {
		t.Errorf("sequence numbers not increasing: %v %v", x1.ID, x2.ID)
	}
}

// TestStatsPopulated: reconciliation stats reflect the work done.
func TestStatsPopulated(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))
	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	log.publish(xa, xb)
	res := log.reconcile(q)
	if res.Stats.Candidates != 2 || res.Stats.ConflictsFound != 1 || res.Stats.DirtyKeys == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	res = log.reconcile(q)
	if res.Stats.DeferredCarried != 2 {
		t.Errorf("carried stats = %+v", res.Stats)
	}
}

// TestResolveErrors: resolving unknown groups or out-of-range winners fails.
func TestResolveErrors(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))
	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	log.publish(xa, xb)
	log.reconcile(q)

	if _, err := q.Resolve(Conflict{Type: ConflictKeyValue, Rel: "F", Value: "nope"}, 0); err == nil {
		t.Error("unknown group should fail")
	}
	g := q.ConflictGroups()[0]
	if _, err := q.Resolve(g.Conflict, 99); err == nil {
		t.Error("out-of-range winner should fail")
	}
	if _, err := q.Resolve(g.Conflict, -2); err == nil {
		t.Error("winner below -1 should fail")
	}
}

// TestResolveAll resolves every group via a chooser.
func TestResolveAll(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))
	xa := mustLocal(t, a,
		Insert("F", Strs("rat", "p1", "va"), "a"),
		Insert("F", Strs("dog", "p3", "da"), "a"))
	xb := mustLocal(t, b,
		Insert("F", Strs("rat", "p1", "vb"), "b"),
		Insert("F", Strs("dog", "p3", "db"), "b"))
	log.publish(xa, xb)
	log.reconcile(q)

	// Two conflict groups (rat/p1 and dog/p3) between the same pair of
	// transactions. Always pick option 0.
	res, err := q.ResolveAll(func(g *ConflictGroup) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no resolution happened")
	}
	if len(q.ConflictGroups()) != 0 {
		t.Errorf("groups remain: %v", q.ConflictGroups())
	}
	// One of the two transactions won both groups (options are whole
	// transactions here); exactly 2 tuples present.
	if q.Instance().Len("F") != 2 {
		t.Errorf("instance = %v", q.Instance().Tuples("F"))
	}
}

// TestReconcileEmptyRun: reconciling with nothing published is a no-op.
func TestReconcileEmptyRun(t *testing.T) {
	s := proteinSchema(t)
	q := NewEngine("q", s, TrustAll(1))
	res, err := q.Reconcile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted)+len(res.Rejected)+len(res.Deferred) != 0 {
		t.Errorf("res = %+v", res)
	}
	if q.Recno() != 1 {
		t.Errorf("recno = %d", q.Recno())
	}
}
