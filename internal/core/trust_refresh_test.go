package core

import "testing"

// TestRefreshTrustRepricesDeferred: a mid-stream trust change re-prices
// the carried deferred candidates without replaying history; the next
// reconciliation resolves the conflict under the new priorities with no
// fresh candidates delivered.
func TestRefreshTrustRepricesDeferred(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	log.publish(xa, xb)
	res := log.reconcile(q)
	wantIDs(t, "deferred", res.Deferred, xa.ID, xb.ID)

	// Raise a above b: xa's priority changes (1→2), xb's does not.
	if changed := q.RefreshTrust(TrustOrigins(map[PeerID]int{"a": 2, "b": 1})); changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	res = log.reconcile(q) // empty fetch: only carried candidates
	wantIDs(t, "accepted after refresh", res.Accepted, xa.ID)
	wantIDs(t, "rejected after refresh", res.Rejected, xb.ID)
	wantIDs(t, "deferred after refresh", res.Deferred)
	wantTuples(t, q.Instance(), "F", Strs("rat", "p1", "va"))
}

// TestRefreshTrustUntrustedFallsOut: a deferred candidate whose author
// becomes untrusted drops to priority 0 and silently leaves the candidate
// set at the next run — no reject is recorded, matching a candidate that
// was never relevant.
func TestRefreshTrustUntrustedFallsOut(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))
	b := NewEngine("b", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := mustLocal(t, b, Insert("F", Strs("rat", "p1", "vb"), "b"))
	log.publish(xa, xb)
	log.reconcile(q) // defers both

	// b becomes untrusted entirely: xb's copy drops to 0, xa stays 1.
	if changed := q.RefreshTrust(TrustOrigins(map[PeerID]int{"a": 1})); changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	res := log.reconcile(q)
	wantIDs(t, "accepted", res.Accepted, xa.ID)
	wantIDs(t, "rejected", res.Rejected)
	wantIDs(t, "deferred", res.Deferred)
	if ids := q.DeferredIDs(); len(ids) != 0 {
		t.Errorf("untrusted candidate still carried: %v", ids)
	}
}

// TestRefreshTrustNoHistoryReplay: accepted state is immutable under a
// trust change ("once an update has been accepted ... it will not be
// rolled back") — distrusting an author does not un-apply its past
// transactions.
func TestRefreshTrustNoHistoryReplay(t *testing.T) {
	s := proteinSchema(t)
	log := newTestLog(t, s)
	q := NewEngine("q", s, TrustAll(1))
	a := NewEngine("a", s, TrustAll(1))

	xa := mustLocal(t, a, Insert("F", Strs("rat", "p1", "va"), "a"))
	log.publish(xa)
	res := log.reconcile(q)
	wantIDs(t, "accepted", res.Accepted, xa.ID)

	if changed := q.RefreshTrust(TrustOrigins(map[PeerID]int{"z": 1})); changed != 0 {
		t.Fatalf("changed = %d, want 0 (no deferred candidates)", changed)
	}
	if !q.Applied(xa.ID) {
		t.Error("accepted transaction rolled back by trust change")
	}
	wantTuples(t, q.Instance(), "F", Strs("rat", "p1", "va"))
}

// countingOriginTrust counts Priority evaluations; origin-only, so the
// author-set cache may memoize it.
type countingOriginTrust struct {
	m     map[PeerID]int
	calls int
}

func (c *countingOriginTrust) Priority(u Update) int { c.calls++; return c.m[u.Origin] }
func (c *countingOriginTrust) OriginOnly() bool      { return true }

// TestPriorityCacheMemoizes: transactions sharing an author set share one
// policy evaluation; multi-origin sets are keyed by the sorted distinct
// set; a non-origin-only policy transparently falls back.
func TestPriorityCacheMemoizes(t *testing.T) {
	ct := &countingOriginTrust{m: map[PeerID]int{"a": 2, "b": 3}}
	c := NewPriorityCache(ct)

	x1 := NewTransaction(TxnID{Origin: "a", Seq: 1},
		Insert("F", Strs("r1", "p", "f"), "a"),
		Insert("F", Strs("r2", "p", "f"), "a"),
		Insert("F", Strs("r3", "p", "f"), "a"))
	if got := c.TxnPriority(x1); got != 2 {
		t.Fatalf("priority = %d", got)
	}
	after := ct.calls
	x2 := NewTransaction(TxnID{Origin: "a", Seq: 2},
		Insert("F", Strs("r4", "p", "f"), "a"),
		Insert("F", Strs("r5", "p", "f"), "a"))
	if got := c.TxnPriority(x2); got != 2 {
		t.Fatalf("priority = %d", got)
	}
	if ct.calls != after {
		t.Errorf("same-author txn re-evaluated the policy: %d extra calls", ct.calls-after)
	}

	// Multi-origin (an antecedent-carrying txn mixes authors; NewTransaction
	// stamps one origin, so build directly): first evaluation walks the
	// updates, the repeat — different multiplicity and order — is served
	// from the sorted-distinct set key.
	m1 := &Transaction{ID: TxnID{Origin: "a", Seq: 3}, Updates: []Update{
		Insert("F", Strs("r6", "p", "f"), "a"),
		Insert("F", Strs("r7", "p", "f"), "b"),
	}}
	if got := c.TxnPriority(m1); got != 3 {
		t.Fatalf("multi priority = %d", got)
	}
	after = ct.calls
	m2 := &Transaction{ID: TxnID{Origin: "b", Seq: 4}, Updates: []Update{
		Insert("F", Strs("r8", "p", "f"), "b"),
		Insert("F", Strs("r9", "p", "f"), "b"),
		Insert("F", Strs("rA", "p", "f"), "a"),
	}}
	if got := c.TxnPriority(m2); got != 3 {
		t.Fatalf("multi priority = %d", got)
	}
	if ct.calls != after {
		t.Errorf("same author set re-evaluated the policy: %d extra calls", ct.calls-after)
	}

	// Untrusted-origin short circuit still yields 0 through the cache.
	z := &Transaction{ID: TxnID{Origin: "z", Seq: 5}, Updates: []Update{
		Insert("F", Strs("rB", "p", "f"), "z"),
		Insert("F", Strs("rC", "p", "f"), "a"),
	}}
	if got := c.TxnPriority(z); got != 0 {
		t.Fatalf("untrusted priority = %d", got)
	}

	// Non-origin-only policies bypass the cache: TrustFunc carries no
	// OriginOnly marker.
	fallback := NewPriorityCache(TrustFunc(func(u Update) int { return 7 }))
	x := NewTransaction(TxnID{Origin: "a", Seq: 6}, Insert("F", Strs("rD", "p", "f"), "a"))
	if got := fallback.TxnPriority(x); got != 7 {
		t.Fatalf("fallback priority = %d", got)
	}
	// Nil cache (nil trust) treats everything as untrusted.
	var nilCache *PriorityCache
	if got := nilCache.TxnPriority(x); got != 0 {
		t.Fatalf("nil cache priority = %d", got)
	}
}

// TestSetTrustInvalidatesCache: replacing the policy rebuilds the cache,
// so stale author-set entries can never serve the new policy's decisions.
func TestSetTrustInvalidatesCache(t *testing.T) {
	s := proteinSchema(t)
	q := NewEngine("q", s, TrustOrigins(map[PeerID]int{"a": 1}))
	x := NewTransaction(TxnID{Origin: "a", Seq: 1}, Insert("F", Strs("r", "p", "f"), "a"))
	if got := q.TxnPriority(x); got != 1 {
		t.Fatalf("priority = %d", got)
	}
	q.SetTrust(TrustOrigins(map[PeerID]int{"a": 5}))
	if got := q.TxnPriority(x); got != 5 {
		t.Fatalf("post-SetTrust priority = %d (stale cache?)", got)
	}
	q.SetTrust(TrustOrigins(map[PeerID]int{"b": 1}))
	if got := q.TxnPriority(x); got != 0 {
		t.Fatalf("post-distrust priority = %d (stale cache?)", got)
	}
}
