package core

import (
	"strings"
	"testing"
)

func TestNewRelation(t *testing.T) {
	r := NewRelation("F", 2, "organism", "protein", "function")
	if r.Arity() != 3 {
		t.Fatalf("arity %d", r.Arity())
	}
	if len(r.Key) != 2 || r.Key[0] != 0 || r.Key[1] != 1 {
		t.Fatalf("key %v", r.Key)
	}
	tp := Strs("rat", "prot1", "immune")
	if got := r.KeyOf(tp); !got.Equal(Strs("rat", "prot1")) {
		t.Errorf("KeyOf = %v", got)
	}
	if r.KeyEnc(tp) != Strs("rat", "prot1").Encode() {
		t.Error("KeyEnc mismatch")
	}
	if r.AttrIndex("function") != 2 || r.AttrIndex("nope") != -1 {
		t.Error("AttrIndex broken")
	}
}

func TestRelationValidate(t *testing.T) {
	r := NewRelation("F", 1, "a", "b")
	if err := r.Validate(Strs("x", "y")); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := r.Validate(Strs("x")); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Validate(T(S("x"), I(3))); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := r.Validate(T(S("x"), Null())); err == nil {
		t.Error("NULL in NOT NULL attribute accepted")
	}
	anyKind := &Relation{
		Name:  "G",
		Attrs: []AttrDef{{Name: "a"}, {Name: "b"}},
		Key:   []int{0},
	}
	if err := anyKind.Validate(T(S("x"), I(3))); err != nil {
		t.Errorf("any-kind nullable attribute rejected: %v", err)
	}
	if err := anyKind.Validate(T(S("x"), Null())); err != nil {
		t.Errorf("NULL in nullable attribute rejected: %v", err)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	good := NewRelation("F", 1, "a")
	cases := []struct {
		name string
		rels []*Relation
		want string
	}{
		{"empty name", []*Relation{{Attrs: []AttrDef{{Name: "a"}}, Key: []int{0}}}, "empty name"},
		{"no attrs", []*Relation{{Name: "X", Key: []int{0}}}, "no attributes"},
		{"no key", []*Relation{{Name: "X", Attrs: []AttrDef{{Name: "a"}}}}, "no key"},
		{"dup attr", []*Relation{{Name: "X", Attrs: []AttrDef{{Name: "a"}, {Name: "a"}}, Key: []int{0}}}, "duplicate attribute"},
		{"bad key idx", []*Relation{{Name: "X", Attrs: []AttrDef{{Name: "a"}}, Key: []int{5}}}, "out of range"},
		{"dup relation", []*Relation{good, NewRelation("F", 1, "z")}, "duplicate relation"},
		{"unknown fk rel", []*Relation{{
			Name: "X", Attrs: []AttrDef{{Name: "a"}}, Key: []int{0},
			ForeignKeys: []ForeignKey{{Attrs: []int{0}, RefRel: "nope"}},
		}}, "unknown relation"},
		{"fk arity", []*Relation{good, {
			Name: "X", Attrs: []AttrDef{{Name: "a"}, {Name: "b"}}, Key: []int{0},
			ForeignKeys: []ForeignKey{{Attrs: []int{0, 1}, RefRel: "F"}},
		}}, "arity"},
		{"fk attr range", []*Relation{good, {
			Name: "X", Attrs: []AttrDef{{Name: "a"}}, Key: []int{0},
			ForeignKeys: []ForeignKey{{Attrs: []int{7}, RefRel: "F"}},
		}}, "out of range"},
	}
	for _, c := range cases {
		_, err := NewSchema(c.rels...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := MustSchema(NewRelation("B", 1, "x"), NewRelation("A", 1, "y"))
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("Names = %v, want sorted [A B]", names)
	}
	if _, ok := s.Relation("A"); !ok {
		t.Error("Relation(A) missing")
	}
	if _, ok := s.Relation("Z"); ok {
		t.Error("Relation(Z) should be absent")
	}
	if s.MustRelation("B").Name != "B" {
		t.Error("MustRelation broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRelation on unknown name should panic")
		}
	}()
	s.MustRelation("Z")
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on invalid input")
		}
	}()
	MustSchema(&Relation{})
}

func TestSchemaReferrers(t *testing.T) {
	fn := NewRelation("Function", 2, "organism", "protein", "function")
	xref := NewRelation("XRef", 3, "organism", "protein", "db")
	xref.ForeignKeys = []ForeignKey{{Attrs: []int{0, 1}, RefRel: "Function"}}
	s := MustSchema(fn, xref)
	refs := s.referrers("Function")
	if len(refs) != 1 || refs[0].rel.Name != "XRef" {
		t.Errorf("referrers = %+v", refs)
	}
	if len(s.referrers("XRef")) != 0 {
		t.Error("XRef should have no referrers")
	}
}
