package core

import "testing"

func TestAppendOnlyBasicAccept(t *testing.T) {
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustAll(1))
	x := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "v"), "a"))
	acc := e.ReconcileEpoch([]*Transaction{x})
	wantIDs(t, "accepted", acc, x.ID)
	wantTuples(t, e.Instance(), "F", Strs("rat", "p1", "v"))
	if e.Peer() != "q" {
		t.Errorf("Peer = %s", e.Peer())
	}
}

func TestAppendOnlyIntraEpochConflict(t *testing.T) {
	// Two equal-priority conflicting inserts in one epoch: neither applies.
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustAll(1))
	xa := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := NewTransaction(xid("b", 0), Insert("F", Strs("rat", "p1", "vb"), "b"))
	acc := e.ReconcileEpoch([]*Transaction{xa, xb})
	wantIDs(t, "accepted", acc)
	if e.Instance().Len("F") != 0 {
		t.Errorf("instance = %v", e.Instance().Tuples("F"))
	}
}

func TestAppendOnlyPriorityWins(t *testing.T) {
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustOrigins(map[PeerID]int{"a": 2, "b": 1}))
	xa := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := NewTransaction(xid("b", 0), Insert("F", Strs("rat", "p1", "vb"), "b"))
	acc := e.ReconcileEpoch([]*Transaction{xa, xb})
	wantIDs(t, "accepted", acc, xa.ID)
	wantTuples(t, e.Instance(), "F", Strs("rat", "p1", "va"))
}

func TestAppendOnlyCrossEpochConflict(t *testing.T) {
	// A later-epoch insert conflicting with an earlier-epoch transaction is
	// not applied, even if the earlier one was itself rejected.
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustAll(1))
	xa := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "va"), "a"))
	xb := NewTransaction(xid("b", 0), Insert("F", Strs("rat", "p1", "vb"), "b"))
	e.ReconcileEpoch([]*Transaction{xa, xb}) // both blocked
	xc := NewTransaction(xid("c", 0), Insert("F", Strs("rat", "p1", "vc"), "c"))
	acc := e.ReconcileEpoch([]*Transaction{xc})
	wantIDs(t, "accepted", acc)
	// But a non-conflicting insert goes through.
	xd := NewTransaction(xid("d", 0), Insert("F", Strs("mouse", "p2", "vd"), "d"))
	acc = e.ReconcileEpoch([]*Transaction{xd})
	wantIDs(t, "accepted", acc, xd.ID)
}

func TestAppendOnlyUntrustedSkipped(t *testing.T) {
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustOrigins(map[PeerID]int{"a": 1}))
	xz := NewTransaction(xid("z", 0), Insert("F", Strs("rat", "p1", "vz"), "z"))
	acc := e.ReconcileEpoch([]*Transaction{xz})
	wantIDs(t, "accepted", acc)
	if e.Instance().Len("F") != 0 {
		t.Error("untrusted insert applied")
	}
}

func TestAppendOnlyIdenticalInsertsBothAccepted(t *testing.T) {
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustAll(1))
	xa := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "same"), "a"))
	xb := NewTransaction(xid("b", 0), Insert("F", Strs("rat", "p1", "same"), "b"))
	acc := e.ReconcileEpoch([]*Transaction{xa, xb})
	wantIDs(t, "accepted", acc, xa.ID, xb.ID)
	wantTuples(t, e.Instance(), "F", Strs("rat", "p1", "same"))
}

func TestAppendOnlyIgnoresNonInserts(t *testing.T) {
	s := proteinSchema(t)
	e := NewAppendOnlyEngine("q", s, TrustAll(1))
	x := NewTransaction(xid("a", 0),
		Insert("F", Strs("rat", "p1", "v"), "a"),
		Modify("F", Strs("rat", "p1", "v"), Strs("rat", "p1", "w"), "a"))
	e.ReconcileEpoch([]*Transaction{x})
	// Only the insert is applied in the append-only model.
	wantTuples(t, e.Instance(), "F", Strs("rat", "p1", "v"))
}
