package core

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestValueGobRoundTrip(t *testing.T) {
	vals := []Value{Null(), S("hello"), I(-42), F(3.25), B(true)}
	for _, v := range vals {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
			t.Fatalf("%v: encode: %v", v, err)
		}
		var got Value
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
			t.Fatalf("%v: decode: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip: %v != %v", got, v)
		}
	}
	// Transactions (nested tuples) survive gob too.
	x := NewTransaction(xid("p", 3),
		Modify("F", Strs("a", "b", "c"), Strs("a", "b", "d"), "p"))
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		t.Fatal(err)
	}
	var got Transaction
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != x.ID || !got.Updates[0].Equal(x.Updates[0]) {
		t.Errorf("transaction round trip: %v", &got)
	}
	var bad Value
	if err := bad.GobDecode([]byte{1, 2}); err == nil {
		t.Error("bad gob payload accepted")
	}
	if err := bad.GobDecode(append(S("x").appendEncoded(nil), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestProducerTracking(t *testing.T) {
	s := proteinSchema(t)
	e := NewEngine("p", s, TrustAll(1))
	x1 := mustLocal(t, e, Insert("F", Strs("rat", "p1", "v"), "p"))
	if got, ok := e.ProducerOf("F", Strs("rat", "p1", "v")); !ok || got != x1.ID {
		t.Errorf("producer = %v %v", got, ok)
	}
	x2 := mustLocal(t, e, Modify("F", Strs("rat", "p1", "v"), Strs("rat", "p1", "w"), "p"))
	if _, ok := e.ProducerOf("F", Strs("rat", "p1", "v")); ok {
		t.Error("consumed value still has a producer")
	}
	if got, _ := e.ProducerOf("F", Strs("rat", "p1", "w")); got != x2.ID {
		t.Errorf("producer of new value = %v", got)
	}
	if antes := e.LocalAntecedents(x2.ID); len(antes) != 1 || antes[0] != x1.ID {
		t.Errorf("local antecedents = %v", antes)
	}
	if antes := e.LocalAntecedents(x1.ID); len(antes) != 0 {
		t.Errorf("insert antecedents = %v", antes)
	}
}

func TestRestoreDirect(t *testing.T) {
	s := proteinSchema(t)
	x1 := NewTransaction(xid("a", 0), Insert("F", Strs("rat", "p1", "v1"), "a"))
	x1.Order = 1
	x2 := NewTransaction(xid("b", 0), Modify("F", Strs("rat", "p1", "v1"), Strs("rat", "p1", "v2"), "b"))
	x2.Order = 2
	x3 := NewTransaction(xid("c", 0), Insert("F", Strs("rat", "p1", "zz"), "c"))
	x3.Order = 3
	xo := NewTransaction(xid("me", 5), Insert("F", Strs("mouse", "p2", "w"), "me"))
	xo.Order = 4

	log := []LoggedTxn{
		{Txn: x1}, {Txn: x2, Antecedents: []TxnID{x1.ID}}, {Txn: x3}, {Txn: xo},
	}
	decisions := map[TxnID]RestoredDecision{
		x1.ID: {Decision: DecisionAccept, Seq: 1},
		x2.ID: {Decision: DecisionAccept, Seq: 2},
		x3.ID: {Decision: DecisionReject, Seq: 3},
		xo.ID: {Decision: DecisionAccept, Seq: 4},
	}
	e := NewEngine("me", s, TrustAll(1))
	if err := e.Restore(log, decisions); err != nil {
		t.Fatal(err)
	}
	wantTuples(t, e.Instance(), "F",
		Strs("rat", "p1", "v2"), Strs("mouse", "p2", "w"))
	if !e.Applied(x1.ID) || !e.Applied(x2.ID) || !e.Applied(xo.ID) {
		t.Error("applied set incomplete")
	}
	if !e.Rejected(x3.ID) {
		t.Error("rejected set incomplete")
	}
	// Local sequence continues after the own txn's seq.
	nxt, err := e.NewLocalTransaction(Insert("F", Strs("dog", "p3", "q"), "me"))
	if err != nil {
		t.Fatal(err)
	}
	if nxt.ID.Seq != 6 {
		t.Errorf("next local seq = %d, want 6", nxt.ID.Seq)
	}
	// Restore requires a fresh engine.
	if err := e.Restore(log, decisions); err == nil {
		t.Error("restore onto a used engine accepted")
	}
}

func TestRestoreAcceptanceOrderBeatsGlobalOrder(t *testing.T) {
	// The peer accepted its own modify before importing a later-published
	// identical insert; replay must follow acceptance order.
	s := proteinSchema(t)
	own0 := NewTransaction(xid("me", 0), Insert("F", Strs("rat", "p1", "f2"), "me"))
	own0.Order = 1
	own1 := NewTransaction(xid("me", 1), Modify("F", Strs("rat", "p1", "f2"), Strs("rat", "p1", "f1"), "me"))
	own1.Order = 3
	other := NewTransaction(xid("o", 0), Insert("F", Strs("rat", "p1", "f1"), "o"))
	other.Order = 2 // published between the peer's two own txns

	log := []LoggedTxn{{Txn: own0}, {Txn: other}, {Txn: own1, Antecedents: []TxnID{own0.ID}}}
	decisions := map[TxnID]RestoredDecision{
		own0.ID:  {Decision: DecisionAccept, Seq: 1},
		own1.ID:  {Decision: DecisionAccept, Seq: 2},
		other.ID: {Decision: DecisionAccept, Seq: 3}, // idempotent at acceptance time
	}
	e := NewEngine("me", s, TrustAll(1))
	if err := e.Restore(log, decisions); err != nil {
		t.Fatal(err)
	}
	wantTuples(t, e.Instance(), "F", Strs("rat", "p1", "f1"))
}

func TestConflictGroupString(t *testing.T) {
	g := &ConflictGroup{
		Conflict: Conflict{Type: ConflictKeyValue, Rel: "F", Value: Strs("rat", "p1").Encode()},
		Options: []*Option{
			{Txns: []TxnID{xid("a", 0)}, Effect: "+F(rat, p1, x; a)"},
		},
	}
	if got := g.String(); got == "" {
		t.Error("empty group string")
	}
	s := proteinSchema(t)
	e := NewEngine("p", s, TrustAll(1))
	if e.Instance().Schema() != s {
		t.Error("Instance.Schema accessor broken")
	}
}
