package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{S("abc"), KindString, "abc"},
		{S(""), KindString, ""},
		{I(-42), KindInt, "-42"},
		{I(0), KindInt, "0"},
		{F(2.5), KindFloat, "2.5"},
		{B(true), KindBool, "true"},
		{B(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: string %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !Null().IsNull() || S("x").IsNull() {
		t.Error("IsNull misclassifies")
	}
	if S("hi").Str() != "hi" || I(7).Int() != 7 || F(1.5).Float() != 1.5 || !B(true).Bool() {
		t.Error("payload accessors broken")
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{
		Null(),
		S(""), S("a"), S("ab"), S("b"),
		I(-5), I(0), I(9),
		F(math.Inf(-1)), F(-1), F(0), F(3.14), F(math.Inf(1)), F(math.NaN()),
		B(false), B(true),
	}
	for i := range ordered {
		for j := range ordered {
			c := ordered[i].Compare(ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", ordered[i], ordered[j], c)
			case i > j && c <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindBool: "bool", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		b := make([]byte, r.Intn(12))
		r.Read(b)
		return S(string(b))
	case 2:
		return I(int64(r.Uint64()))
	case 3:
		return F(math.Float64frombits(r.Uint64()))
	default:
		return B(r.Intn(2) == 0)
	}
}

// genValue lets testing/quick produce Values.
type genValue struct{ V Value }

func (genValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue{V: randomValue(r)})
}

func TestValueEncodeRoundTrip(t *testing.T) {
	prop := func(g genValue) bool {
		enc := g.V.appendEncoded(nil)
		dec, rest, err := decodeValue(enc)
		return err == nil && len(rest) == 0 && dec == g.V
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestValueEncodeInjective(t *testing.T) {
	prop := func(a, b genValue) bool {
		ea := string(a.V.appendEncoded(nil))
		eb := string(b.V.appendEncoded(nil))
		return (ea == eb) == (a.V == b.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	bad := [][]byte{
		{},                    // empty
		{byte(KindString)},    // missing length
		{byte(KindString), 5}, // short payload
		{byte(KindInt)},       // missing varint
		{99},                  // unknown kind
	}
	for _, b := range bad {
		if _, _, err := decodeValue(b); err == nil {
			t.Errorf("decodeValue(%v) should fail", b)
		}
	}
}
