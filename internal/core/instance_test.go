package core

import (
	"errors"
	"math/rand"
	"testing"
)

func TestInstanceInsertDeleteModify(t *testing.T) {
	s := flatSchema(t)
	in := NewInstance(s)
	if err := in.Apply(Insert("F", Strs("rat", "p1", "a"), "x")); err != nil {
		t.Fatal(err)
	}
	if got, ok := in.Lookup("F", Strs("rat", "p1")); !ok || !got.Equal(Strs("rat", "p1", "a")) {
		t.Fatalf("lookup after insert: %v %v", got, ok)
	}
	// Idempotent re-insert.
	if err := in.Apply(Insert("F", Strs("rat", "p1", "a"), "y")); err != nil {
		t.Errorf("identical re-insert should be compatible: %v", err)
	}
	// Key collision.
	if err := in.Apply(Insert("F", Strs("rat", "p1", "b"), "y")); err == nil {
		t.Error("conflicting insert should be incompatible")
	}
	// Modify.
	if err := in.Apply(Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x")); err != nil {
		t.Fatal(err)
	}
	if got, _ := in.Lookup("F", Strs("rat", "p1")); !got.Equal(Strs("rat", "p1", "b")) {
		t.Fatalf("lookup after modify: %v", got)
	}
	// Modify with stale source.
	if err := in.Apply(Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "c"), "x")); err == nil {
		t.Error("modify of stale source should be incompatible")
	}
	// Delete wrong value.
	if err := in.Apply(Delete("F", Strs("rat", "p1", "a"), "x")); err == nil {
		t.Error("delete of stale value should be incompatible")
	}
	// Delete.
	if err := in.Apply(Delete("F", Strs("rat", "p1", "b"), "x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := in.Lookup("F", Strs("rat", "p1")); ok {
		t.Error("tuple should be gone")
	}
	// Delete absent.
	if err := in.Apply(Delete("F", Strs("rat", "p1", "b"), "x")); err == nil {
		t.Error("delete of absent tuple should be incompatible")
	}
	// Modify absent source.
	if err := in.Apply(Modify("F", Strs("no", "p", "a"), Strs("no", "p", "b"), "x")); err == nil {
		t.Error("modify of absent source should be incompatible")
	}
}

func TestInstanceModifyKeyMove(t *testing.T) {
	s := flatSchema(t)
	in := NewInstance(s)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(in.Apply(Insert("F", Strs("rat", "p1", "a"), "x")))
	must(in.Apply(Insert("F", Strs("rat", "p2", "b"), "x")))
	// Key move onto an occupied key.
	if err := in.Apply(Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p2", "a"), "x")); err == nil {
		t.Error("key move onto occupied key should fail")
	}
	// Key move onto a free key.
	must(in.Apply(Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p3", "a"), "x")))
	if _, ok := in.Lookup("F", Strs("rat", "p1")); ok {
		t.Error("old key should be vacated")
	}
	if got, ok := in.Lookup("F", Strs("rat", "p3")); !ok || !got.Equal(Strs("rat", "p3", "a")) {
		t.Errorf("new key missing: %v %v", got, ok)
	}
}

func fkSchema(t *testing.T) *Schema {
	t.Helper()
	fn := NewRelation("Function", 2, "organism", "protein", "function")
	xref := NewRelation("XRef", 3, "organism", "protein", "db")
	xref.ForeignKeys = []ForeignKey{{Attrs: []int{0, 1}, RefRel: "Function"}}
	return MustSchema(fn, xref)
}

func TestInstanceForeignKeys(t *testing.T) {
	s := fkSchema(t)
	in := NewInstance(s)
	// Dangling insert.
	if err := in.Apply(Insert("XRef", Strs("rat", "p1", "genbank"), "x")); err == nil {
		t.Error("dangling reference should be incompatible")
	}
	if err := in.Apply(Insert("Function", Strs("rat", "p1", "a"), "x")); err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(Insert("XRef", Strs("rat", "p1", "genbank"), "x")); err != nil {
		t.Fatalf("valid reference rejected: %v", err)
	}
	// Deleting a referenced key.
	if err := in.Apply(Delete("Function", Strs("rat", "p1", "a"), "x")); err == nil {
		t.Error("deleting referenced key should be incompatible")
	}
	// Non-key modify of the referenced tuple is fine.
	if err := in.Apply(Modify("Function", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x")); err != nil {
		t.Errorf("non-key modify of referenced tuple rejected: %v", err)
	}
	// Key-moving the referenced tuple breaks the reference.
	if err := in.Apply(Modify("Function", Strs("rat", "p1", "b"), Strs("rat", "p9", "b"), "x")); err == nil {
		t.Error("key move of referenced tuple should be incompatible")
	}
	// Remove the reference, then the key move works.
	if err := in.Apply(Delete("XRef", Strs("rat", "p1", "genbank"), "x")); err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(Modify("Function", Strs("rat", "p1", "b"), Strs("rat", "p9", "b"), "x")); err != nil {
		t.Errorf("key move after dereference rejected: %v", err)
	}
}

func TestIncompatibleErrorType(t *testing.T) {
	s := flatSchema(t)
	in := NewInstance(s)
	err := in.Apply(Delete("F", Strs("rat", "p1", "a"), "x"))
	var ie *IncompatibleError
	if !errors.As(err, &ie) {
		t.Fatalf("error should be *IncompatibleError, got %T", err)
	}
	if ie.Error() == "" {
		t.Error("empty error message")
	}
	if err := in.Apply(Update{Op: Op(9), Rel: "F", Tuple: Strs("a", "b", "c")}); err == nil {
		t.Error("unknown op should be incompatible")
	}
	if err := in.Apply(Insert("Zed", Strs("a"), "x")); err == nil {
		t.Error("unknown relation should be incompatible")
	}
}

func TestInstanceCloneAndEqual(t *testing.T) {
	s := fkSchema(t)
	in := NewInstance(s)
	if err := in.ApplyAll([]Update{
		Insert("Function", Strs("rat", "p1", "a"), "x"),
		Insert("XRef", Strs("rat", "p1", "genbank"), "x"),
	}); err != nil {
		t.Fatal(err)
	}
	cp := in.Clone()
	if !in.Equal(cp) {
		t.Fatal("clone should equal original")
	}
	if err := cp.Apply(Insert("Function", Strs("mouse", "p2", "b"), "x")); err != nil {
		t.Fatal(err)
	}
	if in.Equal(cp) {
		t.Error("mutating clone should not affect original")
	}
	if in.Len("Function") != 1 || cp.Len("Function") != 2 {
		t.Error("Len mismatch after clone mutation")
	}
	if in.TotalLen() != 2 {
		t.Errorf("TotalLen = %d", in.TotalLen())
	}
	// FK counts must be deep-copied too.
	if err := cp.Apply(Delete("XRef", Strs("rat", "p1", "genbank"), "x")); err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(Delete("Function", Strs("rat", "p1", "a"), "x")); err == nil {
		t.Error("original FK count should be unaffected by clone's delete")
	}
}

func TestInstanceTuplesAndKeysSorted(t *testing.T) {
	s := flatSchema(t)
	in := NewInstance(s)
	for _, tu := range []Tuple{Strs("z", "p", "1"), Strs("a", "p", "1"), Strs("m", "p", "1")} {
		if err := in.Apply(Insert("F", tu, "x")); err != nil {
			t.Fatal(err)
		}
	}
	ts := in.Tuples("F")
	if len(ts) != 3 || ts[0][0].Str() != "a" || ts[2][0].Str() != "z" {
		t.Errorf("Tuples not sorted: %v", ts)
	}
	ks := in.Keys("F")
	if len(ks) != 3 || ks[0] > ks[1] || ks[1] > ks[2] {
		t.Errorf("Keys not sorted: %v", ks)
	}
}

// TestOverlayMatchesClone: CompatibleAll via overlay agrees with trial
// application on a full clone, for random sequences.
func TestOverlayMatchesClone(t *testing.T) {
	s := flatSchema(t)
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 500; trial++ {
		base := NewInstance(s)
		for i := 0; i < r.Intn(5); i++ {
			org := []string{"rat", "mouse"}[r.Intn(2)]
			prot := []string{"p0", "p1"}[r.Intn(2)]
			_ = base.Apply(Insert("F", Strs(org, prot, "seed"), "x"))
		}
		seq := randomUpdateSet(r, 1+r.Intn(6))

		overlayErr := base.CompatibleAll(seq)
		clone := base.Clone()
		var cloneErr error
		for _, u := range seq {
			if cloneErr = clone.Apply(u); cloneErr != nil {
				break
			}
		}
		if (overlayErr == nil) != (cloneErr == nil) {
			t.Fatalf("trial %d: overlay=%v clone=%v seq=%v", trial, overlayErr, cloneErr, seq)
		}
		// CompatibleAll must never mutate the base.
		if overlayErr == nil && len(seq) > 0 {
			fresh := NewInstance(s)
			_ = fresh // base must be untouched regardless; check by re-running
			if err := base.CompatibleAll(seq); err != nil {
				t.Fatalf("trial %d: CompatibleAll not repeatable: %v", trial, err)
			}
		}
	}
}

func TestOverlayForeignKeys(t *testing.T) {
	s := fkSchema(t)
	in := NewInstance(s)
	// Sequence is internally consistent: insert parent then child.
	seq := []Update{
		Insert("Function", Strs("rat", "p1", "a"), "x"),
		Insert("XRef", Strs("rat", "p1", "genbank"), "x"),
	}
	if err := in.CompatibleAll(seq); err != nil {
		t.Fatalf("forward-referencing sequence should be compatible: %v", err)
	}
	// Child before parent is not.
	if err := in.CompatibleAll([]Update{seq[1], seq[0]}); err == nil {
		t.Error("child-before-parent should be incompatible")
	}
	// Delete parent while child pending in the same sequence.
	if err := in.ApplyAll(seq); err != nil {
		t.Fatal(err)
	}
	bad := []Update{Delete("Function", Strs("rat", "p1", "a"), "x")}
	if err := in.CompatibleAll(bad); err == nil {
		t.Error("deleting referenced parent should be incompatible in overlay")
	}
	good := []Update{
		Delete("XRef", Strs("rat", "p1", "genbank"), "x"),
		Delete("Function", Strs("rat", "p1", "a"), "x"),
	}
	if err := in.CompatibleAll(good); err != nil {
		t.Errorf("child-then-parent delete should be compatible: %v", err)
	}
}
