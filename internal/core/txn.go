package core

import (
	"fmt"
	"sort"
)

// Epoch is the reconciliation epoch counter e: it is incremented each time a
// participant publishes. Epoch 0 means "before the first publication".
type Epoch int64

// TxnID identifies a transaction X_{i:j}: the originating participant i and
// its local transaction sequence number j. Local transaction identifiers are
// assigned in increasing order by each participant.
type TxnID struct {
	Origin PeerID
	Seq    uint64
}

// String renders the ID in the paper's X_{i:j} style, e.g. "p3:1".
func (id TxnID) String() string { return fmt.Sprintf("%s:%d", id.Origin, id.Seq) }

// Less orders transaction IDs lexicographically; used only for deterministic
// output, not for the global publication order (see Transaction.Order).
func (id TxnID) Less(other TxnID) bool {
	if id.Origin != other.Origin {
		return id.Origin < other.Origin
	}
	return id.Seq < other.Seq
}

// Transaction is an atomic group of updates X_{i:j} published by a single
// participant.
type Transaction struct {
	ID      TxnID
	Updates []Update

	// Epoch is the publication epoch assigned by the update store; zero
	// until published.
	Epoch Epoch
	// Order is the global position of the transaction in the published
	// sequence ∆, assigned by the update store; it totally orders all
	// published transactions and respects Epoch.
	Order uint64

	// encDone records that every update's encoding cache has been populated
	// (see Update.cacheEnc); set by Validate and PrecomputeEncodings.
	encDone bool
}

// NewTransaction builds an unpublished transaction. Each update's origin is
// forced to the transaction's originator so that single-origin annotation
// holds by construction.
func NewTransaction(id TxnID, updates ...Update) *Transaction {
	x := &Transaction{ID: id, Updates: make([]Update, len(updates))}
	for i, u := range updates {
		u.Origin = id.Origin
		x.Updates[i] = u
	}
	return x
}

// Validate checks every update against the schema and that the transaction
// is non-empty. As a side effect it populates each update's encoding cache,
// so the reconciliation hot path never re-encodes validated tuples.
func (x *Transaction) Validate(s *Schema) error {
	if len(x.Updates) == 0 {
		return fmt.Errorf("core: transaction %s is empty", x.ID)
	}
	for i, u := range x.Updates {
		if u.Origin != x.ID.Origin {
			return fmt.Errorf("core: transaction %s: update %d has origin %s", x.ID, i, u.Origin)
		}
		if err := u.Validate(s); err != nil {
			return fmt.Errorf("core: transaction %s: update %d: %w", x.ID, i, err)
		}
	}
	x.PrecomputeEncodings(s)
	return nil
}

// PrecomputeEncodings populates the encoding caches of the transaction's
// updates. Idempotent but not synchronized: it mutates the transaction, so
// it must not race with other readers or writers. Each engine warms its
// candidates from its own goroutine before fanning work out to the worker
// pool; an update store that hands the *same* *Transaction pointers to
// multiple peers (e.g. the in-memory central store) must warm them once at
// ingestion, under its own lock, so concurrently reconciling peers only
// ever observe a fully populated cache.
func (x *Transaction) PrecomputeEncodings(s *Schema) {
	if x.encDone {
		return
	}
	for i := range x.Updates {
		if rel, ok := s.Relation(x.Updates[i].Rel); ok {
			x.Updates[i].cacheEnc(rel)
		}
	}
	x.encDone = true
}

// Clone returns a deep-enough copy (updates slice is copied; tuples are
// immutable by convention).
func (x *Transaction) Clone() *Transaction {
	y := *x
	y.Updates = make([]Update, len(x.Updates))
	copy(y.Updates, x.Updates)
	return &y
}

// String renders the transaction header and updates.
func (x *Transaction) String() string {
	s := "X" + x.ID.String() + "{"
	for i, u := range x.Updates {
		if i > 0 {
			s += ", "
		}
		s += u.String()
	}
	return s + "}"
}

// SortTxns sorts transactions by their global publication order in place,
// breaking ties (unpublished transactions) by ID.
func SortTxns(xs []*Transaction) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Order != xs[j].Order {
			return xs[i].Order < xs[j].Order
		}
		return xs[i].ID.Less(xs[j].ID)
	})
}

// UpdateFootprint returns the update footprint uf(L) of a list of
// transactions sorted by application order: the concatenation of their
// constituent updates.
func UpdateFootprint(list []*Transaction) []Update {
	var n int
	for _, x := range list {
		n += len(x.Updates)
	}
	out := make([]Update, 0, n)
	for _, x := range list {
		out = append(out, x.Updates...)
	}
	return out
}

// TxnSet is a set of transaction IDs.
type TxnSet map[TxnID]struct{}

// NewTxnSet builds a set from IDs.
func NewTxnSet(ids ...TxnID) TxnSet {
	s := make(TxnSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s TxnSet) Has(id TxnID) bool {
	_, ok := s[id]
	return ok
}

// Add inserts an ID.
func (s TxnSet) Add(id TxnID) { s[id] = struct{}{} }

// AddAll inserts the IDs of all given transactions.
func (s TxnSet) AddAll(xs []*Transaction) {
	for _, x := range xs {
		s.Add(x.ID)
	}
}

// Sorted returns the members sorted by ID, for deterministic output.
func (s TxnSet) Sorted() []TxnID {
	out := make([]TxnID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
