package core

import (
	"fmt"
	"sort"
	"strings"
)

// Option is a group of deferred transactions within a conflict group that
// make the same modification to the conflicted value. At most one option per
// conflict group can be accepted when the user resolves the conflict; the
// transactions of the other options are rejected.
type Option struct {
	// Txns are the deferred transactions backing this option, sorted.
	Txns []TxnID
	// Effect describes the modification the option makes to the conflicted
	// value, e.g. "+F(rat, prot1, immune)" or "delete".
	Effect string
}

// ConflictGroup is a group of conflicts of the same type involving the same
// key value, holding the mutually exclusive Options a user can choose from.
type ConflictGroup struct {
	Conflict Conflict
	Options  []*Option
}

// String renders the group for diagnostics and CLI display.
func (g *ConflictGroup) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conflict %s:", g.Conflict)
	for i, o := range g.Options {
		fmt.Fprintf(&b, " option[%d]{%v => %s}", i, o.Txns, o.Effect)
	}
	return b.String()
}

// updateSoftState implements UpdateSoftState of Figure 5: it rebuilds the
// dirty value set and the conflict groups from the current deferred
// transactions. Soft state is fully reconstructable from the deferred set
// and the instance.
func (e *Engine) updateSoftState(deferred []*candidateState, res *Result) {
	// Line 1: clear all soft state.
	e.dirty = make(map[tupleKey]bool)
	e.groups = make(map[Conflict]*ConflictGroup)
	e.deferredCands = make(map[TxnID]*Candidate, len(deferred))
	if len(deferred) == 0 {
		return
	}

	// Line 7: conflicts among the deferred extensions, recording the
	// specific (type, value) conflicts for grouping. Subsumption does not
	// suppress grouping here: the conflicts were already established. Only
	// pairs sharing a touched key can conflict, so prune with an inverted
	// index rather than comparing all pairs. The per-pair conflict checks
	// are independent, so they fan out over the engine's worker pool
	// (WithParallelism) like findConflicts' pair stage; each worker writes
	// only its own slot, and the aggregation below walks the slots in
	// enumeration order, so the groups are identical at every worker count.
	type pairConflict struct {
		a, b *candidateState
		cs   []Conflict
	}
	pairKeys := enumeratePairs(e.schema, deferred)
	perPair := make([][]Conflict, len(pairKeys))
	parallelFor(e.parallelism(len(pairKeys)), len(pairKeys), func(pi int) {
		i, j := unpackPair(pairKeys[pi])
		perPair[pi] = deferred[i].upEx.Conflicts(e.schema, deferred[j].upEx)
	})
	var pairs []pairConflict
	for pi, cs := range perPair {
		if len(cs) > 0 {
			i, j := unpackPair(pairKeys[pi])
			pairs = append(pairs, pairConflict{a: deferred[i], b: deferred[j], cs: cs})
		}
	}

	// Which conflict values involve each transaction (for line 4's removal
	// of clean inapplicable updates).
	conflictVals := make(map[TxnID]map[tupleKey]bool)
	groupTxns := make(map[Conflict]map[TxnID]*candidateState)
	noteTxn := func(c Conflict, st *candidateState) {
		if groupTxns[c] == nil {
			groupTxns[c] = make(map[TxnID]*candidateState)
		}
		groupTxns[c][st.cand.Txn.ID] = st
		if conflictVals[st.cand.Txn.ID] == nil {
			conflictVals[st.cand.Txn.ID] = make(map[tupleKey]bool)
		}
		conflictVals[st.cand.Txn.ID][tupleKey{rel: c.Rel, enc: c.Value}] = true
	}
	for _, p := range pairs {
		for _, c := range p.cs {
			noteTxn(c, p.a)
			noteTxn(c, p.b)
		}
	}

	// Lines 2-6: for each deferred transaction, trim clean updates that are
	// inapplicable at this recno, then mark the remaining touched keys
	// dirty and retain the candidate for the next reconciliation.
	for _, st := range deferred {
		trimmed := st.upEx.Operation[:0:0]
		for _, u := range st.upEx.Operation {
			if e.inst.Compatible(u) != nil && !e.touchesConflict(u, conflictVals[st.cand.Txn.ID]) {
				continue // clean update, inapplicable at recno: drop
			}
			trimmed = append(trimmed, u)
		}
		if len(trimmed) == 0 && st.upEx.Malformed() == nil {
			trimmed = st.upEx.Operation // keep everything rather than nothing
		}
		softEx := *st.upEx
		softEx.Operation = trimmed
		softEx.touched = nil // the memo belongs to the untrimmed operation
		for _, k := range softEx.TouchedKeys(e.schema) {
			e.dirty[k] = true
		}
		e.deferredCands[st.cand.Txn.ID] = st.cand
	}
	res.Stats.DirtyKeys = len(e.dirty)

	// Lines 8-16: build conflict groups, combining compatible transactions
	// (those making the same modification to the conflicted value) into the
	// same option.
	var conflictKeys []Conflict
	for c := range groupTxns {
		conflictKeys = append(conflictKeys, c)
	}
	sort.Slice(conflictKeys, func(i, j int) bool {
		a, b := conflictKeys[i], conflictKeys[j]
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Type < b.Type
	})
	for _, c := range conflictKeys {
		members := groupTxns[c]
		// Iterate members in sorted ID order: the Effect string of an option
		// is taken from the first member that introduces its signature, so a
		// deterministic visit order keeps Results byte-identical across runs
		// (and between the serial and parallel pipelines).
		memberIDs := make([]TxnID, 0, len(members))
		for id := range members {
			memberIDs = append(memberIDs, id)
		}
		sort.Slice(memberIDs, func(i, j int) bool { return memberIDs[i].Less(memberIDs[j]) })
		bySig := make(map[string]*Option)
		optMembers := make(map[string]TxnSet)
		var sigOrder []string
		for _, id := range memberIDs {
			st := members[id]
			sig, effect := e.modificationSignature(c, st.upEx)
			opt := bySig[sig]
			if opt == nil {
				opt = &Option{Effect: effect}
				bySig[sig] = opt
				optMembers[sig] = make(TxnSet)
				sigOrder = append(sigOrder, sig)
			}
			set := optMembers[sig]
			set.Add(id)
			// An option carries the deferred antecedents of its members:
			// accepting the option accepts their whole extensions, and the
			// shared prefix of a losing chain must not be rejected when it
			// also underlies the winner (see Resolve).
			for anteID := range st.upEx.IDs {
				if _, isDeferred := e.deferredCands[anteID]; isDeferred {
					set.Add(anteID)
				}
			}
		}
		sort.Strings(sigOrder)
		g := &ConflictGroup{Conflict: c}
		for _, sig := range sigOrder {
			opt := bySig[sig]
			opt.Txns = optMembers[sig].Sorted()
			g.Options = append(g.Options, opt)
		}
		e.groups[c] = g
		res.Groups = append(res.Groups, g)
	}
}

// touchesConflict reports whether the update reads or writes one of the
// transaction's conflicted values.
func (e *Engine) touchesConflict(u Update, vals map[tupleKey]bool) bool {
	if len(vals) == 0 {
		return false
	}
	rel, ok := e.schema.Relation(u.Rel)
	if !ok {
		return false
	}
	check := func(t Tuple) bool {
		if t == nil {
			return false
		}
		// Conflict values are either key encodings or full source
		// encodings; test both projections.
		if vals[tupleKey{rel: u.Rel, enc: rel.KeyEnc(t)}] {
			return true
		}
		return vals[tupleKey{rel: u.Rel, enc: t.Encode()}]
	}
	return check(u.Tuple) || check(u.New)
}

// modificationSignature summarizes what an extension does to the conflicted
// value: transactions with equal signatures are compatible and share an
// option.
func (e *Engine) modificationSignature(c Conflict, upEx *UpdateExtension) (sig, effect string) {
	rel, ok := e.schema.Relation(c.Rel)
	if !ok {
		return "?", "?"
	}
	var parts []string
	var display []string
	for _, u := range upEx.Operation {
		if u.Rel != c.Rel {
			continue
		}
		touches := false
		switch c.Type {
		case ConflictModifySource:
			touches = u.Consumes() != nil && u.Consumes().Encode() == c.Value
		default:
			if p := u.Produces(); p != nil && rel.KeyEnc(p) == c.Value {
				touches = true
			}
			if t := u.Consumes(); t != nil && rel.KeyEnc(t) == c.Value {
				touches = true
			}
			if u.Op == OpDelete && rel.KeyEnc(u.Tuple) == c.Value {
				touches = true
			}
		}
		if !touches {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d|%s|%s|%s", u.Op, u.Rel, u.Tuple.Encode(), u.New.Encode()))
		display = append(display, u.String())
	}
	sort.Strings(parts)
	sort.Strings(display)
	if len(display) == 0 {
		return strings.Join(parts, ";"), "(no direct effect)"
	}
	return strings.Join(parts, ";"), strings.Join(display, ", ")
}

// ConflictGroups returns the conflict groups recorded by the most recent
// reconciliation, sorted deterministically.
func (e *Engine) ConflictGroups() []*ConflictGroup {
	out := make([]*ConflictGroup, 0, len(e.groups))
	for _, g := range e.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Conflict, out[j].Conflict
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Type < b.Type
	})
	return out
}
