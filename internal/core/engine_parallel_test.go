package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// stripTiming normalizes a Result for serial-vs-parallel comparison: stage
// latencies and the worker bound legitimately differ; everything else must
// be byte-identical.
func stripTiming(r *Result) *Result {
	cp := *r
	cp.Stats = cp.Stats.StripTiming()
	return &cp
}

// mirroredRun drives the identical randomized multi-peer workload through a
// serial engine set (WithParallelism(1)) and a parallel engine set
// (WithParallelism(8)) in lockstep, failing as soon as any per-round Result,
// instance, or deferred set diverges.
func mirroredRun(t *testing.T, seed int64, peers, rounds, editsPerRound int) {
	t.Helper()
	s := proteinSchema(t)
	logS, logP := newTestLog(t, s), newTestLog(t, s)
	engS := make([]*Engine, peers)
	engP := make([]*Engine, peers)
	for i := range engS {
		id := PeerID(fmt.Sprintf("p%d", i))
		engS[i] = NewEngine(id, s, TrustAll(1), WithParallelism(1))
		engP[i] = NewEngine(id, s, TrustAll(1), WithParallelism(8))
	}
	r := rand.New(rand.NewSource(seed))
	orgs := []string{"rat", "mouse", "dog"}
	fns := []string{"a", "b", "c", "d"}
	for round := 0; round < rounds; round++ {
		for i := range engS {
			eS, eP := engS[i], engP[i]
			for k := 0; k < editsPerRound; k++ {
				org := orgs[r.Intn(len(orgs))]
				prot := fmt.Sprintf("prot%d", r.Intn(6))
				fn := fns[r.Intn(len(fns))]
				key := Strs(org, prot)
				var u Update
				if cur, ok := eS.Instance().Lookup("F", key); ok {
					switch r.Intn(4) {
					case 0:
						u = Delete("F", cur, eS.Peer())
					default:
						if cur[2].Str() == fn {
							continue
						}
						u = Modify("F", cur, Strs(org, prot, fn), eS.Peer())
					}
				} else {
					u = Insert("F", Strs(org, prot, fn), eS.Peer())
				}
				xS, errS := eS.NewLocalTransaction(u)
				xP, errP := eP.NewLocalTransaction(u)
				if (errS == nil) != (errP == nil) {
					t.Fatalf("seed %d round %d: local txn divergence at %s: serial err=%v, parallel err=%v",
						seed, round, eS.Peer(), errS, errP)
				}
				if errS != nil {
					continue
				}
				logS.publish(xS)
				logP.publish(xP)
			}
			resS := logS.reconcile(eS)
			resP := logP.reconcile(eP)
			if !reflect.DeepEqual(stripTiming(resS), stripTiming(resP)) {
				t.Fatalf("seed %d round %d: result divergence at %s:\nserial:   %+v\nparallel: %+v",
					seed, round, eS.Peer(), stripTiming(resS), stripTiming(resP))
			}
			if !eS.Instance().Equal(eP.Instance()) {
				t.Fatalf("seed %d round %d: instance divergence at %s", seed, round, eS.Peer())
			}
			if !reflect.DeepEqual(eS.DeferredIDs(), eP.DeferredIDs()) {
				t.Fatalf("seed %d round %d: deferred divergence at %s: %v vs %v",
					seed, round, eS.Peer(), eS.DeferredIDs(), eP.DeferredIDs())
			}
		}
	}
	// Drain both sides through conflict resolution (always option 0) and
	// make sure they stay identical to the end.
	for i := range engS {
		eS, eP := engS[i], engP[i]
		_, errS := eS.ResolveAll(func(*ConflictGroup) int { return 0 })
		_, errP := eP.ResolveAll(func(*ConflictGroup) int { return 0 })
		if (errS == nil) != (errP == nil) {
			t.Fatalf("seed %d: ResolveAll divergence at %s: %v vs %v", seed, eS.Peer(), errS, errP)
		}
		if !eS.Instance().Equal(eP.Instance()) {
			t.Fatalf("seed %d: post-resolution instance divergence at %s", seed, eS.Peer())
		}
	}
}

// TestParallelSerialEquivalence: the parallel pipeline makes byte-identical
// decisions to the serial one across the randomized property-test workloads.
// Run with -race to also exercise the worker pool for data races.
func TestParallelSerialEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		mirroredRun(t, seed, 4, 5, 3)
	}
}

// TestParallelSerialEquivalenceContended: a high-contention single-key
// workload where every candidate conflicts with every other, maximizing the
// pair-check stage.
func TestParallelSerialEquivalenceContended(t *testing.T) {
	s := proteinSchema(t)
	logS, logP := newTestLog(t, s), newTestLog(t, s)
	qS := NewEngine("q", s, TrustAll(1), WithParallelism(1))
	qP := NewEngine("q", s, TrustAll(1), WithParallelism(8))
	for i := 0; i < 40; i++ {
		p := PeerID(fmt.Sprintf("w%d", i))
		eS := NewEngine(p, s, TrustAll(1), WithParallelism(1))
		eP := NewEngine(p, s, TrustAll(1), WithParallelism(8))
		u := Insert("F", Strs("contended", fmt.Sprintf("prot%d", i%4), fmt.Sprintf("v%d", i)), p)
		logS.publish(mustLocal(t, eS, u))
		logP.publish(mustLocal(t, eP, u))
	}
	resS := logS.reconcile(qS)
	resP := logP.reconcile(qP)
	if !reflect.DeepEqual(stripTiming(resS), stripTiming(resP)) {
		t.Fatalf("contended divergence:\nserial:   %+v\nparallel: %+v", stripTiming(resS), stripTiming(resP))
	}
	if !qS.Instance().Equal(qP.Instance()) {
		t.Fatal("contended instance divergence")
	}
	if resS.Stats.Workers != 1 || resP.Stats.Workers <= 0 {
		t.Fatalf("worker bounds not recorded: serial %d, parallel %d", resS.Stats.Workers, resP.Stats.Workers)
	}
}

// TestParallelForPanicPropagation: a panic inside a worker surfaces on the
// calling goroutine rather than crashing the process from a bare goroutine.
func TestParallelForPanicPropagation(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	parallelFor(4, 64, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

// TestParallelForCoverage: every index is visited exactly once at any
// worker count.
func TestParallelForCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 257
		hits := make([]int32, n)
		parallelFor(workers, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}
