package core

import "sort"

// AppendOnlyEngine implements append-only reconciliation (§4.1,
// Definition 2), the paper's simpler baseline: all updates are insertions,
// every transaction in an epoch is considered independently, and an
// insertion is applied so long as it does not conflict with a previously
// applied insertion nor with a transaction of equal or higher priority
// published in the same epoch batch.
type AppendOnlyEngine struct {
	peer   PeerID
	schema *Schema
	trust  Trust
	prio   *PriorityCache
	inst   *Instance
	// appliedKeys guards "does not conflict with a transaction published in
	// an earlier epoch": any earlier transaction that touched a key, applied
	// or not, blocks later conflicting inserts.
	seen map[tupleKey]Tuple
}

// NewAppendOnlyEngine returns an append-only engine for the participant.
func NewAppendOnlyEngine(peer PeerID, schema *Schema, trust Trust) *AppendOnlyEngine {
	return &AppendOnlyEngine{
		peer:   peer,
		schema: schema,
		trust:  trust,
		prio:   NewPriorityCache(trust),
		inst:   NewInstance(schema),
		seen:   make(map[tupleKey]Tuple),
	}
}

// Instance returns the engine's instance (read-only to callers).
func (e *AppendOnlyEngine) Instance() *Instance { return e.inst }

// Peer returns the participant ID.
func (e *AppendOnlyEngine) Peer() PeerID { return e.peer }

// ReconcileEpoch computes ∆acc(i)|e for one epoch's published transactions
// and applies it: a transaction is acceptable iff no other transaction in
// the same batch conflicts with it at equal or higher priority, and no
// transaction from an earlier epoch conflicts with it. It returns the
// accepted transaction IDs.
func (e *AppendOnlyEngine) ReconcileEpoch(batch []*Transaction) []TxnID {
	ordered := append([]*Transaction(nil), batch...)
	SortTxns(ordered)

	type entry struct {
		x    *Transaction
		prio int
	}
	entries := make([]entry, 0, len(ordered))
	for _, x := range ordered {
		entries = append(entries, entry{x: x, prio: e.prio.TxnPriority(x)})
	}

	// Index the batch by inserted key so intra-batch conflict checks only
	// compare transactions touching the same key.
	byKey := make(map[tupleKey][]int)
	for i, en := range entries {
		for _, u := range en.x.Updates {
			if u.Op != OpInsert {
				continue
			}
			rel, found := e.schema.Relation(u.Rel)
			if !found {
				continue
			}
			k := tupleKey{rel: u.Rel, enc: rel.KeyEnc(u.Tuple)}
			byKey[k] = append(byKey[k], i)
		}
	}

	accepted := make([]TxnID, 0, len(entries))
	for i, en := range entries {
		if en.prio <= 0 {
			continue
		}
		ok := true
		// Conflict with any transaction from an earlier epoch that touched
		// the same key with a different value (∆e′, e′ < e): approximated by
		// the seen map, which records every key touched by prior batches.
		candidates := map[int]bool{}
		for _, u := range en.x.Updates {
			if u.Op != OpInsert {
				continue // append-only: non-inserts are ignored
			}
			rel, found := e.schema.Relation(u.Rel)
			if !found {
				ok = false
				break
			}
			k := tupleKey{rel: u.Rel, enc: rel.KeyEnc(u.Tuple)}
			if prev, seen := e.seen[k]; seen && !prev.Equal(u.Tuple) {
				ok = false
				break
			}
			for _, j := range byKey[k] {
				if j != i {
					candidates[j] = true
				}
			}
		}
		if !ok {
			continue
		}
		// Conflict with another same-key transaction in this batch at
		// equal or higher priority.
		for j := range candidates {
			other := entries[j]
			if other.prio < en.prio {
				continue
			}
			if len(transactionsConflict(e.schema, en.x, other.x)) > 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, u := range en.x.Updates {
			if u.Op == OpInsert {
				if err := e.inst.Apply(u); err == nil {
					rel := e.schema.MustRelation(u.Rel)
					e.seen[tupleKey{rel: u.Rel, enc: rel.KeyEnc(u.Tuple)}] = u.Tuple
				}
			}
		}
		accepted = append(accepted, en.x.ID)
	}
	// Record the keys of every transaction in the batch, applied or not, so
	// later epochs treat conflicts with them as historical.
	for _, en := range entries {
		for _, u := range en.x.Updates {
			if u.Op != OpInsert {
				continue
			}
			rel, found := e.schema.Relation(u.Rel)
			if !found {
				continue
			}
			k := tupleKey{rel: u.Rel, enc: rel.KeyEnc(u.Tuple)}
			if _, dup := e.seen[k]; !dup {
				e.seen[k] = u.Tuple
			}
		}
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Less(accepted[j]) })
	return accepted
}

// transactionsConflict reports the conflicts between the raw update sets of
// two transactions (used by the append-only baseline, where flattening is
// unnecessary).
func transactionsConflict(s *Schema, a, b *Transaction) []Conflict {
	return SetsConflict(s, a.Updates, b.Updates)
}
