package core

import (
	"fmt"
	"sort"
)

// LoggedTxn is one entry of the update store's replay log: a published
// transaction and its antecedent set.
type LoggedTxn struct {
	Txn         *Transaction
	Antecedents []TxnID
}

// RestoredDecision is a peer's recorded decision for one transaction,
// together with its acceptance sequence: the order in which the peer's
// decisions were recorded at the store. Acceptance order — not global
// publication order — is the peer's valid local history: a peer may accept
// its own revision of a value before importing a later-published identical
// insert that is idempotent by then.
type RestoredDecision struct {
	Decision Decision
	Seq      int64
}

// Restore rebuilds the engine's state from the update store's full log and
// this peer's recorded decisions — the soft-state reconstruction path of
// the paper's §5.2 (see docs/RECOVERY.md for the recovery contract).
//
// The instance is the net effect of every accepted transaction's updates in
// acceptance order (flattened, so superseded intermediate states are
// skipped exactly as the original reconciliations skipped them). Deferred
// transactions are not recorded by the store; they are reconsidered
// automatically by the next reconciliation, which the caller performs after
// Restore.
func (e *Engine) Restore(log []LoggedTxn, decisions map[TxnID]RestoredDecision) error {
	if len(e.applied) > 0 || e.inst.TotalLen() > 0 {
		return fmt.Errorf("core: Restore requires a fresh engine")
	}
	return e.restoreLog(log, decisions)
}

// RestoreTail replays a suffix of the update store's log onto an engine
// previously seeded from a snapshot (NewEngineFromSnapshot): the log should
// contain every published transaction the snapshot does not already fold in
// (the post-snapshot epochs plus the snapshot's residue), and decisions the
// peer's decisions recorded after the snapshot's per-peer sequence
// high-water mark. Transactions the engine has already decided are skipped,
// so overlapping log entries are harmless. RestoreTail on a fresh engine is
// exactly Restore.
func (e *Engine) RestoreTail(log []LoggedTxn, decisions map[TxnID]RestoredDecision) error {
	return e.restoreLog(log, decisions)
}

// restoreLog is the shared replay body of Restore and RestoreTail: fold the
// given decisions over the log in acceptance order, applying accepted
// transactions' updates on top of whatever state the engine already holds.
func (e *Engine) restoreLog(log []LoggedTxn, decisions map[TxnID]RestoredDecision) error {
	ordered := append([]LoggedTxn(nil), log...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Txn.Order < ordered[j].Txn.Order })

	var accepted []*Transaction
	var maxOwnSeq uint64
	haveOwn := false
	for _, lt := range ordered {
		id := lt.Txn.ID
		if id.Origin == e.peer {
			haveOwn = true
			if id.Seq > maxOwnSeq {
				maxOwnSeq = id.Seq
			}
		}
		if e.applied.Has(id) || e.rejected.Has(id) {
			continue // already folded in by the snapshot
		}
		switch decisions[id].Decision {
		case DecisionAccept:
			accepted = append(accepted, lt.Txn)
			e.applied.Add(id)
		case DecisionReject:
			e.rejected.Add(id)
		}
	}
	// Acceptance order, breaking ties (within one reconciliation batch) by
	// global order.
	sort.SliceStable(accepted, func(i, j int) bool {
		si, sj := decisions[accepted[i].ID].Seq, decisions[accepted[j].ID].Seq
		if si != sj {
			return si < sj
		}
		return accepted[i].Order < accepted[j].Order
	})

	flat, err := Flatten(e.schema, UpdateFootprint(accepted))
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := e.inst.CompatibleAll(flat); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	for _, u := range flat {
		e.inst.applyUnchecked(u)
	}
	e.noteProducers(accepted)
	if haveOwn && maxOwnSeq+1 > e.nextSeq {
		e.nextSeq = maxOwnSeq + 1
	}
	return nil
}
