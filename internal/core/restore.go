package core

import (
	"fmt"
	"sort"
)

// LoggedTxn is one entry of the update store's replay log: a published
// transaction and its antecedent set.
type LoggedTxn struct {
	Txn         *Transaction
	Antecedents []TxnID
}

// RestoredDecision is a peer's recorded decision for one transaction,
// together with its acceptance sequence: the order in which the peer's
// decisions were recorded at the store. Acceptance order — not global
// publication order — is the peer's valid local history: a peer may accept
// its own revision of a value before importing a later-published identical
// insert that is idempotent by then.
type RestoredDecision struct {
	Decision Decision
	Seq      int64
}

// Restore rebuilds the engine's state from the update store's log and this
// peer's recorded decisions — the §5.2 soft-state guarantee: "it is
// possible to reconstruct the entire state of the participant, up to his or
// her last reconciliation, from the update store".
//
// The instance is the net effect of every accepted transaction's updates in
// acceptance order (flattened, so superseded intermediate states are
// skipped exactly as the original reconciliations skipped them). Deferred
// transactions are not recorded by the store; they are reconsidered
// automatically by the next reconciliation, which the caller performs after
// Restore.
func (e *Engine) Restore(log []LoggedTxn, decisions map[TxnID]RestoredDecision) error {
	if len(e.applied) > 0 || e.inst.TotalLen() > 0 {
		return fmt.Errorf("core: Restore requires a fresh engine")
	}
	ordered := append([]LoggedTxn(nil), log...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Txn.Order < ordered[j].Txn.Order })

	var accepted []*Transaction
	var maxOwnSeq uint64
	haveOwn := false
	for _, lt := range ordered {
		id := lt.Txn.ID
		if id.Origin == e.peer {
			haveOwn = true
			if id.Seq > maxOwnSeq {
				maxOwnSeq = id.Seq
			}
		}
		switch decisions[id].Decision {
		case DecisionAccept:
			accepted = append(accepted, lt.Txn)
			e.applied.Add(id)
		case DecisionReject:
			e.rejected.Add(id)
		}
	}
	// Acceptance order, breaking ties (within one reconciliation batch) by
	// global order.
	sort.SliceStable(accepted, func(i, j int) bool {
		si, sj := decisions[accepted[i].ID].Seq, decisions[accepted[j].ID].Seq
		if si != sj {
			return si < sj
		}
		return accepted[i].Order < accepted[j].Order
	})

	flat, err := Flatten(e.schema, UpdateFootprint(accepted))
	if err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if err := e.inst.CompatibleAll(flat); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	for _, u := range flat {
		e.inst.applyUnchecked(u)
	}
	e.noteProducers(accepted)
	if haveOwn {
		e.nextSeq = maxOwnSeq + 1
	}
	return nil
}
