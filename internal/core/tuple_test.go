package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTupleBasics(t *testing.T) {
	a := Strs("rat", "prot1", "immune")
	if a.String() != "(rat, prot1, immune)" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Equal(T(S("rat"), S("prot1"), S("immune"))) {
		t.Error("Equal broken for identical tuples")
	}
	if a.Equal(Strs("rat", "prot1")) {
		t.Error("Equal ignores arity")
	}
	if a.Equal(Strs("rat", "prot1", "cell")) {
		t.Error("Equal ignores values")
	}
	b := a.Clone()
	b[2] = S("changed")
	if a[2].Str() != "immune" {
		t.Error("Clone shares storage")
	}
	if got := a.Project([]int{0, 1}); !got.Equal(Strs("rat", "prot1")) {
		t.Errorf("Project = %v", got)
	}
	var nilT Tuple
	if nilT.Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		sign int
	}{
		{Strs("a"), Strs("a"), 0},
		{Strs("a"), Strs("b"), -1},
		{Strs("b"), Strs("a"), 1},
		{Strs("a"), Strs("a", "b"), -1},
		{Strs("a", "b"), Strs("a"), 1},
		{T(I(1), S("x")), T(I(1), S("y")), -1},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		switch {
		case c.sign == 0 && got != 0,
			c.sign < 0 && got >= 0,
			c.sign > 0 && got <= 0:
			t.Errorf("Compare(%v, %v) = %d, want sign %d", c.a, c.b, got, c.sign)
		}
	}
}

type genTuple struct{ T Tuple }

func (genTuple) Generate(r *rand.Rand, _ int) reflect.Value {
	n := r.Intn(5)
	tp := make(Tuple, n)
	for i := range tp {
		tp[i] = randomValue(r)
	}
	return reflect.ValueOf(genTuple{T: tp})
}

func TestTupleEncodeRoundTrip(t *testing.T) {
	prop := func(g genTuple) bool {
		dec, err := DecodeTuple(g.T.Encode())
		if err != nil {
			return false
		}
		if len(g.T) == 0 {
			return len(dec) == 0
		}
		return dec.Equal(g.T)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTupleEncodeInjective(t *testing.T) {
	prop := func(a, b genTuple) bool {
		return (a.T.Encode() == b.T.Encode()) == a.T.Equal(b.T) ||
			(len(a.T) == 0 && len(b.T) == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleError(t *testing.T) {
	if _, err := DecodeTuple("\x01"); err == nil {
		t.Error("truncated tuple should fail to decode")
	}
}

func TestTupleKeyString(t *testing.T) {
	k := mkTupleKey("F", Strs("rat", "prot1"))
	if got := k.String(); got != "F(rat, prot1)" {
		t.Errorf("tupleKey.String() = %q", got)
	}
	bad := tupleKey{rel: "F", enc: "\x01"}
	if got := bad.String(); got == "" {
		t.Error("bad key should still render")
	}
}
