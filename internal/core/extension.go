package core

// UpdateExtension is U_i(X, L) from §4.2: the set of changes made by the
// transaction list L (a subset of X's transaction extension, sorted by
// application order) as seen by a reconciling peer, with all intermediate
// steps removed.
type UpdateExtension struct {
	// Root is the original transaction X.
	Root TxnID
	// Source is the contents of L: the transactions whose footprint was
	// flattened, in application order.
	Source []*Transaction
	// Operation is flatten(uf(Source)).
	Operation []Update
	// Priority is pri_i(X) for the reconciling peer.
	Priority int
	// IDs caches the ID set of Source for subsumption and sharing checks.
	IDs TxnSet
	// malformed is set when the footprint could not be flattened; such an
	// extension is rejected by CheckState.
	malformed error
	// touched memoizes TouchedKeys; it is invalidated when Operation is
	// replaced (updateSoftState builds trimmed copies rather than mutating).
	touched []tupleKey
}

// NewUpdateExtension computes the update extension of root over the
// transaction list, flattening its update footprint. A flattening error
// marks the extension malformed rather than failing: the reconciliation
// algorithm rejects malformed extensions.
func NewUpdateExtension(s *Schema, root TxnID, list []*Transaction, priority int) *UpdateExtension {
	ue := &UpdateExtension{
		Root:     root,
		Source:   list,
		Priority: priority,
		IDs:      make(TxnSet, len(list)),
	}
	ue.IDs.AddAll(list)
	op, err := Flatten(s, UpdateFootprint(list))
	if err != nil {
		ue.malformed = err
		return ue
	}
	ue.Operation = op
	return ue
}

// Malformed returns the flattening error, if any.
func (ue *UpdateExtension) Malformed() error { return ue.malformed }

// Subsumes reports whether this extension's transaction set is a superset
// of the other's (the paper's subsumption relation).
func (ue *UpdateExtension) Subsumes(other *UpdateExtension) bool {
	if len(ue.IDs) < len(other.IDs) {
		return false
	}
	for id := range other.IDs {
		if !ue.IDs.Has(id) {
			return false
		}
	}
	return true
}

// SharedWith returns the set S of transactions present in both extensions,
// or nil when the extensions are disjoint (no set is allocated then — the
// common case on the FindConflicts hot path).
func (ue *UpdateExtension) SharedWith(other *UpdateExtension) TxnSet {
	a, b := ue.IDs, other.IDs
	if len(a) > len(b) {
		a, b = b, a
	}
	var s TxnSet
	for id := range a {
		if b.Has(id) {
			if s == nil {
				s = make(TxnSet)
			}
			s.Add(id)
		}
	}
	return s
}

// Conflicts returns the conflicts between the flattened operations of two
// extensions, ignoring interactions that stem from transactions shared by
// both (Definition 4, direct conflict): the flattened footprints are
// recomputed over Source − S when the extensions overlap. In the common
// disjoint case no intermediate sets are materialized. Safe for concurrent
// use on distinct receivers (the parallel conflict stage compares pairs
// whose TouchedKeys memos were warmed beforehand).
func (ue *UpdateExtension) Conflicts(s *Schema, other *UpdateExtension) []Conflict {
	shared := ue.SharedWith(other)
	if len(shared) == 0 {
		return SetsConflict(s, ue.Operation, other.Operation)
	}
	opA := flattenMinus(s, ue.Source, shared)
	opB := flattenMinus(s, other.Source, shared)
	return SetsConflict(s, opA, opB)
}

// flattenMinus flattens the footprint of list with the shared transactions
// removed. A malformed remainder yields its raw footprint (conservative:
// more updates → more conflicts detected, never fewer).
func flattenMinus(s *Schema, list []*Transaction, drop TxnSet) []Update {
	kept := make([]*Transaction, 0, len(list))
	for _, x := range list {
		if !drop.Has(x.ID) {
			kept = append(kept, x)
		}
	}
	fp := UpdateFootprint(kept)
	op, err := Flatten(s, fp)
	if err != nil {
		return fp
	}
	return op
}

// TouchedKeys returns the (relation, encoded key) pairs read or written by
// the extension's flattened operation — the keys that become dirty if the
// extension is deferred. The result is memoized.
func (ue *UpdateExtension) TouchedKeys(s *Schema) []tupleKey {
	if ue.touched != nil {
		return ue.touched
	}
	ops := ue.Operation
	if ue.malformed != nil {
		// Fall back to the raw footprint for dirty-key purposes.
		ops = UpdateFootprint(ue.Source)
	}
	seen := make(map[tupleKey]bool, 2*len(ops))
	out := make([]tupleKey, 0, 2*len(ops))
	add := func(k tupleKey) {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for i := range ops {
		u := &ops[i]
		rel, ok := s.Relation(u.Rel)
		if !ok {
			continue
		}
		if u.Tuple != nil {
			add(tupleKey{rel: u.Rel, enc: u.keyEncTuple(rel)})
		}
		if u.New != nil {
			add(tupleKey{rel: u.Rel, enc: u.keyEncNew(rel)})
		}
	}
	ue.touched = out
	return out
}
