package core

import (
	"strings"
	"testing"
)

func TestTxnIDStringAndLess(t *testing.T) {
	a := xid("p1", 0)
	b := xid("p1", 1)
	c := xid("p2", 0)
	if a.String() != "p1:0" {
		t.Errorf("String = %q", a.String())
	}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("Less ordering broken")
	}
}

func TestNewTransactionForcesOrigin(t *testing.T) {
	x := NewTransaction(xid("p1", 0), Insert("F", Strs("a", "b", "c"), "someone-else"))
	if x.Updates[0].Origin != "p1" {
		t.Errorf("origin not forced: %s", x.Updates[0].Origin)
	}
}

func TestTransactionValidate(t *testing.T) {
	s := flatSchema(t)
	empty := &Transaction{ID: xid("p1", 0)}
	if err := empty.Validate(s); err == nil {
		t.Error("empty transaction should fail validation")
	}
	bad := NewTransaction(xid("p1", 0), Insert("F", Strs("a", "b"), "p1"))
	if err := bad.Validate(s); err == nil {
		t.Error("wrong arity should fail validation")
	}
	wrongOrigin := &Transaction{
		ID:      xid("p1", 0),
		Updates: []Update{Insert("F", Strs("a", "b", "c"), "p9")},
	}
	if err := wrongOrigin.Validate(s); err == nil {
		t.Error("mismatched origin should fail validation")
	}
	ok := NewTransaction(xid("p1", 0), Insert("F", Strs("a", "b", "c"), "p1"))
	if err := ok.Validate(s); err != nil {
		t.Errorf("valid transaction rejected: %v", err)
	}
}

func TestTransactionCloneAndString(t *testing.T) {
	x := NewTransaction(xid("p3", 0),
		Insert("F", Strs("rat", "prot1", "cell-metab"), "p3"))
	y := x.Clone()
	y.Updates[0] = Delete("F", Strs("z", "z", "z"), "p3")
	if x.Updates[0].Op != OpInsert {
		t.Error("Clone shares updates slice")
	}
	if !strings.Contains(x.String(), "Xp3:0") || !strings.Contains(x.String(), "cell-metab") {
		t.Errorf("String = %q", x.String())
	}
}

func TestSortTxnsAndFootprint(t *testing.T) {
	a := NewTransaction(xid("a", 0), Insert("F", Strs("1", "1", "1"), "a"))
	b := NewTransaction(xid("b", 0), Insert("F", Strs("2", "2", "2"), "b"), Delete("F", Strs("3", "3", "3"), "b"))
	a.Order, b.Order = 5, 2
	xs := []*Transaction{a, b}
	SortTxns(xs)
	if xs[0] != b || xs[1] != a {
		t.Error("SortTxns by order broken")
	}
	fp := UpdateFootprint(xs)
	if len(fp) != 3 || fp[0].Op != OpInsert || fp[2].Op != OpInsert {
		t.Errorf("footprint = %v", fp)
	}
}

func TestTxnSet(t *testing.T) {
	s := NewTxnSet(xid("b", 1), xid("a", 2))
	if !s.Has(xid("a", 2)) || s.Has(xid("a", 3)) {
		t.Error("Has broken")
	}
	s.Add(xid("c", 0))
	s.AddAll([]*Transaction{NewTransaction(xid("d", 9), Insert("F", Strs("x", "y", "z"), "d"))})
	sorted := s.Sorted()
	if len(sorted) != 4 || sorted[0] != xid("a", 2) || sorted[3] != xid("d", 9) {
		t.Errorf("Sorted = %v", sorted)
	}
}

func TestUpdateStringsAndOps(t *testing.T) {
	ins := Insert("F", Strs("rat", "p1", "a"), "p3")
	if got := ins.String(); got != "+F(rat, p1, a; p3)" {
		t.Errorf("insert String = %q", got)
	}
	del := Delete("F", Strs("rat", "p1", "a"), "p3")
	if got := del.String(); got != "-F(rat, p1, a; p3)" {
		t.Errorf("delete String = %q", got)
	}
	mod := Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "p3")
	if got := mod.String(); got != "F(rat, p1, a -> rat, p1, b; p3)" {
		t.Errorf("modify String = %q", got)
	}
	if OpInsert.String() != "+" || OpDelete.String() != "-" || OpModify.String() != "~" {
		t.Error("Op sigils broken")
	}
	if Op(9).String() != "op(9)" {
		t.Error("unknown Op sigil broken")
	}
	if ins.Produces() == nil || ins.Consumes() != nil {
		t.Error("insert produces/consumes wrong")
	}
	if del.Produces() != nil || del.Consumes() == nil {
		t.Error("delete produces/consumes wrong")
	}
	if mod.Produces() == nil || mod.Consumes() == nil {
		t.Error("modify produces/consumes wrong")
	}
	bad := Update{Op: Op(9), Rel: "F", Tuple: Strs("a", "b", "c")}
	if bad.Produces() != nil || bad.Consumes() != nil || bad.String() == "" {
		t.Error("unknown op handling broken")
	}
}

func TestUpdateValidate(t *testing.T) {
	s := flatSchema(t)
	if err := Insert("F", Strs("a", "b", "c"), "p").Validate(s); err != nil {
		t.Errorf("valid insert rejected: %v", err)
	}
	if err := Insert("Zed", Strs("a"), "p").Validate(s); err == nil {
		t.Error("unknown relation accepted")
	}
	withNew := Update{Op: OpInsert, Rel: "F", Tuple: Strs("a", "b", "c"), New: Strs("a", "b", "d")}
	if err := withNew.Validate(s); err == nil {
		t.Error("insert with replacement tuple accepted")
	}
	if err := Modify("F", Strs("a", "b", "c"), Strs("a", "b"), "p").Validate(s); err == nil {
		t.Error("modify with bad replacement arity accepted")
	}
	if err := (Update{Op: Op(9), Rel: "F", Tuple: Strs("a", "b", "c")}).Validate(s); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		DecisionNone: "none", DecisionAccept: "accept",
		DecisionReject: "reject", DecisionDefer: "defer", Decision(9): "decision(9)",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestTxnPriority(t *testing.T) {
	x := NewTransaction(xid("p1", 0),
		Insert("F", Strs("a", "b", "c"), "p1"),
		Insert("F", Strs("d", "e", "f"), "p1"))
	if got := TxnPriority(TrustAll(3), x); got != 3 {
		t.Errorf("TrustAll priority = %d", got)
	}
	// Any untrusted update forces priority 0.
	alternating := TrustFunc(func(u Update) int {
		if u.Tuple[0].Str() == "a" {
			return 5
		}
		return 0
	})
	if got := TxnPriority(alternating, x); got != 0 {
		t.Errorf("partially untrusted txn priority = %d, want 0", got)
	}
	// Otherwise: max over updates.
	graded := TrustFunc(func(u Update) int {
		if u.Tuple[0].Str() == "a" {
			return 2
		}
		return 7
	})
	if got := TxnPriority(graded, x); got != 7 {
		t.Errorf("graded txn priority = %d, want max 7", got)
	}
	origins := TrustOrigins(map[PeerID]int{"p1": 4})
	if got := TxnPriority(origins, x); got != 4 {
		t.Errorf("origin trust priority = %d", got)
	}
	y := NewTransaction(xid("p9", 0), Insert("F", Strs("a", "b", "c"), "p9"))
	if got := TxnPriority(origins, y); got != 0 {
		t.Errorf("unlisted origin priority = %d, want 0", got)
	}
}
