package core

import (
	"fmt"
	"sort"
)

// Instance is one participant's materialized database instance I_i(Σ): for
// each relation, a map from encoded key to the tuple holding that key.
// Instances enforce the schema's integrity constraints (key uniqueness,
// NOT NULL, foreign keys); an update that would violate them is
// *incompatible* with the instance in the paper's sense.
type Instance struct {
	schema *Schema
	rels   map[string]map[string]Tuple // rel -> keyEnc -> tuple
	// fkCount tracks, per referenced relation, how many referencing tuples
	// point at each referenced key (for reverse foreign-key checks).
	fkCount map[string]map[string]int
}

// NewInstance returns an empty instance of the schema.
func NewInstance(s *Schema) *Instance {
	in := &Instance{
		schema:  s,
		rels:    make(map[string]map[string]Tuple, s.Len()),
		fkCount: make(map[string]map[string]int),
	}
	for _, name := range s.Names() {
		in.rels[name] = make(map[string]Tuple)
	}
	return in
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Lookup returns the tuple holding the given key, if any.
func (in *Instance) Lookup(rel string, key Tuple) (Tuple, bool) {
	m, ok := in.rels[rel]
	if !ok {
		return nil, false
	}
	t, ok := m[key.Encode()]
	return t, ok
}

// lookupEnc is Lookup with a pre-encoded key.
func (in *Instance) lookupEnc(rel, keyEnc string) (Tuple, bool) {
	t, ok := in.rels[rel][keyEnc]
	return t, ok
}

// Len returns the number of tuples in a relation.
func (in *Instance) Len(rel string) int { return len(in.rels[rel]) }

// TotalLen returns the number of tuples across all relations.
func (in *Instance) TotalLen() int {
	n := 0
	for _, m := range in.rels {
		n += len(m)
	}
	return n
}

// Tuples returns the tuples of a relation sorted by key encoding, for
// deterministic iteration.
func (in *Instance) Tuples(rel string) []Tuple {
	m := in.rels[rel]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// Keys returns the encoded keys present in a relation, sorted.
func (in *Instance) Keys(rel string) []string {
	m := in.rels[rel]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a deep copy of the instance (tuples are shared; they are
// immutable by convention).
func (in *Instance) Clone() *Instance {
	cp := &Instance{
		schema:  in.schema,
		rels:    make(map[string]map[string]Tuple, len(in.rels)),
		fkCount: make(map[string]map[string]int, len(in.fkCount)),
	}
	for name, m := range in.rels {
		nm := make(map[string]Tuple, len(m))
		for k, v := range m {
			nm[k] = v
		}
		cp.rels[name] = nm
	}
	for name, m := range in.fkCount {
		nm := make(map[string]int, len(m))
		for k, v := range m {
			nm[k] = v
		}
		cp.fkCount[name] = nm
	}
	return cp
}

// Equal reports whether two instances hold exactly the same tuples.
func (in *Instance) Equal(other *Instance) bool {
	if len(in.rels) != len(other.rels) {
		return false
	}
	for name, m := range in.rels {
		om, ok := other.rels[name]
		if !ok || len(m) != len(om) {
			return false
		}
		for k, t := range m {
			ot, ok := om[k]
			if !ok || !t.Equal(ot) {
				return false
			}
		}
	}
	return true
}

// IncompatibleError describes why an update cannot be applied to an
// instance without violating its integrity constraints.
type IncompatibleError struct {
	Update Update
	Reason string
}

func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("core: update %s incompatible with instance: %s", e.Update, e.Reason)
}

func incompat(u Update, format string, args ...any) error {
	return &IncompatibleError{Update: u, Reason: fmt.Sprintf(format, args...)}
}

// Compatible reports whether applying u to the current instance preserves
// all integrity constraints; it returns nil if so and an
// *IncompatibleError otherwise. Inserting a tuple that is already present
// verbatim is a compatible no-op.
func (in *Instance) Compatible(u Update) error {
	rel, ok := in.schema.Relation(u.Rel)
	if !ok {
		return incompat(u, "unknown relation %s", u.Rel)
	}
	switch u.Op {
	case OpInsert:
		if err := rel.Validate(u.Tuple); err != nil {
			return incompat(u, "%v", err)
		}
		if cur, exists := in.lookupEnc(u.Rel, u.keyEncTuple(rel)); exists && !cur.Equal(u.Tuple) {
			return incompat(u, "key already bound to %s", cur)
		}
		return in.checkForeignKeys(rel, u, u.Tuple)
	case OpDelete:
		cur, exists := in.lookupEnc(u.Rel, u.keyEncTuple(rel))
		if !exists {
			return incompat(u, "tuple absent")
		}
		if !cur.Equal(u.Tuple) {
			return incompat(u, "key bound to different value %s", cur)
		}
		return in.checkNotReferenced(rel, u, u.keyEncTuple(rel))
	case OpModify:
		if err := rel.Validate(u.New); err != nil {
			return incompat(u, "%v", err)
		}
		cur, exists := in.lookupEnc(u.Rel, u.keyEncTuple(rel))
		if !exists {
			return incompat(u, "source tuple absent")
		}
		if !cur.Equal(u.Tuple) {
			return incompat(u, "source key bound to different value %s", cur)
		}
		oldKey, newKey := u.keyEncTuple(rel), u.keyEncNew(rel)
		if oldKey != newKey {
			if clash, exists := in.lookupEnc(u.Rel, newKey); exists {
				return incompat(u, "replacement key already bound to %s", clash)
			}
			if err := in.checkNotReferenced(rel, u, oldKey); err != nil {
				return err
			}
		}
		return in.checkForeignKeys(rel, u, u.New)
	default:
		return incompat(u, "unknown op")
	}
}

// checkForeignKeys verifies every foreign key of rel holds for tuple t.
func (in *Instance) checkForeignKeys(rel *Relation, u Update, t Tuple) error {
	for _, fk := range rel.ForeignKeys {
		refEnc := t.Project(fk.Attrs).Encode()
		if _, ok := in.lookupEnc(fk.RefRel, refEnc); !ok {
			return incompat(u, "dangling reference into %s", fk.RefRel)
		}
	}
	return nil
}

// checkNotReferenced verifies that removing the tuple with the given key
// encoding from rel leaves no dangling references from other relations.
func (in *Instance) checkNotReferenced(rel *Relation, u Update, keyEnc string) error {
	refs := in.fkCount[rel.Name]
	if refs == nil {
		return nil
	}
	if n := refs[keyEnc]; n > 0 {
		return incompat(u, "key referenced by %d tuple(s)", n)
	}
	return nil
}

// Apply applies a single update after re-checking compatibility. The
// instance is unchanged on error.
func (in *Instance) Apply(u Update) error {
	if err := in.Compatible(u); err != nil {
		return err
	}
	in.applyUnchecked(u)
	return nil
}

// applyUnchecked mutates the instance assuming Compatible(u) == nil.
func (in *Instance) applyUnchecked(u Update) {
	rel := in.schema.MustRelation(u.Rel)
	switch u.Op {
	case OpInsert:
		in.put(rel, u.Tuple, u.keyEncTuple(rel))
	case OpDelete:
		in.del(rel, u.Tuple, u.keyEncTuple(rel))
	case OpModify:
		in.del(rel, u.Tuple, u.keyEncTuple(rel))
		in.put(rel, u.New, u.keyEncNew(rel))
	}
}

func (in *Instance) put(rel *Relation, t Tuple, keyEnc string) {
	in.rels[rel.Name][keyEnc] = t
	for _, fk := range rel.ForeignKeys {
		m := in.fkCount[fk.RefRel]
		if m == nil {
			m = make(map[string]int)
			in.fkCount[fk.RefRel] = m
		}
		m[t.Project(fk.Attrs).Encode()]++
	}
}

func (in *Instance) del(rel *Relation, t Tuple, keyEnc string) {
	delete(in.rels[rel.Name], keyEnc)
	for _, fk := range rel.ForeignKeys {
		if m := in.fkCount[fk.RefRel]; m != nil {
			enc := t.Project(fk.Attrs).Encode()
			if m[enc]--; m[enc] <= 0 {
				delete(m, enc)
			}
		}
	}
}

// ApplyAll applies a sequence of updates, checking compatibility against the
// evolving instance. If any update is incompatible it returns the error and
// rolls back nothing: callers that need atomicity use CompatibleAll first.
func (in *Instance) ApplyAll(us []Update) error {
	for _, u := range us {
		if err := in.Apply(u); err != nil {
			return err
		}
	}
	return nil
}

// CompatibleAll reports whether the whole sequence can be applied in order
// without violating integrity constraints, using a scratch overlay so the
// instance itself is not modified.
func (in *Instance) CompatibleAll(us []Update) error {
	ov := newOverlay(in)
	for _, u := range us {
		if err := ov.apply(u); err != nil {
			return err
		}
	}
	return nil
}

// overlay is a copy-on-write view of an instance used for trial application
// of update sequences without cloning the full instance.
type overlay struct {
	base *Instance
	// mods maps (rel, keyEnc) to the overlaid tuple; nil tuple = deleted.
	mods map[tupleKey]Tuple
	// fkDelta tracks reference-count changes per referenced relation/key.
	fkDelta map[tupleKey]int
}

func newOverlay(base *Instance) *overlay {
	return &overlay{base: base, mods: make(map[tupleKey]Tuple), fkDelta: make(map[tupleKey]int)}
}

func (ov *overlay) lookup(rel, keyEnc string) (Tuple, bool) {
	k := tupleKey{rel: rel, enc: keyEnc}
	if t, ok := ov.mods[k]; ok {
		if t == nil {
			return nil, false
		}
		return t, true
	}
	return ov.base.lookupEnc(rel, keyEnc)
}

func (ov *overlay) refCount(rel, keyEnc string) int {
	n := 0
	if m := ov.base.fkCount[rel]; m != nil {
		n = m[keyEnc]
	}
	return n + ov.fkDelta[tupleKey{rel: rel, enc: keyEnc}]
}

func (ov *overlay) bumpRefs(rel *Relation, t Tuple, delta int) {
	for _, fk := range rel.ForeignKeys {
		k := tupleKey{rel: fk.RefRel, enc: t.Project(fk.Attrs).Encode()}
		ov.fkDelta[k] += delta
	}
}

func (ov *overlay) apply(u Update) error {
	rel, ok := ov.base.schema.Relation(u.Rel)
	if !ok {
		return incompat(u, "unknown relation %s", u.Rel)
	}
	checkFKs := func(t Tuple) error {
		for _, fk := range rel.ForeignKeys {
			refEnc := t.Project(fk.Attrs).Encode()
			if _, ok := ov.lookup(fk.RefRel, refEnc); !ok {
				return incompat(u, "dangling reference into %s", fk.RefRel)
			}
		}
		return nil
	}
	switch u.Op {
	case OpInsert:
		if err := rel.Validate(u.Tuple); err != nil {
			return incompat(u, "%v", err)
		}
		keyEnc := u.keyEncTuple(rel)
		if cur, exists := ov.lookup(u.Rel, keyEnc); exists {
			if cur.Equal(u.Tuple) {
				return nil // idempotent
			}
			return incompat(u, "key already bound to %s", cur)
		}
		if err := checkFKs(u.Tuple); err != nil {
			return err
		}
		ov.mods[tupleKey{rel: u.Rel, enc: keyEnc}] = u.Tuple
		ov.bumpRefs(rel, u.Tuple, 1)
		return nil
	case OpDelete:
		keyEnc := u.keyEncTuple(rel)
		cur, exists := ov.lookup(u.Rel, keyEnc)
		if !exists {
			return incompat(u, "tuple absent")
		}
		if !cur.Equal(u.Tuple) {
			return incompat(u, "key bound to different value %s", cur)
		}
		if n := ov.refCount(u.Rel, keyEnc); n > 0 {
			return incompat(u, "key referenced by %d tuple(s)", n)
		}
		ov.mods[tupleKey{rel: u.Rel, enc: keyEnc}] = nil
		ov.bumpRefs(rel, u.Tuple, -1)
		return nil
	case OpModify:
		if err := rel.Validate(u.New); err != nil {
			return incompat(u, "%v", err)
		}
		oldKey, newKey := u.keyEncTuple(rel), u.keyEncNew(rel)
		cur, exists := ov.lookup(u.Rel, oldKey)
		if !exists {
			return incompat(u, "source tuple absent")
		}
		if !cur.Equal(u.Tuple) {
			return incompat(u, "source key bound to different value %s", cur)
		}
		if oldKey != newKey {
			if clash, exists := ov.lookup(u.Rel, newKey); exists {
				return incompat(u, "replacement key already bound to %s", clash)
			}
			if n := ov.refCount(u.Rel, oldKey); n > 0 {
				return incompat(u, "key referenced by %d tuple(s)", n)
			}
			ov.mods[tupleKey{rel: u.Rel, enc: oldKey}] = nil
		}
		if err := checkFKs(u.New); err != nil {
			return err
		}
		ov.mods[tupleKey{rel: u.Rel, enc: newKey}] = u.New
		ov.bumpRefs(rel, u.Tuple, -1)
		ov.bumpRefs(rel, u.New, 1)
		return nil
	default:
		return incompat(u, "unknown op")
	}
}
