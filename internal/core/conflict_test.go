package core

import (
	"math/rand"
	"testing"
)

func TestUpdatesConflictRules(t *testing.T) {
	s := flatSchema(t)
	insA := Insert("F", Strs("rat", "p1", "a"), "x")
	insB := Insert("F", Strs("rat", "p1", "b"), "y")
	insSame := Insert("F", Strs("rat", "p1", "a"), "y")
	insOther := Insert("F", Strs("mouse", "p2", "a"), "y")
	delA := Delete("F", Strs("rat", "p1", "a"), "y")
	delOther := Delete("F", Strs("mouse", "p2", "a"), "y")
	modAB := Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "x")
	modAC := Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "c"), "y")
	modAB2 := Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p1", "b"), "y")
	modKeyMove := Modify("F", Strs("rat", "p1", "a"), Strs("rat", "p9", "a"), "y")

	cases := []struct {
		name  string
		a, b  Update
		types []ConflictType
	}{
		{"ins/ins same key diff value", insA, insB, []ConflictType{ConflictKeyValue}},
		{"ins/ins identical", insA, insSame, nil},
		{"ins/ins different keys", insA, insOther, nil},
		{"del vs ins same key", delA, insB, []ConflictType{ConflictDeleteWrite}},
		{"del vs ins other key", delA, insOther, nil},
		{"del vs del", delA, Delete("F", Strs("rat", "p1", "a"), "z"), nil},
		{"del vs mod consuming same", delA, modAB, []ConflictType{ConflictDeleteWrite}},
		{"del vs mod other", delOther, modAB, nil},
		{"mod/mod same source diff target", modAB, modAC, []ConflictType{ConflictModifySource, ConflictKeyValue}},
		{"mod/mod identical", modAB, modAB2, nil},
		{"ins vs mod target same key", insA, Modify("F", Strs("rat", "p9", "z"), Strs("rat", "p1", "b"), "y"), []ConflictType{ConflictKeyValue}},
		{"mod moving key away vs del", modKeyMove, delA, []ConflictType{ConflictDeleteWrite}},
		{"different relations never conflict", insA, Insert("G", Strs("rat", "p1", "b"), "y"), nil},
	}
	for _, c := range cases {
		got := UpdatesConflict(s, c.a, c.b)
		rev := UpdatesConflict(s, c.b, c.a)
		if len(got) != len(rev) {
			t.Errorf("%s: asymmetric conflict detection: %v vs %v", c.name, got, rev)
		}
		if len(got) != len(c.types) {
			t.Errorf("%s: got %v, want types %v", c.name, got, c.types)
			continue
		}
		found := map[ConflictType]bool{}
		for _, g := range got {
			found[g.Type] = true
		}
		for _, want := range c.types {
			if !found[want] {
				t.Errorf("%s: missing conflict type %v in %v", c.name, want, got)
			}
		}
	}
}

func TestConflictStringAndTypeString(t *testing.T) {
	c := Conflict{Type: ConflictKeyValue, Rel: "F", Value: Strs("rat", "p1").Encode()}
	if got := c.String(); got != "key-value on F(rat, p1)" {
		t.Errorf("Conflict.String() = %q", got)
	}
	for ct, want := range map[ConflictType]string{
		ConflictKeyValue: "key-value", ConflictDeleteWrite: "delete-write",
		ConflictModifySource: "modify-source", ConflictType(9): "conflict(9)",
	} {
		if ct.String() != want {
			t.Errorf("%d.String() = %q, want %q", ct, ct.String(), want)
		}
	}
	bad := Conflict{Type: ConflictKeyValue, Rel: "F", Value: "\x01"}
	if bad.String() == "" {
		t.Error("undecodable conflict value should still render")
	}
}

func randomUpdateSet(r *rand.Rand, n int) []Update {
	orgs := []string{"rat", "mouse", "dog"}
	prots := []string{"p0", "p1"}
	fns := []string{"a", "b", "c"}
	tup := func() Tuple {
		return Strs(orgs[r.Intn(len(orgs))], prots[r.Intn(len(prots))], fns[r.Intn(len(fns))])
	}
	out := make([]Update, n)
	for i := range out {
		switch r.Intn(3) {
		case 0:
			out[i] = Insert("F", tup(), "x")
		case 1:
			out[i] = Delete("F", tup(), "x")
		default:
			out[i] = Modify("F", tup(), tup(), "x")
		}
	}
	return out
}

// TestSetsConflictMatchesNaive: the hash-based detector and the quadratic
// reference produce the same conflict sets.
func TestSetsConflictMatchesNaive(t *testing.T) {
	s := flatSchema(t)
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		a := randomUpdateSet(r, 1+r.Intn(8))
		b := randomUpdateSet(r, 1+r.Intn(8))
		fast := SetsConflict(s, a, b)
		slow := SetsConflictNaive(s, a, b)
		fs := map[Conflict]bool{}
		for _, c := range fast {
			fs[c] = true
		}
		ss := map[Conflict]bool{}
		for _, c := range slow {
			ss[c] = true
		}
		if len(fs) != len(ss) {
			t.Fatalf("trial %d: fast=%v slow=%v\na=%v\nb=%v", trial, fast, slow, a, b)
		}
		for c := range fs {
			if !ss[c] {
				t.Fatalf("trial %d: conflict %v only in fast set", trial, c)
			}
		}
	}
}

// TestSetsConflictSymmetric: SetsConflict(a, b) == SetsConflict(b, a).
func TestSetsConflictSymmetric(t *testing.T) {
	s := flatSchema(t)
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		a := randomUpdateSet(r, 1+r.Intn(6))
		b := randomUpdateSet(r, 1+r.Intn(6))
		ab := SetsConflict(s, a, b)
		ba := SetsConflict(s, b, a)
		if len(ab) != len(ba) {
			t.Fatalf("asymmetric: %v vs %v", ab, ba)
		}
	}
}

func TestSetsConflictUnknownRelationIgnored(t *testing.T) {
	s := flatSchema(t)
	a := []Update{Insert("Zed", Strs("q", "r", "s"), "x")}
	b := []Update{Insert("Zed", Strs("q", "r", "t"), "y")}
	if got := SetsConflict(s, a, b); len(got) != 0 {
		t.Errorf("unknown relation should yield no conflicts, got %v", got)
	}
}
