package exp

import (
	"context"
	"sync/atomic"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/store"
)

// chargedStore models the client↔RDBMS cost of the paper's centralized
// update store on a virtual clock. The paper's testbed put a commercial
// RDBMS behind 100 Mb Ethernet and JDBC: each reconciliation performs a
// constant number of store procedures, each costing round trips plus query
// processing, and ships the relevant transactions as rows. Our embedded
// engine executes the same operations in-process at microsecond cost, so
// without this model the figure-10/12 trends — central cost proportional to
// the number of reconciliations, store time dominating — would disappear
// into the local-computation noise.
//
// The model charges perCall for every store procedure and perTxn for every
// transaction shipped in either direction. The defaults are calibrated so
// that a 10-peer confederation's per-reconciliation central-store overhead
// lands near the paper's ≈0.3 s (Figure 12, leftmost bar); see
// EXPERIMENTS.md.
type chargedStore struct {
	inner   store.Store
	perCall time.Duration
	perTxn  time.Duration
	charged atomic.Int64 // nanoseconds on the virtual clock
}

// Calibrated defaults (see above).
const (
	// DefaultCentralCallCost is the virtual cost of one store procedure
	// (round trips + SQL processing on the paper's testbed).
	DefaultCentralCallCost = 100 * time.Millisecond
	// DefaultCentralPerTxnCost is the virtual cost of shipping one
	// transaction row between client and store.
	DefaultCentralPerTxnCost = 2 * time.Millisecond
	// DefaultDHTRequestCost is the virtual per-delivered-request
	// processing cost at DHT nodes (every hop of a routed message is a
	// delivered request), calibrated with the same procedure: the paper's
	// distributed store spends ≈0.1 s per reconciled transaction on
	// controller requests (Figure 10's distributed bars at ≈12-13 s for
	// 100 transactions), which uniform wire latency alone does not
	// reproduce.
	DefaultDHTRequestCost = 5 * time.Millisecond
)

func newChargedStore(inner store.Store, perCall, perTxn time.Duration) *chargedStore {
	return &chargedStore{inner: inner, perCall: perCall, perTxn: perTxn}
}

// virtual returns the accumulated virtual store cost.
func (c *chargedStore) virtual() time.Duration { return time.Duration(c.charged.Load()) }

func (c *chargedStore) charge(calls int, txns int) {
	c.charged.Add(int64(c.perCall)*int64(calls) + int64(c.perTxn)*int64(txns))
}

// RegisterPeer implements store.Store (uncharged: setup).
func (c *chargedStore) RegisterPeer(ctx context.Context, peer core.PeerID, t core.Trust) error {
	return c.inner.RegisterPeer(ctx, peer, t)
}

// Publish implements store.Store.
func (c *chargedStore) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	c.charge(1, len(txns))
	return c.inner.Publish(ctx, peer, txns)
}

// BeginReconciliation implements store.Store.
func (c *chargedStore) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	rec, err := c.inner.BeginReconciliation(ctx, peer)
	if err != nil {
		return nil, err
	}
	shipped := 0
	for _, cand := range rec.Candidates {
		shipped += len(cand.Ext)
	}
	c.charge(1, shipped)
	return rec, nil
}

// RecordDecisions implements store.Store.
func (c *chargedStore) RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	c.charge(1, 0)
	return c.inner.RecordDecisions(ctx, peer, recno, accepted, rejected)
}

// RecordDecisionsBatch implements store.Store. One store procedure per
// round trip, exactly the batching economy the sharded store provides.
func (c *chargedStore) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	c.charge(1, 0)
	return c.inner.RecordDecisionsBatch(ctx, batches)
}

// CurrentRecno implements store.Store.
func (c *chargedStore) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	c.charge(1, 0)
	return c.inner.CurrentRecno(ctx, peer)
}
