package exp

import (
	"fmt"
	"io"
	"sort"

	"orchestra/internal/metrics"
)

// Row is one data point of a figure: the x-axis value, a label, and the
// measured series.
type Row struct {
	Label  string
	X      float64
	Series map[string]metrics.Summary
}

// Figure is a reproduced evaluation figure.
type Figure struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
}

// Fprint renders the figure as an aligned table.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-28s", f.XLabel)
	for _, c := range f.Columns {
		fmt.Fprintf(w, " %24s", c)
	}
	fmt.Fprintln(w)
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-28s", r.Label)
		for _, c := range f.Columns {
			fmt.Fprintf(w, " %24s", r.Series[c].String())
		}
		fmt.Fprintln(w)
	}
}

// Options scale the experiment suite: Quick shrinks trials and rounds so
// the full suite finishes in seconds (CI), while the defaults mirror the
// paper's setup (≥5 trials, 95% CIs).
type Options struct {
	Quick bool
	Seed  int64
}

func (o Options) trials() int {
	if o.Quick {
		return 2
	}
	return 5
}

func (o Options) rounds() int {
	if o.Quick {
		return 3
	}
	return 5
}

// Figure8 reproduces "The effect of varying transaction size on state
// ratio, while holding the number of updates between reconciliations
// constant": 10 peers, equal trust, transaction size swept 1-10 with
// updatesPerInterval = 20.
func Figure8(o Options) (*Figure, error) {
	const updatesPerInterval = 20
	fig := &Figure{
		ID:      "8",
		Title:   "state ratio vs transaction size (updates between reconciliations held at 20)",
		XLabel:  "transaction size",
		Columns: []string{"state ratio"},
	}
	for _, size := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10} {
		ri := updatesPerInterval / size
		if ri < 1 {
			ri = 1
		}
		res, err := Run(Config{
			Peers:         10,
			TxnSize:       size,
			ReconInterval: ri,
			Rounds:        o.rounds(),
			Store:         Central,
			Trials:        o.trials(),
			Seed:          o.Seed + int64(size),
		})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("%d", size),
			X:     float64(size),
			Series: map[string]metrics.Summary{
				"state ratio": res.StateRatio,
			},
		})
	}
	return fig, nil
}

// Figure9 reproduces "The effect on state ratio of varying reconciliation
// interval": transaction size 1, interval swept.
func Figure9(o Options) (*Figure, error) {
	fig := &Figure{
		ID:      "9",
		Title:   "state ratio vs reconciliation interval (transaction size 1)",
		XLabel:  "txns between reconciliations",
		Columns: []string{"state ratio"},
	}
	for _, ri := range []int{1, 2, 4, 8, 12, 16, 20} {
		res, err := Run(Config{
			Peers:         10,
			TxnSize:       1,
			ReconInterval: ri,
			Rounds:        o.rounds(),
			Store:         Central,
			Trials:        o.trials(),
			Seed:          o.Seed + int64(ri)*31,
		})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("%d", ri),
			X:     float64(ri),
			Series: map[string]metrics.Summary{
				"state ratio": res.StateRatio,
			},
		})
	}
	return fig, nil
}

// Figure10 reproduces "The effect on execution time of varying
// reconciliation interval, while holding transaction size at one": total
// reconciliation time per participant, split into store and local time,
// for RI ∈ {4, 20, 50} × {central, distributed}. The total number of
// published transactions per peer is held constant so that smaller
// intervals mean more reconciliations.
func Figure10(o Options) (*Figure, error) {
	totalTxns := 100
	if o.Quick {
		totalTxns = 40
	}
	fig := &Figure{
		ID:      "10",
		Title:   fmt.Sprintf("total reconciliation time per participant (txn size 1, %d txns per peer)", totalTxns),
		XLabel:  "RI, store",
		Columns: []string{"store time (s)", "local time (s)", "total (s)"},
	}
	for _, ri := range []int{4, 20, 50} {
		for _, kind := range []StoreKind{Central, DHT} {
			rounds := totalTxns / ri
			if rounds < 1 {
				rounds = 1
			}
			res, err := Run(Config{
				Peers:             10,
				TxnSize:           1,
				ReconInterval:     ri,
				Rounds:            rounds,
				Store:             kind,
				Trials:            o.trials(),
				Seed:              o.Seed + int64(ri)*7,
				CentralCallCost:   DefaultCentralCallCost,
				CentralPerTxnCost: DefaultCentralPerTxnCost,
				DHTRequestCost:    DefaultDHTRequestCost,
			})
			if err != nil {
				return nil, err
			}
			total := metrics.Summarize([]float64{res.TotalStore.Mean + res.TotalLocal.Mean})
			fig.Rows = append(fig.Rows, Row{
				Label: fmt.Sprintf("RI=%d, %s", ri, kind),
				X:     float64(ri),
				Series: map[string]metrics.Summary{
					"store time (s)": res.TotalStore,
					"local time (s)": res.TotalLocal,
					"total (s)":      total,
				},
			})
		}
	}
	return fig, nil
}

// Figure11 reproduces "The change in state ratio when the number of peers
// is increased": transaction size 1, peers swept to 50.
func Figure11(o Options) (*Figure, error) {
	fig := &Figure{
		ID:      "11",
		Title:   "state ratio vs number of participants (transaction size 1)",
		XLabel:  "participants",
		Columns: []string{"state ratio"},
	}
	sweep := []int{5, 10, 20, 30, 40, 50}
	if o.Quick {
		sweep = []int{5, 10, 25, 50}
	}
	for _, n := range sweep {
		res, err := Run(Config{
			Peers:         n,
			TxnSize:       1,
			ReconInterval: 4,
			Rounds:        o.rounds(),
			Store:         Central,
			Trials:        o.trials(),
			Seed:          o.Seed + int64(n)*13,
		})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Row{
			Label: fmt.Sprintf("%d", n),
			X:     float64(n),
			Series: map[string]metrics.Summary{
				"state ratio": res.StateRatio,
			},
		})
	}
	return fig, nil
}

// Figure12 reproduces "The effect on execution time when the number of
// peers is increased": average time per reconciliation, split into store
// and local time, for peers ∈ {10, 25, 50} × {central, distributed}.
func Figure12(o Options) (*Figure, error) {
	fig := &Figure{
		ID:      "12",
		Title:   "average time per reconciliation (transaction size 1, RI 4)",
		XLabel:  "peers, store",
		Columns: []string{"store time (s)", "local time (s)", "total (s)"},
	}
	for _, n := range []int{10, 25, 50} {
		for _, kind := range []StoreKind{Central, DHT} {
			res, err := Run(Config{
				Peers:             n,
				TxnSize:           1,
				ReconInterval:     4,
				Rounds:            o.rounds(),
				Store:             kind,
				Trials:            o.trials(),
				Seed:              o.Seed + int64(n)*17,
				CentralCallCost:   DefaultCentralCallCost,
				CentralPerTxnCost: DefaultCentralPerTxnCost,
				DHTRequestCost:    DefaultDHTRequestCost,
			})
			if err != nil {
				return nil, err
			}
			total := metrics.Summarize([]float64{res.PerReconStore.Mean + res.PerReconLocal.Mean})
			fig.Rows = append(fig.Rows, Row{
				Label: fmt.Sprintf("%d peers, %s", n, kind),
				X:     float64(n),
				Series: map[string]metrics.Summary{
					"store time (s)": res.PerReconStore,
					"local time (s)": res.PerReconLocal,
					"total (s)":      total,
				},
			})
		}
	}
	return fig, nil
}

// Figures maps figure IDs to their runners.
var Figures = map[string]func(Options) (*Figure, error){
	"8":  Figure8,
	"9":  Figure9,
	"10": Figure10,
	"11": Figure11,
	"12": Figure12,
}

// FigureIDs returns the available figure IDs in order.
func FigureIDs() []string {
	out := make([]string, 0, len(Figures))
	for id := range Figures {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}
