package exp

import (
	"testing"
	"time"
)

// TestChargedCentralRestoresFig10Shape: with the client↔RDBMS cost model,
// smaller reconciliation intervals make the central store significantly
// more expensive (the paper's Figure 10 trend), and store time dominates.
func TestChargedCentralRestoresFig10Shape(t *testing.T) {
	run := func(ri, rounds int) *Result {
		res, err := Run(Config{
			Peers: 5, TxnSize: 1, ReconInterval: ri, Rounds: rounds,
			Trials: 2, Seed: 11,
			CentralCallCost:   DefaultCentralCallCost,
			CentralPerTxnCost: DefaultCentralPerTxnCost,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Same total transactions per peer (40), different reconciliation
	// counts.
	small := run(4, 10) // 10 reconciliations
	large := run(20, 2) // 2 reconciliations
	if small.TotalStore.Mean <= large.TotalStore.Mean {
		t.Errorf("central store time should grow with reconciliation count: ri=4 %v vs ri=20 %v",
			small.TotalStore, large.TotalStore)
	}
	if small.TotalStore.Mean <= small.TotalLocal.Mean {
		t.Errorf("charged central store time should dominate local: %v vs %v",
			small.TotalStore, small.TotalLocal)
	}
}

// TestChargedDisabledByDefault: without the cost model the virtual charge
// is zero.
func TestChargedDisabledByDefault(t *testing.T) {
	res, err := Run(Config{Peers: 3, TxnSize: 1, ReconInterval: 2, Rounds: 2, Trials: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalStore.Mean > 0.05 {
		t.Errorf("raw central store time unexpectedly high: %v", res.TotalStore)
	}
}

// TestChargedAccounting: the decorator charges per call and per shipped
// transaction.
func TestChargedAccounting(t *testing.T) {
	cs := newChargedStore(nil, 10*time.Millisecond, time.Millisecond)
	cs.charge(2, 5)
	if got := cs.virtual(); got != 25*time.Millisecond {
		t.Errorf("virtual = %v, want 25ms", got)
	}
}
