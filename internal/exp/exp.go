// Package exp is the experiment harness for the paper's evaluation (§6):
// it assembles confederations of peers over either update store, drives the
// SWISS-PROT-style workload through publish/reconcile rounds, and measures
// the two §6 metrics — state ratio and reconciliation time split into store
// and local components — across repeated trials with 95% confidence
// intervals. Each figure of the paper has a sweep function in figures.go.
package exp

import (
	"context"
	"fmt"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
	"orchestra/internal/simnet"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/dhtstore"
	"orchestra/internal/workload"
)

// StoreKind selects the update store implementation.
type StoreKind int

// The two §5.2 implementations.
const (
	Central StoreKind = iota
	DHT
)

// String names the store kind.
func (k StoreKind) String() string {
	if k == DHT {
		return "distributed"
	}
	return "central"
}

// Config parameterizes one experiment cell.
type Config struct {
	Peers         int
	TxnSize       int
	ReconInterval int // transactions published between reconciliations
	Rounds        int // publish+reconcile rounds per peer
	Store         StoreKind
	Trials        int
	Seed          int64
	KeySpace      int
	Latency       time.Duration // per-message latency of the DHT fabric
	// CentralCallCost/CentralPerTxnCost model the paper's client↔RDBMS
	// round-trip and row-shipping costs for the central store on a
	// virtual clock (see charged.go). Zero disables the model: the raw
	// embedded-engine cost is measured instead. The time figures
	// (10 and 12) enable it with the calibrated defaults.
	CentralCallCost   time.Duration
	CentralPerTxnCost time.Duration
	// DHTRequestCost models per-delivered-request processing at DHT nodes
	// (the paper's FreePastry/JVM request handling), charged on the
	// fabric's virtual clock in addition to wire latency. Zero disables
	// the model; the time figures enable it.
	DHTRequestCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.Peers <= 0 {
		c.Peers = 10
	}
	if c.TxnSize <= 0 {
		c.TxnSize = 1
	}
	if c.ReconInterval <= 0 {
		c.ReconInterval = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
	if c.Trials <= 0 {
		c.Trials = 5
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 400
	}
	if c.Latency <= 0 {
		c.Latency = simnet.DefaultLatency
	}
	return c
}

// Result aggregates an experiment cell's trials.
type Result struct {
	Config Config
	// StateRatio is the §6 sharing-quality metric over the Function
	// relation.
	StateRatio metrics.Summary
	// TotalStore/TotalLocal are per-participant totals over the whole run,
	// in seconds (Figure 10's breakdown).
	TotalStore metrics.Summary
	TotalLocal metrics.Summary
	// PerReconStore/PerReconLocal are per-reconciliation averages
	// (Figure 12's breakdown).
	PerReconStore metrics.Summary
	PerReconLocal metrics.Summary
	// Messages is the DHT fabric traffic per trial (0 for central).
	Messages metrics.Summary
	// Deferred is the average number of transactions left deferred per
	// peer at the end of a trial.
	Deferred metrics.Summary
}

// Run executes all trials of a cell.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg}
	var ratios, totStore, totLocal, perStore, perLocal, msgs, deferred []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		tr, err := runTrial(cfg, trial)
		if err != nil {
			return nil, fmt.Errorf("exp: trial %d: %w", trial, err)
		}
		ratios = append(ratios, tr.stateRatio)
		totStore = append(totStore, tr.storePerPeer.Seconds())
		totLocal = append(totLocal, tr.localPerPeer.Seconds())
		perStore = append(perStore, tr.storePerPeer.Seconds()/float64(cfg.Rounds))
		perLocal = append(perLocal, tr.localPerPeer.Seconds()/float64(cfg.Rounds))
		msgs = append(msgs, float64(tr.messages))
		deferred = append(deferred, tr.deferredPerPeer)
	}
	res.StateRatio = metrics.Summarize(ratios)
	res.TotalStore = metrics.Summarize(totStore)
	res.TotalLocal = metrics.Summarize(totLocal)
	res.PerReconStore = metrics.Summarize(perStore)
	res.PerReconLocal = metrics.Summarize(perLocal)
	res.Messages = metrics.Summarize(msgs)
	res.Deferred = metrics.Summarize(deferred)
	return res, nil
}

type trialResult struct {
	stateRatio      float64
	storePerPeer    time.Duration
	localPerPeer    time.Duration
	messages        int64
	deferredPerPeer float64
}

// runTrial runs one trial of the cell.
func runTrial(cfg Config, trial int) (*trialResult, error) {
	ctx := context.Background()
	schema := workload.Schema()

	var net *simnet.Network
	var charged *chargedStore
	var clientFor func(core.PeerID) (store.Store, error)
	switch cfg.Store {
	case Central:
		cs := central.MustOpenMemory(schema)
		defer cs.Close()
		if cfg.CentralCallCost > 0 || cfg.CentralPerTxnCost > 0 {
			charged = newChargedStore(cs, cfg.CentralCallCost, cfg.CentralPerTxnCost)
			clientFor = func(core.PeerID) (store.Store, error) { return charged, nil }
			break
		}
		clientFor = func(core.PeerID) (store.Store, error) { return cs, nil }
	case DHT:
		net = simnet.NewVirtual(cfg.Latency)
		if cfg.DHTRequestCost > 0 {
			net.SetProcessingCost(cfg.DHTRequestCost)
		}
		cluster := dhtstore.NewCluster(net)
		clientFor = func(p core.PeerID) (store.Store, error) {
			return cluster.AddNode("node-" + string(p))
		}
	default:
		return nil, fmt.Errorf("unknown store kind %d", cfg.Store)
	}

	peers := make([]*store.Peer, cfg.Peers)
	gens := make([]*workload.Generator, cfg.Peers)
	// Per-peer virtual network latency attributed to store time.
	netTime := make([]time.Duration, cfg.Peers)
	for i := range peers {
		id := core.PeerID(fmt.Sprintf("p%02d", i))
		cl, err := clientFor(id)
		if err != nil {
			return nil, err
		}
		peers[i], err = store.NewPeer(ctx, id, schema, core.TrustAll(1), cl)
		if err != nil {
			return nil, err
		}
		gens[i] = workload.New(workload.Config{
			Seed:     cfg.Seed*1_000_003 + int64(trial)*1_009 + int64(i),
			TxnSize:  cfg.TxnSize,
			KeySpace: cfg.KeySpace,
		})
	}

	virtual := func() time.Duration {
		var v time.Duration
		if net != nil {
			v += net.VirtualLatency()
		}
		if charged != nil {
			v += charged.virtual()
		}
		return v
	}

	// Main rounds: each peer makes ReconInterval transactions, then
	// publishes and reconciles.
	for round := 0; round < cfg.Rounds; round++ {
		for i, p := range peers {
			for t := 0; t < cfg.ReconInterval; t++ {
				ups := gens[i].NextUpdates(p.Instance(), p.ID())
				if len(ups) == 0 {
					continue
				}
				if _, err := p.Edit(ups...); err != nil {
					// Rare self-collision in the generated stream: skip.
					continue
				}
			}
			v0 := virtual()
			if _, err := p.PublishAndReconcile(ctx); err != nil {
				return nil, err
			}
			netTime[i] += virtual() - v0
		}
	}

	tr := &trialResult{}
	var storeSum, localSum time.Duration
	var defSum int
	for i, p := range peers {
		storeSum += p.StoreTime() + netTime[i]
		localSum += p.LocalTime()
		defSum += len(p.Engine().DeferredIDs())
	}
	tr.storePerPeer = storeSum / time.Duration(len(peers))
	tr.localPerPeer = localSum / time.Duration(len(peers))
	tr.deferredPerPeer = float64(defSum) / float64(len(peers))

	// An untimed catch-up pass so every peer has seen the full log before
	// the state ratio is computed.
	for _, p := range peers {
		if _, err := p.Reconcile(ctx); err != nil {
			return nil, err
		}
	}
	instances := make([]*core.Instance, len(peers))
	for i, p := range peers {
		instances[i] = p.Instance()
	}
	tr.stateRatio = metrics.StateRatio(instances, "Function")
	if net != nil {
		tr.messages = net.Stats().Messages()
	}
	return tr, nil
}
