package exp

import (
	"strings"
	"testing"
)

func TestRunCentral(t *testing.T) {
	res, err := Run(Config{Peers: 5, TxnSize: 2, ReconInterval: 4, Rounds: 3, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.StateRatio.Mean < 1 || res.StateRatio.Mean > 5 {
		t.Errorf("state ratio %v outside [1, peers]", res.StateRatio)
	}
	if res.TotalLocal.Mean <= 0 {
		t.Error("no local time measured")
	}
	if res.Messages.Mean != 0 {
		t.Error("central store should report no fabric messages")
	}
}

func TestRunDHT(t *testing.T) {
	res, err := Run(Config{Peers: 5, TxnSize: 2, ReconInterval: 4, Rounds: 3, Trials: 2, Seed: 1, Store: DHT})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages.Mean <= 0 {
		t.Error("DHT store should report fabric traffic")
	}
	// The paper's headline time result: with the distributed store, store
	// time (requests to follow antecedent chains and fetch transactions)
	// dominates local time.
	if res.TotalStore.Mean <= res.TotalLocal.Mean {
		t.Errorf("DHT store time (%v) should dominate local time (%v)",
			res.TotalStore, res.TotalLocal)
	}
}

// TestStoreKindsAgreeOnStateRatio: the state ratio is a pure function of
// the decisions, so both stores must produce identical sharing quality for
// the same seed.
func TestStoreKindsAgreeOnStateRatio(t *testing.T) {
	base := Config{Peers: 4, TxnSize: 1, ReconInterval: 3, Rounds: 3, Trials: 2, Seed: 77}
	c := base
	c.Store = Central
	d := base
	d.Store = DHT
	rc, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rc.StateRatio.Mean != rd.StateRatio.Mean {
		t.Errorf("state ratios diverge: central %v vs dht %v", rc.StateRatio, rd.StateRatio)
	}
}

// TestDHTStoreTimeExceedsCentral: the cost relationship behind Figures 10
// and 12 — per-transaction round trips make the distributed store far more
// expensive than the central one.
func TestDHTStoreTimeExceedsCentral(t *testing.T) {
	base := Config{Peers: 5, TxnSize: 1, ReconInterval: 4, Rounds: 3, Trials: 2, Seed: 3}
	c := base
	c.Store = Central
	d := base
	d.Store = DHT
	rc, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if rd.TotalStore.Mean <= rc.TotalStore.Mean {
		t.Errorf("distributed store time %v should exceed central %v",
			rd.TotalStore, rc.TotalStore)
	}
}

func TestConfigDefaultsAndStrings(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Peers != 10 || cfg.Trials != 5 || cfg.TxnSize != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
	if Central.String() != "central" || DHT.String() != "distributed" {
		t.Error("StoreKind names")
	}
	if _, err := Run(Config{Store: StoreKind(9), Trials: 1, Rounds: 1, Peers: 2}); err == nil {
		t.Error("unknown store kind accepted")
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	want := []string{"8", "9", "10", "11", "12"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestFigurePrint(t *testing.T) {
	fig, err := Figure9(Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fig.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "state ratio") {
		t.Errorf("rendered figure:\n%s", out)
	}
	if len(fig.Rows) != 7 {
		t.Errorf("rows = %d", len(fig.Rows))
	}
}
