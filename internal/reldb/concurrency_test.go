package reldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriter: Update is exclusive, View is shared;
// hammering both concurrently must never observe torn state (a row whose
// columns disagree).
func TestConcurrentReadersAndWriter(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	if err := db.Update(func(tx *Tx) error {
		return tx.CreateTable(TableDef{
			Name: "pairs",
			Cols: []ColDef{
				{Name: "id", Type: ColInt},
				{Name: "a", Type: ColInt},
				{Name: "b", Type: ColInt},
			},
			Key: []int{0},
		})
	}); err != nil {
		t.Fatal(err)
	}
	// Invariant: a == b in every committed row.
	if err := db.Update(func(tx *Tx) error {
		return tx.Insert("pairs", Row{Int(0), Int(0), Int(0)})
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 16)

	// Writer: bumps a and b together.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < 500; i++ {
			v := int64(i)
			if err := db.Update(func(tx *Tx) error {
				return tx.Upsert("pairs", Row{Int(0), Int(v), Int(v)})
			}); err != nil {
				errs <- err
				return
			}
		}
		close(stop)
	}()

	// Readers: check the invariant continuously.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.View(func(tx *Tx) error {
					row, ok, err := tx.Get("pairs", Int(0))
					if err != nil || !ok {
						return fmt.Errorf("get: %v %v", ok, err)
					}
					if row[1].I() != row[2].I() {
						return fmt.Errorf("torn read: a=%d b=%d", row[1].I(), row[2].I())
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentUpdatesSerialize: concurrent Update transactions on
// distinct keys all commit, and sequences stay dense.
func TestConcurrentUpdatesSerialize(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	db.Update(func(tx *Tx) error {
		return tx.CreateTable(TableDef{
			Name: "rows",
			Cols: []ColDef{{Name: "id", Type: ColInt}},
			Key:  []int{0},
		})
	})
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := int64(w*perWorker + i)
				if err := db.Update(func(tx *Tx) error {
					if _, err := tx.NextSeq("s"); err != nil {
						return err
					}
					return tx.Insert("rows", Row{Int(id)})
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	db.View(func(tx *Tx) error {
		n, _ := tx.Count("rows")
		if n != workers*perWorker {
			t.Errorf("rows = %d", n)
		}
		if got := tx.CurrentSeq("s"); got != workers*perWorker {
			t.Errorf("sequence = %d", got)
		}
		return nil
	})
}
