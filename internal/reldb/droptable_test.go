package reldb

import (
	"errors"
	"testing"
)

func dropTestDef(name string) TableDef {
	return TableDef{
		Name: name,
		Cols: []ColDef{
			{Name: "k", Type: ColString},
			{Name: "v", Type: ColInt},
		},
		Key: []int{0},
	}
}

func TestDropTable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Update(func(tx *Tx) error {
		for _, name := range []string{"keep", "doomed"} {
			if err := tx.CreateTable(dropTestDef(name)); err != nil {
				return err
			}
			if err := tx.Insert(name, Row{Str("a"), Int(1)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A rolled-back drop leaves the table (and its rows) untouched.
	sentinel := errors.New("abort")
	err = db.Update(func(tx *Tx) error {
		if err := tx.DropTable("doomed"); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("rollback err = %v", err)
	}
	if _, ok := db.TableDef("doomed"); !ok {
		t.Fatal("rolled-back drop removed the table")
	}
	err = db.View(func(tx *Tx) error {
		if _, ok, err := tx.Get("doomed", Str("a")); err != nil || !ok {
			t.Fatalf("row lost after rolled-back drop: ok=%v err=%v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// A committed drop removes the table; a later transaction can recreate
	// the name from scratch.
	if err := db.Update(func(tx *Tx) error { return tx.DropTable("doomed") }); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TableDef("doomed"); ok {
		t.Fatal("dropped table still declared")
	}
	err = db.Update(func(tx *Tx) error {
		if err := tx.CreateTable(dropTestDef("doomed")); err != nil {
			return err
		}
		return tx.Insert("doomed", Row{Str("b"), Int(2)})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Recovery replays create → put → drop → create → put in order.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	err = db2.View(func(tx *Tx) error {
		if _, ok, err := tx.Get("keep", Str("a")); err != nil || !ok {
			t.Fatalf("keep row lost across recovery: ok=%v err=%v", ok, err)
		}
		if r, ok, err := tx.Get("doomed", Str("b")); err != nil || !ok || r[1].I() != 2 {
			t.Fatalf("recreated table wrong after recovery: row=%v ok=%v err=%v", r, ok, err)
		}
		if _, ok, _ := tx.Get("doomed", Str("a")); ok {
			t.Fatal("pre-drop row survived the drop across recovery")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDropTableUnknown(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	err := db.Update(func(tx *Tx) error { return tx.DropTable("ghost") })
	if !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v, want ErrNoTable", err)
	}
}
