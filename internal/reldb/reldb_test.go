package reldb

import (
	"errors"
	"fmt"
	"testing"
)

func testDef() TableDef {
	return TableDef{
		Name: "epochs",
		Cols: []ColDef{
			{Name: "epoch", Type: ColInt},
			{Name: "peer", Type: ColString},
			{Name: "finished", Type: ColBool},
			{Name: "note", Type: ColString, Nullable: true},
		},
		Key: []int{0},
		Indexes: []IndexDef{
			{Name: "by_peer", Cols: []int{1}},
		},
	}
}

func openWithTable(t *testing.T) *DB {
	t.Helper()
	db := MustOpenMemory()
	t.Cleanup(func() { db.Close() })
	if err := db.Update(func(tx *Tx) error { return tx.CreateTable(testDef()) }); err != nil {
		t.Fatal(err)
	}
	return db
}

func row(epoch int64, peer string, finished bool) Row {
	return Row{Int(epoch), Str(peer), Bool(finished), Null()}
}

func TestCreateTableValidation(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	bad := []TableDef{
		{},
		{Name: "x"},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}}, Key: []int{5}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt, Nullable: true}}, Key: []int{0}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}, {Name: "a", Type: ColInt}}, Key: []int{0}},
		{Name: "x", Cols: []ColDef{{Name: ""}}, Key: []int{0}},
		{Name: "x", Cols: []ColDef{{Name: "a"}}, Key: []int{0}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}}, Key: []int{0},
			Indexes: []IndexDef{{Name: "", Cols: []int{0}}}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}}, Key: []int{0},
			Indexes: []IndexDef{{Name: "i", Cols: []int{9}}}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}}, Key: []int{0},
			Indexes: []IndexDef{{Name: "i"}}},
		{Name: "x", Cols: []ColDef{{Name: "a", Type: ColInt}}, Key: []int{0},
			Indexes: []IndexDef{{Name: "i", Cols: []int{0}}, {Name: "i", Cols: []int{0}}}},
	}
	for i, def := range bad {
		if err := db.Update(func(tx *Tx) error { return tx.CreateTable(def) }); err == nil {
			t.Errorf("bad def %d accepted", i)
		}
	}
	// Duplicate table.
	if err := db.Update(func(tx *Tx) error { return tx.CreateTable(testDef()) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error { return tx.CreateTable(testDef()) }); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestInsertGetDelete(t *testing.T) {
	db := openWithTable(t)
	err := db.Update(func(tx *Tx) error {
		if err := tx.Insert("epochs", row(1, "p1", false)); err != nil {
			return err
		}
		return tx.Insert("epochs", row(2, "p2", true))
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.View(func(tx *Tx) error {
		r, ok, err := tx.Get("epochs", Int(1))
		if err != nil || !ok || r[1].S() != "p1" {
			return fmt.Errorf("get(1) = %v %v %v", r, ok, err)
		}
		if _, ok, _ := tx.Get("epochs", Int(9)); ok {
			return fmt.Errorf("get(9) should miss")
		}
		n, err := tx.Count("epochs")
		if err != nil || n != 2 {
			return fmt.Errorf("count = %d %v", n, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate insert.
	err = db.Update(func(tx *Tx) error { return tx.Insert("epochs", row(1, "px", false)) })
	if !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("duplicate insert: %v", err)
	}
	// Upsert replaces.
	if err := db.Update(func(tx *Tx) error { return tx.Upsert("epochs", row(1, "p1", true)) }); err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *Tx) error {
		r, _, _ := tx.Get("epochs", Int(1))
		if !r[2].B() {
			t.Error("upsert did not replace")
		}
		return nil
	})
	// Delete.
	err = db.Update(func(tx *Tx) error {
		ok, err := tx.Delete("epochs", Int(1))
		if err != nil || !ok {
			return fmt.Errorf("delete: %v %v", ok, err)
		}
		ok, err = tx.Delete("epochs", Int(1))
		if err != nil || ok {
			return fmt.Errorf("re-delete: %v %v", ok, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRowValidation(t *testing.T) {
	db := openWithTable(t)
	cases := []Row{
		{Int(1), Str("p")},                        // arity
		{Str("x"), Str("p"), Bool(false), Null()}, // type mismatch
		{Null(), Str("p"), Bool(false), Null()},   // NULL in NOT NULL
		{Int(1), Str("p"), Bool(false), Int(5)},   // wrong type in nullable col
	}
	for i, r := range cases {
		if err := db.Update(func(tx *Tx) error { return tx.Insert("epochs", r) }); err == nil {
			t.Errorf("bad row %d accepted", i)
		}
	}
	// Nullable column accepts NULL and its declared type.
	ok := []Row{
		{Int(1), Str("p"), Bool(false), Null()},
		{Int(2), Str("p"), Bool(false), Str("note")},
	}
	for i, r := range ok {
		if err := db.Update(func(tx *Tx) error { return tx.Insert("epochs", r) }); err != nil {
			t.Errorf("good row %d rejected: %v", i, err)
		}
	}
}

func TestRollbackOnError(t *testing.T) {
	db := openWithTable(t)
	sentinel := errors.New("boom")
	err := db.Update(func(tx *Tx) error {
		if err := tx.Insert("epochs", row(1, "p1", false)); err != nil {
			return err
		}
		if err := tx.Insert("epochs", row(2, "p2", false)); err != nil {
			return err
		}
		if _, err := tx.NextSeq("s"); err != nil {
			return err
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v", err)
	}
	db.View(func(tx *Tx) error {
		if n, _ := tx.Count("epochs"); n != 0 {
			t.Errorf("rows after rollback: %d", n)
		}
		if tx.CurrentSeq("s") != 0 {
			t.Errorf("sequence after rollback: %d", tx.CurrentSeq("s"))
		}
		return nil
	})
	// Rollback of an upsert restores the old row; of a delete restores it.
	if err := db.Update(func(tx *Tx) error { return tx.Insert("epochs", row(1, "orig", false)) }); err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error {
		tx.Upsert("epochs", row(1, "changed", true))
		tx.Delete("epochs", Int(1))
		return sentinel
	})
	db.View(func(tx *Tx) error {
		r, ok, _ := tx.Get("epochs", Int(1))
		if !ok || r[1].S() != "orig" {
			t.Errorf("row after rollback: %v %v", r, ok)
		}
		return nil
	})
	// CreateTable rolls back too.
	db.Update(func(tx *Tx) error {
		tx.CreateTable(TableDef{Name: "temp", Cols: []ColDef{{Name: "a", Type: ColInt}}, Key: []int{0}})
		return sentinel
	})
	db.View(func(tx *Tx) error {
		if tx.HasTable("temp") {
			t.Error("table survived rollback")
		}
		return nil
	})
}

func TestReadOnlyTransactionRejectsWrites(t *testing.T) {
	db := openWithTable(t)
	db.View(func(tx *Tx) error {
		if err := tx.Insert("epochs", row(1, "p", false)); err == nil {
			t.Error("insert in View accepted")
		}
		if _, err := tx.Delete("epochs", Int(1)); err == nil {
			t.Error("delete in View accepted")
		}
		if err := tx.CreateTable(testDef()); err == nil {
			t.Error("create in View accepted")
		}
		if _, err := tx.NextSeq("s"); err == nil {
			t.Error("sequence in View accepted")
		}
		return nil
	})
}

func TestScans(t *testing.T) {
	db := openWithTable(t)
	db.Update(func(tx *Tx) error {
		for i := int64(1); i <= 10; i++ {
			peer := "pA"
			if i%2 == 0 {
				peer = "pB"
			}
			if err := tx.Insert("epochs", row(i, peer, false)); err != nil {
				return err
			}
		}
		return nil
	})
	var all []int64
	db.View(func(tx *Tx) error {
		return tx.Scan("epochs", func(r Row) bool {
			all = append(all, r[0].I())
			return true
		})
	})
	if len(all) != 10 || all[0] != 1 || all[9] != 10 {
		t.Fatalf("scan = %v", all)
	}
	// Early stop.
	n := 0
	db.View(func(tx *Tx) error {
		return tx.Scan("epochs", func(Row) bool { n++; return n < 3 })
	})
	if n != 3 {
		t.Errorf("early stop scan visited %d", n)
	}
	// Index scan.
	var byB []int64
	db.View(func(tx *Tx) error {
		return tx.ScanIndex("epochs", "by_peer", []V{Str("pB")}, func(r Row) bool {
			byB = append(byB, r[0].I())
			return true
		})
	})
	if len(byB) != 5 {
		t.Fatalf("index scan = %v", byB)
	}
	for _, e := range byB {
		if e%2 != 0 {
			t.Errorf("index scan returned %d", e)
		}
	}
	// Unknown index.
	err := db.View(func(tx *Tx) error {
		return tx.ScanIndex("epochs", "nope", nil, func(Row) bool { return true })
	})
	if err == nil {
		t.Error("unknown index accepted")
	}
	// ScanPrefix over a composite key table.
	db.Update(func(tx *Tx) error {
		if err := tx.CreateTable(TableDef{
			Name: "pairs",
			Cols: []ColDef{{Name: "a", Type: ColString}, {Name: "b", Type: ColInt}},
			Key:  []int{0, 1},
		}); err != nil {
			return err
		}
		for i := int64(0); i < 3; i++ {
			tx.Insert("pairs", Row{Str("x"), Int(i)})
			tx.Insert("pairs", Row{Str("y"), Int(i)})
		}
		return nil
	})
	var xs []int64
	db.View(func(tx *Tx) error {
		return tx.ScanPrefix("pairs", []V{Str("x")}, func(r Row) bool {
			xs = append(xs, r[1].I())
			return true
		})
	})
	if len(xs) != 3 {
		t.Fatalf("prefix scan = %v", xs)
	}
}

func TestUniqueIndex(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	def := TableDef{
		Name: "users",
		Cols: []ColDef{{Name: "id", Type: ColInt}, {Name: "email", Type: ColString}},
		Key:  []int{0},
		Indexes: []IndexDef{
			{Name: "by_email", Cols: []int{1}, Unique: true},
		},
	}
	db.Update(func(tx *Tx) error { return tx.CreateTable(def) })
	if err := db.Update(func(tx *Tx) error { return tx.Insert("users", Row{Int(1), Str("a@x")}) }); err != nil {
		t.Fatal(err)
	}
	err := db.Update(func(tx *Tx) error { return tx.Insert("users", Row{Int(2), Str("a@x")}) })
	if !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("unique violation: %v", err)
	}
	// Same row updated in place keeps its own email.
	if err := db.Update(func(tx *Tx) error { return tx.Upsert("users", Row{Int(1), Str("a@x")}) }); err != nil {
		t.Errorf("self-upsert rejected: %v", err)
	}
	// After deleting, the email is free again.
	db.Update(func(tx *Tx) error { _, err := tx.Delete("users", Int(1)); return err })
	if err := db.Update(func(tx *Tx) error { return tx.Insert("users", Row{Int(3), Str("a@x")}) }); err != nil {
		t.Errorf("freed unique value rejected: %v", err)
	}
}

func TestSequences(t *testing.T) {
	db := openWithTable(t)
	var got []int64
	db.Update(func(tx *Tx) error {
		for i := 0; i < 3; i++ {
			n, err := tx.NextSeq("epoch")
			if err != nil {
				return err
			}
			got = append(got, n)
		}
		return nil
	})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("sequence = %v", got)
	}
	db.View(func(tx *Tx) error {
		if tx.CurrentSeq("epoch") != 3 {
			t.Errorf("CurrentSeq = %d", tx.CurrentSeq("epoch"))
		}
		if tx.CurrentSeq("other") != 0 {
			t.Errorf("unknown sequence = %d", tx.CurrentSeq("other"))
		}
		return nil
	})
}

func TestUnknownTableErrors(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	checks := []func(tx *Tx) error{
		func(tx *Tx) error { return tx.Insert("nope", Row{Int(1)}) },
		func(tx *Tx) error { _, err := tx.Delete("nope", Int(1)); return err },
		func(tx *Tx) error { _, _, err := tx.Get("nope", Int(1)); return err },
		func(tx *Tx) error { _, err := tx.Count("nope"); return err },
		func(tx *Tx) error { return tx.Scan("nope", func(Row) bool { return true }) },
		func(tx *Tx) error { return tx.ScanPrefix("nope", nil, func(Row) bool { return true }) },
		func(tx *Tx) error { return tx.ScanIndex("nope", "i", nil, func(Row) bool { return true }) },
	}
	for i, fn := range checks {
		if err := db.Update(fn); !errors.Is(err, ErrNoTable) {
			t.Errorf("check %d: err = %v", i, err)
		}
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.CreateTable(testDef()) })
	db.Update(func(tx *Tx) error {
		for i := int64(1); i <= 5; i++ {
			if err := tx.Insert("epochs", row(i, "p", i%2 == 0)); err != nil {
				return err
			}
		}
		_, err := tx.NextSeq("epoch")
		return err
	})
	db.Update(func(tx *Tx) error {
		_, err := tx.Delete("epochs", Int(3))
		return err
	})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.View(func(tx *Tx) error {
		n, _ := tx.Count("epochs")
		if n != 4 {
			t.Errorf("rows after recovery: %d", n)
		}
		if _, ok, _ := tx.Get("epochs", Int(3)); ok {
			t.Error("deleted row resurrected")
		}
		if tx.CurrentSeq("epoch") != 1 {
			t.Errorf("sequence after recovery: %d", tx.CurrentSeq("epoch"))
		}
		return nil
	})
	// Secondary index rebuilt on recovery.
	var hits int
	db2.View(func(tx *Tx) error {
		return tx.ScanIndex("epochs", "by_peer", []V{Str("p")}, func(Row) bool { hits++; return true })
	})
	if hits != 4 {
		t.Errorf("index hits after recovery: %d", hits)
	}
}

func TestCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.CreateTable(testDef()) })
	db.Update(func(tx *Tx) error { return tx.Insert("epochs", row(1, "pre", false)) })
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes land in the fresh WAL.
	db.Update(func(tx *Tx) error { return tx.Insert("epochs", row(2, "post", false)) })
	db.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.View(func(tx *Tx) error {
		n, _ := tx.Count("epochs")
		if n != 2 {
			t.Errorf("rows after snapshot+wal recovery: %d", n)
		}
		r, ok, _ := tx.Get("epochs", Int(1))
		if !ok || r[1].S() != "pre" {
			t.Errorf("snapshot row: %v %v", r, ok)
		}
		r, ok, _ = tx.Get("epochs", Int(2))
		if !ok || r[1].S() != "post" {
			t.Errorf("wal row: %v %v", r, ok)
		}
		return nil
	})
}

func TestInMemoryCheckpointNoop(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	if err := db.Checkpoint(); err != nil {
		t.Errorf("in-memory checkpoint: %v", err)
	}
}

func TestClosedDB(t *testing.T) {
	db := MustOpenMemory()
	db.Close()
	if err := db.Update(func(*Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after close: %v", err)
	}
	if err := db.View(func(*Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("View after close: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after close: %v", err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestValueAccessorsAndStrings(t *testing.T) {
	vals := []V{Null(), Str("s"), Int(-7), Float(1.5), Bool(true), Bytes([]byte{1, 2})}
	for _, v := range vals {
		if v.String() == "" {
			t.Errorf("%v: empty String", v.Type())
		}
	}
	if !Null().IsNull() || Str("x").IsNull() {
		t.Error("IsNull broken")
	}
	if Str("s").S() != "s" || Int(-7).I() != -7 || Float(1.5).F() != 1.5 || !Bool(true).B() {
		t.Error("accessors broken")
	}
	if string(Bytes([]byte{1, 2}).Raw()) != "\x01\x02" {
		t.Error("Raw broken")
	}
	for ct, want := range map[ColType]string{
		ColString: "string", ColInt: "int", ColFloat: "float",
		ColBool: "bool", ColBytes: "bytes", ColType(9): "coltype(9)",
	} {
		if ct.String() != want {
			t.Errorf("%d.String() = %q", ct, ct.String())
		}
	}
	r := Row{Int(1), Str("a")}
	if !r.Equal(r.Clone()) || r.Equal(Row{Int(1)}) || r.Equal(Row{Int(1), Str("b")}) {
		t.Error("Row.Equal broken")
	}
}

func TestTableDefHelpers(t *testing.T) {
	def := testDef()
	if def.ColIndex("peer") != 1 || def.ColIndex("nope") != -1 {
		t.Error("ColIndex broken")
	}
	db := openWithTable(t)
	if got, ok := db.TableDef("epochs"); !ok || got.Name != "epochs" {
		t.Error("TableDef broken")
	}
	if _, ok := db.TableDef("nope"); ok {
		t.Error("TableDef for unknown table")
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "epochs" {
		t.Errorf("TableNames = %v", names)
	}
}
