package reldb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestAdaptiveGroupCommitConverges pins the adaptive window controller's
// two fixed points: an idle database — every flush runs alone — converges
// to the minimum window and stops paying gathering latency, while a
// saturated one — concurrent committers on disjoint tables keep the flush
// queue deep — converges to the cap, amortizing each fsync across the
// deepest batch the load can form.
func TestAdaptiveGroupCommitConverges(t *testing.T) {
	const (
		workers = 8
		minW    = 25 * time.Microsecond
		maxW    = 800 * time.Microsecond
	)
	dir := t.TempDir()
	db, err := Open(Options{
		Dir:                  dir,
		GroupCommit:          true,
		AdaptiveGroupCommit:  true,
		GroupCommitMinWindow: minW,
		GroupCommitMaxWindow: maxW,
	})
	if err != nil {
		t.Fatal(err)
	}
	createN(t, db, workers)

	// Freshly opened, the controller sits at the minimum.
	if got := db.GroupCommitWindow(); got != minW {
		t.Fatalf("initial window = %v, want min %v", got, minW)
	}

	// Saturate: disjoint-table committers (same-table commits serialize on
	// the table lock and flush alone, so only disjoint writers can share a
	// flush). Each round is a burst of workers committing concurrently;
	// repeat until the controller pins the cap.
	rows := 0
	saturate := func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				table := fmt.Sprintf("t%d", w)
				for i := 0; i < 10; i++ {
					id := int64(rows + i)
					if err := db.Update(func(tx *Tx) error {
						return tx.Insert(table, Row{Int(id), Int(id), Int(id)})
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		rows += 10
	}
	for i := 0; i < 40 && db.GroupCommitWindow() != maxW; i++ {
		saturate()
	}
	if got := db.GroupCommitWindow(); got != maxW {
		t.Fatalf("saturated window = %v, want cap %v", got, maxW)
	}

	// Go idle: strictly serial commits flush alone, and the window decays
	// back to the minimum.
	idleRow := int64(1 << 20)
	for i := 0; i < 64 && db.GroupCommitWindow() != minW; i++ {
		if err := db.Update(func(tx *Tx) error {
			return tx.Insert("t0", Row{Int(idleRow), Int(idleRow), Int(idleRow)})
		}); err != nil {
			t.Fatal(err)
		}
		idleRow++
	}
	if got := db.GroupCommitWindow(); got != minW {
		t.Fatalf("idle window = %v, want min %v", got, minW)
	}

	// Adaptation never touches durability: everything committed under both
	// regimes survives reopen.
	committed := 0
	if err := db.View(func(tx *Tx) error {
		for w := 0; w < workers; w++ {
			n, err := tx.Count(fmt.Sprintf("t%d", w))
			if err != nil {
				return err
			}
			committed += n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	recovered := 0
	if err := db2.View(func(tx *Tx) error {
		for w := 0; w < workers; w++ {
			n, err := tx.Count(fmt.Sprintf("t%d", w))
			if err != nil {
				return err
			}
			recovered += n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if recovered != committed {
		t.Errorf("recovered %d rows, committed %d", recovered, committed)
	}
}

// TestAdaptiveWindowClamping pins the controller's edge behaviour directly.
func TestAdaptiveWindowClamping(t *testing.T) {
	// Degenerate bounds are repaired, not crashed on.
	a := newAdaptiveWindow(-time.Second, 0)
	if a.min != 0 || a.max != time.Millisecond {
		t.Errorf("repaired bounds = [%v, %v], want [0, 1ms]", a.min, a.max)
	}
	// Growth escapes a zero minimum and clamps at the cap.
	for i := 0; i < 64; i++ {
		a.observe(4)
	}
	if got := a.current(); got != a.max {
		t.Errorf("grown window = %v, want %v", got, a.max)
	}
	// Decay clamps at the minimum.
	for i := 0; i < 64; i++ {
		a.observe(1)
	}
	if got := a.current(); got != a.min {
		t.Errorf("decayed window = %v, want %v", got, a.min)
	}
	// min > max collapses to max.
	b := newAdaptiveWindow(2*time.Millisecond, time.Millisecond)
	if b.min != time.Millisecond || b.max != time.Millisecond {
		t.Errorf("collapsed bounds = [%v, %v], want [1ms, 1ms]", b.min, b.max)
	}
}
