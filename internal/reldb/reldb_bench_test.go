package reldb

import (
	"fmt"
	"testing"
)

func benchTable() TableDef {
	return TableDef{
		Name: "t",
		Cols: []ColDef{
			{Name: "id", Type: ColInt},
			{Name: "name", Type: ColString},
			{Name: "flag", Type: ColBool},
		},
		Key: []int{0},
		Indexes: []IndexDef{
			{Name: "by_name", Cols: []int{1}},
		},
	}
}

func BenchmarkInsertMemory(b *testing.B) {
	db := MustOpenMemory()
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.CreateTable(benchTable()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Update(func(tx *Tx) error {
			return tx.Insert("t", Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i)), Bool(i%2 == 0)})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertDurable(b *testing.B) {
	db, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.CreateTable(benchTable()) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Update(func(tx *Tx) error {
			return tx.Insert("t", Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i)), Bool(i%2 == 0)})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetByPK(b *testing.B) {
	db := MustOpenMemory()
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.CreateTable(benchTable()) })
	const n = 10_000
	db.Update(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			if err := tx.Insert("t", Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i)), Bool(false)}); err != nil {
				return err
			}
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.View(func(tx *Tx) error {
			_, _, err := tx.Get("t", Int(int64(i%n)))
			return err
		})
	}
}

func BenchmarkIndexScan(b *testing.B) {
	db := MustOpenMemory()
	defer db.Close()
	db.Update(func(tx *Tx) error { return tx.CreateTable(benchTable()) })
	const n = 10_000
	db.Update(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			if err := tx.Insert("t", Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i%100)), Bool(false)}); err != nil {
				return err
			}
		}
		return nil
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		db.View(func(tx *Tx) error {
			return tx.ScanIndex("t", "by_name", []V{Str("n42")}, func(Row) bool {
				count++
				return true
			})
		})
		if count != n/100 {
			b.Fatalf("count %d", count)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	db.Update(func(tx *Tx) error { return tx.CreateTable(benchTable()) })
	db.Update(func(tx *Tx) error {
		for i := 0; i < 5000; i++ {
			if err := tx.Insert("t", Row{Int(int64(i)), Str("x"), Bool(false)}); err != nil {
				return err
			}
		}
		return nil
	})
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		db.Close()
	}
}
