package reldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

func openGC(t *testing.T, dir string, group bool, window time.Duration) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir, GroupCommit: group, GroupCommitWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func createN(t *testing.T, db *DB, tables int) {
	t.Helper()
	err := db.Update(func(tx *Tx) error {
		for i := 0; i < tables; i++ {
			if err := tx.CreateTable(TableDef{
				Name: fmt.Sprintf("t%d", i),
				Cols: []ColDef{{Name: "id", Type: ColInt}, {Name: "a", Type: ColInt}, {Name: "b", Type: ColInt}},
				Key:  []int{0},
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitDurability: many concurrent committers across tables with
// group commit on; every commit must be durable across reopen, and every
// durable commit must have ridden a group flush.
func TestGroupCommitDurability(t *testing.T) {
	const (
		tables    = 3
		workers   = 6
		perWorker = 40
	)
	dir := t.TempDir()
	db := openGC(t, dir, true, 0)
	createN(t, db, tables)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			table := fmt.Sprintf("t%d", w%tables)
			for i := 0; i < perWorker; i++ {
				id := int64(w*perWorker + i)
				if err := db.Update(func(tx *Tx) error {
					if err := tx.Insert(table, Row{Int(id), Int(id), Int(id)}); err != nil {
						return err
					}
					_, err := tx.NextSeq("s")
					return err
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	snap := db.Metrics().Snapshot()
	if snap.Commits != int64(workers*perWorker)+1 { // +1 for the table DDL
		t.Errorf("commits = %d, want %d", snap.Commits, workers*perWorker+1)
	}
	if snap.GroupedCommits != snap.Commits {
		t.Errorf("grouped commits = %d, commits = %d: durable commits bypassed the group path", snap.GroupedCommits, snap.Commits)
	}
	if snap.GroupFlushes == 0 || snap.GroupFlushes > snap.GroupedCommits {
		t.Errorf("flushes = %d for %d grouped commits", snap.GroupFlushes, snap.GroupedCommits)
	}
	if snap.WALAppends != 0 {
		t.Errorf("serial WAL appends = %d with group commit on", snap.WALAppends)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openGC(t, dir, true, 0)
	defer db2.Close()
	db2.View(func(tx *Tx) error {
		total := 0
		for i := 0; i < tables; i++ {
			n, err := tx.Count(fmt.Sprintf("t%d", i))
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
		if total != workers*perWorker {
			t.Errorf("recovered %d rows, want %d", total, workers*perWorker)
		}
		if got := tx.CurrentSeq("s"); got != int64(workers*perWorker) {
			t.Errorf("recovered sequence = %d, want %d", got, workers*perWorker)
		}
		return nil
	})
}

// lastSegment returns the path of the highest-numbered WAL segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		t.Fatal("no wal segments")
	}
	sort.Strings(names)
	return filepath.Join(dir, "wal", names[len(names)-1])
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCrashMidFlush simulates a crash in the middle of a group
// flush: fully flushed groups are on disk, the dying flush left a torn (or
// corrupt) record at the tail. Reopen must replay every committed group
// and drop the uncommitted tail, and the log must keep working afterwards.
func TestGroupCommitCrashMidFlush(t *testing.T) {
	torn := func(t *testing.T, seg string) {
		// A record whose frame claims 64 payload bytes but only 10 made it
		// to disk before the "crash".
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], 64)
		binary.LittleEndian.PutUint32(hdr[4:8], 0xdeadbeef)
		appendBytes(t, seg, append(hdr[:], make([]byte, 10)...))
	}
	corrupt := func(t *testing.T, seg string) {
		// A complete frame whose payload was only partially written: the
		// length is right but the checksum no longer matches.
		payload := []byte("half-written group commit payload")
		good := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], good)
		payload[0] ^= 0xff // flip a bit after the CRC was computed
		appendBytes(t, seg, append(hdr[:], payload...))
	}
	for name, damage := range map[string]func(*testing.T, string){"torn": torn, "corrupt": corrupt} {
		t.Run(name, func(t *testing.T) {
			const committed = 5
			dir := t.TempDir()
			db := openGC(t, dir, true, 0)
			createN(t, db, 1)
			for i := 0; i < committed; i++ {
				if err := db.Update(func(tx *Tx) error {
					return tx.Insert("t0", Row{Int(int64(i)), Int(0), Int(0)})
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			damage(t, lastSegment(t, dir))

			db2 := openGC(t, dir, true, 0)
			db2.View(func(tx *Tx) error {
				n, err := tx.Count("t0")
				if err != nil {
					t.Fatal(err)
				}
				if n != committed {
					t.Errorf("recovered %d rows, want %d (committed groups must replay, tail must drop)", n, committed)
				}
				return nil
			})
			// The truncated log accepts and preserves new commits.
			if err := db2.Update(func(tx *Tx) error {
				return tx.Insert("t0", Row{Int(100), Int(0), Int(0)})
			}); err != nil {
				t.Fatal(err)
			}
			if err := db2.Close(); err != nil {
				t.Fatal(err)
			}
			db3 := openGC(t, dir, true, 0)
			defer db3.Close()
			db3.View(func(tx *Tx) error {
				n, _ := tx.Count("t0")
				if n != committed+1 {
					t.Errorf("rows after post-crash commit = %d, want %d", n, committed+1)
				}
				if _, ok, _ := tx.Get("t0", Int(100)); !ok {
					t.Error("post-crash commit lost")
				}
				return nil
			})
		})
	}
}

// TestConcurrentCommittersAcrossTables is the -race stress for the
// per-table locking engine: writers hammer disjoint tables (plus a shared
// one) while readers continuously check row invariants, across the
// group/serial × durable/in-memory matrix.
func TestConcurrentCommittersAcrossTables(t *testing.T) {
	type cell struct {
		name    string
		durable bool
		group   bool
		window  time.Duration
	}
	cells := []cell{
		{"memory", false, false, 0},
		{"durable-serial", true, false, 0},
		{"durable-group", true, true, 0},
		{"durable-group-window", true, true, 200 * time.Microsecond},
	}
	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			const (
				tables    = 4
				writers   = 8
				perWriter = 50
				readers   = 3
			)
			dir := ""
			if c.durable {
				dir = t.TempDir()
			}
			db, err := Open(Options{Dir: dir, GroupCommit: c.group, GroupCommitWindow: c.window})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			createN(t, db, tables)

			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Writers: each owns rows keyed by its id; invariant a == b in
			// every committed row, updated together in one transaction.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					table := fmt.Sprintf("t%d", w%tables)
					for i := 0; i < perWriter; i++ {
						v := int64(i)
						if err := db.Update(func(tx *Tx) error {
							return tx.Upsert(table, Row{Int(int64(w)), Int(v), Int(v)})
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			// Readers: Views across all tables must never see a torn row.
			var rg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						err := db.View(func(tx *Tx) error {
							for i := 0; i < tables; i++ {
								if err := tx.Scan(fmt.Sprintf("t%d", i), func(r Row) bool {
									if r[1].I() != r[2].I() {
										t.Errorf("torn row: %v", r)
									}
									return true
								}); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(stop)
			rg.Wait()

			db.View(func(tx *Tx) error {
				total := 0
				for i := 0; i < tables; i++ {
					n, _ := tx.Count(fmt.Sprintf("t%d", i))
					total += n
				}
				if total != writers {
					t.Errorf("final rows = %d, want %d", total, writers)
				}
				return nil
			})
		})
	}
}

// TestDisjointUpdatesRunConcurrently: an Update stalled inside its
// callback must not block an Update on a different table (the point of
// per-table locking), while a same-table Update must wait.
func TestDisjointUpdatesRunConcurrently(t *testing.T) {
	db := MustOpenMemory()
	defer db.Close()
	createN(t, db, 2)

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- db.Update(func(tx *Tx) error {
			if err := tx.Insert("t0", Row{Int(1), Int(0), Int(0)}); err != nil {
				return err
			}
			close(entered)
			<-release
			return nil
		})
	}()
	<-entered
	// A writer on the other table proceeds while t0's lock is held.
	finished := make(chan error, 1)
	go func() {
		finished <- db.Update(func(tx *Tx) error {
			return tx.Insert("t1", Row{Int(1), Int(0), Int(0)})
		})
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disjoint-table Update blocked behind an open transaction")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
