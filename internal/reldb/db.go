package reldb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"orchestra/internal/btree"
	"orchestra/internal/wal"
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("reldb: database closed")

// ErrDuplicateKey is returned when an insert or unique index would create a
// duplicate.
var ErrDuplicateKey = errors.New("reldb: duplicate key")

// ErrNoTable is returned for operations on undeclared tables.
var ErrNoTable = errors.New("reldb: no such table")

const snapshotFile = "snapshot.db"

// DB is the database handle. All access goes through View (shared) and
// Update (exclusive) transactions; an Update is atomic (rolled back on
// error) and durable (WAL-appended at commit) when the DB was opened with a
// directory.
type DB struct {
	mu     sync.RWMutex
	dir    string
	log    *wal.Log
	sync   bool
	tables map[string]*table
	seqs   map[string]int64
	closed bool
}

type table struct {
	def     TableDef
	rows    *btree.Tree[string, Row]
	indexes []*index
}

type index struct {
	def IndexDef
	// entries are keyed by encoded(index cols) + encoded(pk); values are
	// the pk encoding, so prefix scans enumerate matching rows.
	tree *btree.Tree[string, string]
}

func newTable(def TableDef) *table {
	t := &table{def: def, rows: btree.New[string, Row](func(a, b string) bool { return a < b })}
	for _, ix := range def.Indexes {
		t.indexes = append(t.indexes, &index{
			def:  ix,
			tree: btree.New[string, string](func(a, b string) bool { return a < b }),
		})
	}
	return t
}

// Options configure a DB.
type Options struct {
	// Dir is the durability directory; empty means a volatile in-memory
	// database.
	Dir string
	// SyncOnCommit fsyncs the WAL at every commit.
	SyncOnCommit bool
}

// Open opens (or creates) a database, recovering from the snapshot and WAL
// if present.
func Open(opts Options) (*DB, error) {
	db := &DB{
		dir:    opts.Dir,
		sync:   opts.SyncOnCommit,
		tables: make(map[string]*table),
		seqs:   make(map[string]int64),
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: %w", err)
	}
	if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{})
	if err != nil {
		return nil, err
	}
	db.log = l
	if err := l.Replay(func(payload []byte) error {
		var batch []walOp
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&batch); err != nil {
			return fmt.Errorf("reldb: decode wal record: %w", err)
		}
		return db.applyOps(batch)
	}); err != nil {
		l.Close()
		return nil, err
	}
	return db, nil
}

// MustOpenMemory returns a volatile in-memory database, panicking on error;
// for tests and examples.
func MustOpenMemory() *DB {
	db, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return db
}

// Close flushes and closes the database.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// View runs fn with shared read access.
func (db *DB) View(fn func(tx *Tx) error) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	return fn(&Tx{db: db})
}

// Update runs fn with exclusive access; all writes are applied atomically
// (rolled back if fn errors) and logged to the WAL at commit.
func (db *DB) Update(fn func(tx *Tx) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	tx := &Tx{db: db, writable: true}
	if err := fn(tx); err != nil {
		tx.rollback()
		return err
	}
	return tx.commit()
}

// TableNames returns the declared tables, unsorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// TableDef returns a table's definition.
func (db *DB) TableDef(name string) (TableDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return TableDef{}, false
	}
	return t.def, true
}

// walOp is one logged mutation.
type walOp struct {
	Kind  opKind
	Table string
	PK    string
	Row   Row
	Def   TableDef
	Seq   string
	SeqV  int64
}

type opKind uint8

const (
	opPut opKind = iota + 1
	opDelete
	opCreate
	opSeq
)

// applyOps replays logged operations without re-logging; used by recovery.
func (db *DB) applyOps(batch []walOp) error {
	for _, op := range batch {
		switch op.Kind {
		case opCreate:
			if _, dup := db.tables[op.Def.Name]; dup {
				return fmt.Errorf("reldb: recovery: duplicate table %s", op.Def.Name)
			}
			db.tables[op.Def.Name] = newTable(op.Def)
		case opPut:
			t, ok := db.tables[op.Table]
			if !ok {
				return fmt.Errorf("reldb: recovery: %w: %s", ErrNoTable, op.Table)
			}
			t.put(op.Row)
		case opDelete:
			t, ok := db.tables[op.Table]
			if !ok {
				return fmt.Errorf("reldb: recovery: %w: %s", ErrNoTable, op.Table)
			}
			t.deleteByPK(op.PK)
		case opSeq:
			db.seqs[op.Seq] = op.SeqV
		default:
			return fmt.Errorf("reldb: recovery: unknown op %d", op.Kind)
		}
	}
	return nil
}

// put inserts or replaces a row (no constraint checks; callers check).
func (t *table) put(r Row) {
	pk := t.def.pkEnc(r)
	if old, existed := t.rows.Get(pk); existed {
		t.unindex(old, pk)
	}
	t.rows.Put(pk, r)
	t.index(r, pk)
}

func (t *table) deleteByPK(pk string) (Row, bool) {
	old, ok := t.rows.Get(pk)
	if !ok {
		return nil, false
	}
	t.rows.Delete(pk)
	t.unindex(old, pk)
	return old, true
}

func (t *table) index(r Row, pk string) {
	for _, ix := range t.indexes {
		ix.tree.Put(encodeVals(r.project(ix.def.Cols))+pk, pk)
	}
}

func (t *table) unindex(r Row, pk string) {
	for _, ix := range t.indexes {
		ix.tree.Delete(encodeVals(r.project(ix.def.Cols)) + pk)
	}
}

// uniqueViolated reports whether inserting r (with pk) would violate a
// unique index.
func (t *table) uniqueViolated(r Row, pk string) bool {
	for _, ix := range t.indexes {
		if !ix.def.Unique {
			continue
		}
		prefix := encodeVals(r.project(ix.def.Cols))
		violated := false
		ix.tree.AscendRange(prefix, prefix+"\xff\xff\xff\xff", func(k, existingPK string) bool {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix && existingPK != pk {
				violated = true
				return false
			}
			return true
		})
		if violated {
			return true
		}
	}
	return false
}

// snapshot is the gob-serialized full-state checkpoint.
type snapshot struct {
	Defs []TableDef
	Rows map[string][]Row
	Seqs map[string]int64
}

// Checkpoint writes a full snapshot to disk and truncates the WAL. It is a
// no-op for in-memory databases.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.log == nil {
		return nil
	}
	snap := snapshot{Rows: make(map[string][]Row), Seqs: make(map[string]int64)}
	for name, t := range db.tables {
		snap.Defs = append(snap.Defs, t.def)
		var rows []Row
		t.rows.Ascend(func(_ string, r Row) bool {
			rows = append(rows, r)
			return true
		})
		snap.Rows[name] = rows
	}
	for k, v := range db.seqs {
		snap.Seqs[k] = v
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return fmt.Errorf("reldb: encode snapshot: %w", err)
	}
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("reldb: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return fmt.Errorf("reldb: install snapshot: %w", err)
	}
	return db.log.Reset()
}

// loadSnapshot restores state from the snapshot file if present.
func (db *DB) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(db.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: read snapshot: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("reldb: decode snapshot: %w", err)
	}
	for _, def := range snap.Defs {
		t := newTable(def)
		for _, r := range snap.Rows[def.Name] {
			t.put(r)
		}
		db.tables[def.Name] = t
	}
	for k, v := range snap.Seqs {
		db.seqs[k] = v
	}
	return nil
}

// GobEncode implements gob encoding for V (fields are unexported).
func (v V) GobEncode() ([]byte, error) { return v.appendEncoded(nil), nil }

// GobDecode implements gob decoding for V.
func (v *V) GobDecode(data []byte) error {
	dec, rest, err := decodeV(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("reldb: trailing bytes in V encoding")
	}
	*v = dec
	return nil
}

// decodeV decodes one value from the canonical encoding.
func decodeV(src []byte) (V, []byte, error) {
	if len(src) == 0 {
		return V{}, nil, fmt.Errorf("reldb: decode value: empty input")
	}
	t := ColType(src[0])
	src = src[1:]
	switch t {
	case 0:
		return V{}, src, nil
	case ColString, ColBytes:
		n, sz := uvarint(src)
		if sz <= 0 || uint64(len(src)-sz) < n {
			return V{}, nil, fmt.Errorf("reldb: decode value: bad string")
		}
		return V{t: t, s: string(src[sz : sz+int(n)])}, src[sz+int(n):], nil
	case ColInt, ColFloat, ColBool:
		n, sz := uvarint(src)
		if sz <= 0 {
			return V{}, nil, fmt.Errorf("reldb: decode value: bad number")
		}
		return V{t: t, n: n}, src[sz:], nil
	default:
		return V{}, nil, fmt.Errorf("reldb: decode value: unknown type %d", t)
	}
}

func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s > 63 {
			return 0, -1
		}
	}
	return 0, 0
}
