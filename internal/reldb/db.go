// Package reldb is a small relational storage engine: typed tables with
// primary keys and secondary indexes over copy-on-read B-trees, atomic
// read-write transactions with rollback, named sequences, and durability
// through a write-ahead log plus snapshot checkpoints (package wal).
//
// # Concurrency
//
// The engine is a genuinely concurrent store (see docs/STORAGE.md for the
// full contract):
//
//   - Each table carries its own RWMutex. A write transaction (Update)
//     write-locks every table it touches — for reads as well as writes —
//     at first touch and holds the locks until commit or rollback (strict
//     two-phase locking). A read transaction (View) read-locks tables at
//     first touch and holds them until the View returns, so it sees a
//     stable snapshot of every table it reads.
//   - Transactions that touch disjoint tables run fully in parallel. The
//     engine does not detect deadlock: transactions that touch overlapping
//     table sets MUST touch them in a consistent global order (the
//     lock-order contract; the central store's order is documented in
//     docs/STORAGE.md).
//   - Sequences live behind one sequence lock, held to commit by any
//     writer that touches them.
//   - Close and Checkpoint quiesce the database: they take the state lock
//     exclusively, which every transaction holds shared for its duration.
//
// # Durability
//
// Commit appends the transaction's operations to the WAL as one record;
// recovery replays records in append order and truncates any torn tail.
// With Options.GroupCommit, concurrent committers hand their records to a
// shared flusher: the first committer to arrive becomes the leader, waits
// up to Options.GroupCommitWindow, and writes every queued record with one
// WAL write and at most one fsync — commits per flush is the win, visible
// through Metrics(). Group commit changes durability batching only, never
// atomicity, isolation, or recovery semantics.
package reldb

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/btree"
	"orchestra/internal/metrics"
	"orchestra/internal/wal"
)

// ErrClosed is returned by operations on a closed database.
var ErrClosed = errors.New("reldb: database closed")

// ErrDuplicateKey is returned when an insert or unique index would create a
// duplicate.
var ErrDuplicateKey = errors.New("reldb: duplicate key")

// ErrNoTable is returned for operations on undeclared tables.
var ErrNoTable = errors.New("reldb: no such table")

const snapshotFile = "snapshot.db"

// DB is the database handle. All access goes through View (shared) and
// Update (exclusive per touched table) transactions; an Update is atomic
// (rolled back on error) and durable (WAL-appended at commit) when the DB
// was opened with a directory.
type DB struct {
	// stateMu quiesces the database: every transaction holds it shared for
	// its whole duration; Close and Checkpoint take it exclusively.
	stateMu sync.RWMutex
	closed  bool

	dir  string
	log  *wal.Log
	sync bool
	gc   *groupCommitter

	// tablesMu guards the tables map itself; each table's data is guarded
	// by the table's own lock.
	tablesMu sync.RWMutex
	tables   map[string]*table

	// seqMu guards seqs like a table lock: writers that touch sequences
	// hold it exclusively to commit, read-only transactions hold it
	// shared to the end of the View.
	seqMu sync.RWMutex
	seqs  map[string]int64

	counters metrics.DBCounters
}

type table struct {
	// mu is the table lock: Update transactions hold it exclusively from
	// first touch to commit, View transactions hold it shared.
	mu      sync.RWMutex
	def     TableDef
	rows    *btree.Tree[string, Row]
	indexes []*index
	// pending is non-nil while the transaction that created this table is
	// still uncommitted; other transactions treat the table as absent.
	pending *Tx
}

type index struct {
	def IndexDef
	// entries are keyed by encoded(index cols) + encoded(pk); values are
	// the pk encoding, so prefix scans enumerate matching rows.
	tree *btree.Tree[string, string]
}

func newTable(def TableDef) *table {
	t := &table{def: def, rows: btree.New[string, Row](func(a, b string) bool { return a < b })}
	for _, ix := range def.Indexes {
		t.indexes = append(t.indexes, &index{
			def:  ix,
			tree: btree.New[string, string](func(a, b string) bool { return a < b }),
		})
	}
	return t
}

// Options configure a DB.
type Options struct {
	// Dir is the durability directory; empty means a volatile in-memory
	// database.
	Dir string
	// SyncOnCommit fsyncs the WAL at every commit (or, under group commit,
	// once per group flush).
	SyncOnCommit bool
	// GroupCommit batches concurrent commits into shared WAL flushes: one
	// write and at most one fsync per group. Commits gain throughput under
	// concurrency at the price of waiting for their group's flush. Off by
	// default — the serial escape hatch the differential tests pin against.
	GroupCommit bool
	// GroupCommitWindow is how long a group leader waits for more commits
	// to join its flush. Zero (the default) flushes whatever has queued by
	// the time the leader runs — natural batching under contention with no
	// added latency when idle.
	GroupCommitWindow time.Duration
	// AdaptiveGroupCommit sizes the gathering window from observed flush
	// depth instead of the fixed GroupCommitWindow: flushes that carry a
	// group grow the window (deeper batches amortize the fsync further),
	// flushes that run alone shrink it (an idle database should not pay
	// gathering latency). The window moves multiplicatively between
	// GroupCommitMinWindow and GroupCommitMaxWindow, so an idle database
	// converges to the minimum and a saturated one to the cap within a few
	// flushes.
	AdaptiveGroupCommit bool
	// GroupCommitMinWindow and GroupCommitMaxWindow bound the adaptive
	// window. Min defaults to 0 (no latency when idle); Max defaults to
	// 1ms.
	GroupCommitMinWindow time.Duration
	GroupCommitMaxWindow time.Duration
}

// Open opens (or creates) a database, recovering from the snapshot and WAL
// if present.
func Open(opts Options) (*DB, error) {
	db := &DB{
		dir:    opts.Dir,
		sync:   opts.SyncOnCommit,
		tables: make(map[string]*table),
		seqs:   make(map[string]int64),
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("reldb: %w", err)
	}
	if err := db.loadSnapshot(); err != nil {
		return nil, err
	}
	l, err := wal.Open(filepath.Join(opts.Dir, "wal"), wal.Options{})
	if err != nil {
		return nil, err
	}
	db.log = l
	if err := l.Replay(func(payload []byte) error {
		var batch []walOp
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&batch); err != nil {
			return fmt.Errorf("reldb: decode wal record: %w", err)
		}
		return db.applyOps(batch)
	}); err != nil {
		l.Close()
		return nil, err
	}
	if opts.GroupCommit {
		gc := &groupCommitter{db: db, window: opts.GroupCommitWindow}
		if opts.AdaptiveGroupCommit {
			gc.adaptive = newAdaptiveWindow(opts.GroupCommitMinWindow, opts.GroupCommitMaxWindow)
		}
		db.gc = gc
	}
	return db, nil
}

// GroupCommitWindow reports the gathering window the next flush leader
// will sleep: the fixed window, or the adaptive controller's current
// value. Zero when group commit is off.
func (db *DB) GroupCommitWindow() time.Duration {
	if db.gc == nil {
		return 0
	}
	if db.gc.adaptive != nil {
		return db.gc.adaptive.current()
	}
	return db.gc.window
}

// MustOpenMemory returns a volatile in-memory database, panicking on error;
// for tests and examples.
func MustOpenMemory() *DB {
	db, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return db
}

// Metrics exposes the engine's commit and contention counters.
func (db *DB) Metrics() *metrics.DBCounters { return &db.counters }

// Close flushes and closes the database, waiting for in-flight
// transactions to finish.
func (db *DB) Close() error {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.closed = true
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// View runs fn with shared read access: every table fn touches is
// read-locked from first touch until fn returns.
func (db *DB) View(fn func(tx *Tx) error) error {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	tx := &Tx{db: db}
	err := fn(tx)
	tx.release()
	return err
}

// Update runs fn with exclusive access to every table it touches; all
// writes are applied atomically (rolled back if fn errors) and logged to
// the WAL at commit. Concurrent Updates on disjoint tables proceed in
// parallel; see the package comment for the lock-order contract.
func (db *DB) Update(fn func(tx *Tx) error) error {
	db.stateMu.RLock()
	defer db.stateMu.RUnlock()
	if db.closed {
		return ErrClosed
	}
	tx := &Tx{db: db, writable: true}
	if err := fn(tx); err != nil {
		tx.rollback()
		tx.release()
		return err
	}
	err := tx.commit()
	tx.release()
	return err
}

// resolve returns the named table if it exists and is visible to tx
// (pending tables are visible only to their creating transaction).
func (db *DB) resolve(name string, tx *Tx) *table {
	db.tablesMu.RLock()
	t := db.tables[name]
	if t != nil && t.pending != nil && t.pending != tx {
		t = nil
	}
	db.tablesMu.RUnlock()
	return t
}

// TableNames returns the declared tables, unsorted.
func (db *DB) TableNames() []string {
	db.tablesMu.RLock()
	defer db.tablesMu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n, t := range db.tables {
		if t.pending != nil {
			continue
		}
		out = append(out, n)
	}
	return out
}

// TableDef returns a table's definition.
func (db *DB) TableDef(name string) (TableDef, bool) {
	db.tablesMu.RLock()
	defer db.tablesMu.RUnlock()
	t, ok := db.tables[name]
	if !ok || t.pending != nil {
		return TableDef{}, false
	}
	return t.def, true
}

// walOp is one logged mutation.
type walOp struct {
	Kind  opKind
	Table string
	PK    string
	Row   Row
	Def   TableDef
	Seq   string
	SeqV  int64
}

type opKind uint8

const (
	opPut opKind = iota + 1
	opDelete
	opCreate
	opSeq
	opDrop
)

// applyOps replays logged operations without re-logging; used by recovery.
// Open is single-threaded, so no locks are taken here.
func (db *DB) applyOps(batch []walOp) error {
	for _, op := range batch {
		switch op.Kind {
		case opCreate:
			if _, dup := db.tables[op.Def.Name]; dup {
				return fmt.Errorf("reldb: recovery: duplicate table %s", op.Def.Name)
			}
			db.tables[op.Def.Name] = newTable(op.Def)
		case opPut:
			t, ok := db.tables[op.Table]
			if !ok {
				return fmt.Errorf("reldb: recovery: %w: %s", ErrNoTable, op.Table)
			}
			t.put(op.Row)
		case opDelete:
			t, ok := db.tables[op.Table]
			if !ok {
				return fmt.Errorf("reldb: recovery: %w: %s", ErrNoTable, op.Table)
			}
			t.deleteByPK(op.PK)
		case opSeq:
			db.seqs[op.Seq] = op.SeqV
		case opDrop:
			if _, ok := db.tables[op.Table]; !ok {
				return fmt.Errorf("reldb: recovery: %w: %s", ErrNoTable, op.Table)
			}
			delete(db.tables, op.Table)
		default:
			return fmt.Errorf("reldb: recovery: unknown op %d", op.Kind)
		}
	}
	return nil
}

// put inserts or replaces a row (no constraint checks; callers check).
func (t *table) put(r Row) {
	pk := t.def.pkEnc(r)
	if old, existed := t.rows.Get(pk); existed {
		t.unindex(old, pk)
	}
	t.rows.Put(pk, r)
	t.index(r, pk)
}

func (t *table) deleteByPK(pk string) (Row, bool) {
	old, ok := t.rows.Get(pk)
	if !ok {
		return nil, false
	}
	t.rows.Delete(pk)
	t.unindex(old, pk)
	return old, true
}

func (t *table) index(r Row, pk string) {
	for _, ix := range t.indexes {
		ix.tree.Put(encodeVals(r.project(ix.def.Cols))+pk, pk)
	}
}

func (t *table) unindex(r Row, pk string) {
	for _, ix := range t.indexes {
		ix.tree.Delete(encodeVals(r.project(ix.def.Cols)) + pk)
	}
}

// uniqueViolated reports whether inserting r (with pk) would violate a
// unique index.
func (t *table) uniqueViolated(r Row, pk string) bool {
	for _, ix := range t.indexes {
		if !ix.def.Unique {
			continue
		}
		prefix := encodeVals(r.project(ix.def.Cols))
		violated := false
		ix.tree.AscendRange(prefix, prefix+"\xff\xff\xff\xff", func(k, existingPK string) bool {
			if len(k) >= len(prefix) && k[:len(prefix)] == prefix && existingPK != pk {
				violated = true
				return false
			}
			return true
		})
		if violated {
			return true
		}
	}
	return false
}

// groupCommitter batches concurrent WAL appends: the first committer to
// arrive while no flush is running becomes the leader, optionally waits
// the window for company, then writes every queued record in one
// wal.AppendBatch (one Write, at most one fsync) and hands each waiter its
// result. Committers hold their table locks while waiting, so conflicting
// transactions can never share a group — record order within a flush only
// ever permutes independent transactions, which replay to the same state.
type groupCommitter struct {
	db       *DB
	window   time.Duration
	adaptive *adaptiveWindow // nil = fixed window

	mu      sync.Mutex
	leading bool
	queue   []*commitWait
}

// adaptiveWindow sizes the gathering window from observed flush depth: a
// flush that carried company doubles the window (deeper batches amortize
// the fsync further, and a queue is already forming), a flush that ran
// alone halves it (nobody is waiting — gathering latency buys nothing).
// Multiplicative moves clamp to [min, max], so an idle database converges
// to min and a saturated one to max within a few flushes. Adaptation
// changes flush timing only — never which records are durable or their
// replay order — so every group-commit correctness guarantee is untouched.
type adaptiveWindow struct {
	min, max time.Duration
	cur      atomic.Int64 // current window, ns
}

func newAdaptiveWindow(min, max time.Duration) *adaptiveWindow {
	if max <= 0 {
		max = time.Millisecond
	}
	if min < 0 {
		min = 0
	}
	if min > max {
		min = max
	}
	a := &adaptiveWindow{min: min, max: max}
	a.cur.Store(int64(min))
	return a
}

func (a *adaptiveWindow) current() time.Duration { return time.Duration(a.cur.Load()) }

func (a *adaptiveWindow) observe(depth int) {
	cur := a.current()
	var next time.Duration
	switch {
	case depth > 1:
		// 2x+1µs so growth escapes a zero minimum.
		next = cur*2 + time.Microsecond
		if next > a.max {
			next = a.max
		}
	default:
		next = cur / 2
		if next < a.min {
			next = a.min
		}
	}
	a.cur.Store(int64(next))
}

// flushResult is what a flush hands each waiter: appended distinguishes a
// failed append (nothing durable — the waiter must roll back) from a
// failed fsync after a successful append (records durable — the waiter
// keeps its state and surfaces the error, matching the serial path).
type flushResult struct {
	err      error
	appended bool
}

type commitWait struct {
	payload []byte
	done    chan flushResult
}

// commit submits one encoded WAL record and blocks until the flush that
// carried it completes. It reports whether the record was durably
// appended alongside any flush error.
func (gc *groupCommitter) commit(payload []byte) (bool, error) {
	cw := &commitWait{payload: payload, done: make(chan flushResult, 1)}
	gc.mu.Lock()
	gc.queue = append(gc.queue, cw)
	lead := !gc.leading
	if lead {
		gc.leading = true
	}
	gc.mu.Unlock()
	if lead {
		gc.lead()
	}
	res := <-cw.done
	return res.appended, res.err
}

// lead drains the queue in group flushes until it is empty, then abdicates.
func (gc *groupCommitter) lead() {
	window := gc.window
	if gc.adaptive != nil {
		window = gc.adaptive.current()
	}
	if window > 0 {
		time.Sleep(window)
	}
	for {
		gc.mu.Lock()
		batch := gc.queue
		gc.queue = nil
		if len(batch) == 0 {
			gc.leading = false
			gc.mu.Unlock()
			return
		}
		gc.mu.Unlock()

		payloads := make([][]byte, len(batch))
		for i, cw := range batch {
			payloads[i] = cw.payload
		}
		res := flushResult{err: gc.db.log.AppendBatch(payloads)}
		res.appended = res.err == nil
		if res.appended && gc.db.sync {
			res.err = gc.db.log.Sync()
		}
		if res.err == nil {
			gc.db.counters.ObserveGroupFlush(len(batch))
		}
		if gc.adaptive != nil {
			gc.adaptive.observe(len(batch))
		}
		for _, cw := range batch {
			cw.done <- res
		}
	}
}

// snapshot is the gob-serialized full-state checkpoint.
type snapshot struct {
	Defs []TableDef
	Rows map[string][]Row
	Seqs map[string]int64
}

// Checkpoint writes a full snapshot to disk and truncates the WAL, first
// quiescing all transactions. It is a no-op for in-memory databases.
func (db *DB) Checkpoint() error {
	db.stateMu.Lock()
	defer db.stateMu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.log == nil {
		return nil
	}
	snap := snapshot{Rows: make(map[string][]Row), Seqs: make(map[string]int64)}
	for name, t := range db.tables {
		snap.Defs = append(snap.Defs, t.def)
		var rows []Row
		t.rows.Ascend(func(_ string, r Row) bool {
			rows = append(rows, r)
			return true
		})
		snap.Rows[name] = rows
	}
	for k, v := range db.seqs {
		snap.Seqs[k] = v
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		return fmt.Errorf("reldb: encode snapshot: %w", err)
	}
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("reldb: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return fmt.Errorf("reldb: install snapshot: %w", err)
	}
	return db.log.Reset()
}

// loadSnapshot restores state from the snapshot file if present.
func (db *DB) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(db.dir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("reldb: read snapshot: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("reldb: decode snapshot: %w", err)
	}
	for _, def := range snap.Defs {
		t := newTable(def)
		for _, r := range snap.Rows[def.Name] {
			t.put(r)
		}
		db.tables[def.Name] = t
	}
	for k, v := range snap.Seqs {
		db.seqs[k] = v
	}
	return nil
}

// GobEncode implements gob encoding for V (fields are unexported).
func (v V) GobEncode() ([]byte, error) { return v.appendEncoded(nil), nil }

// GobDecode implements gob decoding for V.
func (v *V) GobDecode(data []byte) error {
	dec, rest, err := decodeV(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("reldb: trailing bytes in V encoding")
	}
	*v = dec
	return nil
}

// decodeV decodes one value from the canonical encoding.
func decodeV(src []byte) (V, []byte, error) {
	if len(src) == 0 {
		return V{}, nil, fmt.Errorf("reldb: decode value: empty input")
	}
	t := ColType(src[0])
	src = src[1:]
	switch t {
	case 0:
		return V{}, src, nil
	case ColString, ColBytes:
		n, sz := uvarint(src)
		if sz <= 0 || uint64(len(src)-sz) < n {
			return V{}, nil, fmt.Errorf("reldb: decode value: bad string")
		}
		return V{t: t, s: string(src[sz : sz+int(n)])}, src[sz+int(n):], nil
	case ColInt, ColFloat, ColBool:
		n, sz := uvarint(src)
		if sz <= 0 {
			return V{}, nil, fmt.Errorf("reldb: decode value: bad number")
		}
		return V{t: t, n: n}, src[sz:], nil
	default:
		return V{}, nil, fmt.Errorf("reldb: decode value: unknown type %d", t)
	}
}

func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
		if s > 63 {
			return 0, -1
		}
	}
	return 0, 0
}
