// Package reldb implements a small embedded relational engine: typed
// tables with primary keys and secondary indexes, unique constraints,
// atomic multi-statement transactions with rollback, sequences, WAL-based
// durability with crash recovery, and snapshot checkpoints.
//
// It stands in for the commercial RDBMS the paper uses as its centralized
// update store backend (§5.2.1): the central store keeps its epochs,
// transactions, decisions, reconciliations, and trust-condition tables here.
package reldb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// ColType is a column's declared type.
type ColType uint8

// The supported column types.
const (
	ColString ColType = iota + 1
	ColInt
	ColFloat
	ColBool
	ColBytes
)

// String names the column type.
func (t ColType) String() string {
	switch t {
	case ColString:
		return "string"
	case ColInt:
		return "int"
	case ColFloat:
		return "float"
	case ColBool:
		return "bool"
	case ColBytes:
		return "bytes"
	default:
		return fmt.Sprintf("coltype(%d)", uint8(t))
	}
}

// V is a single column value: a tagged union over the column types. The
// zero V is NULL.
type V struct {
	t ColType // 0 = NULL
	s string  // string payload; bytes stored as string
	n uint64  // int64 bits, float64 bits, or bool
}

// Null returns the NULL value.
func Null() V { return V{} }

// Str returns a string value.
func Str(s string) V { return V{t: ColString, s: s} }

// Int returns an integer value.
func Int(i int64) V { return V{t: ColInt, n: uint64(i)} }

// Float returns a float value.
func Float(f float64) V { return V{t: ColFloat, n: math.Float64bits(f)} }

// Bool returns a boolean value.
func Bool(b bool) V {
	var n uint64
	if b {
		n = 1
	}
	return V{t: ColBool, n: n}
}

// Bytes returns a bytes value (the slice is copied).
func Bytes(b []byte) V { return V{t: ColBytes, s: string(b)} }

// Type returns the value's type (0 for NULL).
func (v V) Type() ColType { return v.t }

// IsNull reports whether the value is NULL.
func (v V) IsNull() bool { return v.t == 0 }

// S returns the string payload.
func (v V) S() string { return v.s }

// I returns the integer payload.
func (v V) I() int64 { return int64(v.n) }

// F returns the float payload.
func (v V) F() float64 { return math.Float64frombits(v.n) }

// B returns the boolean payload.
func (v V) B() bool { return v.n != 0 }

// Raw returns the bytes payload.
func (v V) Raw() []byte { return []byte(v.s) }

// String renders the value for diagnostics.
func (v V) String() string {
	switch v.t {
	case ColString:
		return strconv.Quote(v.s)
	case ColInt:
		return strconv.FormatInt(int64(v.n), 10)
	case ColFloat:
		return strconv.FormatFloat(v.F(), 'g', -1, 64)
	case ColBool:
		return strconv.FormatBool(v.n != 0)
	case ColBytes:
		return fmt.Sprintf("0x%x", v.s)
	default:
		return "NULL"
	}
}

// appendEncoded appends a canonical order-irrelevant but injective encoding
// (used for map/index keys, not for ordering comparisons).
func (v V) appendEncoded(dst []byte) []byte {
	dst = append(dst, byte(v.t))
	switch v.t {
	case 0:
	case ColString, ColBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	default:
		dst = binary.AppendUvarint(dst, v.n)
	}
	return dst
}

// Row is an ordered list of column values.
type Row []V

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports componentwise equality.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if r[i] != o[i] {
			return false
		}
	}
	return true
}

// encodeVals produces an injective encoding of a value list.
func encodeVals(vals []V) string {
	var dst []byte
	for _, v := range vals {
		dst = v.appendEncoded(dst)
	}
	return string(dst)
}

// project extracts the columns at idx.
func (r Row) project(idx []int) []V {
	out := make([]V, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}
