package reldb

import "fmt"

// ColDef declares one column.
type ColDef struct {
	Name string
	Type ColType
	// Nullable permits NULL; key columns must not be nullable.
	Nullable bool
}

// IndexDef declares a secondary index over a projection of the table.
type IndexDef struct {
	Name   string
	Cols   []int
	Unique bool
}

// TableDef declares a table: columns, primary key, secondary indexes.
type TableDef struct {
	Name    string
	Cols    []ColDef
	Key     []int
	Indexes []IndexDef
}

// validate checks the definition's internal consistency.
func (d *TableDef) validate() error {
	if d.Name == "" {
		return fmt.Errorf("reldb: table with empty name")
	}
	if len(d.Cols) == 0 {
		return fmt.Errorf("reldb: table %s has no columns", d.Name)
	}
	seen := map[string]bool{}
	for _, c := range d.Cols {
		if c.Name == "" {
			return fmt.Errorf("reldb: table %s has an unnamed column", d.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("reldb: table %s: duplicate column %s", d.Name, c.Name)
		}
		if c.Type == 0 {
			return fmt.Errorf("reldb: table %s: column %s has no type", d.Name, c.Name)
		}
		seen[c.Name] = true
	}
	if len(d.Key) == 0 {
		return fmt.Errorf("reldb: table %s has no primary key", d.Name)
	}
	for _, k := range d.Key {
		if k < 0 || k >= len(d.Cols) {
			return fmt.Errorf("reldb: table %s: key column %d out of range", d.Name, k)
		}
		if d.Cols[k].Nullable {
			return fmt.Errorf("reldb: table %s: key column %s must not be nullable", d.Name, d.Cols[k].Name)
		}
	}
	idxNames := map[string]bool{}
	for _, ix := range d.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("reldb: table %s has an unnamed index", d.Name)
		}
		if idxNames[ix.Name] {
			return fmt.Errorf("reldb: table %s: duplicate index %s", d.Name, ix.Name)
		}
		idxNames[ix.Name] = true
		if len(ix.Cols) == 0 {
			return fmt.Errorf("reldb: table %s: index %s has no columns", d.Name, ix.Name)
		}
		for _, c := range ix.Cols {
			if c < 0 || c >= len(d.Cols) {
				return fmt.Errorf("reldb: table %s: index %s column %d out of range", d.Name, ix.Name, c)
			}
		}
	}
	return nil
}

// checkRow validates a row against the definition.
func (d *TableDef) checkRow(r Row) error {
	if len(r) != len(d.Cols) {
		return fmt.Errorf("reldb: table %s: row has %d columns, want %d", d.Name, len(r), len(d.Cols))
	}
	for i, v := range r {
		c := d.Cols[i]
		if v.IsNull() {
			if !c.Nullable {
				return fmt.Errorf("reldb: table %s: column %s is NOT NULL", d.Name, c.Name)
			}
			continue
		}
		if v.Type() != c.Type {
			return fmt.Errorf("reldb: table %s: column %s has type %s, want %s",
				d.Name, c.Name, v.Type(), c.Type)
		}
	}
	return nil
}

// ColIndex returns the index of the named column, or -1.
func (d *TableDef) ColIndex(name string) int {
	for i, c := range d.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// pkEnc computes the primary-key encoding of a row.
func (d *TableDef) pkEnc(r Row) string { return encodeVals(r.project(d.Key)) }
