package reldb

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Tx is a transaction handle passed to View/Update callbacks. A writable
// transaction write-locks each table at first touch and holds the lock to
// commit (strict two-phase locking), buffering WAL operations and a typed
// undo list for rollback; a read-only transaction read-locks tables at
// first touch and holds the locks until the View returns. Reads always see
// the transaction's own writes.
type Tx struct {
	db       *DB
	writable bool
	// tabs are the locked tables, in acquisition order; lookups scan this
	// slice first (transactions touch a handful of tables at most).
	tabs    []*table
	created []*table // tables created by this tx (pending until commit)
	seqHeld bool
	ops     []walOp
	undo    []undoOp
}

// undoOp is one typed rollback step; undos run in reverse append order.
type undoOp struct {
	kind undoKind
	t    *table
	pk   string
	row  Row
	seq  string
	seqV int64
}

type undoKind uint8

const (
	undoPut     undoKind = iota + 1 // re-put row into t (reverses delete/replace)
	undoDelete                      // delete pk from t (reverses insert)
	undoSeq                         // restore sequence seq to seqV
	undoDrop                        // drop the created table t
	undoRestore                     // re-register the dropped table t
)

// table resolves a table and, on first touch, acquires its lock in the
// transaction's mode.
func (tx *Tx) table(name string) (*table, error) {
	for _, t := range tx.tabs {
		if t.def.Name == name {
			return t, nil
		}
	}
	t := tx.db.resolve(name, tx)
	if t == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	tx.lockTable(t)
	return t, nil
}

// lockTable acquires t's lock in the transaction's mode and records it for
// release. Tables created by this transaction are invisible to others and
// are not locked.
func (tx *Tx) lockTable(t *table) {
	if t.pending == tx {
		tx.tabs = append(tx.tabs, t)
		return
	}
	if tx.writable {
		if !t.mu.TryLock() {
			tx.db.counters.ObserveTableWait()
			t.mu.Lock()
		}
	} else {
		if !t.mu.TryRLock() {
			tx.db.counters.ObserveTableWait()
			t.mu.RLock()
		}
	}
	tx.tabs = append(tx.tabs, t)
}

// lockSeqs acquires the sequence lock on first touch (held to release) —
// exclusively for writable transactions, shared for read-only ones.
func (tx *Tx) lockSeqs() {
	if tx.seqHeld {
		return
	}
	if tx.writable {
		tx.db.seqMu.Lock()
	} else {
		tx.db.seqMu.RLock()
	}
	tx.seqHeld = true
}

// release unlocks everything the transaction holds; called exactly once,
// after commit or rollback (Update) or after fn returns (View).
func (tx *Tx) release() {
	for _, t := range tx.tabs {
		if t.pending == tx {
			continue
		}
		if tx.writable {
			t.mu.Unlock()
		} else {
			t.mu.RUnlock()
		}
	}
	tx.tabs = nil
	if len(tx.created) > 0 {
		tx.db.tablesMu.Lock()
		for _, t := range tx.created {
			if t.pending == tx { // still pending: commit publishes, rollback removed it
				t.pending = nil
			}
		}
		tx.db.tablesMu.Unlock()
		tx.created = nil
	}
	if tx.seqHeld {
		if tx.writable {
			tx.db.seqMu.Unlock()
		} else {
			tx.db.seqMu.RUnlock()
		}
		tx.seqHeld = false
	}
}

func (tx *Tx) requireWritable() error {
	if !tx.writable {
		return fmt.Errorf("reldb: write inside a read-only transaction")
	}
	return nil
}

// logOp buffers op for the WAL; in-memory databases skip the buffer (and
// its allocations) entirely since commit would discard it.
func (tx *Tx) logOp(op walOp) {
	if tx.db.log != nil {
		tx.ops = append(tx.ops, op)
	}
}

// CreateTable declares a new table. The table becomes visible to other
// transactions when this one commits; DDL is not otherwise isolated from
// concurrent DML, so declare tables before going concurrent (the central
// store does all DDL at open).
func (tx *Tx) CreateTable(def TableDef) error {
	if err := tx.requireWritable(); err != nil {
		return err
	}
	if err := def.validate(); err != nil {
		return err
	}
	t := newTable(def)
	t.pending = tx
	tx.db.tablesMu.Lock()
	if _, dup := tx.db.tables[def.Name]; dup {
		tx.db.tablesMu.Unlock()
		return fmt.Errorf("reldb: table %s already exists", def.Name)
	}
	tx.db.tables[def.Name] = t
	tx.db.tablesMu.Unlock()
	tx.created = append(tx.created, t)
	tx.tabs = append(tx.tabs, t)
	tx.undo = append(tx.undo, undoOp{kind: undoDrop, t: t})
	tx.logOp(walOp{Kind: opCreate, Def: def})
	return nil
}

// DropTable removes a table and all its rows. Like CreateTable, DDL is not
// isolated from concurrent DML: drop a table only while no concurrent
// transaction can touch it (the central store drops a tenant's tables only
// after the tenant is closed and drained). The dropped table stays locked
// by this transaction until commit; re-creating the same name within the
// same transaction is not supported.
func (tx *Tx) DropTable(name string) error {
	if err := tx.requireWritable(); err != nil {
		return err
	}
	t, err := tx.table(name)
	if err != nil {
		return err
	}
	tx.db.tablesMu.Lock()
	delete(tx.db.tables, name)
	tx.db.tablesMu.Unlock()
	tx.undo = append(tx.undo, undoOp{kind: undoRestore, t: t})
	tx.logOp(walOp{Kind: opDrop, Table: name})
	return nil
}

// HasTable reports whether a table exists (and is visible to this
// transaction).
func (tx *Tx) HasTable(name string) bool {
	return tx.db.resolve(name, tx) != nil
}

// Insert adds a row; it fails with ErrDuplicateKey if the primary key or a
// unique index already holds a matching entry.
func (tx *Tx) Insert(tableName string, r Row) error {
	return tx.write(tableName, r, false)
}

// Upsert adds or replaces the row with the same primary key; unique index
// constraints against *other* rows still apply.
func (tx *Tx) Upsert(tableName string, r Row) error {
	return tx.write(tableName, r, true)
}

func (tx *Tx) write(tableName string, r Row, replace bool) error {
	if err := tx.requireWritable(); err != nil {
		return err
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if err := t.def.checkRow(r); err != nil {
		return err
	}
	r = r.Clone()
	pk := t.def.pkEnc(r)
	old, existed := t.rows.Get(pk)
	if existed && !replace {
		return fmt.Errorf("%w: table %s", ErrDuplicateKey, tableName)
	}
	if t.uniqueViolated(r, pk) {
		return fmt.Errorf("%w: unique index on table %s", ErrDuplicateKey, tableName)
	}
	t.put(r)
	if existed {
		tx.undo = append(tx.undo, undoOp{kind: undoPut, t: t, row: old})
	} else {
		tx.undo = append(tx.undo, undoOp{kind: undoDelete, t: t, pk: pk})
	}
	tx.logOp(walOp{Kind: opPut, Table: tableName, Row: r})
	return nil
}

// Delete removes the row with the given primary-key values, reporting
// whether it existed.
func (tx *Tx) Delete(tableName string, key ...V) (bool, error) {
	if err := tx.requireWritable(); err != nil {
		return false, err
	}
	t, err := tx.table(tableName)
	if err != nil {
		return false, err
	}
	pk := encodeVals(key)
	old, ok := t.deleteByPK(pk)
	if !ok {
		return false, nil
	}
	tx.undo = append(tx.undo, undoOp{kind: undoPut, t: t, row: old})
	tx.logOp(walOp{Kind: opDelete, Table: tableName, PK: pk})
	return true, nil
}

// Get fetches the row with the given primary-key values.
func (tx *Tx) Get(tableName string, key ...V) (Row, bool, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return nil, false, err
	}
	r, ok := t.rows.Get(encodeVals(key))
	if !ok {
		return nil, false, nil
	}
	return r.Clone(), true, nil
}

// Count returns the number of rows in the table.
func (tx *Tx) Count(tableName string) (int, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return 0, err
	}
	return t.rows.Len(), nil
}

// Scan visits every row in primary-key order until fn returns false.
func (tx *Tx) Scan(tableName string, fn func(r Row) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	t.rows.Ascend(func(_ string, r Row) bool { return fn(r.Clone()) })
	return nil
}

// ScanPrefix visits rows whose primary key begins with the given values, in
// key order, until fn returns false.
func (tx *Tx) ScanPrefix(tableName string, prefix []V, fn func(r Row) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	p := encodeVals(prefix)
	t.rows.AscendRange(p, p+"\xff\xff\xff\xff", func(k string, r Row) bool {
		if len(k) < len(p) || k[:len(p)] != p {
			return false
		}
		return fn(r.Clone())
	})
	return nil
}

// ScanIndex visits rows matching the given values on the named secondary
// index (a prefix of the index columns), in index order, until fn returns
// false.
func (tx *Tx) ScanIndex(tableName, indexName string, vals []V, fn func(r Row) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	var ix *index
	for _, cand := range t.indexes {
		if cand.def.Name == indexName {
			ix = cand
			break
		}
	}
	if ix == nil {
		return fmt.Errorf("reldb: table %s has no index %s", tableName, indexName)
	}
	p := encodeVals(vals)
	ix.tree.AscendRange(p, p+"\xff\xff\xff\xff", func(k, pk string) bool {
		if len(k) < len(p) || k[:len(p)] != p {
			return false
		}
		r, ok := t.rows.Get(pk)
		if !ok {
			return true // index entry racing a delete cannot happen under the lock; defensive
		}
		return fn(r.Clone())
	})
	return nil
}

// NextSeq increments and returns the named sequence (starting at 1), like
// an SQL sequence; used by the central store for the epoch counter.
func (tx *Tx) NextSeq(name string) (int64, error) {
	return tx.AdvanceSeq(name, 1)
}

// AdvanceSeq advances the named sequence by the given positive amount and
// returns the new value — the multi-epoch allocator's block refill: one
// durable commit hands out `by` values at once.
func (tx *Tx) AdvanceSeq(name string, by int64) (int64, error) {
	if err := tx.requireWritable(); err != nil {
		return 0, err
	}
	if by <= 0 {
		return 0, fmt.Errorf("reldb: AdvanceSeq by %d", by)
	}
	tx.lockSeqs()
	prev := tx.db.seqs[name]
	next := prev + by
	tx.db.seqs[name] = next
	tx.undo = append(tx.undo, undoOp{kind: undoSeq, seq: name, seqV: prev})
	tx.logOp(walOp{Kind: opSeq, Seq: name, SeqV: next})
	return next, nil
}

// CurrentSeq returns the named sequence's current value without advancing.
// Like tables, the sequence namespace is locked at first touch and held to
// the end of the transaction, so it participates in the same lock-order
// contract.
func (tx *Tx) CurrentSeq(name string) int64 {
	tx.lockSeqs()
	return tx.db.seqs[name]
}

// rollback undoes every buffered write in reverse order; the transaction
// still holds its locks.
func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := &tx.undo[i]
		switch u.kind {
		case undoPut:
			u.t.put(u.row)
		case undoDelete:
			u.t.deleteByPK(u.pk)
		case undoSeq:
			tx.db.seqs[u.seq] = u.seqV
		case undoDrop:
			tx.db.tablesMu.Lock()
			delete(tx.db.tables, u.t.def.Name)
			tx.db.tablesMu.Unlock()
		case undoRestore:
			tx.db.tablesMu.Lock()
			tx.db.tables[u.t.def.Name] = u.t
			tx.db.tablesMu.Unlock()
		}
	}
	tx.ops, tx.undo = nil, nil
}

// commit logs the buffered operations to the WAL (directly, or through the
// group committer), rolling back on a logging failure. Locks are released
// by the caller afterwards, so a transaction's WAL record is durably
// ordered before any conflicting transaction can even start. The commit
// counter moves only after the append succeeded — a rolled-back
// transaction is not a commit.
func (tx *Tx) commit() error {
	if len(tx.ops) == 0 || tx.db.log == nil {
		if len(tx.undo) > 0 {
			tx.db.counters.ObserveCommit()
		}
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tx.ops); err != nil {
		// Encoding failures would corrupt recovery: roll back.
		tx.rollback()
		return fmt.Errorf("reldb: encode wal batch: %w", err)
	}
	if gc := tx.db.gc; gc != nil {
		appended, err := gc.commit(buf.Bytes())
		if !appended {
			// Nothing durable (the failed group was truncated away): roll
			// back so memory and log agree.
			tx.rollback()
			return err
		}
		tx.db.counters.ObserveCommit()
		// A sync failure after a successful append keeps the state — the
		// record is in the log and will replay — and surfaces the error,
		// exactly like the serial path below.
		return err
	}
	if err := tx.db.log.Append(buf.Bytes()); err != nil {
		tx.rollback()
		return err
	}
	tx.db.counters.ObserveWALAppend()
	tx.db.counters.ObserveCommit()
	if tx.db.sync {
		return tx.db.log.Sync()
	}
	return nil
}
