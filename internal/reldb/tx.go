package reldb

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Tx is a transaction handle passed to View/Update callbacks. Writable
// transactions buffer their operations for the WAL and an undo list for
// rollback; reads always see the transaction's own writes.
type Tx struct {
	db       *DB
	writable bool
	ops      []walOp
	undo     []func()
}

func (tx *Tx) table(name string) (*table, error) {
	t, ok := tx.db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

func (tx *Tx) requireWritable() error {
	if !tx.writable {
		return fmt.Errorf("reldb: write inside a read-only transaction")
	}
	return nil
}

// CreateTable declares a new table.
func (tx *Tx) CreateTable(def TableDef) error {
	if err := tx.requireWritable(); err != nil {
		return err
	}
	if err := def.validate(); err != nil {
		return err
	}
	if _, dup := tx.db.tables[def.Name]; dup {
		return fmt.Errorf("reldb: table %s already exists", def.Name)
	}
	tx.db.tables[def.Name] = newTable(def)
	name := def.Name
	tx.undo = append(tx.undo, func() { delete(tx.db.tables, name) })
	tx.ops = append(tx.ops, walOp{Kind: opCreate, Def: def})
	return nil
}

// HasTable reports whether a table exists.
func (tx *Tx) HasTable(name string) bool {
	_, ok := tx.db.tables[name]
	return ok
}

// Insert adds a row; it fails with ErrDuplicateKey if the primary key or a
// unique index already holds a matching entry.
func (tx *Tx) Insert(tableName string, r Row) error {
	return tx.write(tableName, r, false)
}

// Upsert adds or replaces the row with the same primary key; unique index
// constraints against *other* rows still apply.
func (tx *Tx) Upsert(tableName string, r Row) error {
	return tx.write(tableName, r, true)
}

func (tx *Tx) write(tableName string, r Row, replace bool) error {
	if err := tx.requireWritable(); err != nil {
		return err
	}
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	if err := t.def.checkRow(r); err != nil {
		return err
	}
	r = r.Clone()
	pk := t.def.pkEnc(r)
	old, existed := t.rows.Get(pk)
	if existed && !replace {
		return fmt.Errorf("%w: table %s", ErrDuplicateKey, tableName)
	}
	if t.uniqueViolated(r, pk) {
		return fmt.Errorf("%w: unique index on table %s", ErrDuplicateKey, tableName)
	}
	t.put(r)
	if existed {
		oldRow := old
		tx.undo = append(tx.undo, func() { t.put(oldRow) })
	} else {
		tx.undo = append(tx.undo, func() { t.deleteByPK(pk) })
	}
	tx.ops = append(tx.ops, walOp{Kind: opPut, Table: tableName, Row: r})
	return nil
}

// Delete removes the row with the given primary-key values, reporting
// whether it existed.
func (tx *Tx) Delete(tableName string, key ...V) (bool, error) {
	if err := tx.requireWritable(); err != nil {
		return false, err
	}
	t, err := tx.table(tableName)
	if err != nil {
		return false, err
	}
	pk := encodeVals(key)
	old, ok := t.deleteByPK(pk)
	if !ok {
		return false, nil
	}
	tx.undo = append(tx.undo, func() { t.put(old) })
	tx.ops = append(tx.ops, walOp{Kind: opDelete, Table: tableName, PK: pk})
	return true, nil
}

// Get fetches the row with the given primary-key values.
func (tx *Tx) Get(tableName string, key ...V) (Row, bool, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return nil, false, err
	}
	r, ok := t.rows.Get(encodeVals(key))
	if !ok {
		return nil, false, nil
	}
	return r.Clone(), true, nil
}

// Count returns the number of rows in the table.
func (tx *Tx) Count(tableName string) (int, error) {
	t, err := tx.table(tableName)
	if err != nil {
		return 0, err
	}
	return t.rows.Len(), nil
}

// Scan visits every row in primary-key order until fn returns false.
func (tx *Tx) Scan(tableName string, fn func(r Row) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	t.rows.Ascend(func(_ string, r Row) bool { return fn(r.Clone()) })
	return nil
}

// ScanPrefix visits rows whose primary key begins with the given values, in
// key order, until fn returns false.
func (tx *Tx) ScanPrefix(tableName string, prefix []V, fn func(r Row) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	p := encodeVals(prefix)
	t.rows.AscendRange(p, p+"\xff\xff\xff\xff", func(k string, r Row) bool {
		if len(k) < len(p) || k[:len(p)] != p {
			return false
		}
		return fn(r.Clone())
	})
	return nil
}

// ScanIndex visits rows matching the given values on the named secondary
// index (a prefix of the index columns), in index order, until fn returns
// false.
func (tx *Tx) ScanIndex(tableName, indexName string, vals []V, fn func(r Row) bool) error {
	t, err := tx.table(tableName)
	if err != nil {
		return err
	}
	var ix *index
	for _, cand := range t.indexes {
		if cand.def.Name == indexName {
			ix = cand
			break
		}
	}
	if ix == nil {
		return fmt.Errorf("reldb: table %s has no index %s", tableName, indexName)
	}
	p := encodeVals(vals)
	ix.tree.AscendRange(p, p+"\xff\xff\xff\xff", func(k, pk string) bool {
		if len(k) < len(p) || k[:len(p)] != p {
			return false
		}
		r, ok := t.rows.Get(pk)
		if !ok {
			return true // index entry racing a delete cannot happen under the lock; defensive
		}
		return fn(r.Clone())
	})
	return nil
}

// NextSeq increments and returns the named sequence (starting at 1), like
// an SQL sequence; used by the central store for the epoch counter.
func (tx *Tx) NextSeq(name string) (int64, error) {
	if err := tx.requireWritable(); err != nil {
		return 0, err
	}
	prev := tx.db.seqs[name]
	next := prev + 1
	tx.db.seqs[name] = next
	tx.undo = append(tx.undo, func() { tx.db.seqs[name] = prev })
	tx.ops = append(tx.ops, walOp{Kind: opSeq, Seq: name, SeqV: next})
	return next, nil
}

// CurrentSeq returns the named sequence's current value without advancing.
func (tx *Tx) CurrentSeq(name string) int64 { return tx.db.seqs[name] }

// rollback undoes every buffered write in reverse order.
func (tx *Tx) rollback() {
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i]()
	}
	tx.ops, tx.undo = nil, nil
}

// commit logs the buffered operations to the WAL.
func (tx *Tx) commit() error {
	if len(tx.ops) == 0 || tx.db.log == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tx.ops); err != nil {
		// Encoding failures would corrupt recovery: roll back.
		tx.rollback()
		return fmt.Errorf("reldb: encode wal batch: %w", err)
	}
	if err := tx.db.log.Append(buf.Bytes()); err != nil {
		tx.rollback()
		return err
	}
	if tx.db.sync {
		return tx.db.log.Sync()
	}
	return nil
}
