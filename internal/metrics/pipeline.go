package metrics

import (
	"fmt"
	"sync/atomic"
	"time"

	"orchestra/internal/core"
)

// Pipeline aggregates reconciliation-pipeline counters across peers and
// rounds: how much work each Figure 4/5 stage did, how long each stage took,
// and how many reconciliations were in flight concurrently. All methods are
// safe for concurrent use — the System layer observes results from the
// fan-out goroutines of ReconcileAll.
type Pipeline struct {
	reconciles     atomic.Int64
	candidates     atomic.Int64
	conflictPairs  atomic.Int64
	conflictsFound atomic.Int64
	appliedUpdates atomic.Int64

	checkNanos     atomic.Int64
	conflictNanos  atomic.Int64
	groupNanos     atomic.Int64
	applyNanos     atomic.Int64
	softStateNanos atomic.Int64

	busy     atomic.Int64 // reconciliations currently in flight
	busyPeak atomic.Int64 // high-water mark of busy

	decisionFlushes  atomic.Int64 // batched decision round trips issued
	decisionsFlushed atomic.Int64 // decisions carried by those round trips
	flushPeak        atomic.Int64 // most peers flushed in one round trip

	// Stream lag counters (the streaming reconcile path): how long a
	// publish took to become stable as observed by its publisher, and how
	// long a newly stable window took to reach recorded decisions.
	pubStableCount    atomic.Int64
	pubStableNanos    atomic.Int64
	pubStableMax      atomic.Int64
	stableDecideCount atomic.Int64
	stableDecideNanos atomic.Int64
	stableDecideMax   atomic.Int64
}

// ObserveStreamStable records one publish-to-stable latency: the time from
// a peer's publish until the peer's stream observed the epoch stable.
func (p *Pipeline) ObserveStreamStable(d time.Duration) {
	p.pubStableCount.Add(1)
	p.pubStableNanos.Add(int64(d))
	atomicMax(&p.pubStableMax, int64(d))
}

// ObserveStreamDecide records one stable-to-decision latency: the time from
// a watch event's arrival until the window's decisions were recorded.
func (p *Pipeline) ObserveStreamDecide(d time.Duration) {
	p.stableDecideCount.Add(1)
	p.stableDecideNanos.Add(int64(d))
	atomicMax(&p.stableDecideMax, int64(d))
}

// ObserveDecisionFlush records one batched decision round trip that carried
// the outcomes of peers reconciliations, decisions total accept/rejects.
func (p *Pipeline) ObserveDecisionFlush(peers, decisions int) {
	p.decisionFlushes.Add(1)
	p.decisionsFlushed.Add(int64(decisions))
	atomicMax(&p.flushPeak, int64(peers))
}

// Observe folds one reconciliation result into the counters.
func (p *Pipeline) Observe(res *core.Result) {
	if res == nil {
		return
	}
	s := res.Stats
	p.reconciles.Add(1)
	p.candidates.Add(int64(s.Candidates))
	p.conflictPairs.Add(int64(s.ConflictPairs))
	p.conflictsFound.Add(int64(s.ConflictsFound))
	p.appliedUpdates.Add(int64(s.AppliedUpdates))
	p.checkNanos.Add(s.CheckNanos)
	p.conflictNanos.Add(s.ConflictNanos)
	p.groupNanos.Add(s.GroupNanos)
	p.applyNanos.Add(s.ApplyNanos)
	p.softStateNanos.Add(s.SoftStateNanos)
}

// WorkerStart marks one reconciliation as in flight and returns a done
// function; call it when the reconciliation finishes. The busy gauge and its
// peak let operators see how much of the configured fan-out is used.
func (p *Pipeline) WorkerStart() (done func()) {
	atomicMax(&p.busyPeak, p.busy.Add(1))
	return func() { p.busy.Add(-1) }
}

// PipelineSnapshot is a point-in-time copy of the pipeline counters.
type PipelineSnapshot struct {
	Reconciles     int64
	Candidates     int64
	ConflictPairs  int64
	ConflictsFound int64
	AppliedUpdates int64

	CheckTime     time.Duration // flatten + CheckState (Figure 4 lines 5-8)
	ConflictTime  time.Duration // FindConflicts (line 9)
	GroupTime     time.Duration // DoGroup (lines 10-12)
	ApplyTime     time.Duration // decision + apply loop (lines 13-19)
	SoftStateTime time.Duration // UpdateSoftState (lines 20-21)

	WorkersBusy     int64 // reconciliations in flight right now
	WorkersBusyPeak int64 // high-water mark since the counters were created

	DecisionFlushes  int64 // batched decision round trips issued
	DecisionsFlushed int64 // decisions carried by those round trips
	FlushPeak        int64 // most peers flushed in one round trip

	StreamPublishStable     int64         // publish-to-stable latencies observed
	StreamPublishStableTime time.Duration // their sum
	StreamPublishStableMax  time.Duration // and maximum
	StreamStableDecide      int64         // stable-to-decision latencies observed
	StreamStableDecideTime  time.Duration // their sum
	StreamStableDecideMax   time.Duration // and maximum
}

// Snapshot returns a consistent-enough copy of the counters (each field is
// read atomically; the set is not a single linearization point).
func (p *Pipeline) Snapshot() PipelineSnapshot {
	return PipelineSnapshot{
		Reconciles:       p.reconciles.Load(),
		Candidates:       p.candidates.Load(),
		ConflictPairs:    p.conflictPairs.Load(),
		ConflictsFound:   p.conflictsFound.Load(),
		AppliedUpdates:   p.appliedUpdates.Load(),
		CheckTime:        time.Duration(p.checkNanos.Load()),
		ConflictTime:     time.Duration(p.conflictNanos.Load()),
		GroupTime:        time.Duration(p.groupNanos.Load()),
		ApplyTime:        time.Duration(p.applyNanos.Load()),
		SoftStateTime:    time.Duration(p.softStateNanos.Load()),
		WorkersBusy:      p.busy.Load(),
		WorkersBusyPeak:  p.busyPeak.Load(),
		DecisionFlushes:  p.decisionFlushes.Load(),
		DecisionsFlushed: p.decisionsFlushed.Load(),
		FlushPeak:        p.flushPeak.Load(),

		StreamPublishStable:     p.pubStableCount.Load(),
		StreamPublishStableTime: time.Duration(p.pubStableNanos.Load()),
		StreamPublishStableMax:  time.Duration(p.pubStableMax.Load()),
		StreamStableDecide:      p.stableDecideCount.Load(),
		StreamStableDecideTime:  time.Duration(p.stableDecideNanos.Load()),
		StreamStableDecideMax:   time.Duration(p.stableDecideMax.Load()),
	}
}

// String renders the snapshot as a compact one-line summary.
func (s PipelineSnapshot) String() string {
	out := fmt.Sprintf(
		"reconciles=%d candidates=%d pairs=%d conflicts=%d applied=%d check=%s findconf=%s group=%s apply=%s soft=%s busy=%d peak=%d flushes=%d flushed=%d flushpeak=%d",
		s.Reconciles, s.Candidates, s.ConflictPairs, s.ConflictsFound, s.AppliedUpdates,
		s.CheckTime, s.ConflictTime, s.GroupTime, s.ApplyTime, s.SoftStateTime,
		s.WorkersBusy, s.WorkersBusyPeak, s.DecisionFlushes, s.DecisionsFlushed, s.FlushPeak)
	if s.StreamPublishStable > 0 || s.StreamStableDecide > 0 {
		out += fmt.Sprintf(" pub2stable=%d/%s(max %s) stable2decide=%d/%s(max %s)",
			s.StreamPublishStable, s.StreamPublishStableTime, s.StreamPublishStableMax,
			s.StreamStableDecide, s.StreamStableDecideTime, s.StreamStableDecideMax)
	}
	return out
}
