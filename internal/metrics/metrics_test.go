package metrics

import (
	"math"
	"testing"
	"time"

	"orchestra/internal/core"
)

func schema(t *testing.T) *core.Schema {
	t.Helper()
	return core.MustSchema(core.NewRelation("F", 2, "org", "prot", "fn"))
}

func inst(t *testing.T, s *core.Schema, tuples ...core.Tuple) *core.Instance {
	t.Helper()
	in := core.NewInstance(s)
	for _, tu := range tuples {
		if err := in.Apply(core.Insert("F", tu, "x")); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

func TestStateRatioIdenticalInstances(t *testing.T) {
	s := schema(t)
	a := inst(t, s, core.Strs("rat", "p1", "v"), core.Strs("mouse", "p2", "w"))
	b := inst(t, s, core.Strs("rat", "p1", "v"), core.Strs("mouse", "p2", "w"))
	if got := StateRatio([]*core.Instance{a, b}, "F"); got != 1 {
		t.Errorf("identical instances ratio = %v, want 1", got)
	}
}

func TestStateRatioFullyDivergent(t *testing.T) {
	s := schema(t)
	a := inst(t, s, core.Strs("rat", "p1", "va"))
	b := inst(t, s, core.Strs("rat", "p1", "vb"))
	c := inst(t, s, core.Strs("rat", "p1", "vc"))
	if got := StateRatio([]*core.Instance{a, b, c}, "F"); got != 3 {
		t.Errorf("divergent ratio = %v, want 3", got)
	}
}

func TestStateRatioAbsenceCounts(t *testing.T) {
	s := schema(t)
	a := inst(t, s, core.Strs("rat", "p1", "v"))
	b := inst(t, s) // empty: lacks the key entirely
	if got := StateRatio([]*core.Instance{a, b}, "F"); got != 2 {
		t.Errorf("absence ratio = %v, want 2 (value and absent)", got)
	}
}

func TestStateRatioMixedKeys(t *testing.T) {
	s := schema(t)
	// Key k1: both agree (1 state). Key k2: one value + one absent (2).
	a := inst(t, s, core.Strs("rat", "p1", "v"), core.Strs("mouse", "p2", "w"))
	b := inst(t, s, core.Strs("rat", "p1", "v"))
	want := (1.0 + 2.0) / 2.0
	if got := StateRatio([]*core.Instance{a, b}, "F"); math.Abs(got-want) > 1e-9 {
		t.Errorf("mixed ratio = %v, want %v", got, want)
	}
}

func TestStateRatioEmpty(t *testing.T) {
	s := schema(t)
	if got := StateRatio([]*core.Instance{inst(t, s), inst(t, s)}, "F"); got != 1 {
		t.Errorf("empty instances ratio = %v, want 1", got)
	}
	if got := StateRatio(nil, "F"); got != 0 {
		t.Errorf("no instances ratio = %v, want 0", got)
	}
}

func TestStateRatioDefaultsToAllRelations(t *testing.T) {
	s := core.MustSchema(
		core.NewRelation("A", 1, "k", "v"),
		core.NewRelation("B", 1, "k", "v"),
	)
	a := core.NewInstance(s)
	b := core.NewInstance(s)
	a.Apply(core.Insert("A", core.Strs("k1", "x"), "p"))
	b.Apply(core.Insert("B", core.Strs("k1", "y"), "p"))
	// Two keys (one per relation), each with states {value, absent} = 2.
	if got := StateRatio([]*core.Instance{a, b}); got != 2 {
		t.Errorf("ratio = %v, want 2", got)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{5}); s.N != 1 || s.Mean != 5 || s.CI95 != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Mean-5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean)
	}
	wantStd := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Errorf("std = %v, want %v", s.Std, wantStd)
	}
	// CI = t(7) * std / sqrt(8) with t(7) = 2.365.
	wantCI := 2.365 * wantStd / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Errorf("ci = %v, want %v", s.CI95, wantCI)
	}
	if s.String() == "" || Summarize([]float64{1}).String() == "" {
		t.Error("String renders empty")
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if math.Abs(s.Mean-2) > 1e-9 {
		t.Errorf("duration mean = %v", s.Mean)
	}
}

func TestTCritical(t *testing.T) {
	if tCritical(0) != 0 {
		t.Error("df 0")
	}
	if tCritical(1) != 12.706 {
		t.Error("df 1")
	}
	if tCritical(4) != 2.776 {
		t.Error("df 4 (the paper's 5-trial case)")
	}
	if tCritical(1000) != 1.96 {
		t.Error("large df should be normal")
	}
}
