// Package metrics implements the paper's evaluation metrics and the
// system's runtime observability counters.
//
// Evaluation side: the state ratio of §6 (the average number of distinct
// states across participants per key, including absence) and small-sample
// summary statistics with 95% confidence intervals, as reported in every
// figure.
//
// Runtime side: Pipeline aggregates reconciliation-stage latencies, work
// counts, the fan-out busy gauge, and the batched decision-flush shape
// across a System's rounds; StoreCounters tracks an update store's publish
// volume, internal lock contention, and decision round-trip economy. Both
// are safe for concurrent use and exported via System.Pipeline and the
// central store's Metrics.
package metrics

import (
	"fmt"
	"math"
	"time"

	"orchestra/internal/core"
)

// StateRatio computes the §6 metric over the participants' instances: for
// every key present in at least one instance, count the distinct states the
// participants hold for it — a state being the tuple value bound to the key
// or "absent" — and average over keys. It ranges from 1 (identical
// instances) to the number of participants (no overlap); lower means more
// shared data.
func StateRatio(instances []*core.Instance, rels ...string) float64 {
	if len(instances) == 0 {
		return 0
	}
	if len(rels) == 0 {
		rels = instances[0].Schema().Names()
	}
	type keyID struct{ rel, key string }
	states := make(map[keyID]map[string]bool)
	for _, in := range instances {
		for _, rel := range rels {
			for _, keyEnc := range in.Keys(rel) {
				k := keyID{rel: rel, key: keyEnc}
				if states[k] == nil {
					states[k] = make(map[string]bool)
				}
			}
		}
	}
	if len(states) == 0 {
		return 1
	}
	total := 0
	for k, set := range states {
		key, err := core.DecodeTuple(k.key)
		if err != nil {
			continue
		}
		for _, in := range instances {
			if t, ok := in.Lookup(k.rel, key); ok {
				set[t.Encode()] = true
			} else {
				set["\x00absent"] = true
			}
		}
		total += len(set)
	}
	return float64(total) / float64(len(states))
}

// Summary holds small-sample statistics of repeated trials.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation
	CI95 float64 // half-width of the 95% confidence interval
}

// Summarize computes mean, sample standard deviation, and the 95%
// confidence half-width using Student's t for small samples.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(n-1))
	return Summary{
		N:    n,
		Mean: mean,
		Std:  std,
		CI95: tCritical(n-1) * std / math.Sqrt(float64(n)),
	}
}

// SummarizeDurations is Summarize over time.Durations, in seconds.
func SummarizeDurations(ds []time.Duration) Summary {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return Summarize(out)
}

// String renders "mean ± ci".
func (s Summary) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.4g", s.Mean)
	}
	return fmt.Sprintf("%.4g ± %.2g", s.Mean, s.CI95)
}

// tCritical returns the two-sided 95% Student's t critical value for the
// given degrees of freedom.
func tCritical(df int) float64 {
	// Standard table for small df; converges to the normal 1.96.
	table := []float64{
		0,                                                             // df 0 (unused)
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
	}
	if df <= 0 {
		return 0
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}
