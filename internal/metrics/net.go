package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// RetryCounters aggregates the resilient client layer's behaviour: how many
// logical calls were issued, how many transport attempts they took, how
// much backoff was slept, and how calls ultimately failed. All methods are
// safe for concurrent use and nil-safe, so an uninstrumented policy can
// carry a nil *RetryCounters.
type RetryCounters struct {
	calls        atomic.Int64
	attempts     atomic.Int64
	retries      atomic.Int64
	backoffNanos atomic.Int64
	exhausted    atomic.Int64
	permanent    atomic.Int64
}

// ObserveCall counts one logical call entering the retry loop.
func (c *RetryCounters) ObserveCall() {
	if c == nil {
		return
	}
	c.calls.Add(1)
}

// ObserveAttempt counts one transport attempt.
func (c *RetryCounters) ObserveAttempt() {
	if c == nil {
		return
	}
	c.attempts.Add(1)
}

// ObserveRetry counts one retry and the backoff slept before it.
func (c *RetryCounters) ObserveRetry(backoff time.Duration) {
	if c == nil {
		return
	}
	c.retries.Add(1)
	c.backoffNanos.Add(int64(backoff))
}

// ObserveExhausted counts one call that failed after using up its attempt
// budget on transient errors.
func (c *RetryCounters) ObserveExhausted() {
	if c == nil {
		return
	}
	c.exhausted.Add(1)
}

// ObservePermanent counts one call that failed on a non-retryable error.
func (c *RetryCounters) ObservePermanent() {
	if c == nil {
		return
	}
	c.permanent.Add(1)
}

// RetrySnapshot is a point-in-time copy of RetryCounters.
type RetrySnapshot struct {
	Calls     int64         // logical calls issued
	Attempts  int64         // transport attempts (>= Calls)
	Retries   int64         // attempts beyond each call's first
	Backoff   time.Duration // total backoff slept
	Exhausted int64         // calls failed after the attempt budget
	Permanent int64         // calls failed on a non-retryable error
}

// Snapshot returns a copy of the counters (each field read atomically).
// A nil receiver yields the zero snapshot.
func (c *RetryCounters) Snapshot() RetrySnapshot {
	if c == nil {
		return RetrySnapshot{}
	}
	return RetrySnapshot{
		Calls:     c.calls.Load(),
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Backoff:   time.Duration(c.backoffNanos.Load()),
		Exhausted: c.exhausted.Load(),
		Permanent: c.permanent.Load(),
	}
}

// String renders the snapshot as a compact one-line summary.
func (s RetrySnapshot) String() string {
	return fmt.Sprintf("calls=%d attempts=%d retries=%d backoff=%s exhausted=%d permanent=%d",
		s.Calls, s.Attempts, s.Retries, s.Backoff, s.Exhausted, s.Permanent)
}
