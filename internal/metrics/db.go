package metrics

import (
	"fmt"
	"sync/atomic"
)

// DBCounters aggregates concurrency counters for the reldb storage engine:
// how many write transactions committed, how the WAL group-commit path
// batched them (the flush-economy signal — commits per flush is the
// group-commit win), and how often transactions had to wait for a table
// lock (the sharding signal — a hot counter means concurrent transactions
// fight over the same tables). All methods are safe for concurrent use and
// nil-safe, so an uninstrumented database can carry a nil *DBCounters.
type DBCounters struct {
	commits    atomic.Int64
	walAppends atomic.Int64

	groupFlushes   atomic.Int64
	groupedCommits atomic.Int64
	groupPeak      atomic.Int64

	tableWaits atomic.Int64
}

// ObserveCommit counts one committed write transaction.
func (c *DBCounters) ObserveCommit() {
	if c == nil {
		return
	}
	c.commits.Add(1)
}

// ObserveWALAppend counts one serially appended WAL record (the
// non-group-commit durable path).
func (c *DBCounters) ObserveWALAppend() {
	if c == nil {
		return
	}
	c.walAppends.Add(1)
}

// ObserveGroupFlush records one group-commit flush carrying commits
// transaction records in a single WAL write (and at most one
// fsync-equivalent).
func (c *DBCounters) ObserveGroupFlush(commits int) {
	if c == nil {
		return
	}
	c.groupFlushes.Add(1)
	c.groupedCommits.Add(int64(commits))
	atomicMax(&c.groupPeak, int64(commits))
}

// ObserveTableWait counts one transaction that had to wait for a table
// lock (the TryLock fast path failed).
func (c *DBCounters) ObserveTableWait() {
	if c == nil {
		return
	}
	c.tableWaits.Add(1)
}

// DBSnapshot is a point-in-time copy of DBCounters.
type DBSnapshot struct {
	Commits    int64 // committed write transactions
	WALAppends int64 // serial (non-grouped) WAL records appended

	GroupFlushes   int64 // group-commit flushes (one write + one sync each)
	GroupedCommits int64 // commits that rode a group flush
	GroupPeak      int64 // most commits carried by a single flush

	TableWaits int64 // table-lock acquisitions that had to wait
}

// Snapshot returns a copy of the counters (each field read atomically).
// A nil receiver yields the zero snapshot.
func (c *DBCounters) Snapshot() DBSnapshot {
	if c == nil {
		return DBSnapshot{}
	}
	return DBSnapshot{
		Commits:        c.commits.Load(),
		WALAppends:     c.walAppends.Load(),
		GroupFlushes:   c.groupFlushes.Load(),
		GroupedCommits: c.groupedCommits.Load(),
		GroupPeak:      c.groupPeak.Load(),
		TableWaits:     c.tableWaits.Load(),
	}
}

// String renders the snapshot as a compact one-line summary.
func (s DBSnapshot) String() string {
	return fmt.Sprintf(
		"commits=%d walappends=%d gflushes=%d gcommits=%d gpeak=%d tablewaits=%d",
		s.Commits, s.WALAppends, s.GroupFlushes, s.GroupedCommits, s.GroupPeak, s.TableWaits)
}
