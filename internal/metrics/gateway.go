package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// GatewayCounters aggregates the serving-surface health signals of the
// HTTP gateway: admission (requests started and finished, the in-flight
// gauge and its peak), protection (loads shed by the backpressure gate,
// requests bounced by the per-group rate limiter, auth rejections), and
// per-route latency. All methods are safe for concurrent use and nil-safe,
// so an uninstrumented gateway can carry a nil *GatewayCounters.
type GatewayCounters struct {
	requests     atomic.Int64
	inFlight     atomic.Int64
	inFlightPeak atomic.Int64

	shed        atomic.Int64
	rateLimited atomic.Int64
	authDenied  atomic.Int64

	mu     sync.Mutex
	routes map[string]*routeStat
}

// routeStat accumulates one route's latency distribution summary.
type routeStat struct {
	count   atomic.Int64
	errors  atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

// ObserveStart marks one admitted request entering a handler and returns
// the updated in-flight gauge.
func (c *GatewayCounters) ObserveStart() int64 {
	if c == nil {
		return 0
	}
	c.requests.Add(1)
	n := c.inFlight.Add(1)
	atomicMax(&c.inFlightPeak, n)
	return n
}

// ObserveEnd marks the request's handler finished: it drops the in-flight
// gauge and folds the route's latency (and error outcome) into the
// per-route stats.
func (c *GatewayCounters) ObserveEnd(route string, d time.Duration, failed bool) {
	if c == nil {
		return
	}
	c.inFlight.Add(-1)
	rs := c.route(route)
	rs.count.Add(1)
	if failed {
		rs.errors.Add(1)
	}
	rs.totalNs.Add(int64(d))
	atomicMax(&rs.maxNs, int64(d))
}

// ObserveShed counts one request shed by the backpressure gate.
func (c *GatewayCounters) ObserveShed() {
	if c == nil {
		return
	}
	c.shed.Add(1)
}

// ObserveRateLimited counts one request bounced by the rate limiter.
func (c *GatewayCounters) ObserveRateLimited() {
	if c == nil {
		return
	}
	c.rateLimited.Add(1)
}

// ObserveAuthDenied counts one request rejected by the auth hook.
func (c *GatewayCounters) ObserveAuthDenied() {
	if c == nil {
		return
	}
	c.authDenied.Add(1)
}

// InFlight returns the current in-flight gauge.
func (c *GatewayCounters) InFlight() int64 {
	if c == nil {
		return 0
	}
	return c.inFlight.Load()
}

func (c *GatewayCounters) route(name string) *routeStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.routes == nil {
		c.routes = make(map[string]*routeStat)
	}
	rs, ok := c.routes[name]
	if !ok {
		rs = &routeStat{}
		c.routes[name] = rs
	}
	return rs
}

// RouteSnapshot is a point-in-time latency summary for one route.
type RouteSnapshot struct {
	Route  string
	Count  int64
	Errors int64
	MeanNs int64
	MaxNs  int64
}

// GatewaySnapshot is a point-in-time copy of GatewayCounters.
type GatewaySnapshot struct {
	Requests     int64 // requests admitted past the protective gates
	InFlight     int64 // currently inside a handler
	InFlightPeak int64 // high-water mark of the in-flight gauge
	Shed         int64 // shed by queue-depth backpressure (503)
	RateLimited  int64 // bounced by the per-group token bucket (429)
	AuthDenied   int64 // rejected by the auth hook (401)
	Routes       []RouteSnapshot
}

// Snapshot returns a copy of the counters (each field read atomically; the
// route set under the registration lock). Routes come sorted by name for
// deterministic output.
func (c *GatewayCounters) Snapshot() GatewaySnapshot {
	if c == nil {
		return GatewaySnapshot{}
	}
	snap := GatewaySnapshot{
		Requests:     c.requests.Load(),
		InFlight:     c.inFlight.Load(),
		InFlightPeak: c.inFlightPeak.Load(),
		Shed:         c.shed.Load(),
		RateLimited:  c.rateLimited.Load(),
		AuthDenied:   c.authDenied.Load(),
	}
	c.mu.Lock()
	for name, rs := range c.routes {
		r := RouteSnapshot{
			Route:  name,
			Count:  rs.count.Load(),
			Errors: rs.errors.Load(),
			MaxNs:  rs.maxNs.Load(),
		}
		if r.Count > 0 {
			r.MeanNs = rs.totalNs.Load() / r.Count
		}
		snap.Routes = append(snap.Routes, r)
	}
	c.mu.Unlock()
	sort.Slice(snap.Routes, func(i, j int) bool { return snap.Routes[i].Route < snap.Routes[j].Route })
	return snap
}

// String renders the snapshot compactly for logs.
func (s GatewaySnapshot) String() string {
	return fmt.Sprintf("gateway{req=%d inflight=%d peak=%d shed=%d limited=%d denied=%d routes=%d}",
		s.Requests, s.InFlight, s.InFlightPeak, s.Shed, s.RateLimited, s.AuthDenied, len(s.Routes))
}
