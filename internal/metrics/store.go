package metrics

import (
	"fmt"
	"sync/atomic"
)

// atomicMax raises peak to at least v (lock-free, concurrent-safe); the
// shared high-water-mark primitive behind every peak gauge in this
// package.
func atomicMax(peak *atomic.Int64, v int64) {
	for {
		cur := peak.Load()
		if v <= cur || peak.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StoreCounters aggregates concurrency counters for an update store: how
// often the publish and reconcile paths contended on the store's internal
// locks (the sharding signal — a hot counter means the shards are too
// coarse) and how the batched decision-recording path is used (the
// round-trip signal — decisions per round trip is the batching win). All
// methods are safe for concurrent use and nil-safe, so an uninstrumented
// store can carry a nil *StoreCounters.
type StoreCounters struct {
	publishes       atomic.Int64
	epochContention atomic.Int64
	peerContention  atomic.Int64

	decisionTrips atomic.Int64
	decisionPeers atomic.Int64
	decisions     atomic.Int64
	batchPeak     atomic.Int64

	snapshots       atomic.Int64
	compactions     atomic.Int64
	compactedEpochs atomic.Int64

	dedupHits atomic.Int64

	trustRecompiles atomic.Int64

	// shards carries per-epoch-shard publish counters; sized once by
	// InitShards before the store goes concurrent, then only the atomics
	// move.
	shards []shardCounter
}

// shardCounter tracks one table shard: how many publish commits it served
// and how many of them arrived while another publish was already committing
// into the same shard (the serialization the sharding exists to avoid —
// a hot contended counter means epochs are hashing onto too few shards).
type shardCounter struct {
	publishes atomic.Int64
	contended atomic.Int64
	inflight  atomic.Int64
}

// InitShards sizes the per-shard counters. Call once, before any
// EnterShard/LeaveShard; nil-safe like every other method.
func (c *StoreCounters) InitShards(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.shards = make([]shardCounter, n)
}

// EnterShard records a publish commit entering table shard k, counting it
// as contended when another publish is already in flight on the same shard.
func (c *StoreCounters) EnterShard(k int) {
	if c == nil || k < 0 || k >= len(c.shards) {
		return
	}
	sh := &c.shards[k]
	sh.publishes.Add(1)
	if sh.inflight.Add(1) > 1 {
		sh.contended.Add(1)
	}
}

// LeaveShard records the publish commit leaving shard k.
func (c *StoreCounters) LeaveShard(k int) {
	if c == nil || k < 0 || k >= len(c.shards) {
		return
	}
	c.shards[k].inflight.Add(-1)
}

// ObservePublish counts one Publish call.
func (c *StoreCounters) ObservePublish() {
	if c == nil {
		return
	}
	c.publishes.Add(1)
}

// ObserveEpochContention counts one publisher that had to wait for the
// epoch-allocation critical section.
func (c *StoreCounters) ObserveEpochContention() {
	if c == nil {
		return
	}
	c.epochContention.Add(1)
}

// ObservePeerContention counts one caller that had to wait for a per-peer
// publish/reconcile shard lock.
func (c *StoreCounters) ObservePeerContention() {
	if c == nil {
		return
	}
	c.peerContention.Add(1)
}

// ObserveDecisionRoundTrip records one decision-recording round trip
// carrying the outcomes of peers reconciliations and decisions total
// accept/reject decisions.
func (c *StoreCounters) ObserveDecisionRoundTrip(peers, decisions int) {
	if c == nil {
		return
	}
	c.decisionTrips.Add(1)
	c.decisionPeers.Add(int64(peers))
	c.decisions.Add(int64(decisions))
	atomicMax(&c.batchPeak, int64(peers))
}

// ObserveDedupHit counts one idempotency-keyed call answered from the
// dedup record of an earlier delivery instead of re-executing — each hit is
// a duplicate that would have double-applied without the key.
func (c *StoreCounters) ObserveDedupHit() {
	if c == nil {
		return
	}
	c.dedupHits.Add(1)
}

// ObserveTrustRecompiles counts n effective-trust recompilations caused
// by one trust registration — the incremental re-evaluation cost of a
// mid-stream mapping change (1 for an isolated peer, more when other
// participants delegate to it, never the whole membership).
func (c *StoreCounters) ObserveTrustRecompiles(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.trustRecompiles.Add(int64(n))
}

// ObserveSnapshot counts one retained engine-state snapshot written.
func (c *StoreCounters) ObserveSnapshot() {
	if c == nil {
		return
	}
	c.snapshots.Add(1)
}

// ObserveCompaction counts one compaction pass that dropped the given
// number of epochs from the publish tables.
func (c *StoreCounters) ObserveCompaction(epochs int) {
	if c == nil {
		return
	}
	c.compactions.Add(1)
	c.compactedEpochs.Add(int64(epochs))
}

// StoreSnapshot is a point-in-time copy of StoreCounters.
type StoreSnapshot struct {
	Publishes       int64 // Publish calls
	EpochContention int64 // epoch-allocation lock waits
	PeerContention  int64 // per-peer shard lock waits

	DecisionRoundTrips int64 // decision-recording store calls
	DecisionPeers      int64 // reconciliation outcomes carried by those calls
	Decisions          int64 // individual accept/reject decisions recorded
	BatchPeak          int64 // most outcomes carried by a single round trip

	Snapshots       int64 // retained engine-state snapshots written
	Compactions     int64 // compaction passes that dropped rows
	CompactedEpochs int64 // epochs dropped from the publish tables

	DedupHits int64 // duplicate keyed deliveries answered from dedup state

	TrustRecompiles int64 // effective-trust recompilations across all registrations

	ShardPublishes  []int64 // publish commits per table shard (nil when unsharded)
	ShardContention []int64 // same-shard publish overlaps per table shard
}

// Snapshot returns a copy of the counters (each field read atomically).
// A nil receiver yields the zero snapshot.
func (c *StoreCounters) Snapshot() StoreSnapshot {
	if c == nil {
		return StoreSnapshot{}
	}
	snap := StoreSnapshot{
		Publishes:          c.publishes.Load(),
		EpochContention:    c.epochContention.Load(),
		PeerContention:     c.peerContention.Load(),
		DecisionRoundTrips: c.decisionTrips.Load(),
		DecisionPeers:      c.decisionPeers.Load(),
		Decisions:          c.decisions.Load(),
		BatchPeak:          c.batchPeak.Load(),
		Snapshots:          c.snapshots.Load(),
		Compactions:        c.compactions.Load(),
		CompactedEpochs:    c.compactedEpochs.Load(),
		DedupHits:          c.dedupHits.Load(),
		TrustRecompiles:    c.trustRecompiles.Load(),
	}
	if len(c.shards) > 0 {
		snap.ShardPublishes = make([]int64, len(c.shards))
		snap.ShardContention = make([]int64, len(c.shards))
		for i := range c.shards {
			snap.ShardPublishes[i] = c.shards[i].publishes.Load()
			snap.ShardContention[i] = c.shards[i].contended.Load()
		}
	}
	return snap
}

// ShardContentionTotal sums same-shard publish overlaps across all shards.
func (s StoreSnapshot) ShardContentionTotal() int64 {
	var n int64
	for _, v := range s.ShardContention {
		n += v
	}
	return n
}

// String renders the snapshot as a compact one-line summary.
func (s StoreSnapshot) String() string {
	return fmt.Sprintf(
		"publishes=%d epochwait=%d peerwait=%d dtrips=%d dpeers=%d decisions=%d batchpeak=%d shardwait=%d",
		s.Publishes, s.EpochContention, s.PeerContention,
		s.DecisionRoundTrips, s.DecisionPeers, s.Decisions, s.BatchPeak,
		s.ShardContentionTotal())
}
