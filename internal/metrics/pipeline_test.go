package metrics

import (
	"runtime"
	"sync"
	"testing"

	"orchestra/internal/core"
)

func TestPipelineObserve(t *testing.T) {
	var p Pipeline
	res := &core.Result{}
	res.Stats.Candidates = 3
	res.Stats.ConflictPairs = 2
	res.Stats.ConflictsFound = 1
	res.Stats.AppliedUpdates = 5
	res.Stats.CheckNanos = 100
	res.Stats.ConflictNanos = 50
	p.Observe(res)
	p.Observe(nil) // must be a no-op
	s := p.Snapshot()
	if s.Reconciles != 1 || s.Candidates != 3 || s.ConflictPairs != 2 ||
		s.ConflictsFound != 1 || s.AppliedUpdates != 5 {
		t.Errorf("snapshot counters: %+v", s)
	}
	if s.CheckTime != 100 || s.ConflictTime != 50 {
		t.Errorf("snapshot stage times: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestPipelineBusyGauge(t *testing.T) {
	var p Pipeline
	const n = 8
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := p.WorkerStart()
			<-gate
			done()
		}()
	}
	// Wait until all workers have registered, then release them.
	for p.Snapshot().WorkersBusy != n {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	s := p.Snapshot()
	if s.WorkersBusy != 0 {
		t.Errorf("busy = %d after all done", s.WorkersBusy)
	}
	if s.WorkersBusyPeak != n {
		t.Errorf("peak = %d, want %d", s.WorkersBusyPeak, n)
	}
}
