// Package simnet is an in-process request/response network fabric with
// configurable per-message latency, partition injection, and message/byte
// accounting. It implements rpc.Caller, so code written for the TCP
// transport runs over it unchanged.
//
// The paper's distributed-store experiments run "with a delay of at least
// 500 microseconds added to every message (and reply) transmission" (§6);
// simnet reproduces exactly that cost model while keeping experiments
// deterministic and single-process.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/rpc"
)

// DefaultLatency matches the paper's per-message delay.
const DefaultLatency = 500 * time.Microsecond

// ErrUnreachable is returned for calls to unknown or partitioned nodes.
var ErrUnreachable = errors.New("simnet: unreachable")

// Stats counts traffic on the fabric.
type Stats struct {
	messages atomic.Int64 // each request and each reply is one message
	bytes    atomic.Int64
}

// Messages returns the number of messages sent (requests + replies).
func (s *Stats) Messages() int64 { return s.messages.Load() }

// Bytes returns the total payload bytes carried.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.messages.Store(0)
	s.bytes.Store(0)
}

// Network is the fabric: a set of registered nodes plus the latency model.
type Network struct {
	mu          sync.RWMutex
	latency     time.Duration
	nodes       map[string]*Node
	partitioned map[string]bool
	stats       Stats
	// sleeper is replaceable for tests that must not consume wall-clock
	// time; it also lets the experiment harness charge latency virtually.
	sleeper func(time.Duration)
	// virtual accumulates charged latency when sleeping is disabled.
	virtual atomic.Int64
	// procCost is charged once per delivered request, modelling the
	// receiving node's per-request processing cost (deserialization,
	// dispatch, storage work) on testbeds where it is not negligible.
	procCost atomic.Int64
}

// New returns a fabric with the given per-message latency (DefaultLatency
// if zero).
func New(latency time.Duration) *Network {
	if latency <= 0 {
		latency = DefaultLatency
	}
	return &Network{
		latency:     latency,
		nodes:       make(map[string]*Node),
		partitioned: make(map[string]bool),
		sleeper:     time.Sleep,
	}
}

// NewVirtual returns a fabric that charges latency to a virtual clock
// instead of sleeping: experiments read the accumulated VirtualLatency and
// report it as network time without slowing the run down.
func NewVirtual(latency time.Duration) *Network {
	n := New(latency)
	n.sleeper = nil
	return n
}

// Latency returns the per-message latency.
func (n *Network) Latency() time.Duration { return n.latency }

// Stats returns the fabric's counters.
func (n *Network) Stats() *Stats { return &n.stats }

// VirtualLatency returns the total latency charged on a virtual fabric.
func (n *Network) VirtualLatency() time.Duration {
	return time.Duration(n.virtual.Load())
}

// SetProcessingCost sets the per-delivered-request processing charge.
func (n *Network) SetProcessingCost(d time.Duration) {
	n.procCost.Store(int64(d))
}

// Node registers (or replaces) a node at the address with the handler and
// returns it.
func (n *Network) Node(addr string, h rpc.Handler) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := &Node{net: n, addr: addr}
	node.handler.Store(&h)
	n.nodes[addr] = node
	return node
}

// Remove unregisters a node.
func (n *Network) Remove(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// Partition isolates an address: calls to or from it fail.
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[addr] = true
}

// Heal reconnects a partitioned address.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, addr)
}

// lookup returns the target node, honouring partitions.
func (n *Network) lookup(from, to string) (*Node, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.partitioned[from] || n.partitioned[to] {
		return nil, fmt.Errorf("%w: %s -> %s (partitioned)", ErrUnreachable, from, to)
	}
	node, ok := n.nodes[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	return node, nil
}

// charge accounts one message of the given size and applies latency.
func (n *Network) charge(size int) {
	n.stats.messages.Add(1)
	n.stats.bytes.Add(int64(size))
	if n.sleeper != nil {
		n.sleeper(n.latency)
	} else {
		n.virtual.Add(int64(n.latency))
	}
}

// Node is one endpoint on the fabric.
type Node struct {
	net     *Network
	addr    string
	handler atomic.Pointer[rpc.Handler]
}

// Addr returns the node's address.
func (nd *Node) Addr() string { return nd.addr }

// Handle replaces the node's handler.
func (nd *Node) Handle(h rpc.Handler) { nd.handler.Store(&h) }

// Call implements rpc.Caller: it charges a request message, invokes the
// target handler, and charges the reply message.
func (nd *Node) Call(ctx context.Context, to, method string, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	target, err := nd.net.lookup(nd.addr, to)
	if err != nil {
		return nil, err
	}
	nd.net.charge(len(body) + len(method))
	h := target.handler.Load()
	if h == nil {
		return nil, fmt.Errorf("%w: %s has no handler", ErrUnreachable, to)
	}
	if pc := nd.net.procCost.Load(); pc > 0 {
		if nd.net.sleeper != nil {
			nd.net.sleeper(time.Duration(pc))
		} else {
			nd.net.virtual.Add(pc)
		}
	}
	resp, herr := (*h).ServeRPC(rpc.Request{From: nd.addr, Method: method, Body: body})
	nd.net.charge(len(resp))
	if herr != nil {
		return nil, herr
	}
	return resp, nil
}
