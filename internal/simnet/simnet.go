// Package simnet is an in-process request/response network fabric with
// configurable per-message latency, fault injection, and message/byte
// accounting. It implements rpc.Caller, so code written for the TCP
// transport runs over it unchanged.
//
// The paper's distributed-store experiments run "with a delay of at least
// 500 microseconds added to every message (and reply) transmission" (§6);
// simnet reproduces exactly that cost model while keeping experiments
// deterministic and single-process.
//
// # Fault injection
//
// Beyond the base latency, the fabric can inject seeded-deterministic
// faults per link (SetFaults for a fabric-wide default, SetLinkFaults per
// directed link): message loss — applied independently to requests and
// replies, so a lost reply leaves a handler's side effect committed while
// the caller sees a timeout — duplicate delivery, latency jitter, one-way
// partitions (PartitionOneWay), and whole-node crash/restart (Crash,
// Restart). All randomness derives from the fabric seed and the link's
// endpoints, so a seeded run replays the same fault schedule per link.
// FaultStats counts every injected fault.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/rpc"
)

// DefaultLatency matches the paper's per-message delay.
const DefaultLatency = 500 * time.Microsecond

// ErrUnreachable is returned for calls to unknown, partitioned, or crashed
// nodes: the request demonstrably never reached the target, so callers may
// retry any operation safely.
var ErrUnreachable = errors.New("simnet: unreachable")

// ErrTimeout is returned when an injected fault swallowed the request or
// its reply. From the caller's point of view the call timed out with no way
// to know whether the handler ran — retrying is only safe for idempotent
// (or idempotency-keyed) operations.
var ErrTimeout = errors.New("simnet: call timed out (message lost)")

// Stats counts traffic on the fabric.
type Stats struct {
	messages atomic.Int64 // each request and each reply is one message
	bytes    atomic.Int64
}

// Messages returns the number of messages sent (requests + replies).
func (s *Stats) Messages() int64 { return s.messages.Load() }

// Bytes returns the total payload bytes carried.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// Reset zeroes the counters.
func (s *Stats) Reset() {
	s.messages.Store(0)
	s.bytes.Store(0)
}

// Faults configures probabilistic fault injection. The zero value injects
// nothing.
type Faults struct {
	// Loss is the per-message drop probability, applied independently to
	// the request and the reply of each call. A dropped request never
	// reaches the handler; a dropped reply discards the response of a
	// handler that did run — the case that makes blind retry unsafe.
	Loss float64
	// Dup is the per-call duplicate-delivery probability: the handler runs
	// a second time with the same request and the caller sees only the
	// first response.
	Dup float64
	// Jitter adds a uniformly distributed extra latency in [0, Jitter] to
	// each message on top of the fabric's base latency.
	Jitter time.Duration
}

// active reports whether any fault is configured.
func (f Faults) active() bool { return f.Loss > 0 || f.Dup > 0 || f.Jitter > 0 }

// FaultStats counts injected faults; all methods are concurrency-safe.
type FaultStats struct {
	lostRequests   atomic.Int64
	lostReplies    atomic.Int64
	duplicates     atomic.Int64
	jitterNanos    atomic.Int64
	crashDrops     atomic.Int64
	partitionDrops atomic.Int64
}

// LostRequests returns the number of requests dropped before delivery.
func (f *FaultStats) LostRequests() int64 { return f.lostRequests.Load() }

// LostReplies returns the number of replies dropped after the handler ran.
func (f *FaultStats) LostReplies() int64 { return f.lostReplies.Load() }

// Duplicates returns the number of duplicate deliveries performed.
func (f *FaultStats) Duplicates() int64 { return f.duplicates.Load() }

// Jitter returns the total extra latency injected.
func (f *FaultStats) Jitter() time.Duration { return time.Duration(f.jitterNanos.Load()) }

// CrashDrops returns the number of calls refused because an endpoint was
// crashed.
func (f *FaultStats) CrashDrops() int64 { return f.crashDrops.Load() }

// PartitionDrops returns the number of calls refused by a (one- or two-way)
// partition.
func (f *FaultStats) PartitionDrops() int64 { return f.partitionDrops.Load() }

// Lost returns the total messages dropped (requests + replies).
func (f *FaultStats) Lost() int64 { return f.lostRequests.Load() + f.lostReplies.Load() }

// linkKey identifies a directed link.
type linkKey struct{ from, to string }

// Network is the fabric: a set of registered nodes plus the latency and
// fault models.
type Network struct {
	mu          sync.RWMutex
	latency     time.Duration
	nodes       map[string]*Node
	partitioned map[string]bool
	oneway      map[linkKey]bool
	crashed     map[string]bool
	stats       Stats
	// sleeper is replaceable for tests that must not consume wall-clock
	// time; it also lets the experiment harness charge latency virtually.
	sleeper func(time.Duration)
	// virtual accumulates charged latency when sleeping is disabled.
	virtual atomic.Int64
	// procCost is charged once per delivered request, modelling the
	// receiving node's per-request processing cost (deserialization,
	// dispatch, storage work) on testbeds where it is not negligible.
	procCost atomic.Int64

	// faultMu guards the fault policy and the per-link generators; every
	// call's fault plan is drawn in one critical section, so per-link draw
	// sequences are deterministic for a given seed and call order.
	faultMu       sync.Mutex
	seed          int64
	defaultFaults Faults
	linkFaults    map[linkKey]Faults
	linkRngs      map[linkKey]*rand.Rand
	fstats        FaultStats
}

// New returns a fabric with the given per-message latency (DefaultLatency
// if zero).
func New(latency time.Duration) *Network {
	if latency <= 0 {
		latency = DefaultLatency
	}
	return &Network{
		latency:     latency,
		nodes:       make(map[string]*Node),
		partitioned: make(map[string]bool),
		oneway:      make(map[linkKey]bool),
		crashed:     make(map[string]bool),
		sleeper:     time.Sleep,
		linkFaults:  make(map[linkKey]Faults),
		linkRngs:    make(map[linkKey]*rand.Rand),
	}
}

// NewVirtual returns a fabric that charges latency to a virtual clock
// instead of sleeping: experiments read the accumulated VirtualLatency and
// report it as network time without slowing the run down.
func NewVirtual(latency time.Duration) *Network {
	n := New(latency)
	n.sleeper = nil
	return n
}

// Latency returns the per-message latency.
func (n *Network) Latency() time.Duration { return n.latency }

// Stats returns the fabric's counters.
func (n *Network) Stats() *Stats { return &n.stats }

// FaultStats returns the fabric's fault counters.
func (n *Network) FaultStats() *FaultStats { return &n.fstats }

// VirtualLatency returns the total latency charged on a virtual fabric.
func (n *Network) VirtualLatency() time.Duration {
	return time.Duration(n.virtual.Load())
}

// SetProcessingCost sets the per-delivered-request processing charge.
func (n *Network) SetProcessingCost(d time.Duration) {
	n.procCost.Store(int64(d))
}

// Seed fixes the fault-randomness seed and resets every link's generator;
// a seeded fabric replays the same per-link fault schedule for the same
// call order.
func (n *Network) Seed(seed int64) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	n.seed = seed
	n.linkRngs = make(map[linkKey]*rand.Rand)
}

// SetFaults sets the fabric-wide default fault policy (overridden per link
// by SetLinkFaults).
func (n *Network) SetFaults(f Faults) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	n.defaultFaults = f
}

// SetLinkFaults sets the fault policy of the directed link from → to,
// overriding the fabric-wide default.
func (n *Network) SetLinkFaults(from, to string, f Faults) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	n.linkFaults[linkKey{from, to}] = f
}

// Node registers (or replaces) a node at the address with the handler and
// returns it.
func (n *Network) Node(addr string, h rpc.Handler) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	node := &Node{net: n, addr: addr}
	node.handler.Store(&h)
	n.nodes[addr] = node
	return node
}

// Remove unregisters a node.
func (n *Network) Remove(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, addr)
}

// Partition isolates an address: calls to or from it fail.
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[addr] = true
}

// Heal reconnects a partitioned address.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, addr)
}

// PartitionOneWay blocks the directed link from → to only; traffic in the
// opposite direction still flows.
func (n *Network) PartitionOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.oneway[linkKey{from, to}] = true
}

// HealOneWay unblocks the directed link from → to.
func (n *Network) HealOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.oneway, linkKey{from, to})
}

// Crash marks the node at addr as down: calls to or from it fail with
// ErrUnreachable until Restart. Unlike Remove, the node stays registered,
// modelling a process crash rather than a departure.
func (n *Network) Crash(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[addr] = true
}

// Restart brings a crashed node back.
func (n *Network) Restart(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, addr)
}

// lookup returns the target node, honouring crashes and partitions.
func (n *Network) lookup(from, to string) (*Node, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.crashed[from] || n.crashed[to] {
		n.fstats.crashDrops.Add(1)
		return nil, fmt.Errorf("%w: %s -> %s (node crashed)", ErrUnreachable, from, to)
	}
	if n.partitioned[from] || n.partitioned[to] {
		n.fstats.partitionDrops.Add(1)
		return nil, fmt.Errorf("%w: %s -> %s (partitioned)", ErrUnreachable, from, to)
	}
	if n.oneway[linkKey{from, to}] {
		n.fstats.partitionDrops.Add(1)
		return nil, fmt.Errorf("%w: %s -> %s (one-way partition)", ErrUnreachable, from, to)
	}
	node, ok := n.nodes[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	return node, nil
}

// faultPlan is the complete set of fault decisions for one call, drawn up
// front in a single critical section so per-link randomness stays
// deterministic however the call interleaves with handler execution.
type faultPlan struct {
	reqDelay   time.Duration
	replyDelay time.Duration
	dropReq    bool
	dropReply  bool
	dup        bool
}

// plan draws the fault plan for one call on the directed link from → to.
func (n *Network) plan(from, to string) faultPlan {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	f, ok := n.linkFaults[linkKey{from, to}]
	if !ok {
		f = n.defaultFaults
	}
	if !f.active() {
		return faultPlan{}
	}
	k := linkKey{from, to}
	rng := n.linkRngs[k]
	if rng == nil {
		h := fnv.New64a()
		h.Write([]byte(from))
		h.Write([]byte{0})
		h.Write([]byte(to))
		rng = rand.New(rand.NewSource(n.seed ^ int64(h.Sum64())))
		n.linkRngs[k] = rng
	}
	var p faultPlan
	if f.Jitter > 0 {
		p.reqDelay = time.Duration(rng.Int63n(int64(f.Jitter) + 1))
		p.replyDelay = time.Duration(rng.Int63n(int64(f.Jitter) + 1))
	}
	if f.Loss > 0 {
		p.dropReq = rng.Float64() < f.Loss
		p.dropReply = rng.Float64() < f.Loss
	}
	if f.Dup > 0 {
		p.dup = rng.Float64() < f.Dup
	}
	return p
}

// charge accounts one message of the given size and applies latency.
func (n *Network) charge(size int) {
	n.stats.messages.Add(1)
	n.stats.bytes.Add(int64(size))
	n.delay(n.latency)
}

// delay sleeps (or charges virtually) the given duration.
func (n *Network) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	if n.sleeper != nil {
		n.sleeper(d)
	} else {
		n.virtual.Add(int64(d))
	}
}

// jitter charges injected extra latency and counts it.
func (n *Network) jitter(d time.Duration) {
	if d <= 0 {
		return
	}
	n.fstats.jitterNanos.Add(int64(d))
	n.delay(d)
}

// Node is one endpoint on the fabric.
type Node struct {
	net     *Network
	addr    string
	handler atomic.Pointer[rpc.Handler]
}

// Addr returns the node's address.
func (nd *Node) Addr() string { return nd.addr }

// Handle replaces the node's handler.
func (nd *Node) Handle(h rpc.Handler) { nd.handler.Store(&h) }

// Call implements rpc.Caller: it charges a request message, invokes the
// target handler, and charges the reply message — subject to the link's
// fault plan. A lost request returns ErrTimeout without running the
// handler; a lost reply returns ErrTimeout after the handler ran (its side
// effects stand); a duplicated call runs the handler twice and returns the
// first response.
func (nd *Node) Call(ctx context.Context, to, method string, body []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	target, err := nd.net.lookup(nd.addr, to)
	if err != nil {
		return nil, err
	}
	p := nd.net.plan(nd.addr, to)
	nd.net.charge(len(body) + len(method))
	nd.net.jitter(p.reqDelay)
	if p.dropReq {
		nd.net.fstats.lostRequests.Add(1)
		return nil, fmt.Errorf("%w: request %s -> %s %s", ErrTimeout, nd.addr, to, method)
	}
	h := target.handler.Load()
	if h == nil {
		return nil, fmt.Errorf("%w: %s has no handler", ErrUnreachable, to)
	}
	if pc := nd.net.procCost.Load(); pc > 0 {
		nd.net.delay(time.Duration(pc))
	}
	req := rpc.Request{From: nd.addr, Method: method, Body: body}
	resp, herr := (*h).ServeRPC(ctx, req)
	if p.dup {
		// Duplicate delivery: the same request reaches the handler again;
		// whatever it returns is discarded. Idempotency-keyed backends
		// dedupe it, anything else sees a true duplicate.
		nd.net.fstats.duplicates.Add(1)
		_, _ = (*h).ServeRPC(ctx, req)
	}
	nd.net.charge(len(resp))
	nd.net.jitter(p.replyDelay)
	if p.dropReply {
		nd.net.fstats.lostReplies.Add(1)
		return nil, fmt.Errorf("%w: reply %s -> %s %s", ErrTimeout, to, nd.addr, method)
	}
	if herr != nil {
		return nil, herr
	}
	return resp, nil
}
