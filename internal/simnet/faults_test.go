package simnet

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/rpc"
)

// countingHandler counts invocations and echoes the body.
type countingHandler struct{ runs atomic.Int64 }

func (h *countingHandler) ServeRPC(_ context.Context, req rpc.Request) ([]byte, error) {
	h.runs.Add(1)
	return req.Body, nil
}

func faultFabric(t *testing.T, seed int64, f Faults) (*Network, *Node, *countingHandler) {
	t.Helper()
	net := NewVirtual(time.Microsecond)
	net.Seed(seed)
	net.SetFaults(f)
	h := &countingHandler{}
	net.Node("b", h)
	a := net.Node("a", nil)
	return net, a, h
}

// TestFaultLossAccounting: under message loss, every call is accounted for
// exactly once — success, lost request, or lost reply — and the handler ran
// for exactly the calls whose request got through. Lost replies leave the
// handler's side effect committed: that count must be > 0 at 50% loss, the
// property that makes blind retry unsafe.
func TestFaultLossAccounting(t *testing.T) {
	const calls = 200
	net, a, h := faultFabric(t, 42, Faults{Loss: 0.5})
	ctx := context.Background()
	succ := 0
	for i := 0; i < calls; i++ {
		if _, err := a.Call(ctx, "b", "m", []byte("x")); err == nil {
			succ++
		} else if !errors.Is(err, ErrTimeout) {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	fs := net.FaultStats()
	if got := succ + int(fs.LostRequests()) + int(fs.LostReplies()); got != calls {
		t.Errorf("accounting: %d successes + %d lostReq + %d lostReply != %d calls",
			succ, fs.LostRequests(), fs.LostReplies(), calls)
	}
	if got, want := h.runs.Load(), int64(calls)-fs.LostRequests(); got != want {
		t.Errorf("handler ran %d times, want %d (calls - lost requests)", got, want)
	}
	if fs.LostReplies() == 0 {
		t.Error("no lost replies at 50% loss — the retry-unsafe case went unexercised")
	}
	if fs.LostRequests() == 0 || succ == 0 {
		t.Errorf("degenerate split: %d successes, %d lost requests", succ, fs.LostRequests())
	}
}

// TestFaultSeedDeterminism: the same seed and call order replay the same
// per-call outcome sequence; a different seed diverges.
func TestFaultSeedDeterminism(t *testing.T) {
	outcomes := func(seed int64) []bool {
		_, a, _ := faultFabric(t, seed, Faults{Loss: 0.3})
		out := make([]bool, 100)
		for i := range out {
			_, err := a.Call(context.Background(), "b", "m", nil)
			out[i] = err == nil
		}
		return out
	}
	x, y := outcomes(7), outcomes(7)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	z := outcomes(8)
	same := true
	for i := range x {
		if x[i] != z[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 100-call schedules")
	}
}

// TestFaultDuplicateDelivery: Dup = 1 runs the handler twice per call while
// the caller sees exactly one (the first) response.
func TestFaultDuplicateDelivery(t *testing.T) {
	const calls = 20
	net, a, h := faultFabric(t, 1, Faults{Dup: 1})
	for i := 0; i < calls; i++ {
		resp, err := a.Call(context.Background(), "b", "m", []byte("payload"))
		if err != nil || string(resp) != "payload" {
			t.Fatalf("call %d: %v %q", i, err, resp)
		}
	}
	if got := h.runs.Load(); got != 2*calls {
		t.Errorf("handler ran %d times, want %d", got, 2*calls)
	}
	if got := net.FaultStats().Duplicates(); got != calls {
		t.Errorf("Duplicates() = %d, want %d", got, calls)
	}
}

// TestFaultJitter: injected jitter is charged to the (virtual) clock and
// counted, on top of the base per-message latency.
func TestFaultJitter(t *testing.T) {
	net, a, _ := faultFabric(t, 3, Faults{Jitter: time.Millisecond})
	const calls = 50
	for i := 0; i < calls; i++ {
		if _, err := a.Call(context.Background(), "b", "m", nil); err != nil {
			t.Fatal(err)
		}
	}
	fs := net.FaultStats()
	if fs.Jitter() <= 0 {
		t.Fatal("no jitter charged")
	}
	base := time.Duration(2*calls) * time.Microsecond // request + reply per call
	if got := net.VirtualLatency(); got != base+fs.Jitter() {
		t.Errorf("virtual clock %v != base %v + jitter %v", got, base, fs.Jitter())
	}
}

// TestOneWayPartition blocks one direction only and heals.
func TestOneWayPartition(t *testing.T) {
	net := NewVirtual(time.Microsecond)
	echo := rpc.HandlerFunc(func(_ context.Context, req rpc.Request) ([]byte, error) {
		return req.Body, nil
	})
	a := net.Node("a", echo)
	b := net.Node("b", echo)
	net.PartitionOneWay("a", "b")

	if _, err := a.Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("a->b through one-way partition: %v", err)
	}
	if _, err := b.Call(context.Background(), "a", "m", nil); err != nil {
		t.Errorf("b->a should flow: %v", err)
	}
	if got := net.FaultStats().PartitionDrops(); got != 1 {
		t.Errorf("PartitionDrops() = %d, want 1", got)
	}
	net.HealOneWay("a", "b")
	if _, err := a.Call(context.Background(), "b", "m", nil); err != nil {
		t.Errorf("a->b after heal: %v", err)
	}
}

// TestCrashRestart: a crashed node refuses traffic in both roles until
// restarted, without losing its registration.
func TestCrashRestart(t *testing.T) {
	net := NewVirtual(time.Microsecond)
	echo := rpc.HandlerFunc(func(_ context.Context, req rpc.Request) ([]byte, error) {
		return req.Body, nil
	})
	a := net.Node("a", echo)
	b := net.Node("b", echo)
	net.Crash("b")

	if _, err := a.Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to crashed node: %v", err)
	}
	if _, err := b.Call(context.Background(), "a", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call from crashed node: %v", err)
	}
	if got := net.FaultStats().CrashDrops(); got != 2 {
		t.Errorf("CrashDrops() = %d, want 2", got)
	}
	net.Restart("b")
	if _, err := a.Call(context.Background(), "b", "m", []byte("back")); err != nil {
		t.Errorf("call after restart: %v", err)
	}
}

// TestLinkFaultsOverride: per-link faults override the fabric default and
// stay confined to their directed link.
func TestLinkFaultsOverride(t *testing.T) {
	net := NewVirtual(time.Microsecond)
	net.Seed(5)
	echo := rpc.HandlerFunc(func(_ context.Context, req rpc.Request) ([]byte, error) {
		return req.Body, nil
	})
	a := net.Node("a", echo)
	net.Node("b", echo)
	net.Node("c", echo)
	net.SetLinkFaults("a", "b", Faults{Loss: 1})

	for i := 0; i < 10; i++ {
		if _, err := a.Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrTimeout) {
			t.Fatalf("a->b with Loss=1: %v", err)
		}
		if _, err := a.Call(context.Background(), "c", "m", nil); err != nil {
			t.Fatalf("a->c must stay fault-free: %v", err)
		}
	}
	if got := net.FaultStats().LostRequests(); got != 10 {
		t.Errorf("LostRequests() = %d, want 10", got)
	}
}

// TestRetryOverFaultyFabric wires rpc.WithRetry over a lossy link: with
// enough attempts every call eventually lands, exercising the
// fabric-and-retry stack the chaos tests build on.
func TestRetryOverFaultyFabric(t *testing.T) {
	_, a, h := faultFabric(t, 11, Faults{Loss: 0.4})
	c := rpc.WithRetry(a, rpc.RetryPolicy{
		MaxAttempts: 25,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Classify:    func(err error) bool { return errors.Is(err, ErrTimeout) },
	})
	for i := 0; i < 50; i++ {
		resp, err := c.Call(context.Background(), "b", "m", []byte("x"))
		if err != nil || string(resp) != "x" {
			t.Fatalf("call %d: %v %q", i, err, resp)
		}
	}
	if h.runs.Load() <= 50 {
		t.Error("no retries happened at 40% loss — fault injection inert?")
	}
}
