package simnet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"orchestra/internal/rpc"
)

func echoHandler(_ context.Context, req rpc.Request) ([]byte, error) {
	return append([]byte(req.Method+":"), req.Body...), nil
}

func TestCallRoundTrip(t *testing.T) {
	net := NewVirtual(DefaultLatency)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	resp, err := a.Call(context.Background(), "b", "ping", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping:x" {
		t.Errorf("resp = %q", resp)
	}
	if a.Addr() != "a" {
		t.Errorf("Addr = %q", a.Addr())
	}
}

func TestStatsAndVirtualLatency(t *testing.T) {
	net := NewVirtual(time.Millisecond)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	net.Stats().Reset()
	for i := 0; i < 5; i++ {
		if _, err := a.Call(context.Background(), "b", "m", []byte("1234")); err != nil {
			t.Fatal(err)
		}
	}
	if got := net.Stats().Messages(); got != 10 {
		t.Errorf("messages = %d, want 10 (5 requests + 5 replies)", got)
	}
	if got := net.Stats().Bytes(); got == 0 {
		t.Error("bytes not counted")
	}
	if got := net.VirtualLatency(); got != 10*time.Millisecond {
		t.Errorf("virtual latency = %v, want 10ms", got)
	}
	if net.Latency() != time.Millisecond {
		t.Errorf("Latency = %v", net.Latency())
	}
}

func TestProcessingCostCharged(t *testing.T) {
	net := NewVirtual(time.Millisecond)
	net.SetProcessingCost(4 * time.Millisecond)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	if _, err := a.Call(context.Background(), "b", "m", nil); err != nil {
		t.Fatal(err)
	}
	// 2 messages × 1ms wire + 1 delivered request × 4ms processing.
	if got := net.VirtualLatency(); got != 6*time.Millisecond {
		t.Errorf("virtual = %v, want 6ms", got)
	}
}

func TestRealSleepLatency(t *testing.T) {
	net := New(200 * time.Microsecond)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", "m", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Microsecond {
		t.Errorf("elapsed %v, want >= 400us (request + reply)", elapsed)
	}
}

func TestUnknownNode(t *testing.T) {
	net := NewVirtual(0)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	if _, err := a.Call(context.Background(), "ghost", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := NewVirtual(0)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	net.Partition("b")
	if _, err := a.Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("partitioned call: %v", err)
	}
	// Partitioning the caller blocks it too.
	net.Heal("b")
	net.Partition("a")
	if _, err := a.Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("partitioned caller: %v", err)
	}
	net.Heal("a")
	if _, err := a.Call(context.Background(), "b", "m", nil); err != nil {
		t.Errorf("healed call: %v", err)
	}
}

func TestRemove(t *testing.T) {
	net := NewVirtual(0)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	net.Remove("b")
	if _, err := a.Call(context.Background(), "b", "m", nil); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call to removed node: %v", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	net := NewVirtual(0)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(func(context.Context, rpc.Request) ([]byte, error) {
		return nil, fmt.Errorf("handler failure")
	}))
	_, err := a.Call(context.Background(), "b", "m", nil)
	if err == nil || err.Error() != "handler failure" {
		t.Errorf("err = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	net := NewVirtual(0)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	net.Node("b", rpc.HandlerFunc(echoHandler))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Call(ctx, "b", "m", nil); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestHandleReplacement(t *testing.T) {
	net := NewVirtual(0)
	a := net.Node("a", rpc.HandlerFunc(echoHandler))
	b := net.Node("b", rpc.HandlerFunc(echoHandler))
	b.Handle(rpc.HandlerFunc(func(_ context.Context, req rpc.Request) ([]byte, error) {
		return []byte("replaced:" + req.From), nil
	}))
	resp, err := a.Call(context.Background(), "b", "m", nil)
	if err != nil || string(resp) != "replaced:a" {
		t.Errorf("resp = %q, err = %v", resp, err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := NewVirtual(0)
	var mu sync.Mutex
	seen := map[string]int{}
	net.Node("server", rpc.HandlerFunc(func(_ context.Context, req rpc.Request) ([]byte, error) {
		mu.Lock()
		seen[req.From]++
		mu.Unlock()
		return req.Body, nil
	}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		addr := fmt.Sprintf("client-%d", i)
		node := net.Node(addr, rpc.HandlerFunc(echoHandler))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := node.Call(context.Background(), "server", "m", []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 8 {
		t.Errorf("seen %d clients", len(seen))
	}
	for from, n := range seen {
		if n != 50 {
			t.Errorf("%s: %d calls", from, n)
		}
	}
}

func TestMuxDispatch(t *testing.T) {
	mux := rpc.NewMux()
	mux.Handle("x", func(context.Context, rpc.Request) ([]byte, error) { return []byte("X"), nil })
	mux.Handle("y", func(context.Context, rpc.Request) ([]byte, error) { return []byte("Y"), nil })
	net := NewVirtual(0)
	a := net.Node("a", mux)
	net.Node("b", mux)
	resp, err := a.Call(context.Background(), "b", "x", nil)
	if err != nil || string(resp) != "X" {
		t.Errorf("x: %q %v", resp, err)
	}
	if _, err := a.Call(context.Background(), "b", "nope", nil); err == nil {
		t.Error("unknown method should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Handle should panic")
		}
	}()
	mux.Handle("x", func(context.Context, rpc.Request) ([]byte, error) { return nil, nil })
}

func TestInvokeEncodeDecode(t *testing.T) {
	type args struct{ A, B int }
	type reply struct{ Sum int }
	mux := rpc.NewMux()
	mux.Handle("add", func(_ context.Context, req rpc.Request) ([]byte, error) {
		var a args
		if err := rpc.Decode(req.Body, &a); err != nil {
			return nil, err
		}
		return rpc.Encode(reply{Sum: a.A + a.B})
	})
	net := NewVirtual(0)
	caller := net.Node("c", rpc.HandlerFunc(echoHandler))
	net.Node("s", mux)
	var out reply
	if err := rpc.Invoke(context.Background(), caller, "s", "add", args{2, 3}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sum != 5 {
		t.Errorf("sum = %d", out.Sum)
	}
	// nil args and nil reply paths.
	mux.Handle("noop", func(context.Context, rpc.Request) ([]byte, error) { return nil, nil })
	if err := rpc.Invoke(context.Background(), caller, "s", "noop", nil, nil); err != nil {
		t.Fatal(err)
	}
}
