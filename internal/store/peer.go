package store

import (
	"context"
	"sync"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/trust"
)

// Peer couples a reconciliation engine with an update store and drives the
// publish/reconcile cycle, splitting elapsed time into store time (update
// store interactions, including network) and local time (the reconciliation
// algorithm itself) — the breakdown reported in Figures 10 and 12.
//
// The peer's mutating methods are serialized by an internal mutex so the
// streaming reconcile loop (ReconcileStream, stream.go) can run concurrently
// with Edit/Publish calls from the application. Direct engine and instance
// access (Engine, Instance) is NOT synchronized — inspect them only while no
// stream is running or after it has quiesced.
type Peer struct {
	// mu serializes the peer's engine and store interactions: local edits,
	// publishes, and reconciliations (round-based or streaming).
	mu      sync.Mutex
	engine  *core.Engine
	store   Store
	pending []PublishedTxn

	storeTime time.Duration
	localTime time.Duration

	// streaming is set while ReconcileStream runs; Publish then stamps each
	// published epoch so the stream can report publish-to-stable lag.
	streaming bool
	pubStamps []pubStamp
	// unflushed holds decision batches whose flush failed transiently; the
	// stream retries them before beginning the next window.
	unflushed []DecisionBatch
}

type pubStamp struct {
	epoch core.Epoch
	t     time.Time
}

// NewPeer registers the peer with the store and returns the wrapper. When
// the store resolves trust delegations (TrustResolver), the engine is
// seeded with the peer's *effective* policy rather than the raw registered
// one, so local candidate pricing matches the store's.
func NewPeer(ctx context.Context, id core.PeerID, schema *core.Schema, t core.Trust, st Store) (*Peer, error) {
	if err := st.RegisterPeer(ctx, id, t); err != nil {
		return nil, err
	}
	eff := effectiveTrust(ctx, st, id, schema, t)
	return &Peer{engine: core.NewEngine(id, schema, eff), store: st}, nil
}

// effectiveTrust asks a resolving store for the peer's effective policy,
// falling back to the registered one. A policy that crossed the wire comes
// back schema-less; it is a private parsed copy, so binding the engine's
// schema is safe (store-owned resolved policies arrive schema-bound
// already and are never mutated here).
func effectiveTrust(ctx context.Context, st Store, id core.PeerID, schema *core.Schema, t core.Trust) core.Trust {
	eff := t
	if r, ok := st.(TrustResolver); ok {
		if rt, err := r.EffectiveTrust(ctx, id); err == nil && rt != nil {
			eff = rt
		}
	}
	if pol, ok := eff.(*trust.Policy); ok && pol.Schema() == nil {
		pol.WithSchema(schema)
	}
	return eff
}

// SetTrust re-registers the peer at the store with a new trust policy and
// refreshes the engine in place, mid-stream: deferred candidates are
// re-priced under the new policy without replaying history, and the next
// reconciliation window is already priced store-side by the new effective
// trust. It returns the number of deferred candidates whose priority
// changed. Delegations take effect here too — the engine receives the
// resolved effective policy when the store exposes one.
func (p *Peer) SetTrust(ctx context.Context, t core.Trust) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	err := p.store.RegisterPeer(ctx, p.ID(), t)
	p.storeTime += time.Since(start)
	if err != nil {
		return 0, err
	}
	eff := t
	if r, ok := p.store.(TrustResolver); ok {
		start = time.Now()
		rt, rerr := r.EffectiveTrust(ctx, p.ID())
		p.storeTime += time.Since(start)
		if rerr != nil {
			return 0, rerr
		}
		if rt != nil {
			eff = rt
		}
	}
	if pol, ok := eff.(*trust.Policy); ok && pol.Schema() == nil {
		pol.WithSchema(p.engine.Schema())
	}
	start = time.Now()
	changed := p.engine.RefreshTrust(eff)
	p.localTime += time.Since(start)
	return changed, nil
}

// ID returns the peer's identifier.
func (p *Peer) ID() core.PeerID { return p.engine.Peer() }

// Engine exposes the underlying engine (instance, conflict groups,
// resolution).
func (p *Peer) Engine() *core.Engine { return p.engine }

// Store returns the update store this peer talks to.
func (p *Peer) Store() Store { return p.store }

// Instance returns the peer's materialized instance.
func (p *Peer) Instance() *core.Instance { return p.engine.Instance() }

// StoreTime returns the cumulative time spent in update store calls.
func (p *Peer) StoreTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.storeTime
}

// LocalTime returns the cumulative time spent in local reconciliation work.
func (p *Peer) LocalTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.localTime
}

// ResetTimers zeroes the time accounting.
func (p *Peer) ResetTimers() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.storeTime, p.localTime = 0, 0
}

// Edit applies a local transaction and queues it for the next publish.
func (p *Peer) Edit(updates ...core.Update) (*core.Transaction, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	x, err := p.engine.NewLocalTransaction(updates...)
	p.localTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	p.pending = append(p.pending, PublishedTxn{
		Txn:         x,
		Antecedents: p.engine.LocalAntecedents(x.ID),
	})
	return x, nil
}

// PendingCount returns the number of local transactions awaiting publish.
func (p *Peer) PendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Publish ships the pending local transactions to the update store.
func (p *Peer) Publish(ctx context.Context) (core.Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.publishLocked(ctx)
}

func (p *Peer) publishLocked(ctx context.Context) (core.Epoch, error) {
	hadPending := len(p.pending) > 0
	start := time.Now()
	epoch, err := p.store.Publish(ctx, p.ID(), p.pending)
	p.storeTime += time.Since(start)
	if err != nil {
		return 0, err
	}
	p.pending = nil
	if p.streaming && hadPending {
		p.pubStamps = append(p.pubStamps, pubStamp{epoch: epoch, t: time.Now()})
	}
	return epoch, nil
}

// Reconcile fetches the newly relevant transactions from the store, runs
// the reconciliation algorithm, and records the decisions.
func (p *Peer) Reconcile(ctx context.Context) (*core.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	res, batch, _, err := p.reconcileBufferedLocked(ctx)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	err = p.store.RecordDecisions(ctx, batch.Peer, batch.Recno, batch.Accepted, batch.Rejected)
	p.storeTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ReconcileBuffered runs the reconciliation but leaves decision recording
// to the caller: it returns the result together with the DecisionBatch
// that must still be recorded. System.ReconcileAll pools the batches of a
// whole fan-out wave into one Store.RecordDecisionsBatch round trip. The
// peer's store-time accounting covers BeginReconciliation only; the
// pooled flush is charged to whoever issues it.
func (p *Peer) ReconcileBuffered(ctx context.Context) (*core.Result, DecisionBatch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	res, batch, _, err := p.reconcileBufferedLocked(ctx)
	return res, batch, err
}

// reconcileBufferedLocked is the shared begin-and-reconcile body; it also
// returns the window's end epoch (the peer's new reconciliation frontier),
// which the streaming loop uses as its resume cursor.
func (p *Peer) reconcileBufferedLocked(ctx context.Context) (*core.Result, DecisionBatch, core.Epoch, error) {
	start := time.Now()
	rec, err := p.store.BeginReconciliation(ctx, p.ID())
	p.storeTime += time.Since(start)
	if err != nil {
		return nil, DecisionBatch{}, 0, err
	}

	start = time.Now()
	res, err := p.engine.Reconcile(rec.Candidates)
	p.localTime += time.Since(start)
	if err != nil {
		return nil, DecisionBatch{}, 0, err
	}
	batch := DecisionBatch{
		Peer:     p.ID(),
		Recno:    rec.Recno,
		Accepted: res.Accepted,
		Rejected: res.Rejected,
	}
	return res, batch, rec.ToEpoch, nil
}

// PublishAndReconcile performs the combined step of §3: publish pending
// updates, then reconcile.
func (p *Peer) PublishAndReconcile(ctx context.Context) (*core.Result, error) {
	if _, err := p.Publish(ctx); err != nil {
		return nil, err
	}
	return p.Reconcile(ctx)
}

// Resolve applies a conflict resolution and reports the resulting
// accept/reject decisions to the store.
func (p *Peer) Resolve(ctx context.Context, c core.Conflict, winner int) (*core.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	res, err := p.engine.Resolve(c, winner)
	p.localTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	// Resolution re-runs the peer's latest reconciliation rather than
	// starting a new one; decisions are recorded under the store's current
	// reconciliation number.
	start = time.Now()
	recno, err := p.store.CurrentRecno(ctx, p.ID())
	if err != nil {
		p.storeTime += time.Since(start)
		return nil, err
	}
	err = p.store.RecordDecisions(ctx, p.ID(), recno, res.Accepted, res.Rejected)
	p.storeTime += time.Since(start)
	if err != nil {
		return nil, err
	}
	return res, nil
}
