package store

import (
	"context"

	"orchestra/internal/core"
)

// Watching is the optional subscription capability: instead of polling
// BeginReconciliation for new stable epochs, a consumer subscribes once and
// is woken whenever the stable frontier advances. Like Replayer/Snapshotter
// it is an optional interface — central implements it natively (a
// frontier-advance notification, no polling in-process), the remote client
// proxies it as a resumable long-poll, and backends that cannot watch (the
// DHT store) simply don't implement it and consumers degrade to polling.

// WatchEvent reports that the stable frontier advanced: every epoch in
// (From, To] became stable, carrying those epochs' published transactions in
// epoch order. Events on one subscription are contiguous — each event's From
// equals the previous event's To — so a consumer's cursor is always the To
// of the last event it processed, and resuming a broken subscription from
// that cursor can neither skip nor repeat an epoch.
type WatchEvent struct {
	From core.Epoch // exclusive
	To   core.Epoch // inclusive
	Txns []PublishedTxn
}

// Watcher is implemented by stores that can push stable-frontier advances.
type Watcher interface {
	// WatchFrom subscribes to stable epochs after `from` (exclusive). The
	// returned channel delivers contiguous WatchEvents until ctx is done or
	// the subscription breaks (store shutdown, transport failure), after
	// which it is closed. A closed channel with a live ctx means the
	// subscription broke; the consumer resumes by calling WatchFrom again
	// with its cursor. Watching from below the store's compaction horizon
	// fails: those epochs' windows are gone.
	WatchFrom(ctx context.Context, from core.Epoch) (<-chan WatchEvent, error)
}

// WatchProber reports whether the store (or the backend behind a proxy)
// supports watching. The remote client implements this with a capability
// RPC so a proxy's answer reflects the actual backend.
type WatchProber interface {
	CanWatch(ctx context.Context) bool
}

// CanWatch reports whether st supports WatchFrom, asking a WatchProber if
// the store is one (a proxy knows better than its static type) and falling
// back to a type assertion.
func CanWatch(ctx context.Context, st Store) bool {
	if p, ok := st.(WatchProber); ok {
		return p.CanWatch(ctx)
	}
	_, ok := st.(Watcher)
	return ok
}
