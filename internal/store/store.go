// Package store defines the update store interface of §5.2 — publish and
// retrieve updates, associate each published transaction with a client
// reconciliation, and hold each peer's applied/rejected sets so that client
// state is reconstructable soft state — together with the Peer wrapper that
// drives a reconciliation engine against a store. Decision recording comes
// in two shapes: per-reconciliation (RecordDecisions) and wave-batched
// (RecordDecisionsBatch, fed by Peer.ReconcileBuffered), which amortizes
// store round trips without changing outcomes. Implementations live in
// store/central (RDBMS-backed, §5.2.1), store/remote (any backend over
// TCP), and store/dhtstore (DHT-based, §5.2.2); store/storetest holds the
// conformance suite they all must pass.
package store

import (
	"context"
	"errors"

	"orchestra/internal/core"
)

// ErrUnknownPeer is returned for operations by unregistered peers.
var ErrUnknownPeer = errors.New("store: unknown peer")

// PublishedTxn is a transaction as shipped to the update store: the
// transaction plus its antecedent set, computed by the publisher from its
// own instance's provenance.
type PublishedTxn struct {
	Txn         *core.Transaction
	Antecedents []core.TxnID
}

// Reconciliation is the store's answer to a reconciliation request: the
// reconciliation number, the epoch window it covers, and the candidates —
// newly published fully-trusted transactions, each with the peer's priority
// and its transaction extension (unapplied antecedent closure, in global
// order).
type Reconciliation struct {
	Recno      int
	FromEpoch  core.Epoch // exclusive
	ToEpoch    core.Epoch // inclusive: the largest stable epoch
	Candidates []*core.Candidate
}

// DecisionBatch is one peer's reconciliation outcome, as submitted to
// RecordDecisionsBatch. It carries exactly the arguments of one
// RecordDecisions call.
type DecisionBatch struct {
	Peer     core.PeerID
	Recno    int
	Accepted []core.TxnID
	Rejected []core.TxnID
}

// Empty reports whether the batch carries no decisions.
func (b DecisionBatch) Empty() bool { return len(b.Accepted)+len(b.Rejected) == 0 }

// Store is the update store interface. Implementations must be safe for
// concurrent use by multiple peers.
type Store interface {
	// RegisterPeer declares a peer and its trust policy. Trust conditions
	// are needed store-side so that priorities and relevance can be
	// evaluated without shipping every update to the client.
	RegisterPeer(ctx context.Context, peer core.PeerID, trust core.Trust) error

	// Publish atomically publishes a batch of transactions from the peer,
	// allocating a new epoch; the transactions are recorded as already
	// accepted by their publisher. An empty batch returns the current
	// epoch without allocating.
	Publish(ctx context.Context, peer core.PeerID, txns []PublishedTxn) (core.Epoch, error)

	// BeginReconciliation determines the peer's reconciliation epoch (the
	// most recent epoch not preceded by an unfinished one), records the
	// reconciliation, and returns the candidate transactions the peer
	// needs.
	BeginReconciliation(ctx context.Context, peer core.PeerID) (*Reconciliation, error)

	// RecordDecisions persists the accept/reject outcome of the peer's
	// reconciliation recno. Deferred transactions are not recorded: they
	// are client soft state.
	RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error

	// RecordDecisionsBatch persists several peers' reconciliation outcomes
	// at once. It is semantically equivalent to calling RecordDecisions
	// once per batch, but implementations amortize the round trips: the
	// central store commits every batch in one database transaction, the
	// remote store ships the whole slice in one RPC, and the DHT store
	// regroups the decisions by transaction controller. ReconcileAll uses
	// it to flush each fan-out wave's decisions together.
	RecordDecisionsBatch(ctx context.Context, batches []DecisionBatch) error

	// CurrentRecno returns the peer's most recent reconciliation number.
	CurrentRecno(ctx context.Context, peer core.PeerID) (int, error)
}
