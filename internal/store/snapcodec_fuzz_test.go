package store

import (
	"reflect"
	"testing"
)

// FuzzDecodeSnapshot feeds arbitrary bytes to the snapshot decoder — same
// contract as FuzzDecodePublishedTxns: never panic, and anything accepted
// must be canonical (re-encoding the decoded snapshot and decoding again
// reproduces it exactly).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{snapshotVersion})
	f.Add([]byte{0, 0}) // wrong version
	f.Add(AppendSnapshot(nil, &Snapshot{}))
	f.Add(AppendSnapshot(nil, testSnapshot()))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		re := AppendSnapshot(nil, snap)
		again, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v\ninput: %x", err, data)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("decode not canonical:\nfirst:  %#v\nsecond: %#v\ninput: %x", snap, again, data)
		}
	})
}
