package store

import (
	"context"
	"fmt"

	"orchestra/internal/core"
)

// Replayer is the optional store capability behind §5.2's soft-state
// guarantee: "it is possible to reconstruct the entire state of the
// participant, up to his or her last reconciliation, from the update
// store". The central store implements it, and the remote client proxies
// it to its server's backend; the DHT store does not (a full scan of every
// transaction controller is exactly the kind of operation the paper's
// design avoids).
type Replayer interface {
	// ReplayFor returns every published transaction in global order
	// together with the peer's recorded decisions (with their acceptance
	// sequence).
	ReplayFor(ctx context.Context, peer core.PeerID) ([]PublishedTxn, map[core.TxnID]core.RestoredDecision, error)
}

// ReplayProber lets a store client answer the CanReplay question
// dynamically. The remote client needs it: it always has a ReplayFor
// method (the RPC stub), but whether replay actually works depends on the
// backend at the other end of the wire.
type ReplayProber interface {
	CanReplay(ctx context.Context) bool
}

// CanReplay reports whether the store supports peer reconstruction — the
// gate callers (and the storetest conformance suite) check before reaching
// for RebuildPeer. A store that implements ReplayProber is asked; anything
// else is judged by whether it implements Replayer at all.
func CanReplay(ctx context.Context, st Store) bool {
	if p, ok := st.(ReplayProber); ok {
		return p.CanReplay(ctx)
	}
	_, ok := st.(Replayer)
	return ok
}

// RebuildPeer reconstructs a participant's engine — instance, applied and
// rejected sets, provenance — from the update store's log and the peer's
// recorded decisions. Deferred state is not recorded in the store (it is
// client soft state in the truest sense) and is reconstructed by the next
// reconciliation, which reconsiders anything undecided.
//
// The returned peer is ready to continue reconciling where the lost one
// stopped.
func RebuildPeer(ctx context.Context, id core.PeerID, schema *core.Schema, trust core.Trust, st Store) (*Peer, error) {
	rp, ok := st.(Replayer)
	if !ok {
		return nil, fmt.Errorf("store: %T cannot replay peer state", st)
	}
	log, decisions, err := rp.ReplayFor(ctx, id)
	if err != nil {
		return nil, err
	}
	logged := make([]core.LoggedTxn, len(log))
	for i, pt := range log {
		logged[i] = core.LoggedTxn{Txn: pt.Txn, Antecedents: pt.Antecedents}
	}
	engine := core.NewEngine(id, schema, trust)
	if err := engine.Restore(logged, decisions); err != nil {
		return nil, err
	}
	return &Peer{engine: engine, store: st}, nil
}
