package store

import (
	"context"
	"fmt"

	"orchestra/internal/core"
)

// Replayer is the optional store capability behind the paper's §5.2
// soft-state guarantee: a participant's entire state is reconstructable
// from the update store. ReplayFor is the full-history path; stores that
// also implement SnapshotReplayer offer the bounded snapshot + tail path,
// which RebuildPeer prefers. The central store implements both, the remote
// client proxies both to its server's backend, and the DHT store implements
// neither (a full scan of every transaction controller is exactly the kind
// of operation the paper's design avoids). The recovery contract — which
// path applies when, and what compaction changes — is documented in
// docs/RECOVERY.md.
type Replayer interface {
	// ReplayFor returns every published transaction in global order
	// together with the peer's recorded decisions (with their acceptance
	// sequence). After compaction it fails for peers covered by the
	// retained snapshot: their early history exists only in the snapshot.
	ReplayFor(ctx context.Context, peer core.PeerID) ([]PublishedTxn, map[core.TxnID]core.RestoredDecision, error)
}

// ReplayProber lets a store client answer the CanReplay question
// dynamically. The remote client needs it: it always has a ReplayFor
// method (the RPC stub), but whether replay actually works depends on the
// backend at the other end of the wire.
type ReplayProber interface {
	CanReplay(ctx context.Context) bool
}

// CanReplay reports whether the store supports peer reconstruction — the
// gate callers (and the storetest conformance suite) check before reaching
// for RebuildPeer. A store that implements ReplayProber is asked; anything
// else is judged by whether it implements Replayer at all.
func CanReplay(ctx context.Context, st Store) bool {
	if p, ok := st.(ReplayProber); ok {
		return p.CanReplay(ctx)
	}
	_, ok := st.(Replayer)
	return ok
}

// RebuildPeer reconstructs a participant's engine — instance, applied and
// rejected sets, provenance — from the update store alone. When the store
// retains a snapshot covering the peer (SnapshotReplayer), the rebuild is
// bounded: the engine is restored from the snapshot and only the log tail
// after the snapshot epoch is replayed — for a remote store, two round
// trips instead of shipping the whole history. Otherwise it falls back to
// FullReplayRebuild. Deferred state is not recorded in the store (it is
// client soft state in the truest sense) and is reconstructed by the next
// reconciliation, which reconsiders anything undecided.
//
// The returned peer is ready to continue reconciling where the lost one
// stopped.
func RebuildPeer(ctx context.Context, id core.PeerID, schema *core.Schema, trust core.Trust, st Store) (*Peer, error) {
	if sr, ok := st.(SnapshotReplayer); ok && CanSnapshot(ctx, st) {
		// LatestSnapshot and ReplayFrom are two calls; a concurrent
		// snapshot + compaction cycle can retire the fetched snapshot in
		// between, failing the tail fetch. One retry against the fresh
		// snapshot resolves that transient — a second failure is a real
		// error.
		for attempt := 0; ; attempt++ {
			snap, err := sr.LatestSnapshot(ctx)
			if err != nil {
				return nil, err
			}
			if snap == nil || snap.Peer(id) == nil {
				break // no snapshot coverage: full replay below
			}
			p, err := rebuildFromSnapshot(ctx, schema, trust, st, sr, snap, snap.Peer(id))
			if err == nil || attempt > 0 {
				return p, err
			}
		}
	}
	return FullReplayRebuild(ctx, id, schema, trust, st)
}

// FullReplayRebuild reconstructs the peer by replaying the complete
// published log — the historical O(total history) path, and the fallback
// for stores without a snapshot (or peers a snapshot does not cover).
func FullReplayRebuild(ctx context.Context, id core.PeerID, schema *core.Schema, trust core.Trust, st Store) (*Peer, error) {
	rp, ok := st.(Replayer)
	if !ok {
		return nil, fmt.Errorf("store: %T cannot replay peer state", st)
	}
	log, decisions, err := rp.ReplayFor(ctx, id)
	if err != nil {
		return nil, err
	}
	engine := core.NewEngine(id, schema, trust)
	if err := engine.Restore(loggedTxns(log), decisions); err != nil {
		return nil, err
	}
	return &Peer{engine: engine, store: st}, nil
}

// rebuildFromSnapshot is the bounded path: seed the engine from the peer's
// snapshot state, then replay the residue plus the post-snapshot tail with
// the decisions recorded after the snapshot's high-water mark.
func rebuildFromSnapshot(ctx context.Context, schema *core.Schema, trust core.Trust, st Store, sr SnapshotReplayer, snap *Snapshot, ps *PeerSnapshot) (*Peer, error) {
	engine, err := core.NewEngineFromSnapshot(schema, trust, &ps.Engine)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot for %s: %w", ps.Engine.Peer, err)
	}
	tail, decisions, err := sr.ReplayFrom(ctx, ps.Engine.Peer, snap.Epoch, ps.DecisionSeq)
	if err != nil {
		return nil, err
	}
	log := loggedTxns(snap.Residue)
	log = append(log, loggedTxns(tail)...)
	if err := engine.RestoreTail(log, decisions); err != nil {
		return nil, fmt.Errorf("store: snapshot tail for %s: %w", ps.Engine.Peer, err)
	}
	return &Peer{engine: engine, store: st}, nil
}

// loggedTxns converts published transactions to the core restore log form.
func loggedTxns(pts []PublishedTxn) []core.LoggedTxn {
	out := make([]core.LoggedTxn, len(pts))
	for i, pt := range pts {
		out[i] = core.LoggedTxn{Txn: pt.Txn, Antecedents: pt.Antecedents}
	}
	return out
}
