package store

import (
	"strings"
	"testing"
)

func TestNamespaceRoundTrip(t *testing.T) {
	cases := []struct{ group, want string }{
		{"", ""},
		{"proteomics", "proteomics"},
		{"Group7", "Group7"},
		{"a_b", "a_5fb"},
		{"a-b.c", "a_2db_2ec"},
		{"über/group", "_c3_bcber_2fgroup"},
		{"g\x00\xff", "g_00_ff"},
		{"tenant 1", "tenant_201"},
	}
	for _, c := range cases {
		got := EncodeNamespace(c.group)
		if got != c.want {
			t.Errorf("EncodeNamespace(%q) = %q, want %q", c.group, got, c.want)
		}
		back, err := DecodeNamespace(got)
		if err != nil || back != c.group {
			t.Errorf("DecodeNamespace(%q) = %q, %v; want %q", got, back, err, c.group)
		}
	}
}

func TestNamespaceRejectsMalformed(t *testing.T) {
	for _, ns := range []string{
		"_",      // truncated escape
		"a_5",    // truncated escape
		"a_5g",   // bad hex digit
		"a_5F",   // uppercase hex is non-canonical
		"a_41",   // escape for 'A', which must pass through plain
		"a-b",    // raw non-namespace byte
		"g_zz",   // bad hex
		"space ", // raw space
	} {
		if got, err := DecodeNamespace(ns); err == nil {
			t.Errorf("DecodeNamespace(%q) = %q, want error", ns, got)
		}
	}
}

// Injectivity over a brute-force corpus: distinct group IDs must never
// share a namespace (a collision would merge two tenants' tables).
func TestNamespaceInjective(t *testing.T) {
	corpus := []string{
		"", "a", "A", "_", "__", "a_", "_a", "a_5fb", "a_b", "a b",
		"g1", "g-1", "g.1", "g/1", "G1", "über", "u\xcc\x88ber",
	}
	seen := make(map[string]string)
	for _, g := range corpus {
		ns := EncodeNamespace(g)
		if prev, dup := seen[ns]; dup {
			t.Fatalf("namespace collision: %q and %q both encode to %q", prev, g, ns)
		}
		seen[ns] = g
	}
}

// The regression behind GroupTablePrefix's "__" terminator: with a
// single-'_' terminator, group "team"'s prefix is a prefix of group
// "team-1"'s tables ('-' encodes as "_2d"), so detaching "team" would
// drop "team-1"'s rows. The grammar must keep sibling groups' table
// names prefix-disjoint.
func TestGroupTablePrefixDisjoint(t *testing.T) {
	pairs := [][2]string{
		{"team", "team-1"}, // escape opens with the old delimiter
		{"team", "team1"},  // plain extension
		{"a", "a_b"},       // '_' in the ID itself
		{"a", "a-b"}, {"", "x"},
		{"g", "g\x00"}, {"tenant", "tenant 1"},
	}
	for _, p := range pairs {
		ns1, ns2 := GroupTablePrefix(p[0]), GroupTablePrefix(p[1])
		if strings.HasPrefix(ns2, ns1) || strings.HasPrefix(ns1, ns2) {
			t.Errorf("prefixes of %q and %q overlap: %q vs %q", p[0], p[1], ns1, ns2)
		}
	}
	for table, want := range map[string]string{
		"g_team__meta":     "team",
		"g_team_2d1__meta": "team-1",
		"g___meta":         "",
		"g_a_5fb__meta":    "a_b",
		"g_team__peers":    "", // not a meta table
		"g_team_2d1_meta":  "", // old single-'_' grammar must not parse
		"x_team__meta":     "",
	} {
		got, ok := GroupFromMetaTable(table)
		if want == "" && table != "g___meta" {
			if ok {
				t.Errorf("GroupFromMetaTable(%q) = %q, want no parse", table, got)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("GroupFromMetaTable(%q) = %q, %v; want %q", table, got, ok, want)
		}
	}
}

// FuzzNamespacePrefixFree pins the grammar property the migration and
// detach paths rely on: distinct groups' table prefixes are never prefixes
// of one another, so prefix selection cannot cross tenants.
func FuzzNamespacePrefixFree(f *testing.F) {
	f.Add("team", "team-1")
	f.Add("a", "a_b")
	f.Add("", "x")
	f.Add("über", "über/group")
	f.Fuzz(func(t *testing.T, g1, g2 string) {
		if g1 == g2 {
			return
		}
		ns1, ns2 := GroupTablePrefix(g1), GroupTablePrefix(g2)
		if strings.HasPrefix(ns2, ns1) || strings.HasPrefix(ns1, ns2) {
			t.Fatalf("prefixes of %q and %q overlap: %q vs %q", g1, g2, ns1, ns2)
		}
		// Every meta table parses back to exactly its own group, never a
		// sibling's.
		if got, ok := GroupFromMetaTable(ns1 + "meta"); !ok || got != g1 {
			t.Fatalf("GroupFromMetaTable(%q) = %q, %v; want %q", ns1+"meta", got, ok, g1)
		}
	})
}

func FuzzNamespaceCodec(f *testing.F) {
	for _, seed := range []string{"", "plain", "a_b", "über/group", "_5f", "g\x00\xff"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, group string) {
		ns := EncodeNamespace(group)
		// The encoding must be table-name safe.
		for i := 0; i < len(ns); i++ {
			if !isNamespacePlain(ns[i]) && ns[i] != '_' {
				t.Fatalf("EncodeNamespace(%q) = %q: unsafe byte %q", group, ns, ns[i])
			}
		}
		// And must round-trip exactly.
		back, err := DecodeNamespace(ns)
		if err != nil {
			t.Fatalf("DecodeNamespace(EncodeNamespace(%q)) failed: %v", group, err)
		}
		if back != group {
			t.Fatalf("round trip %q → %q → %q", group, ns, back)
		}
		// Decoding any input that succeeds must re-encode to the same
		// namespace (canonical fixpoint): valid namespaces and group IDs
		// are in bijection.
		if dec, err := DecodeNamespace(group); err == nil {
			if re := EncodeNamespace(dec); re != group {
				t.Fatalf("non-canonical decode: %q → %q → %q", group, dec, re)
			}
		}
	})
}
