package store

import (
	"context"
	"errors"
	"io"
	"net"
	"os"
	"syscall"

	"orchestra/internal/simnet"
)

// IsTransient reports whether an error from a store call looks like a
// temporary transport failure worth retrying: the simulated fabric's
// unreachable/timeout errors, TCP dial and reset failures, torn
// connections, and deadline expiries. Application-level errors — unknown
// peer, refused compaction, a server-side failure string travelling back
// over the wire — are permanent: retrying them returns the same answer.
//
// Context cancellation is deliberately not transient: the caller asked to
// stop. Deadline expiry is: the call may simply have outwaited a slow or
// lossy link, and a retry with a fresh deadline can succeed.
//
// This is the one error taxonomy shared by the retry policy
// (rpc.RetryPolicy.Classify), ReconcileAll's per-peer error reporting, and
// any embedder deciding whether a failed store call is worth repeating.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, simnet.ErrUnreachable) || errors.Is(err, simnet.ErrTimeout) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A torn frame or connection: the server went away mid-call (restart,
	// crash); the reply is lost but the dial will come back.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
