package store

import "context"

// IdempotencyKey identifies one logical mutating store call across
// transport retries. A client that may deliver the same call twice — a
// retry after a lost reply, a duplicated message — attaches the same key to
// every attempt; a deduping store (IdempotencyProber) executes the call
// once and replays the recorded result to every later attempt. Keys must be
// unique per logical call: reusing a key returns the first call's result,
// whatever the arguments.
type IdempotencyKey string

// idemCtxKey carries the key through a context.
type idemCtxKey struct{}

// WithIdempotencyKey returns a context carrying the idempotency key for the
// next mutating store call.
func WithIdempotencyKey(ctx context.Context, key IdempotencyKey) context.Context {
	return context.WithValue(ctx, idemCtxKey{}, key)
}

// IdempotencyKeyFrom extracts the idempotency key from the context, if any.
func IdempotencyKeyFrom(ctx context.Context) (IdempotencyKey, bool) {
	key, ok := ctx.Value(idemCtxKey{}).(IdempotencyKey)
	return key, ok && key != ""
}

// IdempotencyProber is implemented by stores that dedupe idempotency-keyed
// calls (the central store natively; the remote client by asking its server
// over the wire). Stores without it execute every delivery, so retrying
// non-idempotent operations against them is unsafe.
type IdempotencyProber interface {
	CanDedupe(ctx context.Context) bool
}

// CanDedupe reports whether the store dedupes idempotency-keyed calls.
func CanDedupe(ctx context.Context, s Store) bool {
	p, ok := s.(IdempotencyProber)
	return ok && p.CanDedupe(ctx)
}
