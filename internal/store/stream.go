package store

import (
	"context"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/metrics"
)

// This file implements the incremental reconcile loop on top of the watch
// subscription (watch.go): instead of the round barrier of
// System.ReconcileAll, a peer subscribes to newly stable epochs and
// reconciles each window as it arrives, flushing decisions with the
// existing RecordDecisionsBatch.
//
// Watch events serve as a wake signal and resume cursor ONLY: the actual
// reconciliation windows always come from BeginReconciliation, which is
// frontier-driven, idempotency-keyed under a retrying client, and
// crash-safe. A window can therefore never be skipped or double-applied no
// matter how the subscription breaks and resumes — the store's per-peer
// frontier, not the stream, defines window boundaries. Non-watching
// backends (the DHT store) degrade to a polling ticker driving the same
// step.

// StreamResult reports one completed streaming step: the window's end
// epoch (the peer's new reconciliation frontier) and the reconciliation
// outcome whose decisions have been recorded.
type StreamResult struct {
	Peer core.PeerID
	// To is the peer's reconciliation frontier after the step.
	To     core.Epoch
	Result *core.Result
	Batch  DecisionBatch
}

// StreamOptions tunes ReconcileStream. The zero value is usable: polling
// and retry cadence get defaults, metrics and the observer stay off.
type StreamOptions struct {
	// Poll is the reconcile cadence against stores without watch support
	// (default 50ms).
	Poll time.Duration
	// RetryBase/RetryMax bound the exponential backoff between retries of
	// a transiently failing step or subscription (defaults 2ms / 100ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Metrics, when set, receives per-step reconciliation stats and the
	// stream lag observations (publish-to-stable, stable-to-decision).
	Metrics *metrics.Pipeline
	// OnResult, when set, is invoked after every streaming step whose
	// decisions are recorded — including empty ones, so a caller can track
	// the peer's frontier. Called from the stream goroutine.
	OnResult func(StreamResult)
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Poll <= 0 {
		o.Poll = 50 * time.Millisecond
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryMax < o.RetryBase {
		o.RetryMax = 100 * time.Millisecond
	}
	return o
}

// ReconcileStream reconciles continuously until ctx is done: against a
// watching store it blocks on the subscription and steps once per stable
// window; against anything else it polls. It returns nil when ctx ends the
// stream and an error only for permanent failures (transient ones are
// retried with backoff in place). The peer's other methods stay usable
// concurrently — Edit and Publish interleave with streaming steps under
// the peer's internal lock.
func (p *Peer) ReconcileStream(ctx context.Context, opts StreamOptions) error {
	opts = opts.withDefaults()
	p.setStreaming(true)
	defer p.setStreaming(false)
	w, _ := p.store.(Watcher)
	if w == nil || !CanWatch(ctx, p.store) {
		return p.streamPolling(ctx, &opts)
	}
	return p.streamWatching(ctx, w, &opts)
}

func (p *Peer) setStreaming(on bool) {
	p.mu.Lock()
	p.streaming = on
	if !on {
		p.pubStamps = nil
	}
	p.mu.Unlock()
}

// streamWatching drives the subscription path. The cursor passed back to
// WatchFrom is the frontier of the last successful step, so a resumed
// subscription picks up exactly where the consumer actually is — never
// where a broken stream claimed to be.
func (p *Peer) streamWatching(ctx context.Context, w Watcher, opts *StreamOptions) error {
	// Catch-up step: reconcile whatever is already stable and learn the
	// frontier the subscription starts from.
	cursor, err := p.streamStepRetry(ctx, opts, time.Time{})
	if err != nil {
		return err
	}
	backoff := opts.RetryBase
	for ctx.Err() == nil {
		ch, werr := w.WatchFrom(ctx, cursor)
		if werr != nil {
			if ctx.Err() != nil {
				return nil
			}
			// Transient transport failure, or the cursor fell below a moved
			// compaction horizon while no subscription was attached: refresh
			// the frontier with a step and try again.
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			backoff = minDuration(backoff*2, opts.RetryMax)
			to, serr := p.streamStepRetry(ctx, opts, time.Time{})
			if serr != nil {
				return serr
			}
			if to > cursor {
				cursor = to
			}
			continue
		}
		delivered := false
		for ev := range ch {
			delivered = true
			arrived := time.Now()
			if ev.To > cursor {
				cursor = ev.To
			}
			to, serr := p.streamStepRetry(ctx, opts, arrived)
			if serr != nil {
				return serr
			}
			if to > cursor {
				cursor = to
			}
		}
		// Channel closed with ctx live: the subscription broke (fault,
		// store restart). Resume from the cursor — after a backoff if the
		// subscription never delivered, so a dead store is re-dialed at the
		// retry cadence instead of in a tight loop.
		if delivered {
			backoff = opts.RetryBase
		} else {
			if !sleepCtx(ctx, backoff) {
				return nil
			}
			backoff = minDuration(backoff*2, opts.RetryMax)
		}
	}
	return nil
}

// streamPolling is the degraded mode for stores without watch support: the
// same step, driven by a ticker instead of the subscription.
func (p *Peer) streamPolling(ctx context.Context, opts *StreamOptions) error {
	ticker := time.NewTicker(opts.Poll)
	defer ticker.Stop()
	for {
		if _, err := p.streamStepRetry(ctx, opts, time.Time{}); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// streamStepRetry runs one step, retrying transient failures with capped
// exponential backoff until the step succeeds, ctx ends, or the failure is
// permanent. A nil error with ctx done means the stream is shutting down.
func (p *Peer) streamStepRetry(ctx context.Context, opts *StreamOptions, arrived time.Time) (core.Epoch, error) {
	backoff := opts.RetryBase
	for {
		to, err := p.streamStep(ctx, opts, arrived)
		if err == nil {
			return to, nil
		}
		if ctx.Err() != nil {
			return 0, nil
		}
		if !IsTransient(err) {
			return 0, err
		}
		if !sleepCtx(ctx, backoff) {
			return 0, nil
		}
		backoff = minDuration(backoff*2, opts.RetryMax)
	}
}

// streamStep is one begin → reconcile → flush pass. A non-zero arrived
// time marks the step as event-driven and feeds the stable-to-decision lag
// counter; publish-to-stable is observed for every own publish the window
// covers.
func (p *Peer) streamStep(ctx context.Context, opts *StreamOptions, arrived time.Time) (core.Epoch, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Decisions whose flush failed in an earlier step are recorded before a
	// new window opens, preserving the store-side decision transcript even
	// across a fault that outlived the flush's own retries.
	if len(p.unflushed) > 0 {
		start := time.Now()
		err := p.store.RecordDecisionsBatch(ctx, p.unflushed)
		p.storeTime += time.Since(start)
		if err != nil {
			return 0, err
		}
		p.unflushed = nil
	}
	res, batch, to, err := p.reconcileBufferedLocked(ctx)
	if err != nil {
		return 0, err
	}
	if !batch.Empty() {
		start := time.Now()
		err := p.store.RecordDecisionsBatch(ctx, []DecisionBatch{batch})
		p.storeTime += time.Since(start)
		if err != nil {
			p.unflushed = append(p.unflushed, batch)
			return 0, err
		}
	}
	kept := p.pubStamps[:0]
	for _, st := range p.pubStamps {
		if st.epoch <= to {
			if opts.Metrics != nil {
				opts.Metrics.ObserveStreamStable(time.Since(st.t))
			}
		} else {
			kept = append(kept, st)
		}
	}
	p.pubStamps = kept
	if opts.Metrics != nil {
		opts.Metrics.Observe(res)
		if !arrived.IsZero() {
			opts.Metrics.ObserveStreamDecide(time.Since(arrived))
		}
	}
	if opts.OnResult != nil {
		opts.OnResult(StreamResult{Peer: p.ID(), To: to, Result: res, Batch: batch})
	}
	return to, nil
}

// sleepCtx sleeps d or until ctx is done; it reports whether the full
// sleep elapsed with ctx still live.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
