package store

import (
	"context"

	"orchestra/internal/core"
)

// TrustResolver is an optional store capability: a store that resolves
// trust delegations (the central store's trust graph, the remote client by
// RPC) reports each peer's *effective* trust — the registered policy with
// its delegation closure merged in and compiled. Peers use it to keep
// their local engine pricing candidates exactly as the store does.
type TrustResolver interface {
	// EffectiveTrust returns the peer's resolved trust. Unknown peers
	// error; a registered peer always has an answer (possibly its own
	// policy unchanged, when it delegates to nobody).
	EffectiveTrust(ctx context.Context, peer core.PeerID) (core.Trust, error)
}

// CanResolveTrust reports whether the store resolves delegations.
func CanResolveTrust(st Store) bool {
	_, ok := st.(TrustResolver)
	return ok
}
