package store

import (
	"fmt"
	"strings"
)

// Group-namespace codec. A multi-tenant store keeps every group's rows in
// tables named "g_<encoded group>_<table>" inside one shared database, so
// the group identifier must become a table-name-safe token. The encoding
// is injective (two distinct group IDs can never collide on one namespace,
// which would silently merge tenants) and reversible (a node can enumerate
// the groups it hosts from its table names alone).
//
// Scheme: ASCII letters and digits pass through; every other byte —
// including '_', the escape introducer — encodes as '_' followed by two
// lowercase hex digits. Decoding rejects malformed escapes and
// non-canonical ones ('_41' for 'A', uppercase hex), so the codec is a
// bijection between group IDs and valid namespaces: exactly one encoding
// per ID, exactly one ID per valid namespace.

// EncodeNamespace turns an arbitrary group ID into a table-name-safe
// token of [A-Za-z0-9_]*.
func EncodeNamespace(group string) string {
	var b strings.Builder
	b.Grow(len(group))
	for i := 0; i < len(group); i++ {
		c := group[i]
		if isNamespacePlain(c) {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

// DecodeNamespace inverts EncodeNamespace, rejecting anything that is not
// the canonical encoding of some group ID.
func DecodeNamespace(ns string) (string, error) {
	var b strings.Builder
	b.Grow(len(ns))
	for i := 0; i < len(ns); {
		c := ns[i]
		switch {
		case c == '_':
			if i+2 >= len(ns) {
				return "", fmt.Errorf("store: namespace %q: truncated escape", ns)
			}
			hi, okHi := hexVal(ns[i+1])
			lo, okLo := hexVal(ns[i+2])
			if !okHi || !okLo {
				return "", fmt.Errorf("store: namespace %q: bad escape %q", ns, ns[i:i+3])
			}
			d := byte(hi<<4 | lo)
			if isNamespacePlain(d) {
				return "", fmt.Errorf("store: namespace %q: non-canonical escape %q for %q", ns, ns[i:i+3], d)
			}
			b.WriteByte(d)
			i += 3
		case isNamespacePlain(c):
			b.WriteByte(c)
			i++
		default:
			return "", fmt.Errorf("store: namespace %q: invalid byte %q", ns, c)
		}
	}
	return b.String(), nil
}

// GroupTablePrefix returns the table-name prefix under which a group's
// tenant tables live in a shared database: "g_<encoded group>__". The
// terminator is a double underscore, which makes the grammar prefix-free:
// a valid encoding never contains "__" (every '_' it emits introduces an
// escape and is followed by two hex digits) and never ends in '_', so no
// group's prefix is a prefix of another group's table names. Anything that
// selects a group's tables by prefix — detach, migration copy — depends on
// this; a single-'_' terminator would let group "team" (prefix "g_team_")
// claim group "team-1"'s tables ("g_team_2d1__meta").
func GroupTablePrefix(group string) string {
	return "g_" + EncodeNamespace(group) + "__"
}

// GroupFromMetaTable inverts GroupTablePrefix for a group's meta table:
// given a table name of the form "g_<encoded>__meta" it returns the
// decoded group ID. Used to enumerate the groups a database hosts from its
// table names alone.
func GroupFromMetaTable(table string) (string, bool) {
	const pre, suf = "g_", "__meta"
	if len(table) < len(pre)+len(suf) ||
		table[:len(pre)] != pre || table[len(table)-len(suf):] != suf {
		return "", false
	}
	id, err := DecodeNamespace(table[len(pre) : len(table)-len(suf)])
	if err != nil {
		return "", false
	}
	return id, true
}

func isNamespacePlain(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// hexVal decodes one lowercase hex digit (the only case the encoder
// emits).
func hexVal(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	}
	return 0, false
}
