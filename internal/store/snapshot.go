package store

import (
	"context"

	"orchestra/internal/core"
)

// Snapshot is a global engine-state snapshot of an update store at a
// stable-epoch boundary: for every peer registered when it was taken, the
// engine state that peer's decisions up to the snapshot produce, plus the
// residue — every published transaction at or below the snapshot epoch that
// is not yet accepted by all registered peers, and so may still appear in
// future transaction extensions or be decided late. Snapshots are what make
// bounded catch-up (RebuildPeer via snapshot + tail) and publish-log
// compaction possible; the recovery contract lives in docs/RECOVERY.md.
type Snapshot struct {
	// Epoch is the stable epoch the snapshot was taken at: every
	// transaction in epochs 1..Epoch is either folded into the per-peer
	// engine states or carried in Residue.
	Epoch core.Epoch
	// Peers holds one entry per registered peer, sorted by peer ID.
	Peers []PeerSnapshot
	// Residue lists, in global order, the transactions at or below Epoch
	// that at least one registered peer has not accepted. Their payloads
	// must outlive compaction: they can still appear in antecedent
	// closures, and an undecided one can still be accepted or rejected
	// after the snapshot.
	Residue []PublishedTxn
}

// PeerSnapshot is one peer's slice of a store snapshot.
type PeerSnapshot struct {
	// LastEpoch is the peer's reconciliation frontier (the store-recorded
	// epoch of its latest reconciliation) when the snapshot was taken.
	LastEpoch core.Epoch
	// Recno is the peer's reconciliation number at snapshot time.
	Recno int
	// DecisionSeq is the peer's decision-sequence high-water mark: every
	// decision with sequence <= DecisionSeq is folded into Engine; a
	// snapshot-based rebuild replays only decisions after it. It is the
	// peer's longest decision prefix referencing transactions at or below
	// the snapshot epoch — usually everything, but self-accepts on a
	// finished epoch the stable frontier has not reached stay in the
	// tail, where ReplayFrom pairs them with their payloads.
	DecisionSeq int64
	// Engine is the peer's engine state with all decisions up to
	// DecisionSeq applied (Engine.Peer identifies the peer).
	Engine core.EngineSnapshot
}

// Peer returns the snapshot entry for the given peer, or nil if the peer
// was not registered when the snapshot was taken.
func (s *Snapshot) Peer(id core.PeerID) *PeerSnapshot {
	for i := range s.Peers {
		if s.Peers[i].Engine.Peer == id {
			return &s.Peers[i]
		}
	}
	return nil
}

// Snapshotter is the optional store capability of taking snapshots and
// compacting the publish log behind them. The central store implements it;
// the remote client proxies it to its server's backend.
type Snapshotter interface {
	// Snapshot serializes a global engine-state snapshot at the current
	// stable epoch and retains it as the latest snapshot, returning the
	// epoch it covers (0, with no snapshot written, if nothing has been
	// published yet).
	Snapshot(ctx context.Context) (core.Epoch, error)

	// CompactBefore drops publish and decision rows for epochs at or below
	// e. It refuses to compact past the latest retained snapshot, past any
	// registered peer's reconciliation frontier, or while any registered
	// peer is missing from the latest snapshot — the safety invariants of
	// docs/RECOVERY.md.
	CompactBefore(ctx context.Context, e core.Epoch) error
}

// SnapshotReplayer is the bounded catch-up capability: the snapshot plus
// the log tail it does not cover. RebuildPeer prefers it over a full
// ReplayFor whenever the peer is covered by a retained snapshot — two
// round trips instead of a replay of the whole history.
type SnapshotReplayer interface {
	// LatestSnapshot returns the most recent retained snapshot, or nil if
	// none has been taken.
	LatestSnapshot(ctx context.Context) (*Snapshot, error)

	// ReplayFrom returns the published tail — every transaction in epochs
	// strictly after from, in global order — together with the peer's
	// decisions recorded after the afterSeq decision-sequence high-water
	// mark. It does not include the snapshot's residue: the caller already
	// holds it.
	ReplayFrom(ctx context.Context, peer core.PeerID, from core.Epoch, afterSeq int64) ([]PublishedTxn, map[core.TxnID]core.RestoredDecision, error)
}

// SnapshotProber lets a store client answer the CanSnapshot question
// dynamically; the remote client needs it for the same reason it needs
// ReplayProber — its method set never changes, but its backend's does.
type SnapshotProber interface {
	CanSnapshot(ctx context.Context) bool
}

// CanSnapshot reports whether the store supports snapshot-based catch-up
// (and therefore compaction). A store that implements SnapshotProber is
// asked; anything else is judged by whether it implements SnapshotReplayer.
func CanSnapshot(ctx context.Context, st Store) bool {
	if p, ok := st.(SnapshotProber); ok {
		return p.CanSnapshot(ctx)
	}
	_, ok := st.(SnapshotReplayer)
	return ok
}
