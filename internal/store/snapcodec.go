package store

import (
	"encoding/binary"
	"fmt"

	"orchestra/internal/core"
)

// snapshotVersion tags the binary encoding of store snapshots. Same policy
// as the publish-payload codec: hand-rolled, length-prefixed, version byte
// first, and no migration across versions — a mismatched byte is an
// explicit error, never a silent misparse.
const snapshotVersion = 1

// AppendSnapshot encodes a store snapshot into a compact binary payload,
// appending to dst. Layout: version byte; snapshot epoch; the per-peer
// entries (frontier, recno, decision high-water, engine state with sorted
// decision sets, relations, and producers); then the residue as one nested
// publish payload (AppendPublishedTxns).
func AppendSnapshot(dst []byte, snap *Snapshot) []byte {
	dst = append(dst, snapshotVersion)
	dst = binary.AppendUvarint(dst, uint64(snap.Epoch))
	str := func(s string) {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	ids := func(xs []core.TxnID) {
		dst = binary.AppendUvarint(dst, uint64(len(xs)))
		for _, id := range xs {
			str(string(id.Origin))
			dst = binary.AppendUvarint(dst, id.Seq)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(snap.Peers)))
	for i := range snap.Peers {
		ps := &snap.Peers[i]
		dst = binary.AppendUvarint(dst, uint64(ps.LastEpoch))
		dst = binary.AppendUvarint(dst, uint64(ps.Recno))
		dst = binary.AppendUvarint(dst, uint64(ps.DecisionSeq))
		eng := &ps.Engine
		str(string(eng.Peer))
		dst = binary.AppendUvarint(dst, eng.NextSeq)
		ids(eng.Applied)
		ids(eng.Rejected)
		dst = binary.AppendUvarint(dst, uint64(len(eng.Relations)))
		for _, rs := range eng.Relations {
			str(rs.Name)
			dst = binary.AppendUvarint(dst, uint64(len(rs.Tuples)))
			for _, t := range rs.Tuples {
				str(t.Encode())
			}
		}
		dst = binary.AppendUvarint(dst, uint64(len(eng.Producers)))
		for _, p := range eng.Producers {
			str(p.Rel)
			str(p.Tuple.Encode())
			str(string(p.Txn.Origin))
			dst = binary.AppendUvarint(dst, p.Txn.Seq)
		}
	}
	residue := AppendPublishedTxns(nil, snap.Residue)
	dst = binary.AppendUvarint(dst, uint64(len(residue)))
	return append(dst, residue...)
}

// DecodeSnapshot decodes a payload produced by AppendSnapshot.
func DecodeSnapshot(payload []byte) (*Snapshot, error) {
	r := &payloadReader{b: payload}
	if v := r.byte(); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("store: snapshot version %d, want %d (no migration path across snapshot codec versions)", v, snapshotVersion)
	}
	capped := func(n uint64) int {
		if n > uint64(len(r.b)) {
			return len(r.b)
		}
		return int(n)
	}
	ids := func() []core.TxnID {
		n := r.uvarint()
		if r.err != nil || n == 0 {
			return nil
		}
		out := make([]core.TxnID, 0, capped(n))
		for i := uint64(0); i < n && r.err == nil; i++ {
			id := core.TxnID{Origin: core.PeerID(r.str())}
			id.Seq = r.uvarint()
			out = append(out, id)
		}
		return out
	}
	tuple := func() core.Tuple {
		t, err := core.DecodeTuple(r.str())
		if err != nil && r.err == nil {
			r.err = err
		}
		return t
	}
	snap := &Snapshot{Epoch: core.Epoch(r.uvarint())}
	np := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	snap.Peers = make([]PeerSnapshot, 0, capped(np))
	for i := uint64(0); i < np && r.err == nil; i++ {
		ps := PeerSnapshot{
			LastEpoch:   core.Epoch(r.uvarint()),
			Recno:       int(r.uvarint()),
			DecisionSeq: int64(r.uvarint()),
		}
		eng := &ps.Engine
		eng.Peer = core.PeerID(r.str())
		eng.NextSeq = r.uvarint()
		eng.Applied = ids()
		eng.Rejected = ids()
		nr := r.uvarint()
		if r.err != nil {
			break
		}
		if nr > 0 {
			eng.Relations = make([]core.RelationSnapshot, 0, capped(nr))
		}
		for j := uint64(0); j < nr && r.err == nil; j++ {
			rs := core.RelationSnapshot{Name: r.str()}
			nt := r.uvarint()
			if r.err != nil {
				break
			}
			if nt > 0 {
				rs.Tuples = make([]core.Tuple, 0, capped(nt))
			}
			for k := uint64(0); k < nt && r.err == nil; k++ {
				rs.Tuples = append(rs.Tuples, tuple())
			}
			eng.Relations = append(eng.Relations, rs)
		}
		npr := r.uvarint()
		if r.err != nil {
			break
		}
		if npr > 0 {
			eng.Producers = make([]core.ProducerSnapshot, 0, capped(npr))
		}
		for j := uint64(0); j < npr && r.err == nil; j++ {
			p := core.ProducerSnapshot{Rel: r.str(), Tuple: tuple()}
			p.Txn.Origin = core.PeerID(r.str())
			p.Txn.Seq = r.uvarint()
			eng.Producers = append(eng.Producers, p)
		}
		snap.Peers = append(snap.Peers, ps)
	}
	blob := r.str()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after snapshot payload", len(r.b))
	}
	residue, err := DecodePublishedTxns([]byte(blob))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot residue: %w", err)
	}
	snap.Residue = residue
	return snap, nil
}
