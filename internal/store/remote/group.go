package remote

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"orchestra/internal/core"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
)

// mCanMultiGroup asks whether the server hosts multiple groups. It is the
// one method a group-scoped client sends unprefixed: it asks about the
// server family, not any tenant.
const mCanMultiGroup = "store.canmultigroup"

// GroupServer is the multi-group gateway: it serves many tenant stores
// over one transport by routing method names of the form
// "group/<encoded id>/store.X" to a lazily-opened per-group sub-server.
// The open callback supplies each group's backend (typically
// central.Node.OpenGroup); a group is opened on its first call and stays
// open until Close.
type GroupServer struct {
	open   func(group string) (store.Store, error)
	schema *core.Schema
	srv    *rpc.Server

	mu     sync.Mutex
	groups map[string]*Server
	closed bool
}

// NewGroupServer builds a gateway over the given per-group backend opener.
// Trust policies received from clients are compiled against the schema
// (shared by all groups; heterogeneous-schema fleets need one gateway per
// schema).
func NewGroupServer(open func(group string) (store.Store, error), schema *core.Schema) *GroupServer {
	gs := &GroupServer{open: open, schema: schema, groups: make(map[string]*Server)}
	gs.srv = rpc.NewServer(gs)
	return gs
}

// ServeRPC implements rpc.Handler: the capability probe answers directly,
// everything else must carry a group route and dispatches to that group's
// sub-server with the route stripped.
func (gs *GroupServer) ServeRPC(ctx context.Context, req rpc.Request) ([]byte, error) {
	if req.Method == mCanMultiGroup {
		return rpc.Encode(&canReplayReply{OK: true})
	}
	rest, ok := strings.CutPrefix(req.Method, "group/")
	if !ok {
		return nil, fmt.Errorf("remote: method %q: group gateway serves only group-routed methods", req.Method)
	}
	ns, method, ok := strings.Cut(rest, "/")
	if !ok {
		return nil, fmt.Errorf("remote: method %q: missing group route", req.Method)
	}
	group, err := store.DecodeNamespace(ns)
	if err != nil {
		return nil, fmt.Errorf("remote: method %q: %w", req.Method, err)
	}
	sub, err := gs.sub(group)
	if err != nil {
		return nil, err
	}
	req.Method = method
	return sub.mux.ServeRPC(ctx, req)
}

// sub returns the group's sub-server, opening its backend on first use.
func (gs *GroupServer) sub(group string) (*Server, error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.closed {
		return nil, fmt.Errorf("remote: group gateway is closed")
	}
	if s, ok := gs.groups[group]; ok {
		return s, nil
	}
	backend, err := gs.open(group)
	if err != nil {
		return nil, fmt.Errorf("remote: open group %q: %w", group, err)
	}
	s := NewServer(backend, gs.schema)
	gs.groups[group] = s
	return s, nil
}

// Handler exposes the gateway as an rpc.Handler, so it can be mounted on
// any transport (a simnet node in tests, TCP in production).
func (gs *GroupServer) Handler() rpc.Handler { return gs }

// Listen binds addr and serves in the background, returning the bound
// address.
func (gs *GroupServer) Listen(addr string) (string, error) { return gs.srv.Listen(addr) }

// Close stops the transport and closes every backend the gateway opened
// (for backends that have a Close).
func (gs *GroupServer) Close() error {
	err := gs.srv.Close()
	gs.mu.Lock()
	groups := gs.groups
	gs.groups = map[string]*Server{}
	gs.closed = true
	gs.mu.Unlock()
	for _, s := range groups {
		if c, ok := s.backend.(interface{ Close() error }); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// canMultiGroup answers the single-group Server's capability probe by
// forwarding the question to its backend: a Server in front of a
// multi-group-capable backend still serves exactly one store, so the
// answer is whatever the backend family says it is (used by conformance
// suites to decide whether a multi-group harness exists for the backend).
func (s *Server) canMultiGroup(ctx context.Context, _ rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanMultiGroup(ctx, s.backend)})
}

// CanMultiGroup implements store.MultiGroupProber by asking the server.
// The probe travels unprefixed even on group-scoped clients: it is a
// question about the server, not a tenant.
func (c *Client) CanMultiGroup(ctx context.Context) bool {
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mCanMultiGroup, &struct{}{}, &reply); err != nil {
		return false
	}
	return reply.OK
}
