package remote

import (
	"context"
	"strings"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
	"orchestra/internal/store/central"
	"orchestra/internal/store/storetest"
	"orchestra/internal/trust"
)

// startServer hosts a central store over TCP and returns its address.
func startServer(t *testing.T, schema *core.Schema) string {
	t.Helper()
	backend := central.MustOpenMemory(schema)
	srv := NewServer(backend, schema)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		backend.Close()
	})
	return addr
}

func policyAll(t *testing.T) *trust.Policy {
	t.Helper()
	p, err := trust.Parse("priority 1 when true")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestConformance runs the full storetest suite over the wire: every peer
// is a TCP client of a server hosting a central backend, so the suite
// exercises the binary publish payloads, textual trust policies, batched
// decisions, and the replay RPC end-to-end.
func TestConformance(t *testing.T) {
	storetest.RunConformance(t, func(t *testing.T, schema *core.Schema) (func(core.PeerID) store.Store, func()) {
		addr := startServer(t, schema)
		return func(p core.PeerID) store.Store { return NewClient(string(p), addr) }, func() {}
	})
}

// TestWatchConformance runs the watch-subscription suite over TCP: the
// subscription crosses the wire as the bounded long-poll, so ordering,
// contiguity, cursor resume, and the compaction boundary are all exercised
// through the proxy. A short poll keeps the suite fast.
func TestWatchConformance(t *testing.T) {
	storetest.RunWatchConformance(t, func(t *testing.T, schema *core.Schema) (func(core.PeerID) store.Store, func()) {
		addr := startServer(t, schema)
		return func(p core.PeerID) store.Store {
			return NewClient(string(p), addr, WithWatchPoll(10*time.Millisecond))
		}, func() {}
	})
}

// TestMultiGroupConformance runs the tenancy suite over TCP: a group
// gateway in front of a shared-database Node, with every peer a
// group-scoped client. Exercises the group route prefix, lazy per-group
// sub-servers, and the namespace codec on the wire.
func TestMultiGroupConformance(t *testing.T) {
	plain := func(t *testing.T, schema *core.Schema) (func(core.PeerID) store.Store, func()) {
		addr := startServer(t, schema)
		return func(p core.PeerID) store.Store { return NewClient(string(p), addr) }, func() {}
	}
	storetest.RunMultiGroupConformance(t, plain,
		func(t *testing.T, schema *core.Schema) (func(string, core.PeerID) store.Store, func()) {
			node, err := central.OpenNode("")
			if err != nil {
				t.Fatal(err)
			}
			gw := NewGroupServer(func(group string) (store.Store, error) {
				return node.OpenGroup(group, schema)
			}, schema)
			addr, err := gw.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			return func(group string, p core.PeerID) store.Store {
					return NewClient(string(p), addr, WithGroup(group))
				}, func() {
					gw.Close()
					node.Close()
				}
		})
}

func TestRemoteEndToEnd(t *testing.T) {
	schema := storetest.Schema(t)
	addr := startServer(t, schema)
	ctx := context.Background()

	mk := func(id core.PeerID) *store.Peer {
		p, err := store.NewPeer(ctx, id, schema, policyAll(t), NewClient(string(id), addr))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	alice := mk("alice")
	bob := mk("bob")

	if _, err := alice.Edit(core.Insert("F", core.Strs("rat", "p1", "immune"), "alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.PublishAndReconcile(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := bob.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 {
		t.Fatalf("bob accepted %v", res.Accepted)
	}
	if bob.Instance().Len("F") != 1 {
		t.Errorf("bob instance: %v", bob.Instance().Tuples("F"))
	}
	if n, err := NewClient("x", addr).CurrentRecno(ctx, "bob"); err != nil || n != 1 {
		t.Errorf("recno over the wire: %d %v", n, err)
	}
}

func TestRemoteAntecedentChains(t *testing.T) {
	schema := storetest.Schema(t)
	addr := startServer(t, schema)
	ctx := context.Background()
	a, _ := store.NewPeer(ctx, "a", schema, policyAll(t), NewClient("a", addr))
	b, _ := store.NewPeer(ctx, "b", schema, policyAll(t), NewClient("b", addr))
	c, _ := store.NewPeer(ctx, "c", schema, policyAll(t), NewClient("c", addr))

	xa, _ := a.Edit(core.Insert("F", core.Strs("rat", "p1", "v0"), "a"))
	a.PublishAndReconcile(ctx)
	b.PublishAndReconcile(ctx)
	xb, _ := b.Edit(core.Modify("F", core.Strs("rat", "p1", "v0"), core.Strs("rat", "p1", "v1"), "b"))
	b.PublishAndReconcile(ctx)

	res, err := c.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 2 {
		t.Fatalf("c accepted %v, want chain %v+%v", res.Accepted, xa.ID, xb.ID)
	}
	got, _ := c.Instance().Lookup("F", core.Strs("rat", "p1"))
	if got[2].Str() != "v1" {
		t.Errorf("c sees %v", got)
	}
}

func TestRemotePolicyOverTheWire(t *testing.T) {
	schema := storetest.Schema(t)
	addr := startServer(t, schema)
	ctx := context.Background()

	// q trusts only the curator, via a textual policy evaluated
	// server-side.
	qPolicy, err := trust.Parse("priority 1 when origin = 'curator'")
	if err != nil {
		t.Fatal(err)
	}
	curator, _ := store.NewPeer(ctx, "curator", schema, policyAll(t), NewClient("curator", addr))
	outsider, _ := store.NewPeer(ctx, "outsider", schema, policyAll(t), NewClient("outsider", addr))
	q, err := store.NewPeer(ctx, "q", schema, qPolicy, NewClient("q", addr))
	if err != nil {
		t.Fatal(err)
	}

	curator.Edit(core.Insert("F", core.Strs("rat", "p1", "t"), "curator"))
	curator.PublishAndReconcile(ctx)
	outsider.Edit(core.Insert("F", core.Strs("mouse", "p2", "u"), "outsider"))
	outsider.PublishAndReconcile(ctx)

	res, err := q.PublishAndReconcile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 || q.Instance().Len("F") != 1 {
		t.Fatalf("q accepted %v, instance %v", res.Accepted, q.Instance().Tuples("F"))
	}
}

func TestRemoteRejectsNonTextualPolicy(t *testing.T) {
	schema := storetest.Schema(t)
	addr := startServer(t, schema)
	cl := NewClient("x", addr)
	err := cl.RegisterPeer(context.Background(), "x", core.TrustAll(1))
	if err == nil || !strings.Contains(err.Error(), "textual") {
		t.Errorf("err = %v", err)
	}
}

func TestRemoteBadPolicyRejectedServerSide(t *testing.T) {
	schema := storetest.Schema(t)
	addr := startServer(t, schema)
	// Send a syntactically invalid policy text directly: the server must
	// reject it when compiling.
	cl := NewClient("x", addr)
	err := rpc.Invoke(context.Background(), cl.caller, addr, mRegister,
		&registerArgs{Peer: "x", Policy: "garbage"}, nil)
	if err == nil {
		t.Error("server accepted garbage policy")
	}
}
