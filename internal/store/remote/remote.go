// Package remote exposes any store.Store over the TCP transport of
// internal/rpc, so a confederation can run as separate OS processes: one
// orchestra-store server hosting the central store and one orchestra-peer
// process per participant. Trust policies travel as text in the predicate
// language of internal/trust.
package remote

import (
	"context"
	"fmt"

	"orchestra/internal/core"
	"orchestra/internal/rpc"
	"orchestra/internal/store"
	"orchestra/internal/trust"
)

// Method names.
const (
	mRegister     = "store.register"
	mPublish      = "store.publish"
	mBegin        = "store.begin"
	mDecide       = "store.decide"
	mDecideBatch  = "store.decide.batch"
	mRecno        = "store.recno"
	mReplay       = "store.replay"
	mCanReplay    = "store.canreplay"
	mCanSnapshot  = "store.cansnapshot"
	mTakeSnapshot = "store.snapshot.take"
	mSnapshot     = "store.snapshot"
	mReplayFrom   = "store.replayfrom"
	mCompact      = "store.compact"
)

type registerArgs struct {
	Peer   core.PeerID
	Policy string
}

type publishArgs struct {
	Peer core.PeerID
	// Payload is the published batch in the store codec's binary encoding
	// (store.AppendPublishedTxns) — the transaction graph never crosses the
	// wire as gob, whose per-encoder type descriptors made every publish
	// re-ship the schema of the whole Transaction/Update tree.
	Payload []byte
}

type publishReply struct {
	Epoch core.Epoch
}

type beginArgs struct {
	Peer core.PeerID
}

type wireCandidate struct {
	Txn      *core.Transaction
	Priority int
	Ext      []*core.Transaction
}

type beginReply struct {
	Recno      int
	FromEpoch  core.Epoch
	ToEpoch    core.Epoch
	Candidates []wireCandidate
}

type decideArgs struct {
	Peer     core.PeerID
	Recno    int
	Accepted []core.TxnID
	Rejected []core.TxnID
}

type decideBatchArgs struct {
	Batches []store.DecisionBatch
}

type recnoArgs struct {
	Peer core.PeerID
}

type recnoReply struct {
	Recno int
}

type canReplayReply struct {
	OK bool
}

type replayArgs struct {
	Peer core.PeerID
}

type replayReply struct {
	// Log is the full published log in global order, binary-codec encoded
	// like a publish payload.
	Log       []byte
	Decisions map[core.TxnID]core.RestoredDecision
}

type takeSnapshotReply struct {
	Epoch core.Epoch
}

type snapshotReply struct {
	// Snapshot is the retained snapshot in the store codec's binary
	// encoding (store.AppendSnapshot); empty when none is retained.
	Snapshot []byte
}

type replayFromArgs struct {
	Peer     core.PeerID
	From     core.Epoch
	AfterSeq int64
}

type compactArgs struct {
	Epoch core.Epoch
}

// Server adapts a store.Store to the RPC transport.
type Server struct {
	backend store.Store
	schema  *core.Schema
	srv     *rpc.Server
}

// NewServer wraps the backend; trust policies received from clients are
// compiled against the schema.
func NewServer(backend store.Store, schema *core.Schema) *Server {
	s := &Server{backend: backend, schema: schema}
	mux := rpc.NewMux()
	mux.Handle(mRegister, s.register)
	mux.Handle(mPublish, s.publish)
	mux.Handle(mBegin, s.begin)
	mux.Handle(mDecide, s.decide)
	mux.Handle(mDecideBatch, s.decideBatch)
	mux.Handle(mRecno, s.recno)
	mux.Handle(mReplay, s.replay)
	mux.Handle(mCanReplay, s.canReplay)
	mux.Handle(mCanSnapshot, s.canSnapshot)
	mux.Handle(mTakeSnapshot, s.takeSnapshot)
	mux.Handle(mSnapshot, s.latestSnapshot)
	mux.Handle(mReplayFrom, s.replayFrom)
	mux.Handle(mCompact, s.compact)
	s.srv = rpc.NewServer(mux)
	return s
}

// Listen binds addr and serves in the background, returning the bound
// address.
func (s *Server) Listen(addr string) (string, error) { return s.srv.Listen(addr) }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) register(req rpc.Request) ([]byte, error) {
	var args registerArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	policy, err := trust.Parse(args.Policy)
	if err != nil {
		return nil, fmt.Errorf("remote: peer %s policy: %w", args.Peer, err)
	}
	policy.WithSchema(s.schema)
	if err := s.backend.RegisterPeer(context.Background(), args.Peer, policy); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

func (s *Server) publish(req rpc.Request) ([]byte, error) {
	var args publishArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	txns, err := store.DecodePublishedTxns(args.Payload)
	if err != nil {
		return nil, fmt.Errorf("remote: publish payload from %s: %w", args.Peer, err)
	}
	epoch, err := s.backend.Publish(context.Background(), args.Peer, txns)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&publishReply{Epoch: epoch})
}

func (s *Server) begin(req rpc.Request) ([]byte, error) {
	var args beginArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	rec, err := s.backend.BeginReconciliation(context.Background(), args.Peer)
	if err != nil {
		return nil, err
	}
	reply := beginReply{Recno: rec.Recno, FromEpoch: rec.FromEpoch, ToEpoch: rec.ToEpoch}
	for _, c := range rec.Candidates {
		reply.Candidates = append(reply.Candidates, wireCandidate{
			Txn: c.Txn, Priority: c.Priority, Ext: c.Ext,
		})
	}
	return rpc.Encode(&reply)
}

func (s *Server) decide(req rpc.Request) ([]byte, error) {
	var args decideArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	if err := s.backend.RecordDecisions(context.Background(), args.Peer, args.Recno, args.Accepted, args.Rejected); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

func (s *Server) decideBatch(req rpc.Request) ([]byte, error) {
	var args decideBatchArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	if err := s.backend.RecordDecisionsBatch(context.Background(), args.Batches); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

func (s *Server) recno(req rpc.Request) ([]byte, error) {
	var args recnoArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	n, err := s.backend.CurrentRecno(context.Background(), args.Peer)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&recnoReply{Recno: n})
}

func (s *Server) canReplay(rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanReplay(context.Background(), s.backend)})
}

func (s *Server) replay(req rpc.Request) ([]byte, error) {
	var args replayArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	rp, ok := s.backend.(store.Replayer)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot replay peer state", s.backend)
	}
	log, decisions, err := rp.ReplayFor(context.Background(), args.Peer)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&replayReply{
		Log:       store.AppendPublishedTxns(nil, log),
		Decisions: decisions,
	})
}

func (s *Server) canSnapshot(rpc.Request) ([]byte, error) {
	return rpc.Encode(&canReplayReply{OK: store.CanSnapshot(context.Background(), s.backend)})
}

func (s *Server) takeSnapshot(rpc.Request) ([]byte, error) {
	sn, ok := s.backend.(store.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot take snapshots", s.backend)
	}
	epoch, err := sn.Snapshot(context.Background())
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&takeSnapshotReply{Epoch: epoch})
}

func (s *Server) latestSnapshot(rpc.Request) ([]byte, error) {
	sr, ok := s.backend.(store.SnapshotReplayer)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T retains no snapshots", s.backend)
	}
	snap, err := sr.LatestSnapshot(context.Background())
	if err != nil {
		return nil, err
	}
	reply := snapshotReply{}
	if snap != nil {
		reply.Snapshot = store.AppendSnapshot(nil, snap)
	}
	return rpc.Encode(&reply)
}

func (s *Server) replayFrom(req rpc.Request) ([]byte, error) {
	var args replayFromArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	sr, ok := s.backend.(store.SnapshotReplayer)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot replay a tail", s.backend)
	}
	log, decisions, err := sr.ReplayFrom(context.Background(), args.Peer, args.From, args.AfterSeq)
	if err != nil {
		return nil, err
	}
	return rpc.Encode(&replayReply{
		Log:       store.AppendPublishedTxns(nil, log),
		Decisions: decisions,
	})
}

func (s *Server) compact(req rpc.Request) ([]byte, error) {
	var args compactArgs
	if err := rpc.Decode(req.Body, &args); err != nil {
		return nil, err
	}
	sn, ok := s.backend.(store.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("remote: backend %T cannot compact", s.backend)
	}
	if err := sn.CompactBefore(context.Background(), args.Epoch); err != nil {
		return nil, err
	}
	return rpc.Encode(&struct{}{})
}

// Client implements store.Store against a remote Server. Trust policies
// must be textual (*trust.Policy): predicate code cannot travel over the
// wire.
type Client struct {
	caller rpc.Caller
	addr   string
}

// NewClient returns a client for the server at addr.
func NewClient(from, addr string) *Client {
	return &Client{caller: rpc.NewClient(from), addr: addr}
}

// NewClientOn returns a client using an existing transport (e.g. a simnet
// node in tests).
func NewClientOn(caller rpc.Caller, addr string) *Client {
	return &Client{caller: caller, addr: addr}
}

// RegisterPeer implements store.Store. The trust policy must be a
// *trust.Policy.
func (c *Client) RegisterPeer(ctx context.Context, peer core.PeerID, t core.Trust) error {
	policy, ok := t.(*trust.Policy)
	if !ok {
		return fmt.Errorf("remote: peer %s: trust policy must be a *trust.Policy (textual rules)", peer)
	}
	return rpc.Invoke(ctx, c.caller, c.addr, mRegister,
		&registerArgs{Peer: peer, Policy: policy.String()}, nil)
}

// Publish implements store.Store; the batch travels in the binary store
// codec, not gob.
func (c *Client) Publish(ctx context.Context, peer core.PeerID, txns []store.PublishedTxn) (core.Epoch, error) {
	var reply publishReply
	args := publishArgs{Peer: peer, Payload: store.AppendPublishedTxns(nil, txns)}
	if err := rpc.Invoke(ctx, c.caller, c.addr, mPublish, &args, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// BeginReconciliation implements store.Store.
func (c *Client) BeginReconciliation(ctx context.Context, peer core.PeerID) (*store.Reconciliation, error) {
	var reply beginReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mBegin, &beginArgs{Peer: peer}, &reply); err != nil {
		return nil, err
	}
	rec := &store.Reconciliation{Recno: reply.Recno, FromEpoch: reply.FromEpoch, ToEpoch: reply.ToEpoch}
	for _, wc := range reply.Candidates {
		rec.Candidates = append(rec.Candidates, &core.Candidate{
			Txn: wc.Txn, Priority: wc.Priority, Ext: wc.Ext,
		})
	}
	return rec, nil
}

// RecordDecisions implements store.Store.
func (c *Client) RecordDecisions(ctx context.Context, peer core.PeerID, recno int, accepted, rejected []core.TxnID) error {
	return rpc.Invoke(ctx, c.caller, c.addr, mDecide,
		&decideArgs{Peer: peer, Recno: recno, Accepted: accepted, Rejected: rejected}, nil)
}

// RecordDecisionsBatch implements store.Store: the whole wave's decisions
// travel in one network round trip.
func (c *Client) RecordDecisionsBatch(ctx context.Context, batches []store.DecisionBatch) error {
	return rpc.Invoke(ctx, c.caller, c.addr, mDecideBatch, &decideBatchArgs{Batches: batches}, nil)
}

// CurrentRecno implements store.Store.
func (c *Client) CurrentRecno(ctx context.Context, peer core.PeerID) (int, error) {
	var reply recnoReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mRecno, &recnoArgs{Peer: peer}, &reply); err != nil {
		return 0, err
	}
	return reply.Recno, nil
}

// CanReplay implements store.ReplayProber: the client's ReplayFor stub
// always exists, but whether replay works depends on the backend at the
// other end of the wire, so the capability question travels as an RPC. An
// unreachable or pre-probe server counts as "cannot replay".
func (c *Client) CanReplay(ctx context.Context) bool {
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mCanReplay, &struct{}{}, &reply); err != nil {
		return false
	}
	return reply.OK
}

// ReplayFor implements store.Replayer when the server's backend does: the
// full log crosses the wire once, in the binary store codec, so a lost
// participant can rebuild its soft state from a remote store exactly as
// from a local one (store.RebuildPeer).
func (c *Client) ReplayFor(ctx context.Context, peer core.PeerID) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	var reply replayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mReplay, &replayArgs{Peer: peer}, &reply); err != nil {
		return nil, nil, err
	}
	log, err := store.DecodePublishedTxns(reply.Log)
	if err != nil {
		return nil, nil, fmt.Errorf("remote: replay payload: %w", err)
	}
	return log, reply.Decisions, nil
}

// CanSnapshot implements store.SnapshotProber: like CanReplay, the stubs
// below always exist, but whether snapshots work depends on the backend at
// the other end of the wire.
func (c *Client) CanSnapshot(ctx context.Context) bool {
	var reply canReplayReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mCanSnapshot, &struct{}{}, &reply); err != nil {
		return false
	}
	return reply.OK
}

// Snapshot implements store.Snapshotter by proxy: the server's backend
// takes and retains the snapshot; only the covered epoch returns.
func (c *Client) Snapshot(ctx context.Context) (core.Epoch, error) {
	var reply takeSnapshotReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mTakeSnapshot, &struct{}{}, &reply); err != nil {
		return 0, err
	}
	return reply.Epoch, nil
}

// CompactBefore implements store.Snapshotter by proxy; the backend enforces
// the compaction safety invariants and its refusals travel back as errors.
func (c *Client) CompactBefore(ctx context.Context, e core.Epoch) error {
	return rpc.Invoke(ctx, c.caller, c.addr, mCompact, &compactArgs{Epoch: e}, nil)
}

// LatestSnapshot implements store.SnapshotReplayer: the retained snapshot
// crosses the wire once in the binary snapshot codec. Together with
// ReplayFrom this is the two-round-trip catch-up path store.RebuildPeer
// uses against a remote store.
func (c *Client) LatestSnapshot(ctx context.Context) (*store.Snapshot, error) {
	var reply snapshotReply
	if err := rpc.Invoke(ctx, c.caller, c.addr, mSnapshot, &struct{}{}, &reply); err != nil {
		return nil, err
	}
	if len(reply.Snapshot) == 0 {
		return nil, nil
	}
	snap, err := store.DecodeSnapshot(reply.Snapshot)
	if err != nil {
		return nil, fmt.Errorf("remote: snapshot payload: %w", err)
	}
	return snap, nil
}

// ReplayFrom implements store.SnapshotReplayer: the post-snapshot tail and
// the peer's post-snapshot decisions in one round trip.
func (c *Client) ReplayFrom(ctx context.Context, peer core.PeerID, from core.Epoch, afterSeq int64) ([]store.PublishedTxn, map[core.TxnID]core.RestoredDecision, error) {
	var reply replayReply
	args := replayFromArgs{Peer: peer, From: from, AfterSeq: afterSeq}
	if err := rpc.Invoke(ctx, c.caller, c.addr, mReplayFrom, &args, &reply); err != nil {
		return nil, nil, err
	}
	log, err := store.DecodePublishedTxns(reply.Log)
	if err != nil {
		return nil, nil, fmt.Errorf("remote: tail payload: %w", err)
	}
	return log, reply.Decisions, nil
}
